package f2fs

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flashwear/internal/blockdev"
	"flashwear/internal/fs"
)

func newVolume(t *testing.T, sizeMiB int64, opts fs.Options) (*FS, *blockdev.MemDevice) {
	t.Helper()
	dev, err := blockdev.NewMem(sizeMiB<<20, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(dev); err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	v, err := Mount(dev, opts)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return v, dev
}

func TestMkfsTooSmall(t *testing.T) {
	dev, _ := blockdev.NewMem(512<<10, 512)
	if err := Mkfs(dev); err == nil {
		t.Fatal("Mkfs on 512KiB device succeeded")
	}
}

func TestMountRejectsBlankDevice(t *testing.T) {
	dev, _ := blockdev.NewMem(16<<20, 512)
	if _, err := Mount(dev, fs.Options{}); !errors.Is(err, ErrNotF2FS) {
		t.Fatalf("Mount(blank) err = %v, want ErrNotF2FS", err)
	}
}

func TestCreateWriteReadBack(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	f, err := v.Create("/hello.txt")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	msg := []byte("log structured merge")
	if _, err := f.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if n, err := f.ReadAt(got, 0); err != nil || n != len(msg) {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("read != written")
	}
}

func TestPersistenceAcrossRemount(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/data.bin")
	payload := bytes.Repeat([]byte{0x42}, 20000)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(); err != nil {
		t.Fatalf("Unmount: %v", err)
	}
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	f2, err := v2.Open("/data.bin")
	if err != nil {
		t.Fatalf("Open after remount: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across remount")
	}
}

func TestLargeFileIndirectNodes(t *testing.T) {
	v, _ := newVolume(t, 32, fs.Options{})
	f, _ := v.Create("/big")
	// One block in the direct range and one behind an indirect node.
	offsets := []int64{3 * BlockSize, (NDirect + 37) * BlockSize}
	for i, off := range offsets {
		want := bytes.Repeat([]byte{byte(i + 1)}, BlockSize)
		if _, err := f.WriteAt(want, off); err != nil {
			t.Fatalf("WriteAt(%d): %v", off, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, off := range offsets {
		got := make([]byte, BlockSize)
		if _, err := f.ReadAt(got, off); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i+1) {
			t.Fatalf("offset %d corrupted", off)
		}
	}
	// Hole reads as zero.
	hole := make([]byte, BlockSize)
	if _, err := f.ReadAt(hole, 100*BlockSize); err != nil {
		t.Fatal(err)
	}
	for _, b := range hole {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestOverwriteIsOutOfPlace(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/f")
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	holder, slot, err := v.mapSlot(f.(*file).n, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	first, _ := v.ptrOf(holder, slot)
	if _, err := f.WriteAt(bytes.Repeat([]byte{2}, BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	second, _ := v.ptrOf(holder, slot)
	if first == second {
		t.Fatal("overwrite reused the same block (not log-structured)")
	}
	got := make([]byte, BlockSize)
	_, _ = f.ReadAt(got, 0)
	if got[0] != 2 {
		t.Fatal("overwrite lost")
	}
}

func TestFsyncWritesNodePerSync(t *testing.T) {
	// The 2x mechanism of Figure 4: each 4 KiB synchronous write costs a
	// data block plus a node block.
	v, dev := newVolume(t, 16, fs.Options{})
	c := blockdev.NewCounting(dev)
	v.dev = c
	f, _ := v.Create("/f")
	if _, err := f.WriteAt(make([]byte, 64*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	nodeBefore := v.Stats().NodeWrites
	bytesBefore := c.BytesWritten
	const syncs = 50
	for i := 0; i < syncs; i++ {
		if _, err := f.WriteAt(make([]byte, BlockSize), int64(i%64)*BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	nodeWrites := v.Stats().NodeWrites - nodeBefore
	if nodeWrites < syncs {
		t.Fatalf("node writes = %d for %d fsyncs, want >= %d", nodeWrites, syncs, syncs)
	}
	wa := float64(c.BytesWritten-bytesBefore) / float64(syncs*BlockSize)
	if wa < 1.8 || wa > 2.6 {
		t.Fatalf("f2fs sync-write amplification = %.2f, want ~2 (Figure 4)", wa)
	}
}

func TestDirectories(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	if err := v.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := v.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := v.Mkdir("/a"); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("duplicate Mkdir err = %v", err)
	}
	f, err := v.Create("/a/b/c.txt")
	if err != nil {
		t.Fatal(err)
	}
	_, _ = f.WriteAt([]byte("x"), 0)
	ents, err := v.ReadDir("/a/b")
	if err != nil || len(ents) != 1 || ents[0].Name != "c.txt" {
		t.Fatalf("ReadDir = %+v, %v", ents, err)
	}
	info, err := v.Stat("/a/b/c.txt")
	if err != nil || info.Size != 1 || info.IsDir {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
}

func TestRemoveSemantics(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	if err := v.Remove("/nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Remove missing err = %v", err)
	}
	_ = v.Mkdir("/d")
	f, _ := v.Create("/d/x")
	_ = f.Close()
	if err := v.Remove("/d"); !errors.Is(err, fs.ErrNotEmpty) {
		t.Fatalf("Remove non-empty dir err = %v", err)
	}
	if err := v.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("/d"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Open("/d/x"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("removed file still resolvable")
	}
}

func TestCleaningReclaimsSpace(t *testing.T) {
	// Rewrite a file far more than the volume size: cleaning must keep up.
	v, _ := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/churn")
	const fileBlocks = 256
	if _, err := f.WriteAt(make([]byte, fileBlocks*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	// 16 MiB volume, rewrite ~48 MiB.
	for i := 0; i < 12000; i++ {
		blk := int64(rng.Intn(fileBlocks))
		if _, err := f.WriteAt(make([]byte, BlockSize), blk*BlockSize); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i%100 == 0 {
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if v.Stats().CleanedSegments == 0 && v.Stats().Checkpoints == 0 {
		t.Fatal("no cleaning or checkpoints under churn")
	}
}

func TestCrashRollForwardRecoversFsyncedData(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/durable")
	payload := bytes.Repeat([]byte{0x5C}, 2*BlockSize)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // fsync, no checkpoint
		t.Fatal(err)
	}
	if v.Stats().Checkpoints != 0 {
		t.Skip("unexpected checkpoint; roll-forward not exercised")
	}
	v.SimulateCrash()
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatalf("mount after crash: %v", err)
	}
	if v2.Stats().RolledForward == 0 {
		t.Fatal("nothing rolled forward")
	}
	f2, err := v2.Open("/durable")
	if err != nil {
		t.Fatalf("fsynced file lost after crash: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("fsynced data corrupted across crash")
	}
}

func TestCrashUnsyncedDataDoesNotCorrupt(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	fa, _ := v.Create("/synced")
	if _, err := fa.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fa.Sync(); err != nil {
		t.Fatal(err)
	}
	// Write without sync; crash. (Create itself is fsync-marked, so the
	// file exists, but the write may be lost.)
	fb, _ := v.Create("/unsynced")
	if _, err := fb.WriteAt(bytes.Repeat([]byte{9}, BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	v.SimulateCrash()
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Open("/synced"); err != nil {
		t.Fatalf("synced file lost: %v", err)
	}
	info, err := v2.Stat("/unsynced")
	if err != nil {
		t.Fatalf("created (fsynced) file lost: %v", err)
	}
	if info.Size != 0 {
		t.Fatalf("unsynced write survived with size %d, want 0", info.Size)
	}
}

func TestCrashRemovedFileStaysRemoved(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/gone")
	if _, err := f.WriteAt([]byte("bye"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("/gone"); err != nil {
		t.Fatal(err)
	}
	v.SimulateCrash()
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Open("/gone"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("dead-node marker failed: removed file came back (%v)", err)
	}
}

func TestTruncate(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/f")
	_, _ = f.WriteAt(bytes.Repeat([]byte{7}, 5*BlockSize), 0)
	if err := f.Truncate(BlockSize); err != nil {
		t.Fatal(err)
	}
	if f.Size() != BlockSize {
		t.Fatalf("size = %d", f.Size())
	}
	got := make([]byte, 2*BlockSize)
	n, _ := f.ReadAt(got, 0)
	if n != BlockSize {
		t.Fatalf("read %d, want %d", n, BlockSize)
	}
	if err := f.Truncate(3 * BlockSize); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 3*BlockSize {
		t.Fatal("grow failed")
	}
}

func TestDataAccountingMode(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{DataAccounting: true})
	f, _ := v.Create("/f")
	if _, err := f.WriteAt(bytes.Repeat([]byte{5}, 2*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, BlockSize)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("accounting mode retained payload")
		}
	}
	// Directories remain real: listing still works after unmount+mount.
	if err := v.Unmount(); err != nil {
		t.Fatal(err)
	}
}

func TestUnalignedIO(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/f")
	payload := bytes.Repeat([]byte{0xEE}, 3000)
	if _, err := f.WriteAt(payload, BlockSize-100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3000)
	if _, err := f.ReadAt(got, BlockSize-100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("unaligned round trip failed")
	}
}

func TestBadPaths(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	for _, p := range []string{"", "/", "/a/../b"} {
		if _, err := v.Create(p); err == nil {
			t.Errorf("Create(%q) succeeded", p)
		}
	}
	if _, err := v.Open("/"); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("Open(/) err = %v", err)
	}
}

func TestOperationsAfterUnmountFail(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/f")
	if err := v.Unmount(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create("/g"); !errors.Is(err, fs.ErrUnmounted) {
		t.Errorf("Create after unmount err = %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, fs.ErrUnmounted) {
		t.Errorf("WriteAt after unmount err = %v", err)
	}
}

func TestOutOfSpace(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/f")
	buf := make([]byte, 64*BlockSize)
	var err error
	for i := int64(0); i < 100; i++ {
		if _, err = f.WriteAt(buf, i*int64(len(buf))); err != nil {
			break
		}
		if err = f.Sync(); err != nil {
			break
		}
	}
	if !errors.Is(err, fs.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestRandomizedWriteReadAgainstModel(t *testing.T) {
	v, _ := newVolume(t, 32, fs.Options{})
	f, _ := v.Create("/model")
	const fileBlocks = 400
	model := make([]byte, fileBlocks*BlockSize)
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 600; i++ {
		blk := rng.Intn(fileBlocks)
		val := byte(rng.Intn(255) + 1)
		chunk := bytes.Repeat([]byte{val}, BlockSize)
		copy(model[blk*BlockSize:], chunk)
		if _, err := f.WriteAt(chunk, int64(blk)*BlockSize); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i%64 == 0 {
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := make([]byte, len(model))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	sz := f.Size()
	if !bytes.Equal(got[:sz], model[:sz]) {
		t.Fatal("file diverged from model")
	}
}

func TestRenameBasics(t *testing.T) {
	v, _ := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/a.tmp")
	if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Rename("/a.tmp", "/a"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := v.Open("/a.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("source still exists")
	}
	g, err := v.Open("/a")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if _, err := g.ReadAt(got, 0); err != nil || string(got) != "payload" {
		t.Fatalf("content lost: %q %v", got, err)
	}
}

func TestRenameReplacesTargetAndSurvivesCrash(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	oldF, _ := v.Create("/cfg")
	_, _ = oldF.WriteAt([]byte("v1"), 0)
	_ = oldF.Sync()
	newF, _ := v.Create("/cfg.tmp")
	_, _ = newF.WriteAt([]byte("v2"), 0)
	_ = newF.Sync()
	if err := v.Rename("/cfg.tmp", "/cfg"); err != nil {
		t.Fatalf("replacing rename: %v", err)
	}
	v.SimulateCrash()
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	g, err := v2.Open("/cfg")
	if err != nil {
		t.Fatalf("renamed file lost after crash: %v", err)
	}
	got := make([]byte, 2)
	if _, err := g.ReadAt(got, 0); err != nil || string(got) != "v2" {
		t.Fatalf("post-crash content = %q, want v2 (%v)", got, err)
	}
	if _, err := v2.Open("/cfg.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("both names exist after crash")
	}
	// Renaming onto a directory is refused.
	_ = v2.Mkdir("/d")
	f2, _ := v2.Create("/file")
	_ = f2.Close()
	if err := v2.Rename("/file", "/d"); !errors.Is(err, fs.ErrIsDir) {
		t.Fatalf("rename onto dir err = %v", err)
	}
}

// TestTornCheckpointFallsBack corrupts the newest checkpoint slot; mount
// must fall back to the older valid one instead of failing.
func TestTornCheckpointFallsBack(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/a")
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil { // checkpoint into slot A
		t.Fatal(err)
	}
	if _, err := f.WriteAt(bytes.Repeat([]byte{2}, BlockSize), BlockSize); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil { // checkpoint into slot B
		t.Fatal(err)
	}
	cpStart := v.sb.cpStart
	newest := v.cpIndex ^ 1 // the slot just written
	v.SimulateCrash()
	// Tear the newest checkpoint's trailing ver copy.
	blk := make([]byte, BlockSize)
	if err := dev.ReadAt(blk, int64(cpStart+uint32(newest))*BlockSize); err != nil {
		t.Fatal(err)
	}
	blk[BlockSize-1] ^= 0xFF
	if err := dev.WriteAt(blk, int64(cpStart+uint32(newest))*BlockSize); err != nil {
		t.Fatal(err)
	}
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatalf("mount with torn checkpoint: %v", err)
	}
	if _, err := v2.Open("/a"); err != nil {
		t.Fatalf("file lost after checkpoint fallback: %v", err)
	}
}

func TestCheckCleanVolume(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/a")
	if _, err := f.WriteAt(make([]byte, 20*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean volume reported corrupt: %v", rep.Corruptions)
	}
	if rep.LiveNodes < 2 { // root + /a
		t.Fatalf("LiveNodes = %d", rep.LiveNodes)
	}
	if rep.LiveDataBlocks < 20 {
		t.Fatalf("LiveDataBlocks = %d", rep.LiveDataBlocks)
	}
}

func TestCheckAfterCrash(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	for i := 0; i < 6; i++ {
		f, _ := v.Create(fmt.Sprintf("/f%d", i))
		if _, err := f.WriteAt(make([]byte, 8*BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	v.SimulateCrash()
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.Unmount(); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("post-recovery corruption: %v", rep.Corruptions)
	}
}

func TestCheckDetectsCorruptNAT(t *testing.T) {
	v, dev := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/a")
	if _, err := f.WriteAt(make([]byte, BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(); err != nil {
		t.Fatal(err)
	}
	// Point NAT[RootNode] somewhere ridiculous.
	sbBlk := make([]byte, BlockSize)
	if err := dev.ReadAt(sbBlk, 0); err != nil {
		t.Fatal(err)
	}
	sb, err := decodeSuperblock(sbBlk)
	if err != nil {
		t.Fatal(err)
	}
	nb := make([]byte, BlockSize)
	if err := dev.ReadAt(nb, int64(sb.natStart)*BlockSize); err != nil {
		t.Fatal(err)
	}
	binary.LittleEndian.PutUint32(nb[RootNode*4:], sb.totalBlocks+999)
	if err := dev.WriteAt(nb, int64(sb.natStart)*BlockSize); err != nil {
		t.Fatal(err)
	}
	rep, err := Check(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("corrupt NAT not detected")
	}
}
