// Package workload provides the I/O generators the experiments run: raw
// device write patterns (the fio-style microbenchmarks of Figure 1 and the
// pattern phases of Table 1) and the file-rewriting workload the paper's
// attack app issues (§4.3–4.4: "repeatedly rewrote small, randomly-selected
// regions of four 100MB files").
package workload

import (
	"fmt"
	"math/rand"

	"flashwear/internal/blockdev"
)

// DeviceWriter issues a raw write pattern against a block device in
// caller-controlled steps, so experiments can interleave I/O with wear
// sampling.
type DeviceWriter struct {
	Dev blockdev.Device
	// ReqBytes is the request size (0.5 KiB – 16 MiB in Figure 1).
	ReqBytes int64
	// Sequential selects sequential (wrap-around) addressing; otherwise
	// offsets are uniformly random within the region.
	Sequential bool
	// RegionOff/RegionLen restrict the pattern to a slice of the device;
	// a zero RegionLen means the whole device.
	RegionOff, RegionLen int64
	// ZipfSkew, when > 1, draws random offsets from a Zipf distribution
	// instead of uniformly: a small set of "hot" addresses take most of
	// the writes, the skew real application traffic shows. Ignored for
	// sequential patterns.
	ZipfSkew float64

	rng    *rand.Rand
	zipf   *rand.Zipf
	cursor int64
	inited bool
}

// NewDeviceWriter builds a writer with a deterministic seed.
func NewDeviceWriter(dev blockdev.Device, reqBytes int64, sequential bool, seed int64) *DeviceWriter {
	return &DeviceWriter{Dev: dev, ReqBytes: reqBytes, Sequential: sequential, rng: rand.New(rand.NewSource(seed))}
}

func (w *DeviceWriter) init() error {
	if w.inited {
		return nil
	}
	if w.rng == nil {
		// No silent fallback seed: a writer whose draws are not tied to an
		// explicit seed would make the run unreproducible without anyone
		// noticing (flashvet globalrand would flag a literal here too).
		return fmt.Errorf("workload: DeviceWriter has no RNG: construct it with NewDeviceWriter so the seed is explicit")
	}
	if w.ReqBytes <= 0 {
		return fmt.Errorf("workload: ReqBytes = %d", w.ReqBytes)
	}
	// Align the region to the request unit so generated offsets are valid.
	if unit := w.alignUnit(); w.RegionOff%unit != 0 {
		delta := unit - w.RegionOff%unit
		w.RegionOff += delta
		if w.RegionLen > delta {
			w.RegionLen -= delta
		}
	}
	if w.RegionLen == 0 {
		w.RegionLen = w.Dev.Size() - w.RegionOff
	}
	if w.RegionOff < 0 || w.RegionLen < w.ReqBytes || w.RegionOff+w.RegionLen > w.Dev.Size() {
		return fmt.Errorf("workload: region [%d,+%d) invalid for device of %d bytes and %d-byte requests",
			w.RegionOff, w.RegionLen, w.Dev.Size(), w.ReqBytes)
	}
	if w.ZipfSkew > 1 && !w.Sequential {
		slots := uint64((w.RegionLen - w.ReqBytes) / w.alignUnit())
		if slots > 0 {
			w.zipf = rand.NewZipf(w.rng, w.ZipfSkew, 1, slots)
		}
	}
	w.cursor = w.RegionOff
	w.inited = true
	return nil
}

// alignUnit is the request alignment unit (like fio's bs-aligned random
// offsets), falling back to sector alignment for odd request sizes.
func (w *DeviceWriter) alignUnit() int64 {
	unit := w.ReqBytes
	if unit <= 0 || unit%int64(w.Dev.SectorSize()) != 0 {
		unit = int64(w.Dev.SectorSize())
	}
	return unit
}

// alignOff rounds an offset down to the alignment unit.
func (w *DeviceWriter) alignOff(off int64) int64 {
	unit := w.alignUnit()
	return off - off%unit
}

// Step writes approximately budget bytes (a whole number of requests, at
// least one) and returns the bytes actually written.
func (w *DeviceWriter) Step(budget int64) (int64, error) {
	if err := w.init(); err != nil {
		return 0, err
	}
	var written int64
	for written == 0 || written+w.ReqBytes <= budget {
		var off int64
		if w.Sequential {
			off = w.cursor
			w.cursor += w.ReqBytes
			if w.cursor+w.ReqBytes > w.RegionOff+w.RegionLen {
				w.cursor = w.RegionOff
			}
		} else if w.zipf != nil {
			off = w.RegionOff + int64(w.zipf.Uint64())*w.alignUnit()
		} else {
			span := w.RegionLen - w.ReqBytes
			off = w.RegionOff
			if span > 0 {
				off += w.alignOff(w.rng.Int63n(span + 1))
			}
		}
		if err := w.Dev.WriteAccounted(off, w.ReqBytes); err != nil {
			return written, err
		}
		written += w.ReqBytes
	}
	return written, nil
}

// FillDevice writes static data sequentially over frac of the device's
// capacity starting at offset 0 — the "space utilisation" dial of Table 1.
func FillDevice(dev blockdev.Device, frac float64) (int64, error) {
	if frac < 0 || frac > 1 {
		return 0, fmt.Errorf("workload: fill fraction %g out of range", frac)
	}
	total := int64(float64(dev.Size()) * frac)
	const chunk = 1 << 20
	var written int64
	for written < total {
		n := int64(chunk)
		if written+n > total {
			n = total - written
		}
		if n < int64(dev.SectorSize()) {
			break
		}
		n -= n % int64(dev.SectorSize())
		if err := dev.WriteAccounted(written, n); err != nil {
			return written, err
		}
		written += n
	}
	return written, nil
}
