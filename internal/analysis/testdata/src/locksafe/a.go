// Package a seeds both locksafe hazards — lock copies and blocking under
// a held mutex — next to the sanctioned shapes: pointer receivers,
// release-before-block, select with default, goroutines launched under a
// lock (which do not hold it), Cond.Wait, and the mutexed file fsync the
// journal relies on.
package a

import (
	"os"
	"sync"
	"time"
)

type registry struct {
	mu    sync.Mutex
	cells map[string]int
	subs  chan string
}

// Snapshot copies the lock with every call; the finding lands on the
// receiver type.
func (r registry) Snapshot() int { // want `method Snapshot has a value receiver containing sync\.Mutex`
	return len(r.cells)
}

// Merge copies the lock through a parameter.
func Merge(dst *registry, src registry) { // want `function Merge takes a parameter by value containing sync\.Mutex`
	_ = src
}

// Wrapped locks nested one struct deep still count.
type wrapped struct{ inner registry }

func (w wrapped) Count() int { // want `method Count has a value receiver containing sync\.Mutex`
	return len(w.inner.cells)
}

// Publish blocks on a channel send with the lock held.
func (r *registry) Publish(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs <- name // want `channel send while holding r\.mu`
}

// PublishSafe releases first: clean.
func (r *registry) PublishSafe(name string) {
	r.mu.Lock()
	r.cells[name]++
	r.mu.Unlock()
	r.subs <- name
}

// PublishAsync launches a goroutine: the goroutine does not hold the
// caller's lock, so its send is clean.
func (r *registry) PublishAsync(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	go func() { r.subs <- name }()
}

// Drain receives with the lock held.
func (r *registry) Drain() string {
	r.mu.Lock()
	defer r.mu.Unlock()
	return <-r.subs // want `channel receive while holding r\.mu`
}

// WaitAll parks on a WaitGroup with the lock held.
func (r *registry) WaitAll(wg *sync.WaitGroup) {
	r.mu.Lock()
	wg.Wait() // want `sync\.WaitGroup\.Wait while holding r\.mu`
	r.mu.Unlock()
}

// Backoff sleeps with the lock held.
func (r *registry) Backoff() {
	r.mu.Lock()
	time.Sleep(time.Millisecond) // want `time\.Sleep while holding r\.mu`
	r.mu.Unlock()
}

// Select blocks (no default) with the lock held; the polling form with a
// default cannot block and is clean.
func (r *registry) Select() {
	r.mu.Lock()
	defer r.mu.Unlock()
	select { // want `select with no default while holding r\.mu`
	case s := <-r.subs:
		_ = s
	}
}

func (r *registry) Poll() (string, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	select {
	case s := <-r.subs:
		return s, true
	default:
		return "", false
	}
}

// Relock self-deadlocks on the second acquisition.
func (r *registry) Relock() {
	r.mu.Lock()
	r.mu.Lock() // want `r\.mu\.Lock with r\.mu already held`
	r.mu.Unlock()
	r.mu.Unlock()
}

// BranchScoped: a lock released inside the branch it was taken in does
// not leak into the fall-through state.
func (r *registry) BranchScoped(fast bool) {
	if fast {
		r.mu.Lock()
		r.cells["fast"]++
		r.mu.Unlock()
	}
	r.subs <- "done"
}

// FsyncUnderLock is the journal pattern: plain file IO under a mutex is
// bounded and deliberate — locksafe stays silent.
func (r *registry) FsyncUnderLock(f *os.File) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, err := f.Write([]byte("entry")); err != nil {
		return err
	}
	return f.Sync()
}

// CondWait is specified to be called with the lock held: clean.
func CondWait(c *sync.Cond, ready *bool) {
	c.L.Lock()
	for !*ready {
		c.Wait()
	}
	c.L.Unlock()
}

// RangeChan ranges over a channel with the lock held.
func (r *registry) RangeChan() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for s := range r.subs { // want `range over channel while holding r\.mu`
		_ = s
	}
}

// Waived: a reviewed blocking window may be silenced like any finding.
func (r *registry) WaivedSend(name string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.subs <- name //flashvet:ignore locksafe fixture: buffered channel sized to subscriber count, reviewed
}
