GO ?= go

.PHONY: all build vet test race bench check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# A short -race pass over the one concurrent subsystem: the fleet
# determinism test runs the same 64-device population at 4 workers and at
# 1 and requires byte-identical aggregates (DESIGN.md §6).
race:
	$(GO) test -race -count=1 -run TestFleet ./internal/fleet/

# One pass over every benchmark (each regenerates a paper exhibit);
# -benchtime=1x keeps it a smoke run. Drop the flag for real timings.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem .

# The verification entrypoint: everything CI (or a reviewer) should run.
check: vet build test race
