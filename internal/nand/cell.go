// Package nand models raw NAND flash: dies, planes, blocks, pages and the
// physics that matter for endurance — program/erase wear, bit-error growth
// with P/E cycles, retention loss, program failures, and (optionally) charge
// detrapping ("healing").
//
// The model is deliberately at the level of abstraction the paper reasons at:
// a cell population per block with an error rate that grows with accumulated
// program/erase stress, read through an ECC whose correction capability
// defines the usable endurance of the block. Payload bytes are stored only
// when callers provide them, so wear experiments can run "accounting-only"
// at device scale while file-system tests run data-bearing on small chips.
package nand

import "fmt"

// CellType describes how many bits a cell stores. Denser cells discriminate
// between more charge levels and therefore tolerate far fewer P/E cycles —
// the trend the paper warns "will exacerbate this problem".
type CellType int

const (
	// SLC stores one bit per cell. Historic parts reached ~100K P/E cycles.
	SLC CellType = iota + 1
	// MLC stores two bits per cell; typical rated endurance 3K–10K cycles.
	MLC
	// TLC stores three bits per cell; endurance as low as ~1K cycles.
	TLC
)

// String implements fmt.Stringer.
func (t CellType) String() string {
	switch t {
	case SLC:
		return "SLC"
	case MLC:
		return "MLC"
	case TLC:
		return "TLC"
	default:
		return fmt.Sprintf("CellType(%d)", int(t))
	}
}

// BitsPerCell returns the number of logical bits each cell encodes.
func (t CellType) BitsPerCell() int {
	switch t {
	case SLC:
		return 1
	case MLC:
		return 2
	case TLC:
		return 3
	default:
		return 0
	}
}

// DefaultRatedPE returns a typical vendor-rated P/E cycle count for the cell
// type, matching the figures quoted in §2.1 of the paper.
func (t CellType) DefaultRatedPE() int {
	switch t {
	case SLC:
		return 100_000
	case MLC:
		return 3_000
	case TLC:
		return 1_000
	default:
		return 0
	}
}

// Valid reports whether t is a known cell type.
func (t CellType) Valid() bool { return t >= SLC && t <= TLC }
