package extfs

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flashwear/internal/blockdev"
	"flashwear/internal/fs"
)

// newVolume formats and mounts a RAM-backed volume.
func newVolume(t *testing.T, sizeMiB int64, opts fs.Options) (*FS, *blockdev.MemDevice) {
	t.Helper()
	dev, err := blockdev.NewMem(sizeMiB<<20, 512)
	if err != nil {
		t.Fatal(err)
	}
	if err := Mkfs(dev); err != nil {
		t.Fatalf("Mkfs: %v", err)
	}
	v, err := Mount(dev, opts)
	if err != nil {
		t.Fatalf("Mount: %v", err)
	}
	return v, dev
}

func TestMkfsTooSmall(t *testing.T) {
	dev, _ := blockdev.NewMem(64<<10, 512)
	if err := Mkfs(dev); err == nil {
		t.Fatal("Mkfs on 64KiB device succeeded")
	}
}

func TestMountRejectsBlankDevice(t *testing.T) {
	dev, _ := blockdev.NewMem(8<<20, 512)
	if _, err := Mount(dev, fs.Options{}); !errors.Is(err, ErrNotExtfs) {
		t.Fatalf("Mount(blank) err = %v, want ErrNotExtfs", err)
	}
}

func TestCreateWriteReadBack(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	f, err := v.Create("/hello.txt")
	if err != nil {
		t.Fatalf("Create: %v", err)
	}
	msg := []byte("the quick brown fox")
	if _, err := f.WriteAt(msg, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	n, err := f.ReadAt(got, 0)
	if err != nil || n != len(msg) {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	if !bytes.Equal(got, msg) {
		t.Fatal("read != written")
	}
	if f.Size() != int64(len(msg)) {
		t.Fatalf("Size = %d", f.Size())
	}
}

func TestPersistenceAcrossRemount(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/data.bin")
	payload := bytes.Repeat([]byte{0x42}, 10000)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(); err != nil {
		t.Fatalf("Unmount: %v", err)
	}
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	f2, err := v2.Open("/data.bin")
	if err != nil {
		t.Fatalf("Open after remount: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data lost across remount")
	}
}

func TestLargeFileIndirectMapping(t *testing.T) {
	// > 12 direct + some of the indirect range, with double-indirect
	// coverage: write past NDirect+PtrsPerBlk blocks.
	v, _ := newVolume(t, 40, fs.Options{})
	f, _ := v.Create("/big")
	// Touch a direct, an indirect, and a double-indirect block.
	offsets := []int64{
		0,                                        // direct
		(NDirect + 5) * BlockSize,                // single indirect
		(NDirect + PtrsPerBlk + 700) * BlockSize, // double indirect
	}
	for i, off := range offsets {
		want := bytes.Repeat([]byte{byte(i + 1)}, BlockSize)
		if _, err := f.WriteAt(want, off); err != nil {
			t.Fatalf("WriteAt(%d): %v", off, err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	for i, off := range offsets {
		got := make([]byte, BlockSize)
		if _, err := f.ReadAt(got, off); err != nil {
			t.Fatalf("ReadAt(%d): %v", off, err)
		}
		if got[0] != byte(i+1) || got[BlockSize-1] != byte(i+1) {
			t.Fatalf("offset %d corrupted", off)
		}
	}
	// The hole between them reads zero.
	hole := make([]byte, BlockSize)
	if _, err := f.ReadAt(hole, 5*BlockSize); err != nil {
		t.Fatal(err)
	}
	for _, b := range hole {
		if b != 0 {
			t.Fatal("hole not zero")
		}
	}
}

func TestDirectoriesNested(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	if err := v.Mkdir("/a"); err != nil {
		t.Fatal(err)
	}
	if err := v.Mkdir("/a/b"); err != nil {
		t.Fatal(err)
	}
	if err := v.Mkdir("/a"); !errors.Is(err, fs.ErrExist) {
		t.Fatalf("duplicate Mkdir err = %v", err)
	}
	f, err := v.Create("/a/b/c.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	ents, err := v.ReadDir("/a/b")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 1 || ents[0].Name != "c.txt" || ents[0].IsDir {
		t.Fatalf("ReadDir = %+v", ents)
	}
	ents, _ = v.ReadDir("/")
	if len(ents) != 1 || ents[0].Name != "a" || !ents[0].IsDir {
		t.Fatalf("root ReadDir = %+v", ents)
	}
	info, err := v.Stat("/a/b/c.txt")
	if err != nil || info.IsDir || info.Size != 1 {
		t.Fatalf("Stat = %+v, %v", info, err)
	}
}

func TestRemoveFileFreesSpace(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	// Warm up the root directory's entry block so it doesn't count as a
	// "leak" below.
	warm, _ := v.Create("/warm")
	_ = warm.Close()
	if err := v.Remove("/warm"); err != nil {
		t.Fatal(err)
	}
	if err := v.checkpoint(); err != nil {
		t.Fatal(err)
	}
	before := v.Stats().FreeBlocks
	f, _ := v.Create("/f")
	if _, err := f.WriteAt(make([]byte, 100*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("/f"); err != nil {
		t.Fatal(err)
	}
	if err := v.checkpoint(); err != nil { // drain quarantine
		t.Fatal(err)
	}
	after := v.Stats().FreeBlocks
	if after < before {
		t.Fatalf("space leaked: before %d, after %d", before, after)
	}
	if _, err := v.Open("/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Open(removed) err = %v", err)
	}
}

func TestRemoveSemantics(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	if err := v.Remove("/nope"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("Remove missing err = %v", err)
	}
	_ = v.Mkdir("/d")
	f, _ := v.Create("/d/x")
	_ = f.Close()
	if err := v.Remove("/d"); !errors.Is(err, fs.ErrNotEmpty) {
		t.Fatalf("Remove non-empty dir err = %v", err)
	}
	if err := v.Remove("/d/x"); err != nil {
		t.Fatal(err)
	}
	if err := v.Remove("/d"); err != nil {
		t.Fatal(err)
	}
}

func TestCreateTruncatesExisting(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/f")
	_, _ = f.WriteAt(bytes.Repeat([]byte{1}, 8192), 0)
	_ = f.Sync()
	f2, err := v.Create("/f")
	if err != nil {
		t.Fatal(err)
	}
	if f2.Size() != 0 {
		t.Fatalf("re-Create size = %d, want 0", f2.Size())
	}
}

func TestTruncateShrinkAndGrow(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/f")
	_, _ = f.WriteAt(bytes.Repeat([]byte{7}, 5*BlockSize), 0)
	if err := f.Truncate(BlockSize + 10); err != nil {
		t.Fatal(err)
	}
	if f.Size() != BlockSize+10 {
		t.Fatalf("size = %d", f.Size())
	}
	got := make([]byte, 2*BlockSize)
	n, _ := f.ReadAt(got, 0)
	if n != BlockSize+10 {
		t.Fatalf("read %d bytes, want %d", n, BlockSize+10)
	}
	if err := f.Truncate(10 * BlockSize); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 10*BlockSize {
		t.Fatal("grow failed")
	}
}

func TestUnalignedIO(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/f")
	// Write straddling block boundaries at odd offsets.
	payload := bytes.Repeat([]byte{0xEE}, 3000)
	if _, err := f.WriteAt(payload, BlockSize-100); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3000)
	if _, err := f.ReadAt(got, BlockSize-100); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("unaligned round trip failed")
	}
}

func TestSyncEveryWriteOption(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{SyncEveryWrite: true})
	f, _ := v.Create("/f")
	flushesBefore := dev.Flushes()
	for i := 0; i < 5; i++ {
		if _, err := f.WriteAt(make([]byte, BlockSize), int64(i)*BlockSize); err != nil {
			t.Fatal(err)
		}
	}
	if dev.Flushes()-flushesBefore < 5 {
		t.Fatalf("SyncEveryWrite issued %d barriers, want >= 5", dev.Flushes()-flushesBefore)
	}
}

func TestLazytimeAvoidsJournalPerOverwrite(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/f")
	if _, err := f.WriteAt(make([]byte, 64*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	commitsBefore := v.Stats().JournalCommits
	// In-place overwrites: no allocation, timestamps only.
	for i := 0; i < 32; i++ {
		if _, err := f.WriteAt(make([]byte, BlockSize), int64(i)*BlockSize); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	commits := v.Stats().JournalCommits - commitsBefore
	if commits > 2 {
		t.Fatalf("lazytime: %d journal commits for 32 pure overwrites, want <= 2", commits)
	}
}

func TestCrashRecoveryReplaysJournal(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/important")
	payload := bytes.Repeat([]byte{0x77}, 3*BlockSize)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // journal committed, NOT checkpointed
		t.Fatal(err)
	}
	v.SimulateCrash()

	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatalf("mount after crash: %v", err)
	}
	if v2.Stats().ReplayedTxns == 0 {
		t.Fatal("no transactions replayed after crash")
	}
	f2, err := v2.Open("/important")
	if err != nil {
		t.Fatalf("file lost after crash: %v", err)
	}
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("data corrupted across crash")
	}
}

func TestCrashBeforeCommitLosesNothingCommitted(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{})
	fa, _ := v.Create("/committed")
	if _, err := fa.WriteAt([]byte("safe"), 0); err != nil {
		t.Fatal(err)
	}
	if err := fa.Sync(); err != nil {
		t.Fatal(err)
	}
	// A second file is created but the volume crashes before its inode
	// journals (Create commits, so write without sync instead).
	fb, _ := v.Create("/uncommitted")
	if _, err := fb.WriteAt(bytes.Repeat([]byte{9}, BlockSize*2), 0); err != nil {
		t.Fatal(err)
	}
	v.SimulateCrash()
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Open("/committed"); err != nil {
		t.Fatalf("committed file lost: %v", err)
	}
	// The uncommitted file exists (Create committed) but its post-crash
	// size must be the committed one (0).
	info, err := v2.Stat("/uncommitted")
	if err != nil {
		t.Fatalf("uncommitted file should exist: %v", err)
	}
	if info.Size != 0 {
		t.Fatalf("uncommitted size = %d, want 0 (ordered-mode guarantee)", info.Size)
	}
}

func TestJournalWrapsViaCheckpoint(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	// Force many hard-metadata transactions to wrap the journal.
	for i := 0; i < 500; i++ {
		name := "/f" + string(rune('a'+i%26)) + string(rune('0'+i%10))
		f, err := v.Create(name)
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if _, err := f.WriteAt([]byte("x"), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := v.Remove(name); err != nil {
			t.Fatal(err)
		}
	}
	if v.Stats().CheckpointWrites == 0 {
		t.Fatal("journal never checkpointed despite heavy metadata traffic")
	}
}

func TestDataAccountingMode(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{DataAccounting: true})
	f, _ := v.Create("/f")
	if _, err := f.WriteAt(bytes.Repeat([]byte{5}, 2*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Content reads as zeroes, size is tracked.
	got := make([]byte, BlockSize)
	n, err := f.ReadAt(got, 0)
	if err != nil || n != BlockSize {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	for _, b := range got {
		if b != 0 {
			t.Fatal("accounting mode retained payload")
		}
	}
	if f.Size() != 2*BlockSize {
		t.Fatal("size lost in accounting mode")
	}
	// Metadata is still real: remount sees the file.
	if err := v.Unmount(); err != nil {
		t.Fatal(err)
	}
}

func TestBadPaths(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	for _, p := range []string{"", "/", "/a/../b", "/."} {
		if _, err := v.Create(p); err == nil {
			t.Errorf("Create(%q) succeeded", p)
		}
	}
	if _, err := v.Open("/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Open missing err = %v", err)
	}
	if _, err := v.Open("/"); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("Open(/) err = %v", err)
	}
	f, _ := v.Create("/f")
	_ = f.Close()
	if _, err := v.ReadDir("/f"); !errors.Is(err, fs.ErrNotDir) {
		t.Errorf("ReadDir(file) err = %v", err)
	}
	if _, err := v.Create("/f/child"); !errors.Is(err, fs.ErrNotDir) {
		t.Errorf("Create under file err = %v", err)
	}
}

func TestOutOfSpace(t *testing.T) {
	v, _ := newVolume(t, 2, fs.Options{})
	f, _ := v.Create("/f")
	buf := make([]byte, 64*BlockSize)
	var err error
	for i := int64(0); i < 100; i++ {
		if _, err = f.WriteAt(buf, i*int64(len(buf))); err != nil {
			break
		}
	}
	if !errors.Is(err, fs.ErrNoSpace) {
		t.Fatalf("err = %v, want ErrNoSpace", err)
	}
}

func TestOperationsAfterUnmountFail(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/f")
	if err := v.Unmount(); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Create("/g"); !errors.Is(err, fs.ErrUnmounted) {
		t.Errorf("Create after unmount err = %v", err)
	}
	if _, err := f.WriteAt([]byte("x"), 0); !errors.Is(err, fs.ErrUnmounted) {
		t.Errorf("WriteAt after unmount err = %v", err)
	}
	if err := v.Unmount(); !errors.Is(err, fs.ErrUnmounted) {
		t.Errorf("double Unmount err = %v", err)
	}
}

func TestRandomizedWriteReadAgainstModel(t *testing.T) {
	// Property-style: random block writes mirrored in an in-memory model.
	v, _ := newVolume(t, 16, fs.Options{})
	f, _ := v.Create("/model")
	const fileBlocks = 300
	model := make([]byte, fileBlocks*BlockSize)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 400; i++ {
		blk := rng.Intn(fileBlocks)
		val := byte(rng.Intn(255) + 1)
		chunk := bytes.Repeat([]byte{val}, BlockSize)
		copy(model[blk*BlockSize:], chunk)
		if _, err := f.WriteAt(chunk, int64(blk)*BlockSize); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i%50 == 0 {
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	got := make([]byte, len(model))
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	// Compare only up to the file's actual size.
	sz := f.Size()
	if !bytes.Equal(got[:sz], model[:sz]) {
		t.Fatal("file diverged from model")
	}
}

func TestReuseAfterRemoveManyFiles(t *testing.T) {
	v, _ := newVolume(t, 4, fs.Options{})
	// Create/delete cycles must not exhaust inodes or blocks.
	for cycle := 0; cycle < 30; cycle++ {
		f, err := v.Create("/cyc")
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if _, err := f.WriteAt(make([]byte, 50*BlockSize), 0); err != nil {
			t.Fatalf("cycle %d write: %v", cycle, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := v.Remove("/cyc"); err != nil {
			t.Fatalf("cycle %d remove: %v", cycle, err)
		}
	}
}

func TestRenameBasics(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/a.tmp")
	if _, err := f.WriteAt([]byte("payload"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := v.Rename("/a.tmp", "/a"); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if _, err := v.Open("/a.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("source still exists")
	}
	g, err := v.Open("/a")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 7)
	if _, err := g.ReadAt(got, 0); err != nil || string(got) != "payload" {
		t.Fatalf("content lost: %q %v", got, err)
	}
	if err := v.Rename("/missing", "/x"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("rename missing err = %v", err)
	}
}

func TestRenameReplacesTarget(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	oldF, _ := v.Create("/old")
	_, _ = oldF.WriteAt([]byte("old"), 0)
	newF, _ := v.Create("/new.tmp")
	_, _ = newF.WriteAt([]byte("new"), 0)
	_ = newF.Sync()
	if err := v.Rename("/new.tmp", "/old"); err != nil {
		t.Fatalf("replacing rename: %v", err)
	}
	g, err := v.Open("/old")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if _, err := g.ReadAt(got, 0); err != nil || string(got) != "new" {
		t.Fatalf("target not replaced: %q %v", got, err)
	}
	ents, _ := v.ReadDir("/")
	if len(ents) != 1 {
		t.Fatalf("root has %d entries, want 1", len(ents))
	}
}

func TestRenameAcrossDirectories(t *testing.T) {
	v, _ := newVolume(t, 8, fs.Options{})
	_ = v.Mkdir("/src")
	_ = v.Mkdir("/dst")
	f, _ := v.Create("/src/f")
	_, _ = f.WriteAt([]byte("x"), 0)
	_ = f.Sync()
	if err := v.Rename("/src/f", "/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Stat("/dst/g"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Stat("/src/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("source survived cross-dir rename")
	}
	// Renaming onto a directory is refused.
	g, _ := v.Create("/file")
	_ = g.Close()
	if err := v.Rename("/file", "/dst"); !errors.Is(err, fs.ErrIsDir) {
		t.Fatalf("rename onto dir err = %v", err)
	}
}

func TestRenameSurvivesCrash(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/cfg.tmp")
	_, _ = f.WriteAt([]byte("v2"), 0)
	_ = f.Sync()
	if err := v.Rename("/cfg.tmp", "/cfg"); err != nil {
		t.Fatal(err)
	}
	v.SimulateCrash()
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := v2.Open("/cfg"); err != nil {
		t.Fatalf("renamed file lost after crash: %v", err)
	}
	if _, err := v2.Open("/cfg.tmp"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("both names exist after crash (non-atomic rename)")
	}
}

// TestTornCommitDiscarded corrupts a transaction's commit record on disk;
// replay must stop before it (the transaction never happened) and the
// volume must mount cleanly.
func TestTornCommitDiscarded(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/a")
	if _, err := f.WriteAt(bytes.Repeat([]byte{1}, BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil { // txn 1: committed
		t.Fatal(err)
	}
	// A second transaction...
	if _, err := f.WriteAt(bytes.Repeat([]byte{2}, BlockSize), BlockSize); err != nil {
		t.Fatal(err)
	}
	f2, _ := v.Create("/b") // hard metadata: forces a journal txn on sync
	if _, err := f2.WriteAt([]byte{9}, 0); err != nil {
		t.Fatal(err)
	}
	if err := f2.Sync(); err != nil {
		t.Fatal(err)
	}
	head := v.jHead // one past the last committed txn
	v.SimulateCrash()
	// Tear the LAST commit record (the block just before head).
	torn := make([]byte, BlockSize)
	if err := dev.ReadAt(torn, int64(head-1)*BlockSize); err != nil {
		t.Fatal(err)
	}
	torn[0] ^= 0xFF
	if err := dev.WriteAt(torn, int64(head-1)*BlockSize); err != nil {
		t.Fatal(err)
	}
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatalf("mount after torn commit: %v", err)
	}
	// Txn 1's file exists; the volume works.
	if _, err := v2.Open("/a"); err != nil {
		t.Fatalf("first committed txn lost: %v", err)
	}
	g, err := v2.Create("/after")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := g.WriteAt([]byte("ok"), 0); err != nil {
		t.Fatal(err)
	}
	if err := g.Sync(); err != nil {
		t.Fatal(err)
	}
}

func TestFsckCleanVolume(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{})
	_ = v.Mkdir("/d")
	f, _ := v.Create("/d/file")
	if _, err := f.WriteAt(make([]byte, 30*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dev)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Clean() {
		t.Fatalf("clean volume reported corrupt: %v", rep.Corruptions)
	}
	if rep.Files != 1 || rep.Dirs != 2 { // root + /d
		t.Fatalf("files=%d dirs=%d", rep.Files, rep.Dirs)
	}
	if rep.LeakedBlocks != 0 {
		t.Fatalf("clean unmount leaked %d blocks", rep.LeakedBlocks)
	}
}

func TestFsckAfterCrashRecovery(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{})
	for i := 0; i < 10; i++ {
		f, _ := v.Create(fmt.Sprintf("/f%d", i))
		if _, err := f.WriteAt(make([]byte, 10*BlockSize), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
	}
	_ = v.Remove("/f3")
	_ = v.Remove("/f7")
	v.SimulateCrash()
	v2, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := v2.Unmount(); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dev)
	if err != nil {
		t.Fatal(err)
	}
	// Recovery may leak quarantined blocks (legal) but must never leave
	// structural corruption.
	if !rep.Clean() {
		t.Fatalf("post-recovery corruption: %v", rep.Corruptions)
	}
	if rep.Files != 8 {
		t.Fatalf("files = %d, want 8", rep.Files)
	}
}

func TestFsckDetectsCorruption(t *testing.T) {
	v, dev := newVolume(t, 8, fs.Options{})
	f, _ := v.Create("/f")
	if _, err := f.WriteAt(make([]byte, 4*BlockSize), 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Unmount(); err != nil {
		t.Fatal(err)
	}
	// Corrupt: clear an allocated data block's bitmap bit behind the
	// volume's back.
	sbBlk := make([]byte, BlockSize)
	if err := dev.ReadAt(sbBlk, 0); err != nil {
		t.Fatal(err)
	}
	sb, err := decodeSuperblock(sbBlk)
	if err != nil {
		t.Fatal(err)
	}
	bm := make([]byte, BlockSize)
	if err := dev.ReadAt(bm, int64(sb.bitmapStart)*BlockSize); err != nil {
		t.Fatal(err)
	}
	// Find a set bit in the data area and clear it.
	cleared := false
	for blk := sb.dataStart; blk < sb.totalBlocks && blk < sb.bitmapStart+BlockSize*8; blk++ {
		byteIdx, bit := blk/8, blk%8
		if bm[byteIdx]&(1<<bit) != 0 {
			bm[byteIdx] &^= 1 << bit
			cleared = true
			break
		}
	}
	if !cleared {
		t.Fatal("no allocated data block found to corrupt")
	}
	if err := dev.WriteAt(bm, int64(sb.bitmapStart)*BlockSize); err != nil {
		t.Fatal(err)
	}
	rep, err := Fsck(dev)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Clean() {
		t.Fatal("fsck missed a deliberately corrupted bitmap")
	}
}
