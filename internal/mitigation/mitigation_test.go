package mitigation

import (
	"math/rand"
	"testing"
	"time"

	"flashwear/internal/device"
	"flashwear/internal/ftl"
	"flashwear/internal/simclock"
)

func testBudget() LifespanBudget {
	return LifespanBudget{
		CapacityBytes: 8 << 30,
		RatedPE:       1400,
		TargetYears:   3,
		ExpectedWA:    2,
	}
}

func TestBudgetMath(t *testing.T) {
	b := testBudget()
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	// 8 GiB * 1400 / 2 = 5.6 TiB total; /1095 days ≈ 5.24 GiB/day.
	perDay := b.BytesPerDay() / (1 << 30)
	if perDay < 5 || perDay > 5.5 {
		t.Fatalf("budget = %.2f GiB/day, want ~5.2", perDay)
	}
	if b.BytesPerSecond() <= 0 {
		t.Fatal("zero rate")
	}
	bad := []LifespanBudget{
		{CapacityBytes: 0, RatedPE: 1, TargetYears: 1},
		{CapacityBytes: 1, RatedPE: 0, TargetYears: 1},
		{CapacityBytes: 1, RatedPE: 1, TargetYears: 0},
		{CapacityBytes: 1, RatedPE: 1, TargetYears: 1, ExpectedWA: -1},
	}
	for i, x := range bad {
		if x.Validate() == nil {
			t.Errorf("case %d accepted", i)
		}
	}
}

func TestTokenBucketBurstThenThrottle(t *testing.T) {
	tb := NewTokenBucket(1000, 5000) // 1000 B/s, 5000 B burst
	now := time.Duration(0)
	// The burst passes free.
	if d := tb.Take(5000, now); d != 0 {
		t.Fatalf("burst delayed %v", d)
	}
	// The next chunk must wait ~2 seconds.
	d := tb.Take(2000, now)
	if d < 1900*time.Millisecond || d > 2100*time.Millisecond {
		t.Fatalf("delay = %v, want ~2s", d)
	}
	// After enough simulated time, tokens replenish.
	now += 10 * time.Second
	if d := tb.Take(1000, now); d != 0 {
		t.Fatalf("replenished take delayed %v", d)
	}
}

func TestTokenBucketZeroRate(t *testing.T) {
	tb := NewTokenBucket(0, 10)
	_ = tb.Take(10, 0)
	if d := tb.Take(1, 0); d <= 0 {
		t.Fatal("zero-rate bucket did not block")
	}
}

func TestRateLimiterGlobalVsPerApp(t *testing.T) {
	lim, err := NewRateLimiter(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	lim.BurstBytes = 1 << 20
	lim.global = NewTokenBucket(lim.budget.BytesPerSecond(), lim.BurstBytes)
	// Exhaust the global bucket with app A; app B is then throttled too.
	_ = lim.Throttle("a", 1<<20, 0)
	if d := lim.Throttle("b", 1<<20, 0); d == 0 {
		t.Fatal("global limiter did not throttle app B after app A's burst")
	}

	lim2, _ := NewRateLimiter(testBudget())
	lim2.PerApp = true
	lim2.BurstBytes = 1 << 20
	_ = lim2.Throttle("a", 1<<20, 0)
	_ = lim2.Throttle("a", 1<<20, 0) // A now throttled
	if d := lim2.Throttle("b", 1<<20, 0); d != 0 {
		t.Fatalf("per-app limiter punished app B for app A's writes (%v)", d)
	}
	if lim2.ThrottledTime() == 0 {
		t.Fatal("no throttling recorded")
	}
}

func TestClassifierFlagsAttackNotBenign(t *testing.T) {
	c := NewClassifier(testBudget())
	now := time.Duration(0)
	// Attack: sustained 4 KiB sync writes at ~4 MiB/s for half an hour.
	for now < 30*time.Minute {
		c.ObserveWrite("attacker", 4096, true, now)
		now += time.Millisecond
	}
	if !c.Malicious("attacker", now) {
		t.Fatalf("attacker score = %v, not flagged", c.Score("attacker", now))
	}
	// Benign: a 200 MiB file transfer burst, then silence.
	c2 := NewClassifier(testBudget())
	burstNow := time.Duration(0)
	for i := 0; i < 200; i++ {
		c2.ObserveWrite("camera", 1<<20, false, burstNow)
		burstNow += 10 * time.Millisecond
	}
	// Evaluated a few hours later, the burst has aged out of pressure.
	later := 6 * time.Hour
	if c2.Malicious("camera", later) {
		t.Fatalf("benign burst flagged: score %v", c2.Score("camera", later))
	}
	if c2.Score("unknown", later) != 0 {
		t.Fatal("unknown app scored")
	}
}

func TestSelectiveThrottlerSparesBenign(t *testing.T) {
	st, err := NewSelectiveThrottler(testBudget())
	if err != nil {
		t.Fatal(err)
	}
	// Benign burst: never throttled.
	var benignDelay time.Duration
	now := time.Duration(0)
	for i := 0; i < 100; i++ {
		benignDelay += st.Throttle("camera", 1<<20, now)
		now += 20 * time.Millisecond
	}
	if benignDelay != 0 {
		t.Fatalf("benign app delayed %v", benignDelay)
	}
	// Attack: small writes, sustained for an hour -> flagged and throttled.
	var attackDelay time.Duration
	for now < time.Hour {
		attackDelay += st.Throttle("attacker", 4096, now)
		now += time.Millisecond
	}
	if attackDelay == 0 {
		t.Fatal("attacker never throttled")
	}
}

func TestWearWatchAlerts(t *testing.T) {
	clock := simclock.New()
	p := device.ProfileEMMC8().Scaled(512)
	p.RatedPE = 60
	dev, err := device.New(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWearWatch(dev)
	s := w.Sample(clock.Now())
	if s.Alert != AlertNone || s.Untrusted {
		t.Fatalf("fresh sample = %+v", s)
	}
	// Wear it down, sampling as we go.
	rng := rand.New(rand.NewSource(5))
	var lastErr error
	for i := 0; i < 3_000_000; i++ {
		off := int64(rng.Intn(int(dev.Size()/4096/8))) * 4096
		if lastErr = dev.WriteAccounted(off, 4096); lastErr != nil {
			break
		}
		if i%2000 == 0 {
			w.Sample(clock.Now())
		}
	}
	w.Sample(clock.Now())
	warnAt, warned := w.FirstAlertAt(AlertWarning)
	critAt, crit := w.FirstAlertAt(AlertCritical)
	if !warned || !crit {
		t.Fatalf("alerts missing: warn=%v crit=%v (history %d)", warned, crit, len(w.History()))
	}
	if warnAt >= critAt {
		t.Fatalf("warning (%v) should precede critical (%v)", warnAt, critAt)
	}
	if dev.WearIndicator(ftl.PoolB) < 9 {
		t.Fatal("device not actually worn")
	}
}

func TestWearWatchUntrustedRegisters(t *testing.T) {
	clock := simclock.New()
	dev, err := device.New(device.ProfileBLU512().Scaled(64), clock)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWearWatch(dev)
	sawUntrusted := false
	for i := 0; i < 50; i++ {
		if w.Sample(clock.Now()).Untrusted {
			sawUntrusted = true
			break
		}
	}
	if !sawUntrusted {
		t.Fatal("BLU-class registers never flagged untrusted")
	}
}

func TestAlertLevelString(t *testing.T) {
	for l, want := range map[AlertLevel]string{
		AlertNone: "none", AlertInfo: "info", AlertWarning: "warning",
		AlertCritical: "critical", AlertLevel(9): "unknown",
	} {
		if l.String() != want {
			t.Errorf("%d.String() = %q", l, l.String())
		}
	}
}

func TestProjectedEOL(t *testing.T) {
	clock := simclock.New()
	p := device.ProfileEMMC8().Scaled(512)
	p.RatedPE = 200
	dev, err := device.New(p, clock)
	if err != nil {
		t.Fatal(err)
	}
	w := NewWearWatch(dev)
	if _, ok := w.ProjectedEOL(clock.Now()); ok {
		t.Fatal("projection from empty history")
	}
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 600_000; i++ {
		off := int64(rng.Intn(int(dev.Size()/4096/8))) * 4096
		if err := dev.WriteAccounted(off, 4096); err != nil {
			break
		}
		if i%5000 == 0 {
			w.Sample(clock.Now())
		}
		if dev.WearIndicator(ftl.PoolB) >= 5 {
			break
		}
	}
	w.Sample(clock.Now())
	remaining, ok := w.ProjectedEOL(clock.Now())
	if !ok {
		t.Fatal("no projection despite steady wear")
	}
	// At ~50% life consumed, the projection should be the same order as
	// the elapsed time.
	elapsed := clock.Now()
	if remaining < elapsed/4 || remaining > elapsed*4 {
		t.Fatalf("projection %v implausible vs elapsed %v", remaining, elapsed)
	}
}

func TestAttributeWear(t *testing.T) {
	shares := AttributeWear(0.40, map[string]int64{
		"attacker": 900 << 20,
		"camera":   90 << 20,
		"chat":     10 << 20,
	})
	if len(shares) != 3 {
		t.Fatalf("shares = %d", len(shares))
	}
	if shares[0].App != "attacker" {
		t.Fatalf("top consumer = %s", shares[0].App)
	}
	if shares[0].LifePct < 35 || shares[0].LifePct > 37 {
		t.Fatalf("attacker share = %.1f%%, want ~36%%", shares[0].LifePct)
	}
	var sum float64
	for _, s := range shares {
		sum += s.LifePct
	}
	if sum < 39.9 || sum > 40.1 {
		t.Fatalf("shares sum to %.2f%%, want 40%%", sum)
	}
	// Degenerate: no bytes at all.
	if got := AttributeWear(0.5, map[string]int64{"idle": 0}); got[0].LifePct != 0 {
		t.Fatal("zero-byte app attributed wear")
	}
}
