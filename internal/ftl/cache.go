package ftl

import (
	"errors"

	"flashwear/internal/nand"
)

// cachePool models the small high-endurance "Type A" memory as firmware
// actually manages it in mobile parts: a circular log of SLC-mode blocks.
// Writes append at the head; a drain process scans the tail in FIFO order,
// migrating still-valid pages to the main pool and erasing fully-scanned
// blocks. There is no garbage collection — space is reclaimed strictly in
// ring order — so cache wear is proportional to the pages it absorbs, which
// is what lets Table 1's Type A / Type B wear ratio emerge from mechanism
// rather than curve fitting.
type cachePool struct {
	chip *nand.Chip
	ppb  int

	ring []int // usable block indices in ring order (bad blocks removed)
	head int   // ring position being filled
	tail int   // ring position being drained
	used int   // blocks in [tail, head] holding data (head inclusive once written)

	headPage int // next free page in the head block
	tailPage int // next page to scan in the tail block

	rmap  []int32 // physical page -> logical page, -1 if dead
	valid []int32
}

func newCachePool(chip *nand.Chip) *cachePool {
	g := chip.Geometry()
	c := &cachePool{
		chip:  chip,
		ppb:   g.PagesPerBlock,
		rmap:  make([]int32, g.Blocks()*g.PagesPerBlock),
		valid: make([]int32, g.Blocks()),
	}
	for i := range c.rmap {
		c.rmap[i] = -1
	}
	for b := 0; b < g.Blocks(); b++ {
		c.ring = append(c.ring, b)
	}
	return c
}

// alive reports whether the cache still has usable blocks.
func (c *cachePool) alive() bool { return len(c.ring) >= 2 }

// pages returns the cache's total usable page count.
func (c *cachePool) pages() int { return len(c.ring) * c.ppb }

// content reports whether any block holds data awaiting drain.
func (c *cachePool) content() bool { return c.used > 0 || c.headPage > 0 }

// hasFreeSlot reports whether a write can be absorbed right now: the head
// block has a free page, or the ring has an erased block to advance into.
func (c *cachePool) hasFreeSlot() bool {
	if !c.alive() {
		return false
	}
	if c.headPage < c.ppb {
		return true
	}
	return c.used < len(c.ring)-1 // keep one block gap between head and tail
}

// program appends one page at the head. Callers must check hasFreeSlot.
func (c *cachePool) program(lp int32, data []byte, cost *Cost) (loc, error) {
	for attempts := 0; attempts < 4; attempts++ {
		if !c.hasFreeSlot() {
			return noLoc, ErrNoSpace
		}
		if c.headPage >= c.ppb {
			c.head = (c.head + 1) % len(c.ring)
			c.headPage = 0
			c.used++
		}
		b := c.ring[c.head]
		addr := nand.PageAddr{Block: b, Page: c.headPage}
		_, err := c.chip.ProgramPage(addr, data)
		cost.Programs++
		c.headPage++
		if err == nil {
			c.rmap[b*c.ppb+addr.Page] = lp
			c.valid[b]++
			return makeLoc(PoolA, b, addr.Page), nil
		}
		if errors.Is(err, nand.ErrProgramFail) {
			continue // page wasted; try the next slot
		}
		return noLoc, err
	}
	return noLoc, ErrNoSpace
}

// invalidate drops a cache page from the valid set.
func (c *cachePool) invalidate(l loc) {
	idx := l.block()*c.ppb + l.page()
	if c.rmap[idx] < 0 {
		return
	}
	c.rmap[idx] = -1
	c.valid[l.block()]--
}

// read returns the payload at l.
func (c *cachePool) read(l loc, cost *Cost) ([]byte, error) {
	data, _, err := c.chip.ReadPage(nand.PageAddr{Block: l.block(), Page: l.page()})
	cost.Reads++
	return data, err
}

// drainOne advances the tail scan by one page. If that page is still valid,
// it returns its logical page and payload for the owner to rewrite into the
// main pool; otherwise (dead page, or nothing to drain) it returns lp = -1.
// Fully scanned tail blocks are erased and rejoin the ring.
func (c *cachePool) drainOne(cost *Cost) (lp int32, data []byte, err error) {
	if !c.content() {
		return -1, nil, nil
	}
	if c.used == 0 {
		// Only the head block holds data. If it is completely filled it
		// can be closed and drained like any other; a block still being
		// filled is left alone.
		if c.headPage < c.ppb || len(c.ring) < 2 {
			return -1, nil, nil
		}
		c.head = (c.head + 1) % len(c.ring)
		c.headPage = 0
		c.used++
	}
	b := c.ring[c.tail]
	if c.tail == c.head {
		// Should not happen while used > 0; be safe.
		return -1, nil, nil
	}
	idx := b*c.ppb + c.tailPage
	lp = c.rmap[idx]
	if lp >= 0 {
		data, err = c.read(makeLoc(PoolA, b, c.tailPage), cost)
		if err != nil {
			// Uncorrectable: the page's data is lost.
			c.rmap[idx] = -1
			c.valid[b]--
			lp = -2 // signal loss to the owner
			data = nil
			err = nil
		}
	}
	c.tailPage++
	if c.tailPage >= c.ppb {
		c.eraseTail(cost)
	}
	return lp, data, nil
}

// eraseTail erases the fully scanned tail block and advances the tail.
func (c *cachePool) eraseTail(cost *Cost) {
	b := c.ring[c.tail]
	base := b * c.ppb
	for pg := 0; pg < c.ppb; pg++ {
		c.rmap[base+pg] = -1
	}
	c.valid[b] = 0
	_, err := c.chip.EraseBlock(b)
	cost.Erases++
	pos := c.tail
	c.tail = (c.tail + 1) % len(c.ring)
	c.tailPage = 0
	c.used--
	if err != nil || c.chip.ShouldRetire(b) {
		c.chip.MarkBad(b)
		c.removeFromRing(pos)
	}
}

// removeFromRing drops the block at ring position pos, fixing up head/tail
// positions.
func (c *cachePool) removeFromRing(pos int) {
	c.ring = append(c.ring[:pos], c.ring[pos+1:]...)
	if len(c.ring) == 0 {
		c.head, c.tail = 0, 0
		return
	}
	if c.head > pos {
		c.head--
	} else if c.head >= len(c.ring) {
		c.head = 0
	}
	if c.tail > pos {
		c.tail--
	} else if c.tail >= len(c.ring) {
		c.tail = 0
	}
}

// validPages returns the number of live pages held in the cache.
func (c *cachePool) validPages() int64 {
	var n int64
	for _, v := range c.valid {
		n += int64(v)
	}
	return n
}

// utilisation returns the fraction of cache pages holding data (valid or
// dead-but-not-yet-drained).
func (c *cachePool) utilisation() float64 {
	if !c.alive() {
		return 1
	}
	pagesInUse := c.used * c.ppb
	pagesInUse += c.headPage
	return float64(pagesInUse) / float64(c.pages())
}
