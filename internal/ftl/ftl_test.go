package ftl

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"flashwear/internal/nand"
)

// testChipCfg returns a small chip: 32 blocks x 16 pages x 4 KiB = 2 MiB.
func testChipCfg(rated int) nand.Config {
	return nand.Config{
		Geometry: nand.Geometry{
			Dies: 1, PlanesPerDie: 2, BlocksPerPlane: 16,
			PagesPerBlock: 16, PageSize: 4096,
		},
		Cell:    nand.MLC,
		RatedPE: rated,
		Seed:    11,
	}
}

func newTestFTL(t *testing.T, mutate func(*Config)) *FTL {
	t.Helper()
	cfg := Config{MainChip: testChipCfg(100_000)}
	if mutate != nil {
		mutate(&cfg)
	}
	f, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return f
}

func page(b byte, size int) []byte {
	p := make([]byte, size)
	for i := range p {
		p[i] = b
	}
	return p
}

func TestConfigValidation(t *testing.T) {
	cases := []func(*Config){
		func(c *Config) { c.OverProvision = 0.9 },
		func(c *Config) { c.GCLowWater = 1 },
		func(c *Config) { c.GCHighWater = 2; c.GCLowWater = 4 },
		func(c *Config) { c.GC = GCPolicy(9) },
	}
	for i, mutate := range cases {
		cfg := Config{MainChip: testChipCfg(1000)}
		cfg.setDefaults()
		mutate(&cfg)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestHybridConfigValidation(t *testing.T) {
	bad := []HybridConfig{
		{DrainRatio: -1},
		{DrainRatio: 0.1, DrainWatermark: 2},
		{DrainRatio: 0.1, DrainWatermark: 0.5, MergeUtilisation: -1},
		{DrainRatio: 0.1, RouteMaxBytes: -1},
	}
	for i := range bad {
		cfg := Config{MainChip: testChipCfg(1000), Hybrid: &bad[i]}
		cfg.setDefaults()
		// restore the deliberately bad fields wiped by defaults
		*cfg.Hybrid = bad[i]
		cfg.Hybrid.CacheChip = testChipCfg(1000)
		if _, err := New(cfg); err == nil {
			t.Errorf("case %d: invalid hybrid config accepted: %+v", i, bad[i])
		}
	}
}

func TestCapacityAfterOverProvision(t *testing.T) {
	f := newTestFTL(t, func(c *Config) { c.OverProvision = 0.25 })
	// 32 blocks, 25% OP -> 24 user blocks -> 24*16 pages.
	if f.LogicalPages() != 24*16 {
		t.Fatalf("LogicalPages = %d, want %d", f.LogicalPages(), 24*16)
	}
	if f.Capacity() != int64(24*16*4096) {
		t.Fatalf("Capacity = %d", f.Capacity())
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	f := newTestFTL(t, nil)
	want := page(0xAB, 4096)
	if _, err := f.WritePage(5, want, 4096); err != nil {
		t.Fatalf("WritePage: %v", err)
	}
	got, _, err := f.ReadPage(5)
	if err != nil {
		t.Fatalf("ReadPage: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("read != written")
	}
}

func TestUnmappedReadsNil(t *testing.T) {
	f := newTestFTL(t, nil)
	got, cost, err := f.ReadPage(9)
	if err != nil || got != nil {
		t.Fatalf("unmapped read = (%v, %v), want (nil, nil)", got, err)
	}
	if cost.Reads != 0 {
		t.Fatal("unmapped read touched flash")
	}
}

func TestOverwriteReturnsNewData(t *testing.T) {
	f := newTestFTL(t, nil)
	for v := 0; v < 5; v++ {
		if _, err := f.WritePage(3, page(byte(v), 4096), 4096); err != nil {
			t.Fatal(err)
		}
	}
	got, _, err := f.ReadPage(3)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 4 {
		t.Fatalf("read %d, want 4 (latest)", got[0])
	}
}

func TestTrimUnmaps(t *testing.T) {
	f := newTestFTL(t, nil)
	if _, err := f.WritePage(2, page(1, 4096), 4096); err != nil {
		t.Fatal(err)
	}
	if f.Utilisation() == 0 {
		t.Fatal("utilisation should be > 0 after write")
	}
	if _, err := f.TrimPage(2); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := f.ReadPage(2); got != nil {
		t.Fatal("trimmed page still has data")
	}
	if f.Utilisation() != 0 {
		t.Fatalf("utilisation = %v after trim, want 0", f.Utilisation())
	}
}

func TestRangeChecks(t *testing.T) {
	f := newTestFTL(t, nil)
	if _, err := f.WritePage(-1, nil, 4096); !errors.Is(err, ErrRange) {
		t.Error("negative page accepted")
	}
	if _, err := f.WritePage(f.LogicalPages(), nil, 4096); !errors.Is(err, ErrRange) {
		t.Error("out-of-range page accepted")
	}
	if _, _, err := f.ReadPage(1 << 30); !errors.Is(err, ErrRange) {
		t.Error("out-of-range read accepted")
	}
	if _, err := f.WritePage(0, make([]byte, 100), 4096); err == nil {
		t.Error("short payload accepted")
	}
}

// TestGCReclaimsSpace writes far more data than raw capacity; GC must keep
// reclaiming invalidated pages indefinitely on a healthy chip.
func TestGCReclaimsSpace(t *testing.T) {
	f := newTestFTL(t, nil)
	rng := rand.New(rand.NewSource(3))
	hot := f.LogicalPages() / 4 // hot quarter of the space
	for i := 0; i < f.LogicalPages()*20; i++ {
		lp := rng.Intn(hot)
		if _, err := f.WritePage(lp, nil, 4096); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	if f.Bricked() {
		t.Fatal("healthy device bricked during GC workload")
	}
	wa := f.WriteAmplification()
	if wa < 1 {
		t.Fatalf("write amplification %v < 1", wa)
	}
	if wa > 3 {
		t.Fatalf("write amplification %v unreasonably high at low utilisation", wa)
	}
}

// TestWAIncreasesWithUtilisation reproduces §4.3's "Advanced Factors": more
// static data means more GC copy work per reclaimed block.
func TestWAIncreasesWithUtilisation(t *testing.T) {
	run := func(staticFrac float64) float64 {
		f := newTestFTL(t, nil)
		n := f.LogicalPages()
		staticPages := int(staticFrac * float64(n))
		for lp := 0; lp < staticPages; lp++ {
			if _, err := f.WritePage(lp, nil, 128<<10); err != nil {
				t.Fatal(err)
			}
		}
		// Rewrite a small hot region in the remaining space.
		hotBase := staticPages
		hotLen := n/10 + 1
		if hotBase+hotLen > n {
			hotBase = n - hotLen
		}
		rng := rand.New(rand.NewSource(4))
		before := f.Stats().HostPagesWritten
		beforeProgs := f.MainChip().Stats().Programs
		for i := 0; i < n*10; i++ {
			if _, err := f.WritePage(hotBase+rng.Intn(hotLen), nil, 4096); err != nil {
				t.Fatal(err)
			}
		}
		host := f.Stats().HostPagesWritten - before
		progs := f.MainChip().Stats().Programs - beforeProgs
		return float64(progs) / float64(host)
	}
	low, high := run(0.05), run(0.85)
	if high <= low {
		t.Fatalf("WA at 85%% utilisation (%v) should exceed WA at 5%% (%v)", high, low)
	}
}

// TestWearLevelingSpreadsErases compares the erase-count spread with and
// without wear-leveling under a hot-spot workload.
func TestWearLevelingSpreadsErases(t *testing.T) {
	spread := func(wl WearLeveling) float64 {
		f := newTestFTL(t, func(c *Config) { c.Wear = &wl })
		// Static cold data fills most of the space...
		n := f.LogicalPages()
		for lp := 0; lp < n*3/4; lp++ {
			if _, err := f.WritePage(lp, nil, 128<<10); err != nil {
				t.Fatal(err)
			}
		}
		// ...and a tiny hot region takes all the rewrites.
		rng := rand.New(rand.NewSource(5))
		for i := 0; i < n*30; i++ {
			if _, err := f.WritePage(n-1-rng.Intn(n/8), nil, 4096); err != nil {
				t.Fatal(err)
			}
		}
		chip := f.MainChip()
		min, max := 1<<30, 0
		for b := 0; b < chip.Geometry().Blocks(); b++ {
			ec := chip.EraseCount(b)
			if ec < min {
				min = ec
			}
			if ec > max {
				max = ec
			}
		}
		return float64(max - min)
	}
	with := spread(WearLeveling{Dynamic: true, Static: true, StaticThreshold: 8, StaticInterval: 32})
	without := spread(WearLeveling{Dynamic: false, Static: false, StaticThreshold: 1 << 30, StaticInterval: 1 << 30})
	if with >= without {
		t.Fatalf("erase spread with WL (%v) should be below without (%v)", with, without)
	}
}

// TestDeviceWearsOutAndBricks drives a low-endurance device to destruction,
// checking the indicator walks 1..11 and writes eventually fail — the core
// mechanism behind every experiment in §4. BrickAtEOL pins the legacy
// hard-brick behaviour the paper's phones exhibit; graceful read-only
// retirement (the default) is covered in recover_test.go.
func TestDeviceWearsOutAndBricks(t *testing.T) {
	f := newTestFTL(t, func(c *Config) { c.MainChip = testChipCfg(60); c.BrickAtEOL = true })
	rng := rand.New(rand.NewSource(6))
	lastIndicator := 0
	var err error
	for i := 0; i < 1_000_000; i++ {
		_, err = f.WritePage(rng.Intn(f.LogicalPages()/8), nil, 4096)
		if err != nil {
			break
		}
		if ind := f.WearIndicator(PoolB); ind < lastIndicator {
			t.Fatalf("wear indicator went backwards: %d -> %d", lastIndicator, ind)
		} else {
			lastIndicator = ind
		}
	}
	if err == nil {
		t.Fatal("device survived 1M writes at rated 60 P/E; wear model broken")
	}
	if !errors.Is(err, ErrBricked) {
		t.Fatalf("terminal error = %v, want ErrBricked", err)
	}
	if !f.Bricked() {
		t.Fatal("Bricked() false after terminal failure")
	}
	if lastIndicator < 10 {
		t.Fatalf("device died at indicator %d; expected to reach >= 10 first", lastIndicator)
	}
	// Everything fails once bricked.
	if _, err := f.WritePage(0, nil, 4096); !errors.Is(err, ErrBricked) {
		t.Fatal("write on bricked device did not return ErrBricked")
	}
	if _, err := f.Flush(); !errors.Is(err, ErrBricked) {
		t.Fatal("flush on bricked device did not return ErrBricked")
	}
	if f.PreEOLInfo() != 3 {
		t.Fatalf("PreEOLInfo = %d on bricked device, want 3 (urgent)", f.PreEOLInfo())
	}
}

func TestWearIndicatorLevels(t *testing.T) {
	f := newTestFTL(t, func(c *Config) { c.MainChip = testChipCfg(1000) })
	if ind := f.WearIndicator(PoolB); ind != 1 {
		t.Fatalf("fresh device indicator = %d, want 1", ind)
	}
	if f.PreEOLInfo() != 1 {
		t.Fatalf("fresh PreEOLInfo = %d, want 1", f.PreEOLInfo())
	}
	// Single-pool device reports Type A as unused (1).
	if ind := f.WearIndicator(PoolA); ind != 1 {
		t.Fatalf("single-pool Type A indicator = %d, want 1", ind)
	}
}

func TestFirmwareRatedOverride(t *testing.T) {
	// Firmware that assumes half the endurance reports wear twice as fast.
	mk := func(frw int) *FTL {
		return newTestFTL(t, func(c *Config) {
			c.MainChip = testChipCfg(1000)
			c.FirmwareRatedPE = frw
		})
	}
	a, b := mk(0), mk(500)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 20000; i++ {
		lp := rng.Intn(64)
		if _, err := a.WritePage(lp, nil, 4096); err != nil {
			t.Fatal(err)
		}
		if _, err := b.WritePage(lp, nil, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if a.LifeConsumed(PoolB) >= b.LifeConsumed(PoolB) {
		t.Fatalf("firmware margin did not accelerate the indicator: %v vs %v",
			a.LifeConsumed(PoolB), b.LifeConsumed(PoolB))
	}
}

func TestStatsAccounting(t *testing.T) {
	f := newTestFTL(t, nil)
	for i := 0; i < 10; i++ {
		if _, err := f.WritePage(i, nil, 4096); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	if s.HostPagesWritten != 10 {
		t.Fatalf("HostPagesWritten = %d, want 10", s.HostPagesWritten)
	}
	if s.HostBytesWritten != 10*4096 {
		t.Fatalf("HostBytesWritten = %d", s.HostBytesWritten)
	}
	if _, _, err := f.ReadPage(0); err != nil {
		t.Fatal(err)
	}
	if f.Stats().HostPagesRead != 1 {
		t.Fatalf("HostPagesRead = %d, want 1", f.Stats().HostPagesRead)
	}
}

func TestCostAccumulates(t *testing.T) {
	var c Cost
	c.Add(Cost{Programs: 2, Reads: 3, Erases: 1})
	c.Add(Cost{Programs: 1})
	if c.Programs != 3 || c.Reads != 3 || c.Erases != 1 {
		t.Fatalf("Cost = %+v", c)
	}
}

func TestPoolIDString(t *testing.T) {
	if PoolA.String() != "Type A" || PoolB.String() != "Type B" {
		t.Fatal("PoolID strings wrong")
	}
	if GCGreedy.String() != "greedy" || GCCostBenefit.String() != "cost-benefit" {
		t.Fatal("GCPolicy strings wrong")
	}
}

func TestLocPacking(t *testing.T) {
	l := makeLoc(PoolB, 123456, 789)
	if l.pool() != PoolB || l.block() != 123456 || l.page() != 789 {
		t.Fatalf("loc round trip failed: %v", l)
	}
	if noLoc.String() != "unmapped" {
		t.Fatal("noLoc string")
	}
}

func TestGCPolicyComparison(t *testing.T) {
	// Both policies must sustain a skewed workload; cost-benefit should
	// not be catastrophically worse.
	run := func(p GCPolicy) float64 {
		f := newTestFTL(t, func(c *Config) { c.GC = p })
		rng := rand.New(rand.NewSource(8))
		n := f.LogicalPages()
		for lp := 0; lp < n/2; lp++ {
			if _, err := f.WritePage(lp, nil, 128<<10); err != nil {
				t.Fatal(err)
			}
		}
		for i := 0; i < n*15; i++ {
			// 90% of writes to 10% of space.
			var lp int
			if rng.Float64() < 0.9 {
				lp = rng.Intn(n / 10)
			} else {
				lp = rng.Intn(n / 2)
			}
			if _, err := f.WritePage(lp, nil, 4096); err != nil {
				t.Fatal(err)
			}
		}
		return f.WriteAmplification()
	}
	g, cb := run(GCGreedy), run(GCCostBenefit)
	if g <= 0 || cb <= 0 {
		t.Fatal("zero WA")
	}
	if cb > g*2 {
		t.Fatalf("cost-benefit WA %v more than 2x greedy %v", cb, g)
	}
}
