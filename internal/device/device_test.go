package device

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"time"

	"flashwear/internal/ftl"
	"flashwear/internal/simclock"
)

// testProfile is a tiny fast-wearing device for unit tests.
func testProfile() Profile {
	return Profile{
		Name: "test 16MiB", Kind: KindEMMC,
		CapacityBytes: 16 * MiB,
		Cell:          2, // MLC
		RatedPE:       80,
		PageSize:      4096, PagesPerBlock: 16, Parallelism: 2,
		OverProvision: 0.1, WearLeveling: true,
		CmdOverhead:   50 * time.Microsecond,
		InterfaceMBps: 100,
		Seed:          7,
	}
}

func newTestDevice(t *testing.T, p Profile) *Device {
	t.Helper()
	d, err := New(p, simclock.New())
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return d
}

func TestProfilesValidate(t *testing.T) {
	for _, p := range AllProfiles() {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
	if err := ProfileEMMC8TLC().Validate(); err != nil {
		t.Errorf("TLC variant: %v", err)
	}
}

func TestProfileByName(t *testing.T) {
	p, err := ProfileByName("eMMC 16GB")
	if err != nil || p.Hybrid == nil {
		t.Fatalf("ProfileByName: %v, hybrid=%v", err, p.Hybrid)
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Fatal("unknown name accepted")
	}
}

func TestScaledPreservesGeometry(t *testing.T) {
	p := ProfileEMMC16()
	s := p.Scaled(64)
	if s.CapacityBytes != p.CapacityBytes/64 {
		t.Fatalf("scaled capacity = %d", s.CapacityBytes)
	}
	if s.Hybrid.CacheBytes != p.Hybrid.CacheBytes/64 {
		t.Fatalf("scaled cache = %d", s.Hybrid.CacheBytes)
	}
	if s.PageSize != p.PageSize || s.RatedPE != p.RatedPE {
		t.Fatal("scaling changed page size or endurance")
	}
	// Extreme scaling clamps to a usable minimum.
	tiny := p.Scaled(1 << 40)
	if tiny.CapacityBytes < 16*int64(p.PageSize)*int64(p.PagesPerBlock) {
		t.Fatal("scaled below minimum blocks")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Scaled(0) did not panic")
		}
	}()
	p.Scaled(0)
}

func TestDeviceReadWriteRoundTrip(t *testing.T) {
	d := newTestDevice(t, testProfile())
	want := bytes.Repeat([]byte{0x5A}, 8192)
	if err := d.WriteAt(want, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 8192)
	if err := d.ReadAt(got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestDeviceSubPageWrite(t *testing.T) {
	d := newTestDevice(t, testProfile())
	if err := d.WriteAt(bytes.Repeat([]byte{1}, 4096), 0); err != nil {
		t.Fatal(err)
	}
	// Overwrite 512 bytes in the middle: read-modify-write.
	if err := d.WriteAt(bytes.Repeat([]byte{2}, 512), 1024); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 1 || got[1024] != 2 || got[1535] != 2 || got[1536] != 1 {
		t.Fatalf("sub-page merge wrong: %v %v %v %v", got[0], got[1024], got[1535], got[1536])
	}
}

func TestDeviceUnalignedRejected(t *testing.T) {
	d := newTestDevice(t, testProfile())
	if err := d.WriteAt(make([]byte, 512), 100); err == nil {
		t.Fatal("unaligned write accepted")
	}
	if err := d.WriteAt(make([]byte, 512), d.Size()); err == nil {
		t.Fatal("out-of-bounds write accepted")
	}
}

func TestDeviceAdvancesClock(t *testing.T) {
	d := newTestDevice(t, testProfile())
	before := d.Clock().Now()
	if err := d.WriteAccounted(0, 64*1024); err != nil {
		t.Fatal(err)
	}
	if d.Clock().Now() <= before {
		t.Fatal("clock did not advance with I/O")
	}
	if d.BusyTime() <= 0 {
		t.Fatal("busy time not accumulated")
	}
}

func TestBandwidthScalesWithRequestSize(t *testing.T) {
	// Figure 1's core shape: larger requests -> higher bandwidth until a
	// plateau; tiny (sub-page) requests are slow due to RMW.
	bw := func(reqSize int64) float64 {
		d := newTestDevice(t, testProfile())
		start := d.Clock().Now()
		var off int64
		total := int64(4 << 20)
		for written := int64(0); written < total; written += reqSize {
			if err := d.WriteAccounted(off, reqSize); err != nil {
				t.Fatal(err)
			}
			off += reqSize
			if off+reqSize > d.Size() {
				off = 0
			}
		}
		elapsed := (d.Clock().Now() - start).Seconds()
		return float64(total) / elapsed / (1 << 20) // MiB/s
	}
	small, mid, large := bw(512), bw(4096), bw(256<<10)
	if !(small < mid && mid < large) {
		t.Fatalf("bandwidth not increasing: 512B=%.1f 4K=%.1f 256K=%.1f", small, mid, large)
	}
}

func TestUSDRandomWritePenalty(t *testing.T) {
	// Random writes on the block-mapped card must be far slower than
	// sequential ones (Figure 1b's collapse).
	run := func(random bool) float64 {
		d := newTestDevice(t, ProfileUSD16().Scaled(256))
		rng := rand.New(rand.NewSource(1))
		start := d.Clock().Now()
		total := int64(2 << 20)
		var off int64
		for w := int64(0); w < total; w += 4096 {
			if random {
				off = int64(rng.Intn(int(d.Size()/4096))) * 4096
			}
			if err := d.WriteAccounted(off, 4096); err != nil {
				t.Fatal(err)
			}
			if !random {
				off += 4096
				if off+4096 > d.Size() {
					off = 0
				}
			}
		}
		return float64(total) / (d.Clock().Now() - start).Seconds() / (1 << 20)
	}
	seq, rnd := run(false), run(true)
	if rnd*4 > seq {
		t.Fatalf("uSD random (%.2f MiB/s) should be far slower than sequential (%.2f MiB/s)", rnd, seq)
	}
}

func TestEMMCRandomSimilarToSequential(t *testing.T) {
	// §4.2: "eMMC chips perform similarly for random and sequential".
	run := func(random bool) float64 {
		d := newTestDevice(t, ProfileEMMC8().Scaled(256))
		rng := rand.New(rand.NewSource(2))
		start := d.Clock().Now()
		total := int64(2 << 20)
		var off int64
		for w := int64(0); w < total; w += 4096 {
			if random {
				off = int64(rng.Intn(int(d.Size()/4096))) * 4096
			}
			if err := d.WriteAccounted(off, 4096); err != nil {
				t.Fatal(err)
			}
			if !random {
				off += 4096
				if off+4096 > d.Size() {
					off = 0
				}
			}
		}
		return float64(total) / (d.Clock().Now() - start).Seconds() / (1 << 20)
	}
	seq, rnd := run(false), run(true)
	ratio := rnd / seq
	if ratio < 0.5 || ratio > 2 {
		t.Fatalf("eMMC random/sequential ratio %.2f, want ~1", ratio)
	}
}

func TestDeviceWearsToBrick(t *testing.T) {
	p := testProfile()
	p.RatedPE = 40
	p.BrickAtEOL = true // pin the legacy hard-brick path (BLU behaviour)
	d := newTestDevice(t, p)
	rng := rand.New(rand.NewSource(3))
	var err error
	for i := 0; i < 2_000_000; i++ {
		off := int64(rng.Intn(int(d.Size()/4096/8))) * 4096
		if err = d.WriteAccounted(off, 4096); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrBricked) {
		t.Fatalf("device did not brick: %v", err)
	}
	if !d.Bricked() {
		t.Fatal("Bricked() false")
	}
	if d.PreEOLInfo() != 3 {
		t.Fatalf("PreEOLInfo = %d, want 3", d.PreEOLInfo())
	}
}

func TestWearIndicatorProgresses(t *testing.T) {
	p := testProfile()
	p.RatedPE = 200
	d := newTestDevice(t, p)
	if d.WearIndicator(ftl.PoolB) != 1 {
		t.Fatal("fresh device indicator != 1")
	}
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 300_000 && d.WearIndicator(ftl.PoolB) < 3; i++ {
		off := int64(rng.Intn(int(d.Size()/4096/8))) * 4096
		if err := d.WriteAccounted(off, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if d.WearIndicator(ftl.PoolB) < 3 {
		t.Fatal("indicator never reached 3")
	}
}

func TestUnreliableIndicator(t *testing.T) {
	p := ProfileBLU512().Scaled(64)
	d := newTestDevice(t, p)
	if d.PreEOLInfo() != 0 {
		t.Fatalf("BLU PreEOLInfo = %d, want 0 (out of spec)", d.PreEOLInfo())
	}
	// Garbage values: over many reads we should see out-of-range levels.
	sawGarbage := false
	for i := 0; i < 100; i++ {
		v := d.WearIndicator(ftl.PoolB)
		if v < 1 || v > 11 {
			sawGarbage = true
		}
	}
	if !sawGarbage {
		t.Fatal("unreliable indicator produced only in-spec values")
	}
}

func TestDiscardFreesPages(t *testing.T) {
	d := newTestDevice(t, testProfile())
	if err := d.WriteAt(bytes.Repeat([]byte{3}, 16384), 0); err != nil {
		t.Fatal(err)
	}
	if err := d.Discard(0, 16384); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Fatal("discarded page still has data")
	}
	if d.FTL().Utilisation() != 0 {
		t.Fatalf("utilisation = %v after full discard", d.FTL().Utilisation())
	}
}

func TestFlushOK(t *testing.T) {
	d := newTestDevice(t, testProfile())
	if err := d.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestHybridDeviceBuilds(t *testing.T) {
	d := newTestDevice(t, ProfileEMMC16().Scaled(512))
	if d.FTL().CacheChip() == nil {
		t.Fatal("hybrid profile built without cache chip")
	}
	if err := d.WriteAccounted(0, 4096); err != nil {
		t.Fatal(err)
	}
	if d.FTL().CacheChip().Stats().Programs == 0 {
		t.Fatal("small write bypassed hybrid cache on fresh device")
	}
}

func TestKindString(t *testing.T) {
	if KindEMMC.String() != "eMMC" || KindUFS.String() != "UFS" || KindUSD.String() != "uSD" {
		t.Fatal("Kind strings wrong")
	}
}

func TestBytesCounters(t *testing.T) {
	d := newTestDevice(t, testProfile())
	_ = d.WriteAccounted(0, 8192)
	_ = d.ReadAt(make([]byte, 4096), 0)
	if d.BytesWritten() != 8192 || d.BytesRead() != 4096 {
		t.Fatalf("counters: w=%d r=%d", d.BytesWritten(), d.BytesRead())
	}
}

func TestEffectiveScale(t *testing.T) {
	p := ProfileEMMC8()
	if eff := p.EffectiveScale(256); eff != 256 {
		t.Fatalf("EffectiveScale(256) = %d", eff)
	}
	// BLU 512MB clamps at 64 blocks (16 MiB): the effective divisor is
	// what was actually achieved, not what was asked.
	b := ProfileBLU512()
	eff := b.EffectiveScale(1 << 20)
	scaled := b.Scaled(1 << 20)
	if eff != b.CapacityBytes/scaled.CapacityBytes {
		t.Fatalf("eff %d inconsistent with scaled capacity %d", eff, scaled.CapacityBytes)
	}
	if eff >= 1<<20 {
		t.Fatal("clamp not reflected in effective scale")
	}
}

func TestExtCSDRegisters(t *testing.T) {
	d := newTestDevice(t, testProfile())
	csd := d.ExtCSD()
	if csd[ExtCSDRev] != 8 {
		t.Fatalf("EXT_CSD_REV = %d, want 8 (v5.1)", csd[ExtCSDRev])
	}
	if csd[ExtCSDPreEOLInfo] != 1 {
		t.Fatalf("PRE_EOL_INFO = %d, want 1", csd[ExtCSDPreEOLInfo])
	}
	if csd[ExtCSDLifeTimeEstA] != 1 || csd[ExtCSDLifeTimeEstB] != 1 {
		t.Fatal("fresh life-time estimates != 1")
	}
	sectors := uint32(csd[ExtCSDSecCount]) | uint32(csd[ExtCSDSecCount+1])<<8 |
		uint32(csd[ExtCSDSecCount+2])<<16 | uint32(csd[ExtCSDSecCount+3])<<24
	if int64(sectors)*512 != d.Size() {
		t.Fatalf("SEC_COUNT = %d sectors, want %d", sectors, d.Size()/512)
	}
}

func TestWearHistogramTight(t *testing.T) {
	d := newTestDevice(t, testProfile())
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 100_000; i++ {
		off := int64(rng.Intn(int(d.Size()/4096/8))) * 4096
		if err := d.WriteAccounted(off, 4096); err != nil {
			t.Fatal(err)
		}
	}
	h := d.WearHistogram(10)
	blocks := 0
	for _, c := range h {
		blocks += c
	}
	if blocks != d.FTL().MainChip().Geometry().Blocks() {
		t.Fatalf("histogram covers %d blocks", blocks)
	}
	// With wear-leveling on, the bulk of blocks sit in the top bins.
	top := h[8] + h[9]
	if top < blocks/2 {
		t.Fatalf("wear histogram too spread: top bins hold %d of %d", top, blocks)
	}
	if len(d.WearHistogram(0)) != 1 {
		t.Fatal("bins<1 not clamped")
	}
}

func TestHealingProfileBuilds(t *testing.T) {
	p := testProfile()
	p.HealPerIdleHour = 5
	d := newTestDevice(t, p)
	if err := d.WriteAccounted(0, 4096); err != nil {
		t.Fatal(err)
	}
}

func TestSanitizeErasesButDoesNotHeal(t *testing.T) {
	p := testProfile()
	p.RatedPE = 300
	d := newTestDevice(t, p)
	// Wear the device partway and store some data.
	if err := d.WriteAt(bytes.Repeat([]byte{9}, 8192), 0); err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(12))
	for i := 0; i < 120_000; i++ {
		off := int64(rng.Intn(int(d.Size()/4096/8))) * 4096
		if err := d.WriteAccounted(off, 4096); err != nil {
			t.Fatal(err)
		}
	}
	lifeBefore := d.FTL().LifeConsumed(ftl.PoolB)
	if lifeBefore <= 0 {
		t.Fatal("no wear accumulated")
	}
	if err := d.Sanitize(); err != nil {
		t.Fatalf("Sanitize: %v", err)
	}
	// Data gone...
	got := make([]byte, 4096)
	if err := d.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d survived sanitize", i)
		}
	}
	if d.FTL().Utilisation() != 0 {
		t.Fatal("utilisation nonzero after sanitize")
	}
	// ...but the consumed life is not restored; it grew (one more cycle).
	if life := d.FTL().LifeConsumed(ftl.PoolB); life <= lifeBefore {
		t.Fatalf("sanitize 'healed' the device: %v -> %v", lifeBefore, life)
	}
	// The device still works afterwards.
	if err := d.WriteAccounted(0, 4096); err != nil {
		t.Fatal(err)
	}
}
