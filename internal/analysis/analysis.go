// Package analysis is a self-contained static-analysis framework for the
// flashwear tree, mirroring the shape of golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but built on the standard library alone:
// packages are enumerated with `go list -export`, dependencies are imported
// from compiler export data, and only the packages under analysis are
// type-checked from source. The x/tools module is deliberately not a
// dependency — the simulator builds offline with a bare toolchain, and its
// vet suite must too.
//
// The analyzers themselves live under internal/analysis/passes; the suite
// is assembled in internal/analysis/flashvet and exposed as the
// cmd/flashvet binary, which runs standalone (`flashvet ./...`) or as a
// `go vet -vettool` backend. See DESIGN.md §10 for the invariants each
// analyzer guards.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// An Analyzer describes one invariant check. Most flashwear analyzers are
// pure per-package syntax+types passes; analyzers that need to see across
// package boundaries (simtaint) declare FactTypes and exchange per-object
// summaries through the Pass's fact API instead of re-analyzing callees.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and in
	// //flashvet:ignore directives. Lower-case, no spaces.
	Name string
	// Doc is a one-paragraph description: first line is a summary, the
	// rest states the invariant the analyzer guards.
	Doc string
	// FactTypes lists prototype values of every Fact type the analyzer
	// exports or imports. An analyzer with no FactTypes neither reads
	// nor writes facts, and the driver may skip fact plumbing for it
	// entirely (in particular, it is never run over facts-only
	// dependency packages).
	FactTypes []Fact
	// Run reports diagnostics for one package via pass.Reportf.
	Run func(*Pass) error
}

// UsesFacts reports whether the analyzer participates in fact exchange.
func (a *Analyzer) UsesFacts() bool { return len(a.FactTypes) > 0 }

// A Pass provides one analyzer with one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// FactsOnly marks a dependency package visited solely to compute
	// facts for downstream packages under analysis: diagnostics are
	// discarded, so analyzers may skip their reporting work.
	FactsOnly bool

	facts  *FactStore
	report func(Diagnostic)
}

// A Diagnostic is one finding, positioned at the offending token.
type Diagnostic struct {
	Pos     token.Pos
	Message string
}

// Reportf records a finding.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// IsTestFile reports whether the file holding pos is a _test.go file.
// Analyzers whose invariant only binds shipped simulation code (wallclock,
// opserrcheck, globalrand's seed-literal check) use this to stand down in
// tests, where fixed seeds and deliberately-dropped errors are idiomatic.
func (p *Pass) IsTestFile(pos token.Pos) bool {
	return strings.HasSuffix(p.Fset.Position(pos).Filename, "_test.go")
}

// Inspect walks every file in the pass in depth-first order, calling fn for
// each node; fn returning false prunes the subtree.
func (p *Pass) Inspect(fn func(ast.Node) bool) {
	for _, f := range p.Files {
		ast.Inspect(f, fn)
	}
}

// FuncOf resolves a call expression to the package-level function or
// method it invokes, or nil for builtins, conversions, and indirect calls
// through function values (whose provenance a per-package pass cannot
// know).
func (p *Pass) FuncOf(call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := p.TypesInfo.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := p.TypesInfo.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
