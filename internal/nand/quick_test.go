package nand

import (
	"testing"
	"testing/quick"
)

// Property: RBER is monotonically non-decreasing in wear for any valid
// model parameters.
func TestQuickRBERMonotone(t *testing.T) {
	f := func(base, growth uint8, w1, w2 uint16) bool {
		m := ErrorModel{
			BaseRBER:   float64(base)/255*1e-6 + 1e-12,
			RBERGrowth: float64(growth) / 16,
		}
		a := float64(w1) / 1000
		b := float64(w2) / 1000
		if a > b {
			a, b = b, a
		}
		return m.RBER(a) <= m.RBER(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: FailProb is monotone in wear and clamped to [0, 1].
func TestQuickFailProbBounds(t *testing.T) {
	f := func(w1, w2 uint16) bool {
		m := DefaultErrorModel()
		a, b := float64(w1)/100, float64(w2)/100
		if a > b {
			a, b = b, a
		}
		pa, pb := m.FailProb(a), m.FailProb(b)
		return pa <= pb && pa >= 0 && pb <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: any interleaving of valid program/erase sequences keeps the
// chip's invariants: erase counts never decrease, bytes programmed grows by
// exactly one page per successful or failed program, and the in-order
// programming rule is enforced.
func TestQuickChipInvariants(t *testing.T) {
	f := func(seed int64, ops []uint8) bool {
		c, err := New(Config{Geometry: testGeometry(), Cell: MLC, Seed: seed, RatedPE: 100_000})
		if err != nil {
			return false
		}
		g := c.Geometry()
		next := make([]int, g.Blocks())
		lastErase := make([]int, g.Blocks())
		for _, op := range ops {
			b := int(op) % g.Blocks()
			if op%3 == 0 {
				if _, err := c.EraseBlock(b); err == nil {
					next[b] = 0
				} else {
					next[b] = 0 // erase consumed the cycle either way
				}
				if c.EraseCount(b) < lastErase[b] {
					return false
				}
				lastErase[b] = c.EraseCount(b)
				continue
			}
			if next[b] >= g.PagesPerBlock {
				// Out-of-order / full block must be rejected.
				if _, err := c.ProgramPage(PageAddr{b, next[b]}, nil); err == nil {
					return false
				}
				continue
			}
			_, _ = c.ProgramPage(PageAddr{b, next[b]}, nil)
			next[b]++
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// Property: ShouldRetire is monotone in wear: once a block qualifies for
// retirement, more erases cannot un-qualify it.
func TestQuickRetirementMonotone(t *testing.T) {
	c, err := New(Config{Geometry: testGeometry(), Cell: MLC, RatedPE: 50, Seed: 3, StressSpread: 0.0001})
	if err != nil {
		t.Fatal(err)
	}
	retired := false
	for i := 0; i < 120; i++ {
		_, _ = c.EraseBlock(1)
		now := c.ShouldRetire(1)
		if retired && !now {
			t.Fatalf("retirement flapped at erase %d", i)
		}
		retired = now
	}
	if !retired {
		t.Fatal("block never qualified for retirement at 2.4x rated wear")
	}
}

// TestReadDisturbGrowsErrors: hammering reads on one block without erasing
// raises its error rate until reads fail; an erase resets the exposure.
func TestReadDisturbGrowsErrors(t *testing.T) {
	em := DefaultErrorModel()
	em.ReadDisturbRBER = 1e-6 // exaggerated for the test
	c, err := New(Config{Geometry: testGeometry(), Cell: MLC, RatedPE: 100_000, Seed: 8, Errors: &em})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ProgramPage(PageAddr{0, 0}, nil); err != nil {
		t.Fatal(err)
	}
	sawFailure := false
	for i := 0; i < 5000; i++ {
		if _, _, err := c.ReadPage(PageAddr{0, 0}); err != nil {
			sawFailure = true
			break
		}
	}
	if !sawFailure {
		t.Fatal("read disturb never produced an uncorrectable read")
	}
	if c.ReadsSinceErase(0) == 0 {
		t.Fatal("read counter not tracked")
	}
	if _, err := c.EraseBlock(0); err != nil {
		t.Fatal(err)
	}
	if c.ReadsSinceErase(0) != 0 {
		t.Fatal("erase did not reset read-disturb exposure")
	}
}
