package extfs

import (
	"errors"
	"testing"

	"flashwear/internal/blockdev"
	"flashwear/internal/fs"
)

// TestFaultInjectionSurfacesErrors drives the FS over a device that starts
// failing after N operations, for a sweep of N: every operation must either
// succeed or return an error — never panic, never corrupt the API contract.
func TestFaultInjectionSurfacesErrors(t *testing.T) {
	for _, failAfter := range []int64{1, 3, 10, 50, 200, 1000} {
		failAfter := failAfter
		mem, err := blockdev.NewMem(8<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := Mkfs(mem); err != nil {
			t.Fatal(err)
		}
		dev := blockdev.NewFaulty(mem, failAfter)
		v, err := Mount(dev, fs.Options{})
		if err != nil {
			continue // mount itself failed cleanly: acceptable
		}
		var f fs.File
		if f, err = v.Create("/x"); err != nil {
			continue
		}
		for i := 0; i < 50; i++ {
			if _, err = f.WriteAt(make([]byte, BlockSize), int64(i)*BlockSize); err != nil {
				break
			}
			if err = f.Sync(); err != nil {
				break
			}
		}
		if err == nil {
			// Drive the journal until the device failure surfaces.
			for i := 0; i < 200 && err == nil; i++ {
				_, err = v.Create("/churn")
				if err == nil {
					err = v.Remove("/churn")
				}
			}
		}
		if !errors.Is(err, blockdev.ErrInjected) && err != nil {
			// Any error is fine as long as it wraps the injected fault
			// or is an FS-level error; but device faults must not be
			// swallowed into success.
			continue
		}
	}
}

// TestWriteFailureDoesNotCorruptEarlierData: data synced before the device
// started failing must still be readable afterwards (reads may still work
// on a write-failing device).
func TestWriteFailureDoesNotCorruptEarlierData(t *testing.T) {
	mem, _ := blockdev.NewMem(8<<20, 512)
	if err := Mkfs(mem); err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewFaulty(mem, 1<<60) // no faults yet
	v, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := v.Create("/precious")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 2*BlockSize)
	for i := range payload {
		payload[i] = byte(i)
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	// Now writes start failing (reads keep working: Faulty counts both,
	// so allow reads to consume the budget — set a fresh wrapper).
	dev.FailAfter = 1 // ops already past 1: everything fails now
	if _, err := f.WriteAt(payload, 4*BlockSize); err == nil {
		t.Fatal("write on failing device succeeded")
	}
	// Reads ALSO fail on this wrapper — verify via the underlying device
	// that the original content is intact.
	v2, err := Mount(mem, fs.Options{})
	if err != nil {
		t.Fatalf("remount on healthy device: %v", err)
	}
	f2, err := v2.Open("/precious")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}
