package fleetd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
)

// Server exposes a Manager over HTTP/JSON — the control and query plane
// of a fleetd instance:
//
//	POST /v1/campaigns            submit a CampaignSpec, returns Status
//	GET  /v1/campaigns            list campaign Statuses
//	GET  /v1/campaigns/{id}       one campaign's Status
//	GET  /v1/campaigns/{id}/series  committed day series (CSV; ?format=json)
//	GET  /v1/campaigns/{id}/ledger  point-in-time wear ledger (CSV; ?format=json)
//	GET  /v1/campaigns/{id}/result  final Aggregate (JSON; 409 until done)
//	POST /v1/campaigns/{id}/pause
//	POST /v1/campaigns/{id}/resume
//	POST /v1/campaigns/{id}/fork  body ForkOptions, returns the fork's Status
//
// Every query serves committed state under the campaign mutex, so
// polling mid-run never observes a half-merged epoch.
type Server struct {
	mgr *Manager
	mux *http.ServeMux
}

// NewServer wraps a manager in an HTTP handler.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux()}
	s.mux.HandleFunc("POST /v1/campaigns", s.submit)
	s.mux.HandleFunc("GET /v1/campaigns", s.list)
	s.mux.HandleFunc("GET /v1/campaigns/{id}", s.status)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/series", s.series)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/ledger", s.ledger)
	s.mux.HandleFunc("GET /v1/campaigns/{id}/result", s.result)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/pause", s.pause)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/resume", s.resume)
	s.mux.HandleFunc("POST /v1/campaigns/{id}/fork", s.fork)
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// campaign resolves {id} or replies 404.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.mgr.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no campaign %q", id))
		return nil, false
	}
	return c, true
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	c, err := s.mgr.Submit(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	campaigns := s.mgr.List()
	out := make([]Status, len(campaigns))
	for i, c := range campaigns {
		out[i] = c.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) series(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	series := c.Series()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, series)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	series.WriteCSV(w)
}

func (s *Server) ledger(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	ledger := c.Ledger()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		ledger.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	ledger.WriteCSV(w)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	agg, final := c.Aggregate()
	if !final {
		writeErr(w, http.StatusConflict, fmt.Errorf("campaign %s is %s; no final result yet", c.ID(), c.State()))
		return
	}
	writeJSON(w, http.StatusOK, agg)
}

func (s *Server) pause(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	c.Pause()
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) resume(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	if err := c.Resume(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) fork(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	var opts ForkOptions
	if err := json.NewDecoder(r.Body).Decode(&opts); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding fork options: %w", err))
		return
	}
	fk, err := s.mgr.Fork(c.ID(), opts)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errRunning) {
			code = http.StatusConflict
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, fk.Status())
}
