package fleet

import (
	"context"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"

	"flashwear/internal/telemetry"
)

// panicHook, when non-nil, runs before every device simulation; tests use
// it to inject a panic and pin the worker containment behaviour.
var panicHook func(p Params)

// runDevice invokes one device simulation with panic containment: a
// panicking device is reported as failed (panicked=true) rather than
// crashing the worker goroutine and aborting the whole fleet run.
func runDevice(ctx context.Context, spec Spec, p Params) (res DeviceResult, err error, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	if panicHook != nil {
		panicHook(p)
	}
	res, err = simulateDevice(ctx, spec, p)
	return
}

// Run simulates the fleet described by spec and returns the merged
// population statistics. It blocks until every device has run, spec's
// context is cancelled, or a device fails.
//
// Scheduling is dynamic — an atomic cursor hands the next device index to
// whichever worker frees up first — but the Result is independent of both
// the schedule and Workers: device parameters derive from (Seed, index)
// alone, each device simulates on a private stack, and accumulator merging
// is integer-additive. See the package documentation.
func Run(ctx context.Context, spec Spec) (*Result, error) {
	spec = spec.Defaults()
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	workers := spec.Workers
	if workers > spec.Devices {
		workers = spec.Devices
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		cursor   atomic.Int64 // next device index to hand out
		done     atomic.Int64 // completed devices, for Progress
		errOnce  sync.Once
		firstErr error
		wg       sync.WaitGroup
	)
	accs := make([]*Accumulator, workers)
	for w := 0; w < workers; w++ {
		acc := newAccumulator(spec)
		accs[w] = acc
		// Live per-worker progress counters: schedule-dependent by nature
		// (which worker draws which device is a race), so they go to the
		// caller's monitoring registry, never into the deterministic Result.
		var doneCtr, brickCtr, roCtr *telemetry.Counter
		if spec.Telemetry != nil {
			worker := strconv.Itoa(w)
			doneCtr = spec.Telemetry.Counter(telemetry.Name("fleet.devices_done", "worker", worker))
			brickCtr = spec.Telemetry.Counter(telemetry.Name("fleet.bricks", "worker", worker))
			roCtr = spec.Telemetry.Counter(telemetry.Name("fleet.read_only", "worker", worker))
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for ctx.Err() == nil {
				i := int(cursor.Add(1) - 1)
				if i >= spec.Devices {
					return
				}
				p := spec.Sample(i)
				res, err, panicked := runDevice(ctx, spec, p)
				if panicked {
					// Contained: record the failure with the seed that
					// reproduces it and move on to the next device.
					acc.noteFailed(p.Seed)
					if spec.Progress != nil {
						spec.Progress(int(done.Add(1)), spec.Devices)
					}
					continue
				}
				if err != nil {
					errOnce.Do(func() {
						firstErr = err
						cancel()
					})
					return
				}
				acc.add(res)
				if doneCtr != nil {
					doneCtr.Inc()
					if res.Bricked {
						brickCtr.Inc()
					}
					if res.ReadOnly {
						roCtr.Inc()
					}
				}
				if spec.Progress != nil {
					spec.Progress(int(done.Add(1)), spec.Devices)
				}
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	// The caller's context may have been cancelled between devices, in
	// which case no worker recorded an error but the run is incomplete.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	merged := accs[0]
	for _, acc := range accs[1:] {
		if err := merged.merge(acc); err != nil {
			return nil, err
		}
	}
	// Which worker drew a failing device is a race; sorting the seeds keeps
	// the Result a pure function of the Spec regardless of worker count.
	sort.Slice(merged.FailedSeeds, func(a, b int) bool {
		return merged.FailedSeeds[a] < merged.FailedSeeds[b]
	})
	return &Result{Spec: spec, Accumulator: merged}, nil
}
