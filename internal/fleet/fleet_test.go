package fleet

import (
	"bytes"
	"context"
	"reflect"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"flashwear/internal/device"
	"flashwear/internal/faultinject"
)

// testSpec is a small fleet that still exercises every workload class and
// bricks some devices. Simulating a brick costs ~capacity×RatedPE page
// programs no matter how the workload is arranged, so the test derates the
// profiles' endurance (wear physics are linear in RatedPE) to keep the
// -race run short; the mix leans on the BLU 4GB profile because it is the
// cheapest to kill.
func testSpec(workers int) Spec {
	blu, moto := device.ProfileBLU4(), device.ProfileMotoE8()
	blu.RatedPE = 150  // 600 on the real device
	moto.RatedPE = 300 // 1300 on the real device
	return Spec{
		Devices: 64,
		Workers: workers,
		Seed:    42,
		Days:    8,
		Scale:   8192,
		Profiles: []ProfileWeight{
			{blu, 0.8},
			{moto, 0.2},
		},
		Classes: []ClassWeight{
			{ClassBenign, 0.86},
			{ClassBuggy, 0.06},
			{ClassAttack, 0.08},
		},
	}
}

// stripSpec clears the non-comparable parts so Results can be DeepEqual'd.
func stripSpec(r *Result) *Result {
	r.Spec = Spec{}
	return r
}

// TestFleetDeterminism is the subsystem's core guarantee: the same seed
// produces byte-identical aggregates across repeated runs AND across
// worker counts (64 devices, 4 workers vs 1). Run under -race this also
// exercises the pool for data races (the Makefile's check target does
// exactly that). The sanity assertions ride on the first run so the test
// stays affordable.
func TestFleetDeterminism(t *testing.T) {
	ctx := context.Background()
	first, err := Run(ctx, testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	again, err := Run(ctx, testSpec(4))
	if err != nil {
		t.Fatal(err)
	}
	serial, err := Run(ctx, testSpec(1))
	if err != nil {
		t.Fatal(err)
	}

	// --- population sanity on the first run ---
	if first.Total.Devices != 64 {
		t.Fatalf("simulated %d devices, want 64", first.Total.Devices)
	}
	if first.Total.Bricked == 0 {
		t.Fatal("no devices bricked; the spec should produce some deaths")
	}
	if first.Total.Bricked == first.Total.Devices {
		t.Fatal("every device bricked; the spec should keep most survivors")
	}
	// Benign phones must essentially never brick inside the short horizon;
	// the deliberate attack kills low-endurance phones within days (§4.4).
	if g := first.ByClass[ClassBenign.String()]; g == nil || g.Bricked != 0 {
		t.Errorf("benign group bricked %v, want 0", g)
	}
	atk := first.ByClass[ClassAttack.String()]
	if atk == nil || atk.Devices == 0 {
		t.Fatal("no attack devices sampled; widen the spec")
	}
	if atk.Bricked == 0 {
		t.Errorf("no attack device bricked within %g days", first.Spec.Days)
	}
	if m := atk.MeanDaysToBrick(); m <= 0 || m >= first.Spec.Days {
		t.Errorf("attack mean days-to-brick = %g, want within (0, %g)", m, first.Spec.Days)
	}
	// Bricked + survivor tallies must partition the population.
	if got := first.TimeToBrick.Total(); got != first.Total.Bricked {
		t.Errorf("time-to-brick histogram holds %d, want %d", got, first.Total.Bricked)
	}
	if got := first.SurvivorWear.Total(); got != first.Total.Devices-first.Total.Bricked {
		t.Errorf("survivor-wear histogram holds %d, want %d",
			got, first.Total.Devices-first.Total.Bricked)
	}
	if got := first.WriteAmp.Total(); got != first.Total.Devices {
		t.Errorf("write-amp histogram holds %d, want %d", got, first.Total.Devices)
	}

	// --- determinism ---
	if !reflect.DeepEqual(stripSpec(first), stripSpec(again)) {
		t.Errorf("same spec, different aggregates across runs:\n%+v\nvs\n%+v", first, again)
	}
	if !reflect.DeepEqual(stripSpec(first), stripSpec(serial)) {
		t.Errorf("workers=4 vs workers=1 aggregates differ:\n%+v\nvs\n%+v", first, serial)
	}
}

// TestFleetMetricsDeterminism extends the core guarantee to the sampled
// time series: with MetricsEvery set, the rendered CSV must be
// byte-identical across worker counts (the acceptance bar for fleet
// observability). Sanity checks ride on one run: the devices column is the
// full population on every row, the bricked column is monotone, and its
// final value agrees with the aggregate brick count.
func TestFleetMetricsDeterminism(t *testing.T) {
	ctx := context.Background()
	run := func(workers int) (*Result, string) {
		spec := testSpec(workers)
		spec.Devices = 32
		spec.MetricsEvery = 48 * time.Hour // 4 rows over the 8-day horizon
		res, err := Run(ctx, spec)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := res.WriteMetricsCSV(&buf); err != nil {
			t.Fatal(err)
		}
		return res, buf.String()
	}

	res, csv := run(1)
	lines := strings.Split(strings.TrimSuffix(csv, "\n"), "\n")
	if len(lines) != 1+4 {
		t.Fatalf("CSV has %d lines, want header + 4 rows:\n%s", len(lines), csv)
	}
	lastBricked := int64(-1)
	for _, line := range lines[1:] {
		cols := strings.Split(line, ",")
		if len(cols) != 11 {
			t.Fatalf("row %q has %d columns, want 11", line, len(cols))
		}
		if cols[1] != "32" {
			t.Errorf("row %q: devices = %s, want 32 (bricked devices must freeze, not drop out)", line, cols[1])
		}
		bricked, err := strconv.ParseInt(cols[2], 10, 64)
		if err != nil || bricked < lastBricked {
			t.Errorf("row %q: bricked = %s, want monotone integer (prev %d)", line, cols[2], lastBricked)
		}
		lastBricked = bricked
	}
	if lastBricked != res.Total.Bricked {
		t.Errorf("final bricked column = %d, aggregate = %d", lastBricked, res.Total.Bricked)
	}
	if res.Total.Bricked == 0 {
		t.Error("no devices bricked; the spec should produce some deaths for the series to show")
	}

	for _, workers := range []int{2, runtime.GOMAXPROCS(0)} {
		if _, other := run(workers); other != csv {
			t.Errorf("metrics CSV differs between workers=1 and workers=%d:\n%s\nvs\n%s", workers, csv, other)
		}
	}
}

// TestFleetPanicContainment pins the worker containment contract: a
// panicking per-device simulation is recorded as a failed device — with its
// seed, so the failure can be reproduced in isolation — and the rest of the
// fleet still runs to completion.
func TestFleetPanicContainment(t *testing.T) {
	spec := testSpec(2)
	spec.Devices = 8
	spec.Classes = []ClassWeight{{ClassBenign, 1}}
	victims := map[int]bool{2: true, 5: true}
	panicHook = func(p Params) {
		if victims[p.Index] {
			panic("injected device panic")
		}
	}
	defer func() { panicHook = nil }()

	res, err := Run(context.Background(), spec)
	if err != nil {
		t.Fatalf("a contained panic must not abort the run: %v", err)
	}
	if res.Failed != 2 {
		t.Errorf("Failed = %d, want 2", res.Failed)
	}
	if res.Total.Devices != 6 {
		t.Errorf("Total.Devices = %d, want 6 (failed devices contribute no stats)", res.Total.Devices)
	}
	var want []int64
	for i := range victims {
		want = append(want, spec.Sample(i).Seed)
	}
	sort.Slice(want, func(a, b int) bool { return want[a] < want[b] })
	if !reflect.DeepEqual(res.FailedSeeds, want) {
		t.Errorf("FailedSeeds = %v, want %v", res.FailedSeeds, want)
	}
}

// TestFleetFaultPlanDeterminism runs a fleet under an injected fault plan —
// periodic power cuts plus probabilistic read/program faults — and requires
// that every device survives its cuts (recovery + remount + reattach) and
// that the aggregate remains a pure function of the Spec across worker
// counts, per-device fault seeds included.
func TestFleetFaultPlanDeterminism(t *testing.T) {
	build := func(workers int) Spec {
		spec := testSpec(workers)
		spec.Devices = 12
		spec.Days = 4
		spec.Classes = []ClassWeight{{ClassBenign, 0.9}, {ClassAttack, 0.1}}
		spec.Faults = &faultinject.Plan{
			Seed:             99,
			ReadFaultProb:    1e-4,
			ProgramFaultProb: 1e-5,
			PowerCutEvery:    20000,
		}
		return spec
	}
	before := remounts.Load()
	first, err := Run(context.Background(), build(3))
	if err != nil {
		t.Fatal(err)
	}
	if first.Total.Devices != 12 {
		t.Errorf("Total.Devices = %d, want 12 (power cuts must not kill devices)", first.Total.Devices)
	}
	if remounts.Load() == before {
		t.Error("no device power-cycled; the plan's cuts never fired — tighten PowerCutEvery")
	}
	serial, err := Run(context.Background(), build(1))
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripSpec(first), stripSpec(serial)) {
		t.Errorf("faulted fleet differs across worker counts:\n%+v\nvs\n%+v", first, serial)
	}
}

func TestSamplerIsPure(t *testing.T) {
	spec := testSpec(0).Defaults()
	for i := 0; i < 128; i++ {
		a, b := spec.Sample(i), spec.Sample(i)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("sample(%d) differs across calls: %+v vs %+v", i, a, b)
		}
	}
	// Distinct devices must not all collapse onto one seed.
	seen := make(map[int64]bool)
	for i := 0; i < 128; i++ {
		seen[spec.Sample(i).Seed] = true
	}
	if len(seen) != 128 {
		t.Errorf("only %d distinct seeds over 128 devices", len(seen))
	}
}

func TestFleetProgressAndCancellation(t *testing.T) {
	var calls atomic.Int64
	spec := testSpec(2)
	spec.Devices = 8
	spec.Classes = []ClassWeight{{ClassBenign, 1}}
	spec.Progress = func(done, total int) {
		calls.Add(1)
		if total != 8 || done < 1 || done > 8 {
			t.Errorf("Progress(%d, %d) out of range", done, total)
		}
	}
	if _, err := Run(context.Background(), spec); err != nil {
		t.Fatal(err)
	}
	if calls.Load() != 8 {
		t.Errorf("Progress called %d times, want 8", calls.Load())
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Run(ctx, spec); err == nil {
		t.Error("Run on a cancelled context returned nil error")
	}
}

func TestSpecValidate(t *testing.T) {
	for _, tc := range []struct {
		name string
		mut  func(*Spec)
	}{
		{"no devices", func(s *Spec) { s.Devices = 0 }},
		{"negative days", func(s *Spec) { s.Days = -1 }},
		{"tiny requests", func(s *Spec) { s.ReqBytes = 256 }},
		{"zero profile weights", func(s *Spec) {
			s.Profiles = []ProfileWeight{{device.ProfileMotoE8(), 0}}
		}},
		{"negative class weight", func(s *Spec) {
			s.Classes = []ClassWeight{{ClassBenign, -1}, {ClassAttack, 2}}
		}},
	} {
		spec := testSpec(1).Defaults()
		tc.mut(&spec)
		if err := spec.Validate(); err == nil {
			t.Errorf("%s: Validate accepted an invalid spec", tc.name)
		}
	}
	if err := testSpec(1).Defaults().Validate(); err != nil {
		t.Errorf("valid spec rejected: %v", err)
	}
}
