// Package runtrace is the ops-plane execution tracer: it measures where
// a serving process spends wall-clock time inside a campaign — simulate
// vs. checkpoint-encode vs. checkpoint-fsync vs. journal vs. aggregate
// vs. alert-eval — without ever letting those timings flow back into
// simulation results.
//
// # Shape
//
// A Tracer is threaded through fleetd's execution core. Code brackets a
// unit of work with Begin/End:
//
//	sp := tr.Begin(runtrace.PhaseSimulate, shard, epoch, device)
//	... work ...
//	sp.End()
//
// End does two things: it always feeds the elapsed seconds to the
// tracer's observer (fleetd points this at its fleetd_phase_seconds
// Prometheus histogram, so per-phase cost is available on every /metrics
// scrape, Flashmon-style: the monitor is always on), and — only while a
// recording window is open — it appends a span to a bounded in-memory
// buffer that WriteChrome renders as a Chrome trace-event file
// (chrome://tracing, Perfetto, speedscope).
//
// # The sim/ops domain boundary
//
// Spans carry wall-clock durations, so this package is ops-domain
// (declared below) exactly like internal/obs. The API is shaped so sim
// code cannot launder time through it: Begin hands back an opaque Active
// whose fields are unexported, End returns nothing, and the only way to
// read durations out — Totals — is banned by the flashvet wallclock
// analyzer outside ops-domain packages, the same treatment as
// obs.WallNow (DESIGN.md §14). The determinism pin is behavioral too:
// fleetd's fingerprint tests require byte-identical series/ledger/
// aggregate output with tracing on vs. off.
package runtrace

import (
	"context"
	"runtime/pprof"
	"sync"
	"time"
)

//flashvet:ops-domain runtrace measures where the serving process spends wall-clock time; spans, totals and traces never flow back into simulation results

// Phase identifies which part of the campaign execution pipeline a span
// covers. The values index fixed-size arrays; keep NumPhases last.
type Phase uint8

const (
	// PhaseSimulate is the deterministic per-device epoch step loop.
	PhaseSimulate Phase = iota
	// PhaseCheckpointEncode is snapshot encoding + buffered writes into
	// a checkpoint cell.
	PhaseCheckpointEncode
	// PhaseCheckpointFsync is the fsync before a cell's atomic rename.
	PhaseCheckpointFsync
	// PhaseJournal is an append (incl. fsync) to the campaign journal.
	PhaseJournal
	// PhaseAggregate is epoch commit: merging shard footers into the
	// streaming campaign aggregate.
	PhaseAggregate
	// PhaseAlertEval is the deterministic fleet-health alert scan.
	PhaseAlertEval

	// NumPhases is the number of phases (array size, not a phase).
	NumPhases
)

var phaseNames = [NumPhases]string{
	"simulate",
	"checkpoint_encode",
	"checkpoint_fsync",
	"journal",
	"aggregate",
	"alert_eval",
}

// String returns the snake_case phase name used in metric labels,
// pprof labels and Chrome trace thread names.
func (p Phase) String() string {
	if p >= NumPhases {
		return "unknown"
	}
	return phaseNames[p]
}

// Observer receives the duration of every finished span, recording or
// not. fleetd points it at a per-phase Prometheus histogram. It runs on
// the goroutine that called End and must be safe for concurrent use.
type Observer func(phase Phase, seconds float64)

// PhaseTotal is the running sum for one phase. Nanos accumulates as
// integer nanoseconds so totals are exact (no float accumulation).
type PhaseTotal struct {
	Count int64
	Nanos int64
}

// Seconds converts the accumulated nanoseconds.
func (t PhaseTotal) Seconds() float64 { return float64(t.Nanos) / 1e9 }

// Span is one recorded interval, offsets relative to the recording
// window's start. Shard is -1 for campaign-level phases (aggregate,
// alert-eval, campaign journal appends); Device is -1 where no single
// device applies.
type Span struct {
	Phase  Phase
	Shard  int32
	Epoch  int32
	Device int32
	Start  time.Duration
	Dur    time.Duration
}

// DefaultMaxSpans bounds the recording buffer (~48 B/span ≈ 12 MiB).
const DefaultMaxSpans = 1 << 18

// Tracer collects spans. The zero value is not usable; use New. A nil
// *Tracer is valid and inert: Begin/End on it are no-ops, so call sites
// never need to guard.
type Tracer struct {
	observe Observer // immutable after New
	max     int

	mu      sync.Mutex
	rec     bool
	base    time.Time // recording window start, anchor for Span.Start
	spans   []Span
	dropped int64
	totals  [NumPhases]PhaseTotal
}

// New creates a tracer. maxSpans <= 0 means DefaultMaxSpans; observe
// may be nil.
func New(maxSpans int, observe Observer) *Tracer {
	if maxSpans <= 0 {
		maxSpans = DefaultMaxSpans
	}
	return &Tracer{observe: observe, max: maxSpans, base: time.Now()}
}

// Active is an open span. Its fields are unexported on purpose: the
// starting timestamp must not be readable by the (possibly sim-domain)
// code being measured.
type Active struct {
	t      *Tracer
	start  time.Time
	phase  Phase
	shard  int32
	epoch  int32
	device int32
}

// Begin opens a span. shard -1 marks campaign-level work; device -1
// means no single device applies.
func (t *Tracer) Begin(phase Phase, shard, epoch, device int) Active {
	if t == nil {
		return Active{}
	}
	return Active{
		t:     t,
		start: time.Now(),
		phase: phase,
		shard: int32(shard), epoch: int32(epoch), device: int32(device),
	}
}

// End closes the span: the duration goes to the always-on totals and
// observer, and to the span buffer if a recording window is open.
func (a Active) End() {
	t := a.t
	if t == nil {
		return
	}
	end := time.Now()
	dur := end.Sub(a.start)
	if dur < 0 {
		dur = 0
	}
	t.mu.Lock()
	t.totals[a.phase].Count++
	t.totals[a.phase].Nanos += dur.Nanoseconds()
	if t.rec {
		if len(t.spans) < t.max {
			start := a.start.Sub(t.base)
			if start < 0 {
				start = 0
			}
			t.spans = append(t.spans, Span{
				Phase: a.phase, Shard: a.shard, Epoch: a.epoch, Device: a.device,
				Start: start, Dur: dur,
			})
		} else {
			t.dropped++
		}
	}
	t.mu.Unlock()
	if t.observe != nil {
		t.observe(a.phase, dur.Seconds())
	}
}

// StartRecording opens a recording window, discarding any previously
// buffered spans and re-anchoring span offsets at now. Recording twice
// restarts the window.
func (t *Tracer) StartRecording() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec = true
	t.base = time.Now()
	t.spans = t.spans[:0]
	t.dropped = 0
}

// StopRecording closes the window; buffered spans stay available to
// Snapshot/WriteChrome until the next StartRecording.
func (t *Tracer) StopRecording() {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.rec = false
}

// Recording reports whether a window is open.
func (t *Tracer) Recording() bool {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.rec
}

// SpanCount returns the number of buffered spans.
func (t *Tracer) SpanCount() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.spans)
}

// Dropped returns how many spans overflowed the buffer during the
// current window.
func (t *Tracer) Dropped() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}

// Snapshot copies out the buffered spans.
func (t *Tracer) Snapshot() []Span {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Span(nil), t.spans...)
}

// Totals returns the since-process-start per-phase wall-time sums,
// indexed by Phase. These are ops-plane clock readings: the flashvet
// wallclock analyzer bans this method outside ops-domain packages so
// simulation code cannot launder wall time through the tracer.
func (t *Tracer) Totals() [NumPhases]PhaseTotal {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.totals
}

// Do runs fn with pprof labels attached to the calling goroutine, so
// CPU profiles of a campaign segment by the same dimensions as spans
// (e.g. "shard", "3", "phase", "simulate"). kv alternates key, value.
func Do(ctx context.Context, fn func(context.Context), kv ...string) {
	pprof.Do(ctx, pprof.Labels(kv...), fn)
}
