package fleetd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"os"
	"testing"

	"flashwear/internal/hostio"
	"flashwear/internal/nand"
	"flashwear/internal/report"
	"flashwear/internal/wtrace"
)

// fuzzFS is a read-only in-memory hostio.FS: just enough surface for
// openCell/scan, so the fuzzer never touches the real disk.
type fuzzFS map[string][]byte

type fuzzFile struct {
	*bytes.Reader
	name string
}

func (f *fuzzFile) Write(p []byte) (int, error) { return 0, errors.New("fuzzFS: read-only") }
func (f *fuzzFile) Close() error                { return nil }
func (f *fuzzFile) Name() string                { return f.name }
func (f *fuzzFile) Sync() error                 { return nil }
func (f *fuzzFile) Truncate(int64) error        { return errors.New("fuzzFS: read-only") }

func (m fuzzFS) Open(name string) (hostio.File, error) {
	b, ok := m[name]
	if !ok {
		return nil, fs.ErrNotExist
	}
	return &fuzzFile{Reader: bytes.NewReader(b), name: name}, nil
}

func (m fuzzFS) Create(string) (hostio.File, error) { return nil, errors.New("fuzzFS: read-only") }
func (m fuzzFS) OpenFile(string, int, os.FileMode) (hostio.File, error) {
	return nil, errors.New("fuzzFS: read-only")
}
func (m fuzzFS) Rename(string, string) error           { return errors.New("fuzzFS: read-only") }
func (m fuzzFS) Remove(string) error                   { return errors.New("fuzzFS: read-only") }
func (m fuzzFS) MkdirAll(string, os.FileMode) error    { return errors.New("fuzzFS: read-only") }
func (m fuzzFS) ReadDir(string) ([]fs.DirEntry, error) { return nil, errors.New("fuzzFS: read-only") }
func (m fuzzFS) ReadFile(name string) ([]byte, error) {
	b, ok := m[name]
	if !ok {
		return nil, fs.ErrNotExist
	}
	return b, nil
}
func (m fuzzFS) WriteFile(string, []byte, os.FileMode) error { return errors.New("fuzzFS: read-only") }
func (m fuzzFS) Stat(string) (fs.FileInfo, error)            { return nil, errors.New("fuzzFS: read-only") }

// buildSeedCell assembles a small, fully valid checkpoint cell by hand:
// file magic and version, a header frame, one device frame (two blocks,
// one literal page, one zero page), and a footer frame with the end
// marker. It decodes cleanly, so mutations of it explore the deep paths.
func buildSeedCell() []byte {
	var out []byte
	out = append(out, fileMagic...)
	out = binary.LittleEndian.AppendUint32(out, ckptVersion)
	frame := func(typ byte, payload []byte) {
		out = append(out, typ)
		out = binary.LittleEndian.AppendUint32(out, uint32(len(payload)))
		out = append(out, payload...)
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(payload))
	}

	var e enc
	e.fileHeader(fileHeader{Seed: 7, Devices: 2, Days: 3, Shard: 0, Epoch: 1, DevLo: 0, DevHi: 2, DayLo: 0, DayHi: 3})
	frame(frameHeader, e.b)

	geo := nand.Geometry{Dies: 1, PlanesPerDie: 1, BlocksPerPlane: 2, PagesPerBlock: 4, PageSize: 16, SpareSize: 0}
	page := bytes.Repeat([]byte{0xA5}, geo.PageSize)
	st := &deviceState{
		Index:        1,
		DaysDone:     3,
		BytesWritten: 1 << 20,
		Main: &nand.ChipState{
			Geometry: geo,
			Blocks: []nand.BlockState{
				{EraseCount: 2, NextPage: 2, Meta: []nand.OOB{{LP: 0, Seq: 1, Org: 0}, {LP: 1, Seq: 2, Org: 1}},
					Data: map[int][]byte{0: page, 1: make([]byte, geo.PageSize)}},
				{Bad: true},
			},
		},
	}
	e = enc{}
	e.deviceState(st)
	frame(frameDevice, e.b)

	days := 3
	ft := &epochFooter{
		Shard: 0, Epoch: 1, DayLo: 0, DayHi: days, Live: 1,
		Rows:       make([][]int64, days),
		Wear:       make([]report.Sketch, days),
		FrozenRows: make([]int64, dayCols),
		FrozenWear: report.NewSketch(wearLevels),
		Agg:        newAggregate(),
		Ledger:     wtrace.Snapshot{PageSize: 16, Rows: []wtrace.Row{{Origin: "os", HostPages: 4}}},
	}
	for i := range ft.Rows {
		ft.Rows[i] = make([]int64, dayCols)
		ft.Wear[i] = report.NewSketch(wearLevels)
	}
	e = enc{}
	e.footer(ft)
	frame(frameFooter, e.b)

	out = append(out, endMagic...)
	return out
}

// FuzzCellDecode drives the checkpoint reader with arbitrary bytes. The
// contract under test: openCell/scan never panic and never allocate
// proportionally to a lying length field, and every failure maps to
// exactly the three-way error policy — ErrCheckpointTruncated,
// ErrCheckpointCorrupt, or ErrCheckpointVersion — so the sweep's
// cellUsable triage (recompute vs refuse) always has a defined answer.
func FuzzCellDecode(f *testing.F) {
	seed := buildSeedCell()
	f.Add(seed)
	f.Add([]byte{})
	f.Add([]byte(fileMagic))
	f.Add(seed[:len(seed)-3])        // missing end marker tail
	f.Add(seed[:len(fileMagic)+4+5]) // truncated mid-frame
	for _, cut := range []int{12, 40, len(seed) / 2} {
		if cut < len(seed) {
			f.Add(seed[:cut])
		}
	}
	flipped := append([]byte(nil), seed...)
	flipped[len(fileMagic)+4+5+3] ^= 0xFF // corrupt header frame payload (CRC catches it)
	f.Add(flipped)
	lying := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(lying[len(fileMagic)+4+1:], 0xFFFFFFFF) // giant frame length claim
	f.Add(lying)
	wrongVer := append([]byte(nil), seed...)
	binary.LittleEndian.PutUint32(wrongVer[len(fileMagic):], ckptVersion+1)
	f.Add(wrongVer)

	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) > 1<<20 {
			t.Skip("oversized input")
		}
		check := func(err error) {
			if err == nil {
				return
			}
			if !errors.Is(err, ErrCheckpointTruncated) &&
				!errors.Is(err, ErrCheckpointCorrupt) &&
				!errors.Is(err, ErrCheckpointVersion) {
				t.Fatalf("error outside the checkpoint error policy: %v", err)
			}
		}
		fsys := fuzzFS{"cell.ckpt": data}
		r, err := openCell(fsys, "cell.ckpt")
		if err != nil {
			check(err)
			return
		}
		defer r.Close()
		devices := 0
		_, err = r.scan(func(st *deviceState) error {
			devices++
			if st == nil {
				t.Fatal("scan delivered a nil device state without an error")
			}
			return nil
		})
		check(err)
	})
}
