package ftl

import (
	"fmt"

	"flashwear/internal/nand"
	"flashwear/internal/wtrace"
)

// CutPower marks the FTL as having lost power without any chip operation
// observing it (the cut happened between operations). Every volatile
// structure is considered garbage from this point; only Recover brings the
// FTL back.
func (f *FTL) CutPower() {
	f.powerLost = true
}

// Recover rebuilds all volatile FTL state from the persistent chips after a
// power loss — the remount path. The logical→physical map is reconstructed
// by scanning per-page OOB metadata: every program stamped its logical page
// number and a global sequence number into the spare area, so the live copy
// of each logical page is simply the one with the highest sequence. This is
// the standard log-structured recovery argument; no separate journal exists
// or is needed.
//
// Cost reflects the scan (one read per programmed page). Recover never
// fails on a powered chip: OOB reads are spare-area reads below ECC, and
// pages whose program was interrupted carry no metadata and are skipped.
func (f *FTL) Recover() (Cost, error) {
	var cost Cost

	// Drop every volatile structure.
	for i := range f.l2p {
		f.l2p[i] = noLoc
	}
	f.validLogical = 0
	f.drainDebt = 0
	f.merged = false
	f.fragCached = 0
	f.fragCountdown = 0
	f.bricked = false
	f.readOnly = false
	f.gseq = 0

	f.main.rebuildFromChip()
	if f.cache != nil {
		f.cache.rebuildFromChip()
	}

	// Scan both chips' OOB metadata and pick the highest-sequence copy of
	// each logical page.
	bestSeq := make([]int64, f.logicalPages)
	bestLoc := make([]loc, f.logicalPages)
	for i := range bestLoc {
		bestLoc[i] = noLoc
	}
	f.scanPool(PoolB, f.main.chip, bestSeq, bestLoc, f.main.seqNo, &cost)
	if f.cacheChip != nil {
		f.scanPool(PoolA, f.cacheChip, bestSeq, bestLoc, nil, &cost)
	}

	// Install the winners.
	for lp, l := range bestLoc {
		if l == noLoc {
			continue
		}
		f.l2p[lp] = l
		f.validLogical++
		if l.pool() == PoolA {
			f.cache.rmap[l.block()*f.cache.ppb+l.page()] = int32(lp)
			f.cache.valid[l.block()]++
		} else {
			f.main.rmap[l.block()*f.main.ppb+l.page()] = int32(lp)
			f.main.valid[l.block()]++
		}
	}
	// The pool's aging sequence resumes above everything seen on flash.
	f.main.seq = f.gseq

	f.powerLost = false
	f.stats.Recoveries++
	if f.spareLow() {
		f.readOnly = true
	}
	return cost, nil
}

// scanPool walks every programmed page of a chip, reading OOB metadata and
// folding it into the per-logical-page winner tables. blockSeq, when
// non-nil, receives the highest sequence seen per block (GC aging).
func (f *FTL) scanPool(pool PoolID, chip *nand.Chip, bestSeq []int64, bestLoc []loc, blockSeq []int64, cost *Cost) {
	// Wear-attribution tags are part of the OOB record, so page ownership
	// survives power loss the same way the mapping does. (Pages of failed
	// programs carry no OOB; their in-RAM attribution, made at program
	// time, is left alone.)
	var orgs []wtrace.Origin
	if f.tr != nil {
		if pool == PoolA {
			orgs = f.cache.orgs
		} else {
			orgs = f.main.orgs
		}
	}
	g := chip.Geometry()
	ppb := g.PagesPerBlock
	for b := 0; b < g.Blocks(); b++ {
		if chip.Bad(b) {
			continue
		}
		n := chip.ProgrammedPages(b)
		for pg := 0; pg < n; pg++ {
			cost.Reads++
			oob, ok := chip.ReadOOB(nand.PageAddr{Block: b, Page: pg})
			if !ok {
				continue // interrupted or failed program: no metadata
			}
			if orgs != nil {
				orgs[b*ppb+pg] = wtrace.Origin(oob.Org)
			}
			if oob.Seq > f.gseq {
				f.gseq = oob.Seq
			}
			if blockSeq != nil && oob.Seq > blockSeq[b] {
				blockSeq[b] = oob.Seq
			}
			lp := int(oob.LP)
			if lp < 0 || lp >= f.logicalPages {
				continue
			}
			if oob.Seq > bestSeq[lp] {
				bestSeq[lp] = oob.Seq
				bestLoc[lp] = makeLoc(pool, b, pg)
			}
		}
	}
}

// rebuildFromChip resets a gcPool's volatile structures to match the
// persistent chip: bad and free blocks from the chip's own records,
// mappings cleared for the OOB scan to repopulate. Partially programmed
// blocks are reopened as stream cursors at their first erased page — NAND
// programs in page order, so the remainder of an interrupted open block is
// still perfectly usable, and forfeiting it on every cut would let repeated
// power loss bleed the pool's free-page margin away until GC has no room
// left to relocate into.
func (p *gcPool) rebuildFromChip() {
	nb := len(p.state)
	p.free = p.free[:0]
	p.openBlk = [3]int{-1, -1, -1}
	p.openPage = [3]int{0, 0, 0}
	p.seq = 0
	p.collecting = false
	p.relocating = -1
	p.lostPower = false
	p.erasesSinceWL = 0
	for i := range p.rmap {
		p.rmap[i] = -1
	}
	reopened := 0
	for b := 0; b < nb; b++ {
		p.valid[b] = 0
		p.seqNo[b] = 0
		programmed := p.chip.ProgrammedPages(b)
		switch {
		case p.chip.Bad(b):
			p.state[b] = sBad
			p.fill[b] = 0
		case programmed == 0:
			p.state[b] = sFree
			p.fill[b] = 0
			p.free = append(p.free, b)
		case programmed < p.ppb && reopened < len(p.openBlk):
			// Block order is deterministic, so which partial block lands
			// on which stream is a pure function of the flash state.
			p.state[b] = sOpen
			p.fill[b] = int32(programmed)
			p.openBlk[reopened] = b
			p.openPage[reopened] = programmed
			reopened++
		default:
			p.state[b] = sFull
			p.fill[b] = int32(programmed)
		}
	}
}

// rebuildFromChip resets the cache ring to match the persistent chip. The
// cache is a FIFO log, so the blocks holding data always form one
// contiguous arc of the ring: its start becomes the drain tail, its end the
// write head. Pages the previous incarnation already drained re-drain
// harmlessly — their main-pool copies carry higher sequence numbers, so the
// OOB scan has already marked the cache copies dead.
func (c *cachePool) rebuildFromChip() {
	g := c.chip.Geometry()
	c.ring = c.ring[:0]
	for b := 0; b < g.Blocks(); b++ {
		if !c.chip.Bad(b) {
			c.ring = append(c.ring, b)
		}
	}
	for i := range c.rmap {
		c.rmap[i] = -1
	}
	for i := range c.valid {
		c.valid[i] = 0
	}
	c.head, c.tail, c.used = 0, 0, 0
	c.headPage, c.tailPage = 0, 0
	n := len(c.ring)
	if n == 0 {
		return
	}
	filled := make([]bool, n)
	arcLen := 0
	for i, b := range c.ring {
		if c.chip.ProgrammedPages(b) > 0 {
			filled[i] = true
			arcLen++
		}
	}
	if arcLen == 0 {
		return
	}
	start := 0
	if arcLen < n {
		for i := 0; i < n; i++ {
			if filled[i] && !filled[(i-1+n)%n] {
				start = i
				break
			}
		}
	}
	end := (start + arcLen - 1) % n
	if !contiguousArc(filled, start, arcLen) {
		// Should not happen for a FIFO log; fall back to draining
		// everything from the lowest filled position.
		for i := 0; i < n; i++ {
			if filled[i] {
				start = i
				break
			}
		}
		end = start
		for i := 0; i < n; i++ {
			if filled[i] {
				end = i
			}
		}
		arcLen = (end-start+n)%n + 1
	}
	c.tail = start
	c.head = end
	c.used = arcLen - 1
	c.headPage = c.chip.ProgrammedPages(c.ring[end])
	c.tailPage = 0
}

// contiguousArc reports whether the filled positions are exactly the arc
// [start, start+length) mod len(filled).
func contiguousArc(filled []bool, start, length int) bool {
	n := len(filled)
	count := 0
	for _, f := range filled {
		if f {
			count++
		}
	}
	if count != length {
		return false
	}
	for i := 0; i < length; i++ {
		if !filled[(start+i)%n] {
			return false
		}
	}
	return true
}

// String implements fmt.Stringer for debugging recovery traces.
func (s Stats) String() string {
	return fmt.Sprintf("host=%dw/%dr gc=%d drain=%d lost=%d retries=%dr/%dp recoveries=%d",
		s.HostPagesWritten, s.HostPagesRead, s.GCCopies, s.DrainMigrations,
		s.LostPages, s.ReadRetries, s.ProgramRetries, s.Recoveries)
}
