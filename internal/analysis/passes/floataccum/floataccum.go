// Package floataccum forbids floating-point accumulation in the fleet's
// merge paths.
//
// Invariant: fleet aggregation must be byte-identical across worker
// counts (DESIGN.md §6). That holds because accumulators carry only
// integer counters and integer-count histograms, whose merging is exactly
// associative and commutative under any partition of devices over
// workers. Floating-point addition is not associative — merging the same
// per-worker sums in a different order yields different low bits — so a
// single float += in an add/merge path silently breaks the determinism
// contract. Floats are fine at render time, derived from identical
// integer sums (see fleet.MetricsSeries.WriteCSV); they may not be
// accumulated.
package floataccum

import (
	"go/ast"
	"go/token"
	"go/types"
	"path"
	"strings"

	"flashwear/internal/analysis"
)

// Packages scopes the analyzer by import-path base name. The default
// covers the two packages whose merge semantics carry the cross-worker
// determinism argument: fleet (population aggregation) and wtrace (the
// merged wear ledger).
var Packages = "fleet,wtrace"

var Analyzer = &analysis.Analyzer{
	Name: "floataccum",
	Doc: "forbid floating-point accumulation in fleet/wtrace merge paths\n\n" +
		"Aggregates merged across workers must stay integer: float\n" +
		"addition is not associative, so float accumulation makes the\n" +
		"result depend on worker count.",
	Run: run,
}

func inScope(pkgPath string) bool {
	base := path.Base(pkgPath)
	for _, want := range strings.Split(Packages, ",") {
		if base == strings.TrimSpace(want) {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	if !inScope(pass.Pkg.Path()) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			checkAssign(pass, n)
		case *ast.IncDecStmt:
			if isFloat(pass, n.X) && !pass.IsTestFile(n.Pos()) {
				pass.Reportf(n.Pos(), "floating-point %s accumulation: merge paths must stay integer for order independence", n.Tok)
			}
		}
		return true
	})
	return nil
}

func checkAssign(pass *analysis.Pass, as *ast.AssignStmt) {
	if pass.IsTestFile(as.Pos()) {
		return
	}
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN:
		for _, lhs := range as.Lhs {
			if isFloat(pass, lhs) {
				pass.Reportf(as.Pos(), "floating-point %s accumulation: merge paths must stay integer for order independence (fixed-point like mWearAvgMicro if fractions are needed)", as.Tok)
			}
		}
	case token.ASSIGN:
		// x = x + y spelled out.
		for i, lhs := range as.Lhs {
			if i >= len(as.Rhs) || !isFloat(pass, lhs) {
				continue
			}
			if obj := lhsObject(pass, lhs); obj != nil && addsSelf(pass, obj, as.Rhs[i]) {
				pass.Reportf(as.Pos(), "floating-point accumulation (x = x + ...): merge paths must stay integer for order independence")
			}
		}
	}
}

func isFloat(pass *analysis.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok {
		return false
	}
	b, ok := tv.Type.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}

func lhsObject(pass *analysis.Pass, lhs ast.Expr) types.Object {
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		return pass.TypesInfo.Uses[e]
	case *ast.SelectorExpr:
		return pass.TypesInfo.Uses[e.Sel]
	}
	return nil
}

// addsSelf reports whether rhs is an additive expression mentioning obj.
func addsSelf(pass *analysis.Pass, obj types.Object, rhs ast.Expr) bool {
	bin, ok := ast.Unparen(rhs).(*ast.BinaryExpr)
	if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
		return false
	}
	found := false
	ast.Inspect(bin, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}
