package obs

import (
	"fmt"
	"io"
	"strconv"
	"strings"
	"sync"
	"time"
)

// Logger writes structured key=value lines with wall-clock timestamps:
//
//	ts=2026-08-08T12:00:00.123Z event=http route="GET /metrics" status=200 ms=1.2
//
// A nil *Logger is valid and silent, so callers thread loggers without
// nil checks and tests stay quiet by default.
type Logger struct {
	mu sync.Mutex
	w  io.Writer
}

// NewLogger wraps w; a nil writer returns a nil (silent) logger.
func NewLogger(w io.Writer) *Logger {
	if w == nil {
		return nil
	}
	return &Logger{w: w}
}

// Log emits one line for event with alternating key, value pairs. Values
// render via %v; strings containing spaces or quotes are quoted.
func (l *Logger) Log(event string, kv ...any) {
	if l == nil {
		return
	}
	var b strings.Builder
	b.WriteString("ts=")
	b.WriteString(WallNow().UTC().Format(time.RFC3339Nano))
	b.WriteString(" event=")
	b.WriteString(event)
	for i := 0; i+1 < len(kv); i += 2 {
		b.WriteByte(' ')
		fmt.Fprintf(&b, "%v", kv[i])
		b.WriteByte('=')
		s := fmt.Sprintf("%v", kv[i+1])
		if strings.ContainsAny(s, " \t\"=") || s == "" {
			s = strconv.Quote(s)
		}
		b.WriteString(s)
	}
	b.WriteByte('\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	io.WriteString(l.w, b.String())
}
