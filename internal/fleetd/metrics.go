package fleetd

import (
	"flashwear/internal/obs"
	"flashwear/internal/runtrace"
)

// Metrics is fleetd's ops-domain instrument panel. Everything here
// measures the serving process — throughput, I/O cost, request traffic —
// and nothing here feeds back into campaign results: the determinism
// tests compare series/ledger/aggregate/sim-events and explicitly exclude
// this registry's output, which legitimately differs run to run.
type Metrics struct {
	Registry *obs.Registry

	// Sweep progress.
	CellsComputed *obs.Counter // (shard, epoch) cells simulated this process
	CellsReused   *obs.Counter // cells satisfied from a valid checkpoint
	DeviceDays    *obs.Counter // device-day units committed
	DeviceRate    *obs.RateMeter

	// Checkpoint I/O.
	CheckpointBytes  *obs.Counter
	CheckpointWrites *obs.Counter
	FsyncSeconds     *obs.Histogram
	// Host-fault resilience: write attempts burned on retries, and
	// whether any campaign is currently in checkpointing-paused
	// (degraded, in-memory carry) mode.
	CheckpointRetries  *obs.Counter
	CheckpointDegraded *obs.Gauge

	// Campaign lifecycle.
	Submits *obs.Counter
	Resumes *obs.Counter
	Forks   *obs.Counter

	HTTP *obs.HTTPMetrics

	// Execution phase split (DESIGN.md §14): wall time per runtrace
	// phase, fed by the tracer's observer on every span end. phase[] is
	// the pre-resolved child per phase so the span hot path skips the
	// vec's map lookup.
	PhaseSeconds *obs.HistogramVec
	phase        [runtrace.NumPhases]*obs.Histogram
}

// ObservePhase is the runtrace observer: it routes a finished span's
// duration to the fleetd_phase_seconds child for its phase.
func (m *Metrics) ObservePhase(p runtrace.Phase, seconds float64) {
	if p < runtrace.NumPhases {
		m.phase[p].Observe(seconds)
	}
}

// NewMetrics builds the fleetd metric set on a fresh registry.
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	m := &Metrics{
		Registry: r,
		CellsComputed: r.Counter("fleetd_cells_computed_total",
			"Checkpoint cells (shard x epoch) simulated by this process."),
		CellsReused: r.Counter("fleetd_cells_reused_total",
			"Checkpoint cells satisfied from a valid on-disk checkpoint instead of recomputing."),
		DeviceDays: r.Counter("fleetd_device_days_total",
			"Device-day simulation units committed."),
		DeviceRate: r.RateMeter("fleetd_device_days_per_second",
			"Device-day throughput over the most recent epoch commit interval."),
		CheckpointBytes: r.Counter("fleetd_checkpoint_bytes_total",
			"Bytes written to completed checkpoint cell files."),
		CheckpointWrites: r.Counter("fleetd_checkpoint_writes_total",
			"Checkpoint cell files completed (fsynced and renamed into place)."),
		FsyncSeconds: r.Histogram("fleetd_checkpoint_fsync_seconds",
			"Latency of the fsync that makes a checkpoint cell durable.",
			obs.DurationBuckets),
		CheckpointRetries: r.Counter("fleetd_checkpoint_retries_total",
			"Checkpoint cell write attempts retried after a host I/O failure."),
		CheckpointDegraded: r.Gauge("fleetd_checkpoint_degraded",
			"1 while a campaign is in checkpointing-paused mode (simulating with in-memory state carry because checkpoint writes fail), else 0."),
		Submits: r.Counter("fleetd_campaign_submits_total",
			"Campaigns submitted."),
		Resumes: r.Counter("fleetd_campaign_resumes_total",
			"Campaign sweep resumes (operator resume or post-restart)."),
		Forks: r.Counter("fleetd_campaign_forks_total",
			"Campaigns created by forking."),
		HTTP: obs.NewHTTPMetrics(r, "fleetd"),
		PhaseSeconds: r.HistogramVec("fleetd_phase_seconds",
			"Wall time per campaign execution phase (simulate, checkpoint_encode, checkpoint_fsync, journal, aggregate, alert_eval).",
			obs.DurationBuckets, "phase"),
	}
	// Materialize every phase child up front so the families render on
	// the first scrape (not only after a span of that phase has ended).
	for p := runtrace.Phase(0); p < runtrace.NumPhases; p++ {
		m.phase[p] = m.PhaseSeconds.With(p.String())
	}
	runtrace.RegisterRuntimeGauges(r, "fleetd")
	return m
}
