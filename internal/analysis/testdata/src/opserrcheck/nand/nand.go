// Package nand is a fixture stand-in for the real NAND layer: opserrcheck
// scopes by the declaring package's base name, so its method set mirrors
// the mutation ops the analyzer guards.
package nand

// OpResult mimics the real chip's per-op accounting.
type OpResult struct{ Retries int }

// Chip mimics the mutating surface of nand.Chip.
type Chip struct{ bricked bool }

func (c *Chip) ProgramPage(page int, data []byte) (OpResult, error) { return OpResult{}, nil }
func (c *Chip) EraseBlock(blk int) error                            { return nil }
func (c *Chip) WriteThrough(p []byte) (int, error)                  { return len(p), nil }
func (c *Chip) Recover() error                                      { return nil }

// ReadPage is not a mutation op; its dropped errors are errcheck's
// business, not flashvet's.
func (c *Chip) ReadPage(page int) ([]byte, error) { return nil, nil }
