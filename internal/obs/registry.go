package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Registry holds a process's ops-domain metrics and renders them in the
// Prometheus text exposition format. Metric values are wall-clock-domain
// by construction (request latencies, fsync costs, throughput rates), so
// the registry's output is explicitly excluded from every determinism
// comparison; sim-domain series belong in internal/telemetry instead.
type Registry struct {
	mu      sync.Mutex
	metrics []metric // insertion order; sorted by name at render
	names   map[string]bool
}

// metric is one named family that can render itself.
type metric interface {
	metricName() string
	write(w *bufio.Writer)
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: map[string]bool{}}
}

func (r *Registry) register(m metric) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[m.metricName()] {
		panic("obs: duplicate metric " + m.metricName())
	}
	r.names[m.metricName()] = true
	r.metrics = append(r.metrics, m)
}

// WritePrometheus renders every family, sorted by name.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	ms := append([]metric(nil), r.metrics...)
	r.mu.Unlock()
	sort.Slice(ms, func(i, j int) bool { return ms[i].metricName() < ms[j].metricName() })
	bw := bufio.NewWriter(w)
	for _, m := range ms {
		m.write(bw)
	}
	return bw.Flush()
}

// ServeHTTP makes the registry a GET /metrics handler.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	r.WritePrometheus(w)
}

// header emits the # HELP / # TYPE preamble.
func header(w *bufio.Writer, name, help, typ string) {
	fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// labelPairs renders {k="v",...} from parallel name/value slices.
func labelPairs(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// Counter is a monotonically increasing integer.
type Counter struct {
	name, help string
	v          atomic.Int64
}

// Counter registers and returns a counter family with no labels.
func (r *Registry) Counter(name, help string) *Counter {
	c := &Counter{name: name, help: help}
	r.register(c)
	return c
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (which must be non-negative; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

func (c *Counter) metricName() string { return c.name }

func (c *Counter) write(w *bufio.Writer) {
	header(w, c.name, c.help, "counter")
	fmt.Fprintf(w, "%s %d\n", c.name, c.v.Load())
}

// Gauge is a float that can go up and down.
type Gauge struct {
	name, help string
	bits       atomic.Uint64
}

// Gauge registers and returns a gauge family with no labels.
func (r *Registry) Gauge(name, help string) *Gauge {
	g := &Gauge{name: name, help: help}
	r.register(g)
	return g
}

// Set replaces the value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the value by d.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		if g.bits.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+d)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) metricName() string { return g.name }

func (g *Gauge) write(w *bufio.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.Value()))
}

// GaugeFunc is a gauge whose value is produced by a callback at render
// time — for cheap point-in-time reads of process state (heap bytes,
// goroutine counts) that would be wasteful to push on a timer.
type GaugeFunc struct {
	name, help string
	fn         func() float64
}

// GaugeFunc registers a callback-backed gauge family. fn is called on
// every render (and by Value); it must be safe for concurrent use.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) *GaugeFunc {
	g := &GaugeFunc{name: name, help: help, fn: fn}
	r.register(g)
	return g
}

// Value invokes the callback.
func (g *GaugeFunc) Value() float64 { return g.fn() }

func (g *GaugeFunc) metricName() string { return g.name }

func (g *GaugeFunc) write(w *bufio.Writer) {
	header(w, g.name, g.help, "gauge")
	fmt.Fprintf(w, "%s %s\n", g.name, formatFloat(g.fn()))
}

// Histogram is a fixed-bucket cumulative histogram (Prometheus
// semantics: each bucket counts observations <= its bound, plus +Inf).
type Histogram struct {
	name, help string
	labelStr   string // rendered label pairs, "" when unlabelled

	mu     sync.Mutex
	bounds []float64
	counts []uint64 // len(bounds)+1; last is +Inf
	sum    float64
	count  uint64
}

// DurationBuckets is a general-purpose latency bucket ladder in seconds,
// 100µs to ~100s.
var DurationBuckets = []float64{
	1e-4, 2.5e-4, 5e-4, 1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5, 1, 2.5, 5, 10, 25, 50, 100,
}

func newHistogram(name, help, labelStr string, bounds []float64) *Histogram {
	return &Histogram{
		name: name, help: help, labelStr: labelStr,
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
	}
}

// Histogram registers and returns an unlabelled histogram with the given
// upper bounds (ascending).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	h := newHistogram(name, help, "", bounds)
	r.register(h)
	return h
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i]++
	h.sum += v
	h.count++
}

// Time starts a wall-clock stopwatch; the returned func observes the
// elapsed seconds. Handing out the closure (rather than a timestamp)
// lets sim-domain callers measure ops costs without ever holding a
// wall-clock value themselves.
func (h *Histogram) Time() func() {
	start := WallNow()
	return func() { h.Observe(WallNow().Sub(start).Seconds()) }
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.count
}

// Sum returns the sum of all observed values (the _sum row).
func (h *Histogram) Sum() float64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.sum
}

func (h *Histogram) metricName() string { return h.name }

func (h *Histogram) write(w *bufio.Writer) {
	header(w, h.name, h.help, "histogram")
	h.writeRows(w)
}

// writeRows renders the _bucket/_sum/_count rows without the preamble
// (shared with HistogramVec, which emits one preamble per family).
func (h *Histogram) writeRows(w *bufio.Writer) {
	h.mu.Lock()
	defer h.mu.Unlock()
	cum := uint64(0)
	inner := strings.TrimSuffix(strings.TrimPrefix(h.labelStr, "{"), "}")
	le := func(bound string) string {
		if inner == "" {
			return `{le="` + bound + `"}`
		}
		return "{" + inner + `,le="` + bound + `"}`
	}
	for i, b := range h.bounds {
		cum += h.counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, le(formatFloat(b)), cum)
	}
	cum += h.counts[len(h.bounds)]
	fmt.Fprintf(w, "%s_bucket%s %d\n", h.name, le("+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", h.name, h.labelStr, formatFloat(h.sum))
	fmt.Fprintf(w, "%s_count%s %d\n", h.name, h.labelStr, cum)
}

// CounterVec is a counter family with a fixed label set.
type CounterVec struct {
	name, help string
	labels     []string

	mu   sync.Mutex
	kids map[string]*Counter
}

// CounterVec registers and returns a labelled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	v := &CounterVec{name: name, help: help, labels: labels, kids: map[string]*Counter{}}
	r.register(v)
	return v
}

// With returns the child counter for the given label values (one per
// label name, in declaration order), creating it on first use.
func (v *CounterVec) With(values ...string) *Counter {
	if len(values) != len(v.labels) {
		panic("obs: " + v.name + ": wrong label value count")
	}
	key := labelPairs(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	c, ok := v.kids[key]
	if !ok {
		c = &Counter{name: v.name + key}
		v.kids[key] = c
	}
	return c
}

func (v *CounterVec) metricName() string { return v.name }

func (v *CounterVec) write(w *bufio.Writer) {
	header(w, v.name, v.help, "counter")
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		fmt.Fprintf(w, "%s%s %d\n", v.name, k, v.kids[k].v.Load())
	}
	v.mu.Unlock()
}

// HistogramVec is a histogram family with a fixed label set.
type HistogramVec struct {
	name, help string
	labels     []string
	bounds     []float64

	mu   sync.Mutex
	kids map[string]*Histogram
}

// HistogramVec registers and returns a labelled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labels ...string) *HistogramVec {
	v := &HistogramVec{name: name, help: help, labels: labels, bounds: bounds, kids: map[string]*Histogram{}}
	r.register(v)
	return v
}

// With returns the child histogram for the given label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	if len(values) != len(v.labels) {
		panic("obs: " + v.name + ": wrong label value count")
	}
	key := labelPairs(v.labels, values)
	v.mu.Lock()
	defer v.mu.Unlock()
	h, ok := v.kids[key]
	if !ok {
		h = newHistogram(v.name, "", key, v.bounds)
		v.kids[key] = h
	}
	return h
}

func (v *HistogramVec) metricName() string { return v.name }

func (v *HistogramVec) write(w *bufio.Writer) {
	header(w, v.name, v.help, "histogram")
	v.mu.Lock()
	keys := make([]string, 0, len(v.kids))
	for k := range v.kids {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	kids := make([]*Histogram, len(keys))
	for i, k := range keys {
		kids[i] = v.kids[k]
	}
	v.mu.Unlock()
	for _, h := range kids {
		h.writeRows(w)
	}
}

// RateMeter turns event counts into a throughput gauge: each Add sets the
// gauge to n divided by the wall time since the previous Add — a cheap
// devices-per-second style meter that needs no scrape-side rate().
type RateMeter struct {
	g *Gauge

	mu   sync.Mutex
	last time.Time
}

// RateMeter registers a gauge family driven by Add.
func (r *Registry) RateMeter(name, help string) *RateMeter {
	return &RateMeter{g: r.Gauge(name, help), last: WallNow()}
}

// Add records that n units of work completed since the previous Add and
// updates the gauge to the interval rate.
func (m *RateMeter) Add(n int64) {
	now := WallNow()
	m.mu.Lock()
	defer m.mu.Unlock()
	dt := now.Sub(m.last).Seconds()
	m.last = now
	if dt > 0 {
		m.g.Set(float64(n) / dt)
	}
}
