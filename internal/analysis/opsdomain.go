package analysis

import "strings"

// OpsDomainPrefix is the package-level declaration that opts a package
// out of the sim-domain analyzers (wallclock, globalrand): ops-plane
// code measures the real process, and what it measures never flows back
// into simulation results. The reason is mandatory, exactly as for
// //flashvet:ignore.
const OpsDomainPrefix = "flashvet:ops-domain"

// OpsDomain scans the package for //flashvet:ops-domain declarations and
// returns true only when at least one well-formed declaration exists — a
// malformed one grants nothing. When report is true, malformed
// declarations (no reason) are reported as findings; exactly one analyzer
// in the suite (wallclock) reports them, so a bad declaration is a single
// finding, not one per exempting analyzer.
func OpsDomain(pass *Pass, report bool) bool {
	declared := false
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+OpsDomainPrefix)
				if !ok {
					continue
				}
				// An embedded "//" ends the declaration, like ignore
				// directives: what follows is commentary, not reason.
				if i := strings.Index(text, "//"); i >= 0 {
					text = text[:i]
				}
				if text != "" && !strings.HasPrefix(text, " ") && !strings.HasPrefix(text, "\t") {
					if report {
						pass.Reportf(c.Pos(), "malformed %s declaration: want //%s <reason>", OpsDomainPrefix, OpsDomainPrefix)
					}
					continue
				}
				if strings.TrimSpace(text) == "" {
					if report {
						pass.Reportf(c.Pos(), "%s declaration has no reason: say what this package measures instead of simulating", OpsDomainPrefix)
					}
					continue
				}
				declared = true
			}
		}
	}
	return declared
}
