package f2fs

import (
	"encoding/binary"
	"fmt"

	"flashwear/internal/blockdev"
)

// CheckReport is the outcome of an offline f2fs consistency check.
type CheckReport struct {
	// Corruptions are invariant violations; a recovered volume has none.
	Corruptions []string
	// LiveNodes and LiveDataBlocks count what the NAT reaches.
	LiveNodes      int
	LiveDataBlocks int
}

// Clean reports whether the volume is structurally consistent.
func (r CheckReport) Clean() bool { return len(r.Corruptions) == 0 }

// Check runs a read-only, mount-free consistency pass: the newest valid
// checkpoint is located, the NAT loaded, and every live node walked. It
// verifies NAT targets land in the main area, node blocks carry the IDs the
// NAT claims, and no physical block is referenced twice.
//
// Run it after a clean unmount or after a mount has performed crash
// recovery: a crashed-but-unrecovered image legitimately carries a stale
// on-disk NAT that roll-forward will correct, which this offline pass
// would misreport as corruption.
func Check(dev blockdev.Device) (CheckReport, error) {
	var rep CheckReport
	sbBlk, err := readBlock(dev, 0)
	if err != nil {
		return rep, err
	}
	sb, err := decodeSuperblock(sbBlk)
	if err != nil {
		return rep, err
	}
	// Newest valid checkpoint (for validation only; NAT is authoritative).
	valid := false
	for i := 0; i < 2; i++ {
		cb, err := readBlock(dev, sb.cpStart+uint32(i))
		if err != nil {
			return rep, err
		}
		if _, ok := decodeCheckpoint(cb); ok {
			valid = true
		}
	}
	if !valid {
		rep.Corruptions = append(rep.Corruptions, "no valid checkpoint slot")
		return rep, nil
	}

	inMain := func(addr uint32) bool {
		return addr >= sb.mainStart && addr < sb.mainStart+sb.segCount*SegBlocks
	}

	// Load the NAT.
	nat := make([]uint32, int(sb.natBlks)*natEntriesPerBlock)
	for i := uint32(0); i < sb.natBlks; i++ {
		nb, err := readBlock(dev, sb.natStart+i)
		if err != nil {
			return rep, err
		}
		base := int(i) * natEntriesPerBlock
		for e := 0; e < natEntriesPerBlock; e++ {
			nat[base+e] = binary.LittleEndian.Uint32(nb[e*4:])
		}
	}

	owner := map[uint32]uint32{} // physical block -> owning node id
	claim := func(addr, id uint32, what string) {
		if !inMain(addr) {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("node %d %s at %d outside main area", id, what, addr))
			return
		}
		if prev, dup := owner[addr]; dup {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("block %d claimed by nodes %d and %d", addr, prev, id))
			return
		}
		owner[addr] = id
	}

	for id := uint32(1); id < uint32(len(nat)); id++ {
		addr := nat[id]
		if addr == 0 {
			continue
		}
		if !inMain(addr) {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("NAT[%d] = %d outside main area", id, addr))
			continue
		}
		b, err := readBlock(dev, addr)
		if err != nil {
			return rep, err
		}
		n, _, _, err := decodeNode(b)
		if err != nil {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("NAT[%d] points at a non-node block", id))
			continue
		}
		if n.id != id {
			rep.Corruptions = append(rep.Corruptions,
				fmt.Sprintf("NAT[%d] points at node %d", id, n.id))
			continue
		}
		rep.LiveNodes++
		claim(addr, id, "node block")
		if n.isIndirect() {
			for _, p := range n.ptrs {
				if p != 0 {
					rep.LiveDataBlocks++
					claim(p, id, "data pointer")
				}
			}
		} else {
			for _, p := range n.direct {
				if p != 0 {
					rep.LiveDataBlocks++
					claim(p, id, "data pointer")
				}
			}
			for _, indirID := range n.indirect {
				if indirID == 0 {
					continue
				}
				if indirID >= uint32(len(nat)) || nat[indirID] == 0 {
					rep.Corruptions = append(rep.Corruptions,
						fmt.Sprintf("inode %d references missing indirect node %d", id, indirID))
				}
			}
		}
	}
	return rep, nil
}
