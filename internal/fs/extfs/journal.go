package extfs

import (
	"encoding/binary"
	"fmt"
	"sort"
)

// Physical-block journaling, jbd2-style: each transaction is a descriptor
// block listing home addresses, full copies of the staged metadata blocks,
// and a commit block. Checkpointing (writing the blocks to their home
// locations) is lazy: it happens when the journal fills, at unmount, or
// during replay after a crash.

const (
	jsupMagic = 0x4A535550 // "JSUP"
	jdscMagic = 0x4A445343 // "JDSC"
	jcmtMagic = 0x4A434D54 // "JCMT"

	// maxTxnBlocks bounds one transaction's staged blocks so a descriptor
	// block can always list them.
	maxTxnBlocks = (BlockSize - 16) / 4
)

// journalSuper is the first block of the journal region.
type journalSuper struct {
	seq uint64 // sequence number of the first transaction in the log
}

func (j journalSuper) encode() []byte {
	b := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(b[0:], jsupMagic)
	binary.LittleEndian.PutUint64(b[8:], j.seq)
	return b
}

func decodeJournalSuper(b []byte) (journalSuper, error) {
	if binary.LittleEndian.Uint32(b[0:]) != jsupMagic {
		return journalSuper{}, fmt.Errorf("%w: bad journal superblock", ErrCorrupt)
	}
	return journalSuper{seq: binary.LittleEndian.Uint64(b[8:])}, nil
}

// stageMeta records a metadata block into the running transaction (and the
// cache). The slice is retained; callers must not reuse it.
func (v *FS) stageMeta(blk uint32, b []byte) {
	v.meta[blk] = b
	v.txn[blk] = b
}

// readMeta returns the current content of a metadata block, preferring the
// running transaction, then journaled-uncheckpointed state, then the cache,
// then the device.
func (v *FS) readMeta(blk uint32) ([]byte, error) {
	if b, ok := v.txn[blk]; ok {
		return b, nil
	}
	if b, ok := v.pending[blk]; ok {
		return b, nil
	}
	if b, ok := v.meta[blk]; ok {
		return b, nil
	}
	b, err := readBlock(v.dev, blk)
	if err != nil {
		return nil, err
	}
	v.meta[blk] = b
	return b, nil
}

// jEnd returns the first block past the journal region.
func (v *FS) jEnd() uint32 { return v.sb.jStart + v.sb.jBlks }

// commit writes the running transaction to the journal and issues a
// barrier. With an empty transaction it degenerates to a pure barrier —
// the lazytime fsync fast path.
func (v *FS) commit() error {
	if len(v.txn) == 0 {
		return v.dev.Flush()
	}
	if len(v.txn) > maxTxnBlocks {
		// Absurdly large transaction; split by checkpointing directly.
		// (Cannot happen with the small metadata footprint of this FS,
		// but stay safe.)
		for _, blk := range sortedKeys(v.txn) {
			if err := writeBlock(v.dev, blk, v.txn[blk]); err != nil {
				return err
			}
			delete(v.txn, blk)
		}
		return v.dev.Flush()
	}
	need := uint32(len(v.txn) + 2)
	if v.jHead+need > v.jEnd() {
		if err := v.checkpoint(); err != nil {
			return err
		}
	}
	// Descriptor. Homes are written in sorted order: map iteration order
	// would permute the journal bodies, and a power cut landing inside the
	// transaction would then make which blocks survived a function of that
	// permutation — the one thing a deterministic simulation cannot have.
	desc := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(desc[0:], jdscMagic)
	le.PutUint64(desc[4:], v.jSeq)
	le.PutUint32(desc[12:], uint32(len(v.txn)))
	homes := sortedKeys(v.txn)
	for i, h := range homes {
		le.PutUint32(desc[16+4*i:], h)
	}
	if err := writeBlock(v.dev, v.jHead, desc); err != nil {
		return err
	}
	v.jHead++
	// Block copies.
	for _, h := range homes {
		if err := writeBlock(v.dev, v.jHead, v.txn[h]); err != nil {
			return err
		}
		v.jHead++
	}
	// Commit record.
	cmt := make([]byte, BlockSize)
	le.PutUint32(cmt[0:], jcmtMagic)
	le.PutUint64(cmt[4:], v.jSeq)
	if err := writeBlock(v.dev, v.jHead, cmt); err != nil {
		return err
	}
	v.jHead++
	v.jSeq++
	v.statJournalCommits++
	v.statJournalBlocks += int64(len(homes)) + 2 // descriptor + bodies + commit
	if err := v.dev.Flush(); err != nil {
		return err
	}
	// Transaction is durable; move to pending checkpoint state.
	for blk, b := range v.txn {
		v.pending[blk] = b
	}
	v.txn = make(map[uint32][]byte)
	return nil
}

// sortedKeys returns a map's keys in ascending order — every loop that
// turns journaled state into device operations iterates in this order, so
// the on-flash history is a pure function of the workload (see commit).
func sortedKeys[V any](m map[uint32]V) []uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool { return keys[a] < keys[b] })
	return keys
}

// checkpoint writes all journaled blocks to their home locations and resets
// the journal head.
func (v *FS) checkpoint() error {
	for _, blk := range sortedKeys(v.pending) {
		if err := writeBlock(v.dev, blk, v.pending[blk]); err != nil {
			return err
		}
		v.statCheckpointWrites++
	}
	if err := v.dev.Flush(); err != nil {
		return err
	}
	v.pending = make(map[uint32][]byte)
	if err := v.drainQuarantine(); err != nil {
		return err
	}
	v.jHead = v.sb.jStart + 1
	jsb := journalSuper{seq: v.jSeq}
	if err := writeBlock(v.dev, v.sb.jStart, jsb.encode()); err != nil {
		return err
	}
	return v.dev.Flush()
}

// replay applies committed journal transactions after an unclean shutdown
// and resets the journal. It returns the number of transactions applied.
func (v *FS) replay() (int, error) {
	jb, err := readBlock(v.dev, v.sb.jStart)
	if err != nil {
		return 0, err
	}
	jsb, err := decodeJournalSuper(jb)
	if err != nil {
		return 0, err
	}
	le := binary.LittleEndian
	pos := v.sb.jStart + 1
	seq := jsb.seq
	applied := 0
	for pos < v.jEnd() {
		db, err := readBlock(v.dev, pos)
		if err != nil {
			break
		}
		if le.Uint32(db[0:]) != jdscMagic || le.Uint64(db[4:]) != seq {
			break
		}
		count := le.Uint32(db[12:])
		if count == 0 || count > maxTxnBlocks || pos+count+1 >= v.jEnd() {
			break
		}
		// Verify the commit record before applying anything.
		cb, err := readBlock(v.dev, pos+count+1)
		if err != nil {
			break
		}
		if le.Uint32(cb[0:]) != jcmtMagic || le.Uint64(cb[4:]) != seq {
			break // crashed mid-transaction: discard
		}
		for i := uint32(0); i < count; i++ {
			home := le.Uint32(db[16+4*i:])
			if home >= v.sb.totalBlocks {
				return applied, fmt.Errorf("%w: journal home %d out of range", ErrCorrupt, home)
			}
			body, err := readBlock(v.dev, pos+1+i)
			if err != nil {
				return applied, err
			}
			if err := writeBlock(v.dev, home, body); err != nil {
				return applied, err
			}
		}
		pos += count + 2
		seq++
		applied++
	}
	if err := v.dev.Flush(); err != nil {
		return applied, err
	}
	v.jSeq = seq
	v.jHead = v.sb.jStart + 1
	if err := writeBlock(v.dev, v.sb.jStart, journalSuper{seq: seq}.encode()); err != nil {
		return applied, err
	}
	return applied, v.dev.Flush()
}
