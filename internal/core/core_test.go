package core

import (
	"testing"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/device"
	"flashwear/internal/ftl"
	"flashwear/internal/simclock"
	"flashwear/internal/workload"
)

func TestEnvelopeMath(t *testing.T) {
	e := NewEnvelope(8 << 30)
	if e.AssumedPE != 3000 {
		t.Fatalf("AssumedPE = %d", e.AssumedPE)
	}
	if e.TotalHostBytes() != 8<<30*3000 {
		t.Fatalf("TotalHostBytes = %d", e.TotalHostBytes())
	}
	if e.BytesPerIncrement() != e.TotalHostBytes()/10 {
		t.Fatal("BytesPerIncrement wrong")
	}
	// §2.3: 3 full rewrites/day for 3 years consumes ~3285 of 3000... the
	// paper's own arithmetic: 3000 cycles / (3/day) = 1000 days ≈ 2.7y.
	perDay := e.FullRewritesPerDayForYears(3)
	if perDay < 2.5 || perDay > 3.0 {
		t.Fatalf("rewrites/day over 3y = %v, want ~2.7", perDay)
	}
	// Lifetime at 20 MiB/s sustained: 24 TiB / 20 MiB/s ≈ 14.6 days. Even
	// the *optimistic* envelope promises only two weeks under the attack
	// rate — and §4.3 measures 3x less.
	life := e.Lifetime(20 << 20)
	if life < 13*24*time.Hour || life > 16*24*time.Hour {
		t.Fatalf("lifetime at 20MiB/s = %v, want ~14.5 days", life)
	}
	if e.Lifetime(0) != 0 {
		t.Fatal("zero rate lifetime")
	}
	if s := e.Shortfall(e.TotalHostBytes() / 3); s < 2.9 || s > 3.1 {
		t.Fatalf("Shortfall = %v, want 3", s)
	}
	if e.Shortfall(0) != 0 {
		t.Fatal("Shortfall(0)")
	}
}

// fastProfile is a tiny device that wears out quickly.
func fastProfile(rated int) device.Profile {
	p := device.ProfileEMMC8().Scaled(512) // 16 MiB
	p.RatedPE = rated
	p.FirmwareRatedPE = 0
	return p
}

func TestRunnerRecordsMonotonicIncrements(t *testing.T) {
	clock := simclock.New()
	dev, err := device.New(fastProfile(80), clock)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(dev, clock, 512)
	r.Pattern = "4 KiB rand"
	w := workload.NewDeviceWriter(dev, 4096, false, 9)
	w.RegionLen = dev.Size() / 16 // small hot region, like the 4x100MB files
	if err := r.RunPhase(w.Step, 0, r.UntilLevel(ftl.PoolB, 11)); err != nil {
		t.Fatalf("RunPhase: %v", err)
	}
	rep := r.Report()
	incs := rep.IncrementsFor(ftl.PoolB)
	if len(incs) < 9 {
		t.Fatalf("only %d increments recorded", len(incs))
	}
	for i, inc := range incs {
		if inc.ToLevel <= inc.FromLevel {
			t.Fatalf("increment %d not monotonic: %+v", i, inc)
		}
		if inc.HostGiB <= 0 || inc.Hours <= 0 {
			t.Fatalf("increment %d has empty measurements: %+v", i, inc)
		}
		if inc.Pattern != "4 KiB rand" {
			t.Fatalf("increment %d lost its label", i)
		}
	}
	// Figure 2's shape: the volume per increment is roughly constant.
	mean := rep.MeanHostGiBPerIncrement(ftl.PoolB)
	for _, inc := range incs[1:] { // first increment includes break-in
		if inc.HostGiB < mean*0.4 || inc.HostGiB > mean*2.5 {
			t.Fatalf("increment %v deviates wildly from mean %.2f GiB", inc, mean)
		}
	}
	if rep.FinalWA < 1 {
		t.Fatalf("FinalWA = %v", rep.FinalWA)
	}
	if rep.TotalHostGiB <= 0 || rep.TotalHours <= 0 {
		t.Fatalf("totals empty: %+v", rep)
	}
}

func TestRunnerScalesResults(t *testing.T) {
	// The same physical run reported at scale 512 must show 512x the
	// volume of a scale-1 report.
	run := func(scale int64) float64 {
		clock := simclock.New()
		dev, err := device.New(fastProfile(60), clock)
		if err != nil {
			t.Fatal(err)
		}
		r := NewRunner(dev, clock, scale)
		w := workload.NewDeviceWriter(dev, 4096, false, 9)
		w.RegionLen = dev.Size() / 16
		if err := r.RunPhase(w.Step, 0, r.UntilLevel(ftl.PoolB, 3)); err != nil {
			t.Fatal(err)
		}
		return r.Report().TotalHostGiB
	}
	small, big := run(1), run(512)
	ratio := big / small
	if ratio < 511 || ratio > 513 {
		t.Fatalf("scale ratio = %v, want 512", ratio)
	}
}

func TestRunnerPhaseBudget(t *testing.T) {
	clock := simclock.New()
	dev, err := device.New(fastProfile(100_000), clock)
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(dev, clock, 1)
	w := workload.NewDeviceWriter(dev, 4096, true, 1)
	if err := r.RunPhase(w.Step, 8<<20, nil); err != nil {
		t.Fatal(err)
	}
	got := r.Report().TotalHostGiB * 1024 // MiB
	if got < 8 || got > 13 {
		t.Fatalf("phase wrote %.1f MiB, want ~8-12", got)
	}
}

func newAttackPhone(t *testing.T, prof device.Profile, fsKind android.FSKind) (*android.Phone, *android.App) {
	t.Helper()
	clock := simclock.New()
	phone, err := android.NewPhone(android.Config{Profile: prof, FS: fsKind}, clock)
	if err != nil {
		t.Fatal(err)
	}
	app, err := phone.InstallApp("com.innocuous.notes")
	if err != nil {
		t.Fatal(err)
	}
	return phone, app
}

func TestContinuousAttackBricksPhone(t *testing.T) {
	phone, app := newAttackPhone(t, fastProfile(60), android.FSExt4)
	// Start at noon: on battery with the screen on, so a continuous
	// attack is exposed to both monitors.
	phone.Clock().AdvanceTo(12 * time.Hour)
	atk := NewAttack(app, Continuous, 1024)
	rep, err := atk.Run(phone, 365*24*time.Hour)
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if !rep.Bricked {
		t.Fatalf("phone survived: %+v", rep)
	}
	if rep.FootprintPct > 3.5 {
		t.Fatalf("attack used %.1f%% of capacity, paper promises <3%%", rep.FootprintPct)
	}
	if len(rep.Increments) == 0 {
		t.Fatal("no wear increments observed before brick")
	}
	// Continuous attacks are visible: midday I/O is on battery with the
	// screen on.
	if rep.PowerJoulesAttributed == 0 {
		t.Error("continuous attack invisible to power monitor")
	}
	if rep.ProcessObservedCount == 0 {
		t.Error("continuous attack invisible to process monitor")
	}
}

func TestStealthAttackEvadesMonitorsAndStillBricks(t *testing.T) {
	phone, app := newAttackPhone(t, fastProfile(60), android.FSExt4)
	// Start at noon: screen on, on battery — stealth must wait.
	phone.Clock().AdvanceTo(12 * time.Hour)
	atk := NewAttack(app, Stealth, 1024)
	rep, err := atk.Run(phone, 365*24*time.Hour)
	if err != nil {
		t.Fatalf("attack: %v", err)
	}
	if !rep.Bricked {
		t.Fatalf("stealth attack failed to brick: %+v", rep)
	}
	if rep.PowerJoulesAttributed != 0 {
		t.Errorf("stealth attack attributed %v J on battery", rep.PowerJoulesAttributed)
	}
	if rep.ProcessObservedCount != 0 {
		t.Errorf("stealth attack observed %d times", rep.ProcessObservedCount)
	}
}

func TestStealthSlowerThanContinuous(t *testing.T) {
	run := func(mode AttackMode) float64 {
		phone, app := newAttackPhone(t, fastProfile(60), android.FSExt4)
		phone.Clock().AdvanceTo(8 * time.Hour) // screen just came on
		atk := NewAttack(app, mode, 1024)
		rep, err := atk.Run(phone, 365*24*time.Hour)
		if err != nil || !rep.Bricked {
			t.Fatalf("mode %v: err=%v bricked=%v", mode, err, rep.Bricked)
		}
		return rep.Hours
	}
	cont, stealth := run(Continuous), run(Stealth)
	if stealth <= cont {
		t.Fatalf("stealth (%.1fh) should take longer than continuous (%.1fh)", stealth, cont)
	}
}

func TestAttackOnF2FSWritesMoreToDevice(t *testing.T) {
	// Figure 4: the same host volume produces ~2x device I/O on F2FS.
	deviceWA := func(kind android.FSKind) float64 {
		phone, app := newAttackPhone(t, fastProfile(100_000), kind)
		atk := NewAttack(app, Continuous, 1024)
		atk.SyncEvery = 1
		set := workloadSetup(t, atk, phone)
		before := phone.Device().BytesWritten()
		hostBefore := phone.AppIOStats(app.Name()).BytesWritten
		if _, err := set.Step(4 << 20); err != nil {
			t.Fatal(err)
		}
		host := phone.AppIOStats(app.Name()).BytesWritten - hostBefore
		dev := phone.Device().BytesWritten() - before
		return float64(dev) / float64(host)
	}
	ext4, f2 := deviceWA(android.FSExt4), deviceWA(android.FSF2FS)
	if f2 < ext4*1.5 {
		t.Fatalf("F2FS device I/O per host byte (%.2f) not ~2x ext4 (%.2f)", f2, ext4)
	}
	if ext4 > 1.6 {
		t.Fatalf("ext4 overhead %.2f too high (lazytime should keep it near 1)", ext4)
	}
}

// workloadSetup builds the attack's file set without running the full loop.
func workloadSetup(t *testing.T, a *Attack, phone *android.Phone) *workload.FileSet {
	t.Helper()
	set := workload.NewFileSet(a.App.Storage(), "/wear", a.FileSize, 7)
	set.NumFiles = a.NumFiles
	set.ReqBytes = a.ReqBytes
	set.SyncEvery = a.SyncEvery
	if err := set.Setup(); err != nil {
		t.Fatal(err)
	}
	return set
}

func TestAttackModeString(t *testing.T) {
	if Continuous.String() != "continuous" || Stealth.String() != "stealth" {
		t.Fatal("mode strings")
	}
}

func TestIncrementString(t *testing.T) {
	inc := Increment{Pool: ftl.PoolB, FromLevel: 1, ToLevel: 2, HostGiB: 992, Hours: 14.1, Pattern: "4 KiB rand", SpaceUtil: 0}
	s := inc.String()
	if s == "" {
		t.Fatal("empty string")
	}
}
