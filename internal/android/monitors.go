package android

import (
	"sort"
	"time"
)

// IOStats is the per-app I/O accounting §4.5 proposes exposing "much like
// the cellular data usage".
type IOStats struct {
	BytesWritten int64
	BytesRead    int64
	WriteOps     int64
	ReadOps      int64
	SyncOps      int64
}

// PowerMonitor models Android's battery accounting: it attributes energy to
// apps for their I/O, but — as §4.4 observes — only while the phone is on
// battery. Running I/O while charging is therefore invisible to it.
type PowerMonitor struct {
	// JoulesPerGiB is the marginal energy the monitor attributes per GiB
	// of app I/O while discharging.
	JoulesPerGiB float64
	onBattery    map[string]float64 // app -> joules attributed
}

// NewPowerMonitor returns a monitor with a typical eMMC energy cost.
func NewPowerMonitor() *PowerMonitor {
	return &PowerMonitor{JoulesPerGiB: 40, onBattery: make(map[string]float64)}
}

// RecordIO attributes I/O to an app; charging I/O is not recorded.
func (m *PowerMonitor) RecordIO(app string, bytes int64, charging bool) {
	if charging {
		return
	}
	m.onBattery[app] += m.JoulesPerGiB * float64(bytes) / float64(1<<30)
}

// AttributedJoules returns the energy the monitor shows for an app.
func (m *PowerMonitor) AttributedJoules(app string) float64 { return m.onBattery[app] }

// TopConsumers returns apps exceeding the threshold, most expensive first —
// the battery-stats screen a user would check.
func (m *PowerMonitor) TopConsumers(thresholdJoules float64) []string {
	var out []string
	for app, j := range m.onBattery {
		if j >= thresholdJoules {
			out = append(out, app)
		}
	}
	sort.Slice(out, func(i, j int) bool { return m.onBattery[out[i]] > m.onBattery[out[j]] })
	return out
}

// ProcessMonitor models the running-apps view: it refreshes roughly every
// second, and only matters while the screen is on (nobody is looking
// otherwise). An app that suspends its I/O whenever the screen lights up
// evades it (§4.4).
type ProcessMonitor struct {
	// Window is the refresh interval (the paper observed ~1 second).
	Window time.Duration
	// lastIO tracks each app's most recent I/O timestamp.
	lastIO map[string]time.Duration
	// observed counts samples in which the app was visibly active.
	observed map[string]int64
	samples  int64
}

// NewProcessMonitor returns a monitor with the observed 1-second refresh.
func NewProcessMonitor() *ProcessMonitor {
	return &ProcessMonitor{
		Window:   time.Second,
		lastIO:   make(map[string]time.Duration),
		observed: make(map[string]int64),
	}
}

// NoteIO records that an app performed I/O at simulated time t.
func (m *ProcessMonitor) NoteIO(app string, t time.Duration) { m.lastIO[app] = t }

// Sample takes one refresh at simulated time t with the given screen state.
func (m *ProcessMonitor) Sample(t time.Duration, screenOn bool) {
	if !screenOn {
		return
	}
	m.samples++
	for app, last := range m.lastIO {
		if t-last <= m.Window {
			m.observed[app]++
		}
	}
}

// ObservedCount returns how many screen-on samples caught the app active.
func (m *ProcessMonitor) ObservedCount(app string) int64 { return m.observed[app] }

// Samples returns the number of screen-on refreshes taken.
func (m *ProcessMonitor) Samples() int64 { return m.samples }

// ObservedFraction returns the fraction of screen-on samples that caught
// the app.
func (m *ProcessMonitor) ObservedFraction(app string) float64 {
	if m.samples == 0 {
		return 0
	}
	return float64(m.observed[app]) / float64(m.samples)
}
