package android

import (
	"errors"
	"fmt"
	"time"

	"flashwear/internal/blockdev"
	"flashwear/internal/device"
	"flashwear/internal/fs"
	"flashwear/internal/fs/extfs"
	"flashwear/internal/fs/f2fs"
	"flashwear/internal/simclock"
	"flashwear/internal/wtrace"
)

// FSKind selects the phone's file system (§4.1: most phones use Ext4, the
// Moto E uses F2FS).
type FSKind string

const (
	FSExt4 FSKind = "ext4"
	FSF2FS FSKind = "f2fs"
)

// Config assembles a phone.
type Config struct {
	Profile  device.Profile
	FS       FSKind
	Charging Schedule
	Screen   Schedule
	// DataAccounting passes through to the FS mount so device-scale runs
	// stay in bounded memory. Defaults to true.
	RetainData bool
	// Throttle, when non-nil, rate-limits app writes (a §4.5 mitigation
	// installed at the OS layer). It is consulted with the app name and
	// byte count before each write reaches the FS.
	Throttle func(app string, bytes int64, now time.Duration) time.Duration
	// WearTrace, when non-nil, attaches causal wear attribution: every
	// installed app becomes a wtrace origin, and each sandbox operation
	// runs under that app's tag so the wear it causes — all the way down
	// to NAND erases — lands in the app's ledger row. mkfs/mount and FS
	// background work stay on origin 0 ("os").
	WearTrace *wtrace.Tracer
}

// Phone is a simulated handset: a flash device, a file system, apps with
// private storage, and the OS monitors.
type Phone struct {
	cfg   Config
	clock *simclock.Clock
	dev   *device.Device
	fsys  fs.FileSystem

	apps     map[string]*App
	stats    map[string]*IOStats
	powerMon *PowerMonitor
	procMon  *ProcessMonitor
	stopMon  func()
}

// NewPhone boots a phone: builds the device, formats and mounts the FS,
// and starts the monitors.
func NewPhone(cfg Config, clock *simclock.Clock) (*Phone, error) {
	if clock == nil {
		clock = simclock.New()
	}
	if cfg.Charging.Periods == nil {
		cfg.Charging = DefaultCharging()
	}
	if cfg.Screen.Periods == nil {
		cfg.Screen = DefaultScreen()
	}
	if err := cfg.Charging.Validate(); err != nil {
		return nil, err
	}
	if err := cfg.Screen.Validate(); err != nil {
		return nil, err
	}
	dev, err := device.New(cfg.Profile, clock)
	if err != nil {
		return nil, err
	}
	if cfg.WearTrace != nil {
		// Before mkfs, so attribution state is born with the flash state;
		// the format itself runs untagged (origin 0, "os").
		dev.EnableWearTrace(cfg.WearTrace)
	}
	opts := fs.Options{DataAccounting: !cfg.RetainData}
	var fsys fs.FileSystem
	switch cfg.FS {
	case FSF2FS:
		if err := f2fs.Mkfs(dev); err != nil {
			return nil, fmt.Errorf("android: mkfs.f2fs: %w", err)
		}
		if fsys, err = f2fs.Mount(dev, opts); err != nil {
			return nil, fmt.Errorf("android: mount f2fs: %w", err)
		}
	case FSExt4, "":
		if err := extfs.Mkfs(dev); err != nil {
			return nil, fmt.Errorf("android: mkfs.ext4: %w", err)
		}
		if fsys, err = extfs.Mount(dev, opts); err != nil {
			return nil, fmt.Errorf("android: mount ext4: %w", err)
		}
	default:
		return nil, fmt.Errorf("android: unknown FS kind %q", cfg.FS)
	}
	p := &Phone{
		cfg:      cfg,
		clock:    clock,
		dev:      dev,
		fsys:     fsys,
		apps:     make(map[string]*App),
		stats:    make(map[string]*IOStats),
		powerMon: NewPowerMonitor(),
		procMon:  NewProcessMonitor(),
	}
	if err := fsys.Mkdir("/data"); err != nil && !errors.Is(err, fs.ErrExist) {
		return nil, err
	}
	p.stopMon = clock.Every(p.procMon.Window, func() {
		p.procMon.Sample(clock.Now(), p.ScreenOn())
	})
	return p, nil
}

// Clock returns the phone's simulated clock.
func (p *Phone) Clock() *simclock.Clock { return p.clock }

// Device returns the phone's storage device.
func (p *Phone) Device() *device.Device { return p.dev }

// FS returns the phone's (root) file system.
func (p *Phone) FS() fs.FileSystem { return p.fsys }

// Charging reports the charger state now — observable by any app, which is
// what makes the power-monitor evasion possible.
func (p *Phone) Charging() bool { return p.cfg.Charging.Active(p.clock.Now()) }

// ScreenOn reports the screen state now — also observable by any app.
func (p *Phone) ScreenOn() bool { return p.cfg.Screen.Active(p.clock.Now()) }

// ChargingAt reports the charger state at an arbitrary simulated time.
func (p *Phone) ChargingAt(t time.Duration) bool { return p.cfg.Charging.Active(t) }

// ScreenOnAt reports the screen state at an arbitrary simulated time.
func (p *Phone) ScreenOnAt(t time.Duration) bool { return p.cfg.Screen.Active(t) }

// Bricked reports whether the phone's storage has failed — hard-bricked or
// retired read-only; the paper equates either with the phone being
// destroyed ("storage in mobile devices is not user-serviceable").
func (p *Phone) Bricked() bool { return p.dev.Failed() }

// PowerMonitor exposes the battery-stats view.
func (p *Phone) PowerMonitor() *PowerMonitor { return p.powerMon }

// ProcessMonitor exposes the running-apps view.
func (p *Phone) ProcessMonitor() *ProcessMonitor { return p.procMon }

// InstallApp provisions an app with a private directory under /data. No
// permission prompts are involved — exactly like the paper's 963-LoC app.
func (p *Phone) InstallApp(name string) (*App, error) {
	if err := fs.CheckName(name); err != nil {
		return nil, err
	}
	if _, ok := p.apps[name]; ok {
		return nil, fmt.Errorf("android: app %q already installed", name)
	}
	var org wtrace.Origin
	if tr := p.cfg.WearTrace; tr != nil {
		org = tr.Origin(name)
		prev := tr.SetOrigin(org)
		defer tr.SetOrigin(prev)
	}
	root := "/data/" + name
	if err := p.fsys.Mkdir(root); err != nil {
		return nil, err
	}
	app := &App{name: name, phone: p, storage: &sandboxFS{phone: p, app: name, root: root, org: org}}
	p.apps[name] = app
	p.stats[name] = &IOStats{}
	return app, nil
}

// AppIOStats returns the OS's per-app I/O accounting (§4.5).
func (p *Phone) AppIOStats(name string) IOStats {
	if s, ok := p.stats[name]; ok {
		return *s
	}
	return IOStats{}
}

// Shutdown unmounts cleanly and stops the monitors.
func (p *Phone) Shutdown() error {
	if p.stopMon != nil {
		p.stopMon()
		p.stopMon = nil
	}
	return p.fsys.Unmount()
}

// orgEnter/orgExit bracket a sandbox operation with the app's wear-trace
// origin (no-ops when tracing is off). Everything the operation causes
// below the FS inherits the tag ambiently.

func (p *Phone) orgEnter(org wtrace.Origin) wtrace.Origin {
	if p.cfg.WearTrace == nil {
		return 0
	}
	return p.cfg.WearTrace.SetOrigin(org)
}

func (p *Phone) orgExit(prev wtrace.Origin) {
	if p.cfg.WearTrace != nil {
		p.cfg.WearTrace.SetOrigin(prev)
	}
}

// accounting hooks called by the sandbox.

func (p *Phone) accountWrite(app string, n int64) {
	s := p.stats[app]
	s.BytesWritten += n
	s.WriteOps++
	now := p.clock.Now()
	p.powerMon.RecordIO(app, n, p.Charging())
	p.procMon.NoteIO(app, now)
	if p.cfg.Throttle != nil {
		if delay := p.cfg.Throttle(app, n, now); delay > 0 {
			p.clock.Advance(delay)
		}
	}
}

func (p *Phone) accountRead(app string, n int64) {
	s := p.stats[app]
	s.BytesRead += n
	s.ReadOps++
	p.powerMon.RecordIO(app, n, p.Charging())
	p.procMon.NoteIO(app, p.clock.Now())
}

func (p *Phone) accountSync(app string) {
	if s, ok := p.stats[app]; ok {
		s.SyncOps++
	}
}

// App is an installed application with access to its private storage only.
type App struct {
	name    string
	phone   *Phone
	storage fs.FileSystem
}

// Name returns the app's package name.
func (a *App) Name() string { return a.name }

// Storage returns the app's private file-system view.
func (a *App) Storage() fs.FileSystem { return a.storage }

// Phone gives the app the device observations any app legitimately has:
// charger state and screen state.
func (a *App) Charging() bool { return a.phone.Charging() }

// ScreenOn reports the screen state.
func (a *App) ScreenOn() bool { return a.phone.ScreenOn() }

// Now returns the app-visible current time.
func (a *App) Now() time.Duration { return a.phone.clock.Now() }

// Compile-time checks.
var _ blockdev.Device = (*device.Device)(nil)
