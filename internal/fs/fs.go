// Package fs defines the file-system abstraction the Android environment
// and the wear experiments run on, implemented by the ext4-like journaling
// file system (package extfs) and the F2FS-like log-structured file system
// (package f2fs). The interface is deliberately small: the paper's workloads
// only create, rewrite, sync, and delete files.
package fs

import "errors"

// Common file-system errors.
var (
	ErrNotExist  = errors.New("fs: file does not exist")
	ErrExist     = errors.New("fs: file already exists")
	ErrIsDir     = errors.New("fs: is a directory")
	ErrNotDir    = errors.New("fs: not a directory")
	ErrNotEmpty  = errors.New("fs: directory not empty")
	ErrNoSpace   = errors.New("fs: no space left on device")
	ErrReadOnly  = errors.New("fs: read-only file system")
	ErrBadName   = errors.New("fs: invalid file name")
	ErrTooLarge  = errors.New("fs: file too large")
	ErrUnmounted = errors.New("fs: file system unmounted")
)

// FileSystem is a mounted file system.
type FileSystem interface {
	// Create creates (or truncates) a regular file.
	Create(path string) (File, error)
	// Open opens an existing regular file.
	Open(path string) (File, error)
	// Remove deletes a file or empty directory.
	Remove(path string) error
	// Rename moves a file to a new path, atomically replacing an existing
	// regular file at the target — the crash-safe update idiom.
	Rename(oldPath, newPath string) error
	// Mkdir creates a directory.
	Mkdir(path string) error
	// ReadDir lists a directory.
	ReadDir(path string) ([]DirEntry, error)
	// Stat describes a file.
	Stat(path string) (FileInfo, error)
	// Sync flushes all dirty state and issues a device barrier.
	Sync() error
	// Unmount syncs and detaches; further operations fail.
	Unmount() error
	// Name identifies the FS type ("extfs", "f2fs").
	Name() string
}

// File is an open regular file.
type File interface {
	// ReadAt reads len(p) bytes at off. Reads beyond EOF are truncated;
	// n < len(p) with a nil error signals EOF, like io.ReaderAt allows
	// for deterministic files.
	ReadAt(p []byte, off int64) (n int, err error)
	// WriteAt writes len(p) bytes at off, extending the file if needed.
	WriteAt(p []byte, off int64) (n int, err error)
	// Truncate changes the file size.
	Truncate(size int64) error
	// Sync persists the file's data and metadata (fsync).
	Sync() error
	// Size returns the current size.
	Size() int64
	// Close releases the handle.
	Close() error
}

// FileInfo describes a file.
type FileInfo struct {
	Name  string
	Size  int64
	IsDir bool
}

// DirEntry is one directory listing entry.
type DirEntry struct {
	Name  string
	IsDir bool
}

// Options are mount options shared by the implementations.
type Options struct {
	// DataAccounting discards file *content* payloads: data blocks are
	// written to the device as accounting-only I/O (wear and timing,
	// no bytes retained) and read back as zeroes. Metadata is always
	// real. The device-scale wear experiments mount with this on so
	// simulating terabytes of writes does not hold terabytes of RAM.
	DataAccounting bool
	// SyncEveryWrite makes every WriteAt behave as if followed by fsync
	// (O_SYNC), the "synchronous writes" mode §4.4 discusses.
	SyncEveryWrite bool
}
