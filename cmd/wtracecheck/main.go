// Command wtracecheck validates wear-attribution artifacts: a ledger CSV
// (flashsim -wear-ledger, fleetsim -wear-trace, or a weartest labeled
// ledger) and/or a Chrome trace-event JSON (flashsim/weartest
// -wear-trace). It is the teeth of the `make wtrace` smoke target: the
// checks are exactly the ledger's advertised invariants —
//
//   - every row's phys_pages equals its four cause columns summed
//     (host_programs + gc_programs + wl_programs + cache_programs);
//   - the TOTAL row equals the column sums of the origin rows — the
//     write-amplification decomposition identity;
//   - the Chrome file is well-formed JSON of the trace-event format with
//     at least one event.
//
// Usage:
//
//	wtracecheck -ledger wear.csv [-trace trace.json]
//
// Exit codes: 0 when every check passes, 1 when any fails, 2 on usage.
package main

import (
	"encoding/csv"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
)

func main() {
	ledger := flag.String("ledger", "", "wear ledger CSV to validate")
	trace := flag.String("trace", "", "Chrome trace-event JSON to validate")
	flag.Parse()
	if *ledger == "" && *trace == "" {
		flag.Usage()
		os.Exit(2)
	}
	ok := true
	if *ledger != "" {
		if err := checkLedger(*ledger); err != nil {
			fmt.Fprintf(os.Stderr, "wtracecheck: %s: %v\n", *ledger, err)
			ok = false
		} else {
			fmt.Printf("wtracecheck: %s: ledger identities hold\n", *ledger)
		}
	}
	if *trace != "" {
		n, err := checkTrace(*trace)
		if err != nil {
			fmt.Fprintf(os.Stderr, "wtracecheck: %s: %v\n", *trace, err)
			ok = false
		} else {
			fmt.Printf("wtracecheck: %s: well-formed trace, %d events\n", *trace, n)
		}
	}
	if !ok {
		os.Exit(1)
	}
}

// ledger column indices relative to the "origin" column. A weartest
// labeled ledger has a leading "label" column; the offset is detected from
// the header.
var intCols = []string{"host_pages", "host_bytes", "host_programs", "gc_programs",
	"wl_programs", "cache_programs", "phys_pages", "phys_bytes", "erases", "erase_pages"}

// checkLedger parses the CSV and verifies the decomposition identities.
// Labeled (multi-run) ledgers are checked per label: each run's TOTAL row
// must equal its own origin rows' sums.
func checkLedger(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := csv.NewReader(f)
	header, err := r.Read()
	if err != nil {
		return fmt.Errorf("header: %w", err)
	}
	off := 0
	if len(header) > 0 && header[0] == "label" {
		off = 1
	}
	if len(header) < off+1+len(intCols) || header[off] != "origin" {
		return fmt.Errorf("unexpected header %q", header)
	}
	for i, name := range intCols {
		if header[off+1+i] != name {
			return fmt.Errorf("column %d: got %q, want %q", off+1+i, header[off+1+i], name)
		}
	}

	sums := map[string][]int64{}   // per-label running column sums
	totals := map[string][]int64{} // per-label TOTAL row
	rows := 0
	for line := 2; ; line++ {
		rec, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			return fmt.Errorf("line %d: %w", line, err)
		}
		label := ""
		if off == 1 {
			label = rec[0]
		}
		vals := make([]int64, len(intCols))
		for i := range intCols {
			v, err := strconv.ParseInt(rec[off+1+i], 10, 64)
			if err != nil {
				return fmt.Errorf("line %d, %s: %w", line, intCols[i], err)
			}
			vals[i] = v
		}
		// phys_pages (index 6) must equal the four program causes summed.
		if causes := vals[2] + vals[3] + vals[4] + vals[5]; vals[6] != causes {
			return fmt.Errorf("line %d (%s): phys_pages %d != cause sum %d",
				line, rec[off], vals[6], causes)
		}
		if rec[off] == "TOTAL" {
			if _, dup := totals[label]; dup {
				return fmt.Errorf("line %d: duplicate TOTAL for label %q", line, label)
			}
			totals[label] = vals
			continue
		}
		rows++
		s, okLbl := sums[label]
		if !okLbl {
			s = make([]int64, len(intCols))
			sums[label] = s
		}
		for i, v := range vals {
			s[i] += v
		}
	}
	if rows == 0 {
		return fmt.Errorf("no origin rows")
	}
	for label, s := range sums {
		tot, okLbl := totals[label]
		if !okLbl {
			return fmt.Errorf("label %q: no TOTAL row", label)
		}
		for i, v := range s {
			if tot[i] != v {
				return fmt.Errorf("label %q: TOTAL %s = %d, but origin rows sum to %d — decomposition identity broken",
					label, intCols[i], tot[i], v)
			}
		}
	}
	return nil
}

// checkTrace verifies the file is a JSON trace-event object with a
// non-empty traceEvents array whose entries carry the required keys.
func checkTrace(path string) (events int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, err
	}
	var doc struct {
		DisplayTimeUnit string `json:"displayTimeUnit"`
		TraceEvents     []struct {
			Name string          `json:"name"`
			Ph   string          `json:"ph"`
			Pid  *int            `json:"pid"`
			Tid  *int            `json:"tid"`
			Ts   *float64        `json:"ts"`
			Args json.RawMessage `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return 0, fmt.Errorf("not valid JSON: %w", err)
	}
	if len(doc.TraceEvents) == 0 {
		return 0, fmt.Errorf("empty traceEvents")
	}
	for i, ev := range doc.TraceEvents {
		if ev.Name == "" || ev.Ph == "" || ev.Pid == nil || ev.Tid == nil {
			return 0, fmt.Errorf("event %d: missing name/ph/pid/tid", i)
		}
		// Metadata events have no timestamp; every other phase needs one.
		if ev.Ph != "M" && ev.Ts == nil {
			return 0, fmt.Errorf("event %d (%s, ph=%s): missing ts", i, ev.Name, ev.Ph)
		}
	}
	return len(doc.TraceEvents), nil
}
