package f2fs

import (
	"encoding/binary"
	"fmt"
	"strings"

	"flashwear/internal/blockdev"
	"flashwear/internal/fs"
)

// checkpointInterval is how many fsyncs may pass between automatic
// checkpoints.
const checkpointInterval = 1024

// FS is a mounted f2fs volume. It is not safe for concurrent use.
type FS struct {
	dev  blockdev.Device
	opts fs.Options
	sb   *superblock

	nat       []uint32
	natDirty  map[uint32]bool
	nodes     map[uint32]*node
	nodeRotor uint32
	ver       uint64

	dataLog logState
	nodeLog logState

	segState   []uint8
	validCount []uint16
	validMap   []uint64
	owner      []uint32
	ofs        []uint32
	freeSegs   int

	cpIndex       int // checkpoint slot to write next (0 or 1)
	cleaning      bool
	checkpointing bool
	unmounted     bool
	nowCounter    int64
	fsyncsSinceCP int

	statNodeWrites    int64
	statDataWrites    int64
	statCheckpoints   int64
	statCleanedSegs   int64
	statRolledForward int64
}

// Stats reports FS-internal activity.
type Stats struct {
	NodeWrites      int64
	DataWrites      int64 // file-content block writes through the data log
	Checkpoints     int64
	CleanedSegments int64
	RolledForward   int64
	FreeSegments    int
}

// Mkfs formats the device with a fresh, empty f2fs volume.
func Mkfs(dev blockdev.Device) error {
	sb, err := computeLayout(dev.Size())
	if err != nil {
		return err
	}
	sb.state = stateClean
	zero := make([]byte, BlockSize)
	for blk := sb.cpStart; blk < sb.natStart+sb.natBlks; blk++ {
		if err := writeBlock(dev, blk, zero); err != nil {
			return err
		}
	}
	// Root inode at the first main-area block, version 1.
	root := newInode(RootNode, modeDir)
	rootAddr := sb.mainStart
	if err := writeBlock(dev, rootAddr, root.encode(1, false)); err != nil {
		return err
	}
	// NAT entry for the root.
	natBlk := make([]byte, BlockSize)
	binary.LittleEndian.PutUint32(natBlk[RootNode*4:], rootAddr)
	if err := writeBlock(dev, sb.natStart, natBlk); err != nil {
		return err
	}
	// Checkpoint: logs positioned after the root node.
	cp := checkpoint{ver: 1, dataSeg: 1, dataOff: 0, nodeSeg: 0, nodeOff: 1}
	if err := writeBlock(dev, sb.cpStart, cp.encode()); err != nil {
		return err
	}
	if err := writeBlock(dev, 0, sb.encode()); err != nil {
		return err
	}
	return dev.Flush()
}

// Mount opens an f2fs volume, performing roll-forward recovery after an
// unclean shutdown.
func Mount(dev blockdev.Device, opts fs.Options) (*FS, error) {
	b, err := readBlock(dev, 0)
	if err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(b)
	if err != nil {
		return nil, err
	}
	v := &FS{
		dev: dev, opts: opts, sb: sb,
		natDirty:  make(map[uint32]bool),
		nodes:     make(map[uint32]*node),
		nodeRotor: 1,
		dataLog:   logState{seg: ^uint32(0)},
		nodeLog:   logState{seg: ^uint32(0)},
	}
	// Pick the newest valid checkpoint.
	var cp checkpoint
	found := false
	for i := 0; i < 2; i++ {
		cb, err := readBlock(dev, sb.cpStart+uint32(i))
		if err != nil {
			return nil, err
		}
		if c, ok := decodeCheckpoint(cb); ok && (!found || c.ver > cp.ver) {
			cp = c
			found = true
			v.cpIndex = 1 - i // write the other slot next
		}
	}
	if !found {
		return nil, fmt.Errorf("%w: no valid checkpoint", ErrCorrupt)
	}
	v.ver = cp.ver
	// Load the NAT.
	v.nat = make([]uint32, int(sb.natBlks)*natEntriesPerBlock)
	for i := uint32(0); i < sb.natBlks; i++ {
		nb, err := readBlock(dev, sb.natStart+i)
		if err != nil {
			return nil, err
		}
		base := int(i) * natEntriesPerBlock
		for e := 0; e < natEntriesPerBlock; e++ {
			v.nat[base+e] = binary.LittleEndian.Uint32(nb[e*4:])
		}
	}
	if sb.state != stateClean {
		if err := v.rollForward(cp.ver); err != nil {
			return nil, fmt.Errorf("f2fs: roll-forward: %w", err)
		}
	}
	if err := v.rebuild(); err != nil {
		return nil, fmt.Errorf("f2fs: rebuild: %w", err)
	}
	if sb.state != stateClean {
		// Recovery must end with a checkpoint (as real F2FS does): it
		// persists the rolled-forward NAT and bumps the version past
		// everything on disk, so node versions from different crash
		// generations can never shadow one another.
		if err := v.checkpointLocked(); err != nil {
			return nil, fmt.Errorf("f2fs: post-recovery checkpoint: %w", err)
		}
	}
	// Mark mounted (dirty) so a crash triggers recovery next time.
	sb.state = stateMounted
	if err := writeBlock(dev, 0, sb.encode()); err != nil {
		return nil, err
	}
	if err := dev.Flush(); err != nil {
		return nil, err
	}
	return v, nil
}

// Name implements fs.FileSystem.
func (v *FS) Name() string { return "f2fs" }

// Stats returns internal counters.
func (v *FS) Stats() Stats {
	return Stats{
		NodeWrites:      v.statNodeWrites,
		DataWrites:      v.statDataWrites,
		Checkpoints:     v.statCheckpoints,
		CleanedSegments: v.statCleanedSegs,
		RolledForward:   v.statRolledForward,
		FreeSegments:    v.freeSegs,
	}
}

func (v *FS) nowNanos() int64 {
	v.nowCounter++
	return v.nowCounter
}

func (v *FS) alive() error {
	if v.unmounted {
		return fs.ErrUnmounted
	}
	return nil
}

// checkpointLocked flushes dirty nodes and the NAT, writes a checkpoint
// block, and frees quarantined segments.
func (v *FS) checkpointLocked() error {
	if v.checkpointing {
		return nil
	}
	v.checkpointing = true
	defer func() { v.checkpointing = false }()

	if err := v.flushDirtyNodes(); err != nil {
		return err
	}
	for blkIdx := range v.natDirty {
		nb := make([]byte, BlockSize)
		base := int(blkIdx) * natEntriesPerBlock
		for e := 0; e < natEntriesPerBlock; e++ {
			binary.LittleEndian.PutUint32(nb[e*4:], v.nat[base+e])
		}
		if err := writeBlock(v.dev, v.sb.natStart+blkIdx, nb); err != nil {
			return err
		}
	}
	v.natDirty = make(map[uint32]bool)
	if err := v.dev.Flush(); err != nil {
		return err
	}
	v.ver++
	cp := checkpoint{
		ver:     v.ver,
		dataSeg: v.dataLog.seg, dataOff: v.dataLog.off,
		nodeSeg: v.nodeLog.seg, nodeOff: v.nodeLog.off,
	}
	if err := writeBlock(v.dev, v.sb.cpStart+uint32(v.cpIndex), cp.encode()); err != nil {
		return err
	}
	v.cpIndex = 1 - v.cpIndex
	if err := v.dev.Flush(); err != nil {
		return err
	}
	// Quarantined segments are now safe to reuse: nothing on disk
	// references their old content.
	for s := uint32(0); s < v.sb.segCount; s++ {
		if v.segState[s] == segQuarantine {
			v.segState[s] = segFree
			v.freeSegs++
			_ = v.dev.Discard(int64(v.segBase(s))*BlockSize, SegBlocks*BlockSize)
		}
	}
	v.fsyncsSinceCP = 0
	v.statCheckpoints++
	return nil
}

// --- directories (256-byte entries, stored as directory file content) ---

const (
	dirEntSize    = 256
	dirEntNameOff = 5
)

func (v *FS) dirFind(dir *node, name string) (off int64, id uint32, err error) {
	buf := make([]byte, dirEntSize)
	for o := int64(0); o+dirEntSize <= dir.size; o += dirEntSize {
		if _, err := v.readNodeData(dir, buf, o); err != nil {
			return -1, 0, err
		}
		target := binary.LittleEndian.Uint32(buf[0:])
		if target == 0 {
			continue
		}
		nl := int(buf[4])
		if nl > dirEntSize-dirEntNameOff {
			return -1, 0, fmt.Errorf("%w: dirent name length %d", ErrCorrupt, nl)
		}
		if string(buf[dirEntNameOff:dirEntNameOff+nl]) == name {
			return o, target, nil
		}
	}
	return -1, 0, nil
}

func (v *FS) dirSet(dir *node, off int64, id uint32, name string) error {
	e := make([]byte, dirEntSize)
	binary.LittleEndian.PutUint32(e[0:], id)
	e[4] = byte(len(name))
	copy(e[dirEntNameOff:], name)
	if _, err := v.writeNodeData(dir, e, off); err != nil {
		return err
	}
	return v.writeNode(dir, true)
}

func (v *FS) dirAdd(dir *node, id uint32, name string) error {
	slot := dir.size
	buf := make([]byte, dirEntSize)
	for o := int64(0); o+dirEntSize <= dir.size; o += dirEntSize {
		if _, err := v.readNodeData(dir, buf, o); err != nil {
			return err
		}
		if binary.LittleEndian.Uint32(buf[0:]) == 0 {
			slot = o
			break
		}
	}
	return v.dirSet(dir, slot, id, name)
}

func (v *FS) dirEmpty(dir *node) (bool, error) {
	buf := make([]byte, dirEntSize)
	for o := int64(0); o+dirEntSize <= dir.size; o += dirEntSize {
		if _, err := v.readNodeData(dir, buf, o); err != nil {
			return false, err
		}
		if binary.LittleEndian.Uint32(buf[0:]) != 0 {
			return false, nil
		}
	}
	return true, nil
}

// resolve walks a path to its inode.
func (v *FS) resolve(path string) (*node, error) {
	parts, err := fs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	n, err := v.loadNode(RootNode)
	if err != nil {
		return nil, err
	}
	for _, name := range parts {
		if n.mode != modeDir {
			return nil, fs.ErrNotDir
		}
		_, id, err := v.dirFind(n, name)
		if err != nil {
			return nil, err
		}
		if id == 0 {
			return nil, fs.ErrNotExist
		}
		if n, err = v.loadNode(id); err != nil {
			return nil, err
		}
	}
	return n, nil
}

func (v *FS) resolveParent(path string) (*node, string, error) {
	dir, base, err := fs.DirBase(path)
	if err != nil {
		return nil, "", err
	}
	parent, err := v.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if parent.mode != modeDir {
		return nil, "", fs.ErrNotDir
	}
	return parent, base, nil
}

// --- fs.FileSystem ---

// Create implements fs.FileSystem.
func (v *FS) Create(path string) (fs.File, error) {
	if err := v.alive(); err != nil {
		return nil, err
	}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if _, existing, err := v.dirFind(parent, name); err != nil {
		return nil, err
	} else if existing != 0 {
		n, err := v.loadNode(existing)
		if err != nil {
			return nil, err
		}
		if n.mode == modeDir {
			return nil, fs.ErrIsDir
		}
		f := &file{fs: v, n: n}
		if err := f.Truncate(0); err != nil {
			return nil, err
		}
		return f, nil
	}
	id, err := v.allocNodeID()
	if err != nil {
		return nil, err
	}
	n := newInode(id, modeFile)
	n.mtime = v.nowNanos()
	v.nodes[id] = n
	if err := v.writeNode(n, true); err != nil {
		return nil, err
	}
	if err := v.dirAdd(parent, id, name); err != nil {
		return nil, err
	}
	if err := v.dev.Flush(); err != nil {
		return nil, err
	}
	return &file{fs: v, n: n}, nil
}

// Open implements fs.FileSystem.
func (v *FS) Open(path string) (fs.File, error) {
	if err := v.alive(); err != nil {
		return nil, err
	}
	n, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	if n.mode == modeDir {
		return nil, fs.ErrIsDir
	}
	return &file{fs: v, n: n}, nil
}

// Mkdir implements fs.FileSystem.
func (v *FS) Mkdir(path string) error {
	if err := v.alive(); err != nil {
		return err
	}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	if _, existing, err := v.dirFind(parent, name); err != nil {
		return err
	} else if existing != 0 {
		return fs.ErrExist
	}
	id, err := v.allocNodeID()
	if err != nil {
		return err
	}
	n := newInode(id, modeDir)
	n.mtime = v.nowNanos()
	v.nodes[id] = n
	if err := v.writeNode(n, true); err != nil {
		return err
	}
	if err := v.dirAdd(parent, id, name); err != nil {
		return err
	}
	return v.dev.Flush()
}

// Remove implements fs.FileSystem.
func (v *FS) Remove(path string) error {
	if err := v.alive(); err != nil {
		return err
	}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	off, id, err := v.dirFind(parent, name)
	if err != nil {
		return err
	}
	if id == 0 {
		return fs.ErrNotExist
	}
	n, err := v.loadNode(id)
	if err != nil {
		return err
	}
	if n.mode == modeDir {
		empty, err := v.dirEmpty(n)
		if err != nil {
			return err
		}
		if !empty {
			return fs.ErrNotEmpty
		}
	}
	if err := v.truncateNode(n, 0); err != nil {
		return err
	}
	// Write a dead-node marker so roll-forward does not resurrect the
	// file, then drop the mapping entirely.
	n.flags |= nodeDead
	if err := v.writeNode(n, true); err != nil {
		return err
	}
	if addr := v.natLookup(id); addr != 0 {
		v.invalidateBlock(addr)
	}
	v.natSet(id, 0)
	delete(v.nodes, id)
	if err := v.dirSet(parent, off, 0, ""); err != nil {
		return err
	}
	return v.dev.Flush()
}

// Rename implements fs.FileSystem: both directory updates are fsync-marked
// so the move survives a crash via roll-forward, replacing a regular file
// at the target if present.
func (v *FS) Rename(oldPath, newPath string) error {
	if err := v.alive(); err != nil {
		return err
	}
	oldParent, oldName, err := v.resolveParent(oldPath)
	if err != nil {
		return err
	}
	oldOff, id, err := v.dirFind(oldParent, oldName)
	if err != nil {
		return err
	}
	if id == 0 {
		return fs.ErrNotExist
	}
	moving, err := v.loadNode(id)
	if err != nil {
		return err
	}
	newParent, newName, err := v.resolveParent(newPath)
	if err != nil {
		return err
	}
	newOff, existing, err := v.dirFind(newParent, newName)
	if err != nil {
		return err
	}
	if existing == id {
		return nil
	}
	if existing != 0 {
		target, err := v.loadNode(existing)
		if err != nil {
			return err
		}
		if target.mode == modeDir {
			return fs.ErrIsDir
		}
		if moving.mode == modeDir {
			return fs.ErrNotDir
		}
		if err := v.truncateNode(target, 0); err != nil {
			return err
		}
		target.flags |= nodeDead
		if err := v.writeNode(target, true); err != nil {
			return err
		}
		if addr := v.natLookup(existing); addr != 0 {
			v.invalidateBlock(addr)
		}
		v.natSet(existing, 0)
		delete(v.nodes, existing)
		if err := v.dirSet(newParent, newOff, id, newName); err != nil {
			return err
		}
	} else {
		if err := v.dirAdd(newParent, id, newName); err != nil {
			return err
		}
		if newParent == oldParent {
			if oldOff, id, err = v.dirFind(oldParent, oldName); err != nil || id == 0 {
				return fmt.Errorf("%w: rename lost source entry", ErrCorrupt)
			}
		}
	}
	if err := v.dirSet(oldParent, oldOff, 0, ""); err != nil {
		return err
	}
	return v.dev.Flush()
}

// ReadDir implements fs.FileSystem.
func (v *FS) ReadDir(path string) ([]fs.DirEntry, error) {
	if err := v.alive(); err != nil {
		return nil, err
	}
	n, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	if n.mode != modeDir {
		return nil, fs.ErrNotDir
	}
	var out []fs.DirEntry
	buf := make([]byte, dirEntSize)
	for o := int64(0); o+dirEntSize <= n.size; o += dirEntSize {
		if _, err := v.readNodeData(n, buf, o); err != nil {
			return nil, err
		}
		id := binary.LittleEndian.Uint32(buf[0:])
		if id == 0 {
			continue
		}
		child, err := v.loadNode(id)
		if err != nil {
			return nil, err
		}
		nl := int(buf[4])
		out = append(out, fs.DirEntry{
			Name:  string(buf[dirEntNameOff : dirEntNameOff+nl]),
			IsDir: child.mode == modeDir,
		})
	}
	return out, nil
}

// Stat implements fs.FileSystem.
func (v *FS) Stat(path string) (fs.FileInfo, error) {
	if err := v.alive(); err != nil {
		return fs.FileInfo{}, err
	}
	n, err := v.resolve(path)
	if err != nil {
		return fs.FileInfo{}, err
	}
	name := path
	if i := strings.LastIndexByte(strings.TrimRight(path, "/"), '/'); i >= 0 {
		name = strings.TrimRight(path, "/")[i+1:]
	}
	return fs.FileInfo{Name: name, Size: n.size, IsDir: n.mode == modeDir}, nil
}

// Sync implements fs.FileSystem: full checkpoint.
func (v *FS) Sync() error {
	if err := v.alive(); err != nil {
		return err
	}
	return v.checkpointLocked()
}

// Unmount implements fs.FileSystem.
func (v *FS) Unmount() error {
	if v.unmounted {
		return fs.ErrUnmounted
	}
	if err := v.checkpointLocked(); err != nil {
		return err
	}
	v.sb.state = stateClean
	if err := writeBlock(v.dev, 0, v.sb.encode()); err != nil {
		return err
	}
	if err := v.dev.Flush(); err != nil {
		return err
	}
	v.unmounted = true
	return nil
}

// SimulateCrash drops all in-memory state without checkpointing, leaving
// the device exactly as a power cut would.
func (v *FS) SimulateCrash() {
	v.unmounted = true
	v.nodes = nil
	v.nat = nil
	v.validMap = nil
	v.owner = nil
	v.ofs = nil
}

var _ fs.FileSystem = (*FS)(nil)
