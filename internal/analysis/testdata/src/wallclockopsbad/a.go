// Package a proves a malformed //flashvet:ops-domain declaration grants
// nothing: the declaration itself is a finding, and the package stays in
// the sim domain, so its clock reads are findings too.
package a

import "time"

//flashvet:ops-domain// want `flashvet:ops-domain declaration has no reason`

func sim() time.Time {
	return time.Now() // want `wall-clock time\.Now`
}
