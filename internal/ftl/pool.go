package ftl

import (
	"errors"
	"fmt"

	"flashwear/internal/nand"
	"flashwear/internal/wtrace"
)

// Errors surfaced by pool management.
var (
	// ErrNoSpace means the pool has no free block and nothing reclaimable:
	// the device can no longer accept the write. For an internal chip this
	// is the point the paper calls "bricked".
	ErrNoSpace = errors.New("ftl: out of usable flash space")
)

type blockState uint8

const (
	sFree blockState = iota
	sOpen
	sFull
	sBad
)

// gcPool manages one chip's blocks with out-of-place writes, garbage
// collection, and wear-leveling — the main ("Type B") pool.
type gcPool struct {
	id   PoolID
	chip *nand.Chip
	ppb  int

	state []blockState
	valid []int32 // valid pages per block
	fill  []int32 // pages programmed per block since erase (dead = fill-valid)
	seqNo []int64 // fill sequence, for cost-benefit aging
	rmap  []int32 // physical page index -> logical page, -1 if dead/free

	free []int
	// Three write streams with separate open blocks, as real controllers
	// keep: host writes, GC-relocated (still-hot churn survivors), and
	// wear-leveling moves (cold data). Keeping them apart stops cold data
	// from being interleaved with dying hot pages — the mixing would both
	// inflate GC work and make clean cold blocks look fragmented.
	openBlk  [3]int
	openPage [3]int
	seq      int64

	policy        GCPolicy
	wl            WearLeveling
	lowWater      int
	highWater     int
	reserve       int // free blocks GC relocation may dip into
	erasesSinceWL int
	collecting    bool // re-entrancy guard: GC must not recurse into GC
	relocating    int  // block currently being relocated, -1 if none

	// remap tells the owner a logical page moved (GC/WL relocation).
	remap func(lp int32, l loc)
	// onMigrate reports each GC page copy so the owner can account it.
	gcCopies int64
	// collects counts GC invocations (collect calls that did work).
	collects int64

	// gseq points at the FTL's global OOB sequence counter; stats at its
	// Stats block (both owned by the FTL, dummies when tested standalone).
	gseq  *int64
	stats *Stats
	// readRetries is how many re-reads follow an uncorrectable result.
	readRetries int
	// lostPower is set when an internal operation (GC read/erase) saw
	// power drop, for paths that cannot propagate an error.
	lostPower bool

	// tr/orgs are the wear-attribution hooks (internal/wtrace): orgs
	// mirrors rmap with the origin that last programmed each physical
	// page, so relocations and erases can be charged to the writer whose
	// data caused them. Both nil when tracing is off.
	tr   *wtrace.Tracer
	orgs []wtrace.Origin
}

func newGCPool(id PoolID, chip *nand.Chip, cfg *Config, remap func(int32, loc)) *gcPool {
	g := chip.Geometry()
	nb := g.Blocks()
	p := &gcPool{
		id:         id,
		chip:       chip,
		ppb:        g.PagesPerBlock,
		state:      make([]blockState, nb),
		valid:      make([]int32, nb),
		fill:       make([]int32, nb),
		seqNo:      make([]int64, nb),
		rmap:       make([]int32, nb*g.PagesPerBlock),
		free:       make([]int, 0, nb),
		openBlk:    [3]int{-1, -1, -1},
		policy:     cfg.GC,
		wl:         *cfg.Wear,
		lowWater:   cfg.GCLowWater,
		highWater:  cfg.GCHighWater,
		reserve:    2,
		relocating: -1,
		remap:      remap,
		gseq:       new(int64),
		stats:      new(Stats),
	}
	for i := range p.rmap {
		p.rmap[i] = -1
	}
	for b := 0; b < nb; b++ {
		p.free = append(p.free, b)
	}
	return p
}

func (p *gcPool) goodBlocks() int {
	n := 0
	for _, s := range p.state {
		if s != sBad {
			n++
		}
	}
	return n
}

func (p *gcPool) freeCount() int { return len(p.free) }

// validPages returns the number of live pages in the pool.
func (p *gcPool) validPages() int64 {
	var n int64
	for _, v := range p.valid {
		n += int64(v)
	}
	return n
}

// takeFree removes and returns the free block with the lowest erase count
// (dynamic wear-leveling) or simply the last one when dynamic WL is off.
func (p *gcPool) takeFree() int {
	if len(p.free) == 0 {
		return -1
	}
	pick := len(p.free) - 1
	if p.wl.Dynamic {
		for i, b := range p.free {
			if p.chip.EraseCount(b) < p.chip.EraseCount(p.free[pick]) {
				pick = i
			}
		}
	}
	b := p.free[pick]
	p.free[pick] = p.free[len(p.free)-1]
	p.free = p.free[:len(p.free)-1]
	return b
}

// Stream identifiers.
const (
	streamHost = iota // host writes (and cache drain)
	streamGC          // GC relocation: churn survivors, still hot
	streamWL          // wear-leveling moves: cold data
)

// stream returns a write stream's open-block cursor.
func (p *gcPool) stream(st int) (blk *int, page *int) {
	return &p.openBlk[st], &p.openPage[st]
}

// openFor ensures the chosen stream has an open block with a free page.
// reserveOK lets GC relocation dip into the reserve blocks.
func (p *gcPool) openFor(cost *Cost, reserveOK bool, st int) error {
	blk, page := p.stream(st)
	if *blk >= 0 && *page < p.ppb {
		return nil
	}
	p.closeStream(st)
	floor := p.reserve
	if reserveOK {
		floor = 0
	}
	if len(p.free) <= floor {
		err := p.collect(cost)
		// Collection relocates pages and may itself have opened (and
		// partially filled) this stream's block; keep using it rather
		// than leaking it.
		if *blk >= 0 && *page < p.ppb {
			return nil
		}
		p.closeStream(st)
		if err != nil && len(p.free) <= floor {
			return err
		}
	}
	if len(p.free) <= floor {
		// Perfectly compacted: if no block holds a single dead page there
		// is nothing GC could ever reclaim, so the reserve margin is plain
		// capacity, not relocation headroom. Let the host consume it down
		// to one block — all a future relocation pass needs, and any
		// overwrite it absorbs mints the garbage that restarts GC.
		if reserveOK || floor <= 1 || len(p.free) <= 1 || p.hasGarbage() {
			return ErrNoSpace
		}
	}
	b := p.takeFree()
	*blk = b
	*page = 0
	p.state[b] = sOpen
	return nil
}

// closeStream marks a stream's open block full (if any).
func (p *gcPool) closeStream(st int) {
	blk, _ := p.stream(st)
	if *blk < 0 {
		return
	}
	p.state[*blk] = sFull
	p.seq++
	p.seqNo[*blk] = p.seq
	*blk = -1
}

// program writes one logical page into the pool and returns its location.
// st selects the write stream. The caller is responsible for invalidating
// any previous location of lp. org and cause attribute the physical
// program for the wear ledger (ignored when no tracer is attached): org
// is the writer whose data this is, cause is why the FTL issued it.
func (p *gcPool) program(lp int32, data []byte, cost *Cost, reserveOK bool, st int, org wtrace.Origin, cause wtrace.Cause) (loc, error) {
	blk, page := p.stream(st)
	for attempts := 0; attempts < 8; attempts++ {
		if err := p.openFor(cost, reserveOK, st); err != nil {
			return noLoc, err
		}
		addr := nand.PageAddr{Block: *blk, Page: *page}
		*p.gseq++
		_, err := p.chip.ProgramPageOOB(addr, data, nand.OOB{LP: lp, Seq: *p.gseq, Org: uint16(org)})
		cost.Programs++
		*page++
		p.fill[addr.Block]++
		// Attribute exactly the programs the chip counted: successes and
		// program *failures* consume the page (nextPage advanced), while
		// power cuts and address errors return before the chip counts —
		// this mirroring is what keeps the ledger identity exact.
		if p.tr != nil && (err == nil || errors.Is(err, nand.ErrProgramFail)) {
			p.orgs[addr.Block*p.ppb+addr.Page] = org
			p.tr.NoteProgram(org, cause)
		}
		if err == nil {
			l := makeLoc(p.id, addr.Block, addr.Page)
			p.rmap[addr.Block*p.ppb+addr.Page] = lp
			p.valid[addr.Block]++
			return l, nil
		}
		if errors.Is(err, nand.ErrProgramFail) {
			// The page is wasted; retire the block if it keeps failing,
			// otherwise try the next page.
			p.stats.ProgramRetries++
			if *page >= p.ppb {
				continue // openFor will close it
			}
			if attempts >= 2 {
				p.retireOpen(cost, st)
			}
			continue
		}
		return noLoc, fmt.Errorf("ftl: program: %w", err)
	}
	return noLoc, fmt.Errorf("ftl: program: persistent program failures in pool %v", p.id)
}

// hasGarbage reports whether any usable block holds a superseded page.
func (p *gcPool) hasGarbage() bool {
	for b := range p.state {
		if p.state[b] != sBad && p.fill[b] > p.valid[b] {
			return true
		}
	}
	return false
}

// retireOpen relocates a stream's open block's valid pages and marks it bad.
func (p *gcPool) retireOpen(cost *Cost, st int) {
	blk, _ := p.stream(st)
	b := *blk
	*blk = -1
	p.state[b] = sFull
	p.relocateTo(b, cost, streamGC)
	p.state[b] = sBad
	p.chip.MarkBad(b)
}

// invalidate drops a physical page from the valid set.
func (p *gcPool) invalidate(l loc) {
	idx := l.block()*p.ppb + l.page()
	if p.rmap[idx] < 0 {
		return
	}
	p.rmap[idx] = -1
	p.valid[l.block()]--
}

// read returns the payload (nil for accounting-only pages) at l, stepping
// through firmware read-retry on uncorrectable results.
func (p *gcPool) read(l loc, cost *Cost) ([]byte, error) {
	a := nand.PageAddr{Block: l.block(), Page: l.page()}
	data, _, err := p.chip.ReadPage(a)
	cost.Reads++
	for r := 0; r < p.readRetries && errors.Is(err, nand.ErrUncorrectable); r++ {
		p.stats.ReadRetries++
		data, _, err = p.chip.ReadPage(a)
		cost.Reads++
	}
	return data, err
}

// collect reclaims full blocks until the free list reaches high water, or no
// victim remains. It never recurses: a program issued by relocation that
// finds no free block fails with ErrNoSpace instead of collecting again.
func (p *gcPool) collect(cost *Cost) error {
	if p.collecting {
		return nil
	}
	p.collecting = true
	p.collects++
	defer func() { p.collecting = false }()
	for len(p.free) < p.highWater {
		v := p.victim()
		if v < 0 {
			if len(p.free) == 0 {
				return ErrNoSpace
			}
			return nil
		}
		p.relocate(v, cost)
		if p.lostPower {
			// Power failed mid-collection: the victim stays where it is
			// (retrying would spin forever against a dead chip) and the
			// cut surfaces to the host like any other failed operation.
			return nand.ErrPowerLoss
		}
		// Relocation may have been unable to finish (no space), or nested
		// collection may already have reclaimed v; never erase a block
		// that still holds valid pages or already left the full state.
		if p.state[v] != sFull {
			continue
		}
		if p.valid[v] != 0 {
			if len(p.free) == 0 {
				return ErrNoSpace
			}
			return nil
		}
		p.eraseToFree(v, cost)
		if p.lostPower {
			return nand.ErrPowerLoss
		}
	}
	return nil
}

// victim picks the next GC victim among full blocks, or -1 if none is
// reclaimable. Ties break toward the least-worn block, so greedy selection
// does not keep resurrecting the same blocks and silently concentrate wear.
func (p *gcPool) victim() int {
	best := -1
	var bestScore float64
	for b, s := range p.state {
		if s != sFull || b == p.relocating {
			continue
		}
		u := float64(p.valid[b]) / float64(p.ppb)
		if u >= 1 {
			continue // nothing reclaimable
		}
		var score float64
		switch p.policy {
		case GCCostBenefit:
			age := float64(p.seq - p.seqNo[b])
			score = (1 - u) / (1 + u) * (1 + age)
		default: // greedy: fewer valid pages first
			score = 1 - u
		}
		if best < 0 || score > bestScore ||
			(score == bestScore && p.chip.EraseCount(b) < p.chip.EraseCount(best)) {
			best, bestScore = b, score
		}
	}
	return best
}

// relocate copies all valid pages out of block b into the GC stream.
func (p *gcPool) relocate(b int, cost *Cost) {
	p.relocateTo(b, cost, streamGC)
}

// relocateTo copies all valid pages out of block b into the given stream.
// Each copy is attributed to the origin that owns the page being moved —
// GC and wear-leveling work is amplification *caused by* whoever wrote
// the data, which is the whole point of the ledger.
func (p *gcPool) relocateTo(b int, cost *Cost, st int) {
	prev := p.relocating
	p.relocating = b
	defer func() { p.relocating = prev }()
	cause := wtrace.CauseGC
	if st == streamWL {
		cause = wtrace.CauseWL
	}
	moved := 0
	defer func() {
		if p.tr != nil && moved > 0 {
			p.tr.EventRelocate(cause, b, moved)
		}
	}()
	base := b * p.ppb
	for pg := 0; pg < p.ppb; pg++ {
		lp := p.rmap[base+pg]
		if lp < 0 {
			continue
		}
		data, err := p.read(makeLoc(p.id, b, pg), cost)
		if err != nil {
			if errors.Is(err, nand.ErrPowerLoss) {
				// Power, not the page, failed: the data is intact on
				// flash and recovery will find it. Stop relocating.
				p.lostPower = true
				return
			}
			// Uncorrectable during GC: the data is lost; drop the
			// mapping rather than propagate garbage. Firmware logs
			// this as a grown defect.
			p.rmap[base+pg] = -1
			p.valid[b]--
			p.remap(lp, noLoc)
			continue
		}
		var org wtrace.Origin
		if p.tr != nil {
			org = p.orgs[base+pg]
		}
		nl, err := p.program(lp, data, cost, true, st, org, cause)
		if err != nil {
			// No space to relocate into: leave the page where it is.
			return
		}
		p.gcCopies++
		moved++
		p.rmap[base+pg] = -1
		p.valid[b]--
		p.remap(lp, nl)
	}
}

// eraseToFree erases b and returns it to the free list, or retires it.
func (p *gcPool) eraseToFree(b int, cost *Cost) {
	// Snapshot the page-origin extent before the erase wipes it: the
	// erase is charged to the plurality owner of the block's pages.
	programmed := 0
	if p.tr != nil {
		programmed = p.chip.ProgrammedPages(b)
	}
	_, err := p.chip.EraseBlock(b)
	cost.Erases++
	if errors.Is(err, nand.ErrPowerLoss) {
		// Nothing latched: the block is untouched, not bad. Leave it
		// full; recovery rebuilds from the chip anyway. The chip did not
		// count the erase, so neither does the ledger.
		p.lostPower = true
		p.state[b] = sFull
		return
	}
	p.erasesSinceWL++
	base := b * p.ppb
	if p.tr != nil {
		// Erase failures still count as erases on the chip, so they are
		// attributed too; only the power cut above is not.
		p.tr.EraseBlockAttrib(b, p.orgs[base:base+programmed])
		for pg := 0; pg < programmed; pg++ {
			p.orgs[base+pg] = 0
		}
	}
	for pg := 0; pg < p.ppb; pg++ {
		p.rmap[base+pg] = -1
	}
	p.valid[b] = 0
	p.fill[b] = 0
	if err != nil {
		p.state[b] = sBad
		p.chip.MarkBad(b)
		return
	}
	// Proactive retirement: firmware takes blocks whose error rate has
	// grown too close to the ECC capability out of service.
	if p.chip.ShouldRetire(b) {
		p.state[b] = sBad
		p.chip.MarkBad(b)
		return
	}
	p.state[b] = sFree
	p.free = append(p.free, b)
}

// maybeStaticWL runs static wear-leveling when due: if the erase-count
// spread exceeds the threshold, the coldest full block's data is relocated
// so the block rejoins the rotation. The FTL calls this from the host write
// path only, never from GC, so it cannot re-enter relocation.
func (p *gcPool) maybeStaticWL(cost *Cost) {
	if !p.wl.Static || p.erasesSinceWL < p.wl.StaticInterval {
		return
	}
	p.erasesSinceWL = 0
	cold, hot := -1, -1
	for b, s := range p.state {
		if s == sBad {
			continue
		}
		if cold < 0 || p.chip.EraseCount(b) < p.chip.EraseCount(cold) {
			if s == sFull {
				cold = b
			}
		}
		if hot < 0 || p.chip.EraseCount(b) > p.chip.EraseCount(hot) {
			hot = b
		}
	}
	if cold < 0 || hot < 0 {
		return
	}
	if p.chip.EraseCount(hot)-p.chip.EraseCount(cold) <= p.wl.StaticThreshold {
		return
	}
	p.relocateTo(cold, cost, streamWL)
	if p.state[cold] == sFull && p.valid[cold] == 0 {
		p.eraseToFree(cold, cost)
	}
}
