package wtrace

import "flashwear/internal/telemetry"

// Attach registers the tracer's headline figures as pull metrics so the
// wear ledger shows up in the same sampled series as everything else:
//
//	wtrace.origins          registered origin count
//	wtrace.events           recorded event count
//	wtrace.events_dropped   events lost at the buffer cap
//	wtrace.phys_pages       total attributed physical programs
//	wtrace.erases           total attributed erases
//
// The callbacks only read (atomics and lens), as the registry's pull
// contract requires.
func (t *Tracer) Attach(reg *telemetry.Registry) {
	reg.CounterFunc("wtrace.origins", func() int64 {
		return int64(len(t.led.loadRows()))
	})
	reg.CounterFunc("wtrace.events", func() int64 {
		return int64(len(t.events))
	})
	reg.CounterFunc("wtrace.events_dropped", func() int64 {
		return t.dropped
	})
	reg.CounterFunc("wtrace.phys_pages", func() int64 {
		var n int64
		for _, r := range t.led.loadRows() {
			for c := range r.programs {
				n += r.programs[c].Load()
			}
		}
		return n
	})
	reg.CounterFunc("wtrace.erases", func() int64 {
		var n int64
		for _, r := range t.led.loadRows() {
			n += r.erases.Load()
		}
		return n
	})
}
