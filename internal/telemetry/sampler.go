package telemetry

import (
	"fmt"
	"io"
	"math"
	"strconv"
	"strings"
	"time"

	"flashwear/internal/simclock"
)

// Sampler snapshots a registry on a fixed simulated-time cadence. It
// rides the same discrete-event clock as the device it observes, so a
// sampled run advances through exactly the same event sequence as an
// unsampled one — sampling is pure observation (DESIGN.md §7).
//
// Like the clock itself, a Sampler is not safe for concurrent use.
type Sampler struct {
	reg    *Registry
	clock  *simclock.Clock
	every  time.Duration
	cancel func()

	// Collect controls whether snapshots accumulate into Series (on by
	// default). Callers that only want the OnSample callback — the fleet
	// does its own integer aggregation — turn it off to save memory.
	Collect bool
	// OnSample, when non-nil, receives every snapshot as it is taken.
	OnSample func(Snapshot)

	series  Series
	lastAt  time.Duration
	sampled bool
}

// NewSampler schedules a snapshot of reg every `every` of simulated time
// on clock. It panics on a non-positive cadence.
func NewSampler(reg *Registry, clock *simclock.Clock, every time.Duration) *Sampler {
	if every <= 0 {
		panic(fmt.Sprintf("telemetry: NewSampler: cadence %v, want > 0", every))
	}
	s := &Sampler{reg: reg, clock: clock, every: every, Collect: true}
	s.cancel = clock.Every(every, s.sample)
	return s
}

func (s *Sampler) sample() {
	snap := s.reg.Snapshot(s.clock.Now())
	s.lastAt, s.sampled = snap.At, true
	if s.Collect {
		s.series.add(snap)
	}
	if s.OnSample != nil {
		s.OnSample(snap)
	}
}

// Stop cancels future scheduled samples.
func (s *Sampler) Stop() {
	if s.cancel != nil {
		s.cancel()
		s.cancel = nil
	}
}

// Final takes one last snapshot at the current clock time, unless a
// scheduled sample already fired at this exact instant. Call it after a
// run ends so the series always reflects the end state (a device that
// bricks between samples would otherwise vanish mid-trajectory).
func (s *Sampler) Final() {
	if s.sampled && s.lastAt == s.clock.Now() {
		return
	}
	s.sample()
}

// Series returns the accumulated time series.
func (s *Sampler) Series() *Series { return &s.series }

// Row is one sampled instant: every instrument's value at time At.
type Row struct {
	At     time.Duration
	Values []float64
}

// Series is an in-memory metrics time series with a fixed column layout
// (established by the first snapshot added).
type Series struct {
	Columns []string
	Kinds   []Kind
	Rows    []Row
}

func (s *Series) add(snap Snapshot) {
	if s.Columns == nil {
		s.Columns = make([]string, len(snap.Points))
		s.Kinds = make([]Kind, len(snap.Points))
		for i, p := range snap.Points {
			s.Columns[i] = p.Name
			s.Kinds[i] = p.Kind
		}
	}
	if len(snap.Points) != len(s.Columns) {
		panic(fmt.Sprintf("telemetry: snapshot has %d points, series has %d columns (register all instruments before sampling starts)",
			len(snap.Points), len(s.Columns)))
	}
	vals := make([]float64, len(snap.Points))
	for i, p := range snap.Points {
		vals[i] = p.Value()
	}
	s.Rows = append(s.Rows, Row{At: snap.At, Values: vals})
}

// FormatCell renders one value the way WriteCSV does: counters as exact
// integers, gauges in shortest round-trip form.
func FormatCell(k Kind, v float64) string {
	if k == KindCounter {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteCSV renders the series with a "sim_hours" time column followed by
// one column per instrument, in registration order.
func (s *Series) WriteCSV(w io.Writer) error {
	var b strings.Builder
	b.WriteString("sim_hours")
	for _, c := range s.Columns {
		b.WriteByte(',')
		b.WriteString(c)
	}
	b.WriteByte('\n')
	for _, row := range s.Rows {
		b.WriteString(strconv.FormatFloat(row.At.Hours(), 'g', -1, 64))
		for i, v := range row.Values {
			b.WriteByte(',')
			b.WriteString(FormatCell(s.Kinds[i], v))
		}
		b.WriteByte('\n')
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// WriteJSON renders the series as a single object:
//
//	{"columns": [...], "kinds": [...], "rows": [{"sim_hours": h, "values": [...]}]}
//
// Non-finite gauge values become null (JSON has no NaN/Inf).
func (s *Series) WriteJSON(w io.Writer) error {
	var b strings.Builder
	b.WriteString("{\"columns\":[")
	for i, c := range s.Columns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(c))
	}
	b.WriteString("],\"kinds\":[")
	for i, k := range s.Kinds {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.Quote(k.String()))
	}
	b.WriteString("],\"rows\":[")
	for i, row := range s.Rows {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString("{\"sim_hours\":")
		b.WriteString(jsonNumber(row.At.Hours()))
		b.WriteString(",\"values\":[")
		for j, v := range row.Values {
			if j > 0 {
				b.WriteByte(',')
			}
			if s.Kinds[j] == KindCounter {
				b.WriteString(strconv.FormatFloat(v, 'f', -1, 64))
			} else {
				b.WriteString(jsonNumber(v))
			}
		}
		b.WriteString("]}")
	}
	b.WriteString("]}\n")
	_, err := io.WriteString(w, b.String())
	return err
}

func jsonNumber(v float64) string {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return "null"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}
