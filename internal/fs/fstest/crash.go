package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flashwear/internal/fs"
)

// CrashFS is a file system that can simulate a power cut and be remounted.
type CrashFS interface {
	fs.FileSystem
	// SimulateCrash drops all volatile state, leaving the device exactly
	// as a power cut would.
	SimulateCrash()
}

// CrashFactory creates a fresh volume and returns it along with a remount
// function that re-opens the same underlying device after a crash.
type CrashFactory func(t *testing.T) (CrashFS, func(t *testing.T) CrashFS)

// Verifier runs an implementation-specific offline consistency check (an
// fsck) against the volume's underlying device. It must fail the test on
// structural corruption.
type Verifier func(t *testing.T)

// RunCrash executes the crash-consistency suite: random operation
// sequences, a crash at a random point, remount, then verification that
// everything synced before the crash is intact and the volume still works.
// Optional verifiers (offline fsck passes) run after every recovery.
func RunCrash(t *testing.T, mk CrashFactory, verify ...Verifier) {
	t.Run("SyncedSurviveCrashLoop", func(t *testing.T) { crashLoop(t, mk, verify) })
	t.Run("RepeatedCrashesStayMountable", func(t *testing.T) { repeatedCrashes(t, mk, verify) })
}

func runVerifiers(t *testing.T, verify []Verifier) {
	for _, v := range verify {
		v(t)
	}
}

// crashLoop runs several rounds of random writes with checkpoints of known
// state at each sync; after a crash, all synced state must be present.
func crashLoop(t *testing.T, mk CrashFactory, verify []Verifier) {
	for seed := int64(1); seed <= 6; seed++ {
		v, remount := mk(t)
		rng := rand.New(rand.NewSource(seed))

		// synced holds, per file, the content as of its last fsync.
		synced := map[string][]byte{}
		pending := map[string][]byte{}
		handles := map[string]fs.File{}

		fileFor := func(name string) fs.File {
			if f, ok := handles[name]; ok {
				return f
			}
			f, err := v.Create("/" + name)
			if err != nil {
				t.Fatalf("seed %d: create %s: %v", seed, name, err)
			}
			handles[name] = f
			pending[name] = nil
			return f
		}

		ops := 40 + rng.Intn(120)
		for i := 0; i < ops; i++ {
			name := fmt.Sprintf("f%d", rng.Intn(4))
			f := fileFor(name)
			switch rng.Intn(5) {
			case 0: // fsync: pending content becomes durable
				if err := f.Sync(); err != nil {
					t.Fatalf("seed %d: sync: %v", seed, err)
				}
				synced[name] = append([]byte(nil), pending[name]...)
			default: // extend with a recognisable record
				rec := bytes.Repeat([]byte{byte(i + 1)}, 512+rng.Intn(2048))
				off := int64(len(pending[name]))
				if _, err := f.WriteAt(rec, off); err != nil {
					t.Fatalf("seed %d: write: %v", seed, err)
				}
				pending[name] = append(pending[name], rec...)
			}
		}

		v.SimulateCrash()
		v2 := remount(t)
		runVerifiers(t, verify)

		for name, want := range synced {
			if len(want) == 0 {
				continue
			}
			g, err := v2.Open("/" + name)
			if err != nil {
				t.Fatalf("seed %d: %s lost after crash: %v", seed, name, err)
			}
			if g.Size() < int64(len(want)) {
				t.Fatalf("seed %d: %s shrank below synced size: %d < %d",
					seed, name, g.Size(), len(want))
			}
			got := make([]byte, len(want))
			if _, err := g.ReadAt(got, 0); err != nil {
				t.Fatalf("seed %d: read %s: %v", seed, name, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("seed %d: %s synced content corrupted", seed, name)
			}
		}
		// The volume still works after recovery.
		f, err := v2.Create("/post-crash")
		if err != nil {
			t.Fatalf("seed %d: create after recovery: %v", seed, err)
		}
		if _, err := f.WriteAt([]byte("alive"), 0); err != nil {
			t.Fatalf("seed %d: write after recovery: %v", seed, err)
		}
		if err := f.Sync(); err != nil {
			t.Fatalf("seed %d: sync after recovery: %v", seed, err)
		}
	}
}

// repeatedCrashes crashes the same volume many times in a row, including
// crashes immediately after mount, and demands a clean recovery each time.
func repeatedCrashes(t *testing.T, mk CrashFactory, verify []Verifier) {
	v, remount := mk(t)
	f, err := v.Create("/anchor")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("anchored"), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	cur := v
	for round := 0; round < 8; round++ {
		cur.SimulateCrash()
		cur = remount(t)
		runVerifiers(t, verify)
		g, err := cur.Open("/anchor")
		if err != nil {
			t.Fatalf("round %d: anchor lost: %v", round, err)
		}
		got := make([]byte, 8)
		if _, err := g.ReadAt(got, 0); err != nil || string(got) != "anchored" {
			t.Fatalf("round %d: anchor corrupted: %q %v", round, got, err)
		}
		// Occasionally do un-synced work before the next crash; it may
		// vanish but must never corrupt the anchor.
		if round%2 == 0 {
			if tmp, err := cur.Create("/scratch"); err == nil {
				_, _ = tmp.WriteAt(bytes.Repeat([]byte{0xAA}, 8192), 0)
			}
		}
	}
	if _, err := cur.Stat("/anchor"); errors.Is(err, fs.ErrNotExist) {
		t.Fatal("anchor gone at the end")
	}
}
