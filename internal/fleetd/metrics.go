package fleetd

import "flashwear/internal/obs"

// Metrics is fleetd's ops-domain instrument panel. Everything here
// measures the serving process — throughput, I/O cost, request traffic —
// and nothing here feeds back into campaign results: the determinism
// tests compare series/ledger/aggregate/sim-events and explicitly exclude
// this registry's output, which legitimately differs run to run.
type Metrics struct {
	Registry *obs.Registry

	// Sweep progress.
	CellsComputed *obs.Counter // (shard, epoch) cells simulated this process
	CellsReused   *obs.Counter // cells satisfied from a valid checkpoint
	DeviceDays    *obs.Counter // device-day units committed
	DeviceRate    *obs.RateMeter

	// Checkpoint I/O.
	CheckpointBytes  *obs.Counter
	CheckpointWrites *obs.Counter
	FsyncSeconds     *obs.Histogram
	// Host-fault resilience: write attempts burned on retries, and
	// whether any campaign is currently in checkpointing-paused
	// (degraded, in-memory carry) mode.
	CheckpointRetries  *obs.Counter
	CheckpointDegraded *obs.Gauge

	// Campaign lifecycle.
	Submits *obs.Counter
	Resumes *obs.Counter
	Forks   *obs.Counter

	HTTP *obs.HTTPMetrics
}

// NewMetrics builds the fleetd metric set on a fresh registry.
func NewMetrics() *Metrics {
	r := obs.NewRegistry()
	return &Metrics{
		Registry: r,
		CellsComputed: r.Counter("fleetd_cells_computed_total",
			"Checkpoint cells (shard x epoch) simulated by this process."),
		CellsReused: r.Counter("fleetd_cells_reused_total",
			"Checkpoint cells satisfied from a valid on-disk checkpoint instead of recomputing."),
		DeviceDays: r.Counter("fleetd_device_days_total",
			"Device-day simulation units committed."),
		DeviceRate: r.RateMeter("fleetd_device_days_per_second",
			"Device-day throughput over the most recent epoch commit interval."),
		CheckpointBytes: r.Counter("fleetd_checkpoint_bytes_total",
			"Bytes written to completed checkpoint cell files."),
		CheckpointWrites: r.Counter("fleetd_checkpoint_writes_total",
			"Checkpoint cell files completed (fsynced and renamed into place)."),
		FsyncSeconds: r.Histogram("fleetd_checkpoint_fsync_seconds",
			"Latency of the fsync that makes a checkpoint cell durable.",
			obs.DurationBuckets),
		CheckpointRetries: r.Counter("fleetd_checkpoint_retries_total",
			"Checkpoint cell write attempts retried after a host I/O failure."),
		CheckpointDegraded: r.Gauge("fleetd_checkpoint_degraded",
			"1 while a campaign is in checkpointing-paused mode (simulating with in-memory state carry because checkpoint writes fail), else 0."),
		Submits: r.Counter("fleetd_campaign_submits_total",
			"Campaigns submitted."),
		Resumes: r.Counter("fleetd_campaign_resumes_total",
			"Campaign sweep resumes (operator resume or post-restart)."),
		Forks: r.Counter("fleetd_campaign_forks_total",
			"Campaigns created by forking."),
		HTTP: obs.NewHTTPMetrics(r, "fleetd"),
	}
}
