// Command fleetd runs the fleet campaign service and talks to it.
//
// Server mode:
//
//	fleetd serve -addr :7070 -data /var/lib/fleetd
//
// starts the HTTP/JSON control plane (see internal/fleetd for the API).
// With -data, every campaign checkpoints its shards there at the
// configured cadence and survives kill -9: restart the server and the
// campaigns come back paused, resumable from their last complete epoch.
//
// Client mode (every other subcommand; -addr selects the server):
//
//	fleetd submit -devices 100000 -days 365 -shards 8 -checkpoint-every 30
//	fleetd list
//	fleetd status <id>
//	fleetd series <id>        # committed day series, CSV on stdout
//	fleetd ledger <id>        # per-origin wear ledger, CSV on stdout
//	fleetd result <id>        # final aggregate, JSON on stdout
//	fleetd pause <id>
//	fleetd resume <id>
//	fleetd fork <id> -days 730 -faults "read=1e-4"
//	fleetd wait <id>          # poll until done/failed/paused
//	fleetd events <id>        # journal events so far, JSON on stdout
//	fleetd watch <id>         # live event stream, one line per event
//	fleetd trace -for 5s -o trace.json   # capture an execution-trace window
//	fleetd trace start|stop|status|fetch # or drive the window by hand
//
// Exit codes: 0 on success, 1 on runtime or server error, 2 on usage
// error.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"flashwear/internal/fleetd"
	"flashwear/internal/hostio"
	"flashwear/internal/obs"
	"flashwear/internal/profiling"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	cmd, args := os.Args[1], os.Args[2:]
	var err error
	switch cmd {
	case "serve":
		err = serve(args)
	case "submit":
		err = submit(args)
	case "list":
		err = list(args)
	case "status":
		err = campaignCmd(args, func(cl *fleetd.Client, id string) error {
			st, err := cl.Status(id)
			if err != nil {
				return err
			}
			return printJSON(st)
		})
	case "series":
		err = campaignCmd(args, func(cl *fleetd.Client, id string) error {
			return printRaw(cl.SeriesCSV(id))
		})
	case "ledger":
		err = campaignCmd(args, func(cl *fleetd.Client, id string) error {
			return printRaw(cl.LedgerCSV(id))
		})
	case "result":
		err = campaignCmd(args, func(cl *fleetd.Client, id string) error {
			agg, err := cl.Result(id)
			if err != nil {
				return err
			}
			return printJSON(agg)
		})
	case "pause":
		err = campaignCmd(args, func(cl *fleetd.Client, id string) error {
			st, err := cl.Pause(id)
			if err != nil {
				return err
			}
			return printJSON(st)
		})
	case "resume":
		err = campaignCmd(args, func(cl *fleetd.Client, id string) error {
			st, err := cl.Resume(id)
			if err != nil {
				return err
			}
			return printJSON(st)
		})
	case "fork":
		err = fork(args)
	case "wait":
		err = wait(args)
	case "events":
		err = events(args)
	case "watch":
		err = watch(args)
	case "trace":
		err = trace(args)
	case "-h", "--help", "help":
		usage()
		return
	default:
		fmt.Fprintf(os.Stderr, "fleetd: unknown command %q\n", cmd)
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "fleetd:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage: fleetd <command> [flags]

commands:
  serve    run the campaign service
  submit   submit a campaign
  list     list campaigns
  status   show one campaign's status
  series   print the committed day series (CSV)
  ledger   print the per-origin wear ledger (CSV)
  result   print the final aggregate (JSON)
  pause    pause a running campaign
  resume   resume a paused campaign
  fork     fork a quiescent campaign
  wait     poll until a campaign stops running
  events   print a campaign's journal events (JSON)
  watch    stream a campaign's events live until it stops
  trace    capture a wall-clock execution trace from the server

run "fleetd <command> -h" for the command's flags.`)
}

// flags shared by every client subcommand.
func clientFlags(fs *flagSet) *string {
	return fs.String("addr", "http://localhost:7070", "fleetd server base URL")
}

func serve(args []string) error {
	fs := newFlagSet("serve")
	addr := fs.String("addr", ":7070", "listen address")
	data := fs.String("data", "", "checkpoint data directory (empty = in-memory campaigns only)")
	readHeader := fs.Duration("read-header-timeout", 10*time.Second, "slowloris guard: max time to receive request headers")
	readTimeout := fs.Duration("read-timeout", 30*time.Second, "max time to receive a full request")
	writeTimeout := fs.Duration("write-timeout", 60*time.Second, "max time to write a response (the SSE watch stream clears its own deadline)")
	grace := fs.Duration("shutdown-grace", 15*time.Second, "graceful-shutdown budget: sweeps drain at cell boundaries, then hard-pause")
	faultPlan := fs.String("host-fault-plan", "", "inject host I/O faults, hostio.ParsePlan grammar (fault drills; e.g. \"class=checkpoint,fault=enospc,from=3,until=6\")")
	retries := fs.Int("checkpoint-retries", 3, "checkpoint write attempts before a campaign degrades to checkpointing-paused")
	tracePath := fs.String("trace", "", "record runtrace spans for the server's lifetime and write a Chrome trace-event file here on shutdown")
	pprofCPU := fs.String("pprof-cpu", "", "write a CPU profile of the server's lifetime to this file")
	pprofHeap := fs.String("pprof-heap", "", "write a heap profile to this file at shutdown")
	fs.parse(args)

	if *pprofCPU != "" {
		stop, err := profiling.StartCPU(*pprofCPU)
		if err != nil {
			return err
		}
		defer func() {
			if err := stop(); err != nil {
				fmt.Fprintln(os.Stderr, "fleetd:", err)
			}
		}()
	}
	if *pprofHeap != "" {
		defer func() {
			if err := profiling.WriteHeap(*pprofHeap); err != nil {
				fmt.Fprintln(os.Stderr, "fleetd:", err)
			}
		}()
	}

	var hfs hostio.FS = hostio.OS{}
	if *faultPlan != "" {
		plan, err := hostio.ParsePlan(*faultPlan)
		if err != nil {
			return fmt.Errorf("-host-fault-plan: %w", err)
		}
		hfs = hostio.NewFaultFS(hostio.OS{}, plan)
		fmt.Fprintf(os.Stderr, "fleetd: host-fault injection ACTIVE: %q\n", *faultPlan)
	}
	mgr, err := fleetd.NewManagerOpts(fleetd.Options{
		DataDir:         *data,
		FS:              hfs,
		CheckpointRetry: obs.Backoff{Attempts: *retries},
	})
	if err != nil {
		return err
	}
	if *data != "" {
		for _, c := range mgr.List() {
			st := c.Status()
			fmt.Fprintf(os.Stderr, "fleetd: adopted campaign %s (%s, %d devices, %d days) — paused; resume to continue\n",
				st.ID, st.Name, st.Devices, st.Days)
		}
	}
	mgr.SetLogger(obs.NewLogger(os.Stderr))
	if *tracePath != "" {
		mgr.Trace().StartRecording()
		defer func() {
			mgr.Trace().StopRecording()
			if err := writeFileWith(*tracePath, mgr.Trace().WriteChrome); err != nil {
				fmt.Fprintln(os.Stderr, "fleetd: -trace:", err)
			} else {
				fmt.Fprintf(os.Stderr, "fleetd: wrote execution trace to %s (%d spans)\n",
					*tracePath, mgr.Trace().SpanCount())
			}
		}()
	}
	fmt.Fprintf(os.Stderr, "fleetd: listening on %s (data: %q)\n", *addr, *data)
	handler := fleetd.NewServer(mgr)
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: *readHeader,
		ReadTimeout:       *readTimeout,
		WriteTimeout:      *writeTimeout,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errCh := make(chan error, 1)
	go func() { errCh <- srv.ListenAndServe() }()
	select {
	case err := <-errCh:
		return err
	case <-ctx.Done():
	}
	stop() // restore default signal behavior: a second signal kills hard

	// Graceful drain: every sweep stops at its next cell boundary — the
	// last completed cell is already fsynced and renamed, so this IS the
	// final checkpoint. If the grace budget expires (a huge cell mid-
	// flight), hard-pause: the abandoned .tmp is swept on next startup and
	// the cell recomputes on resume.
	fmt.Fprintln(os.Stderr, "fleetd: signal received; draining campaigns")
	graceCtx, cancelGrace := context.WithTimeout(context.Background(), *grace)
	defer cancelGrace()
	drained := make(chan struct{})
	go func() {
		defer close(drained)
		for _, c := range mgr.List() {
			c.Drain()
		}
		for _, c := range mgr.List() {
			c.Wait()
		}
	}()
	select {
	case <-drained:
	case <-graceCtx.Done():
		fmt.Fprintln(os.Stderr, "fleetd: drain grace expired; hard-pausing remaining campaigns")
		for _, c := range mgr.List() {
			c.Pause()
		}
		<-drained
	}
	handler.Shutdown() // release SSE watch streams
	shutCtx, cancelShut := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelShut()
	if err := srv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	fmt.Fprintln(os.Stderr, "fleetd: shutdown complete")
	return nil
}

// specFlags registers the campaign-spec flags on fs and returns a closure
// building the spec after parsing.
func specFlags(fs *flagSet) func() (fleetd.CampaignSpec, error) {
	specPath := fs.String("spec", "", "read the full CampaignSpec from this JSON file (\"-\" = stdin); other spec flags override")
	name := fs.String("name", "", "campaign label")
	devices := fs.Int("devices", 0, "population size")
	days := fs.Int("days", 0, "simulated horizon per device, whole full-scale days")
	seed := fs.Int64("seed", 42, "root seed")
	scale := fs.Int64("scale", 0, "device capacity divisor")
	buggy := fs.Float64("buggy", 0, "fraction of devices running a write-buggy app")
	attack := fs.Float64("attack", 0, "fraction of devices under deliberate wear attack")
	faults := fs.String("faults", "", "fault plan, faultinject.ParsePlan grammar")
	wearTrace := fs.Bool("wear-trace", false, "attach per-origin wear attribution (enables the ledger endpoint)")
	shards := fs.Int("shards", 0, "shard count (scheduling only)")
	workers := fs.Int("workers", 0, "per-shard worker pool size (scheduling only)")
	every := fs.Int("checkpoint-every", 0, "checkpoint cadence in simulated days (scheduling only)")
	return func() (fleetd.CampaignSpec, error) {
		var spec fleetd.CampaignSpec
		if *specPath != "" {
			raw, err := readFileOrStdin(*specPath)
			if err != nil {
				return spec, err
			}
			if err := json.Unmarshal(raw, &spec); err != nil {
				return spec, fmt.Errorf("-spec: %w", err)
			}
		}
		if *name != "" {
			spec.Name = *name
		}
		if *devices != 0 {
			spec.Devices = *devices
		}
		if *days != 0 {
			spec.Days = *days
		}
		if fs.changed("seed") || spec.Seed == 0 {
			spec.Seed = *seed
		}
		if *scale != 0 {
			spec.Scale = *scale
		}
		if *buggy != 0 {
			spec.Buggy = *buggy
		}
		if *attack != 0 {
			spec.Attack = *attack
		}
		if *faults != "" {
			spec.Faults = *faults
		}
		if *wearTrace {
			spec.WearTrace = true
		}
		if *shards != 0 {
			spec.Shards = *shards
		}
		if *workers != 0 {
			spec.Workers = *workers
		}
		if *every != 0 {
			spec.CheckpointEvery = *every
		}
		return spec, nil
	}
}

func submit(args []string) error {
	fs := newFlagSet("submit")
	addr := clientFlags(fs)
	build := specFlags(fs)
	fs.parse(args)
	spec, err := build()
	if err != nil {
		return err
	}
	cl := &fleetd.Client{BaseURL: *addr}
	st, err := cl.Submit(spec)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func list(args []string) error {
	fs := newFlagSet("list")
	addr := clientFlags(fs)
	fs.parse(args)
	cl := &fleetd.Client{BaseURL: *addr}
	out, err := cl.List()
	if err != nil {
		return err
	}
	return printJSON(out)
}

func fork(args []string) error {
	fs := newFlagSet("fork")
	addr := clientFlags(fs)
	name := fs.String("name", "", "fork label")
	days := fs.Int("days", 0, "new horizon (0 = keep)")
	faults := fs.String("faults", "", "replacement fault plan for future epochs")
	faultsSet := fs.Bool("clear-faults", false, "remove the fault plan for future epochs")
	fs.parse(args)
	id, err := fs.arg(0, "campaign id")
	if err != nil {
		return err
	}
	opts := fleetd.ForkOptions{Name: *name, Days: *days}
	if *faults != "" || *faultsSet {
		f := *faults
		opts.Faults = &f
	}
	cl := &fleetd.Client{BaseURL: *addr}
	st, err := cl.Fork(id, opts)
	if err != nil {
		return err
	}
	return printJSON(st)
}

func wait(args []string) error {
	fs := newFlagSet("wait")
	addr := clientFlags(fs)
	every := fs.Duration("every", 2*time.Second, "poll interval")
	fs.parse(args)
	id, err := fs.arg(0, "campaign id")
	if err != nil {
		return err
	}
	cl := &fleetd.Client{BaseURL: *addr}
	for {
		st, err := cl.Status(id)
		if err != nil {
			return err
		}
		if st.State != fleetd.StateRunning {
			if err := printJSON(st); err != nil {
				return err
			}
			if st.State == fleetd.StateFailed {
				return fmt.Errorf("campaign %s failed: %s", id, st.Error)
			}
			return nil
		}
		fmt.Fprintf(os.Stderr, "fleetd: %s: day %d/%d, %d bricked\n", id, st.DaysDone, st.Days, st.Bricked)
		//flashvet:ignore wallclock client-side poll pacing against a remote server; no simulation results flow through it
		time.Sleep(*every)
	}
}

func events(args []string) error {
	fs := newFlagSet("events")
	addr := clientFlags(fs)
	since := fs.Uint64("since", 0, "only events with seq > since")
	fs.parse(args)
	id, err := fs.arg(0, "campaign id")
	if err != nil {
		return err
	}
	cl := &fleetd.Client{BaseURL: *addr}
	evs, err := cl.Events(id, *since)
	if err != nil {
		return err
	}
	return printJSON(evs)
}

// watch tails a campaign's journal over SSE, rendering one line per
// event, until the campaign reaches done/failed/paused. It reconnects
// from the last seen sequence number if the stream drops mid-run.
func watch(args []string) error {
	fs := newFlagSet("watch")
	addr := clientFlags(fs)
	since := fs.Uint64("since", 0, "resume the stream after this seq")
	fs.parse(args)
	id, err := fs.arg(0, "campaign id")
	if err != nil {
		return err
	}
	cl := &fleetd.Client{BaseURL: *addr}
	last := *since
	var errStop = fmt.Errorf("campaign stopped")
	var failure error
	for {
		err := cl.Watch(id, last, func(e obs.Event) error {
			last = e.Seq
			line := fmt.Sprintf("%s  #%d %s", time.UnixMilli(e.WallMs).UTC().Format("15:04:05"), e.Seq, e.Type)
			if e.Day > 0 {
				line += fmt.Sprintf(" day=%d", e.Day)
			}
			if e.Epoch > 0 {
				line += fmt.Sprintf(" shard=%d epoch=%d", e.Shard, e.Epoch)
			}
			if e.Rule != "" {
				line += fmt.Sprintf(" rule=%s value=%s", e.Rule, e.Value)
			}
			if e.Detail != "" {
				line += " " + e.Detail
			}
			fmt.Println(line)
			switch e.Type {
			case "done", "paused":
				return errStop
			case "failed":
				failure = fmt.Errorf("campaign %s failed: %s", id, e.Detail)
				return errStop
			}
			return nil
		})
		if err == errStop {
			return failure
		}
		if err != nil {
			return err
		}
		// Clean stream end without a terminal event: the server dropped a
		// slow subscriber or restarted. Back off briefly, then resume from
		// the last seen seq.
		fmt.Fprintf(os.Stderr, "fleetd: watch: stream ended, reconnecting from seq %d\n", last)
		//flashvet:ignore wallclock client-side reconnect backoff against a remote server; no simulation results flow through it
		time.Sleep(time.Second)
	}
}

// trace drives the server's runtrace recording window (DESIGN.md §14).
// With no positional action it captures a window: start recording, wait
// -for, stop, fetch the Chrome trace-event file. The explicit actions
// (start / stop / status / fetch) manage a window by hand — e.g. start
// one before submitting a campaign and fetch it after.
func trace(args []string) error {
	fs := newFlagSet("trace")
	addr := clientFlags(fs)
	window := fs.Duration("for", 2*time.Second, "capture window length for the default start+wait+stop+fetch round-trip")
	out := fs.String("o", "trace.json", "output path for the Chrome trace-event file (\"-\" = stdout)")
	fs.parse(args)
	cl := &fleetd.Client{BaseURL: *addr}
	action := "capture"
	if fs.NArg() > 0 {
		action = fs.Arg(0)
	}
	fetch := func() error {
		raw, err := cl.TraceChrome()
		if err != nil {
			return err
		}
		if *out == "-" {
			_, err = os.Stdout.Write(raw)
			return err
		}
		if err := os.WriteFile(*out, raw, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fleetd: wrote %s (%d bytes); open it in chrome://tracing or https://ui.perfetto.dev\n", *out, len(raw))
		return nil
	}
	switch action {
	case "capture":
		if _, err := cl.TraceStart(); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "fleetd: recording for %s...\n", *window)
		//flashvet:ignore wallclock client-side capture window against a remote server; no simulation results flow through it
		time.Sleep(*window)
		if st, err := cl.TraceStop(); err != nil {
			return err
		} else if st.Dropped > 0 {
			fmt.Fprintf(os.Stderr, "fleetd: warning: %d spans dropped at the buffer cap\n", st.Dropped)
		}
		return fetch()
	case "start":
		st, err := cl.TraceStart()
		if err != nil {
			return err
		}
		return printJSON(st)
	case "stop":
		st, err := cl.TraceStop()
		if err != nil {
			return err
		}
		return printJSON(st)
	case "status":
		st, err := cl.TraceStatus()
		if err != nil {
			return err
		}
		return printJSON(st)
	case "fetch":
		return fetch()
	default:
		return fmt.Errorf("trace: unknown action %q (want start, stop, status or fetch)", action)
	}
}

// writeFileWith streams fn's output into path.
func writeFileWith(path string, fn func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// campaignCmd runs a client action that takes only -addr and a campaign
// id argument.
func campaignCmd(args []string, fn func(*fleetd.Client, string) error) error {
	fs := newFlagSet("command")
	addr := clientFlags(fs)
	fs.parse(args)
	id, err := fs.arg(0, "campaign id")
	if err != nil {
		return err
	}
	return fn(&fleetd.Client{BaseURL: *addr}, id)
}

func printJSON(v any) error {
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}

func printRaw(raw []byte, err error) error {
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(raw)
	return err
}

func readFileOrStdin(path string) ([]byte, error) {
	if path == "-" {
		return readAllStdin()
	}
	return os.ReadFile(path)
}
