package fleetd

import (
	"bytes"
	"testing"
)

// tinySpec is the shared test campaign: small population, short horizon,
// aggressive scale so a run takes well under a second per device-day.
func tinySpec() CampaignSpec {
	return CampaignSpec{
		Name:      "tiny",
		Devices:   4,
		Days:      5,
		Seed:      42,
		Scale:     65536,
		Buggy:     0.25,
		Attack:    0.25,
		WearTrace: true,
		Workers:   2,
	}
}

// runToEnd submits spec on a fresh manager and waits for completion.
func runToEnd(t *testing.T, dataDir string, spec CampaignSpec) *Campaign {
	t.Helper()
	m, err := NewManager(dataDir)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if got := c.State(); got != StateDone {
		t.Fatalf("state = %s, want done", got)
	}
	return c
}

func TestCampaignInMemory(t *testing.T) {
	c := runToEnd(t, "", tinySpec())
	series := c.Series()
	if got, want := len(series.Rows), 5; got != want {
		t.Fatalf("series has %d rows, want %d", got, want)
	}
	for k, r := range series.Rows {
		if r[dDevices] != 4 {
			t.Errorf("day %d: devices = %d, want 4", k, r[dDevices])
		}
	}
	agg, final := c.Aggregate()
	if !final {
		t.Fatal("Aggregate not final after Wait")
	}
	if agg.Total.Devices != 4 {
		t.Errorf("aggregate devices = %d, want 4", agg.Total.Devices)
	}
	if len(c.Ledger().Rows) == 0 {
		t.Error("wear-traced campaign has empty ledger")
	}
	var buf bytes.Buffer
	if err := series.WriteCSV(&buf); err != nil {
		t.Fatalf("WriteCSV: %v", err)
	}
	if got := buf.String(); len(got) == 0 {
		t.Error("empty series CSV")
	}
}
