package experiments

import (
	"fmt"

	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/ftl"
	"flashwear/internal/workload"
)

// Table1 reproduces Table 1: the hybrid eMMC 16GB's two wear-out
// indicators over a sequence of workload phases that vary the I/O pattern
// (4 KiB random / 128 KiB sequential) and the space utilisation (0%, 50%,
// 90%, and rewrites aimed at the utilised space). The Type B indicator
// climbs steadily in every phase; Type A wears ~6x slower until the pools
// merge under high utilisation and fragmentation, after which it
// accelerates sharply.
//
// The workload runs directly on the device (the paper ran it over ext4 on
// a Linux host; the raw form isolates the firmware behaviour the table is
// about — see EXPERIMENTS.md).
func Table1(cfg Config) (core.RunReport, error) {
	cfg = cfg.Defaults()
	dev, clock, eff, err := newDevice(device.ProfileEMMC16(), cfg.Scale)
	if err != nil {
		return core.RunReport{}, err
	}
	runner := core.NewRunner(dev, clock, eff)

	// The "0%" phases rewrite a bounded working set (the file experiment's
	// ~400 MB footprint, ~2.5% of the device), in the free space past any
	// static fill.
	hotSpan := dev.Size() / 40
	var filled int64 // bytes of static data at the front of the LBA space

	fillTo := func(frac float64) error {
		target := int64(float64(dev.Size())*frac) &^ 4095 // page aligned
		if target > filled {
			w := workload.NewDeviceWriter(dev, 1<<20, true, 7)
			w.RegionOff = filled
			w.RegionLen = target - filled
			if w.RegionLen >= 1<<20 {
				if _, err := w.Step(target - filled); err != nil {
					return err
				}
			}
			filled = target
			return nil
		}
		if target < filled {
			if err := dev.Discard(target, filled-target); err != nil {
				return err
			}
			filled = target
		}
		return nil
	}

	type phase struct {
		pattern   string
		reqBytes  int64
		seq       bool
		util      float64
		rewriting bool // aim at the utilised space instead of free space
		untilB    int
	}
	phases := []phase{
		{"4 KiB rand", 4096, false, 0, false, 2},
		{"4 KiB rand", 4096, false, 0, false, 3},
		{"128 KiB seq", 128 << 10, true, 0, false, 4},
		{"128 KiB seq", 128 << 10, true, 0, false, 5},
		{"4 KiB rand", 4096, false, 0, false, 6},
		{"4 KiB rand", 4096, false, 0.90, false, 7},
		{"4 KiB rand", 4096, false, 0.50, false, 8},
		{"4 KiB rand rewrite", 4096, false, 0.90, true, 10},
	}
	for i, ph := range phases {
		if cfg.MaxLevel < ph.untilB {
			break
		}
		cfg.Progress("table 1 phase %d: %s @ %.0f%%", i+1, ph.pattern, ph.util*100)
		if err := fillTo(ph.util); err != nil {
			return core.RunReport{}, fmt.Errorf("table1 phase %d fill: %w", i+1, err)
		}
		w := workload.NewDeviceWriter(dev, ph.reqBytes, ph.seq, int64(100+i))
		if ph.rewriting {
			// Rewrites aimed at the large utilised space (Table 1's
			// final phases).
			w.RegionOff = 0
			w.RegionLen = filled
		} else {
			// Writes confined to a hot region in the free space.
			w.RegionOff = filled
			w.RegionLen = hotSpan
			if w.RegionOff+w.RegionLen > dev.Size() {
				w.RegionLen = dev.Size() - w.RegionOff
			}
		}
		runner.Pattern = ph.pattern
		runner.SpaceUtil = ph.util
		if err := runner.RunPhase(w.Step, 0, runner.UntilLevel(ftl.PoolB, ph.untilB)); err != nil {
			return core.RunReport{}, fmt.Errorf("table1 phase %d: %w", i+1, err)
		}
		if dev.Failed() {
			break
		}
	}
	return runner.Report(), nil
}
