package ftl

import (
	"errors"

	"flashwear/internal/nand"
	"flashwear/internal/wtrace"
)

// cachePool models the small high-endurance "Type A" memory as firmware
// actually manages it in mobile parts: a circular log of SLC-mode blocks.
// Writes append at the head; a drain process scans the tail in FIFO order,
// migrating still-valid pages to the main pool and erasing fully-scanned
// blocks. There is no garbage collection — space is reclaimed strictly in
// ring order — so cache wear is proportional to the pages it absorbs, which
// is what lets Table 1's Type A / Type B wear ratio emerge from mechanism
// rather than curve fitting.
type cachePool struct {
	chip *nand.Chip
	ppb  int

	ring []int // usable block indices in ring order (bad blocks removed)
	head int   // ring position being filled
	tail int   // ring position being drained
	used int   // blocks in [tail, head] holding data (head inclusive once written)

	headPage int // next free page in the head block
	tailPage int // next page to scan in the tail block

	rmap  []int32 // physical page -> logical page, -1 if dead
	valid []int32

	// gseq / stats point at the owning FTL's sequence counter and Stats
	// block (dummies when the pool is tested standalone).
	gseq        *int64
	stats       *Stats
	readRetries int

	// tr/orgs: wear attribution, as in gcPool. orgs mirrors rmap with
	// each physical page's writing origin; nil when tracing is off.
	tr   *wtrace.Tracer
	orgs []wtrace.Origin
}

func newCachePool(chip *nand.Chip) *cachePool {
	g := chip.Geometry()
	c := &cachePool{
		chip:  chip,
		ppb:   g.PagesPerBlock,
		rmap:  make([]int32, g.Blocks()*g.PagesPerBlock),
		valid: make([]int32, g.Blocks()),
		gseq:  new(int64),
		stats: new(Stats),
	}
	for i := range c.rmap {
		c.rmap[i] = -1
	}
	for b := 0; b < g.Blocks(); b++ {
		c.ring = append(c.ring, b)
	}
	return c
}

// alive reports whether the cache still has usable blocks.
func (c *cachePool) alive() bool { return len(c.ring) >= 2 }

// pages returns the cache's total usable page count.
func (c *cachePool) pages() int { return len(c.ring) * c.ppb }

// content reports whether any block holds data awaiting drain.
func (c *cachePool) content() bool { return c.used > 0 || c.headPage > 0 }

// hasFreeSlot reports whether a write can be absorbed right now: the head
// block has a free page, or the ring has an erased block to advance into.
func (c *cachePool) hasFreeSlot() bool {
	if !c.alive() {
		return false
	}
	if c.headPage < c.ppb {
		return true
	}
	return c.used < len(c.ring)-1 // keep one block gap between head and tail
}

// program appends one page at the head. Callers must check hasFreeSlot.
// org attributes the program for the wear ledger; a cache absorb always
// carries host data, so the cause is host.
func (c *cachePool) program(lp int32, data []byte, cost *Cost, org wtrace.Origin) (loc, error) {
	for attempts := 0; attempts < 4; attempts++ {
		if !c.hasFreeSlot() {
			return noLoc, ErrNoSpace
		}
		if c.headPage >= c.ppb {
			c.head = (c.head + 1) % len(c.ring)
			c.headPage = 0
			c.used++
		}
		b := c.ring[c.head]
		addr := nand.PageAddr{Block: b, Page: c.headPage}
		*c.gseq++
		_, err := c.chip.ProgramPageOOB(addr, data, nand.OOB{LP: lp, Seq: *c.gseq, Org: uint16(org)})
		cost.Programs++
		c.headPage++
		// Same contract as gcPool.program: attribute iff the chip counted
		// (success or program failure; never power cuts).
		if c.tr != nil && (err == nil || errors.Is(err, nand.ErrProgramFail)) {
			c.orgs[b*c.ppb+addr.Page] = org
			c.tr.NoteProgram(org, wtrace.CauseHost)
		}
		if err == nil {
			c.rmap[b*c.ppb+addr.Page] = lp
			c.valid[b]++
			return makeLoc(PoolA, b, addr.Page), nil
		}
		if errors.Is(err, nand.ErrProgramFail) {
			c.stats.ProgramRetries++
			continue // page wasted; try the next slot
		}
		return noLoc, err
	}
	return noLoc, ErrNoSpace
}

// invalidate drops a cache page from the valid set.
func (c *cachePool) invalidate(l loc) {
	idx := l.block()*c.ppb + l.page()
	if c.rmap[idx] < 0 {
		return
	}
	c.rmap[idx] = -1
	c.valid[l.block()]--
}

// read returns the payload at l, with firmware read-retry.
func (c *cachePool) read(l loc, cost *Cost) ([]byte, error) {
	a := nand.PageAddr{Block: l.block(), Page: l.page()}
	data, _, err := c.chip.ReadPage(a)
	cost.Reads++
	for r := 0; r < c.readRetries && errors.Is(err, nand.ErrUncorrectable); r++ {
		c.stats.ReadRetries++
		data, _, err = c.chip.ReadPage(a)
		cost.Reads++
	}
	return data, err
}

// drainOne advances the tail scan by one page. If that page is still valid,
// it returns its logical page, payload, and owning origin for the owner to
// rewrite into the main pool; otherwise (dead page, or nothing to drain) it
// returns lp = -1. Fully scanned tail blocks are erased and rejoin the ring.
func (c *cachePool) drainOne(cost *Cost) (lp int32, data []byte, org wtrace.Origin, err error) {
	if c.tailPage >= c.ppb {
		// A fully scanned tail block is erased lazily, on the *next* drain
		// call: erasing it in the same call that read its last live page
		// would destroy the only flash copy of data still in RAM on its
		// way to the main pool, and a power cut in that window would lose
		// an acknowledged write.
		if err := c.eraseTail(cost); err != nil {
			return -1, nil, 0, err
		}
	}
	if !c.content() {
		return -1, nil, 0, nil
	}
	if c.used == 0 {
		// Only the head block holds data. If it is completely filled it
		// can be closed and drained like any other; a block still being
		// filled is left alone.
		if c.headPage < c.ppb || len(c.ring) < 2 {
			return -1, nil, 0, nil
		}
		c.head = (c.head + 1) % len(c.ring)
		c.headPage = 0
		c.used++
	}
	b := c.ring[c.tail]
	if c.tail == c.head {
		// Should not happen while used > 0; be safe.
		return -1, nil, 0, nil
	}
	idx := b*c.ppb + c.tailPage
	lp = c.rmap[idx]
	if lp >= 0 {
		if c.tr != nil {
			org = c.orgs[idx]
		}
		data, err = c.read(makeLoc(PoolA, b, c.tailPage), cost)
		if err != nil {
			if errors.Is(err, nand.ErrPowerLoss) {
				// Power failed, not the page: leave everything in place
				// for recovery and report the cut.
				return -1, nil, 0, err
			}
			// Uncorrectable: the page's data is lost.
			c.rmap[idx] = -1
			c.valid[b]--
			lp = -2 // signal loss to the owner
			data = nil
			org = 0
			err = nil
		}
	}
	c.tailPage++
	return lp, data, org, nil
}

// eraseTail erases the fully scanned tail block and advances the tail. A
// power cut leaves the block, its pages, and the tail cursor untouched.
func (c *cachePool) eraseTail(cost *Cost) error {
	b := c.ring[c.tail]
	programmed := 0
	if c.tr != nil {
		programmed = c.chip.ProgrammedPages(b)
	}
	_, err := c.chip.EraseBlock(b)
	cost.Erases++
	if errors.Is(err, nand.ErrPowerLoss) {
		c.tailPage = c.ppb // resume here after recovery-less restarts
		return err
	}
	base := b * c.ppb
	if c.tr != nil {
		// The chip counted this erase (even if it failed), so the ledger
		// attributes it: plurality owner of the block's pages.
		c.tr.EraseBlockAttrib(b, c.orgs[base:base+programmed])
		for pg := 0; pg < programmed; pg++ {
			c.orgs[base+pg] = 0
		}
	}
	for pg := 0; pg < c.ppb; pg++ {
		c.rmap[base+pg] = -1
	}
	c.valid[b] = 0
	pos := c.tail
	c.tail = (c.tail + 1) % len(c.ring)
	c.tailPage = 0
	c.used--
	if err != nil || c.chip.ShouldRetire(b) {
		c.chip.MarkBad(b)
		c.removeFromRing(pos)
	}
	return nil
}

// removeFromRing drops the block at ring position pos, fixing up head/tail
// positions.
func (c *cachePool) removeFromRing(pos int) {
	c.ring = append(c.ring[:pos], c.ring[pos+1:]...)
	if len(c.ring) == 0 {
		c.head, c.tail = 0, 0
		return
	}
	if c.head > pos {
		c.head--
	} else if c.head >= len(c.ring) {
		c.head = 0
	}
	if c.tail > pos {
		c.tail--
	} else if c.tail >= len(c.ring) {
		c.tail = 0
	}
}

// validPages returns the number of live pages held in the cache.
func (c *cachePool) validPages() int64 {
	var n int64
	for _, v := range c.valid {
		n += int64(v)
	}
	return n
}

// utilisation returns the fraction of cache pages holding data (valid or
// dead-but-not-yet-drained).
func (c *cachePool) utilisation() float64 {
	if !c.alive() {
		return 1
	}
	pagesInUse := c.used * c.ppb
	pagesInUse += c.headPage
	return float64(pagesInUse) / float64(c.pages())
}
