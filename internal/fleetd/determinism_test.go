package fleetd

import (
	"bytes"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

// fingerprint renders everything the determinism contract covers: the
// day series CSV, the ledger CSV, and the aggregate JSON. Byte equality
// of fingerprints is the test oracle throughout this file.
func fingerprint(t *testing.T, c *Campaign) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := c.Series().WriteCSV(&buf); err != nil {
		t.Fatalf("series CSV: %v", err)
	}
	if err := c.Ledger().WriteCSV(&buf); err != nil {
		t.Fatalf("ledger CSV: %v", err)
	}
	agg, final := c.Aggregate()
	raw, err := json.MarshalIndent(agg, "", " ")
	if err != nil {
		t.Fatalf("aggregate JSON: %v", err)
	}
	fmt.Fprintf(&buf, "final=%v\n", final)
	buf.Write(raw)
	return buf.Bytes()
}

// TestSchedulingInvariance pins the core contract: shards, workers, and
// checkpoint cadence are invisible in the results. Every variant —
// including the in-memory single-epoch run — must produce byte-identical
// series, ledger, and aggregate.
func TestSchedulingInvariance(t *testing.T) {
	for _, seed := range []int64{1, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := tinySpec()
			base.Seed = seed
			base.Faults = "read=2e-4,cut-every=3000000"
			ref := fingerprint(t, runToEnd(t, "", base))
			for _, v := range []struct {
				name            string
				shards, workers int
				every           int
				disk            bool
			}{
				{"w1s1-nockpt", 1, 1, 0, true},
				{"w4s3-e2", 3, 4, 2, true},
				{"w2s2-e1", 2, 2, 1, true},
				{"w1s4-e3", 4, 1, 3, true},
			} {
				spec := base
				spec.Shards = v.shards
				spec.Workers = v.workers
				spec.CheckpointEvery = v.every
				dir := ""
				if v.disk {
					dir = t.TempDir()
				}
				got := fingerprint(t, runToEnd(t, dir, spec))
				if !bytes.Equal(got, ref) {
					t.Errorf("%s: results differ from reference run\nref:\n%s\ngot:\n%s", v.name, ref, got)
				}
			}
		})
	}
}

// interrupt pauses the campaign as soon as any progress exists, then
// abandons the manager entirely — the in-process equivalent of kill -9
// between epoch commits (the on-disk story for kills mid-write is pinned
// separately by the truncation tests and the smoke script).
func interrupt(c *Campaign) {
	c.Pause()
}

// TestCrashResumeEquivalence is the kill-and-resume pin: interrupt a
// campaign, adopt its directory with a brand-new manager (as a restarted
// process would), resume, and require results byte-identical to an
// uninterrupted run — across seeds, worker counts, and shard counts.
func TestCrashResumeEquivalence(t *testing.T) {
	for _, tc := range []struct {
		seed            int64
		shards, workers int
		every           int
	}{
		{seed: 7, shards: 1, workers: 1, every: 2},
		{seed: 7, shards: 3, workers: 4, every: 2},
		{seed: 11, shards: 2, workers: 4, every: 1},
	} {
		tc := tc
		t.Run(fmt.Sprintf("seed%d-s%d-w%d-e%d", tc.seed, tc.shards, tc.workers, tc.every), func(t *testing.T) {
			spec := tinySpec()
			spec.Seed = tc.seed
			spec.Shards = tc.shards
			spec.Workers = tc.workers
			spec.CheckpointEvery = tc.every
			spec.Faults = "read=2e-4,cut-every=3000000"

			ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

			dir := t.TempDir()
			m1, err := NewManager(dir)
			if err != nil {
				t.Fatalf("NewManager: %v", err)
			}
			c1, err := m1.Submit(spec)
			if err != nil {
				t.Fatalf("Submit: %v", err)
			}
			interrupt(c1)
			// The first manager is dead. A fresh process adopts the
			// directory; the campaign comes back paused with its spec.
			m2, err := NewManager(dir)
			if err != nil {
				t.Fatalf("NewManager (restart): %v", err)
			}
			c2, ok := m2.Get(c1.ID())
			if !ok {
				t.Fatalf("restarted manager did not adopt campaign %s", c1.ID())
			}
			if got := c2.State(); got != StatePaused {
				t.Fatalf("adopted campaign state = %s, want paused", got)
			}
			if err := c2.Resume(); err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if err := c2.Wait(); err != nil {
				t.Fatalf("resumed campaign failed: %v", err)
			}
			if got := fingerprint(t, c2); !bytes.Equal(got, ref) {
				t.Errorf("resumed results differ from uninterrupted run\nref:\n%s\ngot:\n%s", ref, got)
			}
		})
	}
}

// TestResumeAfterTruncatedCell simulates a kill -9 mid-checkpoint-write
// after the fact: complete a campaign, chop the tail off one cell file,
// and require a fresh manager's sweep to silently recompute it back to
// byte-identical results.
func TestResumeAfterTruncatedCell(t *testing.T) {
	spec := tinySpec()
	spec.Shards = 2
	spec.CheckpointEvery = 2
	dir := t.TempDir()
	ref := fingerprint(t, runToEnd(t, dir, spec))

	path := cellPath(filepath.Join(dir, "c000001"), 1, 2)
	info, err := os.Stat(path)
	if err != nil {
		t.Fatalf("stat cell: %v", err)
	}
	if err := os.Truncate(path, info.Size()/2); err != nil {
		t.Fatalf("truncate cell: %v", err)
	}

	m, err := NewManager(dir)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	c, ok := m.Get("c000001")
	if !ok {
		t.Fatal("campaign not adopted")
	}
	if err := c.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed after truncation: %v", err)
	}
	if got := fingerprint(t, c); !bytes.Equal(got, ref) {
		t.Errorf("recomputed results differ after truncated cell\nref:\n%s\ngot:\n%s", ref, got)
	}
}

// TestFork pins fork semantics: the fork shares the source's completed
// epochs byte-for-byte (same prefix in the day series) and computes its
// own future — here an extended horizon under a different fault plan.
func TestFork(t *testing.T) {
	spec := tinySpec()
	spec.CheckpointEvery = 2
	dir := t.TempDir()
	src := runToEnd(t, dir, spec)

	faults := "read=5e-4"
	fk, err := src.mgr.Fork(src.ID(), ForkOptions{Name: "what-if", Days: 7, Faults: &faults})
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := fk.Wait(); err != nil {
		t.Fatalf("fork failed: %v", err)
	}
	if got := fk.Spec().Days; got != 7 {
		t.Fatalf("fork days = %d, want 7", got)
	}
	srcSeries, fkSeries := src.Series(), fk.Series()
	if got, want := len(fkSeries.Rows), 7; got != want {
		t.Fatalf("fork series has %d rows, want %d", got, want)
	}
	// Epochs [0,2) and [2,4) are grid-equal between a 5-day and a 7-day
	// horizon and must have been copied, so days 0..3 agree exactly.
	for k := 0; k < 4; k++ {
		for j := range srcSeries.Rows[k] {
			if srcSeries.Rows[k][j] != fkSeries.Rows[k][j] {
				t.Errorf("day %d col %d: src %d, fork %d", k, j, srcSeries.Rows[k][j], fkSeries.Rows[k][j])
			}
		}
	}
	if _, final := fk.Aggregate(); !final {
		t.Error("fork aggregate not final after Wait")
	}
}

// TestForkRequiresDataDir pins the in-memory limitation.
func TestForkRequiresDataDir(t *testing.T) {
	c := runToEnd(t, "", tinySpec())
	if _, err := c.mgr.Fork(c.ID(), ForkOptions{}); err == nil {
		t.Fatal("fork of an in-memory campaign succeeded, want error")
	}
}
