// Package profiling wraps runtime/pprof behind two small helpers so every
// CLI can expose identical -pprof-cpu / -pprof-heap flags without
// repeating the file-handling and stop plumbing. Profiles measure the
// simulator itself (real CPU time and heap, not simulated time); they are
// how the "tracing off costs nothing" claim is checked outside the
// benchmarks.
package profiling

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// StartCPU starts a CPU profile written to path and returns the function
// that stops profiling and closes the file. Call stop exactly once before
// the process exits — os.Exit skips defers, so CLIs with early-exit error
// paths must route them through stop.
func StartCPU(path string) (stop func() error, err error) {
	f, err := os.Create(path)
	if err != nil {
		return nil, fmt.Errorf("profiling: %w", err)
	}
	if err := pprof.StartCPUProfile(f); err != nil {
		f.Close()
		return nil, fmt.Errorf("profiling: %w", err)
	}
	return func() error {
		pprof.StopCPUProfile()
		if err := f.Close(); err != nil {
			return fmt.Errorf("profiling: %w", err)
		}
		return nil
	}, nil
}

// WriteHeap writes a heap profile to path. It forces a GC first so the
// profile reflects live objects, not garbage awaiting collection.
func WriteHeap(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	runtime.GC()
	if err := pprof.Lookup("heap").WriteTo(f, 0); err != nil {
		f.Close()
		return fmt.Errorf("profiling: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("profiling: %w", err)
	}
	return nil
}
