package obs

import (
	"fmt"
	"path/filepath"
	"testing"

	"flashwear/internal/hostio"
)

// openFaultJournal opens a journal at path over a FaultFS built from the
// given plan string.
func openFaultJournal(t *testing.T, path, plan string) *Journal {
	t.Helper()
	p, err := hostio.ParsePlan(plan)
	if err != nil {
		t.Fatal(err)
	}
	j, err := OpenJournalFS(hostio.NewFaultFS(hostio.OS{}, p), path)
	if err != nil {
		t.Fatal(err)
	}
	return j
}

// reopenClean reopens the journal file over the real filesystem and
// returns its replayed events — what the next process would adopt.
func reopenClean(t *testing.T, path string) []Event {
	t.Helper()
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("clean reopen: %v", err)
	}
	defer j.Close()
	return j.Events(0)
}

func appendN(t *testing.T, j *Journal, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if _, err := j.Append(Event{Type: "tick", Detail: fmt.Sprintf("n%d", i)}); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
}

func wantContiguous(t *testing.T, events []Event, n int) {
	t.Helper()
	if len(events) != n {
		t.Fatalf("got %d events, want %d", len(events), n)
	}
	for i, e := range events {
		if e.Seq != uint64(i+1) {
			t.Fatalf("event %d has seq %d, want %d", i, e.Seq, i+1)
		}
	}
}

// A Sync that fails mid-frame must not lose the event or poison the
// file: the append parks in the ring, the next append replays it, and a
// clean reopen sees every event contiguously.
func TestJournalSyncFailRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j := openFaultJournal(t, path, "class=journal,fault=eio,on=sync,at=2")
	appendN(t, j, 1)
	if j.Pending() != 0 {
		t.Fatalf("healthy append parked: pending = %d", j.Pending())
	}
	appendN(t, j, 1) // sync #2 fails
	if j.Pending() != 1 {
		t.Fatalf("after failed sync: pending = %d, want 1", j.Pending())
	}
	appendN(t, j, 1) // triggers recovery replay
	if j.Pending() != 0 {
		t.Fatalf("after recovery: pending = %d, want 0", j.Pending())
	}
	fails, recovs := j.PersistStats()
	if fails == 0 || recovs != 1 {
		t.Fatalf("persist stats = (%d fails, %d recoveries)", fails, recovs)
	}
	j.Close()
	wantContiguous(t, reopenClean(t, path), 3)
}

// A torn write leaves partial bytes past the durable prefix; recovery
// must truncate them away before replaying, or the reopened journal
// would find a garbled line.
func TestJournalTornWriteRecovers(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j := openFaultJournal(t, path, "class=journal,fault=torn,on=write,at=2")
	appendN(t, j, 4)
	if j.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 after recovery", j.Pending())
	}
	j.Close()
	wantContiguous(t, reopenClean(t, path), 4)
}

// A persistent failure window parks several events; the first append
// after the window replays them all under one fsync, in order.
func TestJournalRingReplayAfterWindow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j := openFaultJournal(t, path, "class=journal,fault=enospc,on=write,from=2,until=6")
	appendN(t, j, 6)
	if j.Pending() != 0 {
		t.Fatalf("pending = %d, want 0 after the window closed", j.Pending())
	}
	if j.Lost() {
		t.Fatal("journal reported lost; ring should have absorbed the window")
	}
	j.Close()
	wantContiguous(t, reopenClean(t, path), 6)
	// The in-memory log was never affected.
	wantContiguous(t, j.Events(0), 6)
}

// Ring overflow abandons persistence but must leave the on-disk file a
// clean contiguous prefix — never a sequence gap — and keep serving the
// full log from memory.
func TestJournalRingOverflowKeepsCleanPrefix(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j := openFaultJournal(t, path, "class=journal,fault=enospc,on=write,from=2")
	j.RingCap = 2
	appendN(t, j, 8)
	if !j.Lost() {
		t.Fatal("want Lost() after ring overflow")
	}
	// Memory still has everything, contiguous.
	wantContiguous(t, j.Events(0), 8)
	j.Close()
	// Disk has only the durable prefix (event 1), still contiguous and
	// adoptable.
	wantContiguous(t, reopenClean(t, path), 1)
}
