// Package emmc exposes a simulated device through the JEDEC eMMC 5.1
// command transport (JESD84-B51): the host issues CMDs and receives R1
// responses, exactly the path the paper's measurement tooling (`mmc extcsd
// read /dev/mmcblkX`) and the Linux mmc driver use. The full command set is
// not implemented — only the subset a block driver and a health monitor
// need: initialisation, selection, block I/O, trim/erase, status and
// EXT_CSD reads.
package emmc

import (
	"errors"
	"fmt"

	"flashwear/internal/device"
)

// Command indices (JESD84-B51 §6.6).
const (
	CmdGoIdleState       = 0  // CMD0
	CmdSendOpCond        = 1  // CMD1
	CmdAllSendCID        = 2  // CMD2
	CmdSetRelativeAddr   = 3  // CMD3
	CmdSelectCard        = 7  // CMD7
	CmdSendExtCSD        = 8  // CMD8
	CmdSendCSD           = 9  // CMD9
	CmdSendStatus        = 13 // CMD13
	CmdSetBlocklen       = 16 // CMD16
	CmdReadSingleBlock   = 17 // CMD17
	CmdReadMultipleBlock = 18 // CMD18
	CmdSetBlockCount     = 23 // CMD23
	CmdWriteBlock        = 24 // CMD24
	CmdWriteMultipleBlk  = 25 // CMD25
	CmdEraseGroupStart   = 35 // CMD35
	CmdEraseGroupEnd     = 36 // CMD36
	CmdErase             = 38 // CMD38
)

// R1 card status bits (JESD84-B51 §6.13).
const (
	StatusReadyForData   = 1 << 8
	StatusErrorBit       = 1 << 19 // general/unknown error
	StatusIllegalCommand = 1 << 22
	StatusWPViolation    = 1 << 26 // write to a write-protected region
	StatusAddressError   = 1 << 30

	statusStateShift = 9
)

// Card states (CURRENT_STATE field of R1).
const (
	StateIdle  = 0
	StateReady = 1
	StateIdent = 2
	StateStby  = 3
	StateTran  = 4
)

// Errors returned by the controller.
var (
	ErrNotSelected = errors.New("emmc: card not in transfer state")
	ErrIllegal     = errors.New("emmc: illegal command in current state")
	ErrAddress     = errors.New("emmc: address out of range")
)

// TrimArg is the CMD38 argument selecting TRIM instead of erase.
const TrimArg = 0x00000001

// Response is a command response: the R1 status word plus any data phase.
type Response struct {
	R1   uint32
	Data []byte
}

// Stats counts transport activity since creation.
type Stats struct {
	Commands     int64 // commands issued, legal or not
	ExtCSDReads  int64 // CMD8 register reads (health polls)
	BytesRead    int64 // data-phase bytes returned to the host
	BytesWritten int64 // data-phase bytes accepted from the host
}

// Controller is the card-side command state machine wrapped around a
// simulated device.
type Controller struct {
	dev *device.Device

	state      int
	rca        uint16
	blockLen   int
	blockCount int // pending CMD23 count, 0 if none
	eraseStart int64
	eraseEnd   int64
	erasePend  bool

	stats Stats
}

// New wraps a device; the card starts in the idle state, as after power-on.
func New(dev *device.Device) *Controller {
	return &Controller{dev: dev, state: StateIdle, blockLen: 512}
}

// r1 builds a status word for the current state.
func (c *Controller) r1(bits uint32) uint32 {
	return bits | StatusReadyForData | uint32(c.state)<<statusStateShift
}

// Send issues a command without a data phase (or whose data phase is a
// response, like CMD8). Data for writes goes through SendData.
func (c *Controller) Send(cmd uint8, arg uint32) (Response, error) {
	c.stats.Commands++
	switch cmd {
	case CmdGoIdleState:
		c.state = StateIdle
		c.blockCount = 0
		c.erasePend = false
		return Response{R1: c.r1(0)}, nil

	case CmdSendOpCond:
		if c.state != StateIdle {
			return c.illegal()
		}
		c.state = StateReady
		return Response{R1: c.r1(0)}, nil

	case CmdAllSendCID:
		if c.state != StateReady {
			return c.illegal()
		}
		c.state = StateIdent
		return Response{R1: c.r1(0), Data: c.cid()}, nil

	case CmdSetRelativeAddr:
		if c.state != StateIdent {
			return c.illegal()
		}
		c.rca = uint16(arg >> 16)
		c.state = StateStby
		return Response{R1: c.r1(0)}, nil

	case CmdSelectCard:
		if c.state != StateStby || uint16(arg>>16) != c.rca {
			return c.illegal()
		}
		c.state = StateTran
		return Response{R1: c.r1(0)}, nil

	case CmdSendExtCSD:
		if c.state != StateTran {
			return c.illegal()
		}
		c.stats.ExtCSDReads++
		csd := c.dev.ExtCSD()
		return Response{R1: c.r1(0), Data: csd[:]}, nil

	case CmdSendCSD:
		if c.state != StateStby && c.state != StateTran {
			return c.illegal()
		}
		return Response{R1: c.r1(0), Data: c.csd()}, nil

	case CmdSendStatus:
		return Response{R1: c.r1(0)}, nil

	case CmdSetBlocklen:
		if c.state != StateTran || arg == 0 || arg%512 != 0 || arg > 4096 {
			return c.illegal()
		}
		c.blockLen = int(arg)
		return Response{R1: c.r1(0)}, nil

	case CmdSetBlockCount:
		if c.state != StateTran {
			return c.illegal()
		}
		c.blockCount = int(arg & 0xFFFF)
		return Response{R1: c.r1(0)}, nil

	case CmdReadSingleBlock:
		return c.read(arg, 1)

	case CmdReadMultipleBlock:
		n := c.blockCount
		c.blockCount = 0
		if n == 0 {
			n = 1 // open-ended reads are closed immediately in this model
		}
		return c.read(arg, n)

	case CmdEraseGroupStart:
		if c.state != StateTran {
			return c.illegal()
		}
		c.eraseStart = int64(arg) * 512
		c.erasePend = true
		return Response{R1: c.r1(0)}, nil

	case CmdEraseGroupEnd:
		if c.state != StateTran || !c.erasePend {
			return c.illegal()
		}
		c.eraseEnd = int64(arg)*512 + 512
		return Response{R1: c.r1(0)}, nil

	case CmdErase:
		if c.state != StateTran || !c.erasePend || c.eraseEnd <= c.eraseStart {
			return c.illegal()
		}
		c.erasePend = false
		// Both TRIM (arg 1) and erase discard the range in this model.
		_ = arg
		if err := c.dev.Discard(c.eraseStart, c.eraseEnd-c.eraseStart); err != nil {
			return Response{R1: c.r1(StatusAddressError)}, fmt.Errorf("%w: %v", ErrAddress, err)
		}
		return Response{R1: c.r1(0)}, nil

	default:
		return c.illegal()
	}
}

// SendData issues a write command with its data phase (CMD24/CMD25).
func (c *Controller) SendData(cmd uint8, arg uint32, data []byte) (Response, error) {
	c.stats.Commands++
	if c.state != StateTran {
		return c.illegal()
	}
	switch cmd {
	case CmdWriteBlock:
		if len(data) != c.blockLen {
			return c.illegal()
		}
	case CmdWriteMultipleBlk:
		if len(data) == 0 || len(data)%c.blockLen != 0 {
			return c.illegal()
		}
		if n := c.blockCount; n > 0 && len(data) != n*c.blockLen {
			c.blockCount = 0
			return c.illegal()
		}
		c.blockCount = 0
	default:
		return c.illegal()
	}
	off := int64(arg) * 512
	if err := c.dev.WriteAt(data, off); err != nil {
		if errors.Is(err, device.ErrReadOnly) {
			// JEDEC EOL: the part reports the write as a WP violation —
			// the whole device is now permanently write-protected.
			return Response{R1: c.r1(StatusWPViolation)}, fmt.Errorf("emmc: %w", err)
		}
		return Response{R1: c.r1(StatusErrorBit | StatusAddressError)}, fmt.Errorf("%w: %v", ErrAddress, err)
	}
	c.stats.BytesWritten += int64(len(data))
	return Response{R1: c.r1(0)}, nil
}

func (c *Controller) read(arg uint32, blocks int) (Response, error) {
	if c.state != StateTran {
		return c.illegal()
	}
	buf := make([]byte, blocks*c.blockLen)
	off := int64(arg) * 512
	if err := c.dev.ReadAt(buf, off); err != nil {
		return Response{R1: c.r1(StatusErrorBit | StatusAddressError)}, fmt.Errorf("%w: %v", ErrAddress, err)
	}
	c.stats.BytesRead += int64(len(buf))
	return Response{R1: c.r1(0), Data: buf}, nil
}

func (c *Controller) illegal() (Response, error) {
	return Response{R1: c.r1(StatusIllegalCommand)}, ErrIllegal
}

// cid builds a 16-byte card identification register from the profile.
func (c *Controller) cid() []byte {
	cid := make([]byte, 16)
	cid[0] = 0x15 // manufacturer ID (simulated)
	name := c.dev.Profile().Name
	for i := 0; i < 6 && i < len(name); i++ {
		cid[3+i] = name[i]
	}
	return cid
}

// csd builds a 16-byte card-specific data register; only the pieces a
// driver actually parses (capacity comes from EXT_CSD SEC_COUNT for
// high-capacity cards) are meaningful.
func (c *Controller) csd() []byte {
	csd := make([]byte, 16)
	csd[0] = 0x90 // CSD_STRUCTURE v1.2, spec vers 4.x+
	return csd
}

// Init performs the standard bus initialisation handshake a host driver
// runs at boot: CMD0, CMD1, CMD2, CMD3, CMD7. After Init the card is in the
// transfer state and ready for block I/O.
func (c *Controller) Init(rca uint16) error {
	seq := []struct {
		cmd uint8
		arg uint32
	}{
		{CmdGoIdleState, 0},
		{CmdSendOpCond, 0x40FF8080},
		{CmdAllSendCID, 0},
		{CmdSetRelativeAddr, uint32(rca) << 16},
		{CmdSelectCard, uint32(rca) << 16},
	}
	for _, s := range seq {
		if _, err := c.Send(s.cmd, s.arg); err != nil {
			return fmt.Errorf("emmc: init CMD%d: %w", s.cmd, err)
		}
	}
	return nil
}

// State returns the card's current state (for tests and diagnostics).
func (c *Controller) State() int { return c.state }

// Stats returns a snapshot of transport counters.
func (c *Controller) Stats() Stats { return c.stats }
