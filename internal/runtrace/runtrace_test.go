package runtrace

import (
	"bytes"
	"context"
	"encoding/json"
	"runtime/pprof"
	"strings"
	"sync"
	"testing"
	"time"

	"flashwear/internal/obs"
)

func TestNilTracerIsInert(t *testing.T) {
	var tr *Tracer
	sp := tr.Begin(PhaseSimulate, 0, 0, 0)
	sp.End() // must not panic
}

func TestTotalsAndObserverAlwaysOn(t *testing.T) {
	var mu sync.Mutex
	seen := map[Phase]int{}
	tr := New(16, func(p Phase, s float64) {
		mu.Lock()
		seen[p]++
		mu.Unlock()
		if s < 0 {
			t.Errorf("negative observed duration %v", s)
		}
	})
	// Recording is OFF: totals and observer must still fire.
	for i := 0; i < 3; i++ {
		sp := tr.Begin(PhaseJournal, -1, 7, -1)
		sp.End()
	}
	tot := tr.Totals()
	if tot[PhaseJournal].Count != 3 {
		t.Fatalf("journal count = %d, want 3", tot[PhaseJournal].Count)
	}
	if seen[PhaseJournal] != 3 {
		t.Fatalf("observer fired %d times, want 3", seen[PhaseJournal])
	}
	if tr.SpanCount() != 0 {
		t.Fatalf("spans buffered while not recording: %d", tr.SpanCount())
	}
}

func TestRecordingWindowAndCap(t *testing.T) {
	tr := New(4, nil)
	tr.StartRecording()
	if !tr.Recording() {
		t.Fatal("Recording() = false after StartRecording")
	}
	for i := 0; i < 6; i++ {
		tr.Begin(PhaseSimulate, 1, 2, i).End()
	}
	tr.StopRecording()
	if got := tr.SpanCount(); got != 4 {
		t.Fatalf("SpanCount = %d, want cap 4", got)
	}
	if got := tr.Dropped(); got != 2 {
		t.Fatalf("Dropped = %d, want 2", got)
	}
	// A new window clears the buffer and the drop counter.
	tr.StartRecording()
	if tr.SpanCount() != 0 || tr.Dropped() != 0 {
		t.Fatalf("StartRecording did not reset: %d spans, %d dropped", tr.SpanCount(), tr.Dropped())
	}
	// Spans still count toward totals even when the buffer overflowed.
	if tot := tr.Totals(); tot[PhaseSimulate].Count != 6 {
		t.Fatalf("simulate total count = %d, want 6", tot[PhaseSimulate].Count)
	}
}

// chromeDoc mirrors just enough of the trace-event format to validate.
type chromeDoc struct {
	DisplayTimeUnit string `json:"displayTimeUnit"`
	TraceEvents     []struct {
		Name string `json:"name"`
		Ph   string `json:"ph"`
		Pid  int    `json:"pid"`
		Tid  int    `json:"tid"`
		Ts   int64  `json:"ts"`
		Dur  int64  `json:"dur"`
		Args struct {
			Name   string `json:"name"`
			Epoch  *int   `json:"epoch"`
			Device *int   `json:"device"`
		} `json:"args"`
	} `json:"traceEvents"`
}

func TestWriteChromeIsValidJSON(t *testing.T) {
	tr := New(0, nil)
	tr.StartRecording()
	sp := tr.Begin(PhaseSimulate, 0, 3, 11)
	time.Sleep(2 * time.Millisecond)
	sp.End()
	tr.Begin(PhaseAggregate, -1, 3, -1).End()
	tr.StopRecording()

	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	var doc chromeDoc
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("WriteChrome produced invalid JSON: %v\n%s", err, buf.String())
	}
	var spans, metas int
	var simDur int64
	procs := map[int]string{}
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "M":
			metas++
			if e.Name == "process_name" {
				procs[e.Pid] = e.Args.Name
			}
		case "X":
			spans++
			if e.Ts < 0 || e.Dur < 0 {
				t.Errorf("negative ts/dur in span %+v", e)
			}
			if e.Name == "simulate" {
				simDur = e.Dur
				if e.Args.Device == nil || *e.Args.Device != 11 {
					t.Errorf("simulate span missing device arg: %+v", e)
				}
			}
			if e.Name == "aggregate" && e.Args.Device != nil {
				t.Errorf("campaign-level span should omit device arg: %+v", e)
			}
		}
	}
	if spans != 2 {
		t.Fatalf("got %d 'X' spans, want 2", spans)
	}
	if simDur < 1000 {
		t.Fatalf("simulate dur = %dµs, want >= 1000 (slept 2ms)", simDur)
	}
	if procs[pidCampaign] != "campaign" {
		t.Fatalf("pid %d named %q, want campaign", pidCampaign, procs[pidCampaign])
	}
	if procs[pidShard0] != "shard 0" {
		t.Fatalf("pid %d named %q, want 'shard 0'", pidShard0, procs[pidShard0])
	}
	if metas == 0 {
		t.Fatal("no metadata events")
	}
}

func TestConcurrentSpans(t *testing.T) {
	tr := New(1024, func(Phase, float64) {})
	tr.StartRecording()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				tr.Begin(Phase(i%int(NumPhases)), g, i, i).End()
			}
		}(g)
	}
	wg.Wait()
	tr.StopRecording()
	if got := tr.SpanCount(); got != 400 {
		t.Fatalf("SpanCount = %d, want 400", got)
	}
	var n int64
	for _, pt := range tr.Totals() {
		n += pt.Count
	}
	if n != 400 {
		t.Fatalf("total count = %d, want 400", n)
	}
	var buf bytes.Buffer
	if err := tr.WriteChrome(&buf); err != nil {
		t.Fatal(err)
	}
	if !json.Valid(buf.Bytes()) {
		t.Fatal("concurrent trace not valid JSON")
	}
}

func TestDoAttachesPprofLabels(t *testing.T) {
	var shard, phase string
	Do(context.Background(), func(ctx context.Context) {
		pprof.ForLabels(ctx, func(k, v string) bool {
			switch k {
			case "shard":
				shard = v
			case "phase":
				phase = v
			}
			return true
		})
	}, "shard", "3", "phase", PhaseSimulate.String())
	if shard != "3" || phase != "simulate" {
		t.Fatalf("labels = shard %q phase %q", shard, phase)
	}
}

func TestRuntimeGaugesRender(t *testing.T) {
	reg := obs.NewRegistry()
	RegisterRuntimeGauges(reg, "fleetd")
	var buf bytes.Buffer
	if err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, fam := range []string{
		"fleetd_runtime_goroutines",
		"fleetd_runtime_heap_alloc_bytes",
		"fleetd_runtime_heap_sys_bytes",
		"fleetd_runtime_gc_pause_seconds_total",
		"fleetd_runtime_gc_cycles_total",
	} {
		if !strings.Contains(out, "# HELP "+fam+" ") ||
			!strings.Contains(out, "# TYPE "+fam+" gauge") ||
			!strings.Contains(out, "\n"+fam+" ") {
			t.Errorf("family %s missing or malformed in:\n%s", fam, out)
		}
	}
}

func TestPhaseStrings(t *testing.T) {
	want := []string{"simulate", "checkpoint_encode", "checkpoint_fsync", "journal", "aggregate", "alert_eval"}
	for p := Phase(0); p < NumPhases; p++ {
		if p.String() != want[p] {
			t.Errorf("Phase(%d).String() = %q, want %q", p, p.String(), want[p])
		}
	}
	if Phase(200).String() != "unknown" {
		t.Errorf("out-of-range phase = %q", Phase(200).String())
	}
}
