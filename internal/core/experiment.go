package core

import (
	"errors"
	"fmt"
	"time"

	"flashwear/internal/device"
	"flashwear/internal/ftl"
	"flashwear/internal/simclock"
)

// Increment records one wear-indicator step — one row of Figure 2/4 or
// Table 1. Volumes and times are reported at full device scale even when
// the simulation ran on a scaled-down profile.
type Increment struct {
	Pool      ftl.PoolID
	FromLevel int
	ToLevel   int
	HostGiB   float64 // host bytes written while moving between the levels
	Hours     float64 // simulated time the increment took
	Pattern   string  // workload label active during the increment
	SpaceUtil float64 // utilisation phase active during the increment
}

// String renders a Table 1-style row.
func (inc Increment) String() string {
	return fmt.Sprintf("%-7s %d-%d  %9.2f GiB  %8.2f h  %-22s %3.0f%%",
		inc.Pool, inc.FromLevel, inc.ToLevel, inc.HostGiB, inc.Hours, inc.Pattern, inc.SpaceUtil*100)
}

// RunReport is the outcome of a wear run.
type RunReport struct {
	DeviceName string
	Scale      int64
	Increments []Increment
	// TotalHostGiB is the full-scale host volume written in the run.
	TotalHostGiB float64
	// TotalHours is the full-scale simulated duration of the run.
	TotalHours float64
	// Bricked reports whether the run ended in device failure.
	Bricked bool
	// FinalWA is the device's cumulative write amplification.
	FinalWA float64
}

// IncrementsFor filters the report's increments by pool.
func (r RunReport) IncrementsFor(pool ftl.PoolID) []Increment {
	var out []Increment
	for _, inc := range r.Increments {
		if inc.Pool == pool {
			out = append(out, inc)
		}
	}
	return out
}

// MeanHostGiBPerIncrement averages host volume per increment for a pool —
// the quantity Figure 2 plots.
func (r RunReport) MeanHostGiBPerIncrement(pool ftl.PoolID) float64 {
	incs := r.IncrementsFor(pool)
	if len(incs) == 0 {
		return 0
	}
	var sum float64
	for _, inc := range incs {
		sum += inc.HostGiB
	}
	return sum / float64(len(incs))
}

// StepFunc writes approximately budget bytes of workload, returning the
// bytes written. It is how the runner stays agnostic of raw-device vs
// file-system workloads.
type StepFunc func(budget int64) (int64, error)

// Runner drives a workload against a device while watching the JEDEC wear
// indicators, emitting an Increment per level change — the §4.3
// measurement loop.
type Runner struct {
	Dev   *device.Device
	Clock *simclock.Clock
	// Scale is the profile's capacity divisor; volumes and times are
	// multiplied back by it. Zero means 1.
	Scale int64
	// StepBytes is the workload granularity between indicator polls.
	// Zero means 4 MiB.
	StepBytes int64
	// Pattern and SpaceUtil label emitted increments (Table 1 columns).
	Pattern   string
	SpaceUtil float64

	started      bool
	lastA, lastB int
	bytesAtMark  map[ftl.PoolID]int64
	timeAtMark   map[ftl.PoolID]time.Duration
	hostBytes    int64
	startTime    time.Duration
	report       RunReport
}

// NewRunner builds a runner for a device.
func NewRunner(dev *device.Device, clock *simclock.Clock, scale int64) *Runner {
	if scale <= 0 {
		scale = 1
	}
	return &Runner{
		Dev: dev, Clock: clock, Scale: scale,
		bytesAtMark: make(map[ftl.PoolID]int64),
		timeAtMark:  make(map[ftl.PoolID]time.Duration),
	}
}

func (r *Runner) init() {
	if r.started {
		return
	}
	r.started = true
	if r.StepBytes == 0 {
		r.StepBytes = 4 << 20
	}
	r.report.DeviceName = r.Dev.Profile().Name
	r.report.Scale = r.Scale
	// Baseline from the FTL (ground truth), not the possibly-garbage
	// register, so the methodology works on BLU-class devices too.
	r.lastA = r.Dev.FTL().WearIndicator(ftl.PoolA)
	r.lastB = r.Dev.FTL().WearIndicator(ftl.PoolB)
	r.startTime = r.Clock.Now()
	for _, p := range []ftl.PoolID{ftl.PoolA, ftl.PoolB} {
		r.bytesAtMark[p] = 0
		r.timeAtMark[p] = r.startTime
	}
}

// gib converts bytes at simulation scale to full-scale GiB.
func (r *Runner) gib(b int64) float64 {
	return float64(b) * float64(r.Scale) / float64(1<<30)
}

// hours converts a simulated duration to full-scale hours.
func (r *Runner) hours(d time.Duration) float64 {
	return d.Hours() * float64(r.Scale)
}

// poll checks both indicators, recording increments.
func (r *Runner) poll() {
	f := r.Dev.FTL()
	now := r.Clock.Now()
	if b := f.WearIndicator(ftl.PoolB); b > r.lastB {
		r.report.Increments = append(r.report.Increments, Increment{
			Pool: ftl.PoolB, FromLevel: r.lastB, ToLevel: b,
			HostGiB:   r.gib(r.hostBytes - r.bytesAtMark[ftl.PoolB]),
			Hours:     r.hours(now - r.timeAtMark[ftl.PoolB]),
			Pattern:   r.Pattern,
			SpaceUtil: r.SpaceUtil,
		})
		r.lastB = b
		r.bytesAtMark[ftl.PoolB] = r.hostBytes
		r.timeAtMark[ftl.PoolB] = now
	}
	if f.CacheChip() == nil {
		return
	}
	if a := f.WearIndicator(ftl.PoolA); a > r.lastA {
		r.report.Increments = append(r.report.Increments, Increment{
			Pool: ftl.PoolA, FromLevel: r.lastA, ToLevel: a,
			HostGiB:   r.gib(r.hostBytes - r.bytesAtMark[ftl.PoolA]),
			Hours:     r.hours(now - r.timeAtMark[ftl.PoolA]),
			Pattern:   r.Pattern,
			SpaceUtil: r.SpaceUtil,
		})
		r.lastA = a
		r.bytesAtMark[ftl.PoolA] = r.hostBytes
		r.timeAtMark[ftl.PoolA] = now
	}
}

// RunPhase drives step until stop returns true, the device bricks, or the
// phase writes maxHostBytes (at simulation scale; 0 = unlimited).
func (r *Runner) RunPhase(step StepFunc, maxHostBytes int64, stop func() bool) error {
	r.init()
	var phaseBytes int64
	for {
		if stop != nil && stop() {
			return nil
		}
		if maxHostBytes > 0 && phaseBytes >= maxHostBytes {
			return nil
		}
		n, err := step(r.StepBytes)
		r.hostBytes += n
		phaseBytes += n
		r.poll()
		if err != nil {
			// A device that can no longer accept writes — whether hard
			// bricked or retired into read-only EOL mode — or that throws
			// uncorrectable read errors on the host path — is finished:
			// §4.3's indicator level 11 is defined as "may introduce
			// uncorrectable errors ... considered unreliable".
			if errors.Is(err, device.ErrBricked) || errors.Is(err, ftl.ErrBricked) ||
				errors.Is(err, device.ErrReadOnly) || errors.Is(err, ftl.ErrReadOnly) ||
				errors.Is(err, ftl.ErrUnreadable) {
				r.report.Bricked = true
				return nil
			}
			return err
		}
	}
}

// UntilLevel returns a stop condition: pool's indicator reached level.
func (r *Runner) UntilLevel(pool ftl.PoolID, level int) func() bool {
	return func() bool {
		if pool == ftl.PoolA {
			return r.lastA >= level
		}
		return r.lastB >= level
	}
}

// Report finalises and returns the run report.
func (r *Runner) Report() RunReport {
	r.init()
	r.report.TotalHostGiB = r.gib(r.hostBytes)
	r.report.TotalHours = r.hours(r.Clock.Now() - r.startTime)
	r.report.FinalWA = r.Dev.FTL().WriteAmplification()
	r.report.Bricked = r.report.Bricked || r.Dev.Failed()
	return r.report
}
