package device

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"flashwear/internal/blockdev"
	"flashwear/internal/faultinject"
	"flashwear/internal/ftl"
	"flashwear/internal/nand"
	"flashwear/internal/simclock"
	"flashwear/internal/wtrace"
)

// ErrBricked is returned once the device has failed permanently.
var ErrBricked = errors.New("device: bricked")

// ErrReadOnly is returned for writes once the device has retired into
// JEDEC-style read-only end-of-life mode; reads still succeed.
var ErrReadOnly = errors.New("device: read-only (end of life)")

// ErrPowerLoss is returned after a simulated power cut until PowerCycle
// remounts the device.
var ErrPowerLoss = errors.New("device: power lost")

// Device is a complete simulated storage device: FTL + chips + controller
// timing. It implements blockdev.Device and advances the simulated clock by
// each request's service time, so elapsed simulated time divided into bytes
// moved gives the bandwidths of Figure 1 and the hours of Figure 3/Table 1.
type Device struct {
	prof  Profile
	f     *ftl.FTL
	clock *simclock.Clock
	rng   *rand.Rand
	inj   *faultinject.Injector // nil unless the profile carries a fault plan

	pageSize int
	sector   int
	busy     time.Duration

	// Block-mapped (MicroSD) append tracking per allocation unit.
	auAppend map[int64]int64

	// tr is the optional wear-attribution tracer (nil = tracing off).
	tr *wtrace.Tracer

	bytesWritten int64
	bytesRead    int64
	extCSDReads  int64
}

// New builds a device from a profile on the given clock.
func New(prof Profile, clock *simclock.Clock) (*Device, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	if clock == nil {
		clock = simclock.New()
	}
	now := clock.Now
	mainCfg := nand.Config{
		Geometry: prof.geometry(prof.CapacityBytes),
		Cell:     prof.Cell,
		RatedPE:  prof.RatedPE,
		Seed:     prof.Seed,
		Now:      now,
	}
	t := prof.timing()
	mainCfg.Timing = &t
	if prof.HealPerIdleHour > 0 {
		em := nand.DefaultErrorModel()
		em.HealPerIdleHour = prof.HealPerIdleHour
		mainCfg.Errors = &em
	}
	// One injector spans every chip in the package: the op counter and
	// the power rail are per-device, not per-die.
	var inj *faultinject.Injector
	if prof.Faults != nil && !prof.Faults.Empty() {
		inj = faultinject.New(*prof.Faults, now)
		mainCfg.Inject = inj
	}
	fcfg := ftl.Config{
		MainChip:        mainCfg,
		OverProvision:   prof.OverProvision,
		FirmwareRatedPE: prof.FirmwareRatedPE,
		BrickAtEOL:      prof.BrickAtEOL,
	}
	if !prof.WearLeveling {
		fcfg.Wear = &ftl.WearLeveling{Dynamic: false, Static: false, StaticThreshold: 1 << 30, StaticInterval: 1 << 30}
	}
	if prof.Hybrid != nil {
		h := prof.Hybrid
		cacheTiming := nand.DefaultTiming(nand.SLC)
		fcfg.Hybrid = &ftl.HybridConfig{
			CacheChip: nand.Config{
				Geometry: cacheGeometry(prof, h.CacheBytes),
				Cell:     nand.SLC,
				RatedPE:  h.CacheRatedPE,
				Seed:     prof.Seed + 1,
				Now:      now,
				Timing:   &cacheTiming,
			},
			RouteMaxBytes:    h.RouteMaxBytes,
			DrainRatio:       h.DrainRatio,
			MergeUtilisation: h.MergeUtilisation,
		}
		if inj != nil {
			fcfg.Hybrid.CacheChip.Inject = inj
		}
	}
	f, err := ftl.New(fcfg)
	if err != nil {
		return nil, fmt.Errorf("device %s: %w", prof.Name, err)
	}
	return &Device{
		prof:     prof,
		f:        f,
		clock:    clock,
		rng:      rand.New(rand.NewSource(prof.Seed + 7)),
		inj:      inj,
		pageSize: f.PageSize(),
		sector:   512,
		auAppend: make(map[int64]int64),
	}, nil
}

// cacheGeometry derives the Type A chip geometry.
func cacheGeometry(p Profile, capBytes int64) nand.Geometry {
	blockBytes := int64(p.PageSize) * int64(p.PagesPerBlock)
	blocks := int(capBytes / blockBytes)
	if blocks < 4 {
		blocks = 4
	}
	return nand.Geometry{
		Dies: 1, PlanesPerDie: 1, BlocksPerPlane: blocks,
		PagesPerBlock: p.PagesPerBlock, PageSize: p.PageSize, SpareSize: p.PageSize / 32,
	}
}

// Profile returns the device's profile.
func (d *Device) Profile() Profile { return d.prof }

// FTL exposes the translation layer for wear inspection.
func (d *Device) FTL() *ftl.FTL { return d.f }

// Clock returns the device's simulated clock.
func (d *Device) Clock() *simclock.Clock { return d.clock }

// EnableWearTrace attaches a wear-attribution tracer to the device stack
// (nil detaches). Like telemetry, it should attach at device birth —
// before mkfs — so attribution state starts alongside the flash state.
// The tracer's event clock is wired to the device's simulated clock.
func (d *Device) EnableWearTrace(tr *wtrace.Tracer) {
	d.tr = tr
	if tr != nil {
		tr.Now = d.clock.Now
	}
	d.f.SetTracer(tr)
}

// WearTracer returns the attached tracer, or nil.
func (d *Device) WearTracer() *wtrace.Tracer { return d.tr }

// Size implements blockdev.Device; it reports the exported capacity.
func (d *Device) Size() int64 { return d.f.Capacity() }

// SectorSize implements blockdev.Device.
func (d *Device) SectorSize() int { return d.sector }

// Bricked reports whether the device has failed permanently.
func (d *Device) Bricked() bool { return d.f.Bricked() }

// ReadOnly reports whether the device has retired into read-only EOL mode.
func (d *Device) ReadOnly() bool { return d.f.ReadOnly() }

// Failed reports whether the device can no longer accept writes, whether
// by graceful read-only retirement or a hard brick.
func (d *Device) Failed() bool { return d.f.Failed() }

// PowerLost reports whether the device is sitting unpowered after a cut.
func (d *Device) PowerLost() bool { return d.f.PowerLost() }

// Injector exposes the fault injector, or nil when no plan is attached.
func (d *Device) Injector() *faultinject.Injector { return d.inj }

// CutPower drops the device's power between operations: any fault plan's
// injector latches down, and every volatile FTL structure is garbage until
// PowerCycle. Works with or without a fault plan.
func (d *Device) CutPower() {
	if d.inj != nil {
		d.inj.CutNow()
	}
	d.f.CutPower()
}

// PowerCycle restores power and remounts: the FTL rebuilds its mapping
// from per-page OOB metadata, and controller-volatile state (the MicroSD
// append trackers) resets. The recovery scan's flash reads advance the
// simulated clock like any other work.
func (d *Device) PowerCycle() error {
	if d.inj != nil {
		d.inj.PowerRestored()
	}
	cost, err := d.f.Recover()
	d.advance(cost, 0)
	d.auAppend = make(map[int64]int64)
	return err
}

// mapErr translates FTL failure modes into the device-level errors,
// keeping the cause wrapped so errors.Is finds both layers.
func (d *Device) mapErr(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, ftl.ErrBricked):
		return fmt.Errorf("%w: %s: %w", ErrBricked, d.prof.Name, err)
	case errors.Is(err, ftl.ErrReadOnly):
		return fmt.Errorf("%w: %s: %w", ErrReadOnly, d.prof.Name, err)
	case errors.Is(err, ftl.ErrPowerLoss):
		return fmt.Errorf("%w: %s: %w", ErrPowerLoss, d.prof.Name, err)
	}
	return err
}

// BytesWritten returns total host bytes written to the device.
func (d *Device) BytesWritten() int64 { return d.bytesWritten }

// BytesRead returns total host bytes read.
func (d *Device) BytesRead() int64 { return d.bytesRead }

// BusyTime returns the cumulative service time of all requests.
func (d *Device) BusyTime() time.Duration { return d.busy }

// RestoreCounters overwrites the device's cumulative I/O counters — the
// checkpoint-resume path re-creates the device stack from chip state, and
// the fresh stack must keep reporting lifetime totals, not totals since
// the resume.
func (d *Device) RestoreCounters(bytesWritten, bytesRead int64, busy time.Duration) {
	d.bytesWritten = bytesWritten
	d.bytesRead = bytesRead
	d.busy = busy
}

// WearIndicator reads the JEDEC life-time estimate register for a pool. On
// profiles flagged UnreliableIndicator (the BLU phones) it returns an
// arbitrary stuck-or-garbage value, like the real parts did.
func (d *Device) WearIndicator(pool ftl.PoolID) int {
	if d.prof.UnreliableIndicator {
		// Garbage: some parts return 0, some a random constant.
		return int(d.rng.Int31n(13)) // 0..12, often out of spec
	}
	return d.f.WearIndicator(pool)
}

// PreEOLInfo reads the JEDEC PRE_EOL_INFO register (1=normal, 2=warning,
// 3=urgent), subject to the same unreliability flag.
func (d *Device) PreEOLInfo() int {
	if d.prof.UnreliableIndicator {
		return 0 // out-of-spec "not defined"
	}
	return d.f.PreEOLInfo()
}

// serviceTime converts raw flash work plus a transfer into request latency.
// Sustained pipelining spreads page operations across the controller's
// parallel planes, and the host transfer overlaps the flash work (the
// controller streams into its page buffers), so the slower of the two
// dominates — which is what lets Figure 1's curves plateau at
// min(interface, array) bandwidth.
func (d *Device) serviceTime(cost ftl.Cost, transfer int64) time.Duration {
	t := d.prof.timing()
	w := time.Duration(d.prof.Parallelism)
	xfer := time.Duration(float64(transfer) / (d.prof.InterfaceMBps * 1e6) * float64(time.Second))
	flash := time.Duration(cost.Programs)*t.ProgramPage/w +
		time.Duration(cost.Reads)*t.ReadPage/w +
		time.Duration(cost.Erases)*t.EraseBlock/w
	svc := d.prof.CmdOverhead
	if xfer > flash {
		svc += xfer
	} else {
		svc += flash
	}
	return svc
}

func (d *Device) advance(cost ftl.Cost, transfer int64) {
	svc := d.serviceTime(cost, transfer)
	d.busy += svc
	d.clock.Advance(svc)
}

// pageRange returns the first page, last page (inclusive) of a byte range.
func (d *Device) pageRange(off, length int64) (first, last int64) {
	return off / int64(d.pageSize), (off + length - 1) / int64(d.pageSize)
}

// ReadAt implements blockdev.Device.
func (d *Device) ReadAt(p []byte, off int64) error {
	if err := blockdev.CheckRange(d, off, int64(len(p))); err != nil {
		return err
	}
	if len(p) == 0 {
		return nil
	}
	var total ftl.Cost
	first, last := d.pageRange(off, int64(len(p)))
	for pg := first; pg <= last; pg++ {
		data, cost, err := d.f.ReadPage(int(pg))
		total.Add(cost)
		if err != nil {
			d.advance(total, 0)
			return d.mapErr(err)
		}
		pageStart := pg * int64(d.pageSize)
		from := max64(off, pageStart)
		to := min64(off+int64(len(p)), pageStart+int64(d.pageSize))
		dst := p[from-off : to-off]
		if data == nil {
			clear(dst)
		} else {
			copy(dst, data[from-pageStart:to-pageStart])
		}
	}
	d.bytesRead += int64(len(p))
	d.advance(total, int64(len(p)))
	return nil
}

// WriteAt implements blockdev.Device.
func (d *Device) WriteAt(p []byte, off int64) error {
	return d.write(off, int64(len(p)), p)
}

// WriteAccounted implements blockdev.Device.
func (d *Device) WriteAccounted(off, length int64) error {
	return d.write(off, length, nil)
}

func (d *Device) write(off, length int64, payload []byte) error {
	if err := blockdev.CheckRange(d, off, length); err != nil {
		return err
	}
	if length == 0 {
		return nil
	}
	switch {
	case d.f.Bricked():
		return fmt.Errorf("%w: %s", ErrBricked, d.prof.Name)
	case d.f.ReadOnly():
		return fmt.Errorf("%w: %s", ErrReadOnly, d.prof.Name)
	}
	var total ftl.Cost
	// Block-mapped MicroSD penalty: a write that is not appending within
	// its allocation unit costs a whole-AU copy (read+program of every
	// page in the AU). This is controller time, not array wear, and it is
	// why Figure 1b's uSD random-write curve collapses.
	if d.prof.AllocationUnit > 0 {
		total.Add(d.usdPenalty(off, length))
	}

	var evStart time.Duration
	if d.tr != nil && d.tr.EventsEnabled() {
		evStart = d.clock.Now()
	}
	reqBytes := int(length)
	first, last := d.pageRange(off, length)
	for pg := first; pg <= last; pg++ {
		pageStart := pg * int64(d.pageSize)
		from := max64(off, pageStart)
		to := min64(off+length, pageStart+int64(d.pageSize))
		full := from == pageStart && to == pageStart+int64(d.pageSize)

		var data []byte
		if !full {
			// Read-modify-write of a partial page.
			old, cost, err := d.f.ReadPage(int(pg))
			total.Add(cost)
			if err != nil {
				d.advance(total, 0)
				return d.mapErr(err)
			}
			if payload != nil {
				data = make([]byte, d.pageSize)
				if old != nil {
					copy(data, old)
				}
				copy(data[from-pageStart:], payload[from-off:to-off])
			}
		} else if payload != nil {
			data = payload[from-off : to-off]
		}
		cost, err := d.f.WritePage(int(pg), data, reqBytes)
		total.Add(cost)
		if err != nil {
			d.advance(total, 0)
			return d.mapErr(err)
		}
	}
	d.bytesWritten += length
	d.advance(total, length)
	if d.tr != nil {
		d.tr.EventHostWrite(off, length, evStart, d.clock.Now()-evStart)
	}
	return nil
}

// usdPenalty models the SD controller's allocation-unit copy for
// non-appending writes. It returns extra (time-only) cost.
func (d *Device) usdPenalty(off, length int64) ftl.Cost {
	au := d.prof.AllocationUnit
	var extra ftl.Cost
	auPages := int(au / int64(d.pageSize))
	for cur := off; cur < off+length; {
		auIdx := cur / au
		expect, seen := d.auAppend[auIdx]
		if !seen {
			expect = auIdx * au // fresh AU: appending from its start
		}
		end := min64((auIdx+1)*au, off+length)
		if cur != expect {
			extra.Reads += auPages
			extra.Programs += auPages
		}
		d.auAppend[auIdx] = end
		cur = end
	}
	return extra
}

// Discard implements blockdev.Device.
func (d *Device) Discard(off, length int64) error {
	if err := blockdev.CheckRange(d, off, length); err != nil {
		return err
	}
	var total ftl.Cost
	first, last := d.pageRange(off, length)
	for pg := first; pg <= last; pg++ {
		pageStart := pg * int64(d.pageSize)
		if pageStart < off || pageStart+int64(d.pageSize) > off+length {
			continue // partial pages are not discarded
		}
		cost, err := d.f.TrimPage(int(pg))
		total.Add(cost)
		if err != nil {
			d.advance(total, 0)
			return d.mapErr(err)
		}
	}
	d.advance(total, 0)
	return nil
}

// Sanitize performs a whole-device secure erase — the factory-reset path.
// It consumes one P/E cycle per block and, per the paper's argument about
// permanently-consumable resources, restores none of the device's life.
func (d *Device) Sanitize() error {
	cost, err := d.f.Sanitize()
	d.advance(cost, 0)
	d.auAppend = make(map[int64]int64)
	return d.mapErr(err)
}

// Flush implements blockdev.Device.
func (d *Device) Flush() error {
	cost, err := d.f.Flush()
	d.advance(cost, 0)
	return d.mapErr(err)
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
