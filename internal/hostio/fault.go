package hostio

import (
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"os"
	"strconv"
	"strings"
	"sync"
)

// Injected fault sentinels. Callers distinguish "the disk is full" from
// "the disk is lying" the same way they would with real errno values:
// errors.Is. Both are transient by construction — the whole point of the
// torture suite is that retry/degrade machinery must eventually succeed
// once the plan stops firing.
var (
	// ErrInjectedNoSpace is the injected ENOSPC.
	ErrInjectedNoSpace = errors.New("hostio: injected fault: no space left on device")
	// ErrInjectedIO is the injected EIO (also used for torn writes and
	// failed renames).
	ErrInjectedIO = errors.New("hostio: injected fault: input/output error")
)

// IsInjected reports whether err came from a FaultFS.
func IsInjected(err error) bool {
	return errors.Is(err, ErrInjectedNoSpace) || errors.Is(err, ErrInjectedIO)
}

// Fault kinds.
const (
	FaultNoSpace = "enospc" // the op fails with ErrInjectedNoSpace, nothing written
	FaultIO      = "eio"    // the op fails with ErrInjectedIO, nothing written
	FaultTorn    = "torn"   // write only: half the buffer lands, then ErrInjectedIO
)

// Ops a clause can target.
const (
	OpWrite  = "write"
	OpSync   = "sync"
	OpCreate = "create"
	OpRename = "rename"
	OpRemove = "remove"
)

// Clause is one fault rule: inject Fault on Op for paths in Class when a
// trigger matches. Triggers combine with OR; the operation index they
// test is the 1-based count of ops of the clause's kind in the clause's
// class (or across all classes for ClassAll), so "at=3,on=write,
// class=checkpoint" means exactly the 3rd checkpoint write, no matter
// what creates, syncs, or journal traffic happen in between.
type Clause struct {
	Class string  // checkpoint, journal, spec, other, or all (default all)
	Fault string  // enospc, eio, torn
	On    string  // write, sync, create, rename, remove (default write)
	At    []int64 // fire at these exact op indexes
	Every int64   // fire every N ops (0 = off)
	From  int64   // fire for all ops with index >= From ...
	Until int64   // ... and < Until (0 = unbounded): the persistent-failure window
	Prob  float64 // fire with this probability (seeded, deterministic per op sequence)
}

// Plan is a declarative host-fault schedule: a seed plus fault clauses.
// The zero value injects nothing. Like faultinject.Plan it is pure
// specification — parseable from a CLI flag, embeddable in a test table.
type Plan struct {
	Seed    int64
	Clauses []Clause
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool { return len(p.Clauses) == 0 }

// Validate reports the first invalid clause.
func (p Plan) Validate() error {
	for i, c := range p.Clauses {
		at := func(format string, args ...any) error {
			return fmt.Errorf("hostio: clause %d: %s", i+1, fmt.Sprintf(format, args...))
		}
		switch c.Class {
		case ClassCheckpoint, ClassJournal, ClassSpec, ClassOther, ClassAll:
		default:
			return at("class %q (want checkpoint, journal, spec, other, all)", c.Class)
		}
		switch c.Fault {
		case FaultNoSpace, FaultIO, FaultTorn:
		default:
			return at("fault %q (want enospc, eio, torn)", c.Fault)
		}
		switch c.On {
		case OpWrite, OpSync, OpCreate, OpRename, OpRemove:
		default:
			return at("on %q (want write, sync, create, rename, remove)", c.On)
		}
		if c.Fault == FaultTorn && c.On != OpWrite {
			return at("fault torn requires on=write (got on=%s)", c.On)
		}
		// Inverted so NaN (false against every bound) is rejected too.
		if !(c.Prob >= 0 && c.Prob <= 1) {
			return at("p = %g, want [0,1]", c.Prob)
		}
		for _, n := range c.At {
			if n <= 0 {
				return at("at entry %d, want > 0", n)
			}
		}
		if c.Every < 0 {
			return at("every = %d, want >= 0", c.Every)
		}
		if c.From < 0 || c.Until < 0 {
			return at("from/until must be >= 0")
		}
		if c.Until > 0 && c.Until <= c.From {
			return at("until = %d <= from = %d (empty window)", c.Until, c.From)
		}
		if len(c.At) == 0 && c.Every == 0 && c.From == 0 && c.Until == 0 && c.Prob == 0 {
			return at("no trigger (want at, every, from/until, or p)")
		}
	}
	return nil
}

// ParsePlan parses the CLI flag syntax, the faultinject.ParsePlan grammar
// one level up: '|'-separated clauses of comma-separated key=value pairs
// with ';'-separated lists, e.g.
//
//	class=checkpoint,fault=enospc,on=write,from=3,until=40
//	class=journal,fault=eio,on=sync,at=2;5|class=checkpoint,fault=torn,p=0.05,seed=9
//
// Per clause: class (default all), fault (required), on (default write),
// and at least one trigger — at=N;M, every=N, from=N[,until=M], or p=P.
// seed=N may appear in any clause but is plan-global. As in faultinject,
// a repeated scalar clause key is a typo'd plan and rejected; at may
// repeat (repeats append). An empty string parses to the zero plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	seenSeed := false
	for _, raw := range strings.Split(s, "|") {
		c := Clause{Class: ClassAll, On: OpWrite}
		seen := make(map[string]bool)
		for _, field := range strings.Split(raw, ",") {
			key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
			if !ok {
				return Plan{}, fmt.Errorf("hostio: %q: want key=value", field)
			}
			if seen[key] && key != "at" {
				return Plan{}, fmt.Errorf("hostio: duplicate %q clause", key)
			}
			seen[key] = true
			var err error
			switch key {
			case "seed":
				if seenSeed {
					return Plan{}, fmt.Errorf("hostio: duplicate %q clause", key)
				}
				seenSeed = true
				p.Seed, err = strconv.ParseInt(val, 10, 64)
			case "class":
				c.Class = val
			case "fault":
				c.Fault = val
			case "on":
				c.On = val
			case "at":
				for _, item := range strings.Split(val, ";") {
					var n int64
					if n, err = strconv.ParseInt(item, 10, 64); err != nil {
						break
					}
					c.At = append(c.At, n)
				}
			case "every":
				c.Every, err = strconv.ParseInt(val, 10, 64)
			case "from":
				c.From, err = strconv.ParseInt(val, 10, 64)
			case "until":
				c.Until, err = strconv.ParseInt(val, 10, 64)
			case "p":
				c.Prob, err = strconv.ParseFloat(val, 64)
			default:
				return Plan{}, fmt.Errorf("hostio: unknown key %q (want seed, class, fault, on, at, every, from, until, p)", key)
			}
			if err != nil {
				return Plan{}, fmt.Errorf("hostio: %s: %v", key, err)
			}
		}
		if c.Fault == "" {
			return Plan{}, fmt.Errorf("hostio: clause %q: missing fault=", strings.TrimSpace(raw))
		}
		p.Clauses = append(p.Clauses, c)
	}
	if err := p.Validate(); err != nil {
		return Plan{}, err
	}
	return p, nil
}

// Stats counts what a FaultFS has done.
type Stats struct {
	Ops     int64 // faultable operations observed
	NoSpace int64 // injected ENOSPC
	IO      int64 // injected EIO (including failed renames/removes/creates/syncs)
	Torn    int64 // injected torn writes
}

// FaultFS wraps an FS with a deterministic fault plan. The same plan over
// the same operation sequence injects the same faults; probabilistic
// clauses draw from one seeded stream in operation order. Safe for
// concurrent use (one lock around the counters, like the real kernel's
// one disk).
type FaultFS struct {
	inner FS
	plan  Plan

	mu    sync.Mutex
	rng   *rand.Rand
	ops   map[string]int64 // per (class, op-kind) and per ("all", op-kind)
	stats Stats
}

var _ FS = (*FaultFS)(nil)

// NewFaultFS wraps inner with plan. The plan should be Validate-clean
// (ParsePlan guarantees it).
func NewFaultFS(inner FS, plan Plan) *FaultFS {
	return &FaultFS{
		inner: inner,
		plan:  plan,
		rng:   rand.New(rand.NewSource(plan.Seed)),
		ops:   make(map[string]int64),
	}
}

// Stats returns a snapshot of the injection counters.
func (f *FaultFS) Stats() Stats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

// decide counts one faultable op on path and returns the fault kind to
// inject ("" for none). Exactly one fault fires per op: the first
// matching clause wins, so plans read top to bottom.
func (f *FaultFS) decide(path, op string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	class := Classify(path)
	f.ops[ClassAll+"/"+op]++
	f.ops[class+"/"+op]++
	f.stats.Ops++
	for _, c := range f.plan.Clauses {
		if c.On != op {
			continue
		}
		if c.Class != ClassAll && c.Class != class {
			continue
		}
		idx := f.ops[c.Class+"/"+op]
		fired := false
		for _, n := range c.At {
			if n == idx {
				fired = true
			}
		}
		if c.Every > 0 && idx%c.Every == 0 {
			fired = true
		}
		if (c.From > 0 || c.Until > 0) && idx >= c.From && (c.Until == 0 || idx < c.Until) {
			fired = true
		}
		if c.Prob > 0 && f.rng.Float64() < c.Prob {
			fired = true
		}
		if !fired {
			continue
		}
		switch c.Fault {
		case FaultNoSpace:
			f.stats.NoSpace++
		case FaultTorn:
			f.stats.Torn++
		default:
			f.stats.IO++
		}
		return c.Fault
	}
	return ""
}

// faultErr maps a fault kind to its sentinel, with path context.
func faultErr(kind, op, path string) error {
	base := ErrInjectedIO
	if kind == FaultNoSpace {
		base = ErrInjectedNoSpace
	}
	return fmt.Errorf("%s %s: %w", op, path, base)
}

func (f *FaultFS) Create(name string) (File, error) {
	if kind := f.decide(name, OpCreate); kind != "" {
		return nil, faultErr(kind, OpCreate, name)
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	file, err := f.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	if flag&os.O_CREATE != 0 {
		if kind := f.decide(name, OpCreate); kind != "" {
			return nil, faultErr(kind, OpCreate, name)
		}
	}
	file, err := f.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f, path: name}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	// Classified by the destination: renaming a .tmp into its .ckpt slot
	// is a checkpoint op.
	if kind := f.decide(newpath, OpRename); kind != "" {
		return faultErr(kind, OpRename, newpath)
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if kind := f.decide(name, OpRemove); kind != "" {
		return faultErr(kind, OpRemove, name)
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(path string, perm os.FileMode) error {
	return f.inner.MkdirAll(path, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) { return f.inner.ReadDir(name) }
func (f *FaultFS) ReadFile(name string) ([]byte, error)       { return f.inner.ReadFile(name) }
func (f *FaultFS) Stat(name string) (fs.FileInfo, error)      { return f.inner.Stat(name) }

func (f *FaultFS) WriteFile(name string, data []byte, perm os.FileMode) error {
	if kind := f.decide(name, OpCreate); kind != "" {
		return faultErr(kind, OpCreate, name)
	}
	switch kind := f.decide(name, OpWrite); kind {
	case "":
		return f.inner.WriteFile(name, data, perm)
	case FaultTorn:
		// Half the file lands — the on-disk result of a torn whole-file
		// write — and the caller still gets the error.
		if err := f.inner.WriteFile(name, data[:len(data)/2], perm); err != nil {
			return err
		}
		return faultErr(kind, OpWrite, name)
	default:
		return faultErr(kind, OpWrite, name)
	}
}

// faultFile intercepts the handle ops a plan can target.
type faultFile struct {
	File
	fs   *FaultFS
	path string
}

func (f *faultFile) Write(p []byte) (int, error) {
	switch kind := f.fs.decide(f.path, OpWrite); kind {
	case "":
		return f.File.Write(p)
	case FaultTorn:
		n, err := f.File.Write(p[:len(p)/2])
		if err != nil {
			return n, err
		}
		return n, faultErr(kind, OpWrite, f.path)
	default:
		return 0, faultErr(kind, OpWrite, f.path)
	}
}

func (f *faultFile) Sync() error {
	if kind := f.fs.decide(f.path, OpSync); kind != "" {
		return faultErr(kind, OpSync, f.path)
	}
	return f.File.Sync()
}
