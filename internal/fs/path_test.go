package fs

import (
	"strings"
	"testing"
)

func TestSplitPath(t *testing.T) {
	cases := []struct {
		in   string
		want []string
		err  bool
	}{
		{"/", nil, false},
		{"", nil, false},
		{"/a", []string{"a"}, false},
		{"/a/b/c", []string{"a", "b", "c"}, false},
		{"a/b", []string{"a", "b"}, false},
		{"/a//b", nil, true},
		{"/a/./b", nil, true},
		{"/a/../b", nil, true},
	}
	for _, c := range cases {
		got, err := SplitPath(c.in)
		if c.err != (err != nil) {
			t.Errorf("SplitPath(%q) err = %v, want err=%v", c.in, err, c.err)
			continue
		}
		if err != nil {
			continue
		}
		if len(got) != len(c.want) {
			t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("SplitPath(%q) = %v, want %v", c.in, got, c.want)
			}
		}
	}
}

func TestCheckName(t *testing.T) {
	bad := []string{"", ".", "..", "a/b", "nul\x00", strings.Repeat("x", MaxNameLen+1)}
	for _, n := range bad {
		if CheckName(n) == nil {
			t.Errorf("CheckName(%q) accepted", n)
		}
	}
	if CheckName("ok-name_1.txt") != nil {
		t.Error("valid name rejected")
	}
}

func TestDirBase(t *testing.T) {
	dir, base, err := DirBase("/a/b/c")
	if err != nil || dir != "/a/b" || base != "c" {
		t.Fatalf("DirBase = (%q, %q, %v)", dir, base, err)
	}
	dir, base, err = DirBase("/top")
	if err != nil || dir != "/" || base != "top" {
		t.Fatalf("DirBase(/top) = (%q, %q, %v)", dir, base, err)
	}
	if _, _, err := DirBase("/"); err == nil {
		t.Fatal("DirBase(/) accepted")
	}
}
