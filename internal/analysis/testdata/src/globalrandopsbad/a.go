// Package a pins that a malformed ops-domain declaration grants
// globalrand no exemption: the global-source call below is still a
// finding. The malformed declaration itself is reported by wallclock,
// not here, so the suite emits it once.
package a

import "math/rand"

//flashvet:ops-domain

func jitter(d int64) int64 {
	return d/2 + rand.Int63n(d/2+1) // want `global rand\.Int63n draws from the shared process-wide source`
}
