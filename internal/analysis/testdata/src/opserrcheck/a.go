// Package a exercises the opserrcheck analyzer: errors from storage
// mutation ops may not be dropped on the floor.
package a

import "flashwear/internal/analysis/testdata/src/opserrcheck/nand"

func drop(c *nand.Chip) {
	c.EraseBlock(3)                 // want `error from nand\.EraseBlock discarded`
	_, _ = c.ProgramPage(0, nil)    // want `error from nand\.ProgramPage assigned to _`
	res, _ := c.ProgramPage(1, nil) // want `error from nand\.ProgramPage assigned to _`
	_ = res.Retries
	defer c.Recover()  // want `error from nand\.Recover discarded by defer`
	go c.EraseBlock(4) // want `error from nand\.EraseBlock discarded by go`
}

func handled(c *nand.Chip) error {
	if err := c.EraseBlock(5); err != nil {
		return err
	}
	res, err := c.ProgramPage(2, nil) // ok: error inspected
	if err != nil {
		return err
	}
	_ = res
	data, _ := c.ReadPage(0) // ok: reads are out of scope
	_ = data
	return nil
}

func waived(c *nand.Chip) {
	//flashvet:ignore opserrcheck best-effort trim on teardown, the device may already be dying
	c.EraseBlock(9)
}
