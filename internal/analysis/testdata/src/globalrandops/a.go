// Package a exercises the //flashvet:ops-domain opt-out for globalrand:
// a declared ops-plane package may draw retry-backoff jitter from the
// process-global math/rand source (and seed helper sources from
// literals) with no findings at all.
package a

import "math/rand"

//flashvet:ops-domain this fixture package paces retries against the real host, nothing flows back into simulation results

func jitter(d int64) int64 {
	return d/2 + rand.Int63n(d/2+1) // ok: ops-domain package
}

func helperSource() *rand.Rand {
	return rand.New(rand.NewSource(1)) // ok: ops-domain package
}
