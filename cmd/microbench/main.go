// Command microbench regenerates Figure 1: synchronous write bandwidth
// versus request size (0.5 KiB – 16 MiB), sequential and random, for the
// five devices of §4.1.
//
// Usage:
//
//	microbench [-scale N] [-csv]
//
// With -csv the two panels are emitted as CSV series (one column per
// device); otherwise an aligned table prints both patterns side by side.
package main

import (
	"flag"
	"fmt"
	"os"

	"flashwear/internal/experiments"
	"flashwear/internal/profiling"
	"flashwear/internal/report"
)

func main() {
	scale := flag.Int64("scale", 256, "device capacity divisor (1 = full size, slow)")
	csv := flag.Bool("csv", false, "emit CSV series instead of a table")
	pprofCPU := flag.String("pprof-cpu", "", "write a CPU profile of the run to this file")
	pprofHeap := flag.String("pprof-heap", "", "write a heap profile to this file at exit")
	flag.Parse()

	var stopCPU func() error
	if *pprofCPU != "" {
		stop, err := profiling.StartCPU(*pprofCPU)
		if err != nil {
			fmt.Fprintln(os.Stderr, "microbench:", err)
			os.Exit(1)
		}
		stopCPU = stop
	}
	fail := func(err error) {
		if stopCPU != nil {
			stopCPU()
		}
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}
	// os.Exit skips defers; the success paths below fall through here.
	finishProfiles := func() {
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fail(err)
			}
			stopCPU = nil
		}
		if *pprofHeap != "" {
			if err := profiling.WriteHeap(*pprofHeap); err != nil {
				fail(err)
			}
		}
	}

	cfg := experiments.Config{
		Scale:    *scale,
		Progress: func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	}
	points, err := experiments.Figure1(cfg)
	if err != nil {
		fail(err)
	}

	if *csv {
		fmt.Println("# Figure 1a: sequential write bandwidth (MiB/s)")
		report.RenderCSV(os.Stdout, experiments.Figure1Series(points, true)...)
		fmt.Println()
		fmt.Println("# Figure 1b: random write bandwidth (MiB/s)")
		report.RenderCSV(os.Stdout, experiments.Figure1Series(points, false)...)
		finishProfiles()
		return
	}

	tbl := report.NewTable(
		"Figure 1: write bandwidth by request size (MiB/s)",
		"Device", "Req", "Sequential", "Random")
	for _, p := range points {
		tbl.AddRow(p.Device, report.SizeLabel(p.ReqBytes), p.SeqMiBps, p.RandMiBps)
	}
	tbl.Render(os.Stdout)
	finishProfiles()
}
