package device

import (
	"flashwear/internal/ftl"
	"flashwear/internal/telemetry"
)

// Instrument registers the device's host-side counters and JEDEC health
// gauges with reg, and recursively attaches the FTL and its chips. Call it
// at device birth, before any host I/O, so push and pull counters agree.
//
// The wear-level gauges deliberately read the FTL's ground-truth estimate,
// NOT Device.WearIndicator: on UnreliableIndicator profiles the register
// read draws from the device RNG (garbage values, like the real BLU
// parts), and telemetry must never perturb the simulation it observes
// (DESIGN.md §7). The register's lies remain observable through the
// emmc/ExtCSD path, which models an actual host read.
func (d *Device) Instrument(reg *telemetry.Registry) {
	d.f.Attach(reg)
	d.f.MainChip().Instrument(reg, "main")
	if c := d.f.CacheChip(); c != nil {
		c.Instrument(reg, "cache")
	}
	reg.CounterFunc("device.bytes_written", func() int64 { return d.bytesWritten })
	reg.CounterFunc("device.bytes_read", func() int64 { return d.bytesRead })
	reg.CounterFunc("device.ext_csd_reads", func() int64 { return d.extCSDReads })
	reg.GaugeFunc("device.busy_hours", func() float64 { return d.busy.Hours() })
	reg.GaugeFunc("device.bricked", func() float64 {
		if d.f.Bricked() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("device.read_only", func() float64 {
		if d.f.ReadOnly() {
			return 1
		}
		return 0
	})
	reg.GaugeFunc("device.failed", func() float64 {
		if d.f.Failed() {
			return 1
		}
		return 0
	})
	if d.inj != nil {
		d.inj.Instrument(reg)
	}
	if d.tr != nil {
		d.tr.Attach(reg)
	}
	reg.GaugeFunc(telemetry.Name("device.wear_level", "pool", "a"), func() float64 {
		return float64(d.f.WearIndicator(ftl.PoolA))
	})
	reg.GaugeFunc(telemetry.Name("device.wear_level", "pool", "b"), func() float64 {
		return float64(d.f.WearIndicator(ftl.PoolB))
	})
	reg.GaugeFunc("device.pre_eol", func() float64 { return float64(d.f.PreEOLInfo()) })
	reg.GaugeFunc("device.life_consumed", func() float64 { return d.f.LifeConsumed(ftl.PoolB) })
}
