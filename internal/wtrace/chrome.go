package wtrace

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
)

// Event is one trace record in a compact typed form (no per-event maps or
// interfaces, so recording allocates only on buffer growth). Ts and Dur
// are simulated-clock microseconds, the unit Chrome's trace viewer
// expects.
type Event struct {
	Name   string
	Ph     byte // 'X' complete, 'i' instant
	Tid    int32
	Ts     int64
	Dur    int64
	Origin Origin
	Block  int32
	Pages  int32
	Off    int64
	Bytes  int64
}

// Track (tid) layout inside a process: low tids are FTL-internal
// activity, host writes get one track per origin at tidHostBase+origin.
const (
	tidGC       = 2
	tidWL       = 3
	tidErase    = 5
	tidHostBase = 100
)

// ProcessTrace is one device's events plus the naming needed to render
// them: in the Chrome trace each device becomes a process, each activity
// class a named thread.
type ProcessTrace struct {
	// Name labels the process in the viewer ("flashsim", "weartest run=A").
	Name string
	// Pid is the trace process id; WriteChrome assigns 1..n when zero.
	Pid int
	// OriginNames maps Origin ids to names for thread labels and args.
	OriginNames []string
	// Events is the recorded buffer.
	Events []Event
	// Dropped counts events lost at the buffer cap.
	Dropped int64
}

// Process packages the tracer's event buffer for WriteChrome.
func (t *Tracer) Process(name string) ProcessTrace {
	return ProcessTrace{
		Name:        name,
		OriginNames: t.led.Origins(),
		Events:      t.events,
		Dropped:     t.dropped,
	}
}

// WriteChrome renders processes as a Chrome trace-event JSON object
// (load the file in chrome://tracing or https://ui.perfetto.dev). The
// writer emits by hand — the event volume makes reflective JSON encoding
// the dominant cost otherwise — but the output is plain standard JSON.
func WriteChrome(w io.Writer, procs ...ProcessTrace) error {
	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}
	meta := func(pid int, name, key, value string, tid int) {
		comma()
		fmt.Fprintf(bw, `{"name":%q,"ph":"M","pid":%d,"tid":%d,"args":{%q:%q}}`,
			name, pid, tid, key, value)
	}
	for i, p := range procs {
		pid := p.Pid
		if pid == 0 {
			pid = i + 1
		}
		meta(pid, "process_name", "name", p.Name, 0)
		meta(pid, "thread_name", "name", "ftl:gc", tidGC)
		meta(pid, "thread_name", "name", "ftl:wl", tidWL)
		meta(pid, "thread_name", "name", "nand:erase", tidErase)
		for org, name := range p.OriginNames {
			meta(pid, "thread_name", "name", "host:"+name, tidHostBase+org)
		}
		orgName := func(o Origin) string {
			if int(o) < len(p.OriginNames) {
				return p.OriginNames[o]
			}
			return "origin-" + strconv.Itoa(int(o))
		}
		for _, e := range p.Events {
			comma()
			bw.WriteString(`{"name":`)
			bw.WriteString(strconv.Quote(e.Name))
			bw.WriteString(`,"ph":"`)
			bw.WriteByte(e.Ph)
			bw.WriteString(`","pid":`)
			bw.WriteString(strconv.Itoa(pid))
			bw.WriteString(`,"tid":`)
			bw.WriteString(strconv.FormatInt(int64(e.Tid), 10))
			bw.WriteString(`,"ts":`)
			bw.WriteString(strconv.FormatInt(e.Ts, 10))
			if e.Ph == 'X' {
				bw.WriteString(`,"dur":`)
				bw.WriteString(strconv.FormatInt(e.Dur, 10))
			}
			if e.Ph == 'i' {
				bw.WriteString(`,"s":"t"`)
			}
			bw.WriteString(`,"args":{"origin":`)
			bw.WriteString(strconv.Quote(orgName(e.Origin)))
			if e.Ph == 'X' {
				bw.WriteString(`,"off":`)
				bw.WriteString(strconv.FormatInt(e.Off, 10))
				bw.WriteString(`,"bytes":`)
				bw.WriteString(strconv.FormatInt(e.Bytes, 10))
			} else {
				bw.WriteString(`,"block":`)
				bw.WriteString(strconv.FormatInt(int64(e.Block), 10))
				bw.WriteString(`,"pages":`)
				bw.WriteString(strconv.FormatInt(int64(e.Pages), 10))
			}
			bw.WriteString(`}}`)
		}
		if p.Dropped > 0 {
			comma()
			fmt.Fprintf(bw, `{"name":"events dropped: %d","ph":"i","s":"g","pid":%d,"tid":0,"ts":0,"args":{}}`,
				p.Dropped, pid)
		}
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
