package experiments

import (
	"testing"

	"flashwear/internal/android"
	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/ftl"
)

// testCfg keeps experiment tests fast: tiny devices, few increments.
func testCfg(maxLevel int) Config {
	return Config{Scale: 2048, MaxLevel: maxLevel}
}

func TestFigure1Shape(t *testing.T) {
	points, err := Figure1(Config{Scale: 1024})
	if err != nil {
		t.Fatal(err)
	}
	if len(points) != 5*16 {
		t.Fatalf("points = %d, want 80", len(points))
	}
	byDev := map[string][]Figure1Point{}
	for _, p := range points {
		byDev[p.Device] = append(byDev[p.Device], p)
	}
	for dev, ps := range byDev {
		// §4.2: throughput scales with request size until a plateau.
		small, large := ps[0], ps[len(ps)-1]
		if large.SeqMiBps <= small.SeqMiBps {
			t.Errorf("%s: no sequential scaling: %.1f -> %.1f", dev, small.SeqMiBps, large.SeqMiBps)
		}
		t.Logf("%-16s 4KiB seq=%6.1f rand=%6.1f | 16MiB seq=%6.1f rand=%6.1f",
			dev, ps[3].SeqMiBps, ps[3].RandMiBps, large.SeqMiBps, large.RandMiBps)
	}
	// §4.2: eMMC random ≈ sequential at 4 KiB; uSD random collapses.
	for _, ps := range [][]Figure1Point{byDev["eMMC 8GB"], byDev["eMMC 16GB"]} {
		p4k := ps[3]
		ratio := p4k.RandMiBps / p4k.SeqMiBps
		if ratio < 0.5 || ratio > 2 {
			t.Errorf("%s 4KiB rand/seq = %.2f, want ~1", p4k.Device, ratio)
		}
	}
	usd := byDev["uSD 16GB"][3]
	if usd.RandMiBps*4 > usd.SeqMiBps {
		t.Errorf("uSD 4KiB random (%.2f) should collapse vs sequential (%.2f)", usd.RandMiBps, usd.SeqMiBps)
	}
	// The Samsung S6 plateaus highest.
	if byDev["Samsung S6 32GB"][15].SeqMiBps <= byDev["eMMC 8GB"][15].SeqMiBps {
		t.Error("UFS plateau should exceed eMMC 8GB")
	}
	// Series conversion keeps device count and point count.
	series := Figure1Series(points, true)
	if len(series) != 5 || len(series[0].X) != 16 {
		t.Fatalf("series = %d x %d", len(series), len(series[0].X))
	}
}

func TestFigure2ShapeAndCalibration(t *testing.T) {
	runs, err := Figure2(testCfg(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 {
		t.Fatalf("runs = %d", len(runs))
	}
	means := map[string]float64{}
	for _, r := range runs {
		incs := r.Report.IncrementsFor(ftl.PoolB)
		if len(incs) < 3 {
			t.Fatalf("%s: only %d increments", r.Label, len(incs))
		}
		means[r.Label] = r.Report.MeanHostGiBPerIncrement(ftl.PoolB)
		t.Logf("%s: %.0f GiB/increment (paper: 8GB<=992, 16GB~2210), WA %.2f",
			r.Label, means[r.Label], r.Report.FinalWA)
	}
	// Shape: the 16GB chip needs roughly 2x the volume of the 8GB chip.
	ratio := means["eMMC 16GB"] / means["eMMC 8GB"]
	if ratio < 1.5 || ratio > 3.5 {
		t.Errorf("16GB/8GB volume ratio = %.2f, want ~2.2", ratio)
	}
	// Magnitudes within 2x of the paper's (992 GiB, 2210 GiB).
	if m := means["eMMC 8GB"]; m < 992/2 || m > 992*2 {
		t.Errorf("eMMC 8GB = %.0f GiB/increment, paper ~992", m)
	}
	if m := means["eMMC 16GB"]; m < 2210/2 || m > 2210*2 {
		t.Errorf("eMMC 16GB = %.0f GiB/increment, paper ~2210", m)
	}
}

func TestFigure4F2FSHalvesHostVolume(t *testing.T) {
	runs, err := Figure4(testCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	var ext4, f2 float64
	for _, r := range runs {
		m := r.Report.MeanHostGiBPerIncrement(ftl.PoolB)
		t.Logf("%s: %.0f GiB/increment, WA %.2f", r.Label, m, r.Report.FinalWA)
		if r.Label == "Moto E 8GB F2FS" {
			f2 = m
		} else {
			ext4 = m
		}
	}
	ratio := f2 / ext4
	if ratio < 0.35 || ratio > 0.75 {
		t.Errorf("F2FS/ext4 host volume ratio = %.2f, paper ~0.5", ratio)
	}
}

func TestFigure3TimesAreDaysToWeeks(t *testing.T) {
	runs, err := Figure3(testCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 5 {
		t.Fatalf("runs = %d", len(runs))
	}
	for _, r := range runs {
		incs := r.Report.IncrementsFor(ftl.PoolB)
		if len(incs) == 0 {
			t.Fatalf("%s: no increments", r.Label)
		}
		last := incs[len(incs)-1]
		t.Logf("%s: %.1f h/increment (paper range ~2.5-52h)", r.Label, last.Hours)
		// §4.4: wearing out takes hours per increment (days to weeks to
		// EOL), not minutes and not months.
		if last.Hours < 1 || last.Hours > 400 {
			t.Errorf("%s: %.1f hours per increment out of plausible range", r.Label, last.Hours)
		}
	}
}

func TestTable1HybridStory(t *testing.T) {
	rep, err := Table1(Config{Scale: 2048, MaxLevel: 10})
	if err != nil {
		t.Fatal(err)
	}
	bIncs := rep.IncrementsFor(ftl.PoolB)
	aIncs := rep.IncrementsFor(ftl.PoolA)
	for _, inc := range rep.Increments {
		t.Logf("%v", inc)
	}
	if len(bIncs) < 8 {
		t.Fatalf("only %d Type B increments", len(bIncs))
	}
	if len(aIncs) == 0 {
		t.Fatal("Type A never incremented")
	}
	// Type B wears steadily: early increments within a band.
	early := bIncs[1].HostGiB
	if bIncs[3].HostGiB < early/3 || bIncs[3].HostGiB > early*3 {
		t.Errorf("Type B volumes unstable: %.0f vs %.0f GiB", early, bIncs[3].HostGiB)
	}
	// Type A's first increment needs several times more host volume than
	// a Type B increment (paper: ~5.4x).
	if aIncs[0].HostGiB < bIncs[1].HostGiB*2 {
		t.Errorf("Type A first increment %.0f GiB not >> Type B %.0f GiB",
			aIncs[0].HostGiB, bIncs[1].HostGiB)
	}
	// After the merge (rewrite phase), Type A accelerates: its last
	// increment needs far less volume than its first.
	if len(aIncs) >= 2 {
		last := aIncs[len(aIncs)-1]
		if last.HostGiB > aIncs[0].HostGiB/2 {
			t.Errorf("Type A did not accelerate after merge: first %.0f, last %.0f GiB",
				aIncs[0].HostGiB, last.HostGiB)
		}
	}
}

func TestEnvelopeComparisonShortfall(t *testing.T) {
	runs, err := Figure2(testCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	rows := EnvelopeComparison(runs, map[string]int64{
		"eMMC 8GB":  8 << 30,
		"eMMC 16GB": 16 << 30,
	})
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, row := range rows {
		t.Logf("%s: envelope %.0f GiB/10%%, measured %.0f, shortfall %.1fx",
			row.Device, row.EnvelopeGiBPer, row.MeasuredGiBPer, row.ShortfallFactor)
		// §4.3: "roughly three times lower than the back-of-the-envelope".
		if row.ShortfallFactor < 1.5 || row.ShortfallFactor > 5 {
			t.Errorf("%s shortfall %.1fx outside the paper's ~2-3x story", row.Device, row.ShortfallFactor)
		}
	}
}

func TestDetectionStealthInvisible(t *testing.T) {
	runs, err := Detection(Config{Scale: 4096})
	if err != nil {
		t.Fatal(err)
	}
	var cont, stealth core.AttackReport
	for _, r := range runs {
		if r.Mode == core.Continuous {
			cont = r.Report
		} else {
			stealth = r.Report
		}
		t.Logf("%v: bricked=%v active=%.1fh wall=%.1fh power=%.2fJ observed=%d",
			r.Mode, r.Report.Bricked, r.Report.ActiveHours, r.Report.Hours,
			r.Report.PowerJoulesAttributed, r.Report.ProcessObservedCount)
	}
	if !cont.Bricked || !stealth.Bricked {
		t.Fatal("attacks failed to brick")
	}
	if stealth.PowerJoulesAttributed != 0 || stealth.ProcessObservedCount != 0 {
		t.Error("stealth attack was visible")
	}
	if cont.PowerJoulesAttributed == 0 {
		t.Error("continuous attack invisible to power monitor")
	}
	if stealth.Hours <= cont.Hours {
		t.Error("stealth should take longer in wall-clock terms")
	}
	if stealth.Hours > cont.Hours*5 {
		t.Errorf("stealth factor %.1fx too large (duty cycle is 9/24)", stealth.Hours/cont.Hours)
	}
}

func TestBudgetPhonesBrickWithinWeeks(t *testing.T) {
	runs, err := BudgetPhones(Config{Scale: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range runs {
		t.Logf("%s: bricked after %.1f days, %.0f GiB", r.Label, r.Days, r.HostGiB)
		if r.Days <= 0 || r.Days > 21 {
			t.Errorf("%s: %.1f days to brick, paper says within two weeks", r.Label, r.Days)
		}
	}
}

func TestMitigationPolicies(t *testing.T) {
	rows, err := Mitigation(Config{Scale: 4096})
	if err != nil {
		t.Fatal(err)
	}
	byPolicy := map[MitigationPolicy]MitigationRow{}
	for _, r := range rows {
		byPolicy[r.Policy] = r
		t.Logf("%-14s wear %.3f%%/day  projected %.0f days  benign burst %.1fs  warned=%v",
			r.Policy, r.LifeConsumedPctPerDay, r.ProjectedLifeDays, r.BenignBurstSeconds, r.WarningRaised)
	}
	none, global, sel := byPolicy[PolicyNone], byPolicy[PolicyGlobal], byPolicy[PolicySelective]
	// Limiting must slow the attack's wear dramatically.
	if global.LifeConsumedPctPerDay >= none.LifeConsumedPctPerDay/10 {
		t.Error("global limiter barely slowed the attack")
	}
	if sel.LifeConsumedPctPerDay >= none.LifeConsumedPctPerDay/10 {
		t.Error("selective throttle barely slowed the attack")
	}
	// §4.5's tradeoff: the global limiter hurts the benign burst; the
	// selective throttle must not.
	if global.BenignBurstSeconds < none.BenignBurstSeconds*5 {
		t.Error("global limiter did not visibly hurt the benign app (expected collateral damage)")
	}
	if sel.BenignBurstSeconds > none.BenignBurstSeconds*3 {
		t.Errorf("selective throttle hurt the benign app: %.1fs vs %.1fs",
			sel.BenignBurstSeconds, none.BenignBurstSeconds)
	}
	if !none.WarningRaised {
		t.Error("wear watch never warned during an unmitigated attack")
	}
}

func TestAblations(t *testing.T) {
	cfg := Config{Scale: 2048}
	t.Run("GCPolicy", func(t *testing.T) {
		rows, err := AblationGCPolicy(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			t.Logf("%s: WA %.2f", r.Variant, r.WA)
			if r.WA < 1 {
				t.Errorf("%s: WA %.2f < 1", r.Variant, r.WA)
			}
		}
	})
	t.Run("WearLeveling", func(t *testing.T) {
		rows, err := AblationWearLeveling(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if len(rows) != 2 {
			t.Fatal("rows")
		}
		t.Logf("on: spread %d; off: spread %d", rows[0].EraseSpread, rows[1].EraseSpread)
		if rows[0].EraseSpread >= rows[1].EraseSpread {
			t.Error("wear-leveling did not reduce erase spread")
		}
	})
	t.Run("OverProvisioning", func(t *testing.T) {
		rows, err := AblationOverProvisioning(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			t.Logf("%s: WA %.2f", r.Variant, r.WA)
		}
		if rows[0].WA <= rows[len(rows)-1].WA {
			t.Error("more over-provisioning should reduce WA at high utilisation")
		}
	})
	t.Run("PoolMerge", func(t *testing.T) {
		rows, err := AblationPoolMerge(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			t.Logf("%s: WA %.2f, Type A life %.1f%%", r.Variant, r.WA, r.Extra)
		}
		if rows[0].Extra <= rows[1].Extra {
			t.Error("merging should accelerate Type A wear")
		}
	})
	t.Run("SLCCache", func(t *testing.T) {
		rows, err := AblationSLCCache(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			t.Logf("%s: WA %.2f, Type A life %.2f%%", r.Variant, r.WA, r.Extra)
		}
	})
	t.Run("ECCStrength", func(t *testing.T) {
		rows, err := AblationECCStrength(cfg)
		if err != nil {
			t.Fatal(err)
		}
		for _, r := range rows {
			t.Logf("%s: endured %.2f GiB", r.Variant, r.Extra)
		}
		if rows[0].Extra >= rows[len(rows)-1].Extra {
			t.Error("stronger ECC should extend endured volume")
		}
	})
}

func TestHealingExtension(t *testing.T) {
	rows, err := Healing(Config{Scale: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	var off, on float64
	for _, r := range rows {
		t.Logf("%s: %.1f%% physical wear", r.Variant, r.PhysicalWearPct)
		if r.Variant == "no healing" {
			off = r.PhysicalWearPct
		} else {
			on = r.PhysicalWearPct
		}
	}
	if on >= off {
		t.Fatalf("healing (%v%%) did not reduce wear vs baseline (%v%%)", on, off)
	}
}

func TestTLCTrendWearsFaster(t *testing.T) {
	mlc, err := Figure2(testCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	tlc, err := TLCTrend(testCfg(3))
	if err != nil {
		t.Fatal(err)
	}
	var mlcGiB float64
	for _, r := range mlc {
		if r.Label == "eMMC 8GB" {
			mlcGiB = r.Report.MeanHostGiBPerIncrement(ftl.PoolB)
		}
	}
	tlcGiB := tlc.Report.MeanHostGiBPerIncrement(ftl.PoolB)
	t.Logf("MLC %.0f GiB/incr vs TLC %.0f GiB/incr", mlcGiB, tlcGiB)
	if tlcGiB*1.5 > mlcGiB {
		t.Fatalf("TLC (%.0f) should wear much faster than MLC (%.0f)", tlcGiB, mlcGiB)
	}
}

func TestClassifierEvalSeparatesHarmfulFromBenign(t *testing.T) {
	rows, err := ClassifierEval(Config{Scale: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		t.Logf("%-12s harmful=%-5v flagged=%-5v score=%.2f wrote=%.1f MiB",
			r.App, r.Harmful, r.Flagged, r.Score, r.WrittenMiB)
		if r.Harmful != r.Flagged {
			t.Errorf("%s: flagged=%v, ground truth harmful=%v", r.App, r.Flagged, r.Harmful)
		}
	}
}

func TestBenignBaselineContrast(t *testing.T) {
	rows, err := BenignBaseline(Config{Scale: 2048})
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	benign, attacked := rows[0], rows[1]
	t.Logf("%s: %.3f%%/year, EOL in %.0f years", benign.Scenario, benign.LifePctPerYear, benign.YearsToEOL)
	t.Logf("%s: %.1f%%/year, EOL in %.4f years", attacked.Scenario, attacked.LifePctPerYear, attacked.YearsToEOL)
	// Normal use outlives a 3-year warranty by a wide margin...
	if benign.YearsToEOL < 10 {
		t.Errorf("benign use kills the device in %.1f years; expected decades", benign.YearsToEOL)
	}
	// ...while the attack destroys the device within months, three-plus
	// orders of magnitude faster.
	if attacked.YearsToEOL > 1 {
		t.Errorf("attack takes %.2f years; expected well under one", attacked.YearsToEOL)
	}
	if benign.YearsToEOL/attacked.YearsToEOL < 1000 {
		t.Errorf("contrast only %.0fx; expected >1000x", benign.YearsToEOL/attacked.YearsToEOL)
	}
}

// TestScaleInvariance validates the central scaling claim: the same
// experiment at two different capacity divisors reports the same full-scale
// volume per increment (within noise), because wear-per-scaled-byte is
// preserved and results multiply back by the effective divisor.
func TestScaleInvariance(t *testing.T) {
	run := func(scale int64) float64 {
		rep, err := runFileWear(device.ProfileEMMC8(), android.FSExt4,
			Config{Scale: scale, MaxLevel: 3})
		if err != nil {
			t.Fatal(err)
		}
		return rep.MeanHostGiBPerIncrement(ftl.PoolB)
	}
	big, small := run(256), run(512)
	ratio := big / small
	t.Logf("GiB/increment at /256 = %.0f, at /512 = %.0f (ratio %.3f)", big, small, ratio)
	if ratio < 0.85 || ratio > 1.18 {
		t.Fatalf("scale invariance broken: ratio %.3f", ratio)
	}
}
