package experiments

import (
	"errors"
	"fmt"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/device"
	"flashwear/internal/ftl"
	"flashwear/internal/mitigation"
	"flashwear/internal/simclock"
)

// MitigationPolicy names a defence configuration of §4.5.
type MitigationPolicy string

const (
	PolicyNone      MitigationPolicy = "none"
	PolicyGlobal    MitigationPolicy = "global-limit"
	PolicySelective MitigationPolicy = "selective"
)

// MitigationRow is one policy's outcome against the attack plus a benign
// bursty app.
type MitigationRow struct {
	Policy MitigationPolicy
	// LifeConsumedPctPerDay is the attack's wear rate under the policy —
	// lower is better protection.
	LifeConsumedPctPerDay float64
	// ProjectedLifeDays extrapolates time to estimated end of life.
	ProjectedLifeDays float64
	// BenignBurstSeconds is how long the benign app's 64 MiB burst took —
	// higher means the mitigation hurt a legitimate app (§4.5's concern
	// with naive rate limiting).
	BenignBurstSeconds float64
	// WarningRaised reports whether the S.M.A.R.T.-style wear watch fired
	// a warning during the attack (§4.5's first proposal working).
	WarningRaised bool
}

// Mitigation evaluates the §4.5 defences: no defence, a global lifetime
// rate limit, and the classifier-driven selective throttle. Each policy
// faces the wear attack plus a benign app doing a burst file transfer.
func Mitigation(cfg Config) ([]MitigationRow, error) {
	cfg = cfg.Defaults()
	var out []MitigationRow
	for _, policy := range []MitigationPolicy{PolicyNone, PolicyGlobal, PolicySelective} {
		cfg.Progress("mitigation: policy %s", policy)
		row, err := runMitigation(policy, cfg)
		if err != nil {
			return nil, fmt.Errorf("mitigation %s: %w", policy, err)
		}
		out = append(out, row)
	}
	return out, nil
}

func runMitigation(policy MitigationPolicy, cfg Config) (MitigationRow, error) {
	base := device.ProfileMotoE8()
	// A reduced endurance keeps the experiment affordable while
	// preserving every rate relationship the policies are judged on.
	base.RatedPE = 150
	base.FirmwareRatedPE = 150
	eff := base.EffectiveScale(cfg.Scale)
	prof := base.Scaled(cfg.Scale)
	budget := mitigation.LifespanBudget{
		CapacityBytes: prof.CapacityBytes, // scaled capacity: budget scales with it
		RatedPE:       prof.RatedPE,
		TargetYears:   3.0 / float64(eff), // keep the budget/wear ratio scale-invariant
		ExpectedWA:    2,
	}

	var throttle func(string, int64, time.Duration) time.Duration
	switch policy {
	case PolicyGlobal:
		lim, err := mitigation.NewRateLimiter(budget)
		if err != nil {
			return MitigationRow{}, err
		}
		lim.BurstBytes = float64(prof.CapacityBytes) / 64
		throttle = lim.Throttle
	case PolicySelective:
		st, err := mitigation.NewSelectiveThrottler(budget)
		if err != nil {
			return MitigationRow{}, err
		}
		st.Limiter.BurstBytes = float64(prof.CapacityBytes) / 64
		throttle = st.Throttle
	}

	clock := simclock.New()
	phone, err := android.NewPhone(android.Config{
		Profile:  prof,
		FS:       android.FSExt4,
		Charging: android.AlwaysOn(), // isolate throttling effects
		Screen:   android.Never(),
		Throttle: throttle,
	}, clock)
	if err != nil {
		return MitigationRow{}, err
	}
	attacker, err := phone.InstallApp("com.evil.wear")
	if err != nil {
		return MitigationRow{}, err
	}
	benign, err := phone.InstallApp("com.good.camera")
	if err != nil {
		return MitigationRow{}, err
	}

	// Attack setup + a fixed attack volume: enough full-device rewrites to
	// reach ~85% of the (reduced) rated life when unmitigated.
	set := newAttackSet(attacker.Storage(), eff)
	fitFileSet(set, phone.Device().Size())
	if err := set.Setup(); err != nil {
		return MitigationRow{}, err
	}
	watch := mitigation.NewWearWatch(phone.Device())
	attackBudget := phone.Device().Size() * int64(float64(prof.RatedPE)*0.85)
	start := clock.Now()
	var written int64
	for written < attackBudget {
		n, err := set.Step(4 << 20)
		written += n
		watch.Sample(clock.Now())
		if err != nil {
			if errors.Is(err, device.ErrBricked) || errors.Is(err, ftl.ErrBricked) ||
				errors.Is(err, device.ErrReadOnly) || errors.Is(err, ftl.ErrReadOnly) {
				break
			}
			return MitigationRow{}, err
		}
	}
	attackDays := (clock.Now() - start).Hours() / 24
	lifePct := phone.Device().FTL().LifeConsumed(ftl.PoolB) * 100

	// Benign burst: 64 MiB photo import, measured after the attack has
	// been running (so a global limiter's bucket is already drained).
	f, err := benign.Storage().Create("/import.bin")
	if err != nil {
		return MitigationRow{}, err
	}
	burst := int64(64 << 20)
	if burst > phone.Device().Size()/8 {
		burst = phone.Device().Size() / 8
	}
	bStart := clock.Now()
	chunk := make([]byte, 1<<20)
	for off := int64(0); off < burst; off += int64(len(chunk)) {
		if _, err := f.WriteAt(chunk[:min64(int64(len(chunk)), burst-off)], off); err != nil {
			return MitigationRow{}, err
		}
	}
	benignSecs := (clock.Now() - bStart).Seconds()

	row := MitigationRow{
		Policy:             policy,
		BenignBurstSeconds: benignSecs,
	}
	if attackDays > 0 {
		row.LifeConsumedPctPerDay = lifePct / attackDays
		if row.LifeConsumedPctPerDay > 0 {
			// Simulated days scale back up with the effective scale.
			row.ProjectedLifeDays = 100 / row.LifeConsumedPctPerDay * float64(eff)
			row.LifeConsumedPctPerDay /= float64(eff)
		}
	}
	if _, ok := watch.FirstAlertAt(mitigation.AlertWarning); ok {
		row.WarningRaised = true
	}
	return row, nil
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
