// Package fstest is a conformance suite for fs.FileSystem implementations:
// both extfs and f2fs must pass the same behavioural contract, so workloads
// and experiments can treat them interchangeably.
package fstest

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flashwear/internal/fs"
)

// Factory creates a fresh, empty, mounted file system for one test.
type Factory func(t *testing.T) fs.FileSystem

// Run executes the conformance suite against the factory.
func Run(t *testing.T, mk Factory) {
	t.Run("CreateOpenRoundTrip", func(t *testing.T) { testCreateOpen(t, mk(t)) })
	t.Run("OverwriteVisible", func(t *testing.T) { testOverwrite(t, mk(t)) })
	t.Run("SparseHolesReadZero", func(t *testing.T) { testSparse(t, mk(t)) })
	t.Run("DirectoryTree", func(t *testing.T) { testDirTree(t, mk(t)) })
	t.Run("RemoveAndRecreate", func(t *testing.T) { testRemoveRecreate(t, mk(t)) })
	t.Run("RenameContract", func(t *testing.T) { testRename(t, mk(t)) })
	t.Run("TruncateContract", func(t *testing.T) { testTruncate(t, mk(t)) })
	t.Run("ErrorContract", func(t *testing.T) { testErrors(t, mk(t)) })
	t.Run("ManySmallFiles", func(t *testing.T) { testManyFiles(t, mk(t)) })
	t.Run("RandomizedAgainstModel", func(t *testing.T) { testRandomized(t, mk(t)) })
}

func testCreateOpen(t *testing.T, v fs.FileSystem) {
	f, err := v.Create("/a.bin")
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xAB}, 10_000)
	if n, err := f.WriteAt(want, 0); err != nil || n != len(want) {
		t.Fatalf("WriteAt = (%d, %v)", n, err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	g, err := v.Open("/a.bin")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(want))
	if n, err := g.ReadAt(got, 0); err != nil || n != len(want) {
		t.Fatalf("ReadAt = (%d, %v)", n, err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("content mismatch")
	}
	if g.Size() != int64(len(want)) {
		t.Fatalf("Size = %d", g.Size())
	}
}

func testOverwrite(t *testing.T, v fs.FileSystem) {
	f, _ := v.Create("/f")
	for round := byte(1); round <= 5; round++ {
		if _, err := f.WriteAt(bytes.Repeat([]byte{round}, 5000), 1000); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		got := make([]byte, 5000)
		if _, err := f.ReadAt(got, 1000); err != nil {
			t.Fatal(err)
		}
		if got[0] != round || got[4999] != round {
			t.Fatalf("round %d: stale data", round)
		}
	}
}

func testSparse(t *testing.T, v fs.FileSystem) {
	f, _ := v.Create("/sparse")
	if _, err := f.WriteAt([]byte{1}, 100_000); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 100_001 {
		t.Fatalf("Size = %d", f.Size())
	}
	got := make([]byte, 4096)
	if _, err := f.ReadAt(got, 50_000); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("hole byte %d = %d", i, b)
		}
	}
}

func testDirTree(t *testing.T, v fs.FileSystem) {
	for _, dir := range []string{"/a", "/a/b", "/a/b/c"} {
		if err := v.Mkdir(dir); err != nil {
			t.Fatalf("Mkdir(%s): %v", dir, err)
		}
	}
	for i := 0; i < 5; i++ {
		f, err := v.Create(fmt.Sprintf("/a/b/c/f%d", i))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := f.WriteAt([]byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	ents, err := v.ReadDir("/a/b/c")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 5 {
		t.Fatalf("entries = %d", len(ents))
	}
	info, err := v.Stat("/a/b")
	if err != nil || !info.IsDir {
		t.Fatalf("Stat dir: %+v %v", info, err)
	}
}

func testRemoveRecreate(t *testing.T, v fs.FileSystem) {
	for cycle := 0; cycle < 10; cycle++ {
		f, err := v.Create("/cyc")
		if err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if _, err := f.WriteAt(bytes.Repeat([]byte{byte(cycle)}, 20_000), 0); err != nil {
			t.Fatal(err)
		}
		if err := f.Sync(); err != nil {
			t.Fatal(err)
		}
		if err := v.Remove("/cyc"); err != nil {
			t.Fatal(err)
		}
		if _, err := v.Open("/cyc"); !errors.Is(err, fs.ErrNotExist) {
			t.Fatal("removed file still opens")
		}
	}
}

func testRename(t *testing.T, v fs.FileSystem) {
	f, _ := v.Create("/one")
	_, _ = f.WriteAt([]byte("one"), 0)
	_ = f.Sync()
	if err := v.Rename("/one", "/two"); err != nil {
		t.Fatal(err)
	}
	if _, err := v.Open("/one"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("source survived")
	}
	g, err := v.Open("/two")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 3)
	if _, err := g.ReadAt(got, 0); err != nil || string(got) != "one" {
		t.Fatalf("content: %q %v", got, err)
	}
	// Replace semantics.
	h, _ := v.Create("/three")
	_, _ = h.WriteAt([]byte("333"), 0)
	_ = h.Sync()
	if err := v.Rename("/three", "/two"); err != nil {
		t.Fatal(err)
	}
	g2, _ := v.Open("/two")
	if _, err := g2.ReadAt(got, 0); err != nil || string(got) != "333" {
		t.Fatalf("replace failed: %q %v", got, err)
	}
	if err := v.Rename("/absent", "/x"); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("rename missing = %v", err)
	}
}

func testTruncate(t *testing.T, v fs.FileSystem) {
	f, _ := v.Create("/t")
	if _, err := f.WriteAt(bytes.Repeat([]byte{7}, 50_000), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Truncate(10_000); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 10_000 {
		t.Fatalf("Size = %d", f.Size())
	}
	got := make([]byte, 50_000)
	n, err := f.ReadAt(got, 0)
	if err != nil || n != 10_000 {
		t.Fatalf("ReadAt after shrink = (%d, %v)", n, err)
	}
	if err := f.Truncate(0); err != nil {
		t.Fatal(err)
	}
	if f.Size() != 0 {
		t.Fatal("truncate(0)")
	}
	if err := f.Truncate(-1); err == nil {
		t.Fatal("negative truncate accepted")
	}
}

func testErrors(t *testing.T, v fs.FileSystem) {
	if _, err := v.Open("/missing"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Open missing = %v", err)
	}
	if _, err := v.Create("/no/such/dir/f"); !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("Create under missing dir = %v", err)
	}
	if err := v.Mkdir("/"); err == nil {
		t.Error("Mkdir(/) succeeded")
	}
	if _, err := v.Open("/"); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("Open(/) = %v", err)
	}
	f, _ := v.Create("/plain")
	_ = f.Close()
	if err := v.Mkdir("/plain/sub"); !errors.Is(err, fs.ErrNotDir) {
		t.Errorf("Mkdir under file = %v", err)
	}
	if _, err := v.ReadDir("/plain"); !errors.Is(err, fs.ErrNotDir) {
		t.Errorf("ReadDir(file) = %v", err)
	}
	_ = v.Mkdir("/d")
	if _, err := v.Create("/d"); !errors.Is(err, fs.ErrIsDir) {
		t.Errorf("Create over dir = %v", err)
	}
}

func testManyFiles(t *testing.T, v fs.FileSystem) {
	const n = 60
	for i := 0; i < n; i++ {
		f, err := v.Create(fmt.Sprintf("/m%02d", i))
		if err != nil {
			t.Fatalf("create %d: %v", i, err)
		}
		if _, err := f.WriteAt([]byte{byte(i)}, 0); err != nil {
			t.Fatal(err)
		}
		_ = f.Close()
	}
	ents, err := v.ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != n {
		t.Fatalf("entries = %d, want %d", len(ents), n)
	}
	for i := 0; i < n; i++ {
		g, err := v.Open(fmt.Sprintf("/m%02d", i))
		if err != nil {
			t.Fatal(err)
		}
		b := make([]byte, 1)
		if _, err := g.ReadAt(b, 0); err != nil || b[0] != byte(i) {
			t.Fatalf("file %d content %d (%v)", i, b[0], err)
		}
	}
}

func testRandomized(t *testing.T, v fs.FileSystem) {
	f, err := v.Create("/model")
	if err != nil {
		t.Fatal(err)
	}
	const span = 200_000
	model := make([]byte, span)
	//flashvet:ignore globalrand conformance corpus is pinned so every file system replays the identical history
	rng := rand.New(rand.NewSource(77))
	var size int64
	for op := 0; op < 300; op++ {
		off := int64(rng.Intn(span - 5000))
		n := rng.Intn(5000) + 1
		val := byte(rng.Intn(256))
		chunk := bytes.Repeat([]byte{val}, n)
		if _, err := f.WriteAt(chunk, off); err != nil {
			t.Fatalf("op %d: %v", op, err)
		}
		copy(model[off:off+int64(n)], chunk)
		if off+int64(n) > size {
			size = off + int64(n)
		}
		if op%37 == 0 {
			if err := f.Sync(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if f.Size() != size {
		t.Fatalf("Size = %d, want %d", f.Size(), size)
	}
	got := make([]byte, size)
	if _, err := f.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, model[:size]) {
		t.Fatal("diverged from model")
	}
}
