package hostio

import (
	"reflect"
	"testing"
)

// FuzzParsePlan drives the host-fault plan grammar with arbitrary input.
// The parser must never panic, must only accept plans Validate accepts,
// and must be deterministic.
func FuzzParsePlan(f *testing.F) {
	for _, s := range []string{
		"",
		"class=checkpoint,fault=enospc,on=write,from=3,until=40",
		"class=journal,fault=eio,on=sync,at=2;5|class=checkpoint,fault=torn,p=0.05,seed=9",
		"fault=enospc,every=10",
		"fault=eio,at=1",
		"fault=eio,at=1;2,at=3",
		"fault=rename,on=rename,p=1",
		"fault=torn,p=0.5,seed=3",
		"fault=eio", // no trigger
		"class=bogus,fault=eio,at=1",
		"fault=bogus,at=1",
		"fault=eio,on=bogus,at=1",
		"fault=eio,from=5,until=3", // empty window
		"fault=eio,p=2",
		"seed=1,fault=eio,at=1|seed=2,fault=eio,at=2", // duplicate global seed
		"|",
		"=",
		",",
		"fault=eio,at=",
		"fault=torn,p=NaN,seed=1", // NaN compares false against every bound; Validate must still reject it
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePlan(%q) accepted a plan Validate rejects: %v", s, verr)
		}
		q, err2 := ParsePlan(s)
		if err2 != nil {
			t.Fatalf("ParsePlan(%q) not deterministic: nil error then %v", s, err2)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("ParsePlan(%q) not deterministic: %+v vs %+v", s, p, q)
		}
	})
}
