GO ?= go

.PHONY: all build vet lint test fuzz race bench benchsnap faults torture wtrace fleetd-smoke fleetd-bigsmoke check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The project's own analyzers (DESIGN.md §10, §15): the five syntactic
# invariants (wall-clock time, global math/rand, unsorted map emission,
# float accumulation in merge paths, discarded NAND/FTL errors), the
# cross-package simtaint data-flow analysis, and the fleetd lock-
# discipline check. Builds cmd/flashvet and runs the suite over the whole
# module; exits non-zero on any finding or unused ignore directive. The
# waiver audit then re-lists every ignore directive and ops-domain opt-out
# and diffs it against the committed baseline, so a new waiver is a
# reviewed diff of lint_waivers.txt, never a silent addition. The same
# binary also works as `go vet -vettool=$$(pwd)/bin/flashvet ./...`.
lint:
	@mkdir -p bin
	$(GO) build -o bin/flashvet ./cmd/flashvet
	./bin/flashvet ./...
	./bin/flashvet -waivers ./... >bin/lint_waivers.txt
	diff -u lint_waivers.txt bin/lint_waivers.txt

test:
	$(GO) test ./...

# Native fuzz smoke (DESIGN.md §15): the two fault-plan grammars and the
# checkpoint cell decoder, each seeded from its committed corpus
# (testdata/fuzz/) and run briefly under coverage guidance. The pinned
# properties live in the Fuzz* doc comments: parsers never panic, accept
# only what Validate accepts, and are deterministic; the cell decoder
# never panics, never trusts a lying length field, and maps every failure
# to the three-way checkpoint error policy. -run=NONE skips the unit
# tests, so this stacks on `test` without re-running them.
fuzz:
	$(GO) test -run=NONE -fuzz=FuzzParsePlan -fuzztime=10s ./internal/faultinject/
	$(GO) test -run=NONE -fuzz=FuzzParsePlan -fuzztime=10s ./internal/hostio/
	$(GO) test -run=NONE -fuzz=FuzzCellDecode -fuzztime=15s ./internal/fleetd/

# A short -race pass over the concurrent subsystems: the fleet
# determinism tests run the same 64-device population at 4 workers and at
# 1 and require byte-identical aggregates — including the merged wear
# ledger (DESIGN.md §6, §9) — plus the telemetry registry and wtrace
# ledger under concurrent registration/emission.
race:
	$(GO) test -race -count=1 -run TestFleet ./internal/fleet/
	$(GO) test -race -count=1 -run 'TestRegistryConcurrent|TestWtraceCollector' ./internal/telemetry/
	$(GO) test -race -count=1 -run TestConcurrentLedger ./internal/wtrace/
	$(GO) test -race -count=1 -run TestConcurrentSpans ./internal/runtrace/
	$(GO) test -race -count=1 -run 'TestCampaignInMemory|TestServerAPI|TestResumeAfterTruncatedCell' ./internal/fleetd/

# The fault matrix under -race: randomized power-cut/remount recovery,
# program/erase-failure handling, graceful EOL, the faulty-flash crash
# suites for both file systems, and the fleet's fault-plan/panic paths
# (DESIGN.md §8).
faults:
	$(GO) test -race -count=1 \
		-run 'TestRecover|TestProgramFailures|TestGraceful|TestBrickAtEOL|TestEOLSpare|TestQuickRemount|TestCrashConformanceOnFaultyFlash|TestFleetFaultPlan|TestFleetPanic|TestInjector' \
		./internal/ftl/ ./internal/faultinject/ ./internal/fleet/ \
		./internal/fs/extfs/ ./internal/fs/f2fs/

# The host-fault torture matrix under -race (DESIGN.md §13): campaigns
# over a fault-injecting filesystem (ENOSPC, EIO, torn writes, rename
# failures — against checkpoint cells and the event journal), interrupted
# and re-adopted mid-run, must produce results byte-identical to a clean
# run; plus the HTTP plane's failure behavior (idempotent retries, client
# backoff/timeouts, SSE release on shutdown). The verbose log lands in
# torture-out/ (CI uploads it alongside the smoke run's journals).
torture:
	rm -rf torture-out && mkdir -p torture-out
	$(GO) test -race -short -count=1 -v \
		-run 'TestTorture|TestIdempotent|TestClient|TestWatchEndsOnShutdown' \
		./internal/fleetd/ >torture-out/torture.log 2>&1 \
		|| { tail -40 torture-out/torture.log; exit 1; }
	@tail -1 torture-out/torture.log

# One pass over every benchmark (each regenerates a paper exhibit);
# -benchtime=1x keeps it a smoke run. Drop the flag for real timings.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem .

# Benchmark-trajectory snapshot (DESIGN.md §14): fleet scaling devices/s,
# runtrace recording overhead, and a live campaign's per-phase wall-time
# split, written to BENCH_fleetd.json (committed) with raw artifacts in
# benchsnap-out/. Deliberately NOT part of check: timings are machine-
# dependent, so the committed file is refreshed by hand, not by CI.
benchsnap:
	./scripts/bench_snapshot.sh

# End-to-end wear-attribution smoke (DESIGN.md §9): run the CLIs with
# tracing on, then validate every artifact with wtracecheck — the ledger's
# decomposition identities and the Chrome trace's well-formedness — and
# require the fleet ledger to be byte-identical across worker counts.
# Artifacts land in wtrace-out/ (CI uploads them).
wtrace:
	rm -rf wtrace-out && mkdir -p wtrace-out
	$(GO) build -o wtrace-out/ ./cmd/flashsim ./cmd/fleetsim ./cmd/wtracecheck
	./wtrace-out/flashsim -device "eMMC 8GB" -scale 2048 -gib 0.2 -fill 0.3 \
		-wear-ledger wtrace-out/flashsim-ledger.csv -wear-trace wtrace-out/flashsim-trace.json >/dev/null
	./wtrace-out/fleetsim -devices 12 -days 2 -scale 16384 -seed 7 -quiet -workers 1 \
		-wear-trace wtrace-out/fleet-ledger-w1.csv >/dev/null
	./wtrace-out/fleetsim -devices 12 -days 2 -scale 16384 -seed 7 -quiet -workers 4 \
		-wear-trace wtrace-out/fleet-ledger-w4.csv >/dev/null
	cmp wtrace-out/fleet-ledger-w1.csv wtrace-out/fleet-ledger-w4.csv
	./wtrace-out/wtracecheck -ledger wtrace-out/flashsim-ledger.csv -trace wtrace-out/flashsim-trace.json
	./wtrace-out/wtracecheck -ledger wtrace-out/fleet-ledger-w1.csv

# fleetd end-to-end smoke (DESIGN.md §11, §12): start the campaign
# service, submit a checkpointed campaign, kill -9 the server mid-run,
# restart, resume, and require the final series/ledger/result — and the
# sim-domain journal events — byte-identical to an uninterrupted run,
# with the event journal contiguously sequenced across the kill and
# /metrics serving the ops families. Runs in a mktemp -d scratch dir;
# set FLEETD_SMOKE_ARTIFACTS to keep the fetched artifacts (CI does).
fleetd-smoke:
	./scripts/fleetd_smoke.sh

# Opt-in scale check (not part of check): a large sharded campaign
# through the service path, for watching steady-state memory stay
# O(workers) while the population grows. Tune FLEETD_BIG_* to taste.
fleetd-bigsmoke:
	rm -rf fleetd-big-out && mkdir -p fleetd-big-out
	$(GO) build -o fleetd-big-out/fleetsim ./cmd/fleetsim
	./fleetd-big-out/fleetsim -devices $${FLEETD_BIG_DEVICES:-2000} \
		-days $${FLEETD_BIG_DAYS:-30} -scale 65536 -seed 42 -quiet \
		-shards 8 -checkpoint fleetd-big-out/data -checkpoint-every 5 \
		-metrics-csv fleetd-big-out/series.csv

# The verification entrypoint: everything CI (or a reviewer) should run.
check: vet lint build test fuzz race faults torture wtrace fleetd-smoke
