// Package fleet runs population-scale wear simulations: N fully
// independent simulated phones in parallel, answering the question a
// carrier or OEM actually asks about the paper's result — "what fraction
// of a million-phone population bricks within a year, given a realistic
// mix of device models and app workloads?"
//
// # Architecture
//
// The engine is a worker pool. Each worker owns a private simulation stack
// per device — one simclock.Clock, one device.Device, one mounted file
// system, one core.Runner — so no shared mutable state ever crosses a
// goroutine boundary. Work is distributed by an atomic cursor (dynamic
// load balancing: a worker that drew a cheap benign phone immediately
// picks up the next index), and results stream into a lock-free
// per-worker Accumulator that is merged after the pool drains.
//
// # Determinism
//
// A fleet run is a pure function of its Spec. Three properties combine to
// make the aggregate output byte-identical across runs and across worker
// counts:
//
//  1. Per-device derivation: every simulation parameter of device i —
//     profile, workload class, daily write rate, the NAND/FTL/workload
//     seeds — is sampled from an RNG seeded by splitmix64(Spec.Seed, i).
//     Nothing depends on which worker runs the device or when.
//  2. Isolated simulation: each device runs on its own clock against its
//     own stack; the simulation itself is deterministic given its seeds.
//  3. Additive aggregation: accumulators hold only integer counters and
//     integer-count histograms, so merging is exactly associative and
//     commutative — any partition of devices over workers merges to the
//     same state. (Floating-point sums would not survive reordering.)
//
// See DESIGN.md §6 for the full determinism argument.
package fleet

import (
	"fmt"
	"io"

	"flashwear/internal/report"
	"flashwear/internal/wtrace"
)

// Group aggregates outcomes for a slice of the population (one profile, or
// one workload class). All fields are integers so that merging per-worker
// groups is order-independent.
type Group struct {
	Devices int64
	Bricked int64
	// HostMiB is full-scale host data written, in MiB.
	HostMiB int64
	// BrickDayMilli is the sum over bricked devices of time-to-brick in
	// millidays; divide by Bricked for the mean.
	BrickDayMilli int64
}

func (g *Group) add(r DeviceResult) {
	g.Devices++
	g.HostMiB += r.HostBytes >> 20
	if r.Bricked {
		g.Bricked++
		g.BrickDayMilli += int64(r.Days * 1000)
	}
}

//flashvet:sim-sink fleet group aggregate
func (g *Group) merge(o *Group) {
	g.Devices += o.Devices
	g.Bricked += o.Bricked
	g.HostMiB += o.HostMiB
	g.BrickDayMilli += o.BrickDayMilli
}

// BrickFraction returns the fraction of the group's devices that bricked.
func (g *Group) BrickFraction() float64 {
	if g.Devices == 0 {
		return 0
	}
	return float64(g.Bricked) / float64(g.Devices)
}

// MeanDaysToBrick returns the mean time-to-brick over the group's bricked
// devices, or 0 if none bricked.
func (g *Group) MeanDaysToBrick() float64 {
	if g.Bricked == 0 {
		return 0
	}
	return float64(g.BrickDayMilli) / 1000 / float64(g.Bricked)
}

// Accumulator collects population statistics. Each worker owns one (no
// locking on the hot path); Run merges them into the Result.
type Accumulator struct {
	Total Group
	// TimeToBrick histograms days-to-brick over bricked devices.
	TimeToBrick *report.Histogram
	// DeathGiB histograms full-scale host GiB written at death.
	DeathGiB *report.Histogram
	// SurvivorWear histograms the final Type B wear-indicator level of
	// devices that survived the horizon (JEDEC levels 0–11).
	SurvivorWear *report.Histogram
	// WriteAmp histograms per-device cumulative write amplification.
	WriteAmp *report.Histogram
	// Metrics is the population wear trajectory sampled every
	// Spec.MetricsEvery (nil when sampling is disabled).
	Metrics *MetricsSeries
	// Wear is the population wear-attribution ledger (nil unless
	// Spec.WearTrace): the per-origin full-scale wear of every device,
	// merged by origin name. All counts are integers, so like every other
	// accumulator field it merges order-independently.
	Wear *wtrace.Snapshot

	// Failed counts devices whose simulation panicked. The panic is
	// contained in the worker: the device is recorded here instead of
	// aborting the run, and it contributes to no other statistic.
	Failed int64
	// FailedSeeds are the per-device seeds of the failed simulations,
	// sorted ascending, so each failure can be reproduced in isolation
	// (seed a single-device Spec with it).
	FailedSeeds []int64

	ByProfile map[string]*Group
	ByClass   map[string]*Group
}

func newAccumulator(spec Spec) *Accumulator {
	a := &Accumulator{
		TimeToBrick:  report.NewHistogram(0, spec.Days, 120),
		DeathGiB:     report.NewHistogram(0, 40960, 160), // 256 GiB buckets to 40 TiB
		SurvivorWear: report.NewHistogram(0, 12, 12),
		WriteAmp:     report.NewHistogram(1, 4, 60),
		ByProfile:    make(map[string]*Group),
		ByClass:      make(map[string]*Group),
	}
	if spec.MetricsEvery > 0 {
		a.Metrics = newMetricsSeries(spec)
	}
	if spec.WearTrace {
		a.Wear = &wtrace.Snapshot{}
	}
	return a
}

func groupFor(m map[string]*Group, key string) *Group {
	g, ok := m[key]
	if !ok {
		g = &Group{}
		m[key] = g
	}
	return g
}

func (a *Accumulator) add(r DeviceResult) {
	a.Total.add(r)
	groupFor(a.ByProfile, r.ProfileName).add(r)
	groupFor(a.ByClass, r.Class.String()).add(r)
	if r.Bricked {
		a.TimeToBrick.Add(r.Days)
		a.DeathGiB.Add(float64(r.HostBytes) / (1 << 30))
	} else {
		a.SurvivorWear.Add(float64(r.WearLevel))
	}
	a.WriteAmp.Add(r.WA)
	if a.Metrics != nil && r.metrics != nil {
		a.Metrics.addDevice(r.metrics)
	}
	if a.Wear != nil {
		a.Wear.Merge(r.wear)
	}
}

// noteFailed records a device whose simulation panicked.
func (a *Accumulator) noteFailed(seed int64) {
	a.Failed++
	a.FailedSeeds = append(a.FailedSeeds, seed)
}

//flashvet:sim-sink fleet run accumulator
func (a *Accumulator) merge(o *Accumulator) error {
	a.Total.merge(&o.Total)
	a.Failed += o.Failed
	a.FailedSeeds = append(a.FailedSeeds, o.FailedSeeds...)
	for _, pair := range []struct{ dst, src *report.Histogram }{
		{a.TimeToBrick, o.TimeToBrick},
		{a.DeathGiB, o.DeathGiB},
		{a.SurvivorWear, o.SurvivorWear},
		{a.WriteAmp, o.WriteAmp},
	} {
		if err := pair.dst.Merge(pair.src); err != nil {
			return fmt.Errorf("fleet: merge: %w", err)
		}
	}
	if a.Metrics != nil {
		if err := a.Metrics.merge(o.Metrics); err != nil {
			return err
		}
	}
	if a.Wear != nil && o.Wear != nil {
		a.Wear.Merge(*o.Wear)
	}
	for k, g := range o.ByProfile {
		groupFor(a.ByProfile, k).merge(g)
	}
	for k, g := range o.ByClass {
		groupFor(a.ByClass, k).merge(g)
	}
	return nil
}

// Result is the merged outcome of a fleet run.
type Result struct {
	// Spec echoes the run's (defaulted) specification.
	Spec Spec
	*Accumulator
}

// WriteWearCSV writes the population wear-attribution ledger as CSV
// (wtrace.Snapshot.WriteCSV). The output is a pure function of the Spec —
// byte-identical across worker counts — because the merged snapshot is.
// It errors if the run was not traced (Spec.WearTrace unset).
func (r *Result) WriteWearCSV(w io.Writer) error {
	if r.Accumulator == nil || r.Wear == nil {
		return fmt.Errorf("fleet: run has no wear ledger (Spec.WearTrace not set)")
	}
	return r.Wear.WriteCSV(w)
}
