package ecc

import "fmt"

// BCH models the correction capability of the BCH codes used by eMMC-class
// controllers: up to T raw bit errors per codeword of CodewordBytes are
// corrected transparently; more are uncorrectable.
//
// Unlike the Hamming codec this is a capability model, not a bit-level
// implementation — the endurance simulation only needs to know where the
// correctable/uncorrectable boundary lies, and the boundary is exactly T.
type BCH struct {
	// T is the maximum number of correctable bit errors per codeword.
	T int
	// CodewordBytes is the protected unit, typically 1 KiB.
	CodewordBytes int
}

// NewBCH returns a BCH capability model, validating its parameters.
func NewBCH(t, codewordBytes int) (BCH, error) {
	if t < 1 {
		return BCH{}, fmt.Errorf("ecc: BCH: t = %d, want >= 1", t)
	}
	if codewordBytes < 1 {
		return BCH{}, fmt.Errorf("ecc: BCH: codeword = %d bytes, want >= 1", codewordBytes)
	}
	return BCH{T: t, CodewordBytes: codewordBytes}, nil
}

// DefaultBCH returns the eMMC-class default: 8 bits per 1 KiB.
func DefaultBCH() BCH { return BCH{T: 8, CodewordBytes: 1024} }

// Correctable reports whether a codeword with bitErrors raw errors decodes.
func (b BCH) Correctable(bitErrors int) bool { return bitErrors <= b.T }

// ParityBytes estimates the parity overhead per codeword: a binary BCH code
// over GF(2^m) needs at most m*t parity bits, with m the smallest field
// exponent covering the codeword.
func (b BCH) ParityBytes() int {
	n := b.CodewordBytes * 8
	m := 1
	for (1<<m)-1 < n {
		m++
	}
	return (m*b.T + 7) / 8
}

// String implements fmt.Stringer.
func (b BCH) String() string {
	return fmt.Sprintf("BCH(t=%d per %dB)", b.T, b.CodewordBytes)
}
