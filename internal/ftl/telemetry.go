package ftl

import "flashwear/internal/telemetry"

// Attach registers the FTL's instruments with reg. Every instrument is
// pull-based: the write path already maintains Stats with plain
// increments, so snapshots read that state and the hot path carries no
// telemetry cost at all — an atomic add per WritePage measured ~8% on the
// accounting-mode path, so push counters are reserved for cross-goroutine
// producers (see fleet). BenchmarkTelemetryOverhead guards the
// zero-overhead property.
//
// Every pull callback is a pure observer: none touches the fragmentation
// cache, the RNGs, or any other mutable state (DESIGN.md §7).
func (f *FTL) Attach(reg *telemetry.Registry) {
	reg.CounterFunc("ftl.host_pages_written", func() int64 { return f.stats.HostPagesWritten })
	reg.CounterFunc("ftl.host_bytes_written", func() int64 { return f.stats.HostBytesWritten })
	reg.CounterFunc("ftl.host_pages_read", func() int64 { return f.stats.HostPagesRead })
	reg.CounterFunc("ftl.gc_invocations", func() int64 { return f.main.collects })
	reg.CounterFunc("ftl.gc_copies", func() int64 { return f.main.gcCopies })
	reg.CounterFunc("ftl.drain_migrations", func() int64 { return f.stats.DrainMigrations })
	reg.CounterFunc("ftl.cache_absorbed", func() int64 { return f.stats.CacheAbsorbed })
	reg.CounterFunc("ftl.cache_bypassed", func() int64 { return f.stats.CacheBypassed })
	reg.CounterFunc("ftl.lost_pages", func() int64 { return f.stats.LostPages })
	reg.CounterFunc("ftl.merge_events", func() int64 { return f.stats.MergeEvents })
	reg.GaugeFunc("ftl.write_amp", f.WriteAmplification)
	reg.GaugeFunc("ftl.utilisation", f.Utilisation)
	reg.GaugeFunc("ftl.merged", func() float64 { return boolGauge(f.merged) })
	// Wear-leveling health of the main pool: the min/max/spread telemetry
	// §2.2's leveling mechanisms exist to flatten.
	reg.GaugeFunc("ftl.wear_min", func() float64 { return f.main.chip.MinWear() })
	reg.GaugeFunc("ftl.wear_max", func() float64 { return f.main.chip.MaxWear() })
	reg.GaugeFunc("ftl.wear_spread", func() float64 {
		return f.main.chip.MaxWear() - f.main.chip.MinWear()
	})
}

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
