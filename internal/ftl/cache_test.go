package ftl

import (
	"testing"

	"flashwear/internal/nand"
)

// newTestCache builds a bare cachePool over a small SLC chip.
func newTestCache(t *testing.T, blocks, rated int) *cachePool {
	t.Helper()
	chip, err := nand.New(nand.Config{
		Geometry: nand.Geometry{
			Dies: 1, PlanesPerDie: 1, BlocksPerPlane: blocks,
			PagesPerBlock: 4, PageSize: 4096,
		},
		Cell: nand.SLC, RatedPE: rated, Seed: 31,
	})
	if err != nil {
		t.Fatal(err)
	}
	return newCachePool(chip)
}

func TestCacheRingFillsAndReportsNoSlot(t *testing.T) {
	c := newTestCache(t, 4, 100_000)
	var cost Cost
	// 4 blocks x 4 pages, one block kept as head/tail gap: 3 blocks + the
	// head block... fill until hasFreeSlot goes false.
	writes := 0
	for c.hasFreeSlot() {
		if _, err := c.program(int32(writes), nil, &cost, 0); err != nil {
			t.Fatalf("program %d: %v", writes, err)
		}
		writes++
		if writes > 64 {
			t.Fatal("ring never filled")
		}
	}
	// All four blocks absorb; the ring only refuses to *advance* into the
	// tail, which it would have to do for a 17th page.
	if writes != 4*4 {
		t.Fatalf("absorbed %d pages before filling, want 16 (all 4 blocks)", writes)
	}
	if !c.content() {
		t.Fatal("full ring reports no content")
	}
}

func TestCacheDrainFIFOAndRecycle(t *testing.T) {
	c := newTestCache(t, 4, 100_000)
	var cost Cost
	for i := 0; i < 12; i++ {
		if _, err := c.program(int32(i), nil, &cost, 0); err != nil {
			t.Fatal(err)
		}
	}
	// Drain returns live pages in write (FIFO) order. Fully scanned tail
	// blocks are erased lazily on the *next* drain call (the last live page
	// must reach the main pool before its only flash copy is destroyed), so
	// a ninth call is needed for the second block's erase to fire.
	var drained []int32
	for i := 0; i < 9; i++ {
		lp, _, _, err := c.drainOne(&cost)
		if err != nil {
			t.Fatal(err)
		}
		if lp >= 0 {
			drained = append(drained, lp)
		}
	}
	for i, lp := range drained {
		if lp != int32(i) {
			t.Fatalf("drain order broken: position %d = lp %d", i, lp)
		}
	}
	// Two blocks scanned -> erased -> slots free again.
	if !c.hasFreeSlot() {
		t.Fatal("drained ring has no free slot")
	}
	if c.chip.Stats().Erases != 2 {
		t.Fatalf("erases = %d, want 2", c.chip.Stats().Erases)
	}
}

func TestCacheDrainSkipsDeadPages(t *testing.T) {
	c := newTestCache(t, 4, 100_000)
	var cost Cost
	locs := make([]loc, 8)
	for i := 0; i < 8; i++ {
		l, err := c.program(int32(i), nil, &cost, 0)
		if err != nil {
			t.Fatal(err)
		}
		locs[i] = l
	}
	// Kill the first four.
	for i := 0; i < 4; i++ {
		c.invalidate(locs[i])
	}
	live := 0
	for i := 0; i < 8; i++ {
		lp, _, _, err := c.drainOne(&cost)
		if err != nil {
			t.Fatal(err)
		}
		if lp >= 0 {
			live++
			if lp < 4 {
				t.Fatalf("dead page %d drained as live", lp)
			}
		}
	}
	if live != 4 {
		t.Fatalf("drained %d live pages, want 4", live)
	}
}

func TestCacheInvalidateIdempotent(t *testing.T) {
	c := newTestCache(t, 4, 100_000)
	var cost Cost
	l, err := c.program(7, nil, &cost, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.validPages() != 1 {
		t.Fatalf("validPages = %d", c.validPages())
	}
	c.invalidate(l)
	c.invalidate(l)
	if c.validPages() != 0 {
		t.Fatalf("validPages after double invalidate = %d", c.validPages())
	}
}

func TestCacheBadBlockLeavesRing(t *testing.T) {
	// Worn-out cache blocks are retired out of the ring; the cache keeps
	// operating with fewer blocks and eventually reports dead.
	c := newTestCache(t, 4, 8) // rated 8: dies fast
	var cost Cost
	i := int32(0)
	for round := 0; round < 4000 && c.alive(); round++ {
		for c.hasFreeSlot() {
			if _, err := c.program(i, nil, &cost, 0); err != nil {
				break
			}
			i++
		}
		for n := 0; n < 4; n++ {
			if _, _, _, err := c.drainOne(&cost); err != nil {
				t.Fatal(err)
			}
		}
	}
	if c.alive() {
		t.Fatal("cache survived far past rated endurance")
	}
	if c.hasFreeSlot() {
		t.Fatal("dead cache reports free slots")
	}
}

func TestCacheUtilisation(t *testing.T) {
	c := newTestCache(t, 4, 100_000)
	if c.utilisation() != 0 {
		t.Fatalf("fresh utilisation = %v", c.utilisation())
	}
	var cost Cost
	for i := 0; i < 6; i++ {
		if _, err := c.program(int32(i), nil, &cost, 0); err != nil {
			t.Fatal(err)
		}
	}
	u := c.utilisation()
	if u <= 0 || u > 1 {
		t.Fatalf("utilisation = %v", u)
	}
}
