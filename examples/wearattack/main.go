// Wearattack: the paper's §4.4 experiment end to end. An unprivileged app
// is installed on a simulated Moto E, continuously rewrites four files in
// its private storage, and destroys the phone's flash — then the same
// attack runs in stealth mode, invisible to both OS monitors.
package main

import (
	"fmt"
	"log"
	"time"

	"flashwear/pkg/flashwear"
)

func runAttack(mode flashwear.AttackMode) flashwear.AttackReport {
	const scale = 512
	clock := flashwear.NewClock()
	phone, err := flashwear.NewPhone(flashwear.PhoneConfig{
		Profile: flashwear.ProfileMotoE8().Scaled(scale),
		FS:      flashwear.FSExt4,
	}, clock)
	if err != nil {
		log.Fatal(err)
	}
	// "our application required no special permissions"
	app, err := phone.InstallApp("com.innocuous.wallpaper")
	if err != nil {
		log.Fatal(err)
	}
	clock.AdvanceTo(10 * time.Hour) // installed mid-morning

	atk := flashwear.NewAttack(app, mode, flashwear.ProfileMotoE8().EffectiveScale(scale))
	rep, err := atk.Run(phone, 10*365*24*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	return rep
}

func main() {
	for _, mode := range []flashwear.AttackMode{flashwear.Continuous, flashwear.Stealth} {
		rep := runAttack(mode)
		fmt.Printf("=== %v attack on Moto E 8GB ===\n", mode)
		fmt.Printf("  phone bricked:        %v\n", rep.Bricked)
		fmt.Printf("  storage footprint:    %.1f%% of capacity\n", rep.FootprintPct)
		fmt.Printf("  host writes issued:   %.0f GiB\n", rep.HostGiB)
		fmt.Printf("  wall-clock time:      %.1f days (duty cycle %.0f%%)\n",
			rep.Hours/24, rep.DutyCycle*100)
		fmt.Printf("  battery stats saw:    %.2f J\n", rep.PowerJoulesAttributed)
		fmt.Printf("  running-apps view:    %d sightings\n", rep.ProcessObservedCount)
		fmt.Println()
	}
	fmt.Println("The stealth run bricks the phone within a small factor of the")
	fmt.Println("continuous one while both monitors report nothing at all (§4.4).")
}
