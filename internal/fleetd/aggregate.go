package fleetd

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"strconv"

	"flashwear/internal/report"
	"flashwear/internal/wtrace"
)

// Column layout of one day row. Every column is an integer sum over
// devices — full-scale, fixed-point for the wear gauges — so shard and
// epoch merging is exactly associative and commutative, the same algebra
// internal/fleet's metrics series uses (its column set, plus a read-only
// count). Derived floats (write amplification, population means) appear
// only at render time.
const (
	dDevices = iota
	dBricked
	dReadOnly
	dHostBytes
	dFlashBytes
	dFlashErases
	dBadBlocks
	dWearAvgMicro // per-device average wear x1e6
	dWearMaxMicro // per-device max wear x1e6
	dRawBERFemto  // expected raw BER x1e15
	dWearLevel    // JEDEC Type B level sum

	dayCols
)

// wearLevels is the bucket count of the per-day wear-level sketch: JEDEC
// Type B levels 0..11.
const wearLevels = 12

// DaySeries is the campaign's streaming aggregate: one row of integer
// sums per completed simulated day, plus a per-day wear-level sketch.
// Row k is the population at the end of day k; devices that brick freeze
// at their final sample and keep contributing it (fleet's convention, so
// dDevices stays constant down the series).
type DaySeries struct {
	// Rows has dayCols entries per row.
	Rows [][]int64 `json:"rows"`
	// Wear[k] distributes the population over wear levels at day k.
	Wear []report.Sketch `json:"wear"`
}

func newDaySeries(days int) *DaySeries {
	s := &DaySeries{Rows: make([][]int64, days), Wear: make([]report.Sketch, days)}
	for i := range s.Rows {
		s.Rows[i] = make([]int64, dayCols)
		s.Wear[i] = report.NewSketch(wearLevels)
	}
	return s
}

// merge adds o into s row-wise. Lengths must match.
//
//flashvet:sim-sink campaign day-series aggregate
func (s *DaySeries) merge(o *DaySeries) error {
	if len(o.Rows) != len(s.Rows) {
		return fmt.Errorf("fleetd: merging day series of %d vs %d rows", len(s.Rows), len(o.Rows))
	}
	for i, r := range o.Rows {
		for j, v := range r {
			s.Rows[i][j] += v
		}
		if err := s.Wear[i].MergeSketch(o.Wear[i]); err != nil {
			return fmt.Errorf("fleetd: day %d: %w", i, err)
		}
	}
	return nil
}

// append extends s with o's rows (the next epoch's days).
func (s *DaySeries) append(o *DaySeries) {
	s.Rows = append(s.Rows, o.Rows...)
	s.Wear = append(s.Wear, o.Wear...)
}

// clone returns a deep copy.
func (s *DaySeries) clone() *DaySeries {
	c := &DaySeries{Rows: make([][]int64, len(s.Rows)), Wear: make([]report.Sketch, len(s.Wear))}
	for i, r := range s.Rows {
		c.Rows[i] = append([]int64(nil), r...)
		c.Wear[i] = s.Wear[i].Clone()
	}
	return c
}

// WriteCSV renders the series with fleet's derived-column conventions
// (means from integer sums; write amplification as a byte ratio), one row
// per completed simulated day:
//
//	day,devices,bricked,read_only,host_gib,write_amp,wear_avg,wear_max,
//	raw_ber,wear_level,bad_blocks,flash_erases
func (s *DaySeries) WriteCSV(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("day,devices,bricked,read_only,host_gib,write_amp,wear_avg,wear_max,raw_ber,wear_level,bad_blocks,flash_erases\n"); err != nil {
		return err
	}
	f := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	for k, r := range s.Rows {
		devices := r[dDevices]
		ratio := func(numer int64, scale float64) float64 {
			if devices == 0 {
				return 0
			}
			return float64(numer) / scale / float64(devices)
		}
		wa := 0.0
		if r[dHostBytes] > 0 {
			wa = float64(r[dFlashBytes]) / float64(r[dHostBytes])
		}
		cols := []string{
			strconv.Itoa(k + 1),
			strconv.FormatInt(devices, 10),
			strconv.FormatInt(r[dBricked], 10),
			strconv.FormatInt(r[dReadOnly], 10),
			f(float64(r[dHostBytes]) / (1 << 30)),
			f(wa),
			f(ratio(r[dWearAvgMicro], 1e6)),
			f(ratio(r[dWearMaxMicro], 1e6)),
			f(ratio(r[dRawBERFemto], 1e15)),
			f(ratio(r[dWearLevel], 1)),
			strconv.FormatInt(r[dBadBlocks], 10),
			strconv.FormatInt(r[dFlashErases], 10),
		}
		for i, c := range cols {
			if i > 0 {
				if err := bw.WriteByte(','); err != nil {
					return err
				}
			}
			if _, err := bw.WriteString(c); err != nil {
				return err
			}
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Group aggregates terminal outcomes for a population slice — fleet's
// Group plus an explicit read-only retirement count. All integers, so
// merging is order-independent.
type Group struct {
	Devices  int64 `json:"devices"`
	Bricked  int64 `json:"bricked"`
	ReadOnly int64 `json:"read_only"`
	// HostMiB is full-scale host data written, in MiB.
	HostMiB int64 `json:"host_mib"`
	// BrickDayMilli sums time-to-brick in millidays over bricked devices.
	BrickDayMilli int64 `json:"brick_day_milli"`
}

func (g *Group) add(o outcome) {
	g.Devices++
	g.HostMiB += o.HostBytes >> 20
	if o.Bricked {
		g.Bricked++
		g.BrickDayMilli += int64(o.Days * 1000)
	}
	if o.ReadOnly {
		g.ReadOnly++
	}
}

//flashvet:sim-sink campaign group aggregate
func (g *Group) merge(o Group) {
	g.Devices += o.Devices
	g.Bricked += o.Bricked
	g.ReadOnly += o.ReadOnly
	g.HostMiB += o.HostMiB
	g.BrickDayMilli += o.BrickDayMilli
}

// NamedGroup is one entry of a name-sorted group breakdown. fleetd keeps
// breakdowns as sorted slices rather than maps so that serialisation and
// JSON rendering are deterministic without per-render sorting.
type NamedGroup struct {
	Name string `json:"name"`
	Group
}

// outcome is one device's terminal result (fleet.DeviceResult's shape,
// internal to the engine).
type outcome struct {
	ProfileName string
	Class       string
	Bricked     bool
	ReadOnly    bool
	Days        float64
	HostBytes   int64
	WearLevel   int
	WA          float64
}

// Aggregate is the campaign's terminal statistics, mirroring fleet's
// Accumulator with sorted-slice breakdowns. Mid-run (before the final
// epoch) it covers only devices that already died; survivors join when
// their last day completes.
type Aggregate struct {
	Total     Group        `json:"total"`
	ByProfile []NamedGroup `json:"by_profile"`
	ByClass   []NamedGroup `json:"by_class"`
	// The histograms use fleet's geometries except TimeToBrick, which is
	// fixed at [0, 3650) days x 120 instead of [0, Days): a fork may extend
	// the horizon, and carries merge across forks only if every geometry is
	// horizon-independent.
	TimeToBrick  *report.Histogram `json:"time_to_brick"`
	DeathGiB     *report.Histogram `json:"death_gib"`
	SurvivorWear *report.Histogram `json:"survivor_wear"`
	WriteAmp     *report.Histogram `json:"write_amp"`
	// Ledger is the merged full-scale per-origin wear ledger of the
	// covered devices (zero-valued unless the campaign traces wear).
	Ledger wtrace.Snapshot `json:"ledger"`
}

func newAggregate() *Aggregate {
	return &Aggregate{
		TimeToBrick:  report.NewHistogram(0, 3650, 120),
		DeathGiB:     report.NewHistogram(0, 40960, 160),
		SurvivorWear: report.NewHistogram(0, 12, 12),
		WriteAmp:     report.NewHistogram(1, 4, 60),
	}
}

// groupFor finds or inserts the named group, keeping the slice sorted.
func groupFor(gs *[]NamedGroup, name string) *Group {
	lo, hi := 0, len(*gs)
	for lo < hi {
		mid := (lo + hi) / 2
		if (*gs)[mid].Name < name {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(*gs) && (*gs)[lo].Name == name {
		return &(*gs)[lo].Group
	}
	*gs = append(*gs, NamedGroup{})
	copy((*gs)[lo+1:], (*gs)[lo:])
	(*gs)[lo] = NamedGroup{Name: name}
	return &(*gs)[lo].Group
}

// add folds one terminal outcome in (with its scaled wear ledger, which
// is zero-valued when tracing is off).
func (a *Aggregate) add(o outcome, wear wtrace.Snapshot) {
	a.Total.add(o)
	groupFor(&a.ByProfile, o.ProfileName).add(o)
	groupFor(&a.ByClass, o.Class).add(o)
	if o.Bricked {
		a.TimeToBrick.Add(o.Days)
		a.DeathGiB.Add(float64(o.HostBytes) / (1 << 30))
	} else {
		a.SurvivorWear.Add(float64(o.WearLevel))
	}
	a.WriteAmp.Add(o.WA)
	a.Ledger.Merge(wear)
}

// merge adds o into a.
//
//flashvet:sim-sink campaign aggregate
func (a *Aggregate) merge(o *Aggregate) error {
	a.Total.merge(o.Total)
	for _, g := range o.ByProfile {
		groupFor(&a.ByProfile, g.Name).merge(g.Group)
	}
	for _, g := range o.ByClass {
		groupFor(&a.ByClass, g.Name).merge(g.Group)
	}
	for _, pair := range []struct{ dst, src *report.Histogram }{
		{a.TimeToBrick, o.TimeToBrick},
		{a.DeathGiB, o.DeathGiB},
		{a.SurvivorWear, o.SurvivorWear},
		{a.WriteAmp, o.WriteAmp},
	} {
		if err := pair.dst.Merge(pair.src); err != nil {
			return fmt.Errorf("fleetd: merge: %w", err)
		}
	}
	a.Ledger.Merge(o.Ledger)
	return nil
}

// clone returns a deep copy.
func (a *Aggregate) clone() *Aggregate {
	c := &Aggregate{
		Total:     a.Total,
		ByProfile: append([]NamedGroup(nil), a.ByProfile...),
		ByClass:   append([]NamedGroup(nil), a.ByClass...),
	}
	cloneHist := func(h *report.Histogram) *report.Histogram {
		return &report.Histogram{Min: h.Min, Max: h.Max, Sketch: h.Sketch.Clone()}
	}
	c.TimeToBrick = cloneHist(a.TimeToBrick)
	c.DeathGiB = cloneHist(a.DeathGiB)
	c.SurvivorWear = cloneHist(a.SurvivorWear)
	c.WriteAmp = cloneHist(a.WriteAmp)
	c.Ledger.Merge(a.Ledger)
	return c
}

// fixedPoint converts a gauge to integer fixed point, mapping the
// non-finite values a fully-dead chip can report to zero — the same
// convention fleet's metric rows use.
func fixedPoint(v float64, scale float64) int64 {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return 0
	}
	return int64(math.Round(v * scale))
}
