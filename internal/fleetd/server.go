package fleetd

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	httppprof "net/http/pprof"
	"strconv"
	"sync"
	"time"

	"flashwear/internal/obs"
	"flashwear/internal/runtrace"
)

// Server exposes a Manager over HTTP/JSON — the control and query plane
// of a fleetd instance:
//
//	POST /v1/campaigns            submit a CampaignSpec, returns Status
//	GET  /v1/campaigns            list campaign Statuses
//	GET  /v1/campaigns/{id}       one campaign's Status
//	GET  /v1/campaigns/{id}/series  committed day series (CSV; ?format=json)
//	GET  /v1/campaigns/{id}/ledger  point-in-time wear ledger (CSV; ?format=json)
//	GET  /v1/campaigns/{id}/result  final Aggregate (JSON; 409 until done)
//	GET  /v1/campaigns/{id}/events  journal events (?since=N; ?format=jsonl)
//	GET  /v1/campaigns/{id}/watch   live event stream (SSE; ?since=N)
//	POST /v1/campaigns/{id}/pause
//	POST /v1/campaigns/{id}/resume
//	POST /v1/campaigns/{id}/fork  body ForkOptions, returns the fork's Status
//	GET  /metrics                 ops-domain metrics (Prometheus text format)
//	POST /v1/trace/start          open a runtrace recording window
//	POST /v1/trace/stop           close it (spans stay fetchable)
//	GET  /v1/trace                fetch the window as Chrome trace-event JSON
//	GET  /v1/trace/status         recording state + per-phase wall totals
//	GET  /debug/pprof/...         net/http/pprof (profile/heap/trace/...)
//
// Every query serves committed state under the campaign mutex, so
// polling mid-run never observes a half-merged epoch. Every route runs
// through the obs middleware: panic recovery, request metrics, and (when
// the manager has a logger) a structured log line per request. Mutating
// routes additionally honor the Idempotency-Key header (see idemStore),
// so a client that timed out can retry without double-executing.
type Server struct {
	mgr  *Manager
	mux  *http.ServeMux
	idem *idemStore

	shutdownOnce sync.Once
	shutdown     chan struct{}
}

// NewServer wraps a manager in an HTTP handler.
func NewServer(mgr *Manager) *Server {
	s := &Server{mgr: mgr, mux: http.NewServeMux(), idem: newIdemStore(0), shutdown: make(chan struct{})}
	handle := func(pattern string, h http.HandlerFunc) {
		// The mux pattern doubles as the route label so metric cardinality
		// stays fixed no matter what IDs clients request.
		s.mux.Handle(pattern, obs.Instrument(pattern, mgr.metrics.HTTP, mgr.Logger(), h))
	}
	handle("POST /v1/campaigns", s.idempotent(s.submit))
	handle("GET /v1/campaigns", s.list)
	handle("GET /v1/campaigns/{id}", s.status)
	handle("GET /v1/campaigns/{id}/series", s.series)
	handle("GET /v1/campaigns/{id}/ledger", s.ledger)
	handle("GET /v1/campaigns/{id}/result", s.result)
	handle("GET /v1/campaigns/{id}/events", s.events)
	handle("GET /v1/campaigns/{id}/watch", s.watch)
	handle("POST /v1/campaigns/{id}/pause", s.idempotent(s.pause))
	handle("POST /v1/campaigns/{id}/resume", s.idempotent(s.resume))
	handle("POST /v1/campaigns/{id}/fork", s.idempotent(s.fork))
	handle("GET /metrics", mgr.metrics.Registry.ServeHTTP)
	// Execution tracing (DESIGN.md §14). Start/stop are naturally
	// idempotent — re-starting restarts the window — so they skip the
	// Idempotency-Key machinery.
	handle("POST /v1/trace/start", s.traceStart)
	handle("POST /v1/trace/stop", s.traceStop)
	handle("GET /v1/trace", s.traceFetch)
	handle("GET /v1/trace/status", s.traceStatus)
	// net/http/pprof on the ops plane. CPU profile and execution trace
	// block for ?seconds=N, so they clear the server WriteTimeout the
	// same way the SSE watch does.
	handle("GET /debug/pprof/", noWriteTimeout(httppprof.Index))
	handle("GET /debug/pprof/cmdline", httppprof.Cmdline)
	handle("GET /debug/pprof/profile", noWriteTimeout(httppprof.Profile))
	handle("GET /debug/pprof/symbol", httppprof.Symbol)
	handle("POST /debug/pprof/symbol", httppprof.Symbol)
	handle("GET /debug/pprof/trace", noWriteTimeout(httppprof.Trace))
	return s
}

// noWriteTimeout clears the server's write deadline for one response —
// for handlers that legitimately stream or block (pprof's ?seconds=N
// profile windows), exactly like the SSE watch route.
func noWriteTimeout(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		http.NewResponseController(w).SetWriteDeadline(time.Time{})
		h(w, r)
	}
}

// TraceStatus is the GET /v1/trace/status (and trace stop) response.
type TraceStatus struct {
	Recording bool         `json:"recording"`
	Spans     int          `json:"spans"`
	Dropped   int64        `json:"dropped"`
	Phases    []PhaseTotal `json:"phases"`
}

// PhaseTotal is one phase's since-process-start wall-time sum.
type PhaseTotal struct {
	Phase   string  `json:"phase"`
	Count   int64   `json:"count"`
	Seconds float64 `json:"seconds"`
}

// traceStatusNow snapshots the tracer for status/stop responses.
func (s *Server) traceStatusNow() TraceStatus {
	tr := s.mgr.trace
	st := TraceStatus{Recording: tr.Recording(), Spans: tr.SpanCount(), Dropped: tr.Dropped()}
	//flashvet:ignore wallclock ops status endpoint: per-phase wall totals go to the operator, never into campaign results
	totals := tr.Totals()
	for p := runtrace.Phase(0); p < runtrace.NumPhases; p++ {
		st.Phases = append(st.Phases, PhaseTotal{
			Phase: p.String(), Count: totals[p].Count, Seconds: totals[p].Seconds(),
		})
	}
	return st
}

func (s *Server) traceStart(w http.ResponseWriter, r *http.Request) {
	s.mgr.trace.StartRecording()
	writeJSON(w, http.StatusOK, s.traceStatusNow())
}

func (s *Server) traceStop(w http.ResponseWriter, r *http.Request) {
	s.mgr.trace.StopRecording()
	writeJSON(w, http.StatusOK, s.traceStatusNow())
}

func (s *Server) traceStatus(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.traceStatusNow())
}

func (s *Server) traceFetch(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	s.mgr.trace.WriteChrome(w)
}

// Shutdown releases long-lived SSE watch streams so http.Server.Shutdown
// can finish draining. Idempotent; new watch requests after Shutdown end
// immediately after their replay.
func (s *Server) Shutdown() {
	s.shutdownOnce.Do(func() { close(s.shutdown) })
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// apiError is the JSON error body.
type apiError struct {
	Error string `json:"error"`
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

func writeErr(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, apiError{Error: err.Error()})
}

// campaign resolves {id} or replies 404.
func (s *Server) campaign(w http.ResponseWriter, r *http.Request) (*Campaign, bool) {
	id := r.PathValue("id")
	c, ok := s.mgr.Get(id)
	if !ok {
		writeErr(w, http.StatusNotFound, fmt.Errorf("no campaign %q", id))
		return nil, false
	}
	return c, true
}

func (s *Server) submit(w http.ResponseWriter, r *http.Request) {
	var spec CampaignSpec
	if err := json.NewDecoder(r.Body).Decode(&spec); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding spec: %w", err))
		return
	}
	c, err := s.mgr.Submit(spec)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) list(w http.ResponseWriter, r *http.Request) {
	campaigns := s.mgr.List()
	out := make([]Status, len(campaigns))
	for i, c := range campaigns {
		out[i] = c.Status()
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) status(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) series(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	series := c.Series()
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, series)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	series.WriteCSV(w)
}

func (s *Server) ledger(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	ledger := c.Ledger()
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		ledger.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/csv")
	ledger.WriteCSV(w)
}

func (s *Server) result(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	agg, final := c.Aggregate()
	if !final {
		writeErr(w, http.StatusConflict, fmt.Errorf("campaign %s is %s; no final result yet", c.ID(), c.State()))
		return
	}
	writeJSON(w, http.StatusOK, agg)
}

// sinceParam parses ?since=N (default 0).
func sinceParam(r *http.Request) (uint64, error) {
	raw := r.URL.Query().Get("since")
	if raw == "" {
		return 0, nil
	}
	n, err := strconv.ParseUint(raw, 10, 64)
	if err != nil {
		return 0, fmt.Errorf("bad since %q: %w", raw, err)
	}
	return n, nil
}

func (s *Server) events(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	evs := c.Events(since)
	if r.URL.Query().Get("format") == "jsonl" {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		for _, e := range evs {
			enc.Encode(e)
		}
		return
	}
	writeJSON(w, http.StatusOK, evs)
}

// watch streams the campaign journal as server-sent events: a replay of
// everything after ?since=, then live events as they append. Each frame
// carries the journal sequence number as the SSE id, so a dropped client
// reconnects with ?since=<last id> and misses nothing.
func (s *Server) watch(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	since, err := sinceParam(r)
	if err != nil {
		writeErr(w, http.StatusBadRequest, err)
		return
	}
	flusher, ok := w.(http.Flusher)
	if !ok {
		writeErr(w, http.StatusNotImplemented, errors.New("streaming unsupported"))
		return
	}
	// The server's WriteTimeout (slowloris protection on every other
	// route) would kill a healthy long-lived stream; clear the deadline
	// for this response only.
	http.NewResponseController(w).SetWriteDeadline(time.Time{})
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(e obs.Event) bool {
		raw, err := json.Marshal(e)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\nevent: %s\ndata: %s\n\n", e.Seq, e.Type, raw); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	replay, ch, cancel := c.Journal().Subscribe(since)
	defer cancel()
	for _, e := range replay {
		if !send(e) {
			return
		}
	}
	ctx := r.Context()
	for {
		select {
		case <-ctx.Done():
			return
		case <-s.shutdown:
			// Graceful server shutdown: end the stream cleanly so
			// http.Server.Shutdown can drain; the client reconnects to the
			// restarted server from its last seen id.
			return
		case e, open := <-ch:
			if !open {
				// Fell behind the journal's fan-out buffer; the client
				// re-subscribes from its last seen id.
				return
			}
			if !send(e) {
				return
			}
		}
	}
}

func (s *Server) pause(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	c.Pause()
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) resume(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	if err := c.Resume(); err != nil {
		writeErr(w, http.StatusConflict, err)
		return
	}
	writeJSON(w, http.StatusOK, c.Status())
}

func (s *Server) fork(w http.ResponseWriter, r *http.Request) {
	c, ok := s.campaign(w, r)
	if !ok {
		return
	}
	var opts ForkOptions
	if err := json.NewDecoder(r.Body).Decode(&opts); err != nil {
		writeErr(w, http.StatusBadRequest, fmt.Errorf("decoding fork options: %w", err))
		return
	}
	fk, err := s.mgr.Fork(c.ID(), opts)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, errRunning) {
			code = http.StatusConflict
		}
		writeErr(w, code, err)
		return
	}
	writeJSON(w, http.StatusOK, fk.Status())
}
