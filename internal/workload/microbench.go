package workload

import (
	"time"

	"flashwear/internal/blockdev"
	"flashwear/internal/simclock"
)

// Figure1Sizes returns the request sizes of Figure 1's x-axis: 0.5 KiB to
// 16 MiB in powers of two.
func Figure1Sizes() []int64 {
	var sizes []int64
	for s := int64(512); s <= 16<<20; s *= 2 {
		sizes = append(sizes, s)
	}
	return sizes
}

// BenchResult is one microbenchmark measurement.
type BenchResult struct {
	ReqBytes   int64
	Sequential bool
	Bytes      int64
	Elapsed    time.Duration
}

// MiBps returns the measured bandwidth in MiB/s.
func (r BenchResult) MiBps() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Bytes) / r.Elapsed.Seconds() / (1 << 20)
}

// Microbench measures synchronous write bandwidth for one request size and
// pattern, mirroring the setup behind Figure 1. The device must advance the
// supplied clock with its service times.
func Microbench(dev blockdev.Device, clock *simclock.Clock, reqBytes int64, sequential bool, totalBytes int64, seed int64) (BenchResult, error) {
	w := NewDeviceWriter(dev, reqBytes, sequential, seed)
	start := clock.Now()
	var written int64
	for written < totalBytes {
		n, err := w.Step(minI64(totalBytes-written, 4<<20))
		if err != nil {
			return BenchResult{}, err
		}
		written += n
	}
	return BenchResult{
		ReqBytes:   reqBytes,
		Sequential: sequential,
		Bytes:      written,
		Elapsed:    clock.Now() - start,
	}, nil
}

func minI64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
