package nand

import "fmt"

// Geometry describes the physical layout of a NAND chip. The hierarchy is
// Chip → Die → Plane → Block → Page; pages are the program/read unit and
// blocks the erase unit (§2.1).
type Geometry struct {
	Dies           int // independent dies on the package
	PlanesPerDie   int // planes that can operate concurrently within a die
	BlocksPerPlane int
	PagesPerBlock  int
	PageSize       int // user-data bytes per page
	SpareSize      int // out-of-band bytes per page (ECC parity, metadata)
}

// Validate reports an error describing the first invalid field, if any.
func (g Geometry) Validate() error {
	switch {
	case g.Dies <= 0:
		return fmt.Errorf("nand: geometry: Dies = %d, want > 0", g.Dies)
	case g.PlanesPerDie <= 0:
		return fmt.Errorf("nand: geometry: PlanesPerDie = %d, want > 0", g.PlanesPerDie)
	case g.BlocksPerPlane <= 0:
		return fmt.Errorf("nand: geometry: BlocksPerPlane = %d, want > 0", g.BlocksPerPlane)
	case g.PagesPerBlock <= 0:
		return fmt.Errorf("nand: geometry: PagesPerBlock = %d, want > 0", g.PagesPerBlock)
	case g.PageSize <= 0 || g.PageSize%512 != 0:
		return fmt.Errorf("nand: geometry: PageSize = %d, want positive multiple of 512", g.PageSize)
	case g.SpareSize < 0:
		return fmt.Errorf("nand: geometry: SpareSize = %d, want >= 0", g.SpareSize)
	}
	return nil
}

// Planes returns the total number of planes on the chip, which bounds the
// number of concurrent program operations (the parallelism behind Figure 1's
// bandwidth scaling).
func (g Geometry) Planes() int { return g.Dies * g.PlanesPerDie }

// Blocks returns the total number of erase blocks on the chip.
func (g Geometry) Blocks() int { return g.Planes() * g.BlocksPerPlane }

// Pages returns the total number of pages on the chip.
func (g Geometry) Pages() int { return g.Blocks() * g.PagesPerBlock }

// BlockSize returns the user-data bytes per erase block.
func (g Geometry) BlockSize() int64 { return int64(g.PagesPerBlock) * int64(g.PageSize) }

// Capacity returns the raw user-data capacity of the chip in bytes.
func (g Geometry) Capacity() int64 { return int64(g.Blocks()) * g.BlockSize() }

// PageAddr identifies a page by block index and page offset within the block.
type PageAddr struct {
	Block int
	Page  int
}

// String implements fmt.Stringer.
func (a PageAddr) String() string { return fmt.Sprintf("blk%d/pg%d", a.Block, a.Page) }

// PlaneOf returns the plane index (0..Planes-1) a block belongs to. Blocks
// are striped across planes round-robin so that consecutive block numbers
// land on different planes, mirroring how FTLs exploit multi-plane
// parallelism.
func (g Geometry) PlaneOf(block int) int { return block % g.Planes() }
