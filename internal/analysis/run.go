package analysis

import (
	"fmt"
	"go/token"
	"sort"
)

// A Finding is one diagnostic after ignore-directive filtering, resolved
// to a concrete position.
type Finding struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (f Finding) String() string {
	return fmt.Sprintf("%s: %s: %s", f.Pos, f.Analyzer, f.Message)
}

// FrameworkName is the pseudo-analyzer findings about the ignore
// directives themselves are attributed to. Those findings are not
// suppressible — a waiver cannot waive itself.
const FrameworkName = "flashvet"

// Run executes every analyzer over every package, applies
// //flashvet:ignore directives, and returns the surviving findings sorted
// by position (so output is deterministic, as this suite itself demands of
// the simulator). When checkUnusedIgnores is set — the right mode whenever
// the full suite runs — valid directives that suppressed nothing are
// reported too, so waivers die with the code they excused.
//
// Facts flow through a fresh store: pkgs is in dependency order (Load
// guarantees it), so each fact-exporting analyzer sees its dependencies'
// summaries before analyzing a dependent. Callers that seed or inspect
// the store (vet-tool mode, the facts tests) use RunFacts directly.
func Run(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, checkUnusedIgnores bool) ([]Finding, error) {
	return RunFacts(fset, pkgs, analyzers, checkUnusedIgnores, NewFactStore())
}

// RunFacts is Run with an explicit fact store, which may hold facts
// decoded from dependency fact files and accumulates every fact exported
// during this run.
func RunFacts(fset *token.FileSet, pkgs []*Package, analyzers []*Analyzer, checkUnusedIgnores bool, facts *FactStore) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}

	var findings []Finding
	for _, pkg := range pkgs {
		if pkg.FactsOnly {
			// A dependency visited only for its summaries: run just the
			// fact-exporting analyzers and drop whatever they report.
			for _, a := range analyzers {
				if !a.UsesFacts() {
					continue
				}
				pass := &Pass{
					Analyzer:  a,
					Fset:      fset,
					Files:     pkg.Files,
					Pkg:       pkg.Types,
					TypesInfo: pkg.Info,
					FactsOnly: true,
					facts:     facts,
					report:    func(Diagnostic) {},
				}
				if err := a.Run(pass); err != nil {
					return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
				}
			}
			continue
		}
		dirs := collectDirectives(fset, pkg.Files, pkg.Sources, known)
		for _, d := range dirs {
			if d.problem != "" {
				findings = append(findings, Finding{
					Analyzer: FrameworkName,
					Pos:      fset.Position(d.pos),
					Message:  d.problem,
				})
			}
		}
		for _, a := range analyzers {
			pass := &Pass{
				Analyzer:  a,
				Fset:      fset,
				Files:     pkg.Files,
				Pkg:       pkg.Types,
				TypesInfo: pkg.Info,
				facts:     facts,
			}
			var diags []Diagnostic
			pass.report = func(d Diagnostic) { diags = append(diags, d) }
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("analysis: %s on %s: %v", a.Name, pkg.ImportPath, err)
			}
		diag:
			for _, d := range diags {
				pos := fset.Position(d.Pos)
				for _, dir := range dirs {
					if dir.matches(a.Name, pos.Filename, pos.Line) {
						continue diag
					}
				}
				findings = append(findings, Finding{Analyzer: a.Name, Pos: pos, Message: d.Message})
			}
		}
		if checkUnusedIgnores {
			for _, d := range dirs {
				if d.problem == "" && len(d.used) == 0 {
					findings = append(findings, Finding{
						Analyzer: FrameworkName,
						Pos:      fset.Position(d.pos),
						Message: fmt.Sprintf("unused %s directive: nothing on its line to suppress — delete it",
							ignorePrefix),
					})
				}
			}
		}
	}

	sort.Slice(findings, func(i, j int) bool {
		a, b := findings[i], findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return findings, nil
}
