// Package fleetd is the long-running fleet service: where internal/fleet
// answers "what happens to a million phones in a year" as one batch call,
// fleetd runs the same question as a managed campaign — sharded over the
// population, checkpointed to disk at a configurable cadence, resumable
// after a kill -9, queryable mid-run, and forkable into counterfactual
// futures.
//
// # Shard and epoch model
//
// A campaign partitions its population contiguously into Shards slices;
// shard s of S owns devices [s*N/S, (s+1)*N/S). The horizon is cut into
// epochs of CheckpointEvery simulated days. The unit of work and of
// durability is one (shard, epoch) cell: the service loads the shard's
// device states from the previous epoch's checkpoint file, advances every
// device CheckpointEvery days on a worker pool, and writes the new states
// plus the epoch's aggregates to the next file with an atomic rename.
// A cell either exists completely or not at all, so the run loop is one
// idempotent sweep: for each epoch, for each shard, reuse the cell's file
// if it is valid, otherwise recompute it. Fresh starts, crash recovery,
// pause/resume, and fork all walk the same loop — resuming after a crash
// is simply the sweep finding most cells already done.
//
// # Determinism contract
//
// Campaign results — the day series, the terminal aggregate, and the wear
// ledger — are a pure function of the CampaignSpec minus its scheduling
// knobs (Shards, Workers, CheckpointEvery). The contract is stronger than
// internal/fleet's "independent of Workers", and it is earned differently:
// fleetd canonicalises every device at every simulated day boundary. The
// live stack is torn down, the persistent chip state captured, and a fresh
// stack booted from the capture through the same power-loss recovery scan
// a real crash would take (DESIGN.md §11). Both an interrupted run and an
// uninterrupted one therefore pass through byte-identical states at every
// day boundary, so where a checkpoint actually lands cannot be observed in
// the output. The cost is a semantic choice, not an approximation: a
// fleetd device reboots nightly (its RNG streams re-key per day, its fault
// plan re-derives per day), which is why fleetd numbers are not comparable
// digit-for-digit with fleet.Run's always-on devices.
//
// # Memory
//
// Steady-state memory is O(workers) live device stacks plus O(days) series
// rows — independent of the population size. Device states between epochs
// live in the checkpoint files and are streamed record-by-record through
// the worker pool; devices that brick fold into the epoch footer's frozen
// sums and are never stored again.
package fleetd

import (
	"fmt"
	"time"

	"flashwear/internal/faultinject"
	"flashwear/internal/fleet"
)

// CampaignSpec is the submit-time description of a campaign — the JSON
// body of POST /v1/campaigns. Aggregate results are a pure function of
// this spec minus Shards, Workers, and CheckpointEvery (see the package
// documentation for the contract and DESIGN.md §11 for the argument).
type CampaignSpec struct {
	// Name is a free-form label echoed in status output.
	Name string `json:"name,omitempty"`
	// Devices is the population size.
	Devices int `json:"devices"`
	// Days is the simulated horizon per device, in whole full-scale days
	// (fleetd advances device time day by day, so fractional horizons
	// don't exist here).
	Days int `json:"days"`
	// Seed is the root seed; per-device and per-day seeds derive from it.
	Seed int64 `json:"seed"`
	// Scale divides device capacities (volumes and times multiply back),
	// exactly like fleet.Spec.Scale. Default 4096.
	Scale int64 `json:"scale,omitempty"`
	// ReqBytes is the workload rewrite request size. Default 64 KiB.
	ReqBytes int64 `json:"req_bytes,omitempty"`
	// StepBytes is the wear-indicator poll granularity. Default 4 MiB.
	StepBytes int64 `json:"step_bytes,omitempty"`
	// Buggy and Attack are the workload class-mix fractions; the rest of
	// the population is benign.
	Buggy  float64 `json:"buggy,omitempty"`
	Attack float64 `json:"attack,omitempty"`
	// Faults is a fault plan in the faultinject.ParsePlan grammar, e.g.
	// "seed=7,read=1e-4,cut-every=100000". Plans re-derive per device and
	// per simulated day.
	Faults string `json:"faults,omitempty"`
	// WearTrace attaches per-origin wear attribution to every device; the
	// campaign then exposes a fleet-wide ledger at /ledger.
	WearTrace bool `json:"wear_trace,omitempty"`

	// Shards is the partition count. Scheduling only — never visible in
	// results. Default 1.
	Shards int `json:"shards,omitempty"`
	// Workers is the per-shard worker pool size. Scheduling only.
	// Default GOMAXPROCS.
	Workers int `json:"workers,omitempty"`
	// CheckpointEvery is the epoch length in simulated days: a checkpoint
	// file is written per shard every this many days. Scheduling only.
	// 0 means one epoch spanning the whole horizon (no intermediate
	// durability; with no data directory this is also the only option).
	CheckpointEvery int `json:"checkpoint_every,omitempty"`
}

// withDefaults returns a copy with zero scheduling fields filled in.
func (s CampaignSpec) withDefaults() CampaignSpec {
	if s.Shards <= 0 {
		s.Shards = 1
	}
	if s.CheckpointEvery < 0 {
		s.CheckpointEvery = 0
	}
	return s
}

// Validate reports the first invalid field. The fleet-level fields are
// validated by deriving the fleet.Spec.
func (s CampaignSpec) Validate() error {
	if s.Days <= 0 {
		return fmt.Errorf("fleetd: days = %d, want > 0", s.Days)
	}
	if s.Buggy < 0 || s.Attack < 0 || s.Buggy+s.Attack > 1 {
		return fmt.Errorf("fleetd: buggy/attack fractions %g/%g, want non-negative with sum <= 1", s.Buggy, s.Attack)
	}
	if s.Shards < 0 {
		return fmt.Errorf("fleetd: shards = %d, want >= 0", s.Shards)
	}
	if s.Shards > 0 && s.Devices > 0 && s.Shards > s.Devices {
		return fmt.Errorf("fleetd: shards = %d for %d devices, want <= devices", s.Shards, s.Devices)
	}
	if s.CheckpointEvery < 0 {
		return fmt.Errorf("fleetd: checkpoint_every = %d, want >= 0", s.CheckpointEvery)
	}
	if _, err := s.fleetSpec(); err != nil {
		return err
	}
	return nil
}

// fleetSpec derives the defaulted, validated fleet.Spec the engine samples
// devices from. The derivation is total: every device-visible knob of the
// campaign maps onto the fleet spec, and the scheduling knobs never do.
func (s CampaignSpec) fleetSpec() (fleet.Spec, error) {
	var plan *faultinject.Plan
	if s.Faults != "" {
		p, err := faultinject.ParsePlan(s.Faults)
		if err != nil {
			return fleet.Spec{}, fmt.Errorf("fleetd: faults: %w", err)
		}
		plan = &p
	}
	fs := fleet.Spec{
		Devices:   s.Devices,
		Workers:   s.Workers,
		Seed:      s.Seed,
		Days:      float64(s.Days),
		Scale:     s.Scale,
		ReqBytes:  s.ReqBytes,
		StepBytes: s.StepBytes,
		Faults:    plan,
		WearTrace: s.WearTrace,
		Classes: []fleet.ClassWeight{
			{Class: fleet.ClassBenign, Weight: 1 - s.Buggy - s.Attack},
			{Class: fleet.ClassBuggy, Weight: s.Buggy},
			{Class: fleet.ClassAttack, Weight: s.Attack},
		},
	}.Defaults()
	if err := fs.Validate(); err != nil {
		return fleet.Spec{}, err
	}
	return fs, nil
}

// shardRange returns the device index range [lo, hi) owned by shard s of
// shards over n devices. Contiguous equal split: the partition depends
// only on (n, shards, s), never on scheduling, so any shard count covers
// the identical population.
func shardRange(n, shards, s int) (lo, hi int) {
	return s * n / shards, (s + 1) * n / shards
}

// epochDays returns the global day range [lo, hi) covered by epoch e
// (1-based) when every epoch spans every days and the horizon is days.
func epochDays(e, every, days int) (lo, hi int) {
	lo = (e - 1) * every
	hi = lo + every
	if hi > days {
		hi = days
	}
	return lo, hi
}

// epochCount returns how many epochs cover a days-long horizon.
func epochCount(every, days int) int {
	if every <= 0 || every >= days {
		return 1
	}
	return (days + every - 1) / every
}

// nsPerDay is one full-scale day in nanoseconds.
const nsPerDay = int64(24 * time.Hour)

// mix derives a sub-seed from (root, n) with the same splitmix64
// finalizer fleet uses for per-device seeds. fleetd keys every per-boot
// RNG stream — chip failure draws, workload offsets, fault schedules —
// by (device seed, day) through this, so post-resume behaviour is a pure
// function of the resume point, not of how many draws the previous
// process consumed.
func mix(root int64, n int64) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*uint64(n+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}
