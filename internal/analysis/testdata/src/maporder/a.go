// Package a exercises the maporder analyzer: map iteration order may not
// reach an io.Writer, a string, or an escaping unsorted slice; the
// collect/sort/iterate idiom is recognized and allowed.
package a

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

func emit(w io.Writer, m map[string]int) {
	for k, v := range m {
		fmt.Fprintf(w, "%s=%d\n", k, v) // want `fmt\.Fprintf inside range over map`
	}
}

func buildString(m map[string]int) string {
	var sb strings.Builder
	var s string
	for k := range m {
		sb.WriteString(k) // want `write to \*strings\.Builder\.WriteString inside range over map`
		s += k            // want `string built across range over map`
		s = s + "!"       // want `string built across range over map`
	}
	return s + sb.String()
}

func sortedIdiom(m map[uint32]bool) []uint32 {
	keys := make([]uint32, 0, len(m))
	for k := range m {
		keys = append(keys, k) // ok: sorted right below
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

func leak(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) // want `append to out inside range over map without sorting`
	}
	return out
}

func loopLocal(m map[string]int) int {
	total := 0
	for _, v := range m {
		parts := []string{} // ok: loop-local, dies with the iteration
		parts = append(parts, "x")
		total += v + len(parts) // ok: integer accumulation is order-independent
	}
	return total
}

func waived(w io.Writer, m map[string]int) {
	for k := range m {
		//flashvet:ignore maporder each key writes to its own per-device file, order is immaterial
		fmt.Fprintln(w, k)
	}
}
