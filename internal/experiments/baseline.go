package experiments

import (
	"fmt"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/appmodel"
	"flashwear/internal/device"
	"flashwear/internal/ftl"
	"flashwear/internal/simclock"
)

// BaselineRow contrasts ordinary use with the attack on the same device.
type BaselineRow struct {
	Scenario string
	// LifePctPerYear is the fraction of estimated device life consumed
	// per year of the scenario, extrapolated from the simulated span.
	LifePctPerYear float64
	// YearsToEOL extrapolates to estimated end of life.
	YearsToEOL float64
}

// BenignBaseline quantifies the contrast behind the paper's title: under a
// normal app population (camera, chat, updater — no bug, no attack) the
// device outlives any warranty, which is exactly why "flash drive lifespan
// is (perceived as) a solved problem"; the same phone under the attack dies
// in weeks. Both scenarios run on the same profile and are extrapolated to
// life consumed per year.
func BenignBaseline(cfg Config) ([]BaselineRow, error) {
	cfg = cfg.Defaults()
	eff := device.ProfileMotoE8().EffectiveScale(cfg.Scale)

	run := func(attack bool) (BaselineRow, error) {
		clock := simclock.New()
		prof := device.ProfileMotoE8().Scaled(cfg.Scale)
		phone, err := android.NewPhone(android.Config{
			Profile: prof, FS: android.FSExt4,
			Charging: android.AlwaysOn(), Screen: android.Never(),
		}, clock)
		if err != nil {
			return BaselineRow{}, err
		}
		install := func(name string) *android.App {
			app, err := phone.InstallApp(name)
			if err != nil {
				panic(err)
			}
			return app
		}
		camera := appmodel.NewCamera(install("camera").Storage(), clock, 21)
		camera.BurstBytes = prof.CapacityBytes / 32
		camera.PhotoBytes = camera.BurstBytes / 4
		camera.KeepPhotos = 16
		chat := appmodel.NewChat(install("chat").Storage(), clock, 22)
		updater := appmodel.NewUpdater(install("updater").Storage(), clock, 23)
		updater.UpdateBytes = prof.CapacityBytes / 16
		models := []appmodel.Model{camera, chat, updater}

		var atk *workloadFileSet
		if attack {
			app := install("wear-attack")
			atk = newAttackSet(app.Storage(), eff)
			fitFileSet(atk, phone.Device().Size())
			if err := atk.Setup(); err != nil {
				return BaselineRow{}, err
			}
		}

		// Simulate several days in hourly slices.
		const days = 3
		slice := time.Hour
		start := clock.Now()
		for h := 0; h < 24*days; h++ {
			for _, m := range models {
				if err := m.Step(slice); err != nil {
					return BaselineRow{}, fmt.Errorf("baseline %s: %w", m.Name(), err)
				}
			}
			if atk != nil {
				deadline := clock.Now() + slice
				for clock.Now() < deadline {
					if _, err := atk.Step(4 << 20); err != nil {
						// A bricked device ends the scenario early.
						h = 24 * days
						break
					}
				}
			}
		}
		elapsed := clock.Now() - start
		life := phone.Device().FTL().LifeConsumed(ftl.PoolB)
		// Simulated days scale back up by the effective capacity divisor.
		years := elapsed.Hours() / 24 / 365 * float64(eff)
		row := BaselineRow{}
		if years > 0 && life > 0 {
			row.LifePctPerYear = life * 100 / years
			row.YearsToEOL = 100 / row.LifePctPerYear
		}
		return row, nil
	}

	benign, err := run(false)
	if err != nil {
		return nil, err
	}
	benign.Scenario = "normal use (camera+chat+updater)"
	attacked, err := run(true)
	if err != nil {
		return nil, err
	}
	attacked.Scenario = "normal use + wear attack"
	return []BaselineRow{benign, attacked}, nil
}
