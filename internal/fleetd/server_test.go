package fleetd

import (
	"net/http/httptest"
	"strings"
	"testing"
)

// TestServerAPI drives the full control/query surface through a real
// HTTP round trip: submit, poll, series, ledger, result, pause/resume
// conflict handling, and fork.
func TestServerAPI(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}

	spec := tinySpec()
	spec.CheckpointEvery = 2
	st, err := cl.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID == "" || st.Devices != 4 || st.Days != 5 {
		t.Fatalf("submit status = %+v", st)
	}

	// Invalid specs are a 400 with a useful message.
	bad := spec
	bad.Days = 0
	if _, err := cl.Submit(bad); err == nil {
		t.Fatal("invalid spec accepted")
	} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != 400 {
		t.Fatalf("invalid spec error = %v, want APIError 400", err)
	}

	// Wait server-side via the in-process handle (the CLI polls; tests
	// shouldn't).
	c, ok := m.Get(st.ID)
	if !ok {
		t.Fatalf("campaign %s not in manager", st.ID)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}

	got, err := cl.Status(st.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if got.State != StateDone || got.DaysDone != 5 {
		t.Fatalf("status after completion = %+v", got)
	}

	list, err := cl.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	csv, err := cl.SeriesCSV(st.ID)
	if err != nil {
		t.Fatalf("SeriesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 6 || !strings.HasPrefix(lines[0], "day,devices,bricked,read_only,") {
		t.Fatalf("series CSV:\n%s", csv)
	}

	ledger, err := cl.LedgerCSV(st.ID)
	if err != nil {
		t.Fatalf("LedgerCSV: %v", err)
	}
	if !strings.Contains(string(ledger), "origin") {
		t.Fatalf("ledger CSV missing header:\n%s", ledger)
	}

	agg, err := cl.Result(st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if agg.Total.Devices != 4 {
		t.Fatalf("result devices = %d, want 4", agg.Total.Devices)
	}

	// Resume of a done campaign conflicts.
	if _, err := cl.Resume(st.ID); err == nil {
		t.Fatal("resume of a done campaign succeeded")
	} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != 409 {
		t.Fatalf("resume conflict error = %v, want APIError 409", err)
	}

	// Pause of a done campaign is a harmless no-op.
	if _, err := cl.Pause(st.ID); err != nil {
		t.Fatalf("Pause: %v", err)
	}

	fkSt, err := cl.Fork(st.ID, ForkOptions{Name: "fork", Days: 7})
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	fk, ok := m.Get(fkSt.ID)
	if !ok {
		t.Fatalf("fork %s not in manager", fkSt.ID)
	}
	if err := fk.Wait(); err != nil {
		t.Fatalf("fork failed: %v", err)
	}
	if got, _ := cl.Status(fkSt.ID); got.DaysDone != 7 {
		t.Fatalf("fork days_done = %d, want 7", got.DaysDone)
	}

	// Unknown campaign is a 404 everywhere.
	if _, err := cl.Status("c999999"); err == nil {
		t.Fatal("status of unknown campaign succeeded")
	} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != 404 {
		t.Fatalf("unknown campaign error = %v, want APIError 404", err)
	}
}
