package analysis

// Internal tests for the facts layer: the serialization contract between
// one vet-tool invocation (which analyzes a dependency and writes its
// fact file) and a later one (which decodes that file instead of
// re-reading the dependency's source). The suite-level tests exercise
// this end to end through the go command; these pin the layer's own
// invariants — deterministic encoding, package-scoped filtering, stale
// detection, and origin-keyed generic summaries — without a build.

import (
	"bytes"
	"encoding/json"
	"errors"
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// summaryFact stands in for an analyzer summary (simtaint's FuncTaint has
// the same shape: plain exported fields, JSON-marshalable).
type summaryFact struct {
	Kinds  []string
	Params map[int]uint64
}

func (*summaryFact) AFact() {}

type domainFact struct{ Declared bool }

func (*domainFact) AFact() {}

// newTestPass wires a Pass just far enough for fact export/import: the
// analyzer name keys the store, the package scopes EncodeFacts.
func newTestPass(a *Analyzer, pkg *types.Package, store *FactStore) *Pass {
	return &Pass{Analyzer: a, Pkg: pkg, facts: store}
}

// declareFunc declares a package-level function with no signature —
// enough structure for ObjectKey, which only needs identity.
func declareFunc(pkg *types.Package, name string) *types.Func {
	sig := types.NewSignatureType(nil, nil, nil, nil, nil, false)
	fn := types.NewFunc(token.NoPos, pkg, name, sig)
	pkg.Scope().Insert(fn)
	return fn
}

func TestFactsRoundTrip(t *testing.T) {
	anl := &Analyzer{Name: "simtaint"}
	dep := types.NewPackage("flashwear/internal/obs", "obs")
	other := types.NewPackage("flashwear/internal/nand", "nand")

	store := NewFactStore()
	pass := newTestPass(anl, dep, store)

	wallNow := declareFunc(dep, "WallNow")
	foreign := declareFunc(other, "Erase")

	want := &summaryFact{Kinds: []string{"wallclock"}, Params: map[int]uint64{1: 0b10}}
	pass.ExportObjectFact(wallNow, want)
	pass.ExportObjectFact(foreign, &summaryFact{Kinds: []string{"rand"}})
	pass.ExportPackageFact(&domainFact{Declared: true})

	const fp = "c0ffee00c0ffee00"
	data, err := store.EncodeFacts(dep.Path(), fp)
	if err != nil {
		t.Fatalf("EncodeFacts: %v", err)
	}
	again, err := store.EncodeFacts(dep.Path(), fp)
	if err != nil {
		t.Fatalf("EncodeFacts (second): %v", err)
	}
	if !bytes.Equal(data, again) {
		t.Fatalf("EncodeFacts is not deterministic:\n%s\n%s", data, again)
	}

	// A fresh store plus the decoded file must reproduce the dependency's
	// facts — this is exactly what a downstream invocation sees.
	fresh := NewFactStore()
	if err := fresh.DecodeFacts(data, fp); err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	down := newTestPass(anl, types.NewPackage("flashwear/internal/fleetd", "fleetd"), fresh)

	var got summaryFact
	if !down.ImportObjectFact(wallNow, &got) {
		t.Fatalf("object fact for %s did not survive the round trip", ObjectKey(wallNow))
	}
	if len(got.Kinds) != 1 || got.Kinds[0] != "wallclock" || got.Params[1] != 0b10 {
		t.Fatalf("round-tripped fact = %+v, want %+v", got, *want)
	}
	var dom domainFact
	if !down.ImportPackageFact(dep.Path(), &dom) || !dom.Declared {
		t.Fatalf("package fact for %s did not survive the round trip", dep.Path())
	}

	// EncodeFacts scopes to the named package: the fact exported for
	// another package's function must not leak into obs's file.
	var leaked summaryFact
	if down.ImportObjectFact(foreign, &leaked) {
		t.Fatalf("fact for %s leaked into %s's fact file", ObjectKey(foreign), dep.Path())
	}
}

func TestDecodeFactsStaleness(t *testing.T) {
	anl := &Analyzer{Name: "simtaint"}
	dep := types.NewPackage("flashwear/internal/obs", "obs")
	store := NewFactStore()
	pass := newTestPass(anl, dep, store)
	pass.ExportObjectFact(declareFunc(dep, "WallNow"), &summaryFact{Kinds: []string{"wallclock"}})

	data, err := store.EncodeFacts(dep.Path(), "fingerprint-old")
	if err != nil {
		t.Fatalf("EncodeFacts: %v", err)
	}

	// Fingerprint mismatch: the dependency was rebuilt after the facts
	// were written, so the whole file is refused.
	if err := NewFactStore().DecodeFacts(data, "fingerprint-new"); !errors.Is(err, ErrStaleFacts) {
		t.Fatalf("fingerprint mismatch: got %v, want ErrStaleFacts", err)
	}
	// Matching fingerprint and the caller-managed "" both accept.
	if err := NewFactStore().DecodeFacts(data, "fingerprint-old"); err != nil {
		t.Fatalf("matching fingerprint refused: %v", err)
	}
	if err := NewFactStore().DecodeFacts(data, ""); err != nil {
		t.Fatalf("empty expected fingerprint must skip the check: %v", err)
	}

	// A version bump means the summary semantics changed: refuse even
	// when the fingerprint still matches.
	var f factsFile
	if err := json.Unmarshal(data, &f); err != nil {
		t.Fatalf("unmarshal fact file: %v", err)
	}
	f.Version = factsVersion + 1
	bumped, err := json.Marshal(f)
	if err != nil {
		t.Fatalf("marshal bumped fact file: %v", err)
	}
	if err := NewFactStore().DecodeFacts(bumped, "fingerprint-old"); !errors.Is(err, ErrStaleFacts) {
		t.Fatalf("version mismatch: got %v, want ErrStaleFacts", err)
	}

	// Garbage is a decode error, not a silent empty store.
	if err := NewFactStore().DecodeFacts([]byte("{not json"), ""); err == nil {
		t.Fatal("DecodeFacts accepted malformed input")
	}
}

func TestKeyInPackage(t *testing.T) {
	const path = "flashwear/internal/obs"
	for key, want := range map[string]bool{
		"flashwear/internal/obs.WallNow":        true,
		"(flashwear/internal/obs.Journal).Tag":  true,
		"(*flashwear/internal/obs.Journal).Log": true,
		"flashwear/internal/obsolete.WallNow":   false,
		"flashwear/internal/nand.Erase":         false,
		"flashwear/internal/obs.":               false, // empty member name
	} {
		if got := keyInPackage(key, path); got != want {
			t.Errorf("keyInPackage(%q, %q) = %v, want %v", key, path, got, want)
		}
	}
}

// TestGenericInstantiationSharesSummary pins the property ObjectKey's
// Origin() call buys: a summary exported while analyzing the generic
// declaration is found again at a call site that sees only an
// instantiated method object. Without origin keying, every
// instantiation would miss the summary and taint would silently drop
// at generic boundaries (the laundering case simtaint's identity[T]
// fixture guards end to end).
func TestGenericInstantiationSharesSummary(t *testing.T) {
	const src = `package clockbox

type Box[T any] struct{ v T }

func (b *Box[T]) Get() T { return b.v }

func Via[T any](v T) T { return v }
`
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "box.go", src, 0)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	conf := types.Config{}
	pkg, err := conf.Check("flashwear/internal/clockbox", fset, []*ast.File{file}, nil)
	if err != nil {
		t.Fatalf("type-check: %v", err)
	}

	box := pkg.Scope().Lookup("Box").Type().(*types.Named)
	inst, err := types.Instantiate(nil, box, []types.Type{types.Typ[types.Int]}, false)
	if err != nil {
		t.Fatalf("instantiate Box[int]: %v", err)
	}
	sel, _, _ := types.LookupFieldOrMethod(types.NewPointer(inst), false, pkg, "Get")
	instGet, ok := sel.(*types.Func)
	if !ok {
		t.Fatalf("Box[int].Get lookup returned %T", sel)
	}
	genGet, _, _ := types.LookupFieldOrMethod(types.NewPointer(box), false, pkg, "Get")

	if ObjectKey(instGet) != ObjectKey(genGet.(*types.Func)) {
		t.Fatalf("instantiated method keys differently from its origin: %q vs %q",
			ObjectKey(instGet), ObjectKey(genGet.(*types.Func)))
	}
	if !strings.Contains(ObjectKey(instGet), "flashwear/internal/clockbox.Box") {
		t.Fatalf("ObjectKey(Box[int].Get) = %q, want the origin's qualified name", ObjectKey(instGet))
	}

	// The fact pipeline end to end: export on the origin (what a pass
	// analyzing the generic's package does), import via the instance
	// (what a caller's pass holds), across an encode/decode cycle.
	anl := &Analyzer{Name: "simtaint"}
	store := NewFactStore()
	newTestPass(anl, pkg, store).ExportObjectFact(genGet, &summaryFact{Kinds: []string{"wallclock"}})

	data, err := store.EncodeFacts(pkg.Path(), "fp")
	if err != nil {
		t.Fatalf("EncodeFacts: %v", err)
	}
	fresh := NewFactStore()
	if err := fresh.DecodeFacts(data, "fp"); err != nil {
		t.Fatalf("DecodeFacts: %v", err)
	}
	var got summaryFact
	caller := newTestPass(anl, types.NewPackage("flashwear/internal/fleetd", "fleetd"), fresh)
	if !caller.ImportObjectFact(instGet, &got) {
		t.Fatal("summary exported on the generic origin is invisible at the instantiated call site")
	}
	if len(got.Kinds) != 1 || got.Kinds[0] != "wallclock" {
		t.Fatalf("instance-imported summary = %+v, want wallclock", got)
	}
}
