package fleetd

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"path/filepath"
	"sync"

	"flashwear/internal/hostio"
	"flashwear/internal/runtrace"
)

// Checkpoint directory layout, under the manager's data directory:
//
//	<data>/<campaign-id>/campaign.json           submitted spec + name
//	<data>/<campaign-id>/shard-NNNN/epoch-NNNNNN.ckpt
//
// One .ckpt file is one (shard, epoch) cell:
//
//	"FWFLTCKP" | u32 version | header frame | device frame... | footer frame | "FWCKDONE"
//
// where every frame is [1B type][u32 payload length][payload][u32 CRC32].
// Files are written to a .tmp sibling and atomically renamed into place
// only after the end marker, so a crash at any byte leaves either the
// previous complete file or a .tmp the sweep ignores.

// shardDir and cellPath name the cells.
func shardDir(campaignDir string, shard int) string {
	return filepath.Join(campaignDir, fmt.Sprintf("shard-%04d", shard))
}

func cellPath(campaignDir string, shard, epoch int) string {
	return filepath.Join(shardDir(campaignDir, shard), fmt.Sprintf("epoch-%06d.ckpt", epoch))
}

// errCheckpointIO tags every host-I/O failure on the checkpoint write
// path — create, buffered write, fsync, close, rename. The sweep keys its
// retry-then-degrade policy on it: an error carrying this sentinel means
// the simulation itself is fine and only durability is in trouble, so the
// cell may be recomputed and retried (or carried in memory); any other
// error is a sim or corruption failure and stops the campaign.
var errCheckpointIO = errors.New("fleetd: checkpoint host I/O")

// ckptIOErr wraps a host-I/O failure with the retryable sentinel.
func ckptIOErr(err error) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("%w: %w", errCheckpointIO, err)
}

// ckptWriter streams one cell to disk. Device frames may be appended from
// multiple workers concurrently; finish seals the file and renames it
// into place. All host I/O goes through the injected hostio.FS, and every
// I/O failure it surfaces carries errCheckpointIO.
type ckptWriter struct {
	mu      sync.Mutex
	fsys    hostio.FS
	f       hostio.File
	bw      *bufio.Writer
	path    string
	tmp     string
	err     error
	bytes   int64    // frames + magic written so far
	metrics *Metrics // optional ops accounting; nil for bare writers

	// Optional execution tracing (nil-safe): the fsync in finish bills
	// to the checkpoint_fsync phase of this cell.
	trace        *runtrace.Tracer
	shard, epoch int
}

func newCkptWriter(fsys hostio.FS, path string, hdr fileHeader) (*ckptWriter, error) {
	if err := fsys.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		return nil, ckptIOErr(err)
	}
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return nil, ckptIOErr(err)
	}
	w := &ckptWriter{fsys: fsys, f: f, bw: bufio.NewWriterSize(f, 1<<20), path: path, tmp: tmp}
	w.bytes += int64(len(fileMagic)) + 4
	var e enc
	e.raw([]byte(fileMagic))
	e.u32(ckptVersion)
	w.bw.Write(e.b)
	e.b = e.b[:0]
	e.fileHeader(hdr)
	w.frameLocked(frameHeader, e.b)
	if w.err != nil {
		w.abort()
		return nil, w.err
	}
	return w, nil
}

// frameLocked appends one frame; the caller holds mu (or is the only
// goroutine with access).
func (w *ckptWriter) frameLocked(typ byte, payload []byte) {
	if w.err != nil {
		return
	}
	var hdr [5]byte
	hdr[0] = typ
	binary.LittleEndian.PutUint32(hdr[1:], uint32(len(payload)))
	if _, err := w.bw.Write(hdr[:]); err != nil {
		w.err = ckptIOErr(err)
		return
	}
	if _, err := w.bw.Write(payload); err != nil {
		w.err = ckptIOErr(err)
		return
	}
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	if _, err := w.bw.Write(crc[:]); err != nil {
		w.err = ckptIOErr(err)
		return
	}
	w.bytes += int64(len(hdr)) + int64(len(payload)) + int64(len(crc))
}

// writeDevice appends one device-state frame. Safe for concurrent use;
// the record order in the file is whatever order workers finish in, which
// is fine because every consumer folds records commutatively.
func (w *ckptWriter) writeDevice(st *deviceState) error {
	var e enc
	e.deviceState(st)
	w.mu.Lock()
	defer w.mu.Unlock()
	w.frameLocked(frameDevice, e.b)
	return w.err
}

// finish appends the footer frame and the end marker, syncs, and renames
// the file into place. After finish returns nil the cell is durable. Any
// failure — including a failed sync or rename — removes the .tmp, so no
// error path leaves a stray temporary behind.
func (w *ckptWriter) finish(ft *epochFooter) error {
	w.mu.Lock()
	defer w.mu.Unlock()
	var e enc
	e.footer(ft)
	w.frameLocked(frameFooter, e.b)
	if w.err == nil {
		if _, err := w.bw.WriteString(endMagic); err != nil {
			w.err = ckptIOErr(err)
		}
		w.bytes += int64(len(endMagic))
	}
	if w.err == nil {
		if err := w.bw.Flush(); err != nil {
			w.err = ckptIOErr(err)
		}
	}
	if w.err == nil {
		var err error
		sp := w.trace.Begin(runtrace.PhaseCheckpointFsync, w.shard, w.epoch, -1)
		if w.metrics != nil {
			stop := w.metrics.FsyncSeconds.Time()
			err = w.f.Sync()
			stop()
		} else {
			err = w.f.Sync()
		}
		sp.End()
		w.err = ckptIOErr(err)
	}
	if err := w.f.Close(); w.err == nil {
		w.err = ckptIOErr(err)
	}
	if w.err != nil {
		w.fsys.Remove(w.tmp)
		return w.err
	}
	if err := w.fsys.Rename(w.tmp, w.path); err != nil {
		w.fsys.Remove(w.tmp)
		return ckptIOErr(err)
	}
	if w.metrics != nil {
		w.metrics.CheckpointBytes.Add(w.bytes)
		w.metrics.CheckpointWrites.Inc()
	}
	return nil
}

// abort discards the partial file.
func (w *ckptWriter) abort() {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.f.Close()
	w.fsys.Remove(w.tmp)
}

// ckptReader streams a cell's frames back. It verifies structure and CRCs
// as it goes and classifies every failure as exactly one of the three
// checkpoint errors.
type ckptReader struct {
	f      hostio.File
	br     *bufio.Reader
	Header fileHeader
}

// openCell opens a cell file and consumes the magic, version, and header
// frame. Missing files surface as fs.ErrNotExist (the sweep's "cell not
// done" signal, not a checkpoint error).
func openCell(fsys hostio.FS, path string) (*ckptReader, error) {
	f, err := fsys.Open(path)
	if err != nil {
		return nil, err
	}
	r := &ckptReader{f: f, br: bufio.NewReaderSize(f, 1<<20)}
	magic := make([]byte, len(fileMagic))
	if _, err := io.ReadFull(r.br, magic); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short magic", ErrCheckpointTruncated)
	}
	if string(magic) != fileMagic {
		f.Close()
		return nil, fmt.Errorf("%w: bad file magic %q", ErrCheckpointCorrupt, magic)
	}
	var verBuf [4]byte
	if _, err := io.ReadFull(r.br, verBuf[:]); err != nil {
		f.Close()
		return nil, fmt.Errorf("%w: short version", ErrCheckpointTruncated)
	}
	if v := binary.LittleEndian.Uint32(verBuf[:]); v != ckptVersion {
		f.Close()
		return nil, fmt.Errorf("%w: file version %d, codec version %d", ErrCheckpointVersion, v, ckptVersion)
	}
	typ, payload, err := r.frame()
	if err != nil {
		f.Close()
		return nil, err
	}
	if typ != frameHeader {
		f.Close()
		return nil, fmt.Errorf("%w: first frame type %d, want header", ErrCheckpointCorrupt, typ)
	}
	d := dec{b: payload}
	r.Header = d.fileHeader()
	if err := d.done(); err != nil {
		f.Close()
		return nil, err
	}
	return r, nil
}

func (r *ckptReader) Close() error { return r.f.Close() }

// frame reads and CRC-checks the next frame.
func (r *ckptReader) frame() (byte, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r.br, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: short frame header", ErrCheckpointTruncated)
	}
	typ := hdr[0]
	if typ != frameHeader && typ != frameDevice && typ != frameFooter {
		return 0, nil, fmt.Errorf("%w: unknown frame type %d", ErrCheckpointCorrupt, typ)
	}
	n := binary.LittleEndian.Uint32(hdr[1:])
	// Read incrementally rather than pre-allocating n bytes: a corrupt
	// length prefix in a short file must not drive a 4 GiB allocation
	// before ReadFull can notice the file ends early.
	var buf bytes.Buffer
	if _, err := io.CopyN(&buf, r.br, int64(n)); err != nil {
		return 0, nil, fmt.Errorf("%w: short frame payload", ErrCheckpointTruncated)
	}
	payload := buf.Bytes()
	var crcBuf [4]byte
	if _, err := io.ReadFull(r.br, crcBuf[:]); err != nil {
		return 0, nil, fmt.Errorf("%w: short frame checksum", ErrCheckpointTruncated)
	}
	if got, want := crc32.ChecksumIEEE(payload), binary.LittleEndian.Uint32(crcBuf[:]); got != want {
		return 0, nil, fmt.Errorf("%w: frame checksum %08x, want %08x", ErrCheckpointCorrupt, got, want)
	}
	return typ, payload, nil
}

// scan walks the remaining frames: each device frame is decoded and
// passed to dev (which may be nil to skip device payload decoding
// entirely — CRCs are still verified), and the footer ends the walk. The
// end marker must follow the footer exactly.
func (r *ckptReader) scan(dev func(*deviceState) error) (*epochFooter, error) {
	for {
		typ, payload, err := r.frame()
		if err != nil {
			return nil, err
		}
		switch typ {
		case frameDevice:
			if dev == nil {
				continue
			}
			d := dec{b: payload}
			st := d.deviceState()
			if err := d.done(); err != nil {
				return nil, err
			}
			if err := dev(st); err != nil {
				return nil, err
			}
		case frameFooter:
			d := dec{b: payload}
			ft := d.footer()
			if err := d.done(); err != nil {
				return nil, err
			}
			end := make([]byte, len(endMagic))
			if _, err := io.ReadFull(r.br, end); err != nil {
				return nil, fmt.Errorf("%w: missing end marker", ErrCheckpointTruncated)
			}
			if string(end) != endMagic {
				return nil, fmt.Errorf("%w: bad end marker %q", ErrCheckpointCorrupt, end)
			}
			if _, err := r.br.ReadByte(); err != io.EOF {
				return nil, fmt.Errorf("%w: data past end marker", ErrCheckpointCorrupt)
			}
			return ft, nil
		default:
			return nil, fmt.Errorf("%w: unexpected %d frame mid-file", ErrCheckpointCorrupt, typ)
		}
	}
}

// loadFooter opens a cell, verifies its identity against hdr's campaign
// identity fields (Seed, Devices, Days, Shard, Epoch — zero ranges in hdr
// are not checked), walks every frame for integrity, and returns the
// footer. It is the sweep's "is this cell done and mine" probe.
func loadFooter(fsys hostio.FS, path string, want fileHeader) (*epochFooter, error) {
	r, err := openCell(fsys, path)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	h := r.Header
	if h.Seed != want.Seed || h.Devices != want.Devices || h.Days != want.Days ||
		h.Shard != want.Shard || h.Epoch != want.Epoch {
		return nil, fmt.Errorf("%w: cell identity %+v, want %+v", ErrCheckpointCorrupt, h, want)
	}
	return r.scan(nil)
}

// cellUsable classifies a probe result for the sweep: a valid cell is
// reused, a missing or truncated one is recomputed, and version or
// corruption errors abort the campaign rather than silently recomputing
// over storage that is lying.
func cellUsable(ft *epochFooter, err error) (bool, error) {
	switch {
	case err == nil:
		return true, nil
	case errors.Is(err, fs.ErrNotExist), errors.Is(err, ErrCheckpointTruncated):
		return false, nil
	default:
		return false, err
	}
}
