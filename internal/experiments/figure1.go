package experiments

import (
	"flashwear/internal/device"
	"flashwear/internal/report"
	"flashwear/internal/workload"
)

// Figure1Point is one (device, request size) measurement.
type Figure1Point struct {
	Device    string
	ReqBytes  int64
	SeqMiBps  float64
	RandMiBps float64
}

// Figure1 reproduces Figure 1: synchronous write bandwidth versus request
// size (0.5 KiB – 16 MiB), sequential and random, for the five devices of
// §4.1. Each (device, pattern) pair runs on a fresh device so garbage
// collection state does not leak between curves.
func Figure1(cfg Config) ([]Figure1Point, error) {
	cfg = cfg.Defaults()
	maxReq := workload.Figure1Sizes()[len(workload.Figure1Sizes())-1]
	var out []Figure1Point
	for _, prof := range device.Figure1Profiles() {
		cfg.Progress("figure 1: %s", prof.Name)
		// Bandwidth curves need the device to hold several of the largest
		// requests; cap the scale per profile accordingly.
		scale := cfg.Scale
		if maxScale := prof.CapacityBytes / (4 * maxReq); scale > maxScale {
			scale = maxScale
		}
		if scale < 1 {
			scale = 1
		}
		for _, size := range workload.Figure1Sizes() {
			p := Figure1Point{Device: prof.Name, ReqBytes: size}
			for _, sequential := range []bool{true, false} {
				dev, clock, _, err := newDevice(prof, scale)
				if err != nil {
					return nil, err
				}
				perPoint := int64(2 << 20)
				if perPoint < 3*size {
					perPoint = 3 * size
				}
				if perPoint > dev.Size()/2 {
					perPoint = dev.Size() / 2
				}
				res, err := workload.Microbench(dev, clock, size, sequential, perPoint, 42)
				if err != nil {
					return nil, err
				}
				if sequential {
					p.SeqMiBps = res.MiBps()
				} else {
					p.RandMiBps = res.MiBps()
				}
			}
			out = append(out, p)
		}
	}
	return out, nil
}

// Figure1Series converts points into per-device curves for one pattern.
func Figure1Series(points []Figure1Point, sequential bool) []*report.Series {
	byDev := map[string]*report.Series{}
	var order []string
	for _, p := range points {
		s, ok := byDev[p.Device]
		if !ok {
			s = &report.Series{Name: p.Device, XLabel: "req_bytes", YLabel: "MiB/s"}
			byDev[p.Device] = s
			order = append(order, p.Device)
		}
		y := p.SeqMiBps
		if !sequential {
			y = p.RandMiBps
		}
		s.Add(float64(p.ReqBytes), y)
	}
	out := make([]*report.Series, 0, len(order))
	for _, name := range order {
		out = append(out, byDev[name])
	}
	return out
}
