package mitigation

import (
	"time"
)

// Classifier is the "more refined approach" of §4.5: distinguish benign
// from malicious I/O patterns so only harmful applications are throttled.
// It watches per-app write behaviour over a sliding window and scores three
// wear-attack signatures:
//
//  1. sustained write volume far above the lifespan budget,
//  2. persistence — the app writes in nearly every window, not in bursts,
//  3. rewrite-style traffic (small synchronous writes).
type Classifier struct {
	// Budget anchors "how much writing is too much".
	Budget LifespanBudget
	// Window is the sliding-window width. Defaults to 10 minutes.
	Window time.Duration
	// History is how many windows are kept. Defaults to 24.
	History int
	// Threshold is the malice score at which an app is flagged.
	// Defaults to 0.5.
	Threshold float64

	apps map[string]*appTrack
}

type appTrack struct {
	windows   []appWindow // ring of recent windows
	cur       appWindow
	curStart  time.Duration
	lastWrite time.Duration
}

type appWindow struct {
	bytes    int64
	writes   int64
	syncs    int64
	smallOps int64 // writes <= 64 KiB
}

// NewClassifier builds a classifier with defaults.
func NewClassifier(budget LifespanBudget) *Classifier {
	return &Classifier{
		Budget:    budget,
		Window:    10 * time.Minute,
		History:   24,
		Threshold: 0.5,
		apps:      make(map[string]*appTrack),
	}
}

func (c *Classifier) track(app string) *appTrack {
	t, ok := c.apps[app]
	if !ok {
		t = &appTrack{}
		c.apps[app] = t
	}
	return t
}

// roll closes windows older than now.
func (c *Classifier) roll(t *appTrack, now time.Duration) {
	for now-t.curStart >= c.Window {
		t.windows = append(t.windows, t.cur)
		if len(t.windows) > c.History {
			t.windows = t.windows[1:]
		}
		t.cur = appWindow{}
		t.curStart += c.Window
		if t.curStart+c.Window < now {
			// Large idle gap: fast-forward.
			skipped := (now - t.curStart) / c.Window
			for i := time.Duration(0); i < skipped && len(t.windows) <= c.History; i++ {
				t.windows = append(t.windows, appWindow{})
			}
			if len(t.windows) > c.History {
				t.windows = t.windows[len(t.windows)-c.History:]
			}
			t.curStart = now - (now % c.Window)
		}
	}
}

// ObserveWrite feeds one write into the model.
func (c *Classifier) ObserveWrite(app string, bytes int64, sync bool, now time.Duration) {
	t := c.track(app)
	if t.curStart == 0 && t.lastWrite == 0 && len(t.windows) == 0 {
		t.curStart = now - (now % c.Window)
	}
	c.roll(t, now)
	t.cur.bytes += bytes
	t.cur.writes++
	if sync {
		t.cur.syncs++
	}
	if bytes <= 64<<10 {
		t.cur.smallOps++
	}
	t.lastWrite = now
}

// Score returns the app's malice score in [0, 1].
func (c *Classifier) Score(app string, now time.Duration) float64 {
	t, ok := c.apps[app]
	if !ok {
		return 0
	}
	c.roll(t, now)
	var bytes, writes, smallOps int64
	active := 0
	n := 0
	for _, w := range t.windows {
		n++
		bytes += w.bytes
		writes += w.writes
		smallOps += w.smallOps
		if w.bytes > 0 {
			active++
		}
	}
	bytes += t.cur.bytes
	writes += t.cur.writes
	smallOps += t.cur.smallOps
	if t.cur.bytes > 0 {
		active++
	}
	n++
	if writes == 0 {
		return 0
	}
	span := time.Duration(n) * c.Window
	rate := float64(bytes) / span.Seconds()

	// Signature 1: rate pressure vs the lifespan budget. A benign app
	// writing under ~8x the sustainable rate scores low; a wear attack
	// runs hundreds of times over budget.
	pressure := rate / (c.Budget.BytesPerSecond() * 8)
	if pressure > 1 {
		pressure = 1
	}
	// Signature 2: persistence.
	persistence := float64(active) / float64(n)
	// Signature 3: small-write fraction.
	small := float64(smallOps) / float64(writes)

	return 0.6*pressure + 0.25*persistence + 0.15*small
}

// Malicious reports whether the app is currently flagged.
func (c *Classifier) Malicious(app string, now time.Duration) bool {
	return c.Score(app, now) >= c.Threshold
}

// SelectiveThrottler combines the classifier with a rate limiter: only
// flagged apps get throttled, so benign bursts keep full performance
// (§4.5: "selectively rate limit only harmful applications").
type SelectiveThrottler struct {
	Classifier *Classifier
	Limiter    *RateLimiter
}

// NewSelectiveThrottler wires a classifier and per-app limiter from one
// budget.
func NewSelectiveThrottler(budget LifespanBudget) (*SelectiveThrottler, error) {
	lim, err := NewRateLimiter(budget)
	if err != nil {
		return nil, err
	}
	lim.PerApp = true
	return &SelectiveThrottler{
		Classifier: NewClassifier(budget),
		Limiter:    lim,
	}, nil
}

// Throttle implements the android.Config.Throttle hook.
func (s *SelectiveThrottler) Throttle(app string, bytes int64, now time.Duration) time.Duration {
	s.Classifier.ObserveWrite(app, bytes, false, now)
	if !s.Classifier.Malicious(app, now) {
		return 0
	}
	return s.Limiter.Throttle(app, bytes, now)
}
