package emmc

import "flashwear/internal/telemetry"

// Instrument registers the transport counters with reg under "emmc.*".
// Pure observers only; see DESIGN.md §7.
func (c *Controller) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("emmc.commands", func() int64 { return c.stats.Commands })
	reg.CounterFunc("emmc.ext_csd_reads", func() int64 { return c.stats.ExtCSDReads })
	reg.CounterFunc("emmc.bytes_read", func() int64 { return c.stats.BytesRead })
	reg.CounterFunc("emmc.bytes_written", func() int64 { return c.stats.BytesWritten })
}
