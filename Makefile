GO ?= go

.PHONY: all build vet lint test race bench faults wtrace check

all: build

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# The project's own analyzers (DESIGN.md §10): wall-clock time, global
# math/rand, unsorted map emission, float accumulation in merge paths, and
# discarded NAND/FTL errors. Builds cmd/flashvet and runs all five over the
# whole module; exits non-zero on any finding or unused ignore directive.
# The same binary also works as `go vet -vettool=$$(pwd)/bin/flashvet ./...`.
lint:
	@mkdir -p bin
	$(GO) build -o bin/flashvet ./cmd/flashvet
	./bin/flashvet ./...

test:
	$(GO) test ./...

# A short -race pass over the concurrent subsystems: the fleet
# determinism tests run the same 64-device population at 4 workers and at
# 1 and require byte-identical aggregates — including the merged wear
# ledger (DESIGN.md §6, §9) — plus the telemetry registry and wtrace
# ledger under concurrent registration/emission.
race:
	$(GO) test -race -count=1 -run TestFleet ./internal/fleet/
	$(GO) test -race -count=1 -run 'TestRegistryConcurrent|TestWtraceCollector' ./internal/telemetry/
	$(GO) test -race -count=1 -run TestConcurrentLedger ./internal/wtrace/

# The fault matrix under -race: randomized power-cut/remount recovery,
# program/erase-failure handling, graceful EOL, the faulty-flash crash
# suites for both file systems, and the fleet's fault-plan/panic paths
# (DESIGN.md §8).
faults:
	$(GO) test -race -count=1 \
		-run 'TestRecover|TestProgramFailures|TestGraceful|TestBrickAtEOL|TestEOLSpare|TestQuickRemount|TestCrashConformanceOnFaultyFlash|TestFleetFaultPlan|TestFleetPanic|TestInjector' \
		./internal/ftl/ ./internal/faultinject/ ./internal/fleet/ \
		./internal/fs/extfs/ ./internal/fs/f2fs/

# One pass over every benchmark (each regenerates a paper exhibit);
# -benchtime=1x keeps it a smoke run. Drop the flag for real timings.
bench:
	$(GO) test -bench=. -benchtime=1x -benchmem .

# End-to-end wear-attribution smoke (DESIGN.md §9): run the CLIs with
# tracing on, then validate every artifact with wtracecheck — the ledger's
# decomposition identities and the Chrome trace's well-formedness — and
# require the fleet ledger to be byte-identical across worker counts.
# Artifacts land in wtrace-out/ (CI uploads them).
wtrace:
	rm -rf wtrace-out && mkdir -p wtrace-out
	$(GO) build -o wtrace-out/ ./cmd/flashsim ./cmd/fleetsim ./cmd/wtracecheck
	./wtrace-out/flashsim -device "eMMC 8GB" -scale 2048 -gib 0.2 -fill 0.3 \
		-wear-ledger wtrace-out/flashsim-ledger.csv -wear-trace wtrace-out/flashsim-trace.json >/dev/null
	./wtrace-out/fleetsim -devices 12 -days 2 -scale 16384 -seed 7 -quiet -workers 1 \
		-wear-trace wtrace-out/fleet-ledger-w1.csv >/dev/null
	./wtrace-out/fleetsim -devices 12 -days 2 -scale 16384 -seed 7 -quiet -workers 4 \
		-wear-trace wtrace-out/fleet-ledger-w4.csv >/dev/null
	cmp wtrace-out/fleet-ledger-w1.csv wtrace-out/fleet-ledger-w4.csv
	./wtrace-out/wtracecheck -ledger wtrace-out/flashsim-ledger.csv -trace wtrace-out/flashsim-trace.json
	./wtrace-out/wtracecheck -ledger wtrace-out/fleet-ledger-w1.csv

# The verification entrypoint: everything CI (or a reviewer) should run.
check: vet lint build test race faults wtrace
