package faultinject

import (
	"reflect"
	"testing"
)

// FuzzParsePlan drives the CLI plan grammar with arbitrary input. Three
// properties must hold for every input: the parser never panics, a plan
// it accepts also passes Validate (the parser may not hand the injector
// a plan Validate would reject), and parsing is deterministic.
func FuzzParsePlan(f *testing.F) {
	for _, s := range []string{
		"",
		"seed=7,read=1e-4,program=1e-5,erase=1e-5",
		"cut-every=100000,cut-at=250000;700000,cut-time=24h;240h",
		"read=0.5",
		"cut-at=1",
		"cut-at=1;2;3,cut-at=4",
		"seed=-1",
		"read=1e-4,read=1e-6",
		"bogus=1",
		"read=",
		"=x",
		",,,",
		"cut-time=1h;bogus",
		"read=2",   // probability out of range
		"cut-at=0", // boundary: entries must be > 0
		"seed=9223372036854775807",
		"read=NaN", // NaN compares false against every bound; Validate must still reject it
		"program=+Inf",
	} {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		p, err := ParsePlan(s)
		if err != nil {
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("ParsePlan(%q) accepted a plan Validate rejects: %v", s, verr)
		}
		q, err2 := ParsePlan(s)
		if err2 != nil {
			t.Fatalf("ParsePlan(%q) not deterministic: nil error then %v", s, err2)
		}
		if !reflect.DeepEqual(p, q) {
			t.Fatalf("ParsePlan(%q) not deterministic: %+v vs %+v", s, p, q)
		}
	})
}
