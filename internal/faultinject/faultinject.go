// Package faultinject provides deterministic, seed-driven fault plans for
// the simulated NAND: transient read ECC overflows, program failures, erase
// failures, and power cuts scheduled by operation count or simulated time.
//
// A Plan is pure specification — a value that can be parsed from a CLI
// flag, embedded in a fleet Spec, and re-seeded per device. An Injector is
// the per-device runtime built from a plan; it implements
// nand.FaultInjector and is shared by all of a device's chips so its
// operation counter covers the whole device. The same (plan, seed) always
// produces the same fault sequence for the same operation sequence, which
// is what makes crash/remount suites reproducible.
package faultinject

import (
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"time"

	"flashwear/internal/nand"
	"flashwear/internal/telemetry"
)

// Plan is a declarative fault schedule. The zero value injects nothing.
type Plan struct {
	// Seed drives the probabilistic faults. Fleet runs derive a per-device
	// seed from this so devices fail independently but reproducibly.
	Seed int64
	// ReadFaultProb is the per-read probability of a transient
	// uncorrectable (ECC overflow) result. The data underneath is intact;
	// firmware read-retry usually recovers it.
	ReadFaultProb float64
	// ProgramFaultProb is the per-program probability of a program
	// failure (the page is consumed; firmware retries on the next page
	// and eventually retires the block).
	ProgramFaultProb float64
	// EraseFaultProb is the per-erase probability of an erase failure
	// (the block should be retired).
	EraseFaultProb float64
	// PowerCutOps lists absolute device operation counts at which power
	// is cut. Each fires once; power stays down until PowerRestored.
	PowerCutOps []int64
	// PowerCutEvery, when > 0, additionally cuts power every N operations.
	PowerCutEvery int64
	// PowerCutAt lists simulated times at which power is cut (requires a
	// clock; each fires once at the first operation at or after the mark).
	PowerCutAt []time.Duration
}

// Empty reports whether the plan injects nothing.
func (p Plan) Empty() bool {
	return p.ReadFaultProb == 0 && p.ProgramFaultProb == 0 && p.EraseFaultProb == 0 &&
		len(p.PowerCutOps) == 0 && p.PowerCutEvery == 0 && len(p.PowerCutAt) == 0
}

// WithSeed returns a copy of the plan with the seed replaced — the
// per-device derivation fleet runs use.
func (p Plan) WithSeed(seed int64) Plan {
	p.Seed = seed
	return p
}

// After returns a copy of the plan with time-scheduled power cuts at or
// before start removed. A resumed (or daily-rebooted) device builds a
// fresh Injector whose time cursor starts at zero; without this filter,
// every cut-time mark the previous boot already fired would fire again at
// the first operation of the new one.
func (p Plan) After(start time.Duration) Plan {
	var keep []time.Duration
	for _, at := range p.PowerCutAt {
		if at > start {
			keep = append(keep, at)
		}
	}
	p.PowerCutAt = keep
	return p
}

// Validate reports the first invalid field.
func (p Plan) Validate() error {
	check := func(name string, v float64) error {
		// The inverted form also rejects NaN, which compares false
		// against every bound and would otherwise slip through.
		if !(v >= 0 && v <= 1) {
			return fmt.Errorf("faultinject: %s = %g, want [0,1]", name, v)
		}
		return nil
	}
	if err := check("ReadFaultProb", p.ReadFaultProb); err != nil {
		return err
	}
	if err := check("ProgramFaultProb", p.ProgramFaultProb); err != nil {
		return err
	}
	if err := check("EraseFaultProb", p.EraseFaultProb); err != nil {
		return err
	}
	if p.PowerCutEvery < 0 {
		return fmt.Errorf("faultinject: PowerCutEvery = %d, want >= 0", p.PowerCutEvery)
	}
	for _, op := range p.PowerCutOps {
		if op <= 0 {
			return fmt.Errorf("faultinject: PowerCutOps entry %d, want > 0", op)
		}
	}
	for _, at := range p.PowerCutAt {
		if at <= 0 {
			return fmt.Errorf("faultinject: PowerCutAt entry %v, want > 0", at)
		}
	}
	return nil
}

// ParsePlan parses the CLI flag syntax: comma-separated key=value pairs
// with ';'-separated lists, e.g.
//
//	seed=7,read=1e-4,program=1e-5,erase=1e-5,cut-every=100000,cut-at=250000;700000,cut-time=24h;240h
//
// An empty string parses to the zero plan.
func ParsePlan(s string) (Plan, error) {
	var p Plan
	s = strings.TrimSpace(s)
	if s == "" {
		return p, nil
	}
	seen := make(map[string]bool)
	for _, field := range strings.Split(s, ",") {
		key, val, ok := strings.Cut(strings.TrimSpace(field), "=")
		if !ok {
			return p, fmt.Errorf("faultinject: %q: want key=value", field)
		}
		// A repeated scalar clause is a typo'd plan, not a refinement:
		// silently letting the last one win would make e.g.
		// "read=1e-3,read=1e-6" inject a thousandth of what the operator
		// reviewed. The list keys (cut-at, cut-time) may repeat; repeats
		// append, same as ';' within one clause.
		if seen[key] && key != "cut-at" && key != "cut-time" {
			return p, fmt.Errorf("faultinject: duplicate %q clause", key)
		}
		seen[key] = true
		var err error
		switch key {
		case "seed":
			p.Seed, err = strconv.ParseInt(val, 10, 64)
		case "read":
			p.ReadFaultProb, err = strconv.ParseFloat(val, 64)
		case "program":
			p.ProgramFaultProb, err = strconv.ParseFloat(val, 64)
		case "erase":
			p.EraseFaultProb, err = strconv.ParseFloat(val, 64)
		case "cut-every":
			p.PowerCutEvery, err = strconv.ParseInt(val, 10, 64)
		case "cut-at":
			for _, item := range strings.Split(val, ";") {
				var op int64
				if op, err = strconv.ParseInt(item, 10, 64); err != nil {
					break
				}
				p.PowerCutOps = append(p.PowerCutOps, op)
			}
		case "cut-time":
			for _, item := range strings.Split(val, ";") {
				var d time.Duration
				if d, err = time.ParseDuration(item); err != nil {
					break
				}
				p.PowerCutAt = append(p.PowerCutAt, d)
			}
		default:
			return p, fmt.Errorf("faultinject: unknown key %q (want seed, read, program, erase, cut-every, cut-at, cut-time)", key)
		}
		if err != nil {
			return p, fmt.Errorf("faultinject: %s: %v", key, err)
		}
	}
	if err := p.Validate(); err != nil {
		return p, err
	}
	return p, nil
}

// Stats counts what an injector has done.
type Stats struct {
	Ops           int64 // chip operations observed while powered
	ReadFaults    int64
	ProgramFaults int64
	EraseFaults   int64
	PowerCuts     int64
}

// Injector is the stateful per-device runtime of a Plan. It implements
// nand.FaultInjector; share one injector across a device's chips so the
// operation counter and power state cover the whole device. Not safe for
// concurrent use (devices are single-queue, like the chips).
type Injector struct {
	plan    Plan
	idle    bool // plan injects nothing: count the op and get out
	rng     *rand.Rand
	now     func() time.Duration
	cutOps  []int64 // sorted copy of plan.PowerCutOps
	cutIdx  int
	timeIdx int
	down    bool
	stats   Stats
}

// New builds an injector from a plan. now supplies simulated time for
// PowerCutAt scheduling; nil disables time-based cuts.
func New(plan Plan, now func() time.Duration) *Injector {
	j := &Injector{
		plan: plan,
		idle: plan.Empty(),
		rng:  rand.New(rand.NewSource(plan.Seed)),
		now:  now,
	}
	if len(plan.PowerCutAt) == 0 {
		j.now = nil // never consult the clock when no time-based cuts exist
	}
	j.cutOps = append(j.cutOps, plan.PowerCutOps...)
	sort.Slice(j.cutOps, func(a, b int) bool { return j.cutOps[a] < j.cutOps[b] })
	return j
}

// Inject implements nand.FaultInjector.
func (j *Injector) Inject(op nand.Op) nand.Fault {
	if j.down {
		return nand.FaultPowerCut
	}
	j.stats.Ops++
	if j.idle {
		// An empty plan keeps the op counter honest (CutNow can still fire
		// between ops) but must cost nothing on the chip's hot path.
		return nand.FaultNone
	}
	cut := false
	for j.cutIdx < len(j.cutOps) && j.stats.Ops >= j.cutOps[j.cutIdx] {
		cut = true
		j.cutIdx++
	}
	if e := j.plan.PowerCutEvery; e > 0 && j.stats.Ops%e == 0 {
		cut = true
	}
	if j.now != nil {
		now := j.now()
		for j.timeIdx < len(j.plan.PowerCutAt) && now >= j.plan.PowerCutAt[j.timeIdx] {
			cut = true
			j.timeIdx++
		}
	}
	if cut {
		j.cut()
		return nand.FaultPowerCut
	}
	switch op {
	case nand.OpRead:
		if p := j.plan.ReadFaultProb; p > 0 && j.rng.Float64() < p {
			j.stats.ReadFaults++
			return nand.FaultRead
		}
	case nand.OpProgram:
		if p := j.plan.ProgramFaultProb; p > 0 && j.rng.Float64() < p {
			j.stats.ProgramFaults++
			return nand.FaultProgram
		}
	case nand.OpErase:
		if p := j.plan.EraseFaultProb; p > 0 && j.rng.Float64() < p {
			j.stats.EraseFaults++
			return nand.FaultErase
		}
	}
	return nand.FaultNone
}

// Down implements nand.FaultInjector: power is currently cut.
func (j *Injector) Down() bool { return j.down }

// CutNow cuts power immediately, outside any schedule — what a test or a
// CLI -power-cut flag uses.
func (j *Injector) CutNow() {
	if !j.down {
		j.cut()
	}
}

func (j *Injector) cut() {
	j.down = true
	j.stats.PowerCuts++
}

// PowerRestored brings the device back up; the owner must then run FTL
// recovery before issuing I/O.
func (j *Injector) PowerRestored() { j.down = false }

// Stats returns a snapshot of injected-fault counters.
func (j *Injector) Stats() Stats { return j.stats }

// Instrument registers the injector's counters with reg under "fault.*".
// All pull-based pure observers, like the rest of the stack (DESIGN.md §7).
func (j *Injector) Instrument(reg *telemetry.Registry) {
	reg.CounterFunc("fault.ops", func() int64 { return j.stats.Ops })
	reg.CounterFunc("fault.read_faults", func() int64 { return j.stats.ReadFaults })
	reg.CounterFunc("fault.program_faults", func() int64 { return j.stats.ProgramFaults })
	reg.CounterFunc("fault.erase_faults", func() int64 { return j.stats.EraseFaults })
	reg.CounterFunc("fault.power_cuts", func() int64 { return j.stats.PowerCuts })
}
