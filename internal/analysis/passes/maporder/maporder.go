// Package maporder flags map iteration whose order leaks into output.
//
// Invariant: everything the simulator emits — device state, journal and
// checkpoint writes, CSV ledgers, merged aggregates — must be a pure
// function of the Spec. Go randomizes map iteration order per run, so a
// `range` over a map may not, in its body, write to an io.Writer, build a
// string, or append to a slice that outlives the loop unless that slice is
// sorted afterwards. This is the exact bug class PR 3 shipped in extfs:
// journal/checkpoint/bitmap blocks were written home in map order, so two
// runs of the same workload produced different on-flash histories and the
// crash/remount suite could not replay. The sanctioned idiom is
// collect-keys / sort / iterate (extfs's sortedKeys), which this analyzer
// recognizes and leaves alone.
package maporder

import (
	"go/ast"
	"go/token"
	"go/types"

	"flashwear/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc: "flag map-range bodies whose iteration order escapes\n\n" +
		"Writing to an io.Writer, building a string, or growing an escaping\n" +
		"unsorted slice inside `range someMap` makes output depend on Go's\n" +
		"randomized map order (the PR 3 extfs journal bug).",
	Run: run,
}

// ioWriter is a handmade io.Writer interface, so detection does not depend
// on the analyzed package importing io.
var ioWriter = func() *types.Interface {
	params := types.NewTuple(types.NewVar(token.NoPos, nil, "p", types.NewSlice(types.Typ[types.Byte])))
	results := types.NewTuple(
		types.NewVar(token.NoPos, nil, "n", types.Typ[types.Int]),
		types.NewVar(token.NoPos, nil, "err", types.Universe.Lookup("error").Type()),
	)
	sig := types.NewSignatureType(nil, nil, nil, params, results, false)
	iface := types.NewInterfaceType([]*types.Func{types.NewFunc(token.NoPos, nil, "Write", sig)}, nil)
	iface.Complete()
	return iface
}()

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && fn.Body != nil {
				checkFunc(pass, fn.Body)
			}
		}
	}
	return nil
}

// checkFunc inspects one function body for map ranges whose iteration
// order escapes. fnBody is also the scan range for the sorted-afterwards
// exemption.
func checkFunc(pass *analysis.Pass, fnBody *ast.BlockStmt) {
	ast.Inspect(fnBody, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		if tv, ok := pass.TypesInfo.Types[rng.X]; !ok || !isMap(tv.Type) {
			return true
		}
		checkRangeBody(pass, fnBody, rng)
		return true
	})
}

func isMap(t types.Type) bool {
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkRangeBody(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt) {
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name := emissionCall(pass, n); name != "" {
				pass.Reportf(n.Pos(), "%s inside range over map: iteration order is randomized, so the output differs run to run — iterate sorted keys instead", name)
			}
		case *ast.AssignStmt:
			checkAssign(pass, fnBody, rng, n)
		}
		return true
	})
}

// emissionCall reports a non-empty description if the call writes
// order-dependent bytes to a sink: fmt.Fprint*, io.WriteString, a Write*/
// Print* method on an io.Writer implementation, or encoding/csv output.
func emissionCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn := pass.FuncOf(call)
	if fn == nil || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return ""
	}
	if recv := sig.Recv(); recv != nil {
		t := recv.Type()
		writesBytes := types.Implements(t, ioWriter) ||
			types.Implements(types.NewPointer(t), ioWriter) ||
			isCSVWriter(t)
		if writesBytes && (hasPrefix(name, "Write") || hasPrefix(name, "Print")) {
			return "write to " + types.TypeString(t, types.RelativeTo(pass.Pkg)) + "." + name
		}
		return ""
	}
	switch fn.Pkg().Path() {
	case "fmt":
		if hasPrefix(name, "Fprint") {
			return "fmt." + name
		}
	case "io":
		if name == "WriteString" {
			return "io.WriteString"
		}
	}
	return ""
}

func isCSVWriter(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "encoding/csv" && named.Obj().Name() == "Writer"
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// checkAssign flags two escapes through assignment: growing an outer-scope
// slice via append (unless the slice is sorted after the loop), and
// building a string into an outer-scope variable.
func checkAssign(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, as *ast.AssignStmt) {
	if as.Tok == token.DEFINE {
		return // a fresh variable cannot outlive the loop body
	}
	for i, lhs := range as.Lhs {
		obj := outerObject(pass, rng, lhs)
		if obj == nil {
			continue
		}
		// String accumulation: s += ... or s = s + ... .
		if basicString(obj.Type()) {
			if as.Tok == token.ADD_ASSIGN || (as.Tok == token.ASSIGN && i < len(as.Rhs) && selfConcat(pass, obj, as.Rhs[i])) {
				pass.Reportf(as.Pos(), "string built across range over map: concatenation order is randomized — collect and sort keys first")
			}
			continue
		}
		// Slice growth: x = append(x, ...).
		if i < len(as.Rhs) && isAppend(pass, as.Rhs[i]) {
			if sortedAfter(pass, fnBody, rng, obj) {
				continue // the collect-then-sort idiom
			}
			pass.Reportf(as.Pos(), "append to %s inside range over map without sorting it afterwards: element order is randomized", obj.Name())
		}
	}
}

// outerObject resolves lhs to a variable declared outside the range
// statement, or nil if it is loop-local (or not a plain variable). Struct
// fields and package variables count as outer.
func outerObject(pass *analysis.Pass, rng *ast.RangeStmt, lhs ast.Expr) types.Object {
	var id *ast.Ident
	switch e := ast.Unparen(lhs).(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return nil
	}
	obj := pass.TypesInfo.Uses[id]
	if obj == nil {
		return nil
	}
	if obj.Pos() >= rng.Pos() && obj.Pos() < rng.End() {
		return nil // declared inside the loop
	}
	return obj
}

func basicString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

// selfConcat reports whether rhs is a + chain that mentions obj, i.e. the
// assignment extends the existing string.
func selfConcat(pass *analysis.Pass, obj types.Object, rhs ast.Expr) bool {
	found := false
	ast.Inspect(rhs, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
			found = true
		}
		return !found
	})
	return found
}

func isAppend(pass *analysis.Pass, rhs ast.Expr) bool {
	call, ok := ast.Unparen(rhs).(*ast.CallExpr)
	if !ok {
		return false
	}
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return false
	}
	b, ok := pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok && b.Name() == "append"
}

// sortedAfter reports whether, later in the same function, the collected
// slice is passed to a sort.* or slices.* function — the second half of
// the collect/sort/iterate idiom.
func sortedAfter(pass *analysis.Pass, fnBody *ast.BlockStmt, rng *ast.RangeStmt, obj types.Object) bool {
	sorted := false
	ast.Inspect(fnBody, func(n ast.Node) bool {
		if sorted {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		fn := pass.FuncOf(call)
		if fn == nil || fn.Pkg() == nil {
			return true
		}
		if path := fn.Pkg().Path(); path != "sort" && path != "slices" {
			return true
		}
		for _, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && pass.TypesInfo.Uses[id] == obj {
				sorted = true
			}
		}
		return true
	})
	return sorted
}
