package appmodel

import (
	"math/rand"
	"testing"
)

func TestNominalDailyBytes(t *testing.T) {
	rates := NominalDailyBytes()
	// Sanity-check magnitudes against the model defaults: camera dominates
	// the benign population, chat is tiny, the bug dwarfs everything.
	if rates["camera"] != 96<<20 {
		t.Errorf("camera = %d, want %d", rates["camera"], 96<<20)
	}
	if rates["chat"] <= 0 || rates["chat"] > 4<<20 {
		t.Errorf("chat = %d, want a few MiB", rates["chat"])
	}
	if rates["updater"] <= 0 || rates["updater"] > 8<<20 {
		t.Errorf("updater = %d, want a few MiB", rates["updater"])
	}
	if rates["spotify-bug"] < 100*rates["camera"] {
		t.Errorf("spotify-bug = %d, want orders of magnitude above camera's %d",
			rates["spotify-bug"], rates["camera"])
	}
	if got := BenignDailyBytes(); got != rates["camera"]+rates["chat"]+rates["updater"] {
		t.Errorf("BenignDailyBytes = %d, want sum of benign models", got)
	}
}

func TestSampleDailyBytesDeterministic(t *testing.T) {
	a, b := rand.New(rand.NewSource(9)), rand.New(rand.NewSource(9))
	for i := 0; i < 32; i++ {
		if x, y := SampleBenignDailyBytes(a), SampleBenignDailyBytes(b); x != y {
			t.Fatalf("benign draw %d: %d != %d with equal seeds", i, x, y)
		}
	}
	a, b = rand.New(rand.NewSource(10)), rand.New(rand.NewSource(10))
	for i := 0; i < 32; i++ {
		if x, y := SampleBuggyDailyBytes(a), SampleBuggyDailyBytes(b); x != y {
			t.Fatalf("buggy draw %d: %d != %d with equal seeds", i, x, y)
		}
	}
}

func TestSampleDailyBytesRanges(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 1000; i++ {
		if v := SampleBenignDailyBytes(rng); v < BenignDailyBytes()/32 || v > 20*BenignDailyBytes() {
			t.Fatalf("benign sample %d out of clamped range", v)
		}
		if v := SampleBuggyDailyBytes(rng); v < 1<<30 || v > 512<<30 {
			t.Fatalf("buggy sample %d out of clamped range", v)
		}
	}
}
