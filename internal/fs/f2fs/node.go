package f2fs

import (
	"encoding/binary"
	"fmt"

	"flashwear/internal/fs"
)

// Node flags.
const (
	nodeFsync    = 1 << 0 // written by fsync: participates in roll-forward
	nodeIndirect = 1 << 1
	nodeDead     = 1 << 2 // written on deletion so roll-forward drops it
)

// Node modes (inodes only).
const (
	modeFile = 1
	modeDir  = 2
)

const nodeMagic = 0x46324E44 // "F2ND"

// node is the in-memory form of a node block: either an inode (file/dir
// metadata plus direct pointers and indirect-node IDs) or an indirect node
// (a run of data-block pointers).
type node struct {
	id    uint32
	flags uint8
	mode  uint16
	links uint16
	size  int64
	mtime int64

	direct   []uint32 // inode: NDirect data pointers
	indirect []uint32 // inode: NIndirectIDs node IDs
	ptrs     []uint32 // indirect node: IndirectPtrs data pointers

	dirty bool
}

func newInode(id uint32, mode uint16) *node {
	return &node{
		id: id, mode: mode, links: 1,
		direct:   make([]uint32, NDirect),
		indirect: make([]uint32, NIndirectIDs),
		dirty:    true,
	}
}

func newIndirect(id uint32) *node {
	return &node{
		id: id, flags: nodeIndirect,
		ptrs:  make([]uint32, IndirectPtrs),
		dirty: true,
	}
}

func (n *node) isIndirect() bool { return n.flags&nodeIndirect != 0 }

// encode serialises a node with the given version and fsync flag.
func (n *node) encode(ver uint64, fsync bool) []byte {
	b := make([]byte, BlockSize)
	le := binary.LittleEndian
	flags := n.flags &^ nodeFsync
	if fsync {
		flags |= nodeFsync
	}
	le.PutUint32(b[0:], nodeMagic)
	le.PutUint32(b[4:], n.id)
	le.PutUint64(b[8:], ver)
	b[16] = flags
	le.PutUint16(b[18:], n.mode)
	le.PutUint16(b[20:], n.links)
	le.PutUint64(b[24:], uint64(n.size))
	le.PutUint64(b[32:], uint64(n.mtime))
	if n.isIndirect() {
		for i, p := range n.ptrs {
			le.PutUint32(b[64+4*i:], p)
		}
	} else {
		for i, p := range n.direct {
			le.PutUint32(b[64+4*i:], p)
		}
		base := 64 + 4*NDirect
		for i, p := range n.indirect {
			le.PutUint32(b[base+4*i:], p)
		}
	}
	return b
}

// decodeNode parses a node block, returning the node, its version, and its
// fsync marker.
func decodeNode(b []byte) (*node, uint64, bool, error) {
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != nodeMagic {
		return nil, 0, false, fmt.Errorf("%w: not a node block", ErrCorrupt)
	}
	n := &node{
		id:    le.Uint32(b[4:]),
		flags: b[16] &^ nodeFsync,
		mode:  le.Uint16(b[18:]),
		links: le.Uint16(b[20:]),
		size:  int64(le.Uint64(b[24:])),
		mtime: int64(le.Uint64(b[32:])),
	}
	ver := le.Uint64(b[8:])
	fsync := b[16]&nodeFsync != 0
	if n.flags&nodeIndirect != 0 {
		n.ptrs = make([]uint32, IndirectPtrs)
		for i := range n.ptrs {
			n.ptrs[i] = le.Uint32(b[64+4*i:])
		}
	} else {
		n.direct = make([]uint32, NDirect)
		for i := range n.direct {
			n.direct[i] = le.Uint32(b[64+4*i:])
		}
		n.indirect = make([]uint32, NIndirectIDs)
		base := 64 + 4*NDirect
		for i := range n.indirect {
			n.indirect[i] = le.Uint32(b[base+4*i:])
		}
	}
	return n, ver, fsync, nil
}

// --- NAT ---

// natLookup returns the current block address of a node, 0 if unmapped.
func (v *FS) natLookup(id uint32) uint32 {
	if id == 0 || int(id) >= len(v.nat) {
		return 0
	}
	return v.nat[id]
}

// natSet updates a node's address and marks the NAT block dirty.
func (v *FS) natSet(id, addr uint32) {
	v.nat[id] = addr
	v.natDirty[id/natEntriesPerBlock] = true
}

// allocNodeID finds an unused node ID.
func (v *FS) allocNodeID() (uint32, error) {
	n := uint32(len(v.nat))
	for scanned := uint32(0); scanned < n; scanned++ {
		id := v.nodeRotor
		v.nodeRotor++
		if v.nodeRotor >= n {
			v.nodeRotor = 1
		}
		if id == 0 {
			continue
		}
		if v.nat[id] == 0 && v.nodes[id] == nil {
			return id, nil
		}
	}
	return 0, fmt.Errorf("f2fs: out of node IDs")
}

// loadNode fetches a node through the cache.
func (v *FS) loadNode(id uint32) (*node, error) {
	if n, ok := v.nodes[id]; ok && n != nil {
		return n, nil
	}
	addr := v.natLookup(id)
	if addr == 0 {
		return nil, fs.ErrNotExist
	}
	b, err := readBlock(v.dev, addr)
	if err != nil {
		return nil, err
	}
	n, _, _, err := decodeNode(b)
	if err != nil {
		return nil, err
	}
	if n.id != id {
		return nil, fmt.Errorf("%w: NAT points node %d at node %d", ErrCorrupt, id, n.id)
	}
	v.nodes[id] = n
	return n, nil
}

// writeNode appends a node to the node log, updating NAT and segment state.
func (v *FS) writeNode(n *node, fsync bool) error {
	addr, err := v.allocLog(&v.nodeLog)
	if err != nil {
		return err
	}
	v.ver++
	if err := v.writeMetaBlock(addr, n.encode(v.ver, fsync)); err != nil {
		return err
	}
	if old := v.natLookup(n.id); old != 0 {
		v.invalidateBlock(old)
	}
	v.natSet(n.id, addr)
	v.markValid(addr, n.id, ownerIsNode)
	n.dirty = false
	v.statNodeWrites++
	return nil
}

// flushDirtyNodes writes every dirty cached node (checkpoint path).
func (v *FS) flushDirtyNodes() error {
	for _, n := range v.nodes {
		if n != nil && n.dirty {
			if err := v.writeNode(n, false); err != nil {
				return err
			}
		}
	}
	return nil
}
