package android

import (
	"testing"

	"flashwear/internal/device"
	"flashwear/internal/simclock"
	"flashwear/internal/wtrace"
)

// TestPerAppWearAttribution boots phones (both filesystems) with wear
// tracing on, runs a heavy and a light writer side by side, and checks the
// full causal chain: each app's sandboxed writes — through the FS, its
// journal/metadata, the FTL, and GC — land in that app's ledger row, the
// decomposition identity holds against the device's own chip counters, and
// the heavy writer owns the wear.
func TestPerAppWearAttribution(t *testing.T) {
	for _, kind := range []FSKind{FSExt4, FSF2FS} {
		t.Run(string(kind), func(t *testing.T) {
			tr := wtrace.New()
			p, err := NewPhone(Config{
				Profile:   device.ProfileMotoE8().Scaled(512),
				FS:        kind,
				WearTrace: tr,
			}, simclock.New())
			if err != nil {
				t.Fatalf("NewPhone: %v", err)
			}
			heavy, err := p.InstallApp("com.example.heavy")
			if err != nil {
				t.Fatal(err)
			}
			light, err := p.InstallApp("com.example.light")
			if err != nil {
				t.Fatal(err)
			}

			buf := make([]byte, 64<<10)
			hf, err := heavy.Storage().Create("/big")
			if err != nil {
				t.Fatal(err)
			}
			// Heavy: rewrite a 1 MiB region many times, syncing, to push
			// real churn (and GC) through the stack.
			for i := 0; i < 128; i++ {
				if _, err := hf.WriteAt(buf, int64(i%16)*int64(len(buf))); err != nil {
					t.Fatalf("heavy write %d: %v", i, err)
				}
				if i%8 == 7 {
					if err := hf.Sync(); err != nil {
						t.Fatal(err)
					}
				}
			}
			lf, err := light.Storage().Create("/small")
			if err != nil {
				t.Fatal(err)
			}
			if _, err := lf.WriteAt(buf[:4096], 0); err != nil {
				t.Fatal(err)
			}
			if err := lf.Sync(); err != nil {
				t.Fatal(err)
			}

			// Identity against ground truth: the ledger must account for
			// exactly the operations the device's chips counted.
			f := p.Device().FTL()
			snap := tr.Ledger().Snapshot()
			tot := snap.Totals()
			if got, want := tot.HostPages, f.Stats().HostPagesWritten; got != want {
				t.Errorf("ledger host pages = %d, FTL counted %d", got, want)
			}
			programs := f.MainChip().Stats().Programs
			erases := f.MainChip().Stats().Erases
			if c := f.CacheChip(); c != nil {
				programs += c.Stats().Programs
				erases += c.Stats().Erases
			}
			if tot.PhysPages != programs {
				t.Errorf("ledger phys pages = %d, chips counted %d", tot.PhysPages, programs)
			}
			if tot.Erases != erases {
				t.Errorf("ledger erases = %d, chips counted %d", tot.Erases, erases)
			}
			for _, r := range snap.Rows {
				if causes := r.HostPrograms + r.GCPrograms + r.WLPrograms + r.CachePrograms; r.PhysPages != causes {
					t.Errorf("origin %q: phys_pages %d != cause sum %d", r.Origin, r.PhysPages, causes)
				}
			}

			rows := map[string]wtrace.Row{}
			for _, r := range snap.Rows {
				rows[r.Origin] = r
			}
			h, l := rows["com.example.heavy"], rows["com.example.light"]
			if h.HostBytes == 0 || l.HostBytes == 0 {
				t.Fatalf("app rows missing wear: heavy=%+v light=%+v", h, l)
			}
			if h.PhysPages <= l.PhysPages {
				t.Errorf("heavy writer billed %d phys pages, light %d; attribution inverted",
					h.PhysPages, l.PhysPages)
			}
			if top := snap.Top(); top != "com.example.heavy" {
				t.Errorf("Top() = %q, want the heavy writer", top)
			}
			// mkfs and mount ran untagged, so "os" owns some wear too.
			if rows["os"].PhysPages == 0 {
				t.Error("os origin has no wear; mkfs/mount attribution lost")
			}
			if err := p.Shutdown(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestPhoneWearTraceOffIsUntagged pins the default: with no tracer in the
// config, installs and writes work and nothing panics (origin plumbing
// must be inert, not half-wired).
func TestPhoneWearTraceOffIsUntagged(t *testing.T) {
	p := testPhone(t, FSExt4)
	a, err := p.InstallApp("com.example.plain")
	if err != nil {
		t.Fatal(err)
	}
	f, err := a.Storage().Create("/x")
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := f.WriteAt(make([]byte, 4096), int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if got := p.Device().WearTracer(); got != nil {
		t.Fatalf("device has a tracer (%v) without Config.WearTrace", got)
	}
	if err := p.Shutdown(); err != nil {
		t.Fatal(err)
	}
}
