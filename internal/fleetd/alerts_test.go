package fleetd

import (
	"bytes"
	"fmt"
	"strings"
	"testing"

	"flashwear/internal/obs"
)

// simFingerprint renders the campaign's sim-domain journal events —
// alerts and brick milestones — stripped of their ops envelope
// (Seq/WallMs), in journal order. This is the determinism oracle for the
// alert evaluator: byte equality across scheduling variants and resume.
func simFingerprint(c *Campaign) []byte {
	var buf bytes.Buffer
	for _, e := range c.Events(0) {
		if e.Sim {
			buf.WriteString(e.SimString())
			buf.WriteByte('\n')
		}
	}
	return buf.Bytes()
}

// alertSpec is a population that actually fires alerts: with 4 devices
// over 10 days, one bricks and one goes read-only, crossing the
// brick-rate, PRE_EOL, and milestone thresholds.
func alertSpec() CampaignSpec {
	spec := tinySpec()
	spec.Days = 10
	return spec
}

// TestAlertEventInvariance pins the ISSUE 7 acceptance criterion: the
// sim-domain alert events are byte-identical across seeds x shards x
// workers x checkpoint cadence, while /metrics (ops-domain) is free to
// differ and is excluded. The reference run is in-memory single-epoch;
// every on-disk scheduling variant must match it exactly.
func TestAlertEventInvariance(t *testing.T) {
	for _, seed := range []int64{7, 42} {
		seed := seed
		t.Run(fmt.Sprintf("seed%d", seed), func(t *testing.T) {
			base := alertSpec()
			base.Seed = seed
			ref := simFingerprint(runToEnd(t, "", base))
			if len(ref) == 0 {
				t.Fatal("reference run fired no sim events; the fixture spec must brick devices for this test to mean anything")
			}
			for _, v := range []struct {
				name            string
				shards, workers int
				every           int
			}{
				{"w1s1-nockpt", 1, 1, 0},
				{"w4s3-e2", 3, 4, 2},
				{"w2s2-e1", 2, 2, 1},
				{"w1s4-e3", 4, 1, 3},
			} {
				spec := base
				spec.Shards = v.shards
				spec.Workers = v.workers
				spec.CheckpointEvery = v.every
				got := simFingerprint(runToEnd(t, t.TempDir(), spec))
				if !bytes.Equal(got, ref) {
					t.Errorf("%s: sim events differ from reference\nref:\n%s\ngot:\n%s", v.name, ref, got)
				}
			}
		})
	}
}

// TestAlertEventsSurviveResume pins the crash/resume contract for the
// journal: pause mid-run, adopt the directory with a fresh manager (a
// restarted process), resume, and require (a) the same sim events as an
// uninterrupted run with no duplicates — the fired-set is rebuilt from
// the journal — and (b) a contiguous sequence numbering across the
// process boundary.
func TestAlertEventsSurviveResume(t *testing.T) {
	spec := alertSpec()
	spec.Shards = 2
	spec.Workers = 2
	spec.CheckpointEvery = 1

	ref := simFingerprint(runToEnd(t, t.TempDir(), spec))

	dir := t.TempDir()
	m1, err := NewManager(dir)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	c1, err := m1.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	c1.Pause()

	m2, err := NewManager(dir)
	if err != nil {
		t.Fatalf("adopting manager: %v", err)
	}
	c2, ok := m2.Get(c1.ID())
	if !ok {
		t.Fatalf("campaign %s not adopted", c1.ID())
	}
	if err := c2.Resume(); err != nil {
		t.Fatalf("Resume: %v", err)
	}
	if err := c2.Wait(); err != nil {
		t.Fatalf("resumed campaign failed: %v", err)
	}

	if got := simFingerprint(c2); !bytes.Equal(got, ref) {
		t.Errorf("sim events after resume differ (duplicate or missing alerts)\nref:\n%s\ngot:\n%s", ref, got)
	}
	evs := c2.Events(0)
	if len(evs) == 0 {
		t.Fatal("no events after resume")
	}
	for i, e := range evs {
		if e.Seq != uint64(i)+1 {
			t.Fatalf("event %d has seq %d, want %d (gap or duplicate across restart)", i, e.Seq, i+1)
		}
	}
	// The journal crossed a process boundary: it must hold the lifecycle
	// trail of both processes.
	var types []string
	for _, e := range evs {
		types = append(types, e.Type)
	}
	joined := strings.Join(types, " ")
	for _, want := range []string{"submitted", "adopted", "resumed", "done"} {
		if !strings.Contains(joined, want) {
			t.Errorf("journal missing %q event; have: %s", want, joined)
		}
	}
}

// TestAlertScanRules unit-tests the evaluator against synthetic day rows:
// edge triggering, milestone crossings, and fired-set dedup.
func TestAlertScanRules(t *testing.T) {
	row := func(bricked, readOnly, host, flash, rber int64) []int64 {
		r := make([]int64, dayCols)
		r[dDevices] = 1000
		r[dBricked] = bricked
		r[dReadOnly] = readOnly
		r[dHostBytes] = host
		r[dFlashBytes] = flash
		r[dRawBERFemto] = rber
		return r
	}
	const dev = 1000
	rows := [][]int64{
		// day 1: quiet baseline.
		row(0, 0, 100, 150, 5_000_000_000_000),
		// day 2: 10 new bricks (1% >= 0.5%) -> brick_rate; count_1, count_10, pct_1.
		row(10, 0, 200, 250, 5_000_000_000_000),
		// day 3: still 10 bricked (no new) -> no re-fire; WA spike 300/100 -> wa_spike;
		// rber doubles past 1e-6/device -> rber_trend.
		row(10, 0, 300, 650, 11_000_000_000_000),
		// day 4: 60 read-only (6% >= 5%) -> pre_eol_pct; WA back to normal.
		row(10, 60, 400, 780, 11_000_000_000_000),
	}
	a := newAlertState()
	var got []string
	for _, ev := range a.scan(rows, dev) {
		got = append(got, fmt.Sprintf("%s:%s:day%d", ev.typ, ev.rule, ev.day))
	}
	want := []string{
		"alert:brick_rate:day2",
		"brick_milestone:count_1:day2",
		"brick_milestone:count_10:day2",
		"brick_milestone:pct_1:day2",
		"alert:wa_spike:day3",
		"alert:rber_trend:day3",
		"alert:pre_eol_pct:day4",
	}
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Errorf("scan findings = %v, want %v", got, want)
	}
	// A re-scan of the same rows (the idempotent sweep re-walking epochs)
	// must find nothing new.
	if again := a.scan(rows, dev); len(again) != 0 {
		t.Errorf("re-scan fired %d duplicate events", len(again))
	}
	// Seeding a fresh state from journaled sim events suppresses them too.
	b := newAlertState()
	var evs []obs.Event
	for _, ev := range newAlertState().scan(rows, dev) {
		evs = append(evs, ev.event())
	}
	b.seed(evs)
	if again := b.scan(rows, dev); len(again) != 0 {
		t.Errorf("seeded state re-fired %d events", len(again))
	}
}
