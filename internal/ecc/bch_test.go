package ecc

import "testing"

func TestNewBCHValidation(t *testing.T) {
	if _, err := NewBCH(0, 1024); err == nil {
		t.Fatal("NewBCH(0, 1024) succeeded, want error")
	}
	if _, err := NewBCH(8, 0); err == nil {
		t.Fatal("NewBCH(8, 0) succeeded, want error")
	}
	b, err := NewBCH(8, 1024)
	if err != nil {
		t.Fatalf("NewBCH(8, 1024) = %v", err)
	}
	if b.T != 8 || b.CodewordBytes != 1024 {
		t.Fatalf("BCH = %+v, want t=8 cw=1024", b)
	}
}

func TestBCHCorrectableBoundary(t *testing.T) {
	b := DefaultBCH()
	if !b.Correctable(0) {
		t.Error("0 errors should be correctable")
	}
	if !b.Correctable(b.T) {
		t.Errorf("%d errors (== t) should be correctable", b.T)
	}
	if b.Correctable(b.T + 1) {
		t.Errorf("%d errors (t+1) should be uncorrectable", b.T+1)
	}
}

func TestBCHParityBytes(t *testing.T) {
	// 1 KiB codeword = 8192 data bits -> m = 14 (2^14-1 = 16383 >= 8192).
	// t=8 -> 112 parity bits -> 14 bytes.
	b := DefaultBCH()
	if got := b.ParityBytes(); got != 14 {
		t.Fatalf("ParityBytes() = %d, want 14", got)
	}
	// 512-byte codeword = 4096 bits -> m = 13, t=4 -> 52 bits -> 7 bytes.
	b2, _ := NewBCH(4, 512)
	if got := b2.ParityBytes(); got != 7 {
		t.Fatalf("ParityBytes() = %d, want 7", got)
	}
}

func TestBCHString(t *testing.T) {
	if got := DefaultBCH().String(); got != "BCH(t=8 per 1024B)" {
		t.Fatalf("String() = %q", got)
	}
}

func TestStrongerBCHToleratesMore(t *testing.T) {
	weak, _ := NewBCH(4, 1024)
	strong, _ := NewBCH(40, 1024)
	if weak.Correctable(10) {
		t.Error("t=4 should not correct 10 errors")
	}
	if !strong.Correctable(10) {
		t.Error("t=40 should correct 10 errors")
	}
}
