package nand

import (
	"fmt"
	"math"
)

// ErrorModel captures how a block's raw bit-error rate (RBER) and operation
// failure probabilities evolve with accumulated program/erase stress.
//
// The shape follows the endurance literature the paper cites (Boboila &
// Desnoyers FAST'10; Grupp et al. FAST'12): RBER grows roughly exponentially
// in the number of P/E cycles, with vendors rating a part at the cycle count
// where RBER still sits comfortably inside ECC correction capability.
//
// The model is expressed relative to the block's rated endurance so the same
// parameters work for SLC, MLC and TLC parts: wear w = eraseCount/ratedPE.
//
//	RBER(w)  = BaseRBER  * exp(RBERGrowth * w)
//	PFail(w) = BaseFail  * exp(FailGrowth * w)
type ErrorModel struct {
	// BaseRBER is the raw bit-error rate of a fresh block (w = 0).
	BaseRBER float64
	// RBERGrowth is the exponential growth constant of RBER in w.
	RBERGrowth float64
	// BaseFail is the probability that a program or erase operation fails
	// on a fresh block.
	BaseFail float64
	// FailGrowth is the exponential growth constant of operation failure
	// probability in w.
	FailGrowth float64
	// RetentionRBERPerHour adds RBER for every simulated hour the page has
	// been sitting programmed (charge leakage / retention loss).
	RetentionRBERPerHour float64
	// ReadDisturbRBER adds RBER per read issued to the block since its
	// last erase — reading neighbours weakly programs cells. Firmware
	// counters this with read-scrub; here it surfaces as error growth on
	// read-heavy blocks.
	ReadDisturbRBER float64
	// HealPerIdleHour, if positive, reduces a block's *effective* wear by
	// this many cycles per simulated hour the block spends erased and
	// idle, modelling charge detrapping ("flash can heal", §2.2). Zero
	// disables healing; production firmware does not rely on it.
	HealPerIdleHour float64
}

// DefaultErrorModel returns parameters calibrated so that, read through a
// t=8-bit/1KiB BCH (the eMMC-class default in package ecc):
//
//   - at rated endurance (w=1) the expected error count per codeword is
//     ~25% of capability — the part is healthy but ageing,
//   - by w≈1.4 uncorrectable reads and program failures become routine and
//     the block population collapses — "bricking".
func DefaultErrorModel() ErrorModel {
	return ErrorModel{
		BaseRBER:             1e-8,
		RBERGrowth:           10.0,
		BaseFail:             1e-9,
		FailGrowth:           14.0,
		RetentionRBERPerHour: 2e-9,
		ReadDisturbRBER:      5e-12,
		HealPerIdleHour:      0,
	}
}

// Validate reports an error describing the first invalid field, if any.
func (m ErrorModel) Validate() error {
	switch {
	case m.BaseRBER < 0 || m.BaseRBER > 1:
		return fmt.Errorf("nand: error model: BaseRBER = %g, want [0,1]", m.BaseRBER)
	case m.RBERGrowth < 0:
		return fmt.Errorf("nand: error model: RBERGrowth = %g, want >= 0", m.RBERGrowth)
	case m.BaseFail < 0 || m.BaseFail > 1:
		return fmt.Errorf("nand: error model: BaseFail = %g, want [0,1]", m.BaseFail)
	case m.FailGrowth < 0:
		return fmt.Errorf("nand: error model: FailGrowth = %g, want >= 0", m.FailGrowth)
	case m.RetentionRBERPerHour < 0:
		return fmt.Errorf("nand: error model: RetentionRBERPerHour = %g, want >= 0", m.RetentionRBERPerHour)
	case m.ReadDisturbRBER < 0:
		return fmt.Errorf("nand: error model: ReadDisturbRBER = %g, want >= 0", m.ReadDisturbRBER)
	case m.HealPerIdleHour < 0:
		return fmt.Errorf("nand: error model: HealPerIdleHour = %g, want >= 0", m.HealPerIdleHour)
	}
	return nil
}

// RBER returns the raw bit-error rate at relative wear w (eraseCount/rated),
// clamped to [0, 0.5].
func (m ErrorModel) RBER(w float64) float64 {
	return clampProb(m.BaseRBER * math.Exp(m.RBERGrowth*w))
}

// RBERWithRetention returns RBER at wear w for data that has been stored for
// storedHours of simulated time.
func (m ErrorModel) RBERWithRetention(w, storedHours float64) float64 {
	return clampProb(m.RBER(w) + m.RetentionRBERPerHour*storedHours*math.Exp(m.RBERGrowth*w*0.5))
}

// FailProb returns the probability a program or erase operation fails at
// relative wear w, clamped to [0, 1].
func (m ErrorModel) FailProb(w float64) float64 {
	p := m.BaseFail * math.Exp(m.FailGrowth*w)
	if p > 1 {
		return 1
	}
	return p
}

func clampProb(p float64) float64 {
	if p < 0 {
		return 0
	}
	if p > 0.5 {
		return 0.5
	}
	return p
}
