// Command flashsim inspects the simulated devices: it lists the calibrated
// profiles, or runs an arbitrary write pattern against one and reports
// throughput, write amplification, and wear — a small fio-plus-smartctl for
// the simulation stack.
//
// Usage:
//
//	flashsim -list
//	flashsim -device "eMMC 16GB" [-scale N] [-req 4096] [-seq] [-gib 8] [-fill 0.5]
//	flashsim -device "eMMC 16GB" -fault-plan "seed=7,read=1e-4,cut-every=100000"
//
// Exit codes: 0 on success, 1 on runtime error, 2 on usage error, 3 when
// the device hard-bricked, 4 when it retired into read-only EOL mode.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"flashwear/internal/blockdev"
	"flashwear/internal/device"
	"flashwear/internal/faultinject"
	"flashwear/internal/ftl"
	"flashwear/internal/profiling"
	"flashwear/internal/report"
	"flashwear/internal/simclock"
	"flashwear/internal/telemetry"
	"flashwear/internal/trace"
	"flashwear/internal/workload"
	"flashwear/internal/wtrace"
)

// Exit codes: the wear outcomes get their own so scripts can tell a clean
// run from a device that died gracefully or bricked outright.
const (
	exitOK       = 0
	exitError    = 1
	exitUsage    = 2
	exitBricked  = 3
	exitReadOnly = 4
)

// stopCPU, when non-nil, finishes the -pprof-cpu profile; fail routes
// through it because os.Exit skips defers.
var stopCPU func() error

// fail prints err and exits with code.
func fail(code int, err error) {
	if stopCPU != nil {
		stopCPU()
	}
	fmt.Fprintln(os.Stderr, "flashsim:", err)
	os.Exit(code)
}

func main() {
	list := flag.Bool("list", false, "list the calibrated device profiles")
	name := flag.String("device", "eMMC 8GB", "device profile to simulate")
	scale := flag.Int64("scale", 256, "device capacity divisor")
	req := flag.Int64("req", 4096, "request size in bytes")
	seq := flag.Bool("seq", false, "sequential instead of random writes")
	gib := flag.Float64("gib", 4, "host GiB to write (at simulation scale)")
	fill := flag.Float64("fill", 0, "pre-fill this fraction of the device with static data")
	record := flag.String("record", "", "record the I/O trace to this file")
	replay := flag.String("replay", "", "replay a recorded trace instead of generating a pattern")
	metricsCSV := flag.String("metrics-csv", "", "sample telemetry and write the series here (\"-\" = stdout, .json for JSON)")
	metricsEvery := flag.Duration("metrics-every", 10*time.Second, "simulated sampling cadence for -metrics-csv")
	faultPlan := flag.String("fault-plan", "", "deterministic fault plan, e.g. \"seed=7,read=1e-4,program=1e-5,cut-every=100000\"")
	powerCut := flag.Float64("power-cut", 0, "cut power once after this fraction of -gib, then power-cycle and continue")
	wearTrace := flag.String("wear-trace", "", "write a Chrome trace-event JSON of the run here (chrome://tracing, Perfetto)")
	wearLedger := flag.String("wear-ledger", "", "write the per-origin wear ledger here (\"-\" = stdout, .json for JSON)")
	pprofCPU := flag.String("pprof-cpu", "", "write a CPU profile of the simulator to this file")
	pprofHeap := flag.String("pprof-heap", "", "write a heap profile to this file at exit")
	flag.Parse()

	if *pprofCPU != "" {
		stop, err := profiling.StartCPU(*pprofCPU)
		if err != nil {
			fail(exitError, err)
		}
		stopCPU = stop
	}

	if *list {
		tbl := report.NewTable("Calibrated device profiles (§4.1)",
			"Name", "Kind", "Capacity", "Cell", "Rated P/E", "Parallelism", "Hybrid")
		for _, p := range device.AllProfiles() {
			hybrid := "-"
			if p.Hybrid != nil {
				hybrid = report.HumanBytes(p.Hybrid.CacheBytes) + " SLC"
			}
			tbl.AddRow(p.Name, p.Kind.String(), report.HumanBytes(p.CapacityBytes),
				p.Cell.String(), p.RatedPE, p.Parallelism, hybrid)
		}
		tbl.Render(os.Stdout)
		return
	}

	prof, err := device.ProfileByName(*name)
	if err != nil {
		fail(exitUsage, err)
	}
	scaled := prof.Scaled(*scale)
	if *faultPlan != "" {
		plan, err := faultinject.ParsePlan(*faultPlan)
		if err != nil {
			fail(exitUsage, fmt.Errorf("-fault-plan: %w", err))
		}
		scaled.Faults = &plan
	}
	if *powerCut < 0 || *powerCut >= 1 {
		fail(exitUsage, fmt.Errorf("-power-cut %v: want a fraction in [0, 1)", *powerCut))
	}
	clock := simclock.New()
	dev, err := device.New(scaled, clock)
	if err != nil {
		fail(exitError, err)
	}
	// Wear attribution attaches at device birth: the -fill pre-fill runs as
	// origin "os", the write pattern as "workload", and the ledger accounts
	// every NAND program and erase between them.
	var tr *wtrace.Tracer
	if *wearTrace != "" || *wearLedger != "" {
		tr = wtrace.New()
		if *wearTrace != "" {
			tr.EnableEvents(0)
		}
		dev.EnableWearTrace(tr)
	}
	// Telemetry attaches at device birth — before the pre-fill — so push
	// and pull counters agree; the sampler runs on the simulated clock, so
	// the series is a pure function of the flags.
	var reg *telemetry.Registry
	if *metricsCSV != "" {
		reg = telemetry.NewRegistry()
		dev.Instrument(reg)
	}

	if *fill > 0 {
		if _, err := workload.FillDevice(dev, *fill); err != nil {
			fail(exitError, fmt.Errorf("fill: %w", err))
		}
	}

	var target blockdev.Device = dev
	var recorder *trace.Recorder
	if *record != "" {
		recorder = trace.NewRecorder(dev, clock)
		target = recorder
	}

	// The sampler starts only once every instrument is registered: the
	// first snapshot freezes the series' column layout.
	var sampler *telemetry.Sampler
	if reg != nil {
		if recorder != nil {
			recorder.Instrument(reg)
		}
		sampler = telemetry.NewSampler(reg, clock, *metricsEvery)
	}

	start := clock.Now()
	var written int64
	var recoveries int
	if tr != nil {
		// Everything from here on is the measured workload.
		tr.SetOrigin(tr.Origin("workload"))
	}
	if *replay != "" {
		f, err := os.Open(*replay)
		if err != nil {
			fail(exitError, err)
		}
		events, err := trace.Read(f)
		_ = f.Close()
		if err != nil {
			fail(exitError, fmt.Errorf("replay: %w", err))
		}
		st, err := trace.Replay(target, clock, events, trace.ReplayOptions{})
		if err != nil {
			fmt.Fprintln(os.Stderr, "flashsim: replay:", err)
		}
		written = st.BytesWritten
		fmt.Printf("Replayed %d events (%d errors)\n", st.Events, st.Errors)
	} else {
		w := workload.NewDeviceWriter(target, *req, *seq, 1)
		total := int64(*gib * float64(1<<30))
		cutAt := int64(-1)
		if *powerCut > 0 {
			cutAt = int64(*powerCut * float64(total))
		}
		for written < total {
			if cutAt >= 0 && written >= cutAt {
				cutAt = -1
				dev.CutPower()
			}
			n, err := w.Step(4 << 20)
			written += n
			if err == nil {
				continue
			}
			// Injected or -power-cut power loss: do what a phone does —
			// power back on, remount (OOB-scan recovery), keep writing.
			if errors.Is(err, device.ErrPowerLoss) {
				if err := dev.PowerCycle(); err != nil {
					fail(exitError, fmt.Errorf("power cycle: %w", err))
				}
				recoveries++
				continue
			}
			fmt.Fprintf(os.Stderr, "flashsim: device failed after %s: %v\n",
				report.HumanBytes(written), err)
			break
		}
	}
	elapsed := clock.Now() - start

	if sampler != nil {
		sampler.Stop()
		sampler.Final()
		if err := writeSeries(*metricsCSV, sampler.Series()); err != nil {
			fail(exitError, fmt.Errorf("metrics: %w", err))
		}
	}

	if recorder != nil {
		out, err := os.Create(*record)
		if err != nil {
			fail(exitError, err)
		}
		if err := trace.Write(out, recorder.Events()); err != nil {
			fail(exitError, fmt.Errorf("trace: %w", err))
		}
		if err := out.Close(); err != nil {
			fail(exitError, err)
		}
		fmt.Fprintf(os.Stderr, "recorded %d events to %s\n", len(recorder.Events()), *record)
	}

	f := dev.FTL()
	fmt.Printf("Device: %s (scaled /%d: %s exported)\n", prof.Name, *scale, report.HumanBytes(dev.Size()))
	fmt.Printf("Pattern: %s, %s requests\n",
		map[bool]string{true: "sequential", false: "random"}[*seq], report.SizeLabel(*req))
	fmt.Printf("Wrote %s in %.2f simulated s -> %.2f MiB/s\n",
		report.HumanBytes(written), elapsed.Seconds(),
		float64(written)/elapsed.Seconds()/(1<<20))
	fmt.Printf("Write amplification: %.3f\n", f.WriteAmplification())
	fmt.Printf("Utilisation: %.1f%%   GC copies: %d\n", f.Utilisation()*100, f.GCCopies())
	fmt.Printf("Life consumed (Type B): %.2f%%   indicator: %d   PRE_EOL: %d\n",
		f.LifeConsumed(ftl.PoolB)*100, dev.WearIndicator(ftl.PoolB), dev.PreEOLInfo())
	if f.CacheChip() != nil {
		fmt.Printf("Life consumed (Type A): %.2f%%   indicator: %d   merged: %v\n",
			f.LifeConsumed(ftl.PoolA)*100, dev.WearIndicator(ftl.PoolA), f.Merged())
	}
	if inj := dev.Injector(); inj != nil {
		st := inj.Stats()
		fmt.Printf("Injected faults: %d read, %d program, %d erase, %d power cuts\n",
			st.ReadFaults, st.ProgramFaults, st.EraseFaults, st.PowerCuts)
	}
	if recoveries > 0 {
		fmt.Printf("Power-loss recoveries: %d (every acknowledged write survived or the run would have failed)\n", recoveries)
	}
	if tr != nil {
		snap := tr.Ledger().Snapshot()
		if *wearLedger != "" {
			if err := writeLedger(*wearLedger, snap); err != nil {
				fail(exitError, fmt.Errorf("wear ledger: %w", err))
			}
		}
		if *wearTrace != "" {
			if err := writeTo(*wearTrace, func(w *os.File) error {
				return wtrace.WriteChrome(w, tr.Process(prof.Name))
			}); err != nil {
				fail(exitError, fmt.Errorf("wear trace: %w", err))
			}
		}
		if top := snap.Top(); top != "" {
			t := snap.Totals()
			fmt.Printf("Wear attribution: top origin %q; %s physical / %s host across %d origins\n",
				top, report.HumanBytes(t.PhysBytes), report.HumanBytes(t.HostBytes), len(snap.Rows))
		}
	}
	if stopCPU != nil {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "flashsim:", err)
		}
		stopCPU = nil
	}
	if *pprofHeap != "" {
		if err := profiling.WriteHeap(*pprofHeap); err != nil {
			fail(exitError, err)
		}
	}
	switch {
	case dev.Bricked():
		fmt.Println("DEVICE BRICKED")
		os.Exit(exitBricked)
	case dev.ReadOnly():
		fmt.Println("DEVICE READ-ONLY (graceful EOL: data preserved, writes refused)")
		os.Exit(exitReadOnly)
	}
}

// writeTo writes via fn to the file at path, or stdout for "-".
func writeTo(path string, fn func(*os.File) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// writeLedger writes the wear ledger to path — JSON when the path ends in
// .json, the TOTAL-checked CSV otherwise; "-" means CSV on stdout.
func writeLedger(path string, snap wtrace.Snapshot) error {
	render := snap.WriteCSV
	if strings.HasSuffix(path, ".json") {
		render = snap.WriteJSON
	}
	return writeTo(path, func(f *os.File) error { return render(f) })
}

// writeSeries writes the sampled series to path — JSON when the path ends
// in .json, CSV otherwise; "-" means CSV on stdout.
func writeSeries(path string, s *telemetry.Series) error {
	render := s.WriteCSV
	if strings.HasSuffix(path, ".json") {
		render = s.WriteJSON
	}
	if path == "-" {
		return s.WriteCSV(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
