// Package simclock provides a discrete-event simulated clock.
//
// Every component in the flashwear stack that needs a notion of time — device
// service times, charging schedules, monitor sampling — takes a *Clock rather
// than reading the wall clock. Experiments therefore run as fast as the CPU
// allows while still reporting results in simulated hours, and are fully
// deterministic.
package simclock

import (
	"container/heap"
	"fmt"
	"time"
)

// Clock is a discrete-event simulated clock. The zero value is ready to use
// and starts at simulated time zero.
//
// Clock is not safe for concurrent use; the simulation stack is synchronous
// by design (see DESIGN.md).
type Clock struct {
	now    time.Duration
	events eventQueue
	seq    uint64
}

// New returns a clock starting at simulated time zero.
func New() *Clock { return &Clock{} }

// Now returns the current simulated time as an offset from the simulation
// start.
func (c *Clock) Now() time.Duration { return c.now }

// Advance moves simulated time forward by d, firing any events scheduled in
// the interval in timestamp order. Advance panics if d is negative: simulated
// time, like the real thing, only moves forward.
func (c *Clock) Advance(d time.Duration) {
	if d < 0 {
		panic(fmt.Sprintf("simclock: Advance(%v): negative duration", d))
	}
	target := c.now + d
	c.runUntil(target)
	c.now = target
}

// AdvanceTo moves simulated time forward to the absolute simulated time t.
// It is a no-op if t is not after the current time.
func (c *Clock) AdvanceTo(t time.Duration) {
	if t <= c.now {
		return
	}
	c.Advance(t - c.now)
}

// At schedules fn to run when simulated time reaches t. If t is in the past,
// fn runs at the next Advance. Events scheduled for the same instant run in
// scheduling order.
func (c *Clock) At(t time.Duration, fn func()) {
	if fn == nil {
		panic("simclock: At: nil callback")
	}
	c.seq++
	heap.Push(&c.events, &event{when: t, seq: c.seq, fn: fn})
}

// After schedules fn to run d from the current simulated time.
func (c *Clock) After(d time.Duration, fn func()) { c.At(c.now+d, fn) }

// Every schedules fn to run every interval, starting one interval from now,
// until the returned cancel function is called. A non-positive interval
// panics.
func (c *Clock) Every(interval time.Duration, fn func()) (cancel func()) {
	if interval <= 0 {
		panic(fmt.Sprintf("simclock: Every(%v): non-positive interval", interval))
	}
	stopped := false
	var tick func()
	tick = func() {
		if stopped {
			return
		}
		fn()
		if !stopped {
			c.After(interval, tick)
		}
	}
	c.After(interval, tick)
	return func() { stopped = true }
}

// Pending reports the number of scheduled events that have not yet fired.
func (c *Clock) Pending() int { return c.events.Len() }

// runUntil fires, in order, all events with timestamps <= target. Events may
// schedule further events; those also run if they fall within the window.
func (c *Clock) runUntil(target time.Duration) {
	for c.events.Len() > 0 {
		next := c.events[0]
		if next.when > target {
			return
		}
		heap.Pop(&c.events)
		if next.when > c.now {
			c.now = next.when
		}
		next.fn()
	}
}

type event struct {
	when time.Duration
	seq  uint64
	fn   func()
}

type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].when != q[j].when {
		return q[i].when < q[j].when
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int) { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x any)   { *q = append(*q, x.(*event)) }
func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*q = old[:n-1]
	return e
}

// Hours converts a simulated duration to floating-point hours, the unit the
// paper reports wear-out times in (Figure 3, Table 1).
func Hours(d time.Duration) float64 { return d.Hours() }
