package extfs

import (
	"encoding/binary"
	"fmt"
)

// The block allocator keeps the whole bitmap in memory as uint64 words and
// stages modified bitmap blocks through the journal. Bits cover the entire
// volume; metadata regions are pre-marked allocated by mkfs.

// loadBitmap reads the bitmap region into memory at mount.
func (v *FS) loadBitmap() error {
	words := make([]uint64, int(v.sb.bitmapBlks)*BlockSize/8)
	for i := uint32(0); i < v.sb.bitmapBlks; i++ {
		b, err := readBlock(v.dev, v.sb.bitmapStart+i)
		if err != nil {
			return err
		}
		base := int(i) * BlockSize / 8
		for w := 0; w < BlockSize/8; w++ {
			words[base+w] = binary.LittleEndian.Uint64(b[w*8:])
		}
	}
	v.bitmap = words
	return nil
}

func (v *FS) bitSet(blk uint32) bool {
	return v.bitmap[blk/64]&(1<<(blk%64)) != 0
}

func (v *FS) setBit(blk uint32, val bool) {
	if val {
		v.bitmap[blk/64] |= 1 << (blk % 64)
	} else {
		v.bitmap[blk/64] &^= 1 << (blk % 64)
	}
	v.dirtyBitmapBlocks[blk/(BlockSize*8)] = true
}

// allocBlock finds, marks, and returns a free data block. It uses a rotor so
// consecutive allocations are roughly sequential.
func (v *FS) allocBlock() (uint32, error) {
	total := v.sb.totalBlocks
	if v.allocRotor < v.sb.dataStart {
		v.allocRotor = v.sb.dataStart
	}
	for pass := 0; pass < 2; pass++ {
		for scanned := uint32(0); scanned < total; scanned++ {
			blk := v.allocRotor
			v.allocRotor++
			if v.allocRotor >= total {
				v.allocRotor = v.sb.dataStart
			}
			if blk < v.sb.dataStart {
				continue
			}
			if !v.bitSet(blk) {
				v.setBit(blk, true)
				v.freeBlocks--
				return blk, nil
			}
		}
		// All free space may be sitting in quarantine; a checkpoint
		// returns it to the allocator.
		if len(v.quarantine) == 0 {
			break
		}
		if err := v.checkpoint(); err != nil {
			return 0, err
		}
	}
	return 0, fmt.Errorf("extfs: %w", errNoSpace)
}

// freeBlock releases a data or indirect block. The block is quarantined —
// it rejoins the allocator only at the next checkpoint — so that a stale
// copy of it sitting in the journal can never be replayed over a
// reallocated block (the role jbd2's revoke records play).
func (v *FS) freeBlock(blk uint32) {
	if blk == 0 || blk < v.sb.dataStart || blk >= v.sb.totalBlocks {
		return
	}
	if !v.bitSet(blk) || v.quarantine[blk] {
		return
	}
	delete(v.meta, blk)
	delete(v.txn, blk)
	delete(v.pending, blk)
	v.quarantine[blk] = true
}

// drainQuarantine returns quarantined blocks to the allocator and persists
// the bitmap in place. Called from checkpoint, after the journal has been
// written home: at that point the freeing transactions are fully on disk,
// so clearing the bits is crash-safe (a crash can only leak, never corrupt).
func (v *FS) drainQuarantine() error {
	if len(v.quarantine) == 0 {
		return nil
	}
	for _, blk := range sortedKeys(v.quarantine) {
		v.setBit(blk, false)
		v.freeBlocks++
		// Best-effort TRIM; ignore errors (the device may be dying).
		_ = v.dev.Discard(int64(blk)*BlockSize, BlockSize)
	}
	v.quarantine = make(map[uint32]bool)
	for _, idx := range sortedKeys(v.dirtyBitmapBlocks) {
		b := make([]byte, BlockSize)
		base := int(idx) * BlockSize / 8
		for w := 0; w < BlockSize/8; w++ {
			binary.LittleEndian.PutUint64(b[w*8:], v.bitmap[base+w])
		}
		v.meta[v.sb.bitmapStart+idx] = b
		if err := writeBlock(v.dev, v.sb.bitmapStart+idx, b); err != nil {
			return err
		}
	}
	v.dirtyBitmapBlocks = make(map[uint32]bool)
	return nil
}

// countFree recomputes the free-block count (mount time).
func (v *FS) countFree() {
	var free int64
	for blk := v.sb.dataStart; blk < v.sb.totalBlocks; blk++ {
		if !v.bitSet(blk) {
			free++
		}
	}
	v.freeBlocks = free
}

// stageBitmap stages all dirty bitmap blocks into the running journal
// transaction.
func (v *FS) stageBitmap() {
	for idx := range v.dirtyBitmapBlocks {
		b := make([]byte, BlockSize)
		base := int(idx) * BlockSize / 8
		for w := 0; w < BlockSize/8; w++ {
			binary.LittleEndian.PutUint64(b[w*8:], v.bitmap[base+w])
		}
		v.stageMeta(v.sb.bitmapStart+idx, b)
	}
	v.dirtyBitmapBlocks = make(map[uint32]bool)
}
