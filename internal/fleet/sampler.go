package fleet

import (
	"math/rand"

	"flashwear/internal/appmodel"
)

// deviceSeed derives device i's seed from the root seed with a splitmix64
// finalizer: well-distributed, and a pure function of (root, i) so the
// sample for device i never depends on worker scheduling.
func deviceSeed(root int64, i int) int64 {
	z := uint64(root) + 0x9e3779b97f4a7c15*uint64(i+1)
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return int64(z ^ (z >> 31))
}

// Params are one simulated device's fully sampled parameters.
type Params struct {
	Index int
	// Seed personalises the device stack (NAND variation, workload
	// offsets); it already replaces the profile's calibration seed.
	Seed  int64
	Class Class
	// DailyBytes is the paced full-scale write rate; 0 means unpaced
	// (ClassAttack writes at device speed).
	DailyBytes int64
	// profile is the sampled (unscaled) device profile with Seed applied.
	profile profileSample
}

// profileSample carries the picked profile plus its mix index, so results
// can be grouped without re-deriving names.
type profileSample struct {
	idx  int
	name string
}

// ProfileIndex returns the index of the sampled profile in the spec's
// Profiles mix — exported so internal/fleetd can re-derive the same device
// stack from the same Spec.
func (p Params) ProfileIndex() int { return p.profile.idx }

// Sample derives device i's parameters. It draws from an RNG seeded by
// deviceSeed alone, so it is a pure function of (Spec.Seed, i) — the heart
// of the order-independence argument in the package documentation. It is
// exported for internal/fleetd, whose sharded campaigns must sample the
// identical population for any shard count.
func (s Spec) Sample(i int) Params {
	seed := deviceSeed(s.Seed, i)
	rng := rand.New(rand.NewSource(seed))
	pIdx := pickWeighted(rng, weightsOf(s.Profiles))
	cIdx := pickWeighted(rng, classWeightsOf(s.Classes))
	class := s.Classes[cIdx].Class
	var daily int64
	switch class {
	case ClassBenign:
		daily = appmodel.SampleBenignDailyBytes(rng)
	case ClassBuggy:
		daily = appmodel.SampleBuggyDailyBytes(rng)
	}
	return Params{
		Index:      i,
		Seed:       seed,
		Class:      class,
		DailyBytes: daily,
		profile:    profileSample{idx: pIdx, name: s.Profiles[pIdx].Profile.Name},
	}
}

// pickWeighted draws an index proportionally to ws (validated non-negative
// with a positive sum).
func pickWeighted(rng *rand.Rand, ws []float64) int {
	var total float64
	for _, w := range ws {
		//flashvet:ignore floataccum fixed-order sum over one device's config slice, never merged across workers
		total += w
	}
	r := rng.Float64() * total
	for i, w := range ws {
		//flashvet:ignore floataccum fixed-order walk of the same slice; identical for every worker count
		r -= w
		if r < 0 {
			return i
		}
	}
	return len(ws) - 1 // float round-off: the last positive weight wins
}
