package f2fs

import "fmt"

// rollForward scans the main area for node blocks written after the last
// checkpoint with the fsync marker and re-applies them to the NAT — F2FS's
// roll-forward recovery, which is what makes fsync durable without paying a
// checkpoint per sync.
func (v *FS) rollForward(cpVer uint64) error {
	type hit struct {
		ver  uint64
		addr uint32
		dead bool
	}
	best := make(map[uint32]hit)
	mainEnd := v.sb.mainStart + v.sb.segCount*SegBlocks
	for addr := v.sb.mainStart; addr < mainEnd; addr++ {
		b, err := readBlock(v.dev, addr)
		if err != nil {
			continue // unreadable blocks simply don't participate
		}
		n, ver, fsync, err := decodeNode(b)
		if err != nil || !fsync || ver <= cpVer {
			continue
		}
		if n.id == 0 || int(n.id) >= len(v.nat) {
			continue
		}
		if prev, ok := best[n.id]; !ok || ver > prev.ver {
			best[n.id] = hit{ver: ver, addr: addr, dead: n.flags&nodeDead != 0}
		}
		if ver > v.ver {
			v.ver = ver
		}
	}
	for id, h := range best {
		if h.dead {
			v.natSet(id, 0)
		} else {
			v.natSet(id, h.addr)
		}
		v.statRolledForward++
	}
	return nil
}

// rebuild reconstructs the SIT and SSA from the NAT and live nodes — the
// fsck-style pass every mount runs. It also re-positions the active logs on
// fresh segments.
func (v *FS) rebuild() error {
	mainBlocks := v.sb.segCount * SegBlocks
	v.segState = make([]uint8, v.sb.segCount)
	v.validCount = make([]uint16, v.sb.segCount)
	v.validMap = make([]uint64, (mainBlocks+63)/64)
	v.owner = make([]uint32, mainBlocks)
	v.ofs = make([]uint32, mainBlocks)

	for id := uint32(1); id < uint32(len(v.nat)); id++ {
		addr := v.nat[id]
		if addr == 0 {
			continue
		}
		if !v.inMain(addr) {
			return fmt.Errorf("%w: NAT[%d] = %d outside main area", ErrCorrupt, id, addr)
		}
		b, err := readBlock(v.dev, addr)
		if err != nil {
			return err
		}
		n, _, _, err := decodeNode(b)
		if err != nil {
			return fmt.Errorf("NAT[%d]: %w", id, err)
		}
		if n.id != id {
			return fmt.Errorf("%w: NAT[%d] points at node %d", ErrCorrupt, id, n.id)
		}
		v.markValid(addr, id, ownerIsNode)
		if n.isIndirect() {
			for s, p := range n.ptrs {
				if p != 0 && v.inMain(p) {
					v.markValid(p, id, uint32(s))
				}
			}
		} else {
			for s, p := range n.direct {
				if p != 0 && v.inMain(p) {
					v.markValid(p, id, uint32(s))
				}
			}
		}
	}

	v.freeSegs = 0
	for s := uint32(0); s < v.sb.segCount; s++ {
		if v.validCount[s] == 0 {
			v.segState[s] = segFree
			v.freeSegs++
		} else {
			v.segState[s] = segUsed
		}
	}
	// Fresh active logs.
	v.dataLog = logState{seg: ^uint32(0)}
	v.nodeLog = logState{seg: ^uint32(0)}
	return nil
}
