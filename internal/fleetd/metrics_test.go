package fleetd

// Registry audit (satellite of DESIGN.md §14): every exported sample on
// /metrics must belong to a family with # HELP and # TYPE preambles, and
// the families the dashboards and CI smoke test depend on must all be
// present on a fresh registry — before any campaign has run.

import (
	"bytes"
	"strings"
	"testing"

	"flashwear/internal/runtrace"
)

// promFamilies parses a Prometheus text exposition into (families with
// HELP, families with TYPE→type, sample metric names in order).
func promFamilies(t *testing.T, text string) (help map[string]bool, typ map[string]string, samples []string) {
	t.Helper()
	help = map[string]bool{}
	typ = map[string]string{}
	for _, line := range strings.Split(text, "\n") {
		if line == "" {
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# HELP "); ok {
			name, _, _ := strings.Cut(rest, " ")
			help[name] = true
			continue
		}
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, kind, _ := strings.Cut(rest, " ")
			typ[name] = kind
			continue
		}
		if strings.HasPrefix(line, "#") {
			t.Errorf("unrecognized comment line: %q", line)
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		samples = append(samples, name)
	}
	return help, typ, samples
}

// familyOf maps a sample metric name back to its family, undoing the
// histogram suffixes.
func familyOf(name string, typ map[string]string) (string, bool) {
	if _, ok := typ[name]; ok {
		return name, true
	}
	for _, suffix := range []string{"_bucket", "_sum", "_count"} {
		if fam, ok := strings.CutSuffix(name, suffix); ok && typ[fam] == "histogram" {
			return fam, true
		}
	}
	return "", false
}

func TestMetricsRegistryWellFormed(t *testing.T) {
	m := NewMetrics()
	var buf bytes.Buffer
	if err := m.Registry.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	help, typ, samples := promFamilies(t, buf.String())

	for _, name := range samples {
		fam, ok := familyOf(name, typ)
		if !ok {
			t.Errorf("sample %q has no # TYPE preamble", name)
			continue
		}
		if !help[fam] {
			t.Errorf("family %q has # TYPE but no # HELP", fam)
		}
	}
	for fam := range typ {
		if !help[fam] {
			t.Errorf("family %q has # TYPE but no # HELP", fam)
		}
	}

	// The contract list: every family the README, Grafana notes, and the
	// CI smoke test grep for. Adding a family is fine; renaming or
	// dropping one breaks scrapers and must show up here.
	required := []string{
		"fleetd_cells_computed_total",
		"fleetd_cells_reused_total",
		"fleetd_device_days_total",
		"fleetd_device_days_per_second",
		"fleetd_checkpoint_bytes_total",
		"fleetd_checkpoint_writes_total",
		"fleetd_checkpoint_fsync_seconds",
		"fleetd_checkpoint_retries_total",
		"fleetd_checkpoint_degraded",
		"fleetd_campaign_submits_total",
		"fleetd_campaign_resumes_total",
		"fleetd_campaign_forks_total",
		"fleetd_http_requests_total",
		"fleetd_http_request_seconds",
		"fleetd_http_panics_total",
		"fleetd_phase_seconds",
		"fleetd_runtime_goroutines",
		"fleetd_runtime_heap_alloc_bytes",
		"fleetd_runtime_heap_sys_bytes",
		"fleetd_runtime_gc_pause_seconds_total",
		"fleetd_runtime_gc_cycles_total",
	}
	for _, fam := range required {
		if _, ok := typ[fam]; !ok {
			t.Errorf("required family %q missing from a fresh registry", fam)
		}
	}

	// The phase histogram must expose one child per phase on first
	// scrape, so dashboards see all six series from t=0.
	text := buf.String()
	for p := runtrace.Phase(0); p < runtrace.NumPhases; p++ {
		want := `fleetd_phase_seconds_count{phase="` + p.String() + `"}`
		if !strings.Contains(text, want) {
			t.Errorf("fresh registry missing %s", want)
		}
	}
}
