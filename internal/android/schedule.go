// Package android models the pieces of a mobile OS that matter to the
// paper's §4.4: per-app private storage reachable without any permissions,
// a battery/charging schedule, a screen-state schedule, the two monitors a
// malicious app must evade (the on-battery power monitor and the
// screen-refresh process monitor), and per-app I/O accounting (the §4.5
// mitigation).
package android

import (
	"fmt"
	"time"
)

// Day is one simulated day.
const Day = 24 * time.Hour

// Period is a daily time window [From, To) expressed as offsets from
// midnight. From > To wraps around midnight.
type Period struct {
	From, To time.Duration
}

// Contains reports whether the time-of-day t falls in the period.
func (p Period) Contains(t time.Duration) bool {
	tod := t % Day
	if p.From <= p.To {
		return tod >= p.From && tod < p.To
	}
	return tod >= p.From || tod < p.To
}

// Schedule is a set of daily periods.
type Schedule struct {
	Periods []Period
}

// Active reports whether any period contains t.
func (s Schedule) Active(t time.Duration) bool {
	for _, p := range s.Periods {
		if p.Contains(t) {
			return true
		}
	}
	return false
}

// Validate checks period bounds.
func (s Schedule) Validate() error {
	for _, p := range s.Periods {
		if p.From < 0 || p.From >= Day || p.To < 0 || p.To > Day {
			return fmt.Errorf("android: period %v-%v out of range", p.From, p.To)
		}
	}
	return nil
}

// DefaultCharging returns a typical overnight charging schedule:
// 22:00–07:00 — §4.4: "most phones spend a significant fraction of the day
// charging with the screen disabled".
func DefaultCharging() Schedule {
	return Schedule{Periods: []Period{{From: 22 * time.Hour, To: 7 * time.Hour}}}
}

// DefaultScreen returns a typical screen-on schedule: 08:00–22:00.
func DefaultScreen() Schedule {
	return Schedule{Periods: []Period{{From: 8 * time.Hour, To: 22 * time.Hour}}}
}

// AlwaysOn returns a schedule active around the clock.
func AlwaysOn() Schedule {
	return Schedule{Periods: []Period{{From: 0, To: Day}}}
}

// Never returns an empty schedule.
func Never() Schedule { return Schedule{} }
