package hostio

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestClassify(t *testing.T) {
	cases := []struct{ path, want string }{
		{"/data/c000001/shard-0000/epoch-000004.ckpt", ClassCheckpoint},
		{"/data/c000001/shard-0000/epoch-000004.ckpt.tmp", ClassCheckpoint},
		{"/data/c000001/events.jsonl", ClassJournal},
		{"/data/c000001/campaign.json", ClassSpec},
		{"/data/server.log", ClassOther},
		{"relative/epoch.ckpt", ClassCheckpoint},
	}
	for _, c := range cases {
		if got := Classify(c.path); got != c.want {
			t.Errorf("Classify(%q) = %q, want %q", c.path, got, c.want)
		}
	}
}

func TestParsePlan(t *testing.T) {
	p, err := ParsePlan("class=checkpoint,fault=enospc,on=write,from=3,until=40,seed=7")
	if err != nil {
		t.Fatalf("ParsePlan: %v", err)
	}
	if p.Seed != 7 || len(p.Clauses) != 1 {
		t.Fatalf("plan = %+v", p)
	}
	c := p.Clauses[0]
	if c.Class != ClassCheckpoint || c.Fault != FaultNoSpace || c.On != OpWrite || c.From != 3 || c.Until != 40 {
		t.Fatalf("clause = %+v", c)
	}

	p, err = ParsePlan("class=journal,fault=eio,on=sync,at=2;5|fault=torn,p=0.25")
	if err != nil {
		t.Fatalf("ParsePlan two clauses: %v", err)
	}
	if len(p.Clauses) != 2 {
		t.Fatalf("want 2 clauses, got %d", len(p.Clauses))
	}
	if got := p.Clauses[0].At; len(got) != 2 || got[0] != 2 || got[1] != 5 {
		t.Fatalf("at = %v", got)
	}
	if p.Clauses[1].Class != ClassAll || p.Clauses[1].On != OpWrite {
		t.Fatalf("defaults not applied: %+v", p.Clauses[1])
	}

	if p, err := ParsePlan(""); err != nil || !p.Empty() {
		t.Fatalf("empty plan: %+v, %v", p, err)
	}
}

func TestParsePlanErrors(t *testing.T) {
	cases := []struct{ in, wantSub string }{
		{"fault=eio", "no trigger"},
		{"at=3", "missing fault="},
		{"fault=bogus,at=1", `fault "bogus"`},
		{"fault=eio,on=chmod,at=1", `on "chmod"`},
		{"fault=torn,on=sync,at=1", "torn requires on=write"},
		{"class=nand,fault=eio,at=1", `class "nand"`},
		{"fault=eio,p=1.5", "p = 1.5"},
		{"fault=eio,at=0", "at entry 0"},
		{"fault=eio,from=5,until=3", "empty window"},
		{"fault=eio,at=1,fault=torn", `duplicate "fault"`},
		{"seed=1,fault=eio,at=1|seed=2,fault=eio,at=1", `duplicate "seed"`},
		{"fault=eio,at=1,bogus=2", `unknown key "bogus"`},
		{"fault", "want key=value"},
		{"fault=eio,at=x", "at:"},
	}
	for _, c := range cases {
		if _, err := ParsePlan(c.in); err == nil || !strings.Contains(err.Error(), c.wantSub) {
			t.Errorf("ParsePlan(%q) err = %v, want containing %q", c.in, err, c.wantSub)
		}
	}
}

// mustWrite does a create+write+close through fs and returns the write error.
func writeOnce(t *testing.T, fsys FS, path string, data []byte) error {
	t.Helper()
	f, err := fsys.Create(path)
	if err != nil {
		return err
	}
	_, werr := f.Write(data)
	if err := f.Close(); err != nil && werr == nil {
		werr = err
	}
	return werr
}

func TestFaultFSAtTriggerAndClassScope(t *testing.T) {
	dir := t.TempDir()
	plan, err := ParsePlan("class=checkpoint,fault=eio,on=write,at=2")
	if err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS{}, plan)

	ckpt := filepath.Join(dir, "a.ckpt")
	jrnl := filepath.Join(dir, "a.jsonl")
	if err := writeOnce(t, ffs, ckpt, []byte("one")); err != nil {
		t.Fatalf("checkpoint write 1: %v", err)
	}
	// Journal writes are a different class: they must not advance the
	// checkpoint op counter or fault.
	for i := 0; i < 3; i++ {
		if err := writeOnce(t, ffs, jrnl, []byte("j")); err != nil {
			t.Fatalf("journal write %d: %v", i, err)
		}
	}
	if err := writeOnce(t, ffs, ckpt, []byte("two")); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("checkpoint write 2: err = %v, want ErrInjectedIO", err)
	}
	if err := writeOnce(t, ffs, ckpt, []byte("three")); err != nil {
		t.Fatalf("checkpoint write 3: %v", err)
	}
	if st := ffs.Stats(); st.IO != 1 {
		t.Fatalf("stats = %+v, want IO=1", st)
	}
}

func TestFaultFSPersistentWindow(t *testing.T) {
	dir := t.TempDir()
	plan, err := ParsePlan("class=journal,fault=enospc,on=write,from=2,until=5")
	if err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS{}, plan)
	path := filepath.Join(dir, "e.jsonl")
	var got []bool
	for i := 0; i < 6; i++ {
		err := writeOnce(t, ffs, path, []byte("x"))
		if err != nil && !errors.Is(err, ErrInjectedNoSpace) {
			t.Fatalf("write %d: unexpected err %v", i, err)
		}
		got = append(got, err != nil)
	}
	want := []bool{false, true, true, true, false, false} // ops 1..6, window [2,5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("write %d failed=%v, want %v (all: %v)", i+1, got[i], want[i], got)
		}
	}
}

func TestFaultFSTornWrite(t *testing.T) {
	dir := t.TempDir()
	plan, err := ParsePlan("fault=torn,on=write,at=1")
	if err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS{}, plan)
	path := filepath.Join(dir, "t.bin")
	f, err := ffs.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	n, werr := f.Write([]byte("0123456789"))
	f.Close()
	if !errors.Is(werr, ErrInjectedIO) {
		t.Fatalf("torn write err = %v", werr)
	}
	if n != 5 {
		t.Fatalf("torn write n = %d, want 5", n)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "01234" {
		t.Fatalf("on disk %q, want the torn prefix", data)
	}
}

func TestFaultFSRenameAndSync(t *testing.T) {
	dir := t.TempDir()
	plan, err := ParsePlan("class=checkpoint,fault=eio,on=rename,at=1|class=checkpoint,fault=eio,on=sync,at=2")
	if err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS{}, plan)

	tmp := filepath.Join(dir, "e.ckpt.tmp")
	dst := filepath.Join(dir, "e.ckpt")
	f, err := ffs.Create(tmp)
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("sync 1 (op 1): %v", err)
	}
	if err := f.Sync(); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("sync 2: err = %v, want injected EIO", err)
	}
	f.Close()
	if err := ffs.Rename(tmp, dst); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("rename 1: err = %v, want injected EIO", err)
	}
	if _, err := os.Stat(tmp); err != nil {
		t.Fatalf("failed rename must leave the source: %v", err)
	}
	if err := ffs.Rename(tmp, dst); err != nil {
		t.Fatalf("rename 2: %v", err)
	}
	if _, err := os.Stat(dst); err != nil {
		t.Fatalf("second rename did not land: %v", err)
	}
}

func TestFaultFSProbDeterminism(t *testing.T) {
	run := func() []bool {
		dir := t.TempDir()
		plan, err := ParsePlan("seed=99,fault=eio,on=write,p=0.5")
		if err != nil {
			t.Fatal(err)
		}
		ffs := NewFaultFS(OS{}, plan)
		path := filepath.Join(dir, "p.bin")
		var fired []bool
		for i := 0; i < 32; i++ {
			fired = append(fired, writeOnce(t, ffs, path, []byte("x")) != nil)
		}
		return fired
	}
	a, b := run(), run()
	some := false
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("op %d: run A fired=%v, run B fired=%v", i, a[i], b[i])
		}
		some = some || a[i]
	}
	if !some {
		t.Fatal("p=0.5 over 32 ops never fired")
	}
}

func TestFaultFSWriteFile(t *testing.T) {
	dir := t.TempDir()
	plan, err := ParsePlan("class=spec,fault=torn,on=write,at=1")
	if err != nil {
		t.Fatal(err)
	}
	ffs := NewFaultFS(OS{}, plan)
	path := filepath.Join(dir, "campaign.json")
	if err := ffs.WriteFile(path, []byte("abcdefgh"), 0o644); !errors.Is(err, ErrInjectedIO) {
		t.Fatalf("WriteFile err = %v", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "abcd" {
		t.Fatalf("torn WriteFile left %q", data)
	}
	if err := ffs.WriteFile(path, []byte("abcdefgh"), 0o644); err != nil {
		t.Fatalf("retry WriteFile: %v", err)
	}
}

func TestOSPassthrough(t *testing.T) {
	dir := t.TempDir()
	var fsys FS = OS{}
	sub := filepath.Join(dir, "a", "b")
	if err := fsys.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(sub, "f.txt")
	f, err := fsys.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	moved := filepath.Join(sub, "g.txt")
	if err := fsys.Rename(path, moved); err != nil {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(moved)
	if err != nil || string(data) != "hello" {
		t.Fatalf("ReadFile = %q, %v", data, err)
	}
	ents, err := fsys.ReadDir(sub)
	if err != nil || len(ents) != 1 || ents[0].Name() != "g.txt" {
		t.Fatalf("ReadDir = %v, %v", ents, err)
	}
	if _, err := fsys.Stat(moved); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(moved); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Stat(moved); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("after remove: %v", err)
	}
}
