package analysis

import (
	"crypto/sha256"
	"encoding/json"
	"errors"
	"fmt"
	"go/types"
	"os"
	"sort"
)

// A Fact is a serializable summary an analyzer attaches to a package-level
// object (usually a function) or to a package as a whole, so that
// downstream packages can reason about callee behavior without re-reading
// its source. This is the same move golang.org/x/tools/go/analysis makes
// with exported facts, rebuilt here on the standard library: facts are
// JSON documents keyed by (analyzer, object), kept in memory for a
// whole-module run and serialized alongside the `go list -export` data in
// vet-tool mode (the go command hands dependency fact files to the tool
// via vet.cfg's PackageVetx table and collects ours from VetxOutput).
//
// The marker method keeps fact types deliberate: only types that declare
// themselves facts participate, exactly as in x/tools.
type Fact interface {
	AFact()
}

// ErrStaleFacts reports a fact file whose fingerprint does not match the
// export data of the package it describes: the dependency was re-analyzed
// (or rebuilt) after the facts were written, so every summary in the file
// is suspect and the package must be re-analyzed from source.
var ErrStaleFacts = errors.New("analysis: stale facts")

// factsVersion is bumped on any change to the fact file layout or to the
// meaning of a serialized summary; old files then fail stale instead of
// decoding garbage.
const factsVersion = 1

// A FactStore accumulates facts across one analysis run. Facts are stored
// pre-marshaled: the JSON round-trip happens on every export, so the
// in-memory and serialized paths cannot drift apart, and a fact that
// cannot survive encoding fails at the export site, not two packages
// later.
type FactStore struct {
	// obj maps analyzer -> object key -> fact JSON.
	obj map[string]map[string]json.RawMessage
	// pkg maps analyzer -> package path -> fact JSON.
	pkg map[string]map[string]json.RawMessage
}

// NewFactStore returns an empty store.
func NewFactStore() *FactStore {
	return &FactStore{
		obj: make(map[string]map[string]json.RawMessage),
		pkg: make(map[string]map[string]json.RawMessage),
	}
}

// ObjectKey is the stable cross-package identity facts are keyed by: the
// fully qualified name, which for methods includes the receiver type
// ("(flashwear/internal/fleetd.enc).i64") and for package functions the
// import path ("flashwear/internal/obs.WallNow"). Generic functions key by
// their origin, so every instantiation shares one summary.
func ObjectKey(obj types.Object) string {
	if fn, ok := obj.(*types.Func); ok {
		return fn.Origin().FullName()
	}
	if obj.Pkg() != nil {
		return obj.Pkg().Path() + "." + obj.Name()
	}
	return obj.Name()
}

func (s *FactStore) set(m map[string]map[string]json.RawMessage, analyzer, key string, fact Fact) error {
	data, err := json.Marshal(fact)
	if err != nil {
		return fmt.Errorf("analysis: encoding %s fact for %s: %v", analyzer, key, err)
	}
	if m[analyzer] == nil {
		m[analyzer] = make(map[string]json.RawMessage)
	}
	m[analyzer][key] = data
	return nil
}

func get(m map[string]map[string]json.RawMessage, analyzer, key string, fact Fact) bool {
	data, ok := m[analyzer][key]
	if !ok {
		return false
	}
	return json.Unmarshal(data, fact) == nil
}

// ExportObjectFact records fact for obj under the given analyzer.
func (p *Pass) ExportObjectFact(obj types.Object, fact Fact) {
	if err := p.facts.set(p.facts.obj, p.Analyzer.Name, ObjectKey(obj), fact); err != nil {
		panic(err) // a fact type that cannot marshal is a programming error
	}
}

// ImportObjectFact copies the fact recorded for obj (by this pass's
// analyzer, in this run or decoded from a dependency's fact file) into
// fact, reporting whether one existed.
func (p *Pass) ImportObjectFact(obj types.Object, fact Fact) bool {
	return get(p.facts.obj, p.Analyzer.Name, ObjectKey(obj), fact)
}

// ExportPackageFact records fact for the package under analysis.
func (p *Pass) ExportPackageFact(fact Fact) {
	if err := p.facts.set(p.facts.pkg, p.Analyzer.Name, p.Pkg.Path(), fact); err != nil {
		panic(err)
	}
}

// ImportPackageFact copies the fact recorded for the package at path into
// fact, reporting whether one existed.
func (p *Pass) ImportPackageFact(path string, fact Fact) bool {
	return get(p.facts.pkg, p.Analyzer.Name, path, fact)
}

// factsFile is the serialized form of one package's contribution to the
// store: every fact exported while analyzing that package, fingerprinted
// by the package's export data so stale files are detected (see
// DecodeFacts).
type factsFile struct {
	Version     int
	ImportPath  string
	Fingerprint string
	Objects     map[string]map[string]json.RawMessage `json:",omitempty"`
	Packages    map[string]json.RawMessage            `json:",omitempty"`
}

// EncodeFacts serializes the facts exported for the package at path —
// object facts keyed under that package's prefix and the package fact
// itself — stamped with fingerprint. The output is deterministic: keys
// are emitted sorted (json.Marshal sorts map keys), so equal stores
// encode byte-identically.
func (s *FactStore) EncodeFacts(path, fingerprint string) ([]byte, error) {
	f := factsFile{
		Version:     factsVersion,
		ImportPath:  path,
		Fingerprint: fingerprint,
		Objects:     make(map[string]map[string]json.RawMessage),
		Packages:    make(map[string]json.RawMessage),
	}
	for analyzer, objs := range s.obj {
		for key, data := range objs {
			if !keyInPackage(key, path) {
				continue
			}
			if f.Objects[analyzer] == nil {
				f.Objects[analyzer] = make(map[string]json.RawMessage)
			}
			f.Objects[analyzer][key] = data
		}
	}
	for analyzer, pkgs := range s.pkg {
		if data, ok := pkgs[path]; ok {
			f.Packages[analyzer] = data
		}
	}
	return json.Marshal(f)
}

// DecodeFacts merges one serialized fact file into the store, refusing —
// with ErrStaleFacts — a file whose fingerprint does not match the
// expected one (the dependency changed since the facts were computed).
// Pass expect == "" to skip the check, for callers that manage freshness
// themselves.
func (s *FactStore) DecodeFacts(data []byte, expect string) error {
	var f factsFile
	if err := json.Unmarshal(data, &f); err != nil {
		return fmt.Errorf("analysis: decoding facts: %v", err)
	}
	if f.Version != factsVersion {
		return fmt.Errorf("%w: fact file version %d, want %d", ErrStaleFacts, f.Version, factsVersion)
	}
	if expect != "" && f.Fingerprint != expect {
		return fmt.Errorf("%w: %s was re-analyzed since these facts were written", ErrStaleFacts, f.ImportPath)
	}
	for analyzer, objs := range f.Objects {
		for key, raw := range objs {
			if s.obj[analyzer] == nil {
				s.obj[analyzer] = make(map[string]json.RawMessage)
			}
			s.obj[analyzer][key] = raw
		}
	}
	for analyzer, raw := range f.Packages {
		if s.pkg[analyzer] == nil {
			s.pkg[analyzer] = make(map[string]json.RawMessage)
		}
		s.pkg[analyzer][f.ImportPath] = raw
	}
	return nil
}

// keyInPackage reports whether an object key belongs to the package at
// path: "path.Name" for functions, "(path.Type).Method" for methods
// (including a pointer receiver's "(*path.Type).Method").
func keyInPackage(key, path string) bool {
	for _, prefix := range []string{path + ".", "(" + path + ".", "(*" + path + "."} {
		if len(key) > len(prefix) && key[:len(prefix)] == prefix {
			return true
		}
	}
	return false
}

// Fingerprint hashes a package's export data file — the artifact the go
// command regenerates whenever the package's source (or anything it
// depends on) changes — so fact files inherit exactly the staleness
// semantics of the build cache.
func Fingerprint(exportFile string) (string, error) {
	data, err := os.ReadFile(exportFile)
	if err != nil {
		return "", fmt.Errorf("analysis: fingerprinting %s: %v", exportFile, err)
	}
	sum := sha256.Sum256(data)
	return fmt.Sprintf("%x", sum[:16]), nil
}

// AnalyzerNames returns the sorted analyzer names present in the store,
// for tests and debugging.
func (s *FactStore) AnalyzerNames() []string {
	seen := map[string]bool{}
	for a := range s.obj {
		seen[a] = true
	}
	for a := range s.pkg {
		seen[a] = true
	}
	names := make([]string, 0, len(seen))
	for a := range seen {
		names = append(names, a)
	}
	sort.Strings(names)
	return names
}
