// Package core implements the paper's contribution: the "back-of-the-
// envelope" lifetime estimate of §2.3, the wear-out measurement methodology
// of §4.3 (I/O volume and time per wear-indicator increment), and the
// unprivileged attack app of §4.4 with its detection-evasion policies.
package core

import (
	"time"

	"flashwear/internal/device"
)

// Envelope is §2.3's back-of-the-envelope lifetime estimate: "take the
// expected number of writes for the advertised LBA space ... divide by the
// expected P/E cycles per cell". It is the estimate the paper shows to be
// optimistic by roughly 3x for mobile flash.
type Envelope struct {
	CapacityBytes int64
	AssumedPE     int
}

// NewEnvelope builds the estimate consumers would make for a device,
// assuming consumer-SSD endurance (3K full rewrites).
func NewEnvelope(capacityBytes int64) Envelope {
	return Envelope{CapacityBytes: capacityBytes, AssumedPE: device.EnvelopeAssumedPE}
}

// TotalHostBytes returns the total write volume the estimate promises.
func (e Envelope) TotalHostBytes() int64 {
	return e.CapacityBytes * int64(e.AssumedPE)
}

// BytesPerIncrement returns the expected host bytes per 10% of lifetime.
func (e Envelope) BytesPerIncrement() int64 { return e.TotalHostBytes() / 10 }

// Lifetime returns how long the device should last at a sustained write
// rate, per the estimate. §2.3: "the drive can be completely rewritten
// three times a day over for three years".
func (e Envelope) Lifetime(bytesPerSecond float64) time.Duration {
	if bytesPerSecond <= 0 {
		return 0
	}
	return time.Duration(float64(e.TotalHostBytes()) / bytesPerSecond * float64(time.Second))
}

// FullRewritesPerDayForYears returns the daily full-device rewrites the
// estimate permits over a lifespan of the given years.
func (e Envelope) FullRewritesPerDayForYears(years float64) float64 {
	return float64(e.AssumedPE) / (years * 365)
}

// Shortfall compares a measured total host volume against the estimate:
// the returned factor says how many times *less* the device endured than
// promised (the paper's "roughly three times lower").
func (e Envelope) Shortfall(measuredTotalHostBytes int64) float64 {
	if measuredTotalHostBytes <= 0 {
		return 0
	}
	return float64(e.TotalHostBytes()) / float64(measuredTotalHostBytes)
}
