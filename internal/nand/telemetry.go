package nand

import "flashwear/internal/telemetry"

// Instrument registers the chip's activity counters and wear gauges with
// reg under "nand.*{chip=<chip>}". All instruments are pull-based pure
// observers of chip state — registering them changes nothing about how the
// chip behaves (DESIGN.md §7).
func (c *Chip) Instrument(reg *telemetry.Registry, chip string) {
	n := func(base string) string { return telemetry.Name("nand."+base, "chip", chip) }
	reg.CounterFunc(n("programs"), func() int64 { return c.stats.Programs })
	reg.CounterFunc(n("reads"), func() int64 { return c.stats.Reads })
	reg.CounterFunc(n("erases"), func() int64 { return c.stats.Erases })
	reg.CounterFunc(n("program_fails"), func() int64 { return c.stats.ProgramFails })
	reg.CounterFunc(n("erase_fails"), func() int64 { return c.stats.EraseFails })
	reg.CounterFunc(n("uncorrectable_reads"), func() int64 { return c.stats.UncorrectableReads })
	reg.CounterFunc(n("bytes_programmed"), func() int64 { return c.stats.BytesProgrammed })
	reg.CounterFunc(n("bad_blocks"), func() int64 { return int64(c.stats.BadBlocks) })
	reg.GaugeFunc(n("avg_wear"), c.AvgWear)
	reg.GaugeFunc(n("max_wear"), c.MaxWear)
	reg.GaugeFunc(n("raw_ber"), c.ExpectedRBER)
}
