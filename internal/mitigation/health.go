package mitigation

import (
	"sort"
	"time"

	"flashwear/internal/device"
	"flashwear/internal/ftl"
)

// AlertLevel grades a health observation.
type AlertLevel int

const (
	AlertNone     AlertLevel = iota
	AlertInfo                // lifetime consumption has started
	AlertWarning             // >= 80% consumed (JEDEC warning)
	AlertCritical            // >= 90% consumed or device unreliable
)

// String implements fmt.Stringer.
func (l AlertLevel) String() string {
	switch l {
	case AlertNone:
		return "none"
	case AlertInfo:
		return "info"
	case AlertWarning:
		return "warning"
	case AlertCritical:
		return "critical"
	default:
		return "unknown"
	}
}

// HealthSample is one S.M.A.R.T.-style reading.
type HealthSample struct {
	At        time.Duration
	LevelA    int
	LevelB    int
	PreEOL    int
	Alert     AlertLevel
	Untrusted bool // register read was out of spec (BLU-class firmware)
}

// WearWatch is §4.5's first proposal: "expose and monitor the wear-out
// indicator to applications and users, similarly to the S.M.A.R.T. system
// on disks". It polls the device's JEDEC registers and grades them.
type WearWatch struct {
	Dev     *device.Device
	history []HealthSample
}

// NewWearWatch builds a watcher for a device.
func NewWearWatch(dev *device.Device) *WearWatch { return &WearWatch{Dev: dev} }

// Sample reads the registers now and appends to the history.
func (w *WearWatch) Sample(now time.Duration) HealthSample {
	a := w.Dev.WearIndicator(ftl.PoolA)
	b := w.Dev.WearIndicator(ftl.PoolB)
	pre := w.Dev.PreEOLInfo()
	s := HealthSample{At: now, LevelA: a, LevelB: b, PreEOL: pre}
	if a < 1 || a > 11 || b < 1 || b > 11 || pre < 1 || pre > 3 {
		s.Untrusted = true
		s.Alert = AlertCritical // can't trust it: assume the worst
	} else {
		worst := a
		if b > worst {
			worst = b
		}
		switch {
		case w.Dev.Failed() || worst >= 11 || pre >= 3:
			s.Alert = AlertCritical
		case worst >= 9 || pre >= 2:
			s.Alert = AlertWarning
		case worst >= 2:
			s.Alert = AlertInfo
		default:
			s.Alert = AlertNone
		}
	}
	w.history = append(w.history, s)
	return s
}

// History returns all samples taken.
func (w *WearWatch) History() []HealthSample { return w.history }

// FirstAlertAt returns when the watch first reached at least the given
// level, and whether it ever did. This is the "advance notice" metric of
// the mitigation evaluation: how long before destruction a user who checked
// the indicator would have been warned.
func (w *WearWatch) FirstAlertAt(level AlertLevel) (time.Duration, bool) {
	for _, s := range w.history {
		if s.Alert >= level {
			return s.At, true
		}
	}
	return 0, false
}

// WearShare is one app's slice of the device's consumed life.
type WearShare struct {
	App   string
	Bytes int64
	// LifePct is the estimated share of total device lifetime this app's
	// writes consumed, assuming wear is proportional to bytes written.
	LifePct float64
}

// AttributeWear splits a device's consumed life across apps in proportion
// to their written bytes — the pinpointing §4.5 notes the bare indicator
// cannot do ("it would not help pinpoint the application which is harming
// the device"), but the OS can, because it owns per-app I/O accounting.
// consumedLife is the device's LifeConsumed fraction; perApp maps app name
// to bytes written. Results are sorted by share, largest first.
func AttributeWear(consumedLife float64, perApp map[string]int64) []WearShare {
	var total int64
	for _, b := range perApp {
		total += b
	}
	out := make([]WearShare, 0, len(perApp))
	for app, b := range perApp {
		share := WearShare{App: app, Bytes: b}
		if total > 0 {
			share.LifePct = consumedLife * 100 * float64(b) / float64(total)
		}
		out = append(out, share)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].LifePct != out[j].LifePct {
			return out[i].LifePct > out[j].LifePct
		}
		return out[i].App < out[j].App
	})
	return out
}

// ProjectedEOL extrapolates the time remaining until estimated end of life
// from the observed wear trend between the first and last trusted samples.
// It returns ok=false when the history is too short or wear has not moved.
// This is the number a health UI would surface: "at this rate, the storage
// is gone in N days".
func (w *WearWatch) ProjectedEOL(now time.Duration) (remaining time.Duration, ok bool) {
	var first, last *HealthSample
	for i := range w.history {
		s := &w.history[i]
		if s.Untrusted {
			continue
		}
		if first == nil {
			first = s
		}
		last = s
	}
	if first == nil || last == nil || last.At <= first.At {
		return 0, false
	}
	// Level midpoints approximate consumed life: level n ~ (n-0.5)*10%.
	lifeOf := func(s *HealthSample) float64 {
		lvl := s.LevelB
		if s.LevelA > lvl {
			lvl = s.LevelA
		}
		return (float64(lvl) - 0.5) / 10
	}
	l0, l1 := lifeOf(first), lifeOf(last)
	if l1 <= l0 {
		return 0, false
	}
	rate := (l1 - l0) / float64(last.At-first.At) // life fraction per ns
	left := 1.0 - l1
	if left <= 0 {
		return 0, true
	}
	return time.Duration(left / rate), true
}
