package runtrace

import (
	"bufio"
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Chrome trace layout: each shard is a process (plus one "campaign"
// process for shard -1 work), each phase a named thread inside it, so
// the viewer's per-process timelines line up with the worker pool and
// the thread names with the phase split in /metrics.
const (
	pidCampaign = 1
	pidShard0   = 2 // shard n renders as pid n+pidShard0
)

// WriteChrome renders the buffered spans of the current (or last)
// recording window as a Chrome trace-event JSON object — load it in
// chrome://tracing, https://ui.perfetto.dev or speedscope. ts/dur are
// wall-clock microseconds relative to the window start. The writer
// emits by hand like wtrace's (span volume makes reflective encoding
// the dominant cost), but the output is plain standard JSON.
func (t *Tracer) WriteChrome(w io.Writer) error {
	t.mu.Lock()
	spans := append([]Span(nil), t.spans...)
	dropped := t.dropped
	t.mu.Unlock()

	// Collect the shard set for process metadata (collect/sort/iterate).
	shardSet := map[int32]bool{}
	for _, s := range spans {
		shardSet[s.Shard] = true
	}
	shards := make([]int32, 0, len(shardSet))
	for s := range shardSet {
		shards = append(shards, s)
	}
	sort.Slice(shards, func(i, j int) bool { return shards[i] < shards[j] })

	pid := func(shard int32) int {
		if shard < 0 {
			return pidCampaign
		}
		return int(shard) + pidShard0
	}

	bw := bufio.NewWriter(w)
	bw.WriteString(`{"displayTimeUnit":"ms","traceEvents":[`)
	first := true
	comma := func() {
		if !first {
			bw.WriteByte(',')
		}
		first = false
	}
	meta := func(pid int, name, value string, tid int) {
		comma()
		fmt.Fprintf(bw, `{"name":%q,"ph":"M","pid":%d,"tid":%d,"args":{"name":%q}}`,
			name, pid, tid, value)
	}
	for _, s := range shards {
		procName := "campaign"
		if s >= 0 {
			procName = "shard " + strconv.Itoa(int(s))
		}
		meta(pid(s), "process_name", procName, 0)
		for p := Phase(0); p < NumPhases; p++ {
			meta(pid(s), "thread_name", p.String(), int(p)+1)
		}
	}
	for _, s := range spans {
		comma()
		bw.WriteString(`{"name":`)
		bw.WriteString(strconv.Quote(s.Phase.String()))
		bw.WriteString(`,"ph":"X","pid":`)
		bw.WriteString(strconv.Itoa(pid(s.Shard)))
		bw.WriteString(`,"tid":`)
		bw.WriteString(strconv.Itoa(int(s.Phase) + 1))
		bw.WriteString(`,"ts":`)
		bw.WriteString(strconv.FormatInt(s.Start.Microseconds(), 10))
		bw.WriteString(`,"dur":`)
		bw.WriteString(strconv.FormatInt(s.Dur.Microseconds(), 10))
		bw.WriteString(`,"args":{"epoch":`)
		bw.WriteString(strconv.Itoa(int(s.Epoch)))
		if s.Device >= 0 {
			bw.WriteString(`,"device":`)
			bw.WriteString(strconv.Itoa(int(s.Device)))
		}
		bw.WriteString(`}}`)
	}
	if dropped > 0 {
		comma()
		fmt.Fprintf(bw, `{"name":"spans dropped: %d","ph":"i","s":"g","pid":%d,"tid":0,"ts":0,"args":{}}`,
			dropped, pidCampaign)
	}
	bw.WriteString("]}\n")
	return bw.Flush()
}
