package mitigation

import (
	"time"
)

// RateLimiter enforces a lifespan budget on app writes. In Global mode
// every app shares one bucket (simple, but §4.5 warns it "may harm benign
// applications that rely on bursts"); per-app buckets give each app an
// equal slice.
type RateLimiter struct {
	budget LifespanBudget
	// BurstBytes is the bucket depth (how large a benign burst passes
	// unthrottled). Defaults to 256 MiB.
	BurstBytes float64

	global *TokenBucket
	perApp map[string]*TokenBucket
	// PerApp switches from one shared bucket to per-app buckets.
	PerApp bool

	throttledBytes int64
	throttledTime  time.Duration
}

// NewRateLimiter builds a limiter from a budget. Buckets materialise on
// first use, so BurstBytes may be adjusted after construction.
func NewRateLimiter(budget LifespanBudget) (*RateLimiter, error) {
	if err := budget.Validate(); err != nil {
		return nil, err
	}
	return &RateLimiter{
		budget:     budget,
		BurstBytes: 256 << 20,
		perApp:     make(map[string]*TokenBucket),
	}, nil
}

// Budget returns the limiter's budget.
func (l *RateLimiter) Budget() LifespanBudget { return l.budget }

// ThrottledTime reports the total stall imposed so far.
func (l *RateLimiter) ThrottledTime() time.Duration { return l.throttledTime }

// Throttle implements the android.Config.Throttle hook.
func (l *RateLimiter) Throttle(app string, bytes int64, now time.Duration) time.Duration {
	var tb *TokenBucket
	if l.PerApp {
		tb = l.perApp[app]
		if tb == nil {
			tb = NewTokenBucket(l.budget.BytesPerSecond(), l.BurstBytes)
			l.perApp[app] = tb
		}
	} else {
		if l.global == nil {
			l.global = NewTokenBucket(l.budget.BytesPerSecond(), l.BurstBytes)
		}
		tb = l.global
	}
	d := tb.Take(bytes, now)
	if d > 0 {
		l.throttledBytes += bytes
		l.throttledTime += d
	}
	return d
}
