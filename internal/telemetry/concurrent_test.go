package telemetry_test

import (
	"fmt"
	"sync"
	"testing"

	"flashwear/internal/telemetry"
	"flashwear/internal/wtrace"
)

// TestRegistryConcurrentRegistrationAndEmission hammers one registry from
// many goroutines — each registering its own instruments and pushing
// updates — while a reader snapshots continuously. Run under -race (the
// Makefile's race target does) this pins the registry's concurrency
// contract: registration and Snapshot take the lock, updates are atomic,
// and no update is lost.
func TestRegistryConcurrentRegistrationAndEmission(t *testing.T) {
	reg := telemetry.NewRegistry()
	const workers = 8
	const incs = 5000

	var emitters, readers sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			// Counters are monotonic, so every observed value is legal as
			// long as it is non-negative and the snapshot doesn't tear.
			for _, p := range reg.Snapshot(0).Points {
				if p.Kind == telemetry.KindCounter && p.Int < 0 {
					t.Errorf("counter %s went negative: %d", p.Name, p.Int)
					return
				}
			}
		}
	}()
	for w := 0; w < workers; w++ {
		emitters.Add(1)
		go func(w int) {
			defer emitters.Done()
			c := reg.Counter(telemetry.Name("test.ops", "worker", fmt.Sprint(w)))
			g := reg.Gauge(telemetry.Name("test.level", "worker", fmt.Sprint(w)))
			for i := 0; i < incs; i++ {
				c.Inc()
				g.Set(float64(i))
			}
		}(w)
	}
	emitters.Wait()
	close(stop)
	readers.Wait()

	snap := reg.Snapshot(0)
	var total int64
	counters := 0
	for _, p := range snap.Points {
		if p.Kind == telemetry.KindCounter {
			counters++
			total += p.Int
		}
	}
	if counters != workers {
		t.Fatalf("registered %d counters, want %d", counters, workers)
	}
	if total != workers*incs {
		t.Fatalf("counters sum to %d, want %d (lost updates)", total, workers*incs)
	}
}

// TestWtraceCollectorConcurrentEmission attaches a wear tracer's pull
// metrics to a registry and then drives the shared ledger from many
// goroutines while snapshots are being taken. The collector callbacks must
// be pure atomic readers, so the final snapshot equals the exact emitted
// counts.
func TestWtraceCollectorConcurrentEmission(t *testing.T) {
	reg := telemetry.NewRegistry()
	led := wtrace.NewLedger()
	wtrace.NewWithLedger(led).Attach(reg)

	const workers = 8
	const ops = 4000
	const erasesEach = 8

	var emitters, readers sync.WaitGroup
	stop := make(chan struct{})
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			snap := reg.Snapshot(0)
			i := snap.Index("wtrace.phys_pages")
			j := snap.Index("wtrace.erases")
			if i < 0 || j < 0 {
				t.Error("wtrace instruments missing from snapshot")
				return
			}
			if snap.Points[i].Int < 0 || snap.Points[j].Int < 0 {
				t.Errorf("negative wtrace counters: %d, %d", snap.Points[i].Int, snap.Points[j].Int)
				return
			}
		}
	}()
	for w := 0; w < workers; w++ {
		emitters.Add(1)
		go func(w int) {
			defer emitters.Done()
			tr := wtrace.NewWithLedger(led) // per-goroutine tracer, shared ledger
			org := tr.Origin(fmt.Sprintf("app.%d", w))
			for i := 0; i < ops; i++ {
				tr.NoteProgram(org, wtrace.CauseHost)
			}
			for i := 0; i < erasesEach; i++ {
				tr.EraseBlockAttrib(w, []wtrace.Origin{org})
			}
		}(w)
	}
	emitters.Wait()
	close(stop)
	readers.Wait()

	snap := reg.Snapshot(0)
	want := map[string]int64{
		"wtrace.origins":        workers + 1, // + "os"
		"wtrace.events":         0,           // events never enabled
		"wtrace.events_dropped": 0,
		"wtrace.phys_pages":     workers * ops,
		"wtrace.erases":         workers * erasesEach,
	}
	for name, w := range want {
		i := snap.Index(name)
		if i < 0 {
			t.Fatalf("instrument %s missing", name)
		}
		if got := snap.Points[i].Int; got != w {
			t.Errorf("%s = %d, want %d", name, got, w)
		}
	}
}
