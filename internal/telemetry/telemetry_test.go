package telemetry

import (
	"math"
	"strings"
	"testing"
	"time"

	"flashwear/internal/simclock"
)

func TestName(t *testing.T) {
	if got := Name("nand.programs"); got != "nand.programs" {
		t.Errorf("Name = %q", got)
	}
	// Labels are sorted into one canonical spelling.
	a := Name("nand.programs", "chip", "main", "die", "0")
	b := Name("nand.programs", "die", "0", "chip", "main")
	if a != b || a != "nand.programs{chip=main,die=0}" {
		t.Errorf("Name not canonical: %q vs %q", a, b)
	}
}

func TestValidName(t *testing.T) {
	for name, want := range map[string]bool{
		"ftl.host_pages_written":        true,
		"nand.programs{chip=main}":      true,
		"a.b{k=v,x=y}":                  true,
		"":                              false,
		"Upper.case":                    false,
		"spaces bad":                    false,
		"trailing.brace}":               false,
		"empty.labels{}":                false,
		"bad.label{k}":                  false,
		"unterminated{k=v":              false,
		"device.wear_level{pool=b}":     true,
		"fleet.devices_done{worker=12}": true,
	} {
		if got := validName(name); got != want {
			t.Errorf("validName(%q) = %v, want %v", name, got, want)
		}
	}
}

func TestRegistryPanics(t *testing.T) {
	mustPanic := func(name string, fn func()) {
		t.Helper()
		defer func() {
			if recover() == nil {
				t.Errorf("%s: no panic", name)
			}
		}()
		fn()
	}
	reg := NewRegistry()
	reg.Counter("dup.name")
	mustPanic("duplicate", func() { reg.Counter("dup.name") })
	mustPanic("invalid", func() { reg.Gauge("NOT VALID") })
	mustPanic("odd labels", func() { Name("x", "k") })
}

func TestSnapshotOrderAndValues(t *testing.T) {
	reg := NewRegistry()
	c := reg.Counter("a.count")
	reg.CounterFunc("b.pulled", func() int64 { return 7 })
	g := reg.Gauge("c.level")
	reg.GaugeFunc("d.pulled", func() float64 { return 2.5 })

	c.Inc()
	c.Add(2)
	g.Set(1.25)

	snap := reg.Snapshot(time.Hour)
	if snap.At != time.Hour {
		t.Errorf("At = %v", snap.At)
	}
	wantNames := []string{"a.count", "b.pulled", "c.level", "d.pulled"}
	if len(snap.Points) != len(wantNames) {
		t.Fatalf("got %d points, want %d", len(snap.Points), len(wantNames))
	}
	for i, name := range wantNames {
		if snap.Points[i].Name != name {
			t.Errorf("point %d = %q, want %q (registration order)", i, snap.Points[i].Name, name)
		}
	}
	if v := snap.Points[0].Int; v != 3 {
		t.Errorf("counter = %d, want 3", v)
	}
	if v := snap.Points[1].Int; v != 7 {
		t.Errorf("counterfunc = %d, want 7", v)
	}
	if v := snap.Points[2].Float; v != 1.25 {
		t.Errorf("gauge = %g, want 1.25", v)
	}
	if v := snap.Points[3].Value(); v != 2.5 {
		t.Errorf("gaugefunc = %g, want 2.5", v)
	}
	if i := snap.Index("c.level"); i != 2 {
		t.Errorf("Index = %d, want 2", i)
	}
	if i := snap.Index("missing"); i != -1 {
		t.Errorf("Index(missing) = %d, want -1", i)
	}
}

func TestHistogramExpansion(t *testing.T) {
	reg := NewRegistry()
	h := reg.Histogram("lat.write", 0, 100, 100)

	// Empty histogram: all derived points are 0, never NaN.
	for _, p := range reg.Snapshot(0).Points {
		if math.IsNaN(p.Value()) {
			t.Errorf("empty histogram point %s is NaN", p.Name)
		}
		if p.Value() != 0 {
			t.Errorf("empty histogram point %s = %g, want 0", p.Name, p.Value())
		}
	}

	for v := 0; v < 100; v++ {
		h.Observe(float64(v) + 0.5)
	}
	snap := reg.Snapshot(0)
	want := []string{"lat.write.count", "lat.write.mean", "lat.write.p50", "lat.write.p99"}
	for i, name := range want {
		if snap.Points[i].Name != name {
			t.Fatalf("point %d = %q, want %q", i, snap.Points[i].Name, name)
		}
	}
	if n := snap.Points[0].Int; n != 100 {
		t.Errorf("count = %d, want 100", n)
	}
	if m := snap.Points[1].Float; math.Abs(m-50) > 1 {
		t.Errorf("mean = %g, want ~50", m)
	}
	if p50 := snap.Points[2].Float; math.Abs(p50-50) > 1.5 {
		t.Errorf("p50 = %g, want ~50", p50)
	}
	if p99 := snap.Points[3].Float; math.Abs(p99-99) > 1.5 {
		t.Errorf("p99 = %g, want ~99", p99)
	}
	if cp := h.Snapshot(); cp.Total() != 100 {
		t.Errorf("histogram copy Total = %d, want 100", cp.Total())
	}
}

func TestSamplerCadence(t *testing.T) {
	clock := simclock.New()
	reg := NewRegistry()
	var ticks int64
	reg.CounterFunc("clock.ticks", func() int64 { return ticks })
	reg.GaugeFunc("clock.hours", func() float64 { return clock.Now().Hours() })

	s := NewSampler(reg, clock, time.Hour)
	for i := 0; i < 4; i++ {
		ticks++
		clock.Advance(time.Hour) // sample fires exactly at each hour mark
	}
	got := s.Series()
	if len(got.Rows) != 4 {
		t.Fatalf("got %d rows, want 4", len(got.Rows))
	}
	for i, row := range got.Rows {
		wantAt := time.Duration(i+1) * time.Hour
		if row.At != wantAt {
			t.Errorf("row %d At = %v, want %v", i, row.At, wantAt)
		}
		if row.Values[0] != float64(i+1) {
			t.Errorf("row %d ticks = %g, want %d", i, row.Values[0], i+1)
		}
	}

	// Final at an already-sampled instant is a no-op; after more progress
	// it appends exactly one row at the current time.
	s.Final()
	if len(s.Series().Rows) != 4 {
		t.Errorf("Final at sampled instant added a row")
	}
	clock.Advance(30 * time.Minute)
	s.Final()
	rows := s.Series().Rows
	if len(rows) != 5 || rows[4].At != 4*time.Hour+30*time.Minute {
		t.Errorf("Final did not append end-state row: %d rows", len(rows))
	}

	// Stop cancels future samples.
	s.Stop()
	clock.Advance(5 * time.Hour)
	if len(s.Series().Rows) != 5 {
		t.Errorf("sampler kept sampling after Stop")
	}
}

func TestSamplerOnSampleAndCollect(t *testing.T) {
	clock := simclock.New()
	reg := NewRegistry()
	reg.CounterFunc("x.n", func() int64 { return 1 })
	s := NewSampler(reg, clock, time.Minute)
	s.Collect = false
	var calls int
	s.OnSample = func(snap Snapshot) {
		calls++
		if len(snap.Points) != 1 || snap.Points[0].Int != 1 {
			t.Errorf("bad snapshot in OnSample: %+v", snap)
		}
	}
	clock.Advance(3 * time.Minute)
	if calls != 3 {
		t.Errorf("OnSample called %d times, want 3", calls)
	}
	if len(s.Series().Rows) != 0 {
		t.Errorf("Collect=false still accumulated rows")
	}
}

func TestSeriesCSVAndJSON(t *testing.T) {
	clock := simclock.New()
	reg := NewRegistry()
	var n int64
	reg.CounterFunc("w.pages", func() int64 { return n })
	reg.GaugeFunc("w.level", func() float64 { return float64(n) / 2 })
	s := NewSampler(reg, clock, time.Hour)
	n = 2
	clock.Advance(time.Hour)
	n = 4
	clock.Advance(time.Hour)

	var csv strings.Builder
	if err := s.Series().WriteCSV(&csv); err != nil {
		t.Fatal(err)
	}
	wantCSV := "sim_hours,w.pages,w.level\n1,2,1\n2,4,2\n"
	if csv.String() != wantCSV {
		t.Errorf("CSV = %q, want %q", csv.String(), wantCSV)
	}

	var js strings.Builder
	if err := s.Series().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	wantJS := `{"columns":["w.pages","w.level"],"kinds":["counter","gauge"],` +
		`"rows":[{"sim_hours":1,"values":[2,1]},{"sim_hours":2,"values":[4,2]}]}` + "\n"
	if js.String() != wantJS {
		t.Errorf("JSON = %q, want %q", js.String(), wantJS)
	}
}

func TestSeriesJSONNonFinite(t *testing.T) {
	clock := simclock.New()
	reg := NewRegistry()
	reg.GaugeFunc("bad.gauge", func() float64 { return math.Inf(1) })
	s := NewSampler(reg, clock, time.Hour)
	clock.Advance(time.Hour)
	var js strings.Builder
	if err := s.Series().WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(js.String(), `"values":[null]`) {
		t.Errorf("non-finite gauge not nulled in JSON: %s", js.String())
	}
}
