package nand

import (
	"fmt"
	"math/rand"
	"time"
)

// BlockState is the persistent state of one block: everything a power cut
// cannot erase. It mirrors the chip's internal block bookkeeping with
// exported fields so a snapshot codec outside this package can serialise
// it. Meta holds only the programmed prefix (NextPage entries); pages past
// the prefix carry no metadata by construction.
type BlockState struct {
	EraseCount int
	Healed     float64
	Stress     float64
	Bad        bool
	NextPage   int
	FirstProg  time.Duration
	LastErase  time.Duration
	Reads      int64
	Meta       []OOB          // nil, or exactly NextPage entries
	Data       map[int][]byte // page payloads, deep-copied
}

// ChipState is a chip's complete persistent state: per-block state plus
// the cumulative activity counters. Together with the OOB-scan recovery in
// internal/ftl it is the serialization seam for checkpoint/resume — an
// imported chip is indistinguishable from one that lost power between
// operations, so ftl.Recover rebuilds every volatile structure above it.
type ChipState struct {
	Geometry Geometry
	Stats    Stats
	Blocks   []BlockState
}

// ExportState captures the chip's persistent state. The copy is deep: the
// caller may keep using the chip, and the snapshot never aliases it.
func (c *Chip) ExportState() *ChipState {
	st := &ChipState{
		Geometry: c.geo,
		Stats:    c.stats,
		Blocks:   make([]BlockState, len(c.blocks)),
	}
	for i := range c.blocks {
		b := &c.blocks[i]
		bs := BlockState{
			EraseCount: b.eraseCount,
			Healed:     b.healed,
			Stress:     b.stress,
			Bad:        b.bad,
			NextPage:   b.nextPage,
			FirstProg:  b.firstProg,
			LastErase:  b.lastErase,
			Reads:      b.reads,
		}
		if b.meta != nil {
			bs.Meta = append([]OOB(nil), b.meta[:b.nextPage]...)
		}
		if b.data != nil {
			bs.Data = make(map[int][]byte, len(b.data))
			for pg, d := range b.data {
				bs.Data[pg] = append([]byte(nil), d...)
			}
		}
		st.Blocks[i] = bs
	}
	return st
}

// ImportState replaces the chip's persistent state with st. The chip must
// have been built with the same geometry (same profile, same scale); the
// RNG is left untouched — callers that need deterministic post-import
// behaviour should Reseed. The state is deep-copied in, so the caller may
// reuse or discard st freely.
func (c *Chip) ImportState(st *ChipState) error {
	if st.Geometry != c.geo {
		return fmt.Errorf("nand: ImportState: geometry mismatch: chip %+v, state %+v", c.geo, st.Geometry)
	}
	if len(st.Blocks) != len(c.blocks) {
		return fmt.Errorf("nand: ImportState: %d blocks in state, chip has %d", len(st.Blocks), len(c.blocks))
	}
	for i := range st.Blocks {
		bs := &st.Blocks[i]
		if bs.NextPage < 0 || bs.NextPage > c.geo.PagesPerBlock {
			return fmt.Errorf("nand: ImportState: block %d: NextPage %d out of range [0,%d]", i, bs.NextPage, c.geo.PagesPerBlock)
		}
		if bs.Meta != nil && len(bs.Meta) != bs.NextPage {
			return fmt.Errorf("nand: ImportState: block %d: %d meta entries, want %d", i, len(bs.Meta), bs.NextPage)
		}
		for pg, d := range bs.Data {
			if pg < 0 || pg >= bs.NextPage {
				return fmt.Errorf("nand: ImportState: block %d: data for unprogrammed page %d", i, pg)
			}
			if len(d) != c.geo.PageSize {
				return fmt.Errorf("nand: ImportState: block %d page %d: %d data bytes, want %d", i, pg, len(d), c.geo.PageSize)
			}
		}
	}
	c.stats = st.Stats
	for i := range st.Blocks {
		bs := &st.Blocks[i]
		b := &c.blocks[i]
		b.eraseCount = bs.EraseCount
		b.healed = bs.Healed
		b.stress = bs.Stress
		b.bad = bs.Bad
		b.nextPage = bs.NextPage
		b.firstProg = bs.FirstProg
		b.lastErase = bs.LastErase
		b.reads = bs.Reads
		b.meta = nil
		if bs.Meta != nil {
			b.meta = make([]OOB, c.geo.PagesPerBlock)
			for p := range b.meta {
				b.meta[p].LP = -1
			}
			copy(b.meta, bs.Meta)
		}
		b.data = nil
		if bs.Data != nil {
			b.data = make(map[int][]byte, len(bs.Data))
			for pg, d := range bs.Data {
				b.data[pg] = append([]byte(nil), d...)
			}
		}
	}
	return nil
}

// Reseed replaces the chip's RNG stream. Resume paths use it to make
// post-import stochastic behaviour (program/erase failure draws, sampled
// bit errors) a pure function of (device seed, resume point) rather than
// of however many draws the previous process had consumed.
func (c *Chip) Reseed(seed int64) {
	c.rng = rand.New(rand.NewSource(seed))
}
