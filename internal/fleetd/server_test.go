package fleetd

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"flashwear/internal/obs"
)

// TestServerAPI drives the full control/query surface through a real
// HTTP round trip: submit, poll, series, ledger, result, pause/resume
// conflict handling, and fork.
func TestServerAPI(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}

	spec := tinySpec()
	spec.CheckpointEvery = 2
	st, err := cl.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if st.ID == "" || st.Devices != 4 || st.Days != 5 {
		t.Fatalf("submit status = %+v", st)
	}

	// Invalid specs are a 400 with a useful message.
	bad := spec
	bad.Days = 0
	if _, err := cl.Submit(bad); err == nil {
		t.Fatal("invalid spec accepted")
	} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != 400 {
		t.Fatalf("invalid spec error = %v, want APIError 400", err)
	}

	// Wait server-side via the in-process handle (the CLI polls; tests
	// shouldn't).
	c, ok := m.Get(st.ID)
	if !ok {
		t.Fatalf("campaign %s not in manager", st.ID)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}

	got, err := cl.Status(st.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if got.State != StateDone || got.DaysDone != 5 {
		t.Fatalf("status after completion = %+v", got)
	}

	list, err := cl.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(list) != 1 || list[0].ID != st.ID {
		t.Fatalf("list = %+v", list)
	}

	csv, err := cl.SeriesCSV(st.ID)
	if err != nil {
		t.Fatalf("SeriesCSV: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(string(csv)), "\n")
	if len(lines) != 6 || !strings.HasPrefix(lines[0], "day,devices,bricked,read_only,") {
		t.Fatalf("series CSV:\n%s", csv)
	}

	ledger, err := cl.LedgerCSV(st.ID)
	if err != nil {
		t.Fatalf("LedgerCSV: %v", err)
	}
	if !strings.Contains(string(ledger), "origin") {
		t.Fatalf("ledger CSV missing header:\n%s", ledger)
	}

	agg, err := cl.Result(st.ID)
	if err != nil {
		t.Fatalf("Result: %v", err)
	}
	if agg.Total.Devices != 4 {
		t.Fatalf("result devices = %d, want 4", agg.Total.Devices)
	}

	// Resume of a done campaign conflicts.
	if _, err := cl.Resume(st.ID); err == nil {
		t.Fatal("resume of a done campaign succeeded")
	} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != 409 {
		t.Fatalf("resume conflict error = %v, want APIError 409", err)
	}

	// Pause of a done campaign is a harmless no-op.
	if _, err := cl.Pause(st.ID); err != nil {
		t.Fatalf("Pause: %v", err)
	}

	fkSt, err := cl.Fork(st.ID, ForkOptions{Name: "fork", Days: 7})
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	fk, ok := m.Get(fkSt.ID)
	if !ok {
		t.Fatalf("fork %s not in manager", fkSt.ID)
	}
	if err := fk.Wait(); err != nil {
		t.Fatalf("fork failed: %v", err)
	}
	if got, _ := cl.Status(fkSt.ID); got.DaysDone != 7 {
		t.Fatalf("fork days_done = %d, want 7", got.DaysDone)
	}

	// Unknown campaign is a 404 everywhere.
	if _, err := cl.Status("c999999"); err == nil {
		t.Fatal("status of unknown campaign succeeded")
	} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != 404 {
		t.Fatalf("unknown campaign error = %v, want APIError 404", err)
	}
}

// TestServerErrorPaths pins the status code and JSON error shape of every
// failure mode a client can trip: unknown ids, malformed bodies, bad fork
// grids, and operations against campaigns in the wrong state.
func TestServerErrorPaths(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}

	// The error body is always {"error": "..."} with the right status.
	checkJSONError := func(t *testing.T, path, method string, body string, wantCode int) {
		t.Helper()
		var resp *http.Response
		var err error
		switch method {
		case http.MethodGet:
			resp, err = http.Get(srv.URL + path)
		case http.MethodPost:
			resp, err = http.Post(srv.URL+path, "application/json", strings.NewReader(body))
		}
		if err != nil {
			t.Fatalf("%s %s: %v", method, path, err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantCode {
			t.Errorf("%s %s: status %d, want %d", method, path, resp.StatusCode, wantCode)
		}
		if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
			t.Errorf("%s %s: Content-Type %q, want application/json", method, path, ct)
		}
		var ae struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&ae); err != nil || ae.Error == "" {
			t.Errorf("%s %s: error body not {\"error\": ...}: decode err %v, message %q", method, path, err, ae.Error)
		}
	}

	// Unknown campaign id: 404 on every campaign-scoped route.
	for _, p := range []struct{ method, path string }{
		{http.MethodGet, "/v1/campaigns/c999999"},
		{http.MethodGet, "/v1/campaigns/c999999/series"},
		{http.MethodGet, "/v1/campaigns/c999999/ledger"},
		{http.MethodGet, "/v1/campaigns/c999999/result"},
		{http.MethodGet, "/v1/campaigns/c999999/events"},
		{http.MethodGet, "/v1/campaigns/c999999/watch"},
		{http.MethodPost, "/v1/campaigns/c999999/pause"},
		{http.MethodPost, "/v1/campaigns/c999999/resume"},
		{http.MethodPost, "/v1/campaigns/c999999/fork"},
	} {
		checkJSONError(t, p.path, p.method, "{}", http.StatusNotFound)
	}

	// Malformed submit body: 400.
	checkJSONError(t, "/v1/campaigns", http.MethodPost, "{not json", http.StatusBadRequest)
	// Valid JSON, invalid spec: also 400.
	checkJSONError(t, "/v1/campaigns", http.MethodPost, `{"devices": -1}`, http.StatusBadRequest)

	// A finished campaign for the state-dependent paths.
	st, err := cl.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	c, _ := m.Get(st.ID)
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}

	// Pause of a finished campaign: 200, state stays done.
	if got, err := cl.Pause(st.ID); err != nil {
		t.Fatalf("pause of done campaign: %v", err)
	} else if got.State != StateDone {
		t.Errorf("pause of done campaign left state %s, want done", got.State)
	}

	// Malformed fork body and bad fork grid: 400 each.
	checkJSONError(t, "/v1/campaigns/"+st.ID+"/fork", http.MethodPost, "{not json", http.StatusBadRequest)
	checkJSONError(t, "/v1/campaigns/"+st.ID+"/fork", http.MethodPost, `{"days": -7}`, http.StatusBadRequest)

	// Bad ?since= values: 400.
	checkJSONError(t, "/v1/campaigns/"+st.ID+"/events?since=banana", http.MethodGet, "", http.StatusBadRequest)
	checkJSONError(t, "/v1/campaigns/"+st.ID+"/watch?since=-1", http.MethodGet, "", http.StatusBadRequest)

	// Fork of a running campaign: 409. A long campaign keeps the source
	// running while we try.
	long := tinySpec()
	long.Devices = 8
	long.Days = 100
	long.CheckpointEvery = 1
	long.Workers = 1
	lst, err := cl.Submit(long)
	if err != nil {
		t.Fatalf("Submit long: %v", err)
	}
	lc, _ := m.Get(lst.ID)
	if lc.State() == StateRunning {
		if _, err := cl.Fork(lst.ID, ForkOptions{Name: "too-soon"}); err == nil {
			t.Error("fork of a running campaign succeeded")
		} else if ae, ok := err.(*APIError); !ok || ae.StatusCode != http.StatusConflict {
			t.Errorf("fork-while-running error = %v, want APIError 409", err)
		}
	} else {
		t.Log("long campaign finished before the fork attempt; 409 path not exercised")
	}
	lc.Pause()
}

// TestServerMetricsAndEvents pins the two ops-plane read endpoints:
// /metrics serves the mandatory Prometheus families and /events serves
// the journal with ?since and jsonl support.
func TestServerMetricsAndEvents(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}

	spec := tinySpec()
	spec.CheckpointEvery = 2
	st, err := cl.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	c, _ := m.Get(st.ID)
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}

	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("/metrics Content-Type = %q", ct)
	}
	text := string(body)
	for _, family := range []string{
		"fleetd_cells_computed_total",
		"fleetd_cells_reused_total",
		"fleetd_device_days_total",
		"fleetd_device_days_per_second",
		"fleetd_checkpoint_bytes_total",
		"fleetd_checkpoint_writes_total",
		"fleetd_checkpoint_fsync_seconds",
		"fleetd_campaign_submits_total",
		"fleetd_campaign_resumes_total",
		"fleetd_campaign_forks_total",
		"fleetd_http_requests_total",
		"fleetd_http_request_seconds",
		"fleetd_http_panics_total",
	} {
		if !strings.Contains(text, "# TYPE "+family) {
			t.Errorf("/metrics missing family %s", family)
		}
	}
	// The campaign ran 3 epochs (5 days, every=2): counted, not reused.
	if !strings.Contains(text, "fleetd_cells_computed_total 3") {
		t.Errorf("/metrics cells_computed:\n%s", text)
	}
	// dev-days = 4 devices x 5 days.
	if !strings.Contains(text, "fleetd_device_days_total 20") {
		t.Errorf("/metrics device_days:\n%s", text)
	}

	evs, err := cl.Events(st.ID, 0)
	if err != nil {
		t.Fatalf("Events: %v", err)
	}
	if len(evs) == 0 {
		t.Fatal("no journal events after a completed campaign")
	}
	for i, e := range evs {
		if e.Seq != uint64(i)+1 {
			t.Fatalf("event %d: seq %d, want %d", i, e.Seq, i+1)
		}
	}
	if evs[0].Type != "submitted" || evs[len(evs)-1].Type != "done" {
		t.Errorf("journal spans %s..%s, want submitted..done", evs[0].Type, evs[len(evs)-1].Type)
	}

	// ?since pages the journal.
	tail, err := cl.Events(st.ID, evs[len(evs)-2].Seq)
	if err != nil {
		t.Fatalf("Events since: %v", err)
	}
	if len(tail) != 1 || tail[0].Seq != evs[len(evs)-1].Seq {
		t.Errorf("since query returned %d events, want the final one", len(tail))
	}

	// status carries the journal cursor.
	got, err := cl.Status(st.ID)
	if err != nil {
		t.Fatalf("Status: %v", err)
	}
	if got.LastSeq != evs[len(evs)-1].Seq {
		t.Errorf("status last_seq = %d, want %d", got.LastSeq, evs[len(evs)-1].Seq)
	}

	// jsonl format: one JSON object per line, served with the standard
	// newline-delimited-JSON content type.
	resp, err = http.Get(srv.URL + "/v1/campaigns/" + st.ID + "/events?format=jsonl")
	if err != nil {
		t.Fatalf("GET events jsonl: %v", err)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Errorf("jsonl Content-Type = %q, want application/x-ndjson", ct)
	}
	raw, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	lines := strings.Split(strings.TrimSpace(string(raw)), "\n")
	if len(lines) != len(evs) {
		t.Fatalf("jsonl returned %d lines, want %d", len(lines), len(evs))
	}
	var first obs.Event
	if err := json.Unmarshal([]byte(lines[0]), &first); err != nil || first.Seq != 1 {
		t.Errorf("jsonl line 0 = %q (err %v)", lines[0], err)
	}
}

// TestWatchSSE subscribes to an in-flight campaign's /watch stream and
// requires live delivery: progress events arrive while the campaign runs,
// in contiguous seq order, ending with the terminal event.
func TestWatchSSE(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	srv := httptest.NewServer(NewServer(m))
	defer srv.Close()
	cl := &Client{BaseURL: srv.URL}

	spec := tinySpec()
	spec.Days = 10
	spec.CheckpointEvery = 1 // one commit per day: plenty of live events
	st, err := cl.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}

	errStop := fmt.Errorf("saw terminal event")
	var seen []obs.Event
	err = cl.Watch(st.ID, 0, func(e obs.Event) error {
		seen = append(seen, e)
		if e.Type == "done" || e.Type == "failed" {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("watch ended early (err %v) after %d events", err, len(seen))
	}
	if seen[len(seen)-1].Type != "done" {
		t.Fatalf("terminal event = %s, want done", seen[len(seen)-1].Type)
	}
	for i, e := range seen {
		if e.Seq != uint64(i)+1 {
			t.Fatalf("stream event %d: seq %d, want %d", i, e.Seq, i+1)
		}
	}
	counts := map[string]int{}
	for _, e := range seen {
		counts[e.Type]++
	}
	if counts["epoch_committed"] != 10 {
		t.Errorf("saw %d epoch_committed events, want 10", counts["epoch_committed"])
	}
	if counts["checkpoint_written"] != 10 {
		t.Errorf("saw %d checkpoint_written events, want 10", counts["checkpoint_written"])
	}
	if counts["submitted"] != 1 || counts["done"] != 1 {
		t.Errorf("lifecycle counts = %v", counts)
	}

	// Reconnect with ?since= replays only the tail.
	mid := seen[len(seen)/2].Seq
	var tail []obs.Event
	err = cl.Watch(st.ID, mid, func(e obs.Event) error {
		tail = append(tail, e)
		if e.Type == "done" {
			return errStop
		}
		return nil
	})
	if err != errStop {
		t.Fatalf("reconnect watch: %v", err)
	}
	if tail[0].Seq != mid+1 {
		t.Errorf("reconnect replay starts at seq %d, want %d", tail[0].Seq, mid+1)
	}
}
