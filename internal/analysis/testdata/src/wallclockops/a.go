// Package a exercises the //flashvet:ops-domain opt-out: a package with a
// well-formed declaration may read the host clock (directly or via
// obs.WallNow) with no findings at all.
package a

import (
	"time"

	"flashwear/internal/obs"
	"flashwear/internal/runtrace"
)

//flashvet:ops-domain this fixture package measures the real process, nothing flows back into simulation results

func measure() time.Duration {
	start := time.Now() // ok: ops-domain package
	time.Sleep(0)       // ok
	_ = obs.WallNow()   // ok: ops-domain packages may use the ops clock source
	tr := runtrace.New(0, nil)
	_ = tr.Totals()   // ok: ops-domain packages may read measured wall time back
	_ = tr.Snapshot() // ok
	return time.Since(start)
}
