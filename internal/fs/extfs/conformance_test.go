package extfs

import (
	"testing"

	"flashwear/internal/blockdev"
	"flashwear/internal/device"
	"flashwear/internal/faultinject"
	"flashwear/internal/fs"
	"flashwear/internal/fs/fstest"
	"flashwear/internal/simclock"
)

// TestConformance runs the shared fs.FileSystem contract suite on extfs,
// both on a RAM device and on a simulated flash device.
func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fs.FileSystem {
		dev, err := blockdev.NewMem(16<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		v, err := Mount(dev, fs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	})
}

// TestCrashConformance runs the shared crash-consistency suite on extfs,
// with an offline fsck after every recovery.
func TestCrashConformance(t *testing.T) {
	var dev *blockdev.MemDevice
	fstest.RunCrash(t, func(t *testing.T) (fstest.CrashFS, func(t *testing.T) fstest.CrashFS) {
		d, err := blockdev.NewMem(16<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		dev = d
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		mount := func(t *testing.T) fstest.CrashFS {
			v, err := Mount(dev, fs.Options{})
			if err != nil {
				t.Fatalf("remount: %v", err)
			}
			return v
		}
		return mount(t), mount
	}, func(t *testing.T) {
		rep, err := Fsck(dev)
		if err != nil {
			t.Fatalf("fsck: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("fsck after recovery: %v", rep.Corruptions)
		}
	})
}

// faultyCrashFS couples the file system's crash with the device's power
// rail: SimulateCrash drops FS volatile state AND cuts device power, so
// recovery exercises the FTL's OOB-scan rebuild underneath journal replay.
type faultyCrashFS struct {
	fstest.CrashFS
	dev *device.Device
}

func (f faultyCrashFS) SimulateCrash() {
	f.CrashFS.SimulateCrash()
	f.dev.CutPower()
}

// TestCrashConformanceOnFaultyFlash runs the crash suite on a simulated
// flash device under an injected fault plan — transient read faults and
// program failures firing underneath the journal — with every crash also
// cutting device power. Everything the FS synced must still survive, and
// fsck must stay clean, through FTL recovery plus journal replay combined.
func TestCrashConformanceOnFaultyFlash(t *testing.T) {
	var dev *device.Device
	fstest.RunCrash(t, func(t *testing.T) (fstest.CrashFS, func(t *testing.T) fstest.CrashFS) {
		prof := device.ProfileEMMC8().Scaled(256)
		prof.Faults = &faultinject.Plan{
			Seed:             17,
			ReadFaultProb:    2e-3,
			ProgramFaultProb: 1e-3,
			EraseFaultProb:   1e-4,
		}
		d, err := device.New(prof, simclock.New())
		if err != nil {
			t.Fatal(err)
		}
		dev = d
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		mount := func(t *testing.T) fstest.CrashFS {
			if dev.PowerLost() {
				if err := dev.PowerCycle(); err != nil {
					t.Fatalf("power cycle: %v", err)
				}
			}
			v, err := Mount(dev, fs.Options{})
			if err != nil {
				t.Fatalf("remount: %v", err)
			}
			return faultyCrashFS{v, dev}
		}
		return mount(t), mount
	}, func(t *testing.T) {
		rep, err := Fsck(dev)
		if err != nil {
			t.Fatalf("fsck: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("fsck after faulty-flash recovery: %v", rep.Corruptions)
		}
	})
}

// TestConformanceOnFlash runs the same contract suite with extfs mounted on
// a real simulated flash device (FTL, GC, wear and all) instead of RAM.
func TestConformanceOnFlash(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fs.FileSystem {
		dev, err := device.New(device.ProfileEMMC8().Scaled(256), simclock.New())
		if err != nil {
			t.Fatal(err)
		}
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		v, err := Mount(dev, fs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	})
}
