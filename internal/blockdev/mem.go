package blockdev

import "fmt"

// MemDevice is a RAM-backed Device for file-system unit tests. Sectors are
// allocated lazily so sparse devices stay cheap.
type MemDevice struct {
	size    int64
	sector  int
	sectors map[int64][]byte
	flushes int64
}

// NewMem returns a memory device of the given size and sector size.
func NewMem(size int64, sectorSize int) (*MemDevice, error) {
	if sectorSize <= 0 || size <= 0 || size%int64(sectorSize) != 0 {
		return nil, fmt.Errorf("blockdev: NewMem(size=%d, sector=%d): invalid", size, sectorSize)
	}
	return &MemDevice{size: size, sector: sectorSize, sectors: make(map[int64][]byte)}, nil
}

// Size implements Device.
func (m *MemDevice) Size() int64 { return m.size }

// SectorSize implements Device.
func (m *MemDevice) SectorSize() int { return m.sector }

// Flushes returns how many times Flush was called (for FS barrier tests).
func (m *MemDevice) Flushes() int64 { return m.flushes }

// ReadAt implements Device.
func (m *MemDevice) ReadAt(p []byte, off int64) error {
	if err := CheckRange(m, off, int64(len(p))); err != nil {
		return err
	}
	for i := 0; i < len(p); i += m.sector {
		sec := (off + int64(i)) / int64(m.sector)
		if s, ok := m.sectors[sec]; ok {
			copy(p[i:i+m.sector], s)
		} else {
			clear(p[i : i+m.sector])
		}
	}
	return nil
}

// WriteAt implements Device.
func (m *MemDevice) WriteAt(p []byte, off int64) error {
	if err := CheckRange(m, off, int64(len(p))); err != nil {
		return err
	}
	for i := 0; i < len(p); i += m.sector {
		sec := (off + int64(i)) / int64(m.sector)
		s, ok := m.sectors[sec]
		if !ok {
			s = make([]byte, m.sector)
			m.sectors[sec] = s
		}
		copy(s, p[i:i+m.sector])
	}
	return nil
}

// WriteAccounted implements Device; for a RAM device it simply drops any
// previous payload in the range.
func (m *MemDevice) WriteAccounted(off, length int64) error {
	return m.Discard(off, length)
}

// Discard implements Device.
func (m *MemDevice) Discard(off, length int64) error {
	if err := CheckRange(m, off, length); err != nil {
		return err
	}
	for i := int64(0); i < length; i += int64(m.sector) {
		delete(m.sectors, (off+i)/int64(m.sector))
	}
	return nil
}

// Flush implements Device.
func (m *MemDevice) Flush() error {
	m.flushes++
	return nil
}
