// Command flashvet statically enforces the simulator's determinism and
// safety invariants: no wall-clock time, no global or constant-seeded
// RNGs, no map-iteration order in output, integer-only fleet merges, no
// discarded storage-mutation errors. Run it standalone over package
// patterns, or as a `go vet -vettool` backend. See DESIGN.md §10.
//
// Usage:
//
//	flashvet ./...
//	go vet -vettool=$(pwd)/bin/flashvet ./...
//
// Exit status: 0 clean, 1 internal/usage error, 2 findings.
package main

import (
	"os"

	"flashwear/internal/analysis/flashvet"
)

func main() {
	os.Exit(flashvet.Main(os.Args[1:]))
}
