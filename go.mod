module flashwear

go 1.22
