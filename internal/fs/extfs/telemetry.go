package extfs

import "flashwear/internal/telemetry"

// Instrument registers the volume's journaling counters with reg under
// "fs.*{fs=extfs}". The metadata-amplification gauge is journal plus
// checkpoint block writes per file-content block write — the FS-level
// contribution to the device's write amplification (§4.3's "advanced
// factors"). Pure observers only; see DESIGN.md §7.
func (v *FS) Instrument(reg *telemetry.Registry) {
	n := func(base string) string { return telemetry.Name("fs."+base, "fs", "extfs") }
	reg.CounterFunc(n("journal_commits"), func() int64 { return v.statJournalCommits })
	reg.CounterFunc(n("journal_blocks"), func() int64 { return v.statJournalBlocks })
	reg.CounterFunc(n("checkpoint_blocks"), func() int64 { return v.statCheckpointWrites })
	reg.CounterFunc(n("data_blocks"), func() int64 { return v.statDataBlocks })
	reg.CounterFunc(n("replayed_txns"), func() int64 { return int64(v.statReplayedTxns) })
	reg.GaugeFunc(n("free_blocks"), func() float64 { return float64(v.freeBlocks) })
	reg.GaugeFunc(n("metadata_amp"), func() float64 {
		if v.statDataBlocks == 0 {
			return 0
		}
		return float64(v.statJournalBlocks+v.statCheckpointWrites) / float64(v.statDataBlocks)
	})
}
