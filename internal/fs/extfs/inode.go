package extfs

import (
	"encoding/binary"
	"fmt"
)

// Inode modes.
const (
	modeFree = 0
	modeFile = 1
	modeDir  = 2
)

// inode is the in-memory form of a 256-byte on-disk inode.
type inode struct {
	ino   uint32
	mode  uint16
	links uint16
	size  int64
	mtime int64 // simulated nanoseconds; advisory only

	direct    [NDirect]uint32
	indirect  uint32
	dindirect uint32

	// hardDirty: allocation/size/link changes that must be journaled for
	// consistency. softDirty: timestamp-only changes that lazytime defers.
	hardDirty bool
	softDirty bool
}

func (in *inode) encodeInto(b []byte) {
	le := binary.LittleEndian
	le.PutUint16(b[0:], in.mode)
	le.PutUint16(b[2:], in.links)
	le.PutUint64(b[4:], uint64(in.size))
	le.PutUint64(b[12:], uint64(in.mtime))
	for i, p := range in.direct {
		le.PutUint32(b[20+4*i:], p)
	}
	le.PutUint32(b[20+4*NDirect:], in.indirect)
	le.PutUint32(b[24+4*NDirect:], in.dindirect)
}

func decodeInode(ino uint32, b []byte) *inode {
	le := binary.LittleEndian
	in := &inode{
		ino:   ino,
		mode:  le.Uint16(b[0:]),
		links: le.Uint16(b[2:]),
		size:  int64(le.Uint64(b[4:])),
		mtime: int64(le.Uint64(b[12:])),
	}
	for i := range in.direct {
		in.direct[i] = le.Uint32(b[20+4*i:])
	}
	in.indirect = le.Uint32(b[20+4*NDirect:])
	in.dindirect = le.Uint32(b[24+4*NDirect:])
	return in
}

// itableBlockOf returns the inode-table block and byte offset for an inode.
func (v *FS) itableBlockOf(ino uint32) (blk uint32, off int, err error) {
	if ino < 1 || ino >= v.sb.inodeCount {
		return 0, 0, fmt.Errorf("%w: inode %d out of range", ErrCorrupt, ino)
	}
	return v.sb.itableStart + ino/InodesPerBlock, int(ino%InodesPerBlock) * InodeSize, nil
}

// loadInode fetches an inode through the cache.
func (v *FS) loadInode(ino uint32) (*inode, error) {
	if in, ok := v.inodes[ino]; ok {
		return in, nil
	}
	blk, off, err := v.itableBlockOf(ino)
	if err != nil {
		return nil, err
	}
	b, err := v.readMeta(blk)
	if err != nil {
		return nil, err
	}
	in := decodeInode(ino, b[off:off+InodeSize])
	v.inodes[ino] = in
	return in, nil
}

// flushInode serialises an inode into its (cached) table block and stages
// that block for journaling.
func (v *FS) flushInode(in *inode) error {
	blk, off, err := v.itableBlockOf(in.ino)
	if err != nil {
		return err
	}
	b, err := v.readMeta(blk)
	if err != nil {
		return err
	}
	in.encodeInto(b[off : off+InodeSize])
	v.stageMeta(blk, b)
	in.hardDirty = false
	in.softDirty = false
	return nil
}

// allocInode finds a free inode slot, marks it allocated with the given
// mode, and returns it.
func (v *FS) allocInode(mode uint16) (*inode, error) {
	for ino := uint32(1); ino < v.sb.inodeCount; ino++ {
		in, err := v.loadInode(ino)
		if err != nil {
			return nil, err
		}
		if in.mode == modeFree {
			*in = inode{ino: ino, mode: mode, links: 1, hardDirty: true}
			in.mtime = v.nowNanos()
			return in, nil
		}
	}
	return nil, fmt.Errorf("extfs: out of inodes")
}
