// Package experiments regenerates every table and figure of the paper's
// evaluation (§4) on the simulation stack. Each experiment is a pure
// function of a Config so the CLI tools and the benchmark harness share one
// implementation; see DESIGN.md for the experiment index.
//
// Results are reported at full device scale: experiments run on profiles
// whose capacity is divided by Config.Scale and multiply volumes and times
// back, which preserves wear-per-(scaled)-byte and bandwidths exactly.
package experiments

import (
	"fmt"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/blockdev"
	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/fs"
	"flashwear/internal/fs/extfs"
	"flashwear/internal/fs/f2fs"
	"flashwear/internal/ftl"
	"flashwear/internal/simclock"
	"flashwear/internal/telemetry"
	"flashwear/internal/wtrace"
)

// Config controls experiment cost.
type Config struct {
	// Scale divides device capacities. 1 reproduces full-size devices
	// (slow); the CLI default is 256; tests/benches use 1024–4096.
	Scale int64
	// MaxLevel stops wear runs once the Type B indicator reaches this
	// level (11 = run to estimated end of life).
	MaxLevel int
	// Progress, if non-nil, receives one line per completed phase.
	Progress func(format string, args ...any)
	// MetricsEvery, when positive, samples each wear run's telemetry
	// registry at this full-scale simulated cadence (the per-device cadence
	// divides by the effective scale, like every reported time).
	MetricsEvery time.Duration
	// MetricsSink receives each run's sampled series; series times are at
	// device scale, so full-scale hours are row.At.Hours() * eff.
	MetricsSink func(label string, eff int64, series *telemetry.Series)
	// WearSink, when non-nil, attaches a wtrace tracer to each wear run's
	// device (at birth, before mkfs) and hands it over when the run ends.
	// Setup runs as origin "os", the attack workload as "workload"; ledger
	// counts are device-scale — multiply by eff for full scale.
	WearSink func(label string, eff int64, tr *wtrace.Tracer)
	// WearEvents, when positive, also buffers up to this many Chrome trace
	// events on the tracer handed to WearSink.
	WearEvents int
}

// Defaults fills zero fields: scale 256, run to level 11.
func (c Config) Defaults() Config {
	if c.Scale <= 0 {
		c.Scale = 256
	}
	if c.MaxLevel <= 0 {
		c.MaxLevel = 11
	}
	if c.Progress == nil {
		c.Progress = func(string, ...any) {}
	}
	return c
}

// mountFS formats and mounts the requested file system on a device in
// data-accounting mode (wear experiments never read file payloads back).
func mountFS(dev blockdev.Device, kind android.FSKind) (fs.FileSystem, error) {
	opts := fs.Options{DataAccounting: true}
	switch kind {
	case android.FSF2FS:
		if err := f2fs.Mkfs(dev); err != nil {
			return nil, err
		}
		return f2fs.Mount(dev, opts)
	default:
		if err := extfs.Mkfs(dev); err != nil {
			return nil, err
		}
		return extfs.Mount(dev, opts)
	}
}

// newDevice builds a scaled device on a fresh clock, returning the
// *effective* scale divisor (Scaled clamps tiny capacities, so results
// must be multiplied by what was actually achieved, not what was asked).
func newDevice(prof device.Profile, scale int64) (*device.Device, *simclock.Clock, int64, error) {
	clock := simclock.New()
	dev, err := device.New(prof.Scaled(scale), clock)
	if err != nil {
		return nil, nil, 0, err
	}
	return dev, clock, prof.EffectiveScale(scale), nil
}

// attackFileSize returns the paper's 100 MB file size at scale.
func attackFileSize(scale int64) int64 {
	size := int64(100<<20) / scale
	if size < 64<<10 {
		size = 64 << 10
	}
	return size
}

// fitFileSet shrinks a file set that would not fit the (scaled) device,
// keeping the paper's "<3% of capacity" spirit.
func fitFileSet(set *workloadFileSet, devSize int64) {
	if set.TotalBytes() > devSize/10 {
		size := devSize / 40
		if size < set.ReqBytes {
			size = set.ReqBytes * 16
		}
		set.FileSize = size
	}
}

// runFileWear mounts a file system on a device and drives the paper's
// file-rewrite workload until the Type B indicator reaches maxLevel or the
// device bricks. This is the common engine of Figures 2–4.
func runFileWear(prof device.Profile, kind android.FSKind, cfg Config) (core.RunReport, error) {
	cfg = cfg.Defaults()
	dev, clock, eff, err := newDevice(prof, cfg.Scale)
	if err != nil {
		return core.RunReport{}, err
	}
	// Telemetry attaches at device birth — before mkfs — so the counters
	// include the file-system fill (DESIGN.md §7). The sampler starts only
	// after every instrument is registered (a sample firing mid-mkfs would
	// otherwise freeze the series' column layout too early).
	// Wear tracing also attaches at birth, so mkfs and the FS fill land on
	// origin "os" and everything else is attributable from the first write.
	var tr *wtrace.Tracer
	if cfg.WearSink != nil {
		tr = wtrace.New()
		if cfg.WearEvents > 0 {
			tr.EnableEvents(cfg.WearEvents)
		}
		dev.EnableWearTrace(tr)
	}
	var reg *telemetry.Registry
	if cfg.MetricsEvery > 0 && cfg.MetricsSink != nil {
		reg = telemetry.NewRegistry()
		dev.Instrument(reg)
	}
	fsys, err := mountFS(dev, kind)
	if err != nil {
		return core.RunReport{}, fmt.Errorf("%s/%s: %w", prof.Name, kind, err)
	}
	if tr != nil {
		fsys = wtrace.TagFS(fsys, tr, tr.Origin("workload"))
	}
	var sampler *telemetry.Sampler
	if reg != nil {
		if in, ok := fsys.(interface{ Instrument(*telemetry.Registry) }); ok {
			in.Instrument(reg)
		}
		scaledEvery := cfg.MetricsEvery / time.Duration(eff)
		if scaledEvery <= 0 {
			return core.RunReport{}, fmt.Errorf("%s/%s: metrics cadence %v vanishes at scale %d",
				prof.Name, kind, cfg.MetricsEvery, eff)
		}
		sampler = telemetry.NewSampler(reg, clock, scaledEvery)
	}
	set := newAttackSet(fsys, eff)
	fitFileSet(set, dev.Size())
	if err := set.Setup(); err != nil {
		return core.RunReport{}, fmt.Errorf("%s/%s: setup: %w", prof.Name, kind, err)
	}
	runner := core.NewRunner(dev, clock, eff)
	runner.Pattern = "4 KiB rand rewrite"
	runner.SpaceUtil = dev.FTL().Utilisation()
	if err := runner.RunPhase(set.Step, 0, runner.UntilLevel(ftl.PoolB, cfg.MaxLevel)); err != nil {
		return core.RunReport{}, fmt.Errorf("%s/%s: %w", prof.Name, kind, err)
	}
	if sampler != nil {
		sampler.Stop()
		sampler.Final()
		cfg.MetricsSink(fmt.Sprintf("%s/%s", prof.Name, kind), eff, sampler.Series())
	}
	if tr != nil {
		cfg.WearSink(fmt.Sprintf("%s/%s", prof.Name, kind), eff, tr)
	}
	return runner.Report(), nil
}
