package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
)

// VetConfig mirrors the JSON config cmd/go hands a -vettool for each
// package (see buildVetConfig in cmd/go/internal/work/exec.go). The
// protocol: the tool is invoked as `flashvet <flags> <objdir>/vet.cfg`,
// prints diagnostics to stderr, exits 0 when clean and nonzero on
// findings, and writes its (for us, empty) facts file to VetxOutput so
// the go command can cache the run.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunVetTool analyzes the single package described by the vet config file
// at cfgPath and returns the process exit code: 0 clean, 1 internal
// failure, 2 findings. checkUnusedIgnores should be set only when the
// full suite runs (see flashvet.Main).
func RunVetTool(analyzers []*Analyzer, cfgPath string, checkUnusedIgnores bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	// Flashvet analyzers produce no facts, but the go command caches the
	// vetx output to decide whether the run completed; write it first so
	// even a clean package leaves the expected artifact.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("flashvet: no facts\n"), 0o666); err != nil {
			fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		// Dependency-only visit: nothing to report, and (having no facts)
		// nothing to compute either.
		return 0
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, vetExports(cfg))
	pkg, err := check(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		return 1
	}
	findings, err := Run(fset, []*Package{pkg}, analyzers, checkUnusedIgnores)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

// vetExports adapts the config's import-path remapping and export-data
// table to the loader's flat path→file map.
func vetExports(cfg VetConfig) map[string]string {
	exports := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// Source import paths that the build resolved elsewhere (vendoring,
	// test variants) alias their canonical package's export data.
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok && exports[src] == "" {
			exports[src] = file
		}
	}
	return exports
}
