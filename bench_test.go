// The benchmark harness regenerates every table and figure of the paper's
// evaluation (one benchmark per exhibit) plus the ablation studies in
// DESIGN.md §4. Each benchmark runs the corresponding experiment on
// capacity-scaled devices and reports the headline quantities as custom
// metrics, so
//
//	go test -bench=. -benchmem
//
// prints the reproduction next to its timing. The shapes to check against
// the paper are recorded in EXPERIMENTS.md.
package flashwear_bench

import (
	"context"
	"fmt"
	"runtime"
	"strings"
	"testing"

	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/experiments"
	"flashwear/internal/fleet"
	"flashwear/internal/ftl"
	"flashwear/internal/nand"
	"flashwear/internal/telemetry"
)

// metric sanitises a label into a benchmark metric unit (no whitespace).
func metric(label string) string {
	return strings.ReplaceAll(label, " ", "_")
}

// benchCfg keeps benchmark iterations affordable: devices scaled to
// minimum size, runs bounded to the first few indicator increments.
func benchCfg(maxLevel int) experiments.Config {
	return experiments.Config{Scale: 2048, MaxLevel: maxLevel}
}

// BenchmarkFigure1Sequential regenerates Figure 1a: sequential write
// bandwidth vs request size for the five devices. Reported metrics are the
// 4 KiB and plateau (16 MiB) bandwidths of the eMMC 16GB curve.
func BenchmarkFigure1Sequential(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure1(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Device == "eMMC 16GB" && p.ReqBytes == 4096 {
				b.ReportMetric(p.SeqMiBps, "eMMC16-4KiB-MiB/s")
			}
			if p.Device == "eMMC 16GB" && p.ReqBytes == 16<<20 {
				b.ReportMetric(p.SeqMiBps, "eMMC16-16MiB-MiB/s")
			}
		}
	}
}

// BenchmarkFigure1Random regenerates Figure 1b, reporting the uSD card's
// random-write collapse (its 4 KiB random bandwidth) against its
// sequential rate.
func BenchmarkFigure1Random(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, err := experiments.Figure1(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.Device == "uSD 16GB" && p.ReqBytes == 4096 {
				b.ReportMetric(p.RandMiBps, "uSD-4KiB-rand-MiB/s")
				b.ReportMetric(p.SeqMiBps, "uSD-4KiB-seq-MiB/s")
			}
		}
	}
}

// BenchmarkFigure2WearPerIncrement regenerates Figure 2: host GiB per
// wear-indicator increment on the two external eMMC chips (paper: <=992
// GiB for the 8GB chip, ~2210 GiB for the 16GB chip).
func BenchmarkFigure2WearPerIncrement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Figure2(benchCfg(4))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			name := metric(fmt.Sprintf("%s-GiB/incr", r.Label))
			b.ReportMetric(r.Report.MeanHostGiBPerIncrement(ftl.PoolB), name)
		}
	}
}

// BenchmarkFigure3TimePerIncrement regenerates Figure 3: hours per
// indicator increment across the five configurations (paper range:
// ~2.5-52 h).
func BenchmarkFigure3TimePerIncrement(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Figure3(benchCfg(3))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			incs := r.Report.IncrementsFor(ftl.PoolB)
			if len(incs) > 0 {
				b.ReportMetric(incs[len(incs)-1].Hours, metric(r.Label+"-h/incr"))
			}
		}
	}
}

// BenchmarkFigure4FilesystemWear regenerates Figure 4: host GiB per
// increment on Moto E with ext4 vs F2FS (paper: F2FS needs ~half the host
// volume because its node writes double the I/O reaching flash).
func BenchmarkFigure4FilesystemWear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Figure4(benchCfg(3))
		if err != nil {
			b.Fatal(err)
		}
		var ext4, f2 float64
		for _, r := range runs {
			m := r.Report.MeanHostGiBPerIncrement(ftl.PoolB)
			b.ReportMetric(m, metric(r.Label+"-GiB/incr"))
			if r.Label == "Moto E 8GB F2FS" {
				f2 = m
			} else {
				ext4 = m
			}
		}
		if ext4 > 0 {
			b.ReportMetric(f2/ext4, "F2FS/ext4-ratio")
		}
	}
}

// BenchmarkTable1HybridWear regenerates Table 1: the hybrid eMMC 16GB's
// Type A and Type B indicators across the workload phases. Reported: the
// steady Type B volume, Type A's first (pre-merge) increment, and Type A's
// post-merge increment (paper: ~2210, ~11936, ~439 GiB).
func BenchmarkTable1HybridWear(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rep, err := experiments.Table1(experiments.Config{Scale: 2048, MaxLevel: 10})
		if err != nil {
			b.Fatal(err)
		}
		bIncs := rep.IncrementsFor(ftl.PoolB)
		aIncs := rep.IncrementsFor(ftl.PoolA)
		if len(bIncs) > 1 {
			b.ReportMetric(bIncs[1].HostGiB, "TypeB-GiB/incr")
		}
		if len(aIncs) > 0 {
			b.ReportMetric(aIncs[0].HostGiB, "TypeA-first-GiB")
		}
		if len(aIncs) > 1 {
			b.ReportMetric(aIncs[len(aIncs)-1].HostGiB, "TypeA-merged-GiB")
		}
	}
}

// BenchmarkEnvelopeVsMeasured regenerates the §2.3 vs §4.3 comparison: the
// factor by which the back-of-the-envelope estimate overstates endurance
// (paper: "roughly three times").
func BenchmarkEnvelopeVsMeasured(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Figure2(benchCfg(3))
		if err != nil {
			b.Fatal(err)
		}
		rows := experiments.EnvelopeComparison(runs, map[string]int64{
			"eMMC 8GB": 8 << 30, "eMMC 16GB": 16 << 30,
		})
		for _, r := range rows {
			b.ReportMetric(r.ShortfallFactor, metric(r.Device+"-shortfall-x"))
		}
	}
}

// BenchmarkDetectionEvasion regenerates §4.4's Detection experiment:
// continuous vs stealth attacks on a Moto E. Reported: the stealth run's
// wall-clock slowdown factor and what the monitors saw.
func BenchmarkDetectionEvasion(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.Detection(experiments.Config{Scale: 4096})
		if err != nil {
			b.Fatal(err)
		}
		var cont, stealth core.AttackReport
		for _, r := range runs {
			if r.Mode == core.Continuous {
				cont = r.Report
			} else {
				stealth = r.Report
			}
		}
		if cont.Hours > 0 {
			b.ReportMetric(stealth.Hours/cont.Hours, "stealth-slowdown-x")
		}
		b.ReportMetric(stealth.PowerJoulesAttributed, "stealth-joules-seen")
		b.ReportMetric(float64(stealth.ProcessObservedCount), "stealth-sightings")
	}
}

// BenchmarkBudgetPhoneBricking regenerates the BLU observation: budget
// phones without reliable indicators still brick within two weeks.
func BenchmarkBudgetPhoneBricking(b *testing.B) {
	for i := 0; i < b.N; i++ {
		runs, err := experiments.BudgetPhones(experiments.Config{Scale: 2048})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range runs {
			b.ReportMetric(r.Days, metric(r.Label+"-days-to-brick"))
		}
	}
}

// BenchmarkMitigationPolicies evaluates the §4.5 defences: projected
// lifetime under each policy and the collateral damage to a benign burst.
func BenchmarkMitigationPolicies(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Mitigation(experiments.Config{Scale: 4096})
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.ProjectedLifeDays, metric(string(r.Policy)+"-life-days"))
			b.ReportMetric(r.BenignBurstSeconds, metric(string(r.Policy)+"-burst-s"))
		}
	}
}

// --- Ablations (DESIGN.md §4) ---

func BenchmarkAblationGCPolicy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationGCPolicy(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.WA, metric(r.Variant+"-WA"))
		}
	}
}

func BenchmarkAblationWearLeveling(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationWearLeveling(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(float64(r.EraseSpread), metric(r.Variant+"-spread"))
		}
	}
}

func BenchmarkAblationOverProvisioning(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationOverProvisioning(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.WA, metric(r.Variant+"-WA"))
		}
	}
}

func BenchmarkAblationPoolMerge(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationPoolMerge(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Extra, metric(r.Variant+"-TypeA-life-pct"))
		}
	}
}

func BenchmarkAblationSLCCache(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSLCCache(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Extra, metric(r.Variant+"-TypeA-life-pct"))
		}
	}
}

func BenchmarkAblationECCStrength(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationECCStrength(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Extra, metric(r.Variant+"-GiB-endured"))
		}
	}
}

// BenchmarkTechnologyTrend is the §1 extension: the eMMC 8GB rebuilt with
// TLC cells wears out in a fraction of the MLC volume ("technology trends
// ... will exacerbate this problem").
func BenchmarkTechnologyTrend(b *testing.B) {
	for i := 0; i < b.N; i++ {
		mlc, err := experiments.Figure2(benchCfg(3))
		if err != nil {
			b.Fatal(err)
		}
		tlc, err := experiments.TLCTrend(benchCfg(3))
		if err != nil {
			b.Fatal(err)
		}
		var mlcGiB float64
		for _, r := range mlc {
			if r.Label == "eMMC 8GB" {
				mlcGiB = r.Report.MeanHostGiBPerIncrement(ftl.PoolB)
			}
		}
		tlcGiB := tlc.Report.MeanHostGiBPerIncrement(ftl.PoolB)
		b.ReportMetric(mlcGiB, "MLC-GiB/incr")
		b.ReportMetric(tlcGiB, "TLC-GiB/incr")
		if tlcGiB > 0 {
			b.ReportMetric(mlcGiB/tlcGiB, "MLC/TLC-endurance-x")
		}
	}
}

// BenchmarkExtensionHealing runs the §2.2 self-healing extension: the same
// bursty, idle-heavy workload on a normal chip vs one that detraps while
// idle. Healing lowers the physical wear the workload leaves behind.
func BenchmarkExtensionHealing(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.Healing(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.PhysicalWearPct, metric(r.Variant+"-wear-pct"))
		}
	}
}

// BenchmarkClassifierEval runs the §4.5 classifier against a realistic app
// population (camera, chat, updater, the Spotify cache bug, the attack):
// the two harmful writers score high, the benign ones low.
func BenchmarkClassifierEval(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.ClassifierEval(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			b.ReportMetric(r.Score, metric(r.App+"-score"))
		}
	}
}

// BenchmarkFleetScaling runs the same small fleet at 1, 2, and
// GOMAXPROCS(0) workers, reporting devices/sec. Scaling is near-linear on
// multi-core hosts because devices share no state; the aggregates are
// byte-identical at every width (the fleet package's tests assert it).
// Endurance is derated so the bricking devices stay affordable.
func BenchmarkFleetScaling(b *testing.B) {
	prof := device.ProfileBLU4()
	prof.RatedPE = 150
	spec := fleet.Spec{
		Devices:  32,
		Seed:     42,
		Days:     10,
		Scale:    8192,
		Profiles: []fleet.ProfileWeight{{Profile: prof, Weight: 1}},
		Classes: []fleet.ClassWeight{
			{Class: fleet.ClassBenign, Weight: 0.9},
			{Class: fleet.ClassBuggy, Weight: 0.05},
			{Class: fleet.ClassAttack, Weight: 0.05},
		},
	}
	for _, workers := range []int{1, 2, runtime.GOMAXPROCS(0)} {
		spec.Workers = workers
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				res, err := fleet.Run(context.Background(), spec)
				if err != nil {
					b.Fatal(err)
				}
				if res.Total.Devices != int64(spec.Devices) {
					b.Fatalf("simulated %d devices, want %d", res.Total.Devices, spec.Devices)
				}
			}
			b.ReportMetric(float64(spec.Devices)*float64(b.N)/b.Elapsed().Seconds(), "devices/s")
		})
	}
}

// BenchmarkBenignBaseline quantifies the contrast behind the paper's title:
// a normal app population leaves the device with decades of life, while the
// same phone under the attack dies within months.
func BenchmarkBenignBaseline(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, err := experiments.BenignBaseline(benchCfg(0))
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			name := "normal-use"
			if r.LifePctPerYear > 1 {
				name = "with-attack"
			}
			b.ReportMetric(r.YearsToEOL, name+"-years-to-EOL")
		}
	}
}

// --- Telemetry ---

// BenchmarkTelemetryOverhead measures the cost instrumentation adds to the
// FTL's host write path. The bare and instrumented sub-benchmarks run an
// identical write sequence (same seed, same GC/wear-leveling work);
// instrumented attaches a registry first. FTL instruments are pull-based —
// snapshots read the Stats the write path maintains anyway — so
// instrumented ns/op must stay within 5% of bare (it measures at ~0%; an
// atomic push counter here costs ~8%, which is why there isn't one).
func BenchmarkTelemetryOverhead(b *testing.B) {
	newBenchFTL := func(b *testing.B) *ftl.FTL {
		var cfg ftl.Config
		cfg.MainChip = nand.Config{
			Geometry: nand.Geometry{
				Dies: 1, PlanesPerDie: 1, BlocksPerPlane: 64,
				PagesPerBlock: 64, PageSize: 4096,
			},
			Cell: nand.MLC, RatedPE: 50_000_000, Seed: 7,
		}
		f, err := ftl.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		return f
	}
	run := func(instrumented bool) func(b *testing.B) {
		return func(b *testing.B) {
			f := newBenchFTL(b)
			if instrumented {
				f.Attach(telemetry.NewRegistry())
			}
			n := f.LogicalPages()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.WritePage(i%n, nil, 4096); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("bare", run(false))
	b.Run("instrumented", run(true))
}
