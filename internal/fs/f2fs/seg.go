package f2fs

import (
	"fmt"

	"flashwear/internal/fs"
)

// Segment states.
const (
	segFree uint8 = iota
	segActive
	segUsed
	segQuarantine // zero valid blocks, reusable after the next checkpoint
)

// ownerIsNode in the SSA offset column marks a block that holds a node.
const ownerIsNode = ^uint32(0)

// cleanReserve is the number of free segments kept aside so cleaning and
// checkpointing always have room to run: cleaning must start while it can
// still afford its own copy work, or the log wedges (the classic LFS death
// spiral).
const cleanReserve = 4

// logState is an active log: the segment being appended to and the next
// block offset within it.
type logState struct {
	seg uint32
	off uint32
}

func (v *FS) segBase(seg uint32) uint32 { return v.sb.mainStart + seg*SegBlocks }

func (v *FS) segOf(addr uint32) uint32 { return (addr - v.sb.mainStart) / SegBlocks }

func (v *FS) mainIdx(addr uint32) uint32 { return addr - v.sb.mainStart }

func (v *FS) inMain(addr uint32) bool {
	return addr >= v.sb.mainStart && addr < v.sb.mainStart+v.sb.segCount*SegBlocks
}

// markValid records a freshly written block in the SIT/SSA.
func (v *FS) markValid(addr, owner, ofs uint32) {
	i := v.mainIdx(addr)
	if v.validMap[i/64]&(1<<(i%64)) == 0 {
		v.validMap[i/64] |= 1 << (i % 64)
		v.validCount[v.segOf(addr)]++
	}
	v.owner[i] = owner
	v.ofs[i] = ofs
}

// invalidateBlock drops a block from the valid set; a segment whose last
// valid block goes away is quarantined until the next checkpoint.
func (v *FS) invalidateBlock(addr uint32) {
	if !v.inMain(addr) {
		return
	}
	i := v.mainIdx(addr)
	if v.validMap[i/64]&(1<<(i%64)) == 0 {
		return
	}
	v.validMap[i/64] &^= 1 << (i % 64)
	seg := v.segOf(addr)
	v.validCount[seg]--
	if v.validCount[seg] == 0 && v.segState[seg] == segUsed {
		v.segState[seg] = segQuarantine
	}
}

// pickFreeSegment takes a free segment for a log.
func (v *FS) pickFreeSegment() (uint32, error) {
	for s := uint32(0); s < v.sb.segCount; s++ {
		if v.segState[s] == segFree {
			v.segState[s] = segActive
			v.freeSegs--
			return s, nil
		}
	}
	return 0, fs.ErrNoSpace
}

// allocLog returns the next block address of a log, advancing it; it rolls
// to a new segment (cleaning if space is short) when the current one fills.
//
// ls points into the FS, and cleaning triggered below may recursively write
// through the very same log; the re-checks keep a segment opened by that
// recursion from being leaked in the active state.
func (v *FS) allocLog(ls *logState) (uint32, error) {
	if ls.seg != ^uint32(0) && ls.off >= SegBlocks {
		// The filled segment leaves the active state.
		if v.validCount[ls.seg] == 0 {
			v.segState[ls.seg] = segQuarantine
		} else {
			v.segState[ls.seg] = segUsed
		}
		ls.seg = ^uint32(0)
	}
	if ls.seg == ^uint32(0) {
		if v.freeSegs <= cleanReserve && !v.cleaning && !v.checkpointing {
			if err := v.clean(); err != nil {
				return 0, err
			}
		}
		// Cleaning's relocation may have re-opened this log already.
		if ls.seg == ^uint32(0) || ls.off >= SegBlocks {
			seg, err := v.pickFreeSegment()
			if err != nil {
				return 0, err
			}
			ls.seg = seg
			ls.off = 0
		}
	}
	addr := v.segBase(ls.seg) + ls.off
	ls.off++
	return addr, nil
}

// quarantinedSegs counts segments waiting for a checkpoint to free them.
func (v *FS) quarantinedSegs() int {
	n := 0
	for s := uint32(0); s < v.sb.segCount; s++ {
		if v.segState[s] == segQuarantine {
			n++
		}
	}
	return n
}

// clean relocates the fullest-dead segments and checkpoints to convert the
// reclaimed space into free segments — F2FS foreground GC.
//
// Ordering matters: a checkpoint itself consumes log space (node flushes),
// so quarantined space is converted *first*, relocation then runs with that
// headroom, and a final checkpoint frees the victims.
func (v *FS) clean() error {
	v.cleaning = true
	defer func() { v.cleaning = false }()

	if v.quarantinedSegs() > 0 {
		if err := v.checkpointLocked(); err != nil {
			return err
		}
	}
	for rounds := 0; rounds < 16; rounds++ {
		if v.freeSegs+v.quarantinedSegs() > cleanReserve+2 {
			break
		}
		if v.freeSegs < 1 {
			break // keep room for the checkpoint's own writes
		}
		victim := v.pickVictim()
		if victim < 0 {
			break
		}
		if err := v.relocateSegment(uint32(victim)); err != nil {
			return err
		}
		v.statCleanedSegs++
	}
	return v.checkpointLocked()
}

// pickVictim selects the used segment with the fewest valid blocks.
func (v *FS) pickVictim() int {
	best := -1
	bestValid := uint16(SegBlocks)
	for s := uint32(0); s < v.sb.segCount; s++ {
		if v.segState[s] != segUsed {
			continue
		}
		if vc := v.validCount[s]; vc < bestValid {
			best, bestValid = int(s), vc
		}
	}
	if bestValid >= SegBlocks {
		return -1 // only fully-valid segments: nothing reclaimable
	}
	return best
}

// relocateSegment moves every valid block out of a segment.
func (v *FS) relocateSegment(seg uint32) error {
	base := v.segBase(seg)
	for off := uint32(0); off < SegBlocks; off++ {
		addr := base + off
		i := v.mainIdx(addr)
		if v.validMap[i/64]&(1<<(i%64)) == 0 {
			continue
		}
		owner, ofs := v.owner[i], v.ofs[i]
		if ofs == ownerIsNode {
			n, err := v.loadNode(owner)
			if err != nil {
				// NAT no longer references it; treat as dead.
				v.invalidateBlock(addr)
				continue
			}
			if v.natLookup(owner) != addr {
				v.invalidateBlock(addr) // stale copy
				continue
			}
			if err := v.writeNode(n, false); err != nil {
				return err
			}
			continue
		}
		// Data block: verify the owner still points here, then move it.
		n, err := v.loadNode(owner)
		if err != nil {
			v.invalidateBlock(addr)
			continue
		}
		cur, err := v.ptrOf(n, ofs)
		if err != nil || cur != addr {
			v.invalidateBlock(addr)
			continue
		}
		newAddr, err := v.allocLog(&v.dataLog)
		if err != nil {
			return err
		}
		if err := v.copyDataBlock(addr, newAddr, n); err != nil {
			return err
		}
		v.setPtrOf(n, ofs, newAddr)
		n.dirty = true
		v.invalidateBlock(addr)
		v.markValid(newAddr, owner, ofs)
	}
	return nil
}

// ptrOf reads a node's data pointer at slot ofs (direct slot for inodes,
// ptrs slot for indirect nodes).
func (v *FS) ptrOf(n *node, ofs uint32) (uint32, error) {
	if n.isIndirect() {
		if int(ofs) >= len(n.ptrs) {
			return 0, fmt.Errorf("%w: ptr slot %d", ErrCorrupt, ofs)
		}
		return n.ptrs[ofs], nil
	}
	if int(ofs) >= len(n.direct) {
		return 0, fmt.Errorf("%w: direct slot %d", ErrCorrupt, ofs)
	}
	return n.direct[ofs], nil
}

func (v *FS) setPtrOf(n *node, ofs uint32, addr uint32) {
	if n.isIndirect() {
		n.ptrs[ofs] = addr
	} else {
		n.direct[ofs] = addr
	}
}

// copyDataBlock copies a data block during cleaning, honouring data
// accounting for file content (directory content is always real).
func (v *FS) copyDataBlock(from, to uint32, owner *node) error {
	if v.opts.DataAccounting && owner.mode != modeDir {
		return v.dev.WriteAccounted(int64(to)*BlockSize, BlockSize)
	}
	b, err := readBlock(v.dev, from)
	if err != nil {
		return err
	}
	return writeBlock(v.dev, to, b)
}

// writeMetaBlock writes a block that must retain real content.
func (v *FS) writeMetaBlock(addr uint32, b []byte) error {
	return writeBlock(v.dev, addr, b)
}
