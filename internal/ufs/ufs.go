// Package ufs exposes a simulated device through a UFS-style transport
// (JESD220): SCSI command descriptor blocks for block I/O (READ(10),
// WRITE(10), UNMAP, SYNCHRONIZE CACHE) and the Device Health descriptor
// carrying bPreEOLInfo and bDeviceLifeTimeEstA/B — the registers §4.4 reads
// on the Samsung S6, whose UFS storage is "a recent successor to eMMC".
package ufs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flashwear/internal/device"
	"flashwear/internal/ftl"
)

// SCSI operation codes used by the UFS block path.
const (
	OpRead10    = 0x28
	OpWrite10   = 0x2A
	OpUnmap     = 0x42
	OpSyncCache = 0x35
	OpTestUnit  = 0x00
)

// Health descriptor layout (JESD220 Device Health descriptor, abridged).
const (
	HealthDescLen      = 0x25
	HealthPreEOLInfo   = 2 // bPreEOLInfo
	HealthLifeTimeEstA = 3 // bDeviceLifeTimeEstA
	HealthLifeTimeEstB = 4 // bDeviceLifeTimeEstB
	healthDescType     = 0x09
)

// SCSI sense-style errors.
var (
	ErrInvalidCDB = errors.New("ufs: invalid command descriptor block")
	ErrLBARange   = errors.New("ufs: LBA out of range")
	ErrMedium     = errors.New("ufs: medium error")
)

// LU is a UFS logical unit wrapped around a simulated device. Block size is
// 4096 bytes, the UFS norm.
type LU struct {
	dev       *device.Device
	blockSize int
}

// New wraps a device as a logical unit.
func New(dev *device.Device) *LU {
	return &LU{dev: dev, blockSize: 4096}
}

// BlockSize returns the logical block size.
func (l *LU) BlockSize() int { return l.blockSize }

// Capacity returns the LU capacity in logical blocks.
func (l *LU) Capacity() int64 { return l.dev.Size() / int64(l.blockSize) }

// cdb10 parses the LBA and transfer length of a 10-byte CDB.
func cdb10(cdb []byte) (lba uint32, n uint16, err error) {
	if len(cdb) < 10 {
		return 0, 0, fmt.Errorf("%w: %d bytes", ErrInvalidCDB, len(cdb))
	}
	return binary.BigEndian.Uint32(cdb[2:6]), binary.BigEndian.Uint16(cdb[7:9]), nil
}

// Read10 executes READ(10), returning the data-in buffer.
func (l *LU) Read10(cdb []byte) ([]byte, error) {
	if len(cdb) == 0 || cdb[0] != OpRead10 {
		return nil, ErrInvalidCDB
	}
	lba, n, err := cdb10(cdb)
	if err != nil {
		return nil, err
	}
	if int64(lba)+int64(n) > l.Capacity() {
		return nil, fmt.Errorf("%w: lba %d + %d blocks", ErrLBARange, lba, n)
	}
	buf := make([]byte, int(n)*l.blockSize)
	if err := l.dev.ReadAt(buf, int64(lba)*int64(l.blockSize)); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrMedium, err)
	}
	return buf, nil
}

// Write10 executes WRITE(10) with the given data-out buffer.
func (l *LU) Write10(cdb, data []byte) error {
	if len(cdb) == 0 || cdb[0] != OpWrite10 {
		return ErrInvalidCDB
	}
	lba, n, err := cdb10(cdb)
	if err != nil {
		return err
	}
	if len(data) != int(n)*l.blockSize {
		return fmt.Errorf("%w: data %d bytes for %d blocks", ErrInvalidCDB, len(data), n)
	}
	if int64(lba)+int64(n) > l.Capacity() {
		return fmt.Errorf("%w: lba %d + %d blocks", ErrLBARange, lba, n)
	}
	if err := l.dev.WriteAt(data, int64(lba)*int64(l.blockSize)); err != nil {
		return fmt.Errorf("%w: %v", ErrMedium, err)
	}
	return nil
}

// Unmap executes UNMAP over one block range (the common single-descriptor
// form the kernel issues for discard).
func (l *LU) Unmap(lba uint32, blocks uint32) error {
	if int64(lba)+int64(blocks) > l.Capacity() {
		return fmt.Errorf("%w: lba %d + %d blocks", ErrLBARange, lba, blocks)
	}
	return l.dev.Discard(int64(lba)*int64(l.blockSize), int64(blocks)*int64(l.blockSize))
}

// SyncCache executes SYNCHRONIZE CACHE.
func (l *LU) SyncCache() error { return l.dev.Flush() }

// TestUnitReady reports whether the LU can accept commands.
func (l *LU) TestUnitReady() error {
	if l.dev.Bricked() {
		return fmt.Errorf("%w: device failed", ErrMedium)
	}
	return nil
}

// HealthDescriptor renders the Device Health descriptor: the UFS twin of
// eMMC's EXT_CSD life-time bytes, read by `ufs-utils desc -t 9` style
// tooling.
func (l *LU) HealthDescriptor() []byte {
	d := make([]byte, HealthDescLen)
	d[0] = HealthDescLen
	d[1] = healthDescType
	d[HealthPreEOLInfo] = byte(l.dev.PreEOLInfo())
	d[HealthLifeTimeEstA] = byte(l.dev.WearIndicator(ftl.PoolA))
	d[HealthLifeTimeEstB] = byte(l.dev.WearIndicator(ftl.PoolB))
	return d
}

// BuildRead10 assembles a READ(10) CDB (helper for hosts and tests).
func BuildRead10(lba uint32, blocks uint16) []byte {
	cdb := make([]byte, 10)
	cdb[0] = OpRead10
	binary.BigEndian.PutUint32(cdb[2:6], lba)
	binary.BigEndian.PutUint16(cdb[7:9], blocks)
	return cdb
}

// BuildWrite10 assembles a WRITE(10) CDB.
func BuildWrite10(lba uint32, blocks uint16) []byte {
	cdb := make([]byte, 10)
	cdb[0] = OpWrite10
	binary.BigEndian.PutUint32(cdb[2:6], lba)
	binary.BigEndian.PutUint16(cdb[7:9], blocks)
	return cdb
}
