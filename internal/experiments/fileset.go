package experiments

import (
	"flashwear/internal/fs"
	"flashwear/internal/workload"
)

// workloadFileSet aliases the workload type for local helpers.
type workloadFileSet = workload.FileSet

// newAttackSet builds the paper's file set (4 x 100 MB, 4 KiB synchronous
// rewrites) at scale.
func newAttackSet(fsys fs.FileSystem, scale int64) *workload.FileSet {
	set := workload.NewFileSet(fsys, "/wear", attackFileSize(scale), 1234)
	set.NumFiles = 4
	set.ReqBytes = 4096
	set.SyncEvery = 1
	return set
}
