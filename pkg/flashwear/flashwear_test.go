package flashwear_test

import (
	"testing"
	"time"

	"flashwear/pkg/flashwear"
)

// TestPublicAPIEndToEnd exercises the headline scenario purely through the
// public surface: boot a phone, install an unprivileged app, run the
// stealth attack, verify the brick and the monitor evasion.
func TestPublicAPIEndToEnd(t *testing.T) {
	clock := flashwear.NewClock()
	prof := flashwear.ProfileMotoE8()
	prof.RatedPE = 60 // fast-wearing variant for the test
	prof.FirmwareRatedPE = 60
	phone, err := flashwear.NewPhone(flashwear.PhoneConfig{
		Profile: prof.Scaled(1024),
		FS:      flashwear.FSExt4,
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	app, err := phone.InstallApp("com.example.app")
	if err != nil {
		t.Fatal(err)
	}
	clock.AdvanceTo(12 * time.Hour)

	atk := flashwear.NewAttack(app, flashwear.Stealth, prof.EffectiveScale(1024))
	rep, err := atk.Run(phone, 10*365*24*time.Hour)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Bricked {
		t.Fatal("public-API attack failed to brick the phone")
	}
	if rep.PowerJoulesAttributed != 0 || rep.ProcessObservedCount != 0 {
		t.Fatal("stealth attack visible through public API")
	}
	if len(rep.Increments) == 0 {
		t.Fatal("no increments reported")
	}
}

// TestPublicAPIDevices exercises devices, profiles, envelope and
// microbenchmarks through the façade.
func TestPublicAPIDevices(t *testing.T) {
	if len(flashwear.AllProfiles()) != 7 {
		t.Fatalf("profiles = %d, want 7", len(flashwear.AllProfiles()))
	}
	if _, err := flashwear.ProfileByName("no such device"); err == nil {
		t.Fatal("unknown profile accepted")
	}
	clock := flashwear.NewClock()
	dev, err := flashwear.NewDevice(flashwear.ProfileEMMC16().Scaled(1024), clock)
	if err != nil {
		t.Fatal(err)
	}
	res, err := flashwear.Microbench(dev, clock, 4096, true, 2<<20, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.MiBps() <= 0 {
		t.Fatal("zero bandwidth")
	}
	env := flashwear.NewEnvelope(16 << 30)
	if env.TotalHostBytes() != int64(16<<30)*3000 {
		t.Fatal("envelope math wrong through façade")
	}
	if dev.WearIndicator(flashwear.PoolA) != 1 || dev.WearIndicator(flashwear.PoolB) != 1 {
		t.Fatal("fresh device indicators != 1")
	}
}

// TestPublicAPIMitigations exercises the §4.5 surface.
func TestPublicAPIMitigations(t *testing.T) {
	budget := flashwear.LifespanBudget{
		CapacityBytes: 8 << 30, RatedPE: 1400, TargetYears: 3, ExpectedWA: 2,
	}
	lim, err := flashwear.NewRateLimiter(budget)
	if err != nil {
		t.Fatal(err)
	}
	lim.BurstBytes = 1 << 20
	_ = lim.Throttle("a", 1<<20, 0)
	if d := lim.Throttle("a", 1<<20, 0); d <= 0 {
		t.Fatal("limiter did not throttle past burst")
	}
	st, err := flashwear.NewSelectiveThrottler(budget)
	if err != nil {
		t.Fatal(err)
	}
	if d := st.Throttle("camera", 1<<20, 0); d != 0 {
		t.Fatal("selective throttler hit an unflagged app")
	}
}
