package device

import "flashwear/internal/ftl"

// JEDEC eMMC 5.1 EXT_CSD register offsets (JESD84-B51 §7.4). Only the
// health-related bytes the paper reads are populated; the rest of the
// 512-byte block reads as zero.
const (
	// ExtCSDPreEOLInfo is byte 267: PRE_EOL_INFO (1 normal, 2 warning,
	// 3 urgent; 0 not defined).
	ExtCSDPreEOLInfo = 267
	// ExtCSDLifeTimeEstA is byte 268: DEVICE_LIFE_TIME_EST_TYP_A, the
	// 11-level wear-out indicator for Type A memory.
	ExtCSDLifeTimeEstA = 268
	// ExtCSDLifeTimeEstB is byte 269: DEVICE_LIFE_TIME_EST_TYP_B.
	ExtCSDLifeTimeEstB = 269
	// ExtCSDRev is byte 192: EXT_CSD_REV (8 = v5.1).
	ExtCSDRev = 192
	// ExtCSDSecCount is bytes 212-215: SEC_COUNT, the device capacity in
	// 512-byte sectors, little-endian.
	ExtCSDSecCount = 212
)

// WearHistogram buckets the main pool's per-block wear into the given
// number of equal-width bins over [0, maxWear], with maxWear the worst
// block observed. It is the analysis view behind the wear-leveling
// ablation: a healthy FTL concentrates blocks near the top bin (everyone
// equally worn); a broken one spreads them out.
func (d *Device) WearHistogram(bins int) []int {
	if bins < 1 {
		bins = 1
	}
	chip := d.f.MainChip()
	blocks := chip.Geometry().Blocks()
	maxW := chip.MaxWear()
	h := make([]int, bins)
	if maxW <= 0 {
		h[0] = blocks
		return h
	}
	for b := 0; b < blocks; b++ {
		idx := int(chip.Wear(b) / maxW * float64(bins))
		if idx >= bins {
			idx = bins - 1
		}
		h[idx]++
	}
	return h
}

// ExtCSD renders the device's health state as a JEDEC EXT_CSD register
// block, exactly as the paper's measurement tooling would read it over
// `mmc extcsd read`. For profiles flagged UnreliableIndicator the life-time
// bytes carry the same garbage the registers return.
func (d *Device) ExtCSD() [512]byte {
	d.extCSDReads++
	var csd [512]byte
	csd[ExtCSDRev] = 8 // eMMC 5.1
	sectors := uint32(d.Size() / 512)
	csd[ExtCSDSecCount+0] = byte(sectors)
	csd[ExtCSDSecCount+1] = byte(sectors >> 8)
	csd[ExtCSDSecCount+2] = byte(sectors >> 16)
	csd[ExtCSDSecCount+3] = byte(sectors >> 24)
	csd[ExtCSDPreEOLInfo] = byte(d.PreEOLInfo())
	csd[ExtCSDLifeTimeEstA] = byte(d.WearIndicator(ftl.PoolA))
	csd[ExtCSDLifeTimeEstB] = byte(d.WearIndicator(ftl.PoolB))
	return csd
}
