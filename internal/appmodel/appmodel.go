// Package appmodel provides synthetic models of mobile application I/O
// behaviour — the "model of expected mobile application I/O behavior"
// §4.5 says a refined mitigation should be driven by. It includes benign
// apps (camera imports, a chat app, a system updater), the accidentally
// harmful Spotify cache bug the paper cites [26], and hooks to run them
// alongside the deliberate wear attack so the mitigation classifier can be
// evaluated for false positives and negatives.
package appmodel

import (
	"errors"
	"fmt"
	"math/rand"
	"time"

	"flashwear/internal/fs"
	"flashwear/internal/simclock"
)

// Model is an application whose storage behaviour unfolds over simulated
// time. Step runs roughly d of app life (I/O plus idling); implementations
// advance the clock through their own waits.
type Model interface {
	Name() string
	Step(d time.Duration) error
}

// base carries what every model needs.
type base struct {
	name    string
	storage fs.FileSystem
	clock   *simclock.Clock
	rng     *rand.Rand
}

func (b *base) Name() string { return b.name }

// idle advances simulated time without I/O.
func (b *base) idle(d time.Duration) {
	if d > 0 {
		b.clock.Advance(d)
	}
}

// --- Camera import: large sequential bursts, then silence ---

// Camera models a photo app: every few hours the user imports a burst of
// photos (large sequential writes, one file each), then nothing. Bursty,
// high-volume-per-event, low duty cycle: the §4.5 benign case that naive
// rate limiting punishes.
type Camera struct {
	base
	// BurstBytes per import session; PhotoBytes per file.
	BurstBytes int64
	PhotoBytes int64
	// Every is the period between imports.
	Every time.Duration
	// KeepPhotos bounds the library: once exceeded, the oldest photos are
	// deleted (the user offloads to the cloud). Zero keeps everything.
	KeepPhotos int

	shots  int
	oldest int
	nextAt time.Duration
}

// NewCamera builds a camera model with typical defaults (24 MiB bursts of
// 3 MiB photos every 6 hours).
func NewCamera(storage fs.FileSystem, clock *simclock.Clock, seed int64) *Camera {
	return NewCameraRand(storage, clock, rand.New(rand.NewSource(seed)))
}

// NewCameraRand is NewCamera with an injected random source, for callers
// (like the fleet sampler) that derive one RNG per simulated device.
func NewCameraRand(storage fs.FileSystem, clock *simclock.Clock, rng *rand.Rand) *Camera {
	return &Camera{
		base:       base{name: "camera", storage: storage, clock: clock, rng: rng},
		BurstBytes: 24 << 20,
		PhotoBytes: 3 << 20,
		Every:      6 * time.Hour,
	}
}

// Step implements Model.
func (c *Camera) Step(d time.Duration) error {
	end := c.clock.Now() + d
	for c.clock.Now() < end {
		if now := c.clock.Now(); now < c.nextAt {
			// Not time for the next import yet: idle out the slice.
			wait := c.nextAt - now
			if now+wait > end {
				wait = end - now
			}
			c.idle(wait)
			continue
		}
		// One import session...
		var burst int64
		for burst < c.BurstBytes {
			name := fmt.Sprintf("/IMG_%05d.jpg", c.shots)
			c.shots++
			f, err := c.storage.Create(name)
			if err != nil {
				return err
			}
			chunk := make([]byte, 512<<10)
			for off := int64(0); off < c.PhotoBytes; off += int64(len(chunk)) {
				if _, err := f.WriteAt(chunk, off); err != nil {
					return err
				}
			}
			if err := f.Sync(); err != nil {
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			burst += c.PhotoBytes
		}
		// Offload old photos once the library exceeds its bound.
		if c.KeepPhotos > 0 {
			for c.shots-c.oldest > c.KeepPhotos {
				if err := c.storage.Remove(fmt.Sprintf("/IMG_%05d.jpg", c.oldest)); err != nil {
					return err
				}
				c.oldest++
			}
		}
		// ...then hours of silence until the next one.
		c.nextAt = c.clock.Now() + c.Every
	}
	return nil
}

// --- Chat app: tiny appends with fsync, steady but minuscule ---

// Chat models a messaging app: a few KiB appended and fsynced to a log
// every couple of minutes, plus an occasional small database rewrite via
// the write-temp-then-rename idiom. Persistent but tiny: the classifier
// must never flag it despite its nonstop presence.
type Chat struct {
	base
	MessageBytes int64
	Every        time.Duration
	// LogRotateBytes rotates the message log once it grows past this
	// size (the previous generation is replaced), bounding the app's
	// footprint like a real logger.
	LogRotateBytes int64

	log    fs.File
	logOff int64
	dbGen  int
	nextAt time.Duration
}

// NewChat builds a chat model (2 KiB messages every 2 minutes).
func NewChat(storage fs.FileSystem, clock *simclock.Clock, seed int64) *Chat {
	return NewChatRand(storage, clock, rand.New(rand.NewSource(seed)))
}

// NewChatRand is NewChat with an injected random source.
func NewChatRand(storage fs.FileSystem, clock *simclock.Clock, rng *rand.Rand) *Chat {
	return &Chat{
		base:           base{name: "chat", storage: storage, clock: clock, rng: rng},
		MessageBytes:   2 << 10,
		Every:          2 * time.Minute,
		LogRotateBytes: 1 << 20,
	}
}

// ensureLog opens (or rotates to) the active message log.
func (c *Chat) ensureLog() error {
	if c.log != nil && c.logOff < c.LogRotateBytes {
		return nil
	}
	if c.log != nil {
		if err := c.log.Close(); err != nil {
			return err
		}
		c.log = nil
		if err := c.storage.Rename("/messages.log", "/messages.log.1"); err != nil {
			return err
		}
	}
	log, err := openOrCreate(c.storage, "/messages.log")
	if err != nil {
		return err
	}
	c.log = log
	c.logOff = log.Size()
	return nil
}

// Step implements Model.
func (c *Chat) Step(d time.Duration) error {
	end := c.clock.Now() + d
	for c.clock.Now() < end {
		if now := c.clock.Now(); now < c.nextAt {
			wait := c.nextAt - now
			if now+wait > end {
				wait = end - now
			}
			c.idle(wait)
			continue
		}
		if err := c.ensureLog(); err != nil {
			return err
		}
		msg := make([]byte, c.MessageBytes)
		if _, err := c.log.WriteAt(msg, c.logOff); err != nil {
			return err
		}
		c.logOff += c.MessageBytes
		if err := c.log.Sync(); err != nil {
			return err
		}
		// Every ~50 messages, compact the "database" atomically.
		if c.rng.Intn(50) == 0 {
			tmp, err := c.storage.Create("/db.tmp")
			if err != nil {
				return err
			}
			if _, err := tmp.WriteAt(make([]byte, 64<<10), 0); err != nil {
				return err
			}
			if err := tmp.Sync(); err != nil {
				return err
			}
			if err := tmp.Close(); err != nil {
				return err
			}
			if err := c.storage.Rename("/db.tmp", "/db.bin"); err != nil {
				return err
			}
			c.dbGen++
		}
		c.nextAt = c.clock.Now() + c.Every
	}
	return nil
}

// --- System updater: one huge sequential download, rarely ---

// Updater models a monthly OS/app update: a single large sequential
// download verified and swapped in with a rename.
type Updater struct {
	base
	UpdateBytes int64
	Every       time.Duration

	nextAt time.Duration
}

// NewUpdater builds an updater model (128 MiB monthly, scaled down by the
// caller as needed).
func NewUpdater(storage fs.FileSystem, clock *simclock.Clock, seed int64) *Updater {
	return NewUpdaterRand(storage, clock, rand.New(rand.NewSource(seed)))
}

// NewUpdaterRand is NewUpdater with an injected random source.
func NewUpdaterRand(storage fs.FileSystem, clock *simclock.Clock, rng *rand.Rand) *Updater {
	return &Updater{
		base:        base{name: "updater", storage: storage, clock: clock, rng: rng},
		UpdateBytes: 128 << 20,
		Every:       30 * 24 * time.Hour,
	}
}

// Step implements Model.
func (u *Updater) Step(d time.Duration) error {
	end := u.clock.Now() + d
	for u.clock.Now() < end {
		if now := u.clock.Now(); now < u.nextAt {
			wait := u.nextAt - now
			if now+wait > end {
				wait = end - now
			}
			u.idle(wait)
			continue
		}
		f, err := u.storage.Create("/update.pkg.tmp")
		if err != nil {
			return err
		}
		chunk := make([]byte, 1<<20)
		for off := int64(0); off < u.UpdateBytes; off += int64(len(chunk)) {
			n := int64(len(chunk))
			if off+n > u.UpdateBytes {
				n = u.UpdateBytes - off
			}
			if _, err := f.WriteAt(chunk[:n], off); err != nil {
				return err
			}
		}
		if err := f.Sync(); err != nil {
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		if err := u.storage.Rename("/update.pkg.tmp", "/update.pkg"); err != nil {
			return err
		}
		u.nextAt = u.clock.Now() + u.Every
	}
	return nil
}

// --- The Spotify cache bug [26] ---

// SpotifyBug models the bug the paper cites: "for five months Spotify has
// badly abused users' storage drives" by continuously rewriting large
// cache files even while idle. Not malicious — just poorly written — but
// its wear signature is the attack's, and the classifier should flag it.
type SpotifyBug struct {
	base
	CacheBytes int64
	ReqBytes   int64
}

// NewSpotifyBug builds the buggy cache writer (32 MiB cache rewritten in
// 128 KiB chunks, continuously).
func NewSpotifyBug(storage fs.FileSystem, clock *simclock.Clock, seed int64) *SpotifyBug {
	return NewSpotifyBugRand(storage, clock, rand.New(rand.NewSource(seed)))
}

// NewSpotifyBugRand is NewSpotifyBug with an injected random source.
func NewSpotifyBugRand(storage fs.FileSystem, clock *simclock.Clock, rng *rand.Rand) *SpotifyBug {
	return &SpotifyBug{
		base:       base{name: "spotify-bug", storage: storage, clock: clock, rng: rng},
		CacheBytes: 32 << 20,
		ReqBytes:   128 << 10,
	}
}

// Step implements Model.
func (s *SpotifyBug) Step(d time.Duration) error {
	end := s.clock.Now() + d
	f, err := openOrCreate(s.storage, "/mercury.db")
	if err != nil {
		return err
	}
	defer f.Close()
	if f.Size() < s.CacheBytes {
		if _, err := f.WriteAt(make([]byte, s.CacheBytes), 0); err != nil {
			return err
		}
	}
	buf := make([]byte, s.ReqBytes)
	slots := s.CacheBytes / s.ReqBytes
	for s.clock.Now() < end {
		off := s.rng.Int63n(slots) * s.ReqBytes
		if _, err := f.WriteAt(buf, off); err != nil {
			return err
		}
		if err := f.Sync(); err != nil {
			return err
		}
	}
	return nil
}

// openOrCreate opens a file, creating it if missing.
func openOrCreate(fsys fs.FileSystem, path string) (fs.File, error) {
	f, err := fsys.Open(path)
	if errors.Is(err, fs.ErrNotExist) {
		return fsys.Create(path)
	}
	return f, err
}
