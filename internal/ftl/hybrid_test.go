package ftl

import (
	"bytes"
	"math/rand"
	"testing"

	"flashwear/internal/nand"
)

// hybridFTL builds a hybrid FTL: a 4-block SLC cache in front of a 64-block
// MLC main pool.
func hybridFTL(t *testing.T, drainRatio, mergeUtil float64) *FTL {
	t.Helper()
	main := nand.Config{
		Geometry: nand.Geometry{
			Dies: 1, PlanesPerDie: 2, BlocksPerPlane: 32,
			PagesPerBlock: 16, PageSize: 4096,
		},
		Cell: nand.MLC, RatedPE: 50_000, Seed: 21,
	}
	cache := nand.Config{
		Geometry: nand.Geometry{
			Dies: 1, PlanesPerDie: 1, BlocksPerPlane: 6,
			PagesPerBlock: 16, PageSize: 4096,
		},
		Cell: nand.SLC, RatedPE: 200_000, Seed: 22,
	}
	f, err := New(Config{
		MainChip: main,
		Hybrid: &HybridConfig{
			CacheChip:        cache,
			DrainRatio:       drainRatio,
			MergeUtilisation: mergeUtil,
		},
	})
	if err != nil {
		t.Fatalf("New hybrid: %v", err)
	}
	return f
}

func TestHybridSmallWritesHitCacheFirst(t *testing.T) {
	f := hybridFTL(t, 0.1, 0.85)
	if _, err := f.WritePage(0, page(7, 4096), 4096); err != nil {
		t.Fatal(err)
	}
	if f.CacheChip().Stats().Programs != 1 {
		t.Fatalf("cache programs = %d, want 1", f.CacheChip().Stats().Programs)
	}
	if f.MainChip().Stats().Programs != 0 {
		t.Fatal("small write should not touch main pool yet")
	}
	got, _, err := f.ReadPage(0)
	if err != nil || !bytes.Equal(got, page(7, 4096)) {
		t.Fatalf("read back from cache failed: %v", err)
	}
}

func TestHybridLargeWritesBypassCache(t *testing.T) {
	f := hybridFTL(t, 0.1, 0.85)
	if _, err := f.WritePage(0, page(1, 4096), 512<<10); err != nil {
		t.Fatal(err)
	}
	if f.CacheChip().Stats().Programs != 0 {
		t.Fatal("large request leaked into the cache")
	}
	if f.MainChip().Stats().Programs != 1 {
		t.Fatalf("main programs = %d, want 1", f.MainChip().Stats().Programs)
	}
}

// TestHybridSustainedLoadAbsorbedFraction checks that under sustained small
// writes the cache absorbs approximately the drain-ratio fraction — the
// mechanism behind Table 1's Type A / Type B wear gap.
func TestHybridSustainedLoadAbsorbedFraction(t *testing.T) {
	drain := 0.10
	f := hybridFTL(t, drain, 10 /* never merge */)
	rng := rand.New(rand.NewSource(23))
	n := f.LogicalPages() / 2
	total := 60_000
	for i := 0; i < total; i++ {
		if _, err := f.WritePage(rng.Intn(n), nil, 4096); err != nil {
			t.Fatal(err)
		}
	}
	s := f.Stats()
	absorbed := float64(s.CacheAbsorbed) / float64(total)
	if absorbed < drain*0.5 || absorbed > drain*2.5 {
		t.Fatalf("absorbed fraction %.3f, want near drain ratio %.3f (stats %+v)",
			absorbed, drain, s)
	}
	// Cache wear per capacity should be well below main wear per capacity
	// only if rated accordingly; what must hold mechanically is that the
	// cache's programs are a small share of total.
	cacheProgs := f.CacheChip().Stats().Programs
	mainProgs := f.MainChip().Stats().Programs
	if cacheProgs*3 > mainProgs {
		t.Fatalf("cache programs %d not a small share of main %d", cacheProgs, mainProgs)
	}
}

// TestHybridMergeAcceleratesCacheWear fills the device past the merge
// utilisation and checks the cache starts absorbing everything (Table 1's
// Type A acceleration from 11935 GiB/increment to 439).
func TestHybridMergeAcceleratesCacheWear(t *testing.T) {
	f := hybridFTL(t, 0.05, 0.80)
	n := f.LogicalPages()
	// Fill 85% of the logical space with large (bypassing) writes.
	for lp := 0; lp < n*85/100; lp++ {
		if _, err := f.WritePage(lp, nil, 1<<20); err != nil {
			t.Fatal(err)
		}
	}
	if f.Merged() {
		t.Fatal("merged before any small write evaluated routing")
	}
	rng := rand.New(rand.NewSource(24))
	before := f.CacheChip().Stats().Programs
	beforeHost := f.Stats().HostPagesWritten
	for i := 0; i < 20_000; i++ {
		// Rewrites aimed at the utilised space (Table 1's last phase).
		if _, err := f.WritePage(rng.Intn(n*85/100), nil, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if !f.Merged() {
		t.Fatal("pools did not merge at 85% utilisation")
	}
	if f.Stats().MergeEvents == 0 {
		t.Fatal("no merge events recorded")
	}
	absorbed := float64(f.CacheChip().Stats().Programs-before) /
		float64(f.Stats().HostPagesWritten-beforeHost)
	if absorbed < 0.5 {
		t.Fatalf("merged cache absorbed only %.2f of small writes, want most", absorbed)
	}
}

// TestHybridDrainPreservesData ensures pages migrated cache->main read back
// correctly after heavy churn.
func TestHybridDrainPreservesData(t *testing.T) {
	f := hybridFTL(t, 0.2, 10)
	// Write distinct payloads, then churn other pages to force drains.
	const keep = 20
	for lp := 0; lp < keep; lp++ {
		if _, err := f.WritePage(lp, page(byte(lp+1), 4096), 4096); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(25))
	for i := 0; i < 30_000; i++ {
		lp := keep + rng.Intn(f.LogicalPages()/2-keep)
		if _, err := f.WritePage(lp, nil, 4096); err != nil {
			t.Fatal(err)
		}
	}
	if f.Stats().DrainMigrations == 0 {
		t.Fatal("no drain migrations happened")
	}
	for lp := 0; lp < keep; lp++ {
		got, _, err := f.ReadPage(lp)
		if err != nil {
			t.Fatalf("page %d: %v", lp, err)
		}
		if !bytes.Equal(got, page(byte(lp+1), 4096)) {
			t.Fatalf("page %d corrupted after drain churn", lp)
		}
	}
}

// TestHybridTrimInCache trims a page whose only copy is in the cache.
func TestHybridTrimInCache(t *testing.T) {
	f := hybridFTL(t, 0.1, 10)
	if _, err := f.WritePage(0, page(9, 4096), 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := f.TrimPage(0); err != nil {
		t.Fatal(err)
	}
	if got, _, _ := f.ReadPage(0); got != nil {
		t.Fatal("trimmed cache page still readable")
	}
}

func TestHybridWearIndicatorsIndependent(t *testing.T) {
	f := hybridFTL(t, 0.1, 10)
	if f.WearIndicator(PoolA) != 1 || f.WearIndicator(PoolB) != 1 {
		t.Fatal("fresh hybrid indicators should be 1/1")
	}
	if f.LifeConsumed(PoolA) != 0 {
		t.Fatal("fresh cache has consumed life")
	}
}

func TestHybridPageSizeMismatchRejected(t *testing.T) {
	main := testChipCfg(1000)
	cache := testChipCfg(1000)
	cache.Geometry.PageSize = 8192
	_, err := New(Config{MainChip: main, Hybrid: &HybridConfig{CacheChip: cache, DrainRatio: 0.1}})
	if err == nil {
		t.Fatal("mismatched page sizes accepted")
	}
}
