package obs

import (
	"fmt"
	"net/http"
	"runtime/debug"
	"strconv"
)

// HTTPMetrics is the standard request-side metric set: per-route request
// counts by method and status, per-route latency histograms, and a
// recovered-panic counter.
type HTTPMetrics struct {
	Requests *CounterVec   // route, method, code
	Latency  *HistogramVec // route
	Panics   *Counter
}

// NewHTTPMetrics registers the request metrics under prefix (e.g.
// "fleetd"): <prefix>_http_requests_total, <prefix>_http_request_seconds,
// <prefix>_http_panics_total.
func NewHTTPMetrics(r *Registry, prefix string) *HTTPMetrics {
	return &HTTPMetrics{
		Requests: r.CounterVec(prefix+"_http_requests_total",
			"HTTP requests served, by route pattern, method, and status code.",
			"route", "method", "code"),
		Latency: r.HistogramVec(prefix+"_http_request_seconds",
			"HTTP request latency in seconds, by route pattern.",
			DurationBuckets, "route"),
		Panics: r.Counter(prefix+"_http_panics_total",
			"Handler panics recovered by the middleware."),
	}
}

// statusWriter captures the response status and byte count, and forwards
// Flush so streaming handlers (SSE) keep working through the wrapper.
type statusWriter struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	n, err := w.ResponseWriter.Write(p)
	w.bytes += int64(n)
	return n, err
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		if w.status == 0 {
			w.status = http.StatusOK
		}
		f.Flush()
	}
}

// Instrument wraps h with the ops-plane request middleware: panic
// recovery (log + counted + 500 when nothing was written yet), a
// structured request log line, and route-labelled count/latency metrics.
// route should be the mux pattern ("GET /v1/campaigns/{id}"), not the
// concrete path, to keep the label cardinality fixed.
func Instrument(route string, m *HTTPMetrics, log *Logger, h http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		sw := &statusWriter{ResponseWriter: w}
		start := WallNow()
		defer func() {
			if p := recover(); p != nil {
				m.Panics.Inc()
				log.Log("panic", "route", route, "path", r.URL.Path,
					"panic", fmt.Sprint(p), "stack", string(debug.Stack()))
				if sw.status == 0 {
					w.Header().Set("Content-Type", "application/json")
					w.WriteHeader(http.StatusInternalServerError)
					fmt.Fprintln(w, `{"error":"internal server error"}`)
					sw.status = http.StatusInternalServerError
				}
			}
			elapsed := WallNow().Sub(start)
			if sw.status == 0 {
				sw.status = http.StatusOK
			}
			m.Requests.With(route, r.Method, strconv.Itoa(sw.status)).Inc()
			m.Latency.With(route).Observe(elapsed.Seconds())
			log.Log("http", "route", route, "path", r.URL.Path, "status", sw.status,
				"bytes", sw.bytes, "ms", float64(elapsed.Microseconds())/1000)
		}()
		h.ServeHTTP(sw, r)
	})
}
