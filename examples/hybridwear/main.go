// Hybridwear: explore the hybrid device of Table 1. The SanDisk "eMMC
// 16GB" carries a small high-endurance Type A pool in front of its MLC
// Type B array; this example shows the two wear indicators diverging under
// light-duty writes and then Type A collapsing once the pools merge under
// high utilisation and fragmentation.
package main

import (
	"fmt"
	"log"

	"flashwear/pkg/flashwear"
)

func main() {
	const scale = 1024
	clock := flashwear.NewClock()
	prof := flashwear.ProfileEMMC16()
	dev, err := flashwear.NewDevice(prof.Scaled(scale), clock)
	if err != nil {
		log.Fatal(err)
	}
	ftl := dev.FTL()
	fmt.Printf("%s: %s exported, Type A cache %s\n\n",
		prof.Name, human(dev.Size()), human(prof.Hybrid.CacheBytes/scale))

	status := func(phase string, hostMiB int64) {
		fmt.Printf("%-34s host=%5d MiB  A-life=%5.1f%%  B-life=%5.1f%%  merged=%-5v WA=%.2f\n",
			phase, hostMiB,
			ftl.LifeConsumed(flashwear.PoolA)*100,
			ftl.LifeConsumed(flashwear.PoolB)*100,
			ftl.Merged(), ftl.WriteAmplification())
	}

	// Phase 1: light duty — 4 KiB random rewrites over a small region at
	// low utilisation. The cache absorbs only its migration budget, so
	// Type A barely ages while Type B pays for every write.
	w := flashwear.NewDeviceWriter(dev, 4096, false, 7)
	w.RegionLen = dev.Size() / 40
	var host int64
	for host < dev.Size()*3 {
		n, err := w.Step(4 << 20)
		host += n
		if err != nil {
			log.Fatal(err)
		}
	}
	status("low utilisation, fresh rewrites:", host>>20)

	// Phase 2: fill the device to 90% with static data.
	fill := flashwear.NewDeviceWriter(dev, 1<<20, true, 8)
	fill.RegionLen = (dev.Size() * 9 / 10) &^ 4095
	if _, err := fill.Step(fill.RegionLen); err != nil {
		log.Fatal(err)
	}
	status("after filling to 90%:", host>>20)

	// Phase 3: rewrites aimed at the utilised space (Table 1's endgame).
	// Fragmentation rises, the firmware merges the pools, and the small
	// Type A pool starts absorbing the hot traffic — and dying fast.
	rw := flashwear.NewDeviceWriter(dev, 4096, false, 9)
	rw.RegionLen = fill.RegionLen
	for i := 0; i < 3; i++ {
		var phase int64
		for phase < dev.Size() {
			n, err := rw.Step(4 << 20)
			phase += n
			host += n
			if err != nil {
				log.Fatal(err)
			}
		}
		status(fmt.Sprintf("rewriting utilised space (x%d):", i+1), host>>20)
	}

	fmt.Println("\nTable 1's inference reproduced: Type A wears ~6x slower than")
	fmt.Println("Type B until the pools merge, then it accelerates sharply.")
}

func human(b int64) string {
	switch {
	case b >= 1<<30:
		return fmt.Sprintf("%.1f GiB", float64(b)/(1<<30))
	default:
		return fmt.Sprintf("%.1f MiB", float64(b)/(1<<20))
	}
}
