package experiments

import (
	"fmt"
	"time"

	"flashwear/internal/android"
	"flashwear/internal/appmodel"
	"flashwear/internal/device"
	"flashwear/internal/mitigation"
	"flashwear/internal/simclock"
	"flashwear/internal/workload"
)

// ClassifierRow is one app's verdict in the classifier evaluation.
type ClassifierRow struct {
	App        string
	Harmful    bool // ground truth: would this app wear the device out?
	Flagged    bool // classifier verdict
	Score      float64
	WrittenMiB float64
}

// ClassifierEval runs a realistic app population — camera, chat, updater,
// the Spotify cache bug [26], and the deliberate wear attack — side by side
// on one phone with the §4.5 classifier observing every write. A useful
// classifier flags the two harmful writers (deliberate or not) and neither
// of the benign ones: §4.5's "selectively rate limit only harmful
// applications without affecting the performance of normal applications".
func ClassifierEval(cfg Config) ([]ClassifierRow, error) {
	cfg = cfg.Defaults()
	clock := simclock.New()
	prof := device.ProfileMotoE8().Scaled(cfg.Scale)
	// The budget reflects the real device's endurance; the evaluation
	// device itself gets effectively unlimited endurance so the heavy
	// writers can run long enough to be classified without bricking it
	// mid-study.
	budget := mitigation.LifespanBudget{
		CapacityBytes: prof.CapacityBytes,
		RatedPE:       prof.RatedPE,
		TargetYears:   3.0 / float64(device.ProfileMotoE8().EffectiveScale(cfg.Scale)),
		ExpectedWA:    2,
	}
	prof.RatedPE = 1_000_000
	prof.FirmwareRatedPE = 1_000_000
	classifier := mitigation.NewClassifier(budget)

	phone, err := android.NewPhone(android.Config{
		Profile:  prof,
		FS:       android.FSExt4,
		Charging: android.AlwaysOn(),
		Screen:   android.Never(),
		// Observe-only hook: classify, never throttle.
		Throttle: func(app string, bytes int64, now time.Duration) time.Duration {
			classifier.ObserveWrite(app, bytes, false, now)
			return 0
		},
	}, clock)
	if err != nil {
		return nil, err
	}

	installed := func(name string) *android.App {
		app, err := phone.InstallApp(name)
		if err != nil {
			panic(err) // names are static; cannot collide
		}
		return app
	}

	// Footprints sized so the whole population fits the scaled device
	// (the camera's photo library accumulates across sessions).
	camera := appmodel.NewCamera(installed("camera").Storage(), clock, 11)
	camera.BurstBytes = prof.CapacityBytes / 32
	camera.PhotoBytes = camera.BurstBytes / 4
	chat := appmodel.NewChat(installed("chat").Storage(), clock, 12)
	updater := appmodel.NewUpdater(installed("updater").Storage(), clock, 13)
	updater.UpdateBytes = prof.CapacityBytes / 16
	updater.Every = 24 * time.Hour
	bug := appmodel.NewSpotifyBug(installed("spotify-bug").Storage(), clock, 14)
	bug.CacheBytes = prof.CapacityBytes / 16

	// The deliberate attack, as a file set on its own sandbox.
	attackApp := installed("wear-attack")
	atkSet := workload.NewFileSet(attackApp.Storage(), "/wear", prof.CapacityBytes/40, 15)
	if err := atkSet.Setup(); err != nil {
		return nil, err
	}

	// Interleave everyone over several simulated hours in ten-minute
	// slices — enough history for the classifier's sliding windows. The
	// attack and the bug write as fast as the device allows inside their
	// slices; the benign apps follow their own rhythms.
	models := []appmodel.Model{camera, chat, updater, bug}
	slice := 10 * time.Minute
	for round := 0; round < 24; round++ {
		for _, m := range models {
			if err := m.Step(slice); err != nil {
				return nil, fmt.Errorf("classifier eval: %s: %w", m.Name(), err)
			}
		}
		deadline := clock.Now() + slice
		for clock.Now() < deadline {
			if _, err := atkSet.Step(4 << 20); err != nil {
				return nil, fmt.Errorf("classifier eval: attack: %w", err)
			}
		}
	}

	now := clock.Now()
	harmful := map[string]bool{"wear-attack": true, "spotify-bug": true}
	var out []ClassifierRow
	for _, name := range []string{"camera", "chat", "updater", "spotify-bug", "wear-attack"} {
		out = append(out, ClassifierRow{
			App:        name,
			Harmful:    harmful[name],
			Flagged:    classifier.Malicious(name, now),
			Score:      classifier.Score(name, now),
			WrittenMiB: float64(phone.AppIOStats(name).BytesWritten) / (1 << 20),
		})
	}
	return out, nil
}
