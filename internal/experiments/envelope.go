package experiments

import (
	"flashwear/internal/core"
	"flashwear/internal/ftl"
)

// EnvelopeRow compares §2.3's back-of-the-envelope expectation against a
// measured wear run (§4.3's headline: "roughly three times lower").
type EnvelopeRow struct {
	Device          string
	CapacityGiB     float64
	EnvelopeGiBPer  float64 // expected host GiB per 10% of lifetime
	MeasuredGiBPer  float64 // measured host GiB per indicator increment
	ShortfallFactor float64 // envelope / measured
}

// EnvelopeComparison derives the comparison from completed wear runs.
func EnvelopeComparison(runs []WearRun, capacities map[string]int64) []EnvelopeRow {
	var out []EnvelopeRow
	for _, r := range runs {
		capBytes := capacities[r.Label]
		if capBytes == 0 {
			continue
		}
		env := core.NewEnvelope(capBytes)
		measured := r.Report.MeanHostGiBPerIncrement(ftl.PoolB)
		row := EnvelopeRow{
			Device:         r.Label,
			CapacityGiB:    float64(capBytes) / (1 << 30),
			EnvelopeGiBPer: float64(env.BytesPerIncrement()) / (1 << 30),
			MeasuredGiBPer: measured,
		}
		if measured > 0 {
			row.ShortfallFactor = row.EnvelopeGiBPer / measured
		}
		out = append(out, row)
	}
	return out
}
