package fleetd

import (
	"bytes"
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"flashwear/internal/hostio"
)

// realCell runs a tiny disk-backed campaign and returns the path of one
// completed cell — real device states, not synthetic fixtures, so the
// codec tests cover everything a production checkpoint contains.
func realCell(t *testing.T) string {
	t.Helper()
	spec := tinySpec()
	spec.Devices = 2
	spec.Days = 2
	spec.CheckpointEvery = 1
	dir := t.TempDir()
	runToEnd(t, dir, spec)
	return cellPath(filepath.Join(dir, "c000001"), 0, 1)
}

// TestCodecReencodeIdentity pins the property resume correctness leans
// on: decoding a checkpoint and re-encoding every frame reproduces the
// original payload bytes exactly — no map-order, float-formatting, or
// history dependence anywhere in the codec.
func TestCodecReencodeIdentity(t *testing.T) {
	path := realCell(t)
	r, err := openCell(hostio.OS{}, path)
	if err != nil {
		t.Fatalf("openCell: %v", err)
	}
	defer r.Close()

	var he enc
	he.fileHeader(r.Header)
	hd := dec{b: he.b}
	if got := hd.fileHeader(); got != r.Header || hd.done() != nil {
		t.Errorf("file header round-trip: got %+v, want %+v", got, r.Header)
	}

	devices := 0
	for {
		typ, payload, err := r.frame()
		if err != nil {
			t.Fatalf("frame: %v", err)
		}
		var re enc
		switch typ {
		case frameDevice:
			devices++
			d := dec{b: payload}
			st := d.deviceState()
			if err := d.done(); err != nil {
				t.Fatalf("device decode: %v", err)
			}
			re.deviceState(st)
		case frameFooter:
			d := dec{b: payload}
			ft := d.footer()
			if err := d.done(); err != nil {
				t.Fatalf("footer decode: %v", err)
			}
			re.footer(ft)
			if !bytes.Equal(re.b, payload) {
				t.Fatal("footer re-encode differs from original payload")
			}
			if devices == 0 {
				t.Fatal("cell contained no device frames")
			}
			return
		default:
			t.Fatalf("unexpected frame type %d", typ)
		}
		if !bytes.Equal(re.b, payload) {
			t.Fatal("device re-encode differs from original payload")
		}
	}
}

// TestCheckpointCorruptionTable is the satellite's corruption matrix:
// each damage pattern must map to its designated sentinel, and nothing
// may decode.
func TestCheckpointCorruptionTable(t *testing.T) {
	pristine, err := os.ReadFile(realCell(t))
	if err != nil {
		t.Fatalf("read cell: %v", err)
	}
	probe := func(t *testing.T, raw []byte) error {
		t.Helper()
		path := filepath.Join(t.TempDir(), "cell.ckpt")
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatalf("write damaged cell: %v", err)
		}
		r, err := openCell(hostio.OS{}, path)
		if err != nil {
			return err
		}
		defer r.Close()
		_, err = r.scan(nil)
		return err
	}
	for _, tc := range []struct {
		name   string
		damage func([]byte) []byte
		want   error
	}{
		{"pristine", func(b []byte) []byte { return b }, nil},
		{"empty file", func(b []byte) []byte { return nil }, ErrCheckpointTruncated},
		{"cut mid-frame", func(b []byte) []byte { return b[:len(b)/2] }, ErrCheckpointTruncated},
		{"missing end marker", func(b []byte) []byte { return b[:len(b)-len(endMagic)] }, ErrCheckpointTruncated},
		{"short magic", func(b []byte) []byte { return b[:4] }, ErrCheckpointTruncated},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrCheckpointCorrupt},
		{"version bump", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[len(fileMagic):], ckptVersion+1)
			return b
		}, ErrCheckpointVersion},
		{"payload bit flip", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }, ErrCheckpointCorrupt},
		{"bad end marker", func(b []byte) []byte { b[len(b)-1] ^= 0xff; return b }, ErrCheckpointCorrupt},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0) }, ErrCheckpointCorrupt},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			err := probe(t, tc.damage(append([]byte(nil), pristine...)))
			if tc.want == nil {
				if err != nil {
					t.Fatalf("pristine cell failed to load: %v", err)
				}
				return
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("got error %v, want %v", err, tc.want)
			}
			// The three sentinels are mutually exclusive by construction.
			for _, other := range []error{ErrCheckpointVersion, ErrCheckpointTruncated, ErrCheckpointCorrupt} {
				if other != tc.want && errors.Is(err, other) {
					t.Errorf("error %v also matches %v", err, other)
				}
			}
		})
	}
}

// TestCellIdentityCheck: a structurally valid cell belonging to a
// different campaign must be refused, not resumed from.
func TestCellIdentityCheck(t *testing.T) {
	path := realCell(t)
	r, err := openCell(hostio.OS{}, path)
	if err != nil {
		t.Fatalf("openCell: %v", err)
	}
	want := r.Header
	r.Close()
	want.Seed++
	if _, err := loadFooter(hostio.OS{}, path, want); !errors.Is(err, ErrCheckpointCorrupt) {
		t.Fatalf("foreign cell loaded with error %v, want ErrCheckpointCorrupt", err)
	}
}

// TestZeroPageElision pins the encoding detail directly: an all-zero
// page costs a flag byte, a non-zero page costs PageSize+flag, and both
// round-trip.
func TestZeroPageElision(t *testing.T) {
	var e enc
	zero := make([]byte, 64)
	data := make([]byte, 64)
	data[7] = 9
	if !isZeroPage(zero) || isZeroPage(data) {
		t.Fatal("isZeroPage misclassifies")
	}
	e.bool(isZeroPage(zero))
	if len(e.b) != 1 {
		t.Fatalf("zero page encoded %d bytes, want 1", len(e.b))
	}
}
