package extfs

import (
	"encoding/binary"
	"fmt"
	"strings"

	"flashwear/internal/blockdev"
	"flashwear/internal/fs"
)

var errNoSpace = fs.ErrNoSpace

// lazyFlushInterval is how many timestamp-only fsyncs may pass before the
// inode is journaled anyway (lazytime semantics).
const lazyFlushInterval = 64

// FS is a mounted extfs volume. It is not safe for concurrent use.
type FS struct {
	dev  blockdev.Device
	opts fs.Options
	sb   *superblock

	bitmap            []uint64
	dirtyBitmapBlocks map[uint32]bool
	quarantine        map[uint32]bool // freed, pending checkpoint (revoke-lite)
	freeBlocks        int64
	allocRotor        uint32

	inodes  map[uint32]*inode
	meta    map[uint32][]byte
	txn     map[uint32][]byte
	pending map[uint32][]byte

	jHead uint32
	jSeq  uint64

	unmounted  bool
	nowCounter int64

	lazySyncs            int
	statJournalCommits   int64
	statJournalBlocks    int64
	statCheckpointWrites int64
	statDataBlocks       int64
	statReplayedTxns     int
}

// Stats reports FS-internal activity, used by the write-amplification
// experiments.
type Stats struct {
	JournalCommits   int64
	JournalBlocks    int64 // journal-region block writes (desc + bodies + commit)
	CheckpointWrites int64
	DataBlocks       int64 // file-content block writes
	ReplayedTxns     int
	FreeBlocks       int64
}

// Mkfs formats the device with a fresh, empty extfs volume.
func Mkfs(dev blockdev.Device) error {
	sb, err := computeLayout(dev.Size())
	if err != nil {
		return err
	}
	sb.state = stateClean
	// Zero metadata regions.
	zero := make([]byte, BlockSize)
	for blk := uint32(0); blk < sb.dataStart; blk++ {
		if err := writeBlock(dev, blk, zero); err != nil {
			return err
		}
	}
	// Bitmap: mark everything below dataStart (and the tail past the
	// volume, if the bitmap over-covers) as allocated.
	words := make([]uint64, int(sb.bitmapBlks)*BlockSize/8)
	mark := func(blk uint32) { words[blk/64] |= 1 << (blk % 64) }
	for blk := uint32(0); blk < sb.dataStart; blk++ {
		mark(blk)
	}
	for blk := sb.totalBlocks; blk < uint32(len(words)*64); blk++ {
		mark(blk)
	}
	buf := make([]byte, BlockSize)
	for i := uint32(0); i < sb.bitmapBlks; i++ {
		base := int(i) * BlockSize / 8
		for w := 0; w < BlockSize/8; w++ {
			binary.LittleEndian.PutUint64(buf[w*8:], words[base+w])
		}
		if err := writeBlock(dev, sb.bitmapStart+i, buf); err != nil {
			return err
		}
	}
	// Root directory inode.
	itb := make([]byte, BlockSize)
	root := inode{ino: RootIno, mode: modeDir, links: 1}
	root.encodeInto(itb[RootIno*InodeSize:])
	if err := writeBlock(dev, sb.itableStart, itb); err != nil {
		return err
	}
	// Journal superblock.
	if err := writeBlock(dev, sb.jStart, journalSuper{seq: 1}.encode()); err != nil {
		return err
	}
	if err := writeBlock(dev, 0, sb.encode()); err != nil {
		return err
	}
	return dev.Flush()
}

// Mount opens an extfs volume, replaying the journal after an unclean
// shutdown.
func Mount(dev blockdev.Device, opts fs.Options) (*FS, error) {
	b, err := readBlock(dev, 0)
	if err != nil {
		return nil, err
	}
	sb, err := decodeSuperblock(b)
	if err != nil {
		return nil, err
	}
	v := &FS{
		dev: dev, opts: opts, sb: sb,
		dirtyBitmapBlocks: make(map[uint32]bool),
		quarantine:        make(map[uint32]bool),
		inodes:            make(map[uint32]*inode),
		meta:              make(map[uint32][]byte),
		txn:               make(map[uint32][]byte),
		pending:           make(map[uint32][]byte),
	}
	if sb.state != stateClean {
		n, err := v.replay()
		if err != nil {
			return nil, fmt.Errorf("extfs: journal replay: %w", err)
		}
		v.statReplayedTxns = n
	} else {
		jb, err := readBlock(dev, sb.jStart)
		if err != nil {
			return nil, err
		}
		jsb, err := decodeJournalSuper(jb)
		if err != nil {
			return nil, err
		}
		v.jSeq = jsb.seq
		v.jHead = sb.jStart + 1
	}
	if err := v.loadBitmap(); err != nil {
		return nil, err
	}
	v.countFree()
	// Mark mounted (dirty) so a crash triggers replay next time.
	sb.state = stateMounted
	if err := writeBlock(dev, 0, sb.encode()); err != nil {
		return nil, err
	}
	if err := dev.Flush(); err != nil {
		return nil, err
	}
	return v, nil
}

// Name implements fs.FileSystem.
func (v *FS) Name() string { return "extfs" }

// Stats returns internal counters.
func (v *FS) Stats() Stats {
	return Stats{
		JournalCommits:   v.statJournalCommits,
		JournalBlocks:    v.statJournalBlocks,
		CheckpointWrites: v.statCheckpointWrites,
		DataBlocks:       v.statDataBlocks,
		ReplayedTxns:     v.statReplayedTxns,
		FreeBlocks:       v.freeBlocks,
	}
}

func (v *FS) nowNanos() int64 {
	v.nowCounter++
	return v.nowCounter
}

func (v *FS) alive() error {
	if v.unmounted {
		return fs.ErrUnmounted
	}
	return nil
}

// --- directories ---

// Directory entries are fixed 256-byte slots: ino u32, nameLen u8, name.
const (
	dirEntSize    = 256
	dirEntNameOff = 5
)

// dirBlocks reads a directory's content blocks (journal-aware).
func (v *FS) dirContent(in *inode) ([]byte, error) {
	if in.mode != modeDir {
		return nil, fs.ErrNotDir
	}
	nblk := (in.size + BlockSize - 1) / BlockSize
	out := make([]byte, 0, in.size)
	for i := int64(0); i < nblk; i++ {
		blk, err := v.bmap(in, i, false)
		if err != nil {
			return nil, err
		}
		if blk == 0 {
			return nil, fmt.Errorf("%w: hole in directory %d", ErrCorrupt, in.ino)
		}
		b, err := v.readMeta(blk)
		if err != nil {
			return nil, err
		}
		out = append(out, b...)
	}
	return out[:in.size], nil
}

// dirFind looks a name up, returning the entry's byte offset and the target
// inode, or off = -1.
func (v *FS) dirFind(in *inode, name string) (off int64, ino uint32, err error) {
	content, err := v.dirContent(in)
	if err != nil {
		return -1, 0, err
	}
	for o := 0; o+dirEntSize <= len(content); o += dirEntSize {
		e := content[o : o+dirEntSize]
		target := binary.LittleEndian.Uint32(e[0:])
		if target == 0 {
			continue
		}
		nl := int(e[4])
		if nl > dirEntSize-dirEntNameOff {
			return -1, 0, fmt.Errorf("%w: dirent name length %d", ErrCorrupt, nl)
		}
		if string(e[dirEntNameOff:dirEntNameOff+nl]) == name {
			return int64(o), target, nil
		}
	}
	return -1, 0, nil
}

// dirSet writes one 256-byte entry at off (which must be slot-aligned and
// within or exactly at the end of the directory), growing it if needed.
func (v *FS) dirSet(in *inode, off int64, ino uint32, name string) error {
	e := make([]byte, dirEntSize)
	binary.LittleEndian.PutUint32(e[0:], ino)
	e[4] = byte(len(name))
	copy(e[dirEntNameOff:], name)

	blkIdx := off / BlockSize
	blk, err := v.bmap(in, blkIdx, true)
	if err != nil {
		return err
	}
	var b []byte
	if off < in.size || off%BlockSize != 0 {
		cur, err := v.readMeta(blk)
		if err != nil {
			return err
		}
		b = make([]byte, BlockSize)
		copy(b, cur)
	} else {
		b = make([]byte, BlockSize)
	}
	copy(b[off%BlockSize:], e)
	v.stageMeta(blk, b)
	if off+dirEntSize > in.size {
		in.size = off + dirEntSize
		in.hardDirty = true
	}
	in.mtime = v.nowNanos()
	return v.flushInode(in)
}

// dirAdd appends (or reuses a tombstone slot for) a new entry.
func (v *FS) dirAdd(in *inode, ino uint32, name string) error {
	content, err := v.dirContent(in)
	if err != nil {
		return err
	}
	slot := int64(len(content))
	for o := 0; o+dirEntSize <= len(content); o += dirEntSize {
		if binary.LittleEndian.Uint32(content[o:]) == 0 {
			slot = int64(o)
			break
		}
	}
	return v.dirSet(in, slot, ino, name)
}

// dirDelete tombstones the entry at off.
func (v *FS) dirDelete(in *inode, off int64) error {
	return v.dirSet(in, off, 0, "")
}

// dirEmpty reports whether the directory has no live entries.
func (v *FS) dirEmpty(in *inode) (bool, error) {
	content, err := v.dirContent(in)
	if err != nil {
		return false, err
	}
	for o := 0; o+dirEntSize <= len(content); o += dirEntSize {
		if binary.LittleEndian.Uint32(content[o:]) != 0 {
			return false, nil
		}
	}
	return true, nil
}

// resolve walks a path to its inode.
func (v *FS) resolve(path string) (*inode, error) {
	parts, err := fs.SplitPath(path)
	if err != nil {
		return nil, err
	}
	in, err := v.loadInode(RootIno)
	if err != nil {
		return nil, err
	}
	for _, name := range parts {
		if in.mode != modeDir {
			return nil, fs.ErrNotDir
		}
		_, ino, err := v.dirFind(in, name)
		if err != nil {
			return nil, err
		}
		if ino == 0 {
			return nil, fs.ErrNotExist
		}
		if in, err = v.loadInode(ino); err != nil {
			return nil, err
		}
	}
	return in, nil
}

// resolveParent returns the parent directory inode and the final name.
func (v *FS) resolveParent(path string) (*inode, string, error) {
	dir, base, err := fs.DirBase(path)
	if err != nil {
		return nil, "", err
	}
	parent, err := v.resolve(dir)
	if err != nil {
		return nil, "", err
	}
	if parent.mode != modeDir {
		return nil, "", fs.ErrNotDir
	}
	return parent, base, nil
}

// --- fs.FileSystem ---

// Create implements fs.FileSystem.
func (v *FS) Create(path string) (fs.File, error) {
	if err := v.alive(); err != nil {
		return nil, err
	}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return nil, err
	}
	if _, existing, err := v.dirFind(parent, name); err != nil {
		return nil, err
	} else if existing != 0 {
		in, err := v.loadInode(existing)
		if err != nil {
			return nil, err
		}
		if in.mode == modeDir {
			return nil, fs.ErrIsDir
		}
		f := &file{fs: v, in: in}
		if err := f.Truncate(0); err != nil {
			return nil, err
		}
		return f, nil
	}
	in, err := v.allocInode(modeFile)
	if err != nil {
		return nil, err
	}
	if err := v.flushInode(in); err != nil {
		return nil, err
	}
	if err := v.dirAdd(parent, in.ino, name); err != nil {
		return nil, err
	}
	if err := v.commit(); err != nil {
		return nil, err
	}
	return &file{fs: v, in: in}, nil
}

// Open implements fs.FileSystem.
func (v *FS) Open(path string) (fs.File, error) {
	if err := v.alive(); err != nil {
		return nil, err
	}
	in, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	if in.mode == modeDir {
		return nil, fs.ErrIsDir
	}
	return &file{fs: v, in: in}, nil
}

// Mkdir implements fs.FileSystem.
func (v *FS) Mkdir(path string) error {
	if err := v.alive(); err != nil {
		return err
	}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	if _, existing, err := v.dirFind(parent, name); err != nil {
		return err
	} else if existing != 0 {
		return fs.ErrExist
	}
	in, err := v.allocInode(modeDir)
	if err != nil {
		return err
	}
	if err := v.flushInode(in); err != nil {
		return err
	}
	if err := v.dirAdd(parent, in.ino, name); err != nil {
		return err
	}
	return v.commit()
}

// Remove implements fs.FileSystem.
func (v *FS) Remove(path string) error {
	if err := v.alive(); err != nil {
		return err
	}
	parent, name, err := v.resolveParent(path)
	if err != nil {
		return err
	}
	off, ino, err := v.dirFind(parent, name)
	if err != nil {
		return err
	}
	if ino == 0 {
		return fs.ErrNotExist
	}
	in, err := v.loadInode(ino)
	if err != nil {
		return err
	}
	if in.mode == modeDir {
		empty, err := v.dirEmpty(in)
		if err != nil {
			return err
		}
		if !empty {
			return fs.ErrNotEmpty
		}
	}
	if err := v.truncateInode(in, 0); err != nil {
		return err
	}
	in.mode = modeFree
	in.hardDirty = true
	if err := v.flushInode(in); err != nil {
		return err
	}
	delete(v.inodes, ino)
	if err := v.dirDelete(parent, off); err != nil {
		return err
	}
	v.stageBitmap()
	return v.commit()
}

// Rename implements fs.FileSystem: the entry moves in one journal
// transaction, replacing a regular file at the target if present.
func (v *FS) Rename(oldPath, newPath string) error {
	if err := v.alive(); err != nil {
		return err
	}
	oldParent, oldName, err := v.resolveParent(oldPath)
	if err != nil {
		return err
	}
	oldOff, ino, err := v.dirFind(oldParent, oldName)
	if err != nil {
		return err
	}
	if ino == 0 {
		return fs.ErrNotExist
	}
	moving, err := v.loadInode(ino)
	if err != nil {
		return err
	}
	newParent, newName, err := v.resolveParent(newPath)
	if err != nil {
		return err
	}
	newOff, existing, err := v.dirFind(newParent, newName)
	if err != nil {
		return err
	}
	if existing == ino {
		return nil // rename onto itself
	}
	if existing != 0 {
		target, err := v.loadInode(existing)
		if err != nil {
			return err
		}
		if target.mode == modeDir {
			return fs.ErrIsDir
		}
		if moving.mode == modeDir {
			return fs.ErrNotDir
		}
		// Replace: the old target's storage is released.
		if err := v.truncateInode(target, 0); err != nil {
			return err
		}
		target.mode = modeFree
		target.hardDirty = true
		if err := v.flushInode(target); err != nil {
			return err
		}
		delete(v.inodes, existing)
		if err := v.dirSet(newParent, newOff, ino, newName); err != nil {
			return err
		}
	} else {
		if err := v.dirAdd(newParent, ino, newName); err != nil {
			return err
		}
		// dirAdd may have grown/changed the parent; refresh old offset if
		// both paths share a parent directory.
		if newParent == oldParent {
			if oldOff, ino, err = v.dirFind(oldParent, oldName); err != nil || ino == 0 {
				return fmt.Errorf("%w: rename lost source entry", ErrCorrupt)
			}
		}
	}
	if err := v.dirDelete(oldParent, oldOff); err != nil {
		return err
	}
	v.stageBitmap()
	return v.commit()
}

// ReadDir implements fs.FileSystem.
func (v *FS) ReadDir(path string) ([]fs.DirEntry, error) {
	if err := v.alive(); err != nil {
		return nil, err
	}
	in, err := v.resolve(path)
	if err != nil {
		return nil, err
	}
	content, err := v.dirContent(in)
	if err != nil {
		return nil, err
	}
	var out []fs.DirEntry
	for o := 0; o+dirEntSize <= len(content); o += dirEntSize {
		e := content[o : o+dirEntSize]
		ino := binary.LittleEndian.Uint32(e[0:])
		if ino == 0 {
			continue
		}
		child, err := v.loadInode(ino)
		if err != nil {
			return nil, err
		}
		nl := int(e[4])
		out = append(out, fs.DirEntry{
			Name:  string(e[dirEntNameOff : dirEntNameOff+nl]),
			IsDir: child.mode == modeDir,
		})
	}
	return out, nil
}

// Stat implements fs.FileSystem.
func (v *FS) Stat(path string) (fs.FileInfo, error) {
	if err := v.alive(); err != nil {
		return fs.FileInfo{}, err
	}
	in, err := v.resolve(path)
	if err != nil {
		return fs.FileInfo{}, err
	}
	name := path
	if i := strings.LastIndexByte(strings.TrimRight(path, "/"), '/'); i >= 0 {
		name = strings.TrimRight(path, "/")[i+1:]
	}
	return fs.FileInfo{Name: name, Size: in.size, IsDir: in.mode == modeDir}, nil
}

// Sync implements fs.FileSystem: flush all dirty inodes and commit.
func (v *FS) Sync() error {
	if err := v.alive(); err != nil {
		return err
	}
	// Sorted order: flushInode reads the inode's table block on a cache
	// miss, and device operations must happen in a reproducible sequence.
	for _, ino := range sortedKeys(v.inodes) {
		if in := v.inodes[ino]; in.hardDirty || in.softDirty {
			if err := v.flushInode(in); err != nil {
				return err
			}
		}
	}
	v.stageBitmap()
	return v.commit()
}

// Unmount implements fs.FileSystem.
func (v *FS) Unmount() error {
	if v.unmounted {
		return fs.ErrUnmounted
	}
	if err := v.Sync(); err != nil {
		return err
	}
	if err := v.checkpoint(); err != nil {
		return err
	}
	v.sb.state = stateClean
	if err := writeBlock(v.dev, 0, v.sb.encode()); err != nil {
		return err
	}
	if err := v.dev.Flush(); err != nil {
		return err
	}
	v.unmounted = true
	return nil
}

// SimulateCrash drops all in-memory state without checkpointing or marking
// the superblock clean, leaving the device exactly as a power cut would.
// The FS must be re-Mounted (triggering journal replay) to be used again.
func (v *FS) SimulateCrash() {
	v.unmounted = true
	v.inodes = nil
	v.meta = nil
	v.txn = nil
	v.pending = nil
	v.bitmap = nil
}

var _ fs.FileSystem = (*FS)(nil)
