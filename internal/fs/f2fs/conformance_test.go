package f2fs

import (
	"testing"

	"flashwear/internal/blockdev"
	"flashwear/internal/device"
	"flashwear/internal/faultinject"
	"flashwear/internal/fs"
	"flashwear/internal/fs/fstest"
	"flashwear/internal/simclock"
)

// TestConformance runs the shared fs.FileSystem contract suite on f2fs.
func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fs.FileSystem {
		dev, err := blockdev.NewMem(24<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		v, err := Mount(dev, fs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	})
}

// TestCrashConformance runs the shared crash-consistency suite on f2fs,
// with the offline checker after every recovery.
func TestCrashConformance(t *testing.T) {
	var dev *blockdev.MemDevice
	fstest.RunCrash(t, func(t *testing.T) (fstest.CrashFS, func(t *testing.T) fstest.CrashFS) {
		d, err := blockdev.NewMem(24<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		dev = d
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		mount := func(t *testing.T) fstest.CrashFS {
			v, err := Mount(dev, fs.Options{})
			if err != nil {
				t.Fatalf("remount: %v", err)
			}
			return v
		}
		return mount(t), mount
	}, func(t *testing.T) {
		rep, err := Check(dev)
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("check after recovery: %v", rep.Corruptions)
		}
	})
}

// faultyCrashFS couples the file system's crash with the device's power
// rail: SimulateCrash drops FS volatile state AND cuts device power, so
// recovery exercises the FTL's OOB-scan rebuild underneath roll-forward.
type faultyCrashFS struct {
	fstest.CrashFS
	dev *device.Device
}

func (f faultyCrashFS) SimulateCrash() {
	f.CrashFS.SimulateCrash()
	f.dev.CutPower()
}

// TestCrashConformanceOnFaultyFlash runs the crash suite on a simulated
// flash device under an injected fault plan, with every crash also cutting
// device power — the log-on-log recovery stack (f2fs roll-forward over FTL
// OOB-scan rebuild) with transient faults firing underneath.
func TestCrashConformanceOnFaultyFlash(t *testing.T) {
	var dev *device.Device
	fstest.RunCrash(t, func(t *testing.T) (fstest.CrashFS, func(t *testing.T) fstest.CrashFS) {
		prof := device.ProfileMotoE8().Scaled(256)
		prof.Faults = &faultinject.Plan{
			Seed:             23,
			ReadFaultProb:    2e-3,
			ProgramFaultProb: 1e-3,
			EraseFaultProb:   1e-4,
		}
		d, err := device.New(prof, simclock.New())
		if err != nil {
			t.Fatal(err)
		}
		dev = d
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		mount := func(t *testing.T) fstest.CrashFS {
			if dev.PowerLost() {
				if err := dev.PowerCycle(); err != nil {
					t.Fatalf("power cycle: %v", err)
				}
			}
			v, err := Mount(dev, fs.Options{})
			if err != nil {
				t.Fatalf("remount: %v", err)
			}
			return faultyCrashFS{v, dev}
		}
		return mount(t), mount
	}, func(t *testing.T) {
		rep, err := Check(dev)
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("check after faulty-flash recovery: %v", rep.Corruptions)
		}
	})
}

// TestConformanceOnFlash runs the contract suite with f2fs mounted on a
// real simulated flash device — the log-on-log stack a phone actually runs.
func TestConformanceOnFlash(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fs.FileSystem {
		dev, err := device.New(device.ProfileMotoE8().Scaled(256), simclock.New())
		if err != nil {
			t.Fatal(err)
		}
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		v, err := Mount(dev, fs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	})
}
