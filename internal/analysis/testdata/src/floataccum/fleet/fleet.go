// Package fleet exercises the floataccum analyzer, which scopes by
// import-path base name: this fixture package is "fleet", so its merge
// paths must stay integer like the real one's.
package fleet

type acc struct {
	n       int64
	waMilli int64
	wa      float64
}

func (a *acc) add(n int64, wa float64) {
	a.n += n                     // ok: integer accumulation
	a.waMilli += int64(wa * 1e3) // ok: fixed-point accumulation
	a.wa += wa                   // want `floating-point \+= accumulation`
}

func merge(dst, src *acc) {
	dst.n += src.n
	dst.wa = dst.wa + src.wa // want `floating-point accumulation \(x = x \+`
	dst.wa -= 0.5            // want `floating-point -= accumulation`
}

func count(fs []float64) float64 {
	var peak float64
	for _, f := range fs {
		if f > peak {
			peak = f // ok: selection, not accumulation
		}
	}
	return peak
}

func render(a *acc) float64 {
	if a.n == 0 {
		return 0
	}
	return float64(a.waMilli) / 1e3 / float64(a.n) // ok: derived at render time
}

func waived(a *acc, jitter float64) {
	//flashvet:ignore floataccum single-device scratch value, never merged across workers
	a.wa += jitter
}
