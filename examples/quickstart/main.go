// Quickstart: build a simulated eMMC device, push some writes through it,
// and watch the JEDEC wear-out indicator move — the five-minute tour of the
// flashwear API.
package main

import (
	"fmt"
	"log"

	"flashwear/pkg/flashwear"
)

func main() {
	// A clock everything shares: the device advances it by each request's
	// service time, so elapsed simulated time is meaningful.
	clock := flashwear.NewClock()

	// The paper's Toshiba 8GB eMMC, scaled down 512x (16 MiB) so this
	// example runs in milliseconds. Scaling preserves bandwidths and
	// wear-per-scaled-byte; see DESIGN.md.
	profile := flashwear.ProfileEMMC8()
	dev, err := flashwear.NewDevice(profile.Scaled(512), clock)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Device: %s, %d MiB exported, rated %d P/E cycles\n",
		profile.Name, dev.Size()>>20, profile.RatedPE)

	// §2.3's back-of-the-envelope expectation for the full-size device.
	env := flashwear.NewEnvelope(profile.CapacityBytes)
	fmt.Printf("Envelope says: %d GiB of writes (%d full rewrites) before wear-out\n",
		env.TotalHostBytes()>>30, env.AssumedPE)

	// Hammer a small region with 4 KiB random writes — the paper's attack
	// pattern — and watch the health registers.
	w := flashwear.NewDeviceWriter(dev, 4096, false, 42)
	w.RegionLen = dev.Size() / 16 // a small hot region, like 4 x 100MB files

	var written int64
	lastLevel := dev.WearIndicator(flashwear.PoolB)
	fmt.Printf("\n%-12s %-10s %-10s %-6s\n", "host MiB", "indicator", "PRE_EOL", "WA")
	for level := lastLevel; level < 4; {
		n, err := w.Step(4 << 20)
		written += n
		if err != nil {
			fmt.Println("device failed:", err)
			break
		}
		if level = dev.WearIndicator(flashwear.PoolB); level > lastLevel {
			fmt.Printf("%-12d %-10d %-10d %-6.2f\n",
				written>>20, level, dev.PreEOLInfo(), dev.FTL().WriteAmplification())
			lastLevel = level
		}
	}
	fmt.Printf("\nSimulated time elapsed: %.1f s at ~%.1f MiB/s\n",
		clock.Now().Seconds(), float64(written)/clock.Now().Seconds()/(1<<20))
	fmt.Println("Each indicator step is 10% of the device's life — gone.")
}
