package ufs

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"flashwear/internal/device"
	"flashwear/internal/simclock"
)

func testLU(t *testing.T) *LU {
	t.Helper()
	dev, err := device.New(device.ProfileSamsungS6().Scaled(2048), simclock.New())
	if err != nil {
		t.Fatal(err)
	}
	return New(dev)
}

func TestReadWrite10RoundTrip(t *testing.T) {
	lu := testLU(t)
	if err := lu.TestUnitReady(); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xB7}, 3*lu.BlockSize())
	if err := lu.Write10(BuildWrite10(5, 3), payload); err != nil {
		t.Fatalf("WRITE(10): %v", err)
	}
	got, err := lu.Read10(BuildRead10(5, 3))
	if err != nil {
		t.Fatalf("READ(10): %v", err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("round trip mismatch")
	}
}

func TestCDBValidation(t *testing.T) {
	lu := testLU(t)
	if _, err := lu.Read10([]byte{OpRead10, 0}); !errors.Is(err, ErrInvalidCDB) {
		t.Errorf("short CDB err = %v", err)
	}
	if _, err := lu.Read10(BuildWrite10(0, 1)); !errors.Is(err, ErrInvalidCDB) {
		t.Errorf("wrong opcode err = %v", err)
	}
	if err := lu.Write10(BuildWrite10(0, 2), make([]byte, lu.BlockSize())); !errors.Is(err, ErrInvalidCDB) {
		t.Errorf("data/length mismatch err = %v", err)
	}
	// Beyond capacity.
	last := uint32(lu.Capacity())
	if _, err := lu.Read10(BuildRead10(last, 1)); !errors.Is(err, ErrLBARange) {
		t.Errorf("out-of-range read err = %v", err)
	}
	if err := lu.Unmap(last, 1); !errors.Is(err, ErrLBARange) {
		t.Errorf("out-of-range unmap err = %v", err)
	}
}

func TestUnmapDiscards(t *testing.T) {
	lu := testLU(t)
	payload := bytes.Repeat([]byte{1}, lu.BlockSize())
	if err := lu.Write10(BuildWrite10(0, 1), payload); err != nil {
		t.Fatal(err)
	}
	if err := lu.Unmap(0, 1); err != nil {
		t.Fatal(err)
	}
	got, err := lu.Read10(BuildRead10(0, 1))
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d survived UNMAP", i)
		}
	}
	if err := lu.SyncCache(); err != nil {
		t.Fatal(err)
	}
}

func TestHealthDescriptor(t *testing.T) {
	lu := testLU(t)
	d := lu.HealthDescriptor()
	if len(d) != HealthDescLen || d[1] != 0x09 {
		t.Fatalf("descriptor header wrong: %v", d[:4])
	}
	if d[HealthPreEOLInfo] != 1 || d[HealthLifeTimeEstB] != 1 {
		t.Fatalf("fresh health = pre%d estB%d", d[HealthPreEOLInfo], d[HealthLifeTimeEstB])
	}
}

func TestHealthMovesUnderWear(t *testing.T) {
	dev, err := device.New(func() device.Profile {
		p := device.ProfileSamsungS6().Scaled(2048)
		p.RatedPE = 80
		return p
	}(), simclock.New())
	if err != nil {
		t.Fatal(err)
	}
	lu := New(dev)
	payload := make([]byte, lu.BlockSize())
	rng := rand.New(rand.NewSource(4))
	span := uint32(lu.Capacity() / 8)
	for i := 0; i < 300_000; i++ {
		lba := uint32(rng.Intn(int(span)))
		if err := lu.Write10(BuildWrite10(lba, 1), payload); err != nil {
			break // a dying LU ends the loop; health must reflect it
		}
		if i%20_000 == 0 {
			if lu.HealthDescriptor()[HealthLifeTimeEstB] >= 3 {
				return
			}
		}
	}
	if lu.HealthDescriptor()[HealthLifeTimeEstB] < 3 && lu.TestUnitReady() == nil {
		t.Fatal("health descriptor never moved under heavy wear")
	}
}
