package device

import (
	"fmt"
	"time"

	"flashwear/internal/nand"
)

// Size helpers.
const (
	KiB = int64(1) << 10
	MiB = int64(1) << 20
	GiB = int64(1) << 30
)

// EnvelopeAssumedPE is the rated endurance §2.3's "back-of-the-envelope"
// calculation assumes for a consumer-grade drive: 3K rewrites of the entire
// device. The gap between this assumption and the calibrated device profiles
// is exactly the paper's finding.
const EnvelopeAssumedPE = 3000

// The seven evaluation devices of §4.1, calibrated to the published
// magnitudes (see DESIGN.md "Calibration targets"):
//
//   - ProfileUSD16:     Kingston SDC4/16GB MicroSD ("uSD 16GB")
//   - ProfileEMMC8:     Toshiba THGBMBG6D1KBAIL 8GB ("eMMC 8GB")
//   - ProfileEMMC16:    SanDisk iNAND 7030 16GB, hybrid ("eMMC 16GB")
//   - ProfileMotoE8:    Moto E 2nd gen internal eMMC ("Moto E 8GB")
//   - ProfileSamsungS6: Samsung S6 internal UFS ("Samsung S6 32GB")
//   - ProfileBLU512:    BLU Dash D171a ("BLU 512MB")
//   - ProfileBLU4:      BLU Advance 4.0L ("BLU 4GB")

// ProfileUSD16 returns the MicroSD card profile. A tiny controller with a
// block-mapped FTL: sequential writes stream, but random writes inside an
// allocation unit force whole-AU copies — the collapse visible in Fig 1b.
func ProfileUSD16() Profile {
	return Profile{
		Name: "uSD 16GB", Kind: KindUSD,
		CapacityBytes: 16 * GiB,
		Cell:          nand.MLC, RatedPE: 1500,
		PageSize: 4096, PagesPerBlock: 64, Parallelism: 2,
		OverProvision: 0.07, WearLeveling: false,
		CmdOverhead:    300 * time.Microsecond,
		InterfaceMBps:  25, // SD UHS-I card of this class
		ProgramTime:    900 * time.Microsecond,
		AllocationUnit: 512 * KiB,
		Seed:           101,
	}
}

// ProfileEMMC8 returns the Toshiba 8GB eMMC profile. Calibrated so that
// ~992 GiB of 4KiB random rewrites consume 10% of estimated lifetime at
// ~20 MiB/s (Figure 2, §4.3).
func ProfileEMMC8() Profile {
	return Profile{
		Name: "eMMC 8GB", Kind: KindEMMC,
		CapacityBytes: 8 * GiB,
		Cell:          nand.MLC, RatedPE: 1400,
		PageSize: 4096, PagesPerBlock: 64, Parallelism: 4,
		OverProvision: 0.07, WearLeveling: true,
		CmdOverhead:   80 * time.Microsecond,
		InterfaceMBps: 150,
		ProgramTime:   800 * time.Microsecond,
		Seed:          102,
	}
}

// ProfileEMMC16 returns the SanDisk iNAND 7030 16GB profile — the hybrid
// device of Table 1, with a small SLC-mode "Type A" pool in front of the
// MLC "Type B" array. Calibrated to ~2.2 TiB per Type B indicator increment,
// a ~6x Type A/Type B wear ratio before pool merging, and ~40 MiB/s
// large-sequential throughput.
func ProfileEMMC16() Profile {
	return Profile{
		Name: "eMMC 16GB", Kind: KindEMMC,
		CapacityBytes: 16 * GiB,
		Cell:          nand.MLC, RatedPE: 1500,
		PageSize: 4096, PagesPerBlock: 64, Parallelism: 8,
		OverProvision: 0.07, WearLeveling: true,
		Hybrid: &HybridProfile{
			CacheBytes:       512 * MiB,
			CacheRatedPE:     5000,
			DrainRatio:       0.021,
			RouteMaxBytes:    64 << 10,
			MergeUtilisation: 0.85,
		},
		CmdOverhead:   80 * time.Microsecond,
		InterfaceMBps: 200,
		ProgramTime:   800 * time.Microsecond,
		Seed:          103,
	}
}

// ProfileMotoE8 returns the Moto E 2nd gen internal storage profile: a
// mid-range 8GB eMMC, a little slower than the external Toshiba part.
func ProfileMotoE8() Profile {
	return Profile{
		Name: "Moto E 8GB", Kind: KindEMMC,
		CapacityBytes: 8 * GiB,
		Cell:          nand.MLC, RatedPE: 1300,
		PageSize: 4096, PagesPerBlock: 64, Parallelism: 2,
		OverProvision: 0.07, WearLeveling: true,
		CmdOverhead:   100 * time.Microsecond,
		InterfaceMBps: 100,
		ProgramTime:   850 * time.Microsecond,
		Seed:          104,
	}
}

// ProfileSamsungS6 returns the Samsung S6 internal UFS profile: deep
// parallelism and a fast interface (Figure 1's top curve), with endurance
// per §4.4 still only days from wear-out at full rate.
func ProfileSamsungS6() Profile {
	return Profile{
		Name: "Samsung S6 32GB", Kind: KindUFS,
		CapacityBytes: 32 * GiB,
		Cell:          nand.MLC, RatedPE: 1000,
		PageSize: 4096, PagesPerBlock: 64, Parallelism: 16,
		OverProvision: 0.07, WearLeveling: true,
		CmdOverhead:   40 * time.Microsecond,
		InterfaceMBps: 350,
		ProgramTime:   450 * time.Microsecond,
		Seed:          105,
	}
}

// ProfileBLU512 returns the BLU Dash D171a profile: a budget part whose
// health registers are garbage (§4.4: "did not provide reliable wear-out
// indications") but which bricks within two weeks regardless.
func ProfileBLU512() Profile {
	return Profile{
		Name: "BLU 512MB", Kind: KindEMMC,
		CapacityBytes: 512 * MiB,
		Cell:          nand.MLC, RatedPE: 3000,
		PageSize: 4096, PagesPerBlock: 64, Parallelism: 1,
		OverProvision: 0.07, WearLeveling: false,
		CmdOverhead:         250 * time.Microsecond,
		InterfaceMBps:       50,
		ProgramTime:         900 * time.Microsecond,
		UnreliableIndicator: true,
		BrickAtEOL:          true,
		Seed:                106,
	}
}

// ProfileBLU4 returns the BLU Advance 4.0L profile: budget TLC-class
// endurance, unreliable health reporting.
func ProfileBLU4() Profile {
	return Profile{
		Name: "BLU 4GB", Kind: KindEMMC,
		CapacityBytes: 4 * GiB,
		Cell:          nand.TLC, RatedPE: 600,
		PageSize: 4096, PagesPerBlock: 64, Parallelism: 2,
		OverProvision: 0.07, WearLeveling: false,
		CmdOverhead:         200 * time.Microsecond,
		InterfaceMBps:       80,
		ProgramTime:         1600 * time.Microsecond,
		UnreliableIndicator: true,
		BrickAtEOL:          true,
		Seed:                107,
	}
}

// ProfileEMMC8TLC is the "technology trends" extension: the eMMC 8GB
// profile rebuilt with TLC cells (§1: MLC/TLC trends "will exacerbate this
// problem").
func ProfileEMMC8TLC() Profile {
	p := ProfileEMMC8()
	p.Name = "eMMC 8GB (TLC)"
	p.Cell = nand.TLC
	p.RatedPE = 500
	p.ProgramTime = 1800 * time.Microsecond
	return p
}

// Figure1Profiles returns the five devices plotted in Figure 1, in legend
// order.
func Figure1Profiles() []Profile {
	return []Profile{
		ProfileUSD16(), ProfileEMMC8(), ProfileEMMC16(), ProfileMotoE8(), ProfileSamsungS6(),
	}
}

// AllProfiles returns every calibrated device.
func AllProfiles() []Profile {
	return append(Figure1Profiles(), ProfileBLU512(), ProfileBLU4())
}

// ProfileByName finds a calibrated profile by its paper label.
func ProfileByName(name string) (Profile, error) {
	for _, p := range AllProfiles() {
		if p.Name == name {
			return p, nil
		}
	}
	return Profile{}, fmt.Errorf("device: unknown profile %q", name)
}
