package trace

import "flashwear/internal/telemetry"

// Instrument registers the recorder's per-op counters with reg under
// "trace.ops{op=...}" and "trace.bytes{op=...}". Pure observers only; see
// DESIGN.md §7.
func (r *Recorder) Instrument(reg *telemetry.Registry) {
	op := func(base, kind string) string { return telemetry.Name("trace."+base, "op", kind) }
	reg.CounterFunc(op("ops", "write"), func() int64 { return r.stats.Writes })
	reg.CounterFunc(op("ops", "read"), func() int64 { return r.stats.Reads })
	reg.CounterFunc(op("ops", "discard"), func() int64 { return r.stats.Discards })
	reg.CounterFunc(op("ops", "flush"), func() int64 { return r.stats.Flushes })
	reg.CounterFunc(op("bytes", "write"), func() int64 { return r.stats.BytesWritten })
	reg.CounterFunc(op("bytes", "read"), func() int64 { return r.stats.BytesRead })
	reg.CounterFunc(op("bytes", "discard"), func() int64 { return r.stats.BytesDiscarded })
}
