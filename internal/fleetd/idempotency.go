package fleetd

import (
	"bytes"
	"net/http"
	"sync"
)

// idemStore makes the mutating endpoints safe to retry: a client that
// timed out never knows whether its POST landed, so it retries with the
// same Idempotency-Key and must get the original outcome instead of a
// second execution (a duplicate campaign, a double fork).
//
// Semantics:
//
//   - First request with a key executes the handler. A concurrent
//     duplicate (the retry raced the original) waits for it to finish
//     rather than executing again.
//   - A successful (2xx) response is recorded and replayed verbatim to
//     every later duplicate.
//   - A failed response is NOT recorded: the client saw an error, so its
//     retry deserves a fresh execution. Only the in-flight dedup applies.
//
// The store is bounded: oldest recorded keys fall off first. A replay
// after eviction re-executes, which is safe for every endpoint here —
// submit/fork create new IDs (visible duplicates, not corruption) and
// pause/resume are naturally idempotent.
type idemStore struct {
	mu    sync.Mutex
	cap   int
	byKey map[string]*idemEntry
	order []string // recorded keys, oldest first
}

type idemEntry struct {
	done chan struct{} // closed when the first execution finishes
	// set before done closes, immutable after:
	recorded bool
	code     int
	header   http.Header
	body     []byte
}

func newIdemStore(capacity int) *idemStore {
	if capacity <= 0 {
		capacity = 1024
	}
	return &idemStore{cap: capacity, byKey: make(map[string]*idemEntry)}
}

// begin claims key. It returns (entry, true) when the caller is the first
// executor and must call finish on the entry, or (entry, false) when
// another request already executed (or is executing) under this key and
// the caller should wait on entry.done and replay.
func (s *idemStore) begin(key string) (*idemEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if e, ok := s.byKey[key]; ok {
		return e, false
	}
	e := &idemEntry{done: make(chan struct{})}
	s.byKey[key] = e
	return e, true
}

// finish completes the first execution under key: a 2xx response is
// recorded for replay; anything else releases the key so a retry
// re-executes.
func (s *idemStore) finish(key string, e *idemEntry, code int, header http.Header, body []byte) {
	s.mu.Lock()
	if code/100 == 2 {
		e.recorded = true
		e.code = code
		e.header = header
		e.body = body
		s.order = append(s.order, key)
		for len(s.order) > s.cap {
			delete(s.byKey, s.order[0])
			s.order = s.order[1:]
		}
	} else {
		delete(s.byKey, key)
	}
	s.mu.Unlock()
	close(e.done)
}

// recorder buffers a handler's response so it can be both sent and
// stored.
type recorder struct {
	header http.Header
	code   int
	body   bytes.Buffer
}

func newRecorder() *recorder {
	return &recorder{header: make(http.Header), code: http.StatusOK}
}

func (r *recorder) Header() http.Header { return r.header }

func (r *recorder) WriteHeader(code int) { r.code = code }

func (r *recorder) Write(p []byte) (int, error) { return r.body.Write(p) }

// replay writes a stored response to w.
func (e *idemEntry) replay(w http.ResponseWriter) {
	for k, vs := range e.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(e.code)
	w.Write(e.body)
}

// idempotent wraps a mutating handler with the retry-dedup protocol.
// Requests without an Idempotency-Key header pass straight through. The
// key namespace includes method and path, so the same key on different
// endpoints never collides.
func (s *Server) idempotent(h http.HandlerFunc) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		key := r.Header.Get("Idempotency-Key")
		if key == "" {
			h(w, r)
			return
		}
		key = r.Method + " " + r.URL.Path + "\x00" + key
		e, first := s.idem.begin(key)
		if !first {
			select {
			case <-e.done:
			case <-r.Context().Done():
				return
			}
			if e.recorded {
				e.replay(w)
				return
			}
			// The original execution failed and was not recorded; this
			// retry executes freshly under its own claim.
			s.idempotent(h)(w, r)
			return
		}
		rec := newRecorder()
		h(rec, r)
		s.idem.finish(key, e, rec.code, rec.header, rec.body.Bytes())
		for k, vs := range rec.header {
			for _, v := range vs {
				w.Header().Add(k, v)
			}
		}
		w.WriteHeader(rec.code)
		w.Write(rec.body.Bytes())
	}
}
