package blockdev

import "errors"

// Counting wraps a Device and counts traffic through it. It is how the
// experiments measure the I/O volume *reaching the storage device* — the
// quantity Figure 4 compares across file systems.
type Counting struct {
	Inner Device

	ReadOps, WriteOps, DiscardOps, FlushOps int64
	BytesRead, BytesWritten                 int64
}

// NewCounting wraps d.
func NewCounting(d Device) *Counting { return &Counting{Inner: d} }

// ReadAt implements Device.
func (c *Counting) ReadAt(p []byte, off int64) error {
	c.ReadOps++
	c.BytesRead += int64(len(p))
	return c.Inner.ReadAt(p, off)
}

// WriteAt implements Device.
func (c *Counting) WriteAt(p []byte, off int64) error {
	c.WriteOps++
	c.BytesWritten += int64(len(p))
	return c.Inner.WriteAt(p, off)
}

// WriteAccounted implements Device.
func (c *Counting) WriteAccounted(off, length int64) error {
	c.WriteOps++
	c.BytesWritten += length
	return c.Inner.WriteAccounted(off, length)
}

// Discard implements Device.
func (c *Counting) Discard(off, length int64) error {
	c.DiscardOps++
	return c.Inner.Discard(off, length)
}

// Flush implements Device.
func (c *Counting) Flush() error {
	c.FlushOps++
	return c.Inner.Flush()
}

// Size implements Device.
func (c *Counting) Size() int64 { return c.Inner.Size() }

// SectorSize implements Device.
func (c *Counting) SectorSize() int { return c.Inner.SectorSize() }

// ErrInjected is the error produced by a Faulty device when a fault fires.
var ErrInjected = errors.New("blockdev: injected fault")

// Faulty wraps a Device and fails operations on demand, for failure-path
// tests. Ops are counted across reads and writes; when the counter reaches
// FailAfter (>0), every subsequent read/write fails until the device is
// re-armed.
type Faulty struct {
	Inner     Device
	FailAfter int64 // fail once this many read/write ops have succeeded
	ops       int64
}

// NewFaulty wraps d, failing all reads and writes after n successful ones.
func NewFaulty(d Device, n int64) *Faulty { return &Faulty{Inner: d, FailAfter: n} }

func (f *Faulty) tick() error {
	if f.FailAfter > 0 && f.ops >= f.FailAfter {
		return ErrInjected
	}
	f.ops++
	return nil
}

// ReadAt implements Device.
func (f *Faulty) ReadAt(p []byte, off int64) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Inner.ReadAt(p, off)
}

// WriteAt implements Device.
func (f *Faulty) WriteAt(p []byte, off int64) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Inner.WriteAt(p, off)
}

// WriteAccounted implements Device.
func (f *Faulty) WriteAccounted(off, length int64) error {
	if err := f.tick(); err != nil {
		return err
	}
	return f.Inner.WriteAccounted(off, length)
}

// Discard implements Device.
func (f *Faulty) Discard(off, length int64) error { return f.Inner.Discard(off, length) }

// Flush implements Device.
func (f *Faulty) Flush() error { return f.Inner.Flush() }

// Size implements Device.
func (f *Faulty) Size() int64 { return f.Inner.Size() }

// SectorSize implements Device.
func (f *Faulty) SectorSize() int { return f.Inner.SectorSize() }
