package report

import "fmt"

// Sketch is the bounded-bucket integer core shared by Histogram and the
// fleetd streaming aggregates: a fixed number of integer buckets plus
// explicit under/overflow counts, so no observation is ever dropped and
// the memory footprint is independent of how many observations were
// folded in. All state is integral, which makes Merge exactly associative
// and commutative — per-worker and per-shard sketches combine to
// byte-identical results regardless of partitioning, the same argument
// the fleet determinism tests pin for Histogram.
//
// Sketch does not interpret bucket indices; callers that need a value
// axis wrap it (Histogram maps [Min, Max) onto the buckets). fleetd uses
// bare sketches for already-discrete distributions such as JEDEC wear
// levels, where bucket i simply is level i.
type Sketch struct {
	Counts []int64
	Under  int64
	Over   int64
}

// NewSketch returns a sketch with the given bucket count. It panics on a
// non-positive count, which is a programming error.
func NewSketch(buckets int) Sketch {
	if buckets <= 0 {
		panic(fmt.Sprintf("report: NewSketch: buckets = %d", buckets))
	}
	return Sketch{Counts: make([]int64, buckets)}
}

// Buckets returns the bucket count.
func (s *Sketch) Buckets() int { return len(s.Counts) }

// AddBucket records n observations in bucket i; a negative i lands in
// Under, i past the last bucket in Over.
func (s *Sketch) AddBucket(i int, n int64) {
	switch {
	case i < 0:
		s.Under += n
	case i >= len(s.Counts):
		s.Over += n
	default:
		s.Counts[i] += n
	}
}

// Total returns the number of recorded observations, including under- and
// overflow.
func (s *Sketch) Total() int64 {
	t := s.Under + s.Over
	for _, c := range s.Counts {
		t += c
	}
	return t
}

// MergeSketch adds o's counts into s. The bucket counts must match.
func (s *Sketch) MergeSketch(o Sketch) error {
	if len(o.Counts) != len(s.Counts) {
		return fmt.Errorf("report: MergeSketch: %d buckets vs %d", len(s.Counts), len(o.Counts))
	}
	s.Under += o.Under
	s.Over += o.Over
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	return nil
}

// Clone returns a deep copy.
func (s *Sketch) Clone() Sketch {
	return Sketch{Counts: append([]int64(nil), s.Counts...), Under: s.Under, Over: s.Over}
}
