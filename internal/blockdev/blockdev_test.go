package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestNewMemValidation(t *testing.T) {
	if _, err := NewMem(0, 512); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := NewMem(4096, 0); err == nil {
		t.Error("zero sector accepted")
	}
	if _, err := NewMem(1000, 512); err == nil {
		t.Error("non-multiple size accepted")
	}
}

func TestMemReadWriteRoundTrip(t *testing.T) {
	m, err := NewMem(1<<20, 512)
	if err != nil {
		t.Fatal(err)
	}
	want := bytes.Repeat([]byte{0xCD}, 4096)
	if err := m.WriteAt(want, 8192); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if err := m.ReadAt(got, 8192); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip mismatch")
	}
}

func TestMemUnwrittenReadsZero(t *testing.T) {
	m, _ := NewMem(1<<20, 512)
	got := make([]byte, 1024)
	got[0] = 0xFF
	if err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %x, want 0", i, b)
		}
	}
}

func TestMemAlignmentAndBounds(t *testing.T) {
	m, _ := NewMem(1<<20, 512)
	if err := m.WriteAt(make([]byte, 512), 100); !errors.Is(err, ErrAlignment) {
		t.Errorf("unaligned offset err = %v", err)
	}
	if err := m.WriteAt(make([]byte, 100), 0); !errors.Is(err, ErrAlignment) {
		t.Errorf("unaligned length err = %v", err)
	}
	if err := m.WriteAt(make([]byte, 512), 1<<20); !errors.Is(err, ErrBounds) {
		t.Errorf("out of bounds err = %v", err)
	}
	if err := m.ReadAt(make([]byte, 1024), 1<<20-512); !errors.Is(err, ErrBounds) {
		t.Errorf("straddling read err = %v", err)
	}
}

func TestMemDiscardZeroes(t *testing.T) {
	m, _ := NewMem(1<<20, 512)
	if err := m.WriteAt(bytes.Repeat([]byte{1}, 1024), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.Discard(0, 512); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 1024)
	if err := m.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 || got[512] != 1 {
		t.Fatal("discard range wrong")
	}
}

func TestMemWriteAccountedDropsData(t *testing.T) {
	m, _ := NewMem(1<<20, 512)
	if err := m.WriteAt(bytes.Repeat([]byte{9}, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := m.WriteAccounted(0, 512); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 512)
	_ = m.ReadAt(got, 0)
	if got[0] != 0 {
		t.Fatal("accounted write did not clear payload")
	}
}

func TestCountingCounts(t *testing.T) {
	m, _ := NewMem(1<<20, 512)
	c := NewCounting(m)
	_ = c.WriteAt(make([]byte, 1024), 0)
	_ = c.WriteAccounted(2048, 512)
	_ = c.ReadAt(make([]byte, 512), 0)
	_ = c.Discard(0, 512)
	_ = c.Flush()
	if c.WriteOps != 2 || c.BytesWritten != 1536 {
		t.Fatalf("write stats: ops=%d bytes=%d", c.WriteOps, c.BytesWritten)
	}
	if c.ReadOps != 1 || c.BytesRead != 512 {
		t.Fatalf("read stats: ops=%d bytes=%d", c.ReadOps, c.BytesRead)
	}
	if c.DiscardOps != 1 || c.FlushOps != 1 {
		t.Fatal("discard/flush not counted")
	}
	if c.Size() != 1<<20 || c.SectorSize() != 512 {
		t.Fatal("size passthrough wrong")
	}
	if m.Flushes() != 1 {
		t.Fatal("flush not passed through")
	}
}

func TestFaultyFailsAfterN(t *testing.T) {
	m, _ := NewMem(1<<20, 512)
	f := NewFaulty(m, 2)
	if err := f.WriteAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.ReadAt(make([]byte, 512), 0); err != nil {
		t.Fatal(err)
	}
	if err := f.WriteAt(make([]byte, 512), 0); !errors.Is(err, ErrInjected) {
		t.Fatalf("3rd op err = %v, want ErrInjected", err)
	}
	if err := f.WriteAccounted(0, 512); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v, want ErrInjected", err)
	}
	// Flush and Discard are not gated.
	if err := f.Flush(); err != nil {
		t.Fatal(err)
	}
}

// Property: non-overlapping sector writes are independent.
func TestQuickMemSectorIndependence(t *testing.T) {
	m, _ := NewMem(1<<20, 512)
	f := func(a, b uint16, va, vb byte) bool {
		offA := int64(a%2000) * 512
		offB := int64(b%2000) * 512
		if offA == offB {
			return true
		}
		_ = m.WriteAt(bytes.Repeat([]byte{va}, 512), offA)
		_ = m.WriteAt(bytes.Repeat([]byte{vb}, 512), offB)
		ga := make([]byte, 512)
		gb := make([]byte, 512)
		_ = m.ReadAt(ga, offA)
		_ = m.ReadAt(gb, offB)
		return ga[0] == va && gb[511] == vb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
