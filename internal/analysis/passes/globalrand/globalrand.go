// Package globalrand forbids the process-global math/rand source and
// hard-coded RNG seeds in simulation code.
//
// Invariant: every random draw must come from a *rand.Rand that was seeded
// from the Spec (directly, or derived per-device as in fleet's
// splitmix64 scheme). The package-level rand functions share one global
// source — auto-seeded since Go 1.20 — so any call makes the run
// unrepeatable and couples concurrent devices through a mutex. A source
// constructed from a constant (rand.NewSource(1)) is the quieter cousin:
// repeatable, but it silently correlates every caller that "picked" the
// same literal, instead of deriving from the Spec. Constant seeds are
// allowed in test files, where pinning a fixture is the point.
//
// Ops-plane packages — declared with //flashvet:ops-domain <reason>,
// exactly as for the wallclock analyzer — are exempt: retry-backoff
// jitter and its kin are wall-clock policy whose entropy never flows
// into simulation results, and the shared global source is precisely the
// right one for spreading a fleet's retries apart. Malformed
// declarations grant nothing (wallclock reports them, once for the whole
// suite).
package globalrand

import (
	"go/ast"
	"go/types"

	"flashwear/internal/analysis"
)

// globalFuncs are the package-level functions drawing from the shared
// source, for both math/rand and math/rand/v2. Constructors (New,
// NewSource, NewZipf, NewPCG, NewChaCha8) are the sanctioned alternative.
// GlobalFuncs is exported for reuse by simtaint, whose rand taint source
// is exactly this set: the two tables must never drift apart.
var GlobalFuncs = map[string]bool{
	// math/rand
	"Int": true, "Intn": true, "Int31": true, "Int31n": true,
	"Int63": true, "Int63n": true, "Uint32": true, "Uint64": true,
	"Float32": true, "Float64": true, "ExpFloat64": true,
	"NormFloat64": true, "Perm": true, "Shuffle": true, "Read": true,
	"Seed": true,
	// math/rand/v2 additions (shared names above cover the rest)
	"IntN": true, "Int32": true, "Int32N": true, "Int64": true,
	"Int64N": true, "Uint": true, "UintN": true, "Uint32N": true,
	"Uint64N": true, "N": true,
}

// seeders are constructors whose all-constant arguments indicate a
// hard-coded seed.
var seeders = map[string]bool{
	"NewSource": true, // math/rand
	"NewPCG":    true, // math/rand/v2
}

var Analyzer = &analysis.Analyzer{
	Name: "globalrand",
	Doc: "forbid global math/rand functions and hard-coded RNG seeds\n\n" +
		"Randomness must flow from an injected *rand.Rand seeded from the\n" +
		"Spec; the global source and literal seeds both break the\n" +
		"run-is-a-pure-function-of-its-Spec contract. Ops-plane packages\n" +
		"(//flashvet:ops-domain) are exempt: backoff jitter is wall-clock\n" +
		"policy, not simulation.",
	Run: run,
}

// IsRandPkg reports the two math/rand package paths (exported for
// simtaint, same reasoning as GlobalFuncs).
func IsRandPkg(pkg *types.Package) bool {
	return pkg != nil && (pkg.Path() == "math/rand" || pkg.Path() == "math/rand/v2")
}

func run(pass *analysis.Pass) error {
	if analysis.OpsDomain(pass, false) {
		return nil
	}
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectorExpr:
			fn, ok := pass.TypesInfo.Uses[n.Sel].(*types.Func)
			if ok && IsRandPkg(fn.Pkg()) && GlobalFuncs[fn.Name()] && fn.Type().(*types.Signature).Recv() == nil {
				pass.Reportf(n.Pos(), "global rand.%s draws from the shared process-wide source: use an injected seeded *rand.Rand", fn.Name())
			}
		case *ast.CallExpr:
			fn := pass.FuncOf(n)
			if fn == nil || !IsRandPkg(fn.Pkg()) || !seeders[fn.Name()] || pass.IsTestFile(n.Pos()) {
				return true
			}
			if len(n.Args) == 0 {
				return true
			}
			for _, arg := range n.Args {
				if tv, ok := pass.TypesInfo.Types[arg]; !ok || tv.Value == nil {
					return true // at least one runtime-derived argument
				}
			}
			pass.Reportf(n.Pos(), "hard-coded seed in rand.%s: derive the seed from the Spec so the run stays a pure function of it", fn.Name())
		}
		return true
	})
	return nil
}
