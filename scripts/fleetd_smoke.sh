#!/usr/bin/env bash
# fleetd end-to-end smoke: submit a checkpointed campaign, kill -9 the
# server mid-run, restart it, resume, and require the final artifacts —
# day series, wear ledger, final aggregate — to be byte-identical to an
# uninterrupted run of the same campaign. This is the ISSUE's
# kill-and-resume acceptance check at CI scale; the in-process
# equivalents (more seeds, more shard/worker shapes) live in
# internal/fleetd's tests.
set -euo pipefail

cd "$(dirname "$0")/.."
OUT=fleetd-smoke-out
rm -rf "$OUT"
mkdir -p "$OUT"

go build -o "$OUT/fleetd" ./cmd/fleetd

ADDR="127.0.0.1:${FLEETD_SMOKE_PORT:-17071}"
BASE="http://$ADDR"
SPEC='{"name":"smoke","devices":6,"days":12,"seed":7,"scale":65536,"buggy":0.2,"attack":0.2,"wear_trace":true,"shards":2,"workers":2,"checkpoint_every":2}'

SERVER_PID=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null || true
}
trap cleanup EXIT

start_server() { # $1 = data dir
    "$OUT/fleetd" serve -addr "$ADDR" -data "$1" 2>>"$OUT/server.log" &
    SERVER_PID=$!
    for _ in $(seq 1 50); do
        if curl -sf "$BASE/v1/campaigns" >/dev/null 2>&1; then return 0; fi
        sleep 0.1
    done
    echo "fleetd_smoke: server did not come up on $ADDR" >&2
    exit 1
}

fetch_artifacts() { # $1 = campaign id, $2 = prefix
    curl -sf "$BASE/v1/campaigns/$1/series" >"$OUT/$2-series.csv"
    curl -sf "$BASE/v1/campaigns/$1/ledger" >"$OUT/$2-ledger.csv"
    curl -sf "$BASE/v1/campaigns/$1/result" >"$OUT/$2-result.json"
}

echo "fleetd_smoke: reference run (uninterrupted)"
start_server "$OUT/data-ref"
REF_ID=$(curl -sf -X POST -d "$SPEC" "$BASE/v1/campaigns" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
"$OUT/fleetd" wait -addr "$BASE" -every 500ms "$REF_ID" >/dev/null
fetch_artifacts "$REF_ID" ref
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

echo "fleetd_smoke: interrupted run (kill -9 mid-campaign)"
start_server "$OUT/data-crash"
CRASH_ID=$(curl -sf -X POST -d "$SPEC" "$BASE/v1/campaigns" | sed -n 's/.*"id": "\([^"]*\)".*/\1/p')
sleep 1.5  # let it commit some epochs, then die mid-write
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

echo "fleetd_smoke: restart, resume, finish"
start_server "$OUT/data-crash"
STATE=$(curl -sf "$BASE/v1/campaigns/$CRASH_ID" | sed -n 's/.*"state": "\([^"]*\)".*/\1/p')
[ "$STATE" = "paused" ] || { echo "fleetd_smoke: adopted state = $STATE, want paused" >&2; exit 1; }
curl -sf -X POST "$BASE/v1/campaigns/$CRASH_ID/resume" >/dev/null
"$OUT/fleetd" wait -addr "$BASE" -every 500ms "$CRASH_ID" >/dev/null
fetch_artifacts "$CRASH_ID" crash
kill -9 "$SERVER_PID"; wait "$SERVER_PID" 2>/dev/null || true; SERVER_PID=""

cmp "$OUT/ref-series.csv" "$OUT/crash-series.csv"
cmp "$OUT/ref-ledger.csv" "$OUT/crash-ledger.csv"
cmp "$OUT/ref-result.json" "$OUT/crash-result.json"
echo "fleetd_smoke: OK — kill -9 + resume is byte-identical to the uninterrupted run"
