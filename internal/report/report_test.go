package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tbl := NewTable("Demo", "Device", "GiB", "Hours")
	tbl.AddRow("eMMC 8GB", 992.0, 14.1)
	tbl.AddRow("eMMC 16GB", 2210.5, 28.23)
	if tbl.Rows() != 2 {
		t.Fatalf("Rows = %d", tbl.Rows())
	}
	var sb strings.Builder
	tbl.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Demo", "Device", "eMMC 8GB", "992.00", "2210.50", "28.23", "---"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Columns align: the header and rows share the Device column width.
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 {
		t.Fatalf("lines = %d", len(lines))
	}
}

func TestTableRendersIntsAndStrings(t *testing.T) {
	tbl := NewTable("", "K", "V")
	tbl.AddRow(42, "x")
	var sb strings.Builder
	tbl.Render(&sb)
	if !strings.Contains(sb.String(), "42") {
		t.Fatal("int cell lost")
	}
	if strings.HasPrefix(sb.String(), "\n") {
		t.Fatal("empty title printed a blank line")
	}
}

func TestSeriesCSVAligned(t *testing.T) {
	a := &Series{Name: "seq", XLabel: "size"}
	b := &Series{Name: "rand"}
	for i := 1; i <= 3; i++ {
		a.Add(float64(i), float64(i*10))
		b.Add(float64(i), float64(i))
	}
	var sb strings.Builder
	RenderCSV(&sb, a, b)
	out := sb.String()
	if !strings.HasPrefix(out, "size,seq,rand\n") {
		t.Fatalf("header wrong: %q", out)
	}
	if !strings.Contains(out, "2,20.000,2.000") {
		t.Fatalf("row wrong:\n%s", out)
	}
}

func TestSeriesCSVMisaligned(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(1, 1)
	b := &Series{Name: "b"}
	b.Add(1, 1)
	b.Add(2, 2)
	var sb strings.Builder
	RenderCSV(&sb, a, b)
	out := sb.String()
	if !strings.Contains(out, "# a") || !strings.Contains(out, "# b") {
		t.Fatalf("misaligned series not rendered as blocks:\n%s", out)
	}
	RenderCSV(&sb) // no series: no panic
}

func TestHumanBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2048:            "2.00 KiB",
		5 << 20:         "5.00 MiB",
		3 << 30:         "3.00 GiB",
		(3 << 40) + 512: "3.00 TiB",
	}
	for in, want := range cases {
		if got := HumanBytes(in); got != want {
			t.Errorf("HumanBytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSizeLabel(t *testing.T) {
	cases := map[int64]string{
		512:       "0.5KiB",
		4096:      "4KiB",
		256 << 10: "256KiB",
		16 << 20:  "16MiB",
	}
	for in, want := range cases {
		if got := SizeLabel(in); got != want {
			t.Errorf("SizeLabel(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBarChart(t *testing.T) {
	c := NewBarChart("Figure 3", "h")
	c.Add("eMMC 8GB", 14.1)
	c.Add("Samsung S6", 28.2)
	c.Add("zero", 0)
	var sb strings.Builder
	c.Render(&sb)
	out := sb.String()
	if !strings.Contains(out, "Figure 3") || !strings.Contains(out, "28.20 h") {
		t.Fatalf("chart output:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d", len(lines))
	}
	// The largest value gets the longest bar.
	if strings.Count(lines[2], "#") <= strings.Count(lines[1], "#") {
		t.Fatal("bar lengths not proportional")
	}
	if strings.Count(lines[3], "#") != 0 {
		t.Fatal("zero value drew a bar")
	}
}
