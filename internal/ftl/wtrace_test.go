package ftl

import (
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"flashwear/internal/faultinject"
	"flashwear/internal/wtrace"
)

// checkWearIdentity pins the tentpole's accounting contract against ground
// truth: the ledger's per-origin rows must sum EXACTLY to what the FTL and
// the chips themselves counted — host pages to Stats.HostPagesWritten,
// physical programs to the chips' Programs, erases to the chips' Erases —
// and every row's phys_pages must equal its four cause columns summed.
// Integer equality, no tolerance: one double-counted or dropped program
// breaks the write-amplification decomposition.
func checkWearIdentity(t *testing.T, f *FTL) wtrace.Snapshot {
	t.Helper()
	snap := f.Tracer().Ledger().Snapshot()
	tot := snap.Totals()
	if got, want := tot.HostPages, f.Stats().HostPagesWritten; got != want {
		t.Errorf("ledger host pages = %d, FTL counted %d", got, want)
	}
	programs := f.MainChip().Stats().Programs
	erases := f.MainChip().Stats().Erases
	if c := f.CacheChip(); c != nil {
		programs += c.Stats().Programs
		erases += c.Stats().Erases
	}
	if tot.PhysPages != programs {
		t.Errorf("ledger phys pages = %d, chips counted %d programs", tot.PhysPages, programs)
	}
	if tot.Erases != erases {
		t.Errorf("ledger erases = %d, chips counted %d", tot.Erases, erases)
	}
	for _, r := range snap.Rows {
		if causes := r.HostPrograms + r.GCPrograms + r.WLPrograms + r.CachePrograms; r.PhysPages != causes {
			t.Errorf("origin %q: phys_pages %d != cause sum %d", r.Origin, r.PhysPages, causes)
		}
		if r.PhysBytes != r.PhysPages*snap.PageSize {
			t.Errorf("origin %q: phys_bytes %d != phys_pages %d * page size %d",
				r.Origin, r.PhysBytes, r.PhysPages, snap.PageSize)
		}
	}
	return snap
}

// tracedFTL builds an FTL with a tracer attached at birth and two
// registered origins to split the workload across.
func tracedFTL(t *testing.T, mutate func(*Config)) (*FTL, *wtrace.Tracer, [2]wtrace.Origin) {
	t.Helper()
	f := newTestFTL(t, mutate)
	tr := wtrace.New()
	f.SetTracer(tr)
	return f, tr, [2]wtrace.Origin{tr.Origin("app.hot"), tr.Origin("app.cold")}
}

// TestWearIdentityPlain drives heavy random overwrite through GC on a
// single-pool FTL under two origins and checks the exact decomposition.
func TestWearIdentityPlain(t *testing.T) {
	f, tr, orgs := tracedFTL(t, nil)
	n := f.LogicalPages()
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 6*n; i++ {
		tr.SetOrigin(orgs[i%2])
		if _, err := f.WritePage(rng.Intn(n), nil, 4096); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	tr.SetOrigin(wtrace.OriginOS)
	snap := checkWearIdentity(t, f)
	tot := snap.Totals()
	if tot.GCPrograms == 0 {
		t.Fatal("no GC programs attributed; the workload never exercised GC")
	}
	if got, want := tot.GCPrograms+tot.WLPrograms, f.GCCopies(); got != want {
		t.Errorf("relocation programs %d != FTL GCCopies %d", got, want)
	}
	// Both app origins caused wear; "os" wrote nothing.
	for _, r := range snap.Rows {
		switch r.Origin {
		case "os":
			if r.HostPages != 0 {
				t.Errorf("os wrote %d host pages; all writes were tagged", r.HostPages)
			}
		default:
			if r.HostPages == 0 || r.PhysPages == 0 {
				t.Errorf("origin %q: host=%d phys=%d, want both > 0", r.Origin, r.HostPages, r.PhysPages)
			}
		}
	}
}

// TestWearIdentityHybrid adds the SLC cache: host writes land in the cache
// pool, drains migrate them to main (CauseCache), and the identity must
// hold across both chips.
func TestWearIdentityHybrid(t *testing.T) {
	f, tr, orgs := tracedFTL(t, func(c *Config) {
		c.Hybrid = &HybridConfig{
			CacheChip:        testChipCfg(100_000),
			DrainRatio:       0.25,
			MergeUtilisation: 0.9,
		}
		c.Hybrid.CacheChip.Geometry.BlocksPerPlane = 4
	})
	n := f.LogicalPages()
	rng := rand.New(rand.NewSource(22))
	for i := 0; i < 5*n; i++ {
		tr.SetOrigin(orgs[i%2])
		req := 4096
		if rng.Intn(4) == 0 {
			req = 1 << 20 // sometimes bypass the cache
		}
		if _, err := f.WritePage(rng.Intn(n), nil, req); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	tr.SetOrigin(wtrace.OriginOS)
	snap := checkWearIdentity(t, f)
	tot := snap.Totals()
	if tot.CachePrograms == 0 {
		t.Fatal("no cache-drain programs attributed; the cache never drained")
	}
	if f.Stats().DrainMigrations == 0 {
		t.Fatal("workload never exercised the drain path")
	}
}

// TestWearIdentityWearLeveling makes static wear-leveling fire — cold data
// parked by one origin, the other hammering a small hot set — and checks
// that WL relocations are attributed (to the cold data's owner) while the
// identity still holds.
func TestWearIdentityWearLeveling(t *testing.T) {
	f, tr, orgs := tracedFTL(t, func(c *Config) {
		c.Wear = &WearLeveling{Dynamic: true, Static: true, StaticThreshold: 4, StaticInterval: 8}
	})
	n := f.LogicalPages()
	// Cold origin writes the bottom half once and never touches it again.
	tr.SetOrigin(orgs[1])
	for lp := 0; lp < n/2; lp++ {
		if _, err := f.WritePage(lp, nil, 4096); err != nil {
			t.Fatal(err)
		}
	}
	// Hot origin rewrites a small window in the top half, driving the
	// erase-count spread past the threshold.
	tr.SetOrigin(orgs[0])
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 12*n; i++ {
		lp := n/2 + rng.Intn(n/8)
		if _, err := f.WritePage(lp, nil, 4096); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
	}
	tr.SetOrigin(wtrace.OriginOS)
	snap := checkWearIdentity(t, f)
	if snap.Totals().WLPrograms == 0 {
		t.Fatal("static wear-leveling never attributed a program; tighten the workload")
	}
	// The cold data is what WL relocates, so its owner gets the bill.
	for _, r := range snap.Rows {
		if r.Origin == "app.cold" && r.WLPrograms == 0 {
			t.Error("cold origin owns the parked data but was billed no WL programs")
		}
	}
}

// TestWearIdentityUnderFaults runs the recover suite's crash workload shape
// with tracing attached: injected program/erase faults and repeated power
// cuts, recovery rebuilding attribution from OOB. The identity must hold at
// the end because the ledger attributes exactly the operations the chips
// counted — including failed programs/erases, excluding cut ones.
func TestWearIdentityUnderFaults(t *testing.T) {
	for _, hybrid := range []bool{false, true} {
		t.Run(fmt.Sprintf("hybrid=%v", hybrid), func(t *testing.T) {
			plan := faultinject.Plan{
				Seed:             9,
				ProgramFaultProb: 2e-3,
				EraseFaultProb:   2e-4,
				PowerCutEvery:    1499,
			}
			f, inj := faultyFTL(t, plan, hybrid)
			tr := wtrace.New()
			f.SetTracer(tr)
			orgs := [2]wtrace.Origin{tr.Origin("a"), tr.Origin("b")}
			n := f.LogicalPages()
			rng := rand.New(rand.NewSource(9))
			cuts := 0
			for i := 0; i < 5000; i++ {
				tr.SetOrigin(orgs[i%2])
				req := 4096
				if hybrid && rng.Intn(4) == 0 {
					req = 1 << 20
				}
				_, err := f.WritePage(rng.Intn(n), nil, req)
				switch {
				case err == nil:
				case errors.Is(err, ErrPowerLoss):
					inj.PowerRestored()
					if _, err := f.Recover(); err != nil {
						t.Fatalf("recover: %v", err)
					}
					cuts++
				case errors.Is(err, ErrReadOnly) || errors.Is(err, ErrBricked):
					i = 5000
				default:
					t.Fatalf("write %d: %v", i, err)
				}
			}
			tr.SetOrigin(wtrace.OriginOS)
			if cuts == 0 {
				t.Fatal("no power cut fired; the test exercised nothing")
			}
			if inj.Stats().ProgramFaults == 0 {
				t.Fatal("no program faults fired")
			}
			checkWearIdentity(t, f)
		})
	}
}

// TestWearAttributionSurvivesRecovery pins the OOB round trip: attribution
// state must be rebuilt from flash, not RAM. Origins are registered, data
// written, power cut; after Recover, GC of the old blocks must still bill
// the origins that wrote the data.
func TestWearAttributionSurvivesRecovery(t *testing.T) {
	f, tr, orgs := tracedFTL(t, nil)
	idle := tr.Origin("app.idle") // registered but never writes
	n := f.LogicalPages()
	tr.SetOrigin(orgs[0])
	for lp := 0; lp < n; lp++ {
		if _, err := f.WritePage(lp, nil, 4096); err != nil {
			t.Fatal(err)
		}
	}
	tr.SetOrigin(wtrace.OriginOS)
	f.CutPower()
	if _, err := f.Recover(); err != nil {
		t.Fatal(err)
	}
	// Overwrite everything as the second origin: GC must erase blocks full
	// of the first origin's pre-cut pages, and by plurality those erases
	// bill the first origin — which only works if the OOB scan restored
	// the per-page origin tags.
	tr.SetOrigin(orgs[1])
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 4*n; i++ {
		if _, err := f.WritePage(rng.Intn(n), nil, 4096); err != nil {
			t.Fatal(err)
		}
	}
	tr.SetOrigin(wtrace.OriginOS)
	snap := checkWearIdentity(t, f)
	rows := map[string]wtrace.Row{}
	for _, r := range snap.Rows {
		rows[r.Origin] = r
	}
	_ = idle
	if r := rows["app.idle"]; r.HostPages != 0 || r.PhysPages != 0 || r.Erases != 0 {
		t.Errorf("idle origin billed: %+v", r)
	}
	if r := rows["app.hot"]; r.Erases == 0 {
		t.Error("origin whose pre-cut data was erased was billed no erases (OOB restore broken?)")
	}
}

// TestWearTracerDetach pins SetTracer(nil): the write path must keep
// working with attribution off, and the ledger must stop moving.
func TestWearTracerDetach(t *testing.T) {
	f, tr, orgs := tracedFTL(t, nil)
	tr.SetOrigin(orgs[0])
	if _, err := f.WritePage(0, nil, 4096); err != nil {
		t.Fatal(err)
	}
	f.SetTracer(nil)
	if f.Tracer() != nil {
		t.Fatal("Tracer() non-nil after detach")
	}
	before := tr.Ledger().Snapshot().Totals()
	n := f.LogicalPages()
	for i := 0; i < 3*n; i++ {
		if _, err := f.WritePage(i%n, nil, 4096); err != nil {
			t.Fatalf("write with tracing off: %v", err)
		}
	}
	after := tr.Ledger().Snapshot().Totals()
	if after != before {
		t.Fatalf("detached ledger moved: %+v -> %+v", before, after)
	}
}

// TestWritePathAllocFree pins the hot-path allocation contract from the
// wtrace package doc: the steady-state write path allocates nothing, with
// tracing off AND with a tracer attached (ledger counting is atomic adds;
// only the optional event buffer allocates, and it is off by default).
func TestWritePathAllocFree(t *testing.T) {
	for _, traced := range []bool{false, true} {
		t.Run(fmt.Sprintf("traced=%v", traced), func(t *testing.T) {
			f := newTestFTL(t, nil)
			if traced {
				tr := wtrace.New()
				f.SetTracer(tr)
				tr.SetOrigin(tr.Origin("app"))
			}
			n := f.LogicalPages() / 2
			// Reach GC steady state first so block churn is in the loop.
			for i := 0; i < 3*n; i++ {
				if _, err := f.WritePage(i%n, nil, 4096); err != nil {
					t.Fatal(err)
				}
			}
			i := 0
			avg := testing.AllocsPerRun(5000, func() {
				if _, err := f.WritePage(i%n, nil, 4096); err != nil {
					t.Fatal(err)
				}
				i++
			})
			if avg != 0 {
				t.Errorf("write path allocates %g objects/op, want 0", avg)
			}
		})
	}
}

// BenchmarkFTLWrite measures the attribution tax on the FTL write path:
//
//	bare           no tracer (the default; must stay within 2% of seed)
//	traced         ledger counting on, event buffer off (production shape)
//	traced-events  full Chrome event recording (debugging shape)
//
// Compare bare here against the seed's BenchmarkWritePathFaultOverhead/
// baseline — the disabled-tracer check is a branch on a nil pointer.
func BenchmarkFTLWrite(b *testing.B) {
	run := func(b *testing.B, attach func(*FTL) *wtrace.Tracer) {
		cfg := Config{MainChip: testChipCfg(100_000_000)}
		f, err := New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		if attach != nil {
			tr := attach(f)
			tr.SetOrigin(tr.Origin("app"))
		}
		n := f.LogicalPages() / 2 // half-full keeps GC steady, not thrashing
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := f.WritePage(i%n, nil, 4096); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("bare", func(b *testing.B) { run(b, nil) })
	b.Run("traced", func(b *testing.B) {
		run(b, func(f *FTL) *wtrace.Tracer {
			tr := wtrace.New()
			f.SetTracer(tr)
			return tr
		})
	})
	b.Run("traced-events", func(b *testing.B) {
		run(b, func(f *FTL) *wtrace.Tracer {
			tr := wtrace.New()
			tr.EnableEvents(1 << 30)
			f.SetTracer(tr)
			return tr
		})
	})
}
