package fleetd

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"flashwear/internal/hostio"
	"flashwear/internal/obs"
)

// The torture suite is the robustness pin: campaigns run over a
// fault-injecting filesystem (ENOSPC, EIO on write/sync, torn writes,
// rename failures — against checkpoint cells and the event journal),
// get interrupted and re-adopted by a fresh manager mid-run, and must
// still produce results byte-identical to a clean run on a healthy disk.
// The determinism fingerprint (series + ledger + aggregate) is the
// oracle throughout; no test asserts on scheduling-dependent detail.

// noPause makes retry backoff free in tests.
func noPause(time.Duration) {}

// tortureManager builds a manager over dir with the given fault plan and
// a fast retry policy.
func tortureManager(t *testing.T, dir, plan string) *Manager {
	t.Helper()
	fsys := hostio.FS(hostio.OS{})
	if plan != "" {
		p, err := hostio.ParsePlan(plan)
		if err != nil {
			t.Fatalf("ParsePlan(%q): %v", plan, err)
		}
		fsys = hostio.NewFaultFS(hostio.OS{}, p)
	}
	m, err := NewManagerOpts(Options{
		DataDir:         dir,
		FS:              fsys,
		CheckpointRetry: obs.Backoff{Attempts: 3, Sleep: noPause},
	})
	if err != nil {
		t.Fatalf("NewManagerOpts: %v", err)
	}
	return m
}

// tortureSpec is the shared campaign: 2 shards x 3 epochs = 6 cells, so
// fault schedules have plenty of distinct write/sync/rename ops to hit.
// Short mode (make torture runs the matrix under -race) trims the
// population to 2 shards x 2 epochs to keep the matrix fast; every fault
// schedule still lands inside the smaller op budget.
func tortureSpec() CampaignSpec {
	spec := tinySpec()
	spec.Days = 6
	spec.Shards = 2
	spec.CheckpointEvery = 2
	if testing.Short() {
		spec.Devices = 2
		spec.Days = 4
	}
	return spec
}

// lastEpoch is the final checkpoint epoch number for spec.
func lastEpoch(spec CampaignSpec) int {
	return (spec.Days + spec.CheckpointEvery - 1) / spec.CheckpointEvery
}

// assertNoStrayTmp fails if any checkpoint temporary survives under dir.
func assertNoStrayTmp(t *testing.T, dir string) {
	t.Helper()
	err := filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() && strings.HasSuffix(d.Name(), ".tmp") {
			t.Errorf("stray checkpoint temporary: %s", path)
		}
		return nil
	})
	if err != nil {
		t.Fatalf("walking %s: %v", dir, err)
	}
}

// eventTypes collects the set of event types a campaign journaled.
func eventTypes(c *Campaign) map[string]int {
	types := make(map[string]int)
	for _, e := range c.Events(0) {
		types[e.Type]++
	}
	return types
}

// TestTortureFaultMatrix is the headline pin: every fault schedule ×
// kill-9-style interrupt × adopt × resume must converge to results
// byte-identical to a clean run, with no acknowledged campaign lost and
// no stray .tmp files left behind.
func TestTortureFaultMatrix(t *testing.T) {
	spec := tortureSpec()
	ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

	for _, tc := range []struct {
		name string
		plan string
	}{
		{"enospc-checkpoint-create", "class=checkpoint,fault=enospc,on=create,at=1;4"},
		{"eio-checkpoint-write", "class=checkpoint,fault=eio,on=write,at=1;3"},
		{"eio-checkpoint-sync", "class=checkpoint,fault=eio,on=sync,from=1,until=3"},
		{"torn-checkpoint-write", "class=checkpoint,fault=torn,on=write,at=1;2"},
		{"rename-checkpoint", "class=checkpoint,fault=eio,on=rename,at=1;3"},
		{"enospc-journal-write", "class=journal,fault=enospc,on=write,from=2,until=7"},
		{"torn-journal-write", "class=journal,fault=torn,on=write,at=2;5"},
		{"eio-journal-sync", "class=journal,fault=eio,on=sync,at=1;4"},
		{"mixed", "seed=7,class=checkpoint,fault=enospc,on=write,p=0.3|class=journal,fault=torn,on=write,p=0.3"},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			m1 := tortureManager(t, dir, tc.plan)
			c1, err := m1.Submit(spec)
			if err != nil {
				t.Fatalf("Submit under faults: %v", err)
			}
			interrupt(c1)
			// The first process is gone (its in-memory state, including any
			// degraded-mode carry and parked journal events, with it). A
			// fresh process adopts the directory — under the same bad disk.
			m2 := tortureManager(t, dir, tc.plan)
			c2, ok := m2.Get(c1.ID())
			if !ok {
				t.Fatalf("acknowledged campaign %s lost across restart", c1.ID())
			}
			if err := c2.Resume(); err != nil {
				t.Fatalf("Resume: %v", err)
			}
			if err := c2.Wait(); err != nil {
				t.Fatalf("campaign failed under %q: %v", tc.plan, err)
			}
			if got := fingerprint(t, c2); !bytes.Equal(got, ref) {
				t.Errorf("results under faults differ from clean run\nref:\n%s\ngot:\n%s", ref, got)
			}
			assertNoStrayTmp(t, dir)
		})
	}
}

// TestTorturePersistentENOSPC pins degraded mode end to end: when every
// checkpoint write fails for the whole run, the campaign must keep
// simulating on in-memory state carry, journal exactly one
// checkpoint_paused alert, finish with byte-identical results, and
// report CheckpointPaused in its status.
func TestTorturePersistentENOSPC(t *testing.T) {
	spec := tortureSpec()
	ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

	dir := t.TempDir()
	m := tortureManager(t, dir, "class=checkpoint,fault=enospc,on=create,from=1,until=0")
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed under persistent ENOSPC: %v", err)
	}
	if got := fingerprint(t, c); !bytes.Equal(got, ref) {
		t.Errorf("degraded-mode results differ from clean run\nref:\n%s\ngot:\n%s", ref, got)
	}
	types := eventTypes(c)
	if types["checkpoint_paused"] != 1 {
		t.Errorf("checkpoint_paused events = %d, want exactly 1", types["checkpoint_paused"])
	}
	if types["checkpoint_resumed"] != 0 {
		t.Errorf("checkpoint_resumed under persistent ENOSPC, want none")
	}
	if !c.Status().CheckpointPaused {
		t.Error("Status.CheckpointPaused = false after degraded run")
	}
	if got := m.metrics.CheckpointRetries.Value(); got == 0 {
		t.Error("CheckpointRetries metric = 0, want > 0")
	}
	assertNoStrayTmp(t, dir)

	// The degraded run left durable state behind only up to the outage; a
	// restart on a healed disk must recompute the gap and converge.
	m2 := tortureManager(t, dir, "")
	c2, ok := m2.Get(c.ID())
	if !ok {
		t.Fatal("campaign not adopted after degraded run")
	}
	if err := c2.Resume(); err != nil {
		t.Fatalf("Resume on healed disk: %v", err)
	}
	if err := c2.Wait(); err != nil {
		t.Fatalf("healed-disk resume failed: %v", err)
	}
	if got := fingerprint(t, c2); !bytes.Equal(got, ref) {
		t.Errorf("healed-disk results differ from clean run")
	}
}

// TestTortureENOSPCWindowAutoResumes pins self-healing: a bounded outage
// degrades checkpointing, and the first epoch whose writes all succeed
// journals checkpoint_resumed and clears the degraded status — no
// operator action, no campaign restart.
func TestTortureENOSPCWindowAutoResumes(t *testing.T) {
	spec := tortureSpec()
	ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

	dir := t.TempDir()
	// Ops 1..4 on checkpoint create fail: epoch 1's cells burn through the
	// retry budget and degrade; from epoch 2 on the disk is healthy again.
	m := tortureManager(t, dir, "class=checkpoint,fault=enospc,on=create,from=1,until=5")
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	if got := fingerprint(t, c); !bytes.Equal(got, ref) {
		t.Errorf("results differ from clean run after transient outage")
	}
	types := eventTypes(c)
	if types["checkpoint_paused"] == 0 {
		t.Error("no checkpoint_paused event during the outage")
	}
	if types["checkpoint_resumed"] == 0 {
		t.Error("no checkpoint_resumed event after the outage healed")
	}
	if c.Status().CheckpointPaused {
		t.Error("Status.CheckpointPaused still set after auto-resume")
	}
	// Later epochs persisted; the final epoch's cells must be on disk.
	for s := 0; s < spec.Shards; s++ {
		path := cellPath(filepath.Join(dir, c.ID()), s, lastEpoch(spec))
		if _, err := os.Stat(path); err != nil {
			t.Errorf("final-epoch cell missing after auto-resume: %v", err)
		}
	}
	assertNoStrayTmp(t, dir)
}

// TestTortureOrphanTmpSwept pins the startup sweep: a .tmp left by a
// kill -9 mid-checkpoint-write is removed during adoption and the
// campaign journals the cleanup.
func TestTortureOrphanTmpSwept(t *testing.T) {
	spec := tortureSpec()
	dir := t.TempDir()
	c := runToEnd(t, dir, spec)

	stray := cellPath(filepath.Join(dir, c.ID()), 1, 2) + ".tmp"
	if err := os.WriteFile(stray, []byte("partial checkpoint bytes"), 0o644); err != nil {
		t.Fatalf("planting stray tmp: %v", err)
	}
	m2, err := NewManager(dir)
	if err != nil {
		t.Fatalf("NewManager over dirty dir: %v", err)
	}
	if _, err := os.Stat(stray); !os.IsNotExist(err) {
		t.Errorf("stray .tmp survived adoption: %v", err)
	}
	c2, ok := m2.Get(c.ID())
	if !ok {
		t.Fatal("campaign not adopted")
	}
	if eventTypes(c2)["tmp_swept"] == 0 {
		t.Error("no tmp_swept event journaled for the cleanup")
	}
}

// TestTortureAdoptionSkipsHalfSubmittedDir pins submit's crash story: a
// campaign directory without campaign.json (a submit killed before its
// ack) must not break adoption, and its ID must stay retired.
func TestTortureAdoptionSkipsHalfSubmittedDir(t *testing.T) {
	dir := t.TempDir()
	c := runToEnd(t, dir, tortureSpec())
	// A submit for c000002 died after creating its journal but before
	// persisting campaign.json.
	half := filepath.Join(dir, "c000002")
	if err := os.MkdirAll(half, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(half, "events.jsonl"), nil, 0o644); err != nil {
		t.Fatal(err)
	}
	m, err := NewManager(dir)
	if err != nil {
		t.Fatalf("adoption failed over half-submitted dir: %v", err)
	}
	if _, ok := m.Get("c000002"); ok {
		t.Error("half-submitted campaign adopted, want skipped")
	}
	if _, ok := m.Get(c.ID()); !ok {
		t.Error("healthy campaign not adopted")
	}
	c2, err := m.Submit(tortureSpec())
	if err != nil {
		t.Fatalf("Submit after skip: %v", err)
	}
	if c2.ID() == "c000002" {
		t.Error("retired ID c000002 reused by a fresh submit")
	}
}

// TestTortureJournalContiguousAcrossFaults pins the journal's degraded
// ring from the campaign's side: with journal writes failing in a
// window, the campaign completes, the in-memory log stays gapless, and
// the file a restarted process reads back is a contiguous prefix.
func TestTortureJournalContiguousAcrossFaults(t *testing.T) {
	spec := tortureSpec()
	dir := t.TempDir()
	m := tortureManager(t, dir, "class=journal,fault=enospc,on=write,from=3,until=9")
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed under journal faults: %v", err)
	}
	evs := c.Events(0)
	for i, e := range evs {
		if e.Seq != uint64(i+1) {
			t.Fatalf("in-memory journal gap: event %d has seq %d", i, e.Seq)
		}
	}
	// A fresh process reads the durable file; whatever prefix it holds
	// must be contiguous from 1 (OpenJournalFS fails the open otherwise).
	j, err := obs.OpenJournal(filepath.Join(dir, c.ID(), "events.jsonl"))
	if err != nil {
		t.Fatalf("reopening journal: %v", err)
	}
	defer j.Close()
	if j.LastSeq() == 0 {
		t.Error("durable journal empty after recovery window")
	}
}

// TestTortureFork pins fork under checkpoint faults: restamping retries
// are not wired (fork is an explicit operator action), but a fork on a
// healthy disk of a campaign that ran degraded must still work off
// whatever cells are durable.
func TestTortureFork(t *testing.T) {
	spec := tortureSpec()
	dir := t.TempDir()
	// Epoch 1 degrades; epochs 2-3 persist.
	m := tortureManager(t, dir, "class=checkpoint,fault=enospc,on=create,from=1,until=5")
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	if err := c.Wait(); err != nil {
		t.Fatalf("campaign failed: %v", err)
	}
	fk, err := m.Fork(c.ID(), ForkOptions{Name: "post-outage"})
	if err != nil {
		t.Fatalf("Fork: %v", err)
	}
	if err := fk.Wait(); err != nil {
		t.Fatalf("fork failed: %v", err)
	}
	if got, want := fingerprint(t, fk), fingerprint(t, c); !bytes.Equal(got, want) {
		t.Errorf("fork of degraded-run campaign differs from source\nsrc:\n%s\nfork:\n%s", want, got)
	}
}

// TestTortureDrain pins graceful shutdown: Drain stops the sweep at a
// cell boundary as paused, everything durable stays consistent, and a
// resume completes with byte-identical results.
func TestTortureDrain(t *testing.T) {
	spec := tortureSpec()
	ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

	dir := t.TempDir()
	m, err := NewManager(dir)
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	c.Drain()
	c.Wait()
	if st := c.State(); st != StatePaused && st != StateDone {
		t.Fatalf("state after drain = %s, want paused or done", st)
	}
	assertNoStrayTmp(t, dir)
	if c.State() == StatePaused {
		if err := c.Resume(); err != nil {
			t.Fatalf("Resume after drain: %v", err)
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("campaign failed after drain+resume: %v", err)
		}
	}
	if got := fingerprint(t, c); !bytes.Equal(got, ref) {
		t.Errorf("results after drain+resume differ from clean run")
	}
}

// TestTortureRepeatedInterruptsUnderFaults is the grind: interrupt and
// re-adopt the campaign several times under a probabilistic mixed fault
// plan; the final results must still match the clean run exactly.
func TestTortureRepeatedInterruptsUnderFaults(t *testing.T) {
	spec := tortureSpec()
	ref := fingerprint(t, runToEnd(t, t.TempDir(), spec))

	const plan = "seed=1337,class=checkpoint,fault=eio,on=sync,p=0.4|class=journal,fault=enospc,on=write,p=0.25"
	dir := t.TempDir()
	m := tortureManager(t, dir, plan)
	c, err := m.Submit(spec)
	if err != nil {
		t.Fatalf("Submit: %v", err)
	}
	id := c.ID()
	interrupt(c)
	for round := 0; round < 3; round++ {
		m = tortureManager(t, dir, plan)
		c, ok := m.Get(id)
		if !ok {
			t.Fatalf("round %d: campaign lost", round)
		}
		if err := c.Resume(); err != nil {
			t.Fatalf("round %d: Resume: %v", round, err)
		}
		if round < 2 {
			interrupt(c)
			continue
		}
		if err := c.Wait(); err != nil {
			t.Fatalf("round %d: campaign failed: %v", round, err)
		}
		if got := fingerprint(t, c); !bytes.Equal(got, ref) {
			t.Errorf("results after %d interrupts under faults differ from clean run", round)
		}
	}
	assertNoStrayTmp(t, dir)
}
