// Package a exercises the //flashvet:ignore directive itself: both waiver
// forms, the mandatory reason, unknown-analyzer rejection, and the
// unused-directive check.
package a

import "time"

func standaloneWaiver() time.Time {
	//flashvet:ignore wallclock host timestamp feeds the operator log, not the simulation
	return time.Now()
}

func trailingWaiver() time.Time {
	return time.Now() //flashvet:ignore wallclock same-line waiver form
}

func missingReason() time.Time {
	//flashvet:ignore wallclock // want `flashvet: flashvet:ignore wallclock directive has no reason`
	return time.Now() // want `wall-clock time\.Now`
}

func unknownAnalyzer() time.Time {
	//flashvet:ignore clockwall transposed analyzer name // want `flashvet: flashvet:ignore directive names unknown analyzer "clockwall"`
	return time.Now() // want `wall-clock time\.Now`
}

func unusedWaiver() int {
	x := 1 //flashvet:ignore wallclock nothing on this line touches the clock // want `flashvet: unused flashvet:ignore directive`
	return x
}
