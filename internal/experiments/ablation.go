package experiments

import (
	"fmt"

	"flashwear/internal/device"
	"flashwear/internal/ftl"
	"flashwear/internal/nand"
	"flashwear/internal/simclock"
	"flashwear/internal/workload"
)

// AblationRow is one variant's outcome in a design-choice study.
type AblationRow struct {
	Variant string
	// WA is the measured write amplification.
	WA float64
	// EraseSpread is max-min erase count across blocks (wear-leveling
	// quality; lower is better).
	EraseSpread int
	// HostGiBPerIncrement is the full-scale wear efficiency.
	HostGiBPerIncrement float64
	// Extra holds a study-specific metric (documented per study).
	Extra float64
}

// ablationDevice builds a scaled eMMC 8GB with profile tweaks applied.
func ablationDevice(cfg Config, tweak func(*device.Profile)) (*device.Device, *simclock.Clock, int64, error) {
	prof := device.ProfileEMMC8()
	if tweak != nil {
		tweak(&prof)
	}
	return newDevice(prof, cfg.Scale)
}

// hotRewrite drives 4 KiB random rewrites over a hot region after filling
// staticFrac of the device, then reports WA and erase spread.
func hotRewrite(dev *device.Device, staticFrac float64, volumeMultiple int) (AblationRow, error) {
	if staticFrac > 0 {
		if _, err := workload.FillDevice(dev, staticFrac); err != nil {
			return AblationRow{}, err
		}
	}
	hot := workload.NewDeviceWriter(dev, 4096, false, 21)
	hot.RegionOff = int64(float64(dev.Size()) * staticFrac)
	span := dev.Size() / 20
	if hot.RegionOff+span > dev.Size() {
		span = dev.Size() - hot.RegionOff
	}
	hot.RegionLen = span

	baseProgs := dev.FTL().MainChip().Stats().Programs
	baseHost := dev.FTL().Stats().HostPagesWritten
	total := dev.Size() * int64(volumeMultiple)
	var written int64
	for written < total {
		n, err := hot.Step(4 << 20)
		written += n
		if err != nil {
			return AblationRow{}, err
		}
	}
	chip := dev.FTL().MainChip()
	minE, maxE := int(^uint(0)>>1), 0
	for b := 0; b < chip.Geometry().Blocks(); b++ {
		ec := chip.EraseCount(b)
		if ec < minE {
			minE = ec
		}
		if ec > maxE {
			maxE = ec
		}
	}
	host := dev.FTL().Stats().HostPagesWritten - baseHost
	progs := chip.Stats().Programs - baseProgs
	row := AblationRow{EraseSpread: maxE - minE}
	if host > 0 {
		row.WA = float64(progs) / float64(host)
	}
	return row, nil
}

// AblationGCPolicy compares greedy vs cost-benefit garbage collection under
// a skewed rewrite workload at 50% utilisation (DESIGN.md ablation 1).
func AblationGCPolicy(cfg Config) ([]AblationRow, error) {
	cfg = cfg.Defaults()
	var out []AblationRow
	for _, policy := range []ftl.GCPolicy{ftl.GCGreedy, ftl.GCCostBenefit} {
		row, err := gcPolicyRun(policy, cfg)
		if err != nil {
			return nil, err
		}
		row.Variant = policy.String()
		out = append(out, row)
	}
	return out, nil
}

// gcPolicyRun measures WA for one GC policy on a bare FTL.
func gcPolicyRun(policy ftl.GCPolicy, cfg Config) (AblationRow, error) {
	chipCfg := nand.Config{
		Geometry: nand.Geometry{
			Dies: 1, PlanesPerDie: 4, BlocksPerPlane: 64,
			PagesPerBlock: 64, PageSize: 4096,
		},
		Cell: nand.MLC, RatedPE: 100_000, Seed: 5,
	}
	f, err := ftl.New(ftl.Config{MainChip: chipCfg, GC: policy})
	if err != nil {
		return AblationRow{}, err
	}
	n := f.LogicalPages()
	for lp := 0; lp < n/2; lp++ {
		if _, err := f.WritePage(lp, nil, 1<<20); err != nil {
			return AblationRow{}, err
		}
	}
	// Skewed rewrites: 90% of writes to 10% of the space.
	rng := newSplitMix(99)
	for i := 0; i < n*12; i++ {
		var lp int
		if rng.next()%10 < 9 {
			lp = int(rng.next() % uint64(n/10))
		} else {
			lp = int(rng.next() % uint64(n/2))
		}
		if _, err := f.WritePage(lp, nil, 4096); err != nil {
			return AblationRow{}, err
		}
	}
	return AblationRow{WA: f.WriteAmplification()}, nil
}

// splitMix is a tiny deterministic RNG for ablation workloads.
type splitMix struct{ s uint64 }

func newSplitMix(seed uint64) *splitMix { return &splitMix{s: seed} }

func (r *splitMix) next() uint64 {
	r.s += 0x9E3779B97F4A7C15
	z := r.s
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// AblationWearLeveling compares erase spread with and without wear-leveling
// under a hot-spot workload (DESIGN.md ablation 2).
func AblationWearLeveling(cfg Config) ([]AblationRow, error) {
	cfg = cfg.Defaults()
	var out []AblationRow
	for _, wl := range []bool{true, false} {
		wl := wl
		dev, _, _, err := ablationDevice(cfg, func(p *device.Profile) { p.WearLeveling = wl })
		if err != nil {
			return nil, err
		}
		row, err := hotRewrite(dev, 0.5, 16)
		if err != nil {
			return nil, err
		}
		if wl {
			row.Variant = "wear-leveling on"
		} else {
			row.Variant = "wear-leveling off"
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationOverProvisioning sweeps the OP fraction and reports WA at high
// utilisation (DESIGN.md ablation 3).
func AblationOverProvisioning(cfg Config) ([]AblationRow, error) {
	cfg = cfg.Defaults()
	var out []AblationRow
	for _, op := range []float64{0.07, 0.14, 0.28} {
		op := op
		dev, _, _, err := ablationDevice(cfg, func(p *device.Profile) { p.OverProvision = op })
		if err != nil {
			return nil, err
		}
		row, err := hotRewrite(dev, 0.85, 3)
		if err != nil {
			return nil, err
		}
		row.Variant = fmt.Sprintf("OP %.0f%%", op*100)
		row.Extra = op
		out = append(out, row)
	}
	return out, nil
}

// AblationPoolMerge compares the hybrid device's Type A wear with merging
// enabled vs disabled (DESIGN.md ablation 4) under the Table 1 endgame
// workload (90% utilisation, rewrites of the utilised space).
func AblationPoolMerge(cfg Config) ([]AblationRow, error) {
	cfg = cfg.Defaults()
	var out []AblationRow
	for _, merge := range []bool{true, false} {
		merge := merge
		prof := device.ProfileEMMC16()
		if !merge {
			prof.Hybrid.MergeUtilisation = 10 // never
		}
		dev, _, _, err := newDevice(prof, cfg.Scale)
		if err != nil {
			return nil, err
		}
		if _, err := workload.FillDevice(dev, 0.9); err != nil {
			return nil, err
		}
		w := workload.NewDeviceWriter(dev, 4096, false, 31)
		w.RegionLen = int64(float64(dev.Size()) * 0.9)
		var written int64
		total := dev.Size() * 2
		for written < total {
			n, err := w.Step(4 << 20)
			written += n
			if err != nil {
				return nil, err
			}
		}
		row := AblationRow{
			WA:    dev.FTL().WriteAmplification(),
			Extra: dev.FTL().LifeConsumed(ftl.PoolA) * 100, // Type A % life consumed
		}
		if merge {
			row.Variant = "pool merge on"
		} else {
			row.Variant = "pool merge off"
		}
		out = append(out, row)
	}
	return out, nil
}

// AblationSLCCache sweeps the Type A cache size and reports Type B wear
// per host volume (DESIGN.md ablation 5).
func AblationSLCCache(cfg Config) ([]AblationRow, error) {
	cfg = cfg.Defaults()
	for cfg.Scale > 64 {
		cfg.Scale /= 2 // cache sizes need headroom at tiny scales
		break
	}
	var out []AblationRow
	for _, cacheMiB := range []int64{128, 512, 2048} {
		prof := device.ProfileEMMC16()
		prof.Hybrid.CacheBytes = cacheMiB << 20
		dev, _, _, err := newDevice(prof, cfg.Scale)
		if err != nil {
			return nil, err
		}
		w := workload.NewDeviceWriter(dev, 4096, false, 41)
		w.RegionLen = dev.Size() / 20
		var written int64
		total := dev.Size()
		for written < total {
			n, err := w.Step(4 << 20)
			written += n
			if err != nil {
				return nil, err
			}
		}
		out = append(out, AblationRow{
			Variant: fmt.Sprintf("cache %dMiB", cacheMiB),
			WA:      dev.FTL().WriteAmplification(),
			Extra:   dev.FTL().LifeConsumed(ftl.PoolA) * 100,
		})
	}
	return out, nil
}

// AblationECCStrength compares usable endurance under weak vs strong ECC
// (DESIGN.md ablation 6): stronger codes keep worn blocks readable longer.
func AblationECCStrength(cfg Config) ([]AblationRow, error) {
	cfg = cfg.Defaults()
	var out []AblationRow
	for _, t := range []int{4, 8, 24} {
		chipCfg := nand.Config{
			Geometry: nand.Geometry{
				Dies: 1, PlanesPerDie: 2, BlocksPerPlane: 32,
				PagesPerBlock: 32, PageSize: 4096,
			},
			Cell: nand.MLC, RatedPE: 300, Seed: 51,
			CorrectableBits: t,
		}
		f, err := ftl.New(ftl.Config{MainChip: chipCfg})
		if err != nil {
			return nil, err
		}
		rng := newSplitMix(7)
		hot := f.LogicalPages() / 8
		var pages int64
		for {
			_, err := f.WritePage(int(rng.next()%uint64(hot)), nil, 4096)
			if err != nil {
				break
			}
			pages++
			if pages > 200_000_000 {
				break
			}
		}
		out = append(out, AblationRow{
			Variant: fmt.Sprintf("BCH t=%d", t),
			Extra:   float64(pages) * 4096 / (1 << 30), // GiB endured
		})
	}
	return out, nil
}
