// Ratelimit: install the §4.5 mitigations on a phone and watch them blunt
// the wear attack. A lifespan budget is derived from the device's capacity
// and endurance, a selective throttler is wired into the OS write path, and
// a S.M.A.R.T.-style wear watch raises alerts as the flash ages.
package main

import (
	"fmt"
	"log"
	"time"

	"flashwear/pkg/flashwear"
)

func main() {
	const scale = 1024
	prof := flashwear.ProfileMotoE8()
	prof.RatedPE = 200 // a short-lived variant keeps the demo quick
	prof.FirmwareRatedPE = 200
	eff := prof.EffectiveScale(scale)
	scaled := prof.Scaled(scale)

	// The defensive inverse of §2.3's estimate: for this device to last 3
	// (scaled) years, apps may collectively write only so much per day.
	budget := flashwear.LifespanBudget{
		CapacityBytes: scaled.CapacityBytes,
		RatedPE:       scaled.RatedPE,
		TargetYears:   3.0 / float64(eff),
		ExpectedWA:    2,
	}
	// BytesPerDay is scale-invariant: the scaled capacity and the scaled
	// target lifetime cancel out.
	fmt.Printf("Lifespan budget: %.1f MiB/day sustains a 3-year life\n",
		budget.BytesPerDay()/(1<<20))

	throttler, err := flashwear.NewSelectiveThrottler(budget)
	if err != nil {
		log.Fatal(err)
	}
	clock := flashwear.NewClock()
	phone, err := flashwear.NewPhone(flashwear.PhoneConfig{
		Profile:  scaled,
		FS:       flashwear.FSExt4,
		Charging: flashwear.AlwaysOn(), // isolate the throttling effect
		Screen:   flashwear.Never(),
		Throttle: throttler.Throttle,
	}, clock)
	if err != nil {
		log.Fatal(err)
	}

	attacker, _ := phone.InstallApp("com.evil.wear")
	benign, _ := phone.InstallApp("com.good.camera")
	watch := flashwear.NewWearWatch(phone.Device())

	// The attack: sustained 4 KiB synchronous rewrites, for half a
	// (scaled) simulated day. Unthrottled it would consume most of this
	// short-lived device's endurance; under the throttle it is pinned to
	// the lifespan budget.
	atk := flashwear.NewAttack(attacker, flashwear.Continuous, eff)
	atk.FileSize = phone.Device().Size() / 40
	rep, err := atk.Run(phone, 12*time.Hour)
	if err != nil {
		log.Fatal(err)
	}
	sample := watch.Sample(clock.Now())
	fmt.Printf("\nAfter %.0f (full-scale) days of attack under the selective throttle:\n", rep.Hours/24)
	fmt.Printf("  phone bricked:   %v\n", rep.Bricked)
	fmt.Printf("  life consumed:   indicator %d/11 (alert: %v)\n", sample.LevelB, sample.Alert)
	fmt.Printf("  attacker wrote:  %.1f GiB (throttled to the budget)\n", rep.HostGiB)

	// The benign app's burst is untouched: the classifier never flags it.
	f, err := benign.Storage().Create("/holiday-photos.bin")
	if err != nil {
		log.Fatal(err)
	}
	start := clock.Now()
	chunk := make([]byte, 256<<10)
	burst := phone.Device().Size() / 4
	for off := int64(0); off < burst; off += int64(len(chunk)) {
		if _, err := f.WriteAt(chunk, off); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("\nBenign %.1f MiB import finished in %.2f s — no throttling.\n",
		float64(burst)/(1<<20), (clock.Now() - start).Seconds())
	fmt.Printf("Attacker's classifier score: malicious=%v; camera flagged: %v\n",
		throttler.Classifier.Malicious(attacker.Name(), clock.Now()),
		throttler.Classifier.Malicious(benign.Name(), clock.Now()))
}
