package fleetd

import (
	"fmt"

	"flashwear/internal/obs"
)

// Fleet-health alerting is sim-domain: every rule below reads only the
// campaign's committed day series — integer sums that are a pure function
// of the campaign spec (minus scheduling knobs) — compares with integer
// arithmetic, and renders its reading as an exact integer ratio. No wall
// clock, no floats, no map iteration. The resulting alert events are
// therefore byte-identical (modulo the journal's Seq/WallMs ops envelope)
// across shard counts, worker counts, checkpoint cadence, and
// crash/resume, which TestAlertEventInvariance pins.
//
// Rules are edge-triggered on days: a rule fires for day d when its
// condition holds at d and did not hold at d-1 (day 0 compares against an
// all-false baseline), so a persistently bad fleet alerts once per
// excursion, not once per day. The fired-set (restored from the journal on
// adoption) dedupes re-derivations when an idempotent sweep re-walks
// epochs after a resume.

// alertEvent is a sim-domain finding awaiting its journal envelope.
type alertEvent struct {
	typ    string // "alert" or "brick_milestone"
	day    int    // 1-based simulated day
	rule   string
	value  string // exact integer ratio, e.g. "3/1000"
	detail string
}

//flashvet:sim-sink deterministic alert emission
func (a alertEvent) event() obs.Event {
	return obs.Event{Type: a.typ, Sim: true, Day: a.day, Rule: a.rule, Value: a.value, Detail: a.detail}
}

// alertRule evaluates one day row. rows[d] is the fleet at the end of day
// d (0-based); devices is the full population.
type alertRule struct {
	name   string
	detail string
	// cond reports whether the rule's condition holds at day d.
	cond func(rows [][]int64, d int, devices int64) bool
	// value renders the reading for day d as an integer ratio.
	value func(rows [][]int64, d int, devices int64) string
}

// newBricks is the day-over-day brick delta.
func newBricks(rows [][]int64, d int) int64 {
	if d == 0 {
		return rows[0][dBricked]
	}
	return rows[d][dBricked] - rows[d-1][dBricked]
}

// deltas for the write-amplification spike rule.
func hostFlashDelta(rows [][]int64, d int) (host, flash int64) {
	if d == 0 {
		return rows[0][dHostBytes], rows[0][dFlashBytes]
	}
	return rows[d][dHostBytes] - rows[d-1][dHostBytes], rows[d][dFlashBytes] - rows[d-1][dFlashBytes]
}

// alertRules is the fixed rule table. Thresholds are per-mille / percent
// integers so evaluation never touches floating point.
var alertRules = []alertRule{
	{
		name:   "brick_rate",
		detail: "daily brick rate at or above 5 per 1000 devices",
		cond: func(rows [][]int64, d int, devices int64) bool {
			nb := newBricks(rows, d)
			return nb > 0 && nb*1000 >= devices*5
		},
		value: func(rows [][]int64, d int, devices int64) string {
			return fmt.Sprintf("%d/%d", newBricks(rows, d), devices)
		},
	},
	{
		name:   "pre_eol_pct",
		detail: "read-only (PRE_EOL) devices at or above 5% of the fleet",
		cond: func(rows [][]int64, d int, devices int64) bool {
			ro := rows[d][dReadOnly]
			return ro > 0 && ro*100 >= devices*5
		},
		value: func(rows [][]int64, d int, devices int64) string {
			return fmt.Sprintf("%d/%d", rows[d][dReadOnly], devices)
		},
	},
	{
		name:   "wa_spike",
		detail: "fleet write amplification at or above 3x for the day",
		cond: func(rows [][]int64, d int, devices int64) bool {
			host, flash := hostFlashDelta(rows, d)
			return host > 0 && flash >= 3*host
		},
		value: func(rows [][]int64, d int, devices int64) string {
			host, flash := hostFlashDelta(rows, d)
			return fmt.Sprintf("%d/%d", flash, host)
		},
	},
	{
		name:   "rber_trend",
		detail: "fleet raw BER doubled from day 1 and crossed 1e-6 per device",
		cond: func(rows [][]int64, d int, devices int64) bool {
			if d == 0 {
				return false
			}
			cur := rows[d][dRawBERFemto]
			// 1e-6 mean RBER = 1e9 femto units per device.
			return cur >= 2*rows[0][dRawBERFemto] && cur >= devices*1_000_000_000
		},
		value: func(rows [][]int64, d int, devices int64) string {
			return fmt.Sprintf("%d/%d", rows[d][dRawBERFemto], rows[0][dRawBERFemto])
		},
	},
}

// brickCountMilestones and brickPctMilestones fire once each when the
// cumulative brick count first reaches them.
var brickCountMilestones = []int64{1, 10, 100, 1_000, 10_000, 100_000, 1_000_000}
var brickPctMilestones = []int64{1, 5, 10, 25, 50}

// alertState carries the fired-set across epoch commits and resumes.
type alertState struct {
	fired map[string]bool // Event.SimKey()
}

func newAlertState() *alertState {
	return &alertState{fired: map[string]bool{}}
}

// seed marks already-journaled sim events as fired, so an adopted or
// resumed campaign never duplicates them.
func (a *alertState) seed(events []obs.Event) {
	for _, e := range events {
		if e.Sim {
			a.fired[e.SimKey()] = true
		}
	}
}

// scan evaluates every rule over rows and returns the not-yet-fired
// findings in deterministic order (day-major, then rule table order,
// then milestones), marking them fired. rows is the full committed
// series so edge detection sees day d-1 even across epoch boundaries.
//
//flashvet:sim-sink fleet-health alert evaluation
func (a *alertState) scan(rows [][]int64, devices int64) []alertEvent {
	var out []alertEvent
	emit := func(ev alertEvent) {
		key := obs.Event{Type: ev.typ, Rule: ev.rule, Day: ev.day}.SimKey()
		if a.fired[key] {
			return
		}
		a.fired[key] = true
		out = append(out, ev)
	}
	for d := range rows {
		for _, r := range alertRules {
			if r.cond(rows, d, devices) && (d == 0 || !r.cond(rows, d-1, devices)) {
				emit(alertEvent{typ: "alert", day: d + 1, rule: r.name,
					value: r.value(rows, d, devices), detail: r.detail})
			}
		}
		bricked := rows[d][dBricked]
		prev := int64(0)
		if d > 0 {
			prev = rows[d-1][dBricked]
		}
		for _, n := range brickCountMilestones {
			if bricked >= n && prev < n {
				emit(alertEvent{typ: "brick_milestone", day: d + 1,
					rule:   fmt.Sprintf("count_%d", n),
					value:  fmt.Sprintf("%d/%d", bricked, devices),
					detail: fmt.Sprintf("cumulative bricked devices reached %d", n)})
			}
		}
		for _, p := range brickPctMilestones {
			if bricked*100 >= devices*p && prev*100 < devices*p {
				emit(alertEvent{typ: "brick_milestone", day: d + 1,
					rule:   fmt.Sprintf("pct_%d", p),
					value:  fmt.Sprintf("%d/%d", bricked, devices),
					detail: fmt.Sprintf("cumulative bricked devices reached %d%% of the fleet", p)})
			}
		}
	}
	return out
}
