// Package extfs implements an ext4-like journaling file system on a
// blockdev.Device: bitmap allocation, an inode table with direct, indirect
// and double-indirect block pointers, hierarchical directories, and a
// physical-block journal in ordered mode (data written in place before the
// metadata that references it commits), with lazy checkpointing and replay
// on mount.
//
// Like Android's ext4 mounts, pure in-place overwrites that change only an
// inode's timestamps do not force a journal transaction per fsync
// (lazytime); this is why the paper's Figure 4 finds ext4 wear close to the
// raw device while F2FS doubles it.
package extfs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flashwear/internal/blockdev"
)

// On-disk constants.
const (
	BlockSize = 4096
	Magic     = 0x46574558 // "XEWF"
	Version   = 1

	InodeSize      = 256
	InodesPerBlock = BlockSize / InodeSize

	// RootIno is the root directory's inode number. Inode 0 is reserved
	// as "invalid".
	RootIno = 1

	// Pointer geometry.
	NDirect    = 12
	PtrSize    = 4
	PtrsPerBlk = BlockSize / PtrSize

	// MaxFileBlocks is the largest mappable file in blocks.
	MaxFileBlocks = NDirect + PtrsPerBlk + PtrsPerBlk*PtrsPerBlk
)

// Superblock state flags.
const (
	stateClean   = 1
	stateMounted = 2
)

var (
	// ErrNotExtfs means the device does not carry an extfs superblock.
	ErrNotExtfs = errors.New("extfs: bad magic (not an extfs volume)")
	// ErrCorrupt covers structurally invalid on-disk state.
	ErrCorrupt = errors.New("extfs: corrupt volume")
)

// superblock is block 0.
type superblock struct {
	magic       uint32
	version     uint32
	totalBlocks uint32 // whole volume, in 4 KiB blocks
	inodeCount  uint32
	bitmapStart uint32
	bitmapBlks  uint32
	itableStart uint32
	itableBlks  uint32
	jStart      uint32
	jBlks       uint32
	dataStart   uint32
	state       uint32
}

func (sb *superblock) encode() []byte {
	b := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.magic)
	le.PutUint32(b[4:], sb.version)
	le.PutUint32(b[8:], sb.totalBlocks)
	le.PutUint32(b[12:], sb.inodeCount)
	le.PutUint32(b[16:], sb.bitmapStart)
	le.PutUint32(b[20:], sb.bitmapBlks)
	le.PutUint32(b[24:], sb.itableStart)
	le.PutUint32(b[28:], sb.itableBlks)
	le.PutUint32(b[32:], sb.jStart)
	le.PutUint32(b[36:], sb.jBlks)
	le.PutUint32(b[40:], sb.dataStart)
	le.PutUint32(b[44:], sb.state)
	return b
}

func decodeSuperblock(b []byte) (*superblock, error) {
	le := binary.LittleEndian
	sb := &superblock{
		magic:       le.Uint32(b[0:]),
		version:     le.Uint32(b[4:]),
		totalBlocks: le.Uint32(b[8:]),
		inodeCount:  le.Uint32(b[12:]),
		bitmapStart: le.Uint32(b[16:]),
		bitmapBlks:  le.Uint32(b[20:]),
		itableStart: le.Uint32(b[24:]),
		itableBlks:  le.Uint32(b[28:]),
		jStart:      le.Uint32(b[32:]),
		jBlks:       le.Uint32(b[36:]),
		dataStart:   le.Uint32(b[40:]),
		state:       le.Uint32(b[44:]),
	}
	if sb.magic != Magic {
		return nil, ErrNotExtfs
	}
	if sb.version != Version {
		return nil, fmt.Errorf("%w: version %d", ErrCorrupt, sb.version)
	}
	if sb.dataStart >= sb.totalBlocks || sb.jStart >= sb.totalBlocks {
		return nil, fmt.Errorf("%w: layout out of range", ErrCorrupt)
	}
	return sb, nil
}

// computeLayout derives the region sizes for a device.
func computeLayout(deviceBytes int64) (*superblock, error) {
	total := uint32(deviceBytes / BlockSize)
	if total < 64 {
		return nil, fmt.Errorf("extfs: device too small: %d blocks", total)
	}
	// One inode per 8 data blocks, at least 64.
	inodes := total / 8
	if inodes < 64 {
		inodes = 64
	}
	itableBlks := (inodes + InodesPerBlock - 1) / InodesPerBlock
	// Bitmap covers the whole volume (simplest addressing).
	bitmapBlks := (total + BlockSize*8 - 1) / (BlockSize * 8)
	// Journal: 1/64 of the volume, clamped to [8, 1024] blocks.
	jBlks := total / 64
	if jBlks < 8 {
		jBlks = 8
	}
	if jBlks > 1024 {
		jBlks = 1024
	}
	sb := &superblock{
		magic:       Magic,
		version:     Version,
		totalBlocks: total,
		inodeCount:  itableBlks * InodesPerBlock,
		bitmapStart: 1,
	}
	sb.bitmapBlks = bitmapBlks
	sb.itableStart = sb.bitmapStart + bitmapBlks
	sb.itableBlks = itableBlks
	sb.jStart = sb.itableStart + itableBlks
	sb.jBlks = jBlks
	sb.dataStart = sb.jStart + jBlks
	if sb.dataStart+16 > total {
		return nil, fmt.Errorf("extfs: device too small after metadata: %d data blocks",
			int64(total)-int64(sb.dataStart))
	}
	return sb, nil
}

// readBlock reads one 4 KiB block.
func readBlock(d blockdev.Device, blk uint32) ([]byte, error) {
	b := make([]byte, BlockSize)
	if err := d.ReadAt(b, int64(blk)*BlockSize); err != nil {
		return nil, err
	}
	return b, nil
}

// writeBlock writes one 4 KiB block.
func writeBlock(d blockdev.Device, blk uint32, b []byte) error {
	return d.WriteAt(b, int64(blk)*BlockSize)
}
