// Package ecc provides the error-correction substrate the flash stack reads
// through: a real extended-Hamming SEC-DED codec operating on 64-byte
// codewords, and a BCH capability model matching the t-bit-per-1KiB
// correction strength eMMC-class controllers ship (§2.2's "significant body
// of work ... dedicated to Error Correction Coding").
//
// The Hamming codec is bit-accurate — encode, corrupt, decode round-trips
// are exercised by the test suite — while the BCH model captures only the
// correction *capability*, which is what the endurance simulation needs.
package ecc

import (
	"errors"
	"fmt"
	"math/bits"
)

// Hamming codec parameters: we protect 512 data bits (64 bytes) with 10
// parity bits plus 1 overall parity bit, an extended Hamming code:
// single-error correction, double-error detection.
const (
	HammingDataBytes = 64
	hammingDataBits  = HammingDataBytes * 8 // 512
	hammingParity    = 10                   // 2^10 = 1024 >= 512+10+1
	parityMask       = 1<<hammingParity - 1
)

// Errors returned by Decode.
var (
	ErrDetected = errors.New("ecc: uncorrectable error detected (double-bit)")
	ErrCodeword = errors.New("ecc: malformed codeword")
)

// Codeword is an encoded 64-byte block: data, 10 Hamming parity bits and one
// overall parity bit packed into the Parity field (bits 0..9 Hamming, bit 10
// overall).
type Codeword struct {
	Data   [HammingDataBytes]byte
	Parity uint16
}

// bitAt returns data bit i (0-based, LSB-first within each byte).
func bitAt(data []byte, i int) int {
	return int(data[i>>3]>>(uint(i)&7)) & 1
}

// flipBit flips data bit i in place.
func flipBit(data []byte, i int) {
	data[i>>3] ^= 1 << (uint(i) & 7)
}

// dataPositions maps a data-bit index to its codeword position in the
// classic Hamming layout, where positions that are powers of two hold parity
// bits. Data bits occupy the remaining positions 3,5,6,7,9,... in order.
var dataPositions = buildDataPositions()

func buildDataPositions() [hammingDataBits]int {
	var pos [hammingDataBits]int
	p, i := 1, 0
	for i < hammingDataBits {
		p++
		if p&(p-1) == 0 { // power of two: parity position
			continue
		}
		pos[i] = p
		i++
	}
	return pos
}

// hammingOf returns the 10 Hamming parity bits (as the XOR of codeword
// positions of set data bits) and the number of set data bits.
func hammingOf(data []byte) (parity uint16, ones int) {
	var syndrome int
	for i := 0; i < hammingDataBits; i++ {
		if bitAt(data, i) == 1 {
			syndrome ^= dataPositions[i]
			ones++
		}
	}
	return uint16(syndrome) & parityMask, ones
}

// Encode computes the parity for 64 bytes of data. It panics if data is not
// exactly HammingDataBytes long, since that is a programming error.
func Encode(data []byte) Codeword {
	if len(data) != HammingDataBytes {
		panic(fmt.Sprintf("ecc: Encode: data length %d, want %d", len(data), HammingDataBytes))
	}
	var cw Codeword
	copy(cw.Data[:], data)
	p, ones := hammingOf(data)
	// Overall parity makes the total number of set bits in the stored word
	// (data + Hamming parity + overall bit) even.
	if (ones+bits.OnesCount16(p))&1 == 1 {
		p |= 1 << hammingParity
	}
	cw.Parity = p
	return cw
}

// Decode checks and repairs a codeword in place. It returns the number of
// bits corrected (0 or 1), or ErrDetected for an uncorrectable double-bit
// error.
func Decode(cw *Codeword) (corrected int, err error) {
	if cw == nil {
		return 0, ErrCodeword
	}
	storedHamming := cw.Parity & parityMask
	freshHamming, ones := hammingOf(cw.Data[:])
	synd := storedHamming ^ freshHamming
	// Overall parity is checked over the received word exactly as stored.
	received := ones + bits.OnesCount16(cw.Parity)
	odd := received&1 == 1

	switch {
	case synd == 0 && !odd:
		return 0, nil
	case synd == 0 && odd:
		// The overall parity bit itself flipped; data is intact.
		cw.Parity ^= 1 << hammingParity
		return 1, nil
	case odd:
		// Single-bit error at codeword position synd.
		if synd&(synd-1) == 0 {
			// A Hamming parity bit flipped; data is intact.
			cw.Parity ^= synd
			return 1, nil
		}
		idx := dataIndexOf(int(synd))
		if idx < 0 {
			return 0, fmt.Errorf("%w: syndrome %d outside codeword", ErrCodeword, synd)
		}
		flipBit(cw.Data[:], idx)
		return 1, nil
	default:
		// Non-zero syndrome with even overall parity: two bits flipped.
		return 0, ErrDetected
	}
}

// dataIndexOf inverts dataPositions: codeword position -> data bit index, or
// -1 if the position does not hold a data bit.
func dataIndexOf(pos int) int {
	lo, hi := 0, hammingDataBits-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case dataPositions[mid] == pos:
			return mid
		case dataPositions[mid] < pos:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	return -1
}

// FlipDataBit corrupts bit i of the codeword's data, for tests and fault
// injection.
func (cw *Codeword) FlipDataBit(i int) {
	if i < 0 || i >= hammingDataBits {
		panic(fmt.Sprintf("ecc: FlipDataBit(%d): out of range", i))
	}
	flipBit(cw.Data[:], i)
}

// FlipParityBit corrupts parity bit k (0..10, where 10 is the overall bit).
func (cw *Codeword) FlipParityBit(k int) {
	if k < 0 || k > hammingParity {
		panic(fmt.Sprintf("ecc: FlipParityBit(%d): out of range", k))
	}
	cw.Parity ^= 1 << uint(k)
}
