package obs

import (
	"math/rand"
	"time"
)

// Backoff is a capped exponential backoff with jitter — the one retry
// policy shared by everything in the ops plane that talks to an
// unreliable host: the fleetd checkpoint writer retrying a full disk,
// the client CLI retrying a 503. It lives in obs because retry pacing is
// wall-clock policy through and through: nothing about when a write was
// retried may flow into simulation results, and the sim-domain packages
// that use it (fleetd) only ever observe "the operation eventually
// succeeded or didn't".
//
// The zero value is usable: one attempt, no sleeping — retry disabled.
type Backoff struct {
	// Attempts is the total number of tries, including the first
	// (<= 1 means no retries).
	Attempts int
	// Base is the delay before the first retry; it doubles per retry up
	// to Max. Zero defaults to 50ms (Max: 2s).
	Base time.Duration
	Max  time.Duration
	// Sleep replaces time.Sleep, for tests and for callers that need to
	// observe cancellation mid-wait. Nil means time.Sleep.
	Sleep func(time.Duration)
}

// Delay returns the pre-jitter delay after failed attempt n (1-based):
// Base<<(n-1), capped at Max.
func (b Backoff) Delay(n int) time.Duration {
	base, max := b.Base, b.Max
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	d := base
	for i := 1; i < n; i++ {
		d *= 2
		if d >= max {
			return max
		}
	}
	if d > max {
		return max
	}
	return d
}

// jitter spreads a delay uniformly over [d/2, d], so a fleet of clients
// that failed together does not retry together. The draw comes from the
// process-global math/rand stream: retry pacing is ops-domain by
// definition — shared entropy is exactly right, and nothing downstream
// is allowed to depend on it.
func jitter(d time.Duration) time.Duration {
	if d <= 1 {
		return d
	}
	half := int64(d) / 2
	return time.Duration(half + rand.Int63n(half+1))
}

// Retry runs fn up to b.Attempts times. fn reports (retryable, err):
// a nil err ends the loop successfully; a non-retryable err (a permanent
// failure like a 4xx response) ends it immediately; otherwise Retry
// sleeps the jittered backoff and tries again. Returns the last error.
func (b Backoff) Retry(fn func(attempt int) (retryable bool, err error)) error {
	attempts := b.Attempts
	if attempts < 1 {
		attempts = 1
	}
	sleep := b.Sleep
	if sleep == nil {
		sleep = time.Sleep
	}
	var err error
	for n := 1; ; n++ {
		var retryable bool
		retryable, err = fn(n)
		if err == nil || !retryable || n >= attempts {
			return err
		}
		sleep(jitter(b.Delay(n)))
	}
}
