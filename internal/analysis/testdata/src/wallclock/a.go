// Package a exercises the wallclock analyzer: wall-clock reads and timers
// are banned in simulation code; duration arithmetic is not.
package a

import (
	"time"

	"flashwear/internal/obs"
	"flashwear/internal/runtrace"
)

func sim() time.Duration {
	start := time.Now()          // want `wall-clock time\.Now`
	time.Sleep(time.Millisecond) // want `wall-clock time\.Sleep`
	_ = time.Since(start)        // want `wall-clock time\.Since`
	_ = time.Until(start)        // want `wall-clock time\.Until`
	t := time.NewTimer(0)        // want `wall-clock time\.NewTimer`
	t.Stop()
	return 3 * time.Second // ok: duration arithmetic reads no clock
}

func asValue() func() time.Time {
	return time.Now // want `wall-clock time\.Now`
}

func constructed() time.Time {
	// ok: computes a value from explicit arguments.
	return time.Date(2017, time.May, 8, 0, 0, 0, 0, time.UTC)
}

func waived() time.Time {
	//flashvet:ignore wallclock operator-facing log timestamp, outside the simulation
	return time.Now()
}

func laundered() time.Time {
	// obs.WallNow is the ops plane's clock source; calling it from a
	// package without a //flashvet:ops-domain declaration is the same
	// offence as time.Now.
	return obs.WallNow() // want `ops-plane clock source obs\.WallNow`
}

func spans(tr *runtrace.Tracer) {
	// ok: emitting spans is legal in sim code — Begin/End measure where
	// time went without letting the caller read the clock back.
	sp := tr.Begin(runtrace.PhaseSimulate, 0, 1, 2)
	sp.End()
	// Reading the measured wall time back is laundering, same as WallNow.
	_ = tr.Totals()   // want `ops-plane clock source runtrace\.Totals`
	_ = tr.Snapshot() // want `ops-plane clock source runtrace\.Snapshot`
}
