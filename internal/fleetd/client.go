package fleetd

import (
	"bufio"
	"bytes"
	"context"
	crand "crypto/rand"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"time"

	"flashwear/internal/obs"
)

// Client is the Go-side counterpart of Server — a thin wrapper the
// fleetd CLI's client mode drives. Errors from the API surface as
// *APIError carrying the HTTP status.
//
// Requests are resilient by default: each attempt runs under a
// per-request timeout, and transport errors, 5xx, and 429 responses are
// retried with capped, jittered backoff. Mutating requests carry a fresh
// Idempotency-Key for all their attempts, so a retry after an ambiguous
// failure (timeout after the server committed) replays the original
// outcome instead of double-executing. Other 4xx responses are never
// retried — the request itself is wrong.
type Client struct {
	// BaseURL is the server root, e.g. "http://localhost:7070".
	BaseURL string
	// HTTPClient defaults to http.DefaultClient.
	HTTPClient *http.Client
	// Timeout bounds each attempt (not the whole retry loop). Zero means
	// 60s; the streaming Watch is exempt.
	Timeout time.Duration
	// Retry paces re-attempts. The zero value means 3 attempts at the
	// obs.Backoff default delays; set Attempts to 1 to disable retries.
	Retry obs.Backoff
}

// APIError is a non-2xx response decoded from the server's error body.
type APIError struct {
	StatusCode int
	Message    string
}

func (e *APIError) Error() string {
	return fmt.Sprintf("fleetd: server: %s (HTTP %d)", e.Message, e.StatusCode)
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

func (c *Client) timeout() time.Duration {
	if c.Timeout > 0 {
		return c.Timeout
	}
	return 60 * time.Second
}

func (c *Client) retry() obs.Backoff {
	b := c.Retry
	if b.Attempts < 1 {
		b.Attempts = 3
	}
	return b
}

// newIdempotencyKey draws a random key binding a mutating request's
// attempts together. Entropy comes from crypto/rand: this is a protocol
// nonce, not simulation randomness, so the seeded-RNG rules don't apply.
func newIdempotencyKey() string {
	var b [16]byte
	if _, err := crand.Read(b[:]); err != nil {
		// Ambient entropy unavailable: send no key rather than a
		// colliding one; the request simply loses retry-dedup.
		return ""
	}
	return hex.EncodeToString(b[:])
}

// retryableStatus reports whether a response status is worth retrying:
// the server or an intermediary failed (5xx) or asked for pacing (429),
// as opposed to the request being wrong (other 4xx).
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

// do issues a request, retrying per the client policy, and returns the
// response body on 2xx.
func (c *Client) do(method, path string, body any) ([]byte, error) {
	var raw []byte
	if body != nil {
		var err error
		raw, err = json.Marshal(body)
		if err != nil {
			return nil, err
		}
	}
	idemKey := ""
	if method != http.MethodGet && method != http.MethodHead {
		idemKey = newIdempotencyKey()
	}
	var out []byte
	err := c.retry().Retry(func(int) (bool, error) {
		var retryable bool
		var err error
		out, retryable, err = c.attempt(method, path, raw, body != nil, idemKey)
		return retryable, err
	})
	return out, err
}

// attempt is one bounded request/response cycle.
func (c *Client) attempt(method, path string, body []byte, hasBody bool, idemKey string) (raw []byte, retryable bool, err error) {
	ctx, cancel := context.WithTimeout(context.Background(), c.timeout())
	defer cancel()
	var rd io.Reader
	if hasBody {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, rd)
	if err != nil {
		return nil, false, err
	}
	if hasBody {
		req.Header.Set("Content-Type", "application/json")
	}
	if idemKey != "" {
		req.Header.Set("Idempotency-Key", idemKey)
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		// Transport failure or timeout: ambiguous, safe to retry thanks to
		// the idempotency key.
		return nil, true, err
	}
	defer resp.Body.Close()
	raw, err = io.ReadAll(resp.Body)
	if err != nil {
		return nil, true, err
	}
	if resp.StatusCode/100 != 2 {
		var ae apiError
		msg := string(raw)
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			msg = ae.Error
		}
		return nil, retryableStatus(resp.StatusCode), &APIError{StatusCode: resp.StatusCode, Message: msg}
	}
	return raw, false, nil
}

func (c *Client) getJSON(path string, out any) error {
	raw, err := c.do(http.MethodGet, path, nil)
	if err != nil {
		return err
	}
	return json.Unmarshal(raw, out)
}

func (c *Client) postJSON(path string, body any, out any) error {
	raw, err := c.do(http.MethodPost, path, body)
	if err != nil {
		return err
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(raw, out)
}

func campaignPath(id string, suffix string) string {
	return "/v1/campaigns/" + url.PathEscape(id) + suffix
}

// Submit submits a campaign and returns its initial status.
func (c *Client) Submit(spec CampaignSpec) (Status, error) {
	var st Status
	err := c.postJSON("/v1/campaigns", spec, &st)
	return st, err
}

// List returns every campaign's status.
func (c *Client) List() ([]Status, error) {
	var out []Status
	err := c.getJSON("/v1/campaigns", &out)
	return out, err
}

// Status returns one campaign's status.
func (c *Client) Status(id string) (Status, error) {
	var st Status
	err := c.getJSON(campaignPath(id, ""), &st)
	return st, err
}

// SeriesCSV returns the committed day series as CSV.
func (c *Client) SeriesCSV(id string) ([]byte, error) {
	return c.do(http.MethodGet, campaignPath(id, "/series"), nil)
}

// LedgerCSV returns the point-in-time wear ledger as CSV.
func (c *Client) LedgerCSV(id string) ([]byte, error) {
	return c.do(http.MethodGet, campaignPath(id, "/ledger"), nil)
}

// Result returns the final aggregate; an *APIError with status 409 means
// the campaign is still running.
func (c *Client) Result(id string) (*Aggregate, error) {
	var agg Aggregate
	if err := c.getJSON(campaignPath(id, "/result"), &agg); err != nil {
		return nil, err
	}
	return &agg, nil
}

// Pause pauses a campaign.
func (c *Client) Pause(id string) (Status, error) {
	var st Status
	err := c.postJSON(campaignPath(id, "/pause"), nil, &st)
	return st, err
}

// Resume resumes a paused campaign.
func (c *Client) Resume(id string) (Status, error) {
	var st Status
	err := c.postJSON(campaignPath(id, "/resume"), nil, &st)
	return st, err
}

// Fork forks a quiescent campaign and returns the fork's status.
func (c *Client) Fork(id string, opts ForkOptions) (Status, error) {
	var st Status
	err := c.postJSON(campaignPath(id, "/fork"), opts, &st)
	return st, err
}

// TraceStart opens a runtrace recording window on the server.
func (c *Client) TraceStart() (TraceStatus, error) {
	var st TraceStatus
	err := c.postJSON("/v1/trace/start", nil, &st)
	return st, err
}

// TraceStop closes the recording window; buffered spans stay fetchable.
func (c *Client) TraceStop() (TraceStatus, error) {
	var st TraceStatus
	err := c.postJSON("/v1/trace/stop", nil, &st)
	return st, err
}

// TraceStatus reports recording state and per-phase wall totals.
func (c *Client) TraceStatus() (TraceStatus, error) {
	var st TraceStatus
	err := c.getJSON("/v1/trace/status", &st)
	return st, err
}

// TraceChrome fetches the recorded window as Chrome trace-event JSON.
func (c *Client) TraceChrome() ([]byte, error) {
	return c.do(http.MethodGet, "/v1/trace", nil)
}

// Events returns the campaign's journal events with Seq > since.
func (c *Client) Events(id string, since uint64) ([]obs.Event, error) {
	var out []obs.Event
	err := c.getJSON(campaignPath(id, "/events?since="+strconv.FormatUint(since, 10)), &out)
	return out, err
}

// Watch subscribes to the campaign's SSE stream from since and calls fn
// for each event until the stream ends or fn returns an error. A nil
// return means the server closed the stream (campaign journal fan-out
// buffer overrun or shutdown) — the caller may reconnect from the last
// seen Seq.
func (c *Client) Watch(id string, since uint64, fn func(obs.Event) error) error {
	req, err := http.NewRequest(http.MethodGet,
		c.BaseURL+campaignPath(id, "/watch?since="+strconv.FormatUint(since, 10)), nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode/100 != 2 {
		raw, _ := io.ReadAll(resp.Body)
		var ae apiError
		if json.Unmarshal(raw, &ae) == nil && ae.Error != "" {
			return &APIError{StatusCode: resp.StatusCode, Message: ae.Error}
		}
		return &APIError{StatusCode: resp.StatusCode, Message: string(raw)}
	}
	// Minimal SSE parse: collect data: lines until a blank line ends the
	// frame, then decode the frame's JSON payload.
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	var data []byte
	for sc.Scan() {
		line := sc.Text()
		switch {
		case line == "":
			if len(data) > 0 {
				var e obs.Event
				if err := json.Unmarshal(data, &e); err != nil {
					return fmt.Errorf("fleetd: watch: bad event payload: %w", err)
				}
				if err := fn(e); err != nil {
					return err
				}
				data = data[:0]
			}
		case len(line) >= 5 && line[:5] == "data:":
			data = append(data, bytes.TrimSpace([]byte(line[5:]))...)
		}
	}
	return sc.Err()
}
