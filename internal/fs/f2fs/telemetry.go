package f2fs

import "flashwear/internal/telemetry"

// Instrument registers the volume's log-structured counters with reg under
// "fs.*{fs=f2fs}". The metadata-amplification gauge is node-block writes
// per data-block write — the log-structured analogue of extfs's journal
// overhead. Pure observers only; see DESIGN.md §7.
func (v *FS) Instrument(reg *telemetry.Registry) {
	n := func(base string) string { return telemetry.Name("fs."+base, "fs", "f2fs") }
	reg.CounterFunc(n("node_writes"), func() int64 { return v.statNodeWrites })
	reg.CounterFunc(n("data_blocks"), func() int64 { return v.statDataWrites })
	reg.CounterFunc(n("checkpoints"), func() int64 { return v.statCheckpoints })
	reg.CounterFunc(n("cleaned_segments"), func() int64 { return v.statCleanedSegs })
	reg.CounterFunc(n("rolled_forward"), func() int64 { return v.statRolledForward })
	reg.GaugeFunc(n("free_segments"), func() float64 { return float64(v.freeSegs) })
	reg.GaugeFunc(n("metadata_amp"), func() float64 {
		if v.statDataWrites == 0 {
			return 0
		}
		return float64(v.statNodeWrites) / float64(v.statDataWrites)
	})
}
