// Package trace records and replays block-level I/O. The paper runs the
// same workloads across seven devices; a recorded trace makes such
// cross-device comparisons exact: capture the attack once, replay it
// bit-for-bit against any simulated device, at the original simulated
// timing or as fast as the target allows.
package trace

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"time"

	"flashwear/internal/blockdev"
	"flashwear/internal/simclock"
)

// Op is the I/O operation kind.
type Op uint8

const (
	OpWrite Op = iota + 1
	OpRead
	OpDiscard
	OpFlush
)

// String implements fmt.Stringer.
func (o Op) String() string {
	switch o {
	case OpWrite:
		return "write"
	case OpRead:
		return "read"
	case OpDiscard:
		return "discard"
	case OpFlush:
		return "flush"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Event is one traced request. Payload bytes are not retained — wear and
// timing depend only on the shape of the request stream.
type Event struct {
	At  time.Duration // simulated time the request was issued
	Op  Op
	Off int64
	Len int64
}

// Stats summarises a recorded trace: request counts and data volume by
// operation kind (flushes carry no bytes).
type Stats struct {
	Writes   int64
	Reads    int64
	Discards int64
	Flushes  int64

	BytesWritten   int64
	BytesRead      int64
	BytesDiscarded int64
}

// Events returns the total number of recorded requests.
func (s Stats) Events() int64 { return s.Writes + s.Reads + s.Discards + s.Flushes }

// Recorder wraps a device and appends every request to an in-memory trace.
type Recorder struct {
	Inner blockdev.Device
	clock *simclock.Clock

	events []Event
	stats  Stats
}

// NewRecorder wraps dev; the clock timestamps events.
func NewRecorder(dev blockdev.Device, clock *simclock.Clock) *Recorder {
	return &Recorder{Inner: dev, clock: clock}
}

// Events returns the recorded trace.
func (r *Recorder) Events() []Event { return r.events }

// Stats returns a summary of the recorded trace so far.
func (r *Recorder) Stats() Stats { return r.stats }

func (r *Recorder) add(op Op, off, length int64) {
	r.events = append(r.events, Event{At: r.clock.Now(), Op: op, Off: off, Len: length})
	switch op {
	case OpWrite:
		r.stats.Writes++
		r.stats.BytesWritten += length
	case OpRead:
		r.stats.Reads++
		r.stats.BytesRead += length
	case OpDiscard:
		r.stats.Discards++
		r.stats.BytesDiscarded += length
	case OpFlush:
		r.stats.Flushes++
	}
}

// ReadAt implements blockdev.Device.
func (r *Recorder) ReadAt(p []byte, off int64) error {
	r.add(OpRead, off, int64(len(p)))
	return r.Inner.ReadAt(p, off)
}

// WriteAt implements blockdev.Device.
func (r *Recorder) WriteAt(p []byte, off int64) error {
	r.add(OpWrite, off, int64(len(p)))
	return r.Inner.WriteAt(p, off)
}

// WriteAccounted implements blockdev.Device.
func (r *Recorder) WriteAccounted(off, length int64) error {
	r.add(OpWrite, off, length)
	return r.Inner.WriteAccounted(off, length)
}

// Discard implements blockdev.Device.
func (r *Recorder) Discard(off, length int64) error {
	r.add(OpDiscard, off, length)
	return r.Inner.Discard(off, length)
}

// Flush implements blockdev.Device.
func (r *Recorder) Flush() error {
	r.add(OpFlush, 0, 0)
	return r.Inner.Flush()
}

// Size implements blockdev.Device.
func (r *Recorder) Size() int64 { return r.Inner.Size() }

// SectorSize implements blockdev.Device.
func (r *Recorder) SectorSize() int { return r.Inner.SectorSize() }

var _ blockdev.Device = (*Recorder)(nil)

// --- serialization ---

const magic = 0x46575452 // "FWTR"

// Write serialises a trace in a compact binary format.
func Write(w io.Writer, events []Event) error {
	bw := bufio.NewWriter(w)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint64(hdr[4:], uint64(len(events)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return err
	}
	var rec [25]byte
	for _, e := range events {
		rec[0] = byte(e.Op)
		binary.LittleEndian.PutUint64(rec[1:], uint64(e.At))
		binary.LittleEndian.PutUint64(rec[9:], uint64(e.Off))
		binary.LittleEndian.PutUint64(rec[17:], uint64(e.Len))
		if _, err := bw.Write(rec[:]); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ErrFormat is returned for malformed trace streams.
var ErrFormat = errors.New("trace: malformed trace")

// Read deserialises a trace written by Write.
func Read(r io.Reader) ([]Event, error) {
	br := bufio.NewReader(r)
	var hdr [12]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if binary.LittleEndian.Uint32(hdr[0:]) != magic {
		return nil, fmt.Errorf("%w: bad magic", ErrFormat)
	}
	n := binary.LittleEndian.Uint64(hdr[4:])
	if n > 1<<32 {
		return nil, fmt.Errorf("%w: unreasonable event count %d", ErrFormat, n)
	}
	events := make([]Event, 0, n)
	var rec [25]byte
	for i := uint64(0); i < n; i++ {
		if _, err := io.ReadFull(br, rec[:]); err != nil {
			return nil, fmt.Errorf("%w: truncated at event %d", ErrFormat, i)
		}
		e := Event{
			Op:  Op(rec[0]),
			At:  time.Duration(binary.LittleEndian.Uint64(rec[1:])),
			Off: int64(binary.LittleEndian.Uint64(rec[9:])),
			Len: int64(binary.LittleEndian.Uint64(rec[17:])),
		}
		if e.Op < OpWrite || e.Op > OpFlush {
			return nil, fmt.Errorf("%w: bad op %d", ErrFormat, rec[0])
		}
		events = append(events, e)
	}
	return events, nil
}

// --- replay ---

// ReplayStats summarises a replay.
type ReplayStats struct {
	Events       int
	BytesWritten int64
	BytesRead    int64
	Errors       int
	Elapsed      time.Duration
}

// ReplayOptions tune a replay.
type ReplayOptions struct {
	// PreserveTiming advances the clock to each event's original
	// timestamp (offset to the replay's start) before issuing it, so
	// idle gaps are preserved. Without it, requests run back to back at
	// the target device's own speed.
	PreserveTiming bool
	// StopOnError aborts at the first failing request; otherwise errors
	// are counted and the replay continues (a dying target device is an
	// expected outcome in wear studies).
	StopOnError bool
}

// Replay issues a trace against a device. Offsets beyond the target's size
// wrap around, so traces recorded on larger devices remain usable.
func Replay(dev blockdev.Device, clock *simclock.Clock, events []Event, opts ReplayOptions) (ReplayStats, error) {
	var st ReplayStats
	if len(events) == 0 {
		return st, nil
	}
	start := clock.Now()
	base := events[0].At
	buf := make([]byte, 0)
	for _, e := range events {
		if opts.PreserveTiming {
			clock.AdvanceTo(start + (e.At - base))
		}
		off, length := e.Off, e.Len
		if dev.Size() > 0 && off+length > dev.Size() {
			off = off % dev.Size()
			if off+length > dev.Size() {
				off = 0
			}
			if length > dev.Size() {
				length = dev.Size()
			}
		}
		var err error
		switch e.Op {
		case OpWrite:
			err = dev.WriteAccounted(off, length)
			st.BytesWritten += length
		case OpRead:
			if int64(cap(buf)) < length {
				buf = make([]byte, length)
			}
			err = dev.ReadAt(buf[:length], off)
			st.BytesRead += length
		case OpDiscard:
			err = dev.Discard(off, length)
		case OpFlush:
			err = dev.Flush()
		default:
			err = fmt.Errorf("%w: op %v", ErrFormat, e.Op)
		}
		st.Events++
		if err != nil {
			st.Errors++
			if opts.StopOnError {
				st.Elapsed = clock.Now() - start
				return st, err
			}
		}
	}
	st.Elapsed = clock.Now() - start
	return st, nil
}
