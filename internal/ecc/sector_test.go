package ecc

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewSectorCodecValidation(t *testing.T) {
	for _, bad := range []int{0, -64, 63, 100} {
		if _, err := NewSectorCodec(bad); !errors.Is(err, ErrSectorSize) {
			t.Errorf("NewSectorCodec(%d) err = %v, want ErrSectorSize", bad, err)
		}
	}
	s, err := NewSectorCodec(512)
	if err != nil {
		t.Fatalf("NewSectorCodec(512) = %v", err)
	}
	if s.SectorBytes() != 512 || s.ParityBytes() != 16 {
		t.Fatalf("codec = %d bytes / %d parity, want 512/16", s.SectorBytes(), s.ParityBytes())
	}
}

func TestSectorCleanRoundTrip(t *testing.T) {
	s, _ := NewSectorCodec(4096)
	data := make([]byte, 4096)
	rand.New(rand.NewSource(5)).Read(data)
	orig := append([]byte(nil), data...)
	parity, err := s.EncodeSector(data)
	if err != nil {
		t.Fatal(err)
	}
	n, err := s.DecodeSector(data, parity)
	if err != nil || n != 0 {
		t.Fatalf("DecodeSector = (%d, %v), want (0, nil)", n, err)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("clean decode mutated sector")
	}
}

func TestSectorScatteredSingleErrorsCorrected(t *testing.T) {
	s, _ := NewSectorCodec(512)
	data := make([]byte, 512)
	rng := rand.New(rand.NewSource(6))
	rng.Read(data)
	orig := append([]byte(nil), data...)
	parity, _ := s.EncodeSector(data)
	// One bit per codeword: all correctable.
	for w := 0; w < 512/HammingDataBytes; w++ {
		bit := w*HammingDataBytes*8 + rng.Intn(HammingDataBytes*8)
		data[bit/8] ^= 1 << (uint(bit) % 8)
	}
	n, err := s.DecodeSector(data, parity)
	if err != nil {
		t.Fatalf("DecodeSector = %v, want all corrected", err)
	}
	if n != 8 {
		t.Fatalf("corrected = %d, want 8", n)
	}
	if !bytes.Equal(data, orig) {
		t.Fatal("sector not restored")
	}
}

func TestSectorDoubleErrorInOneCodewordFails(t *testing.T) {
	s, _ := NewSectorCodec(256)
	data := make([]byte, 256)
	parity, _ := s.EncodeSector(data)
	data[0] ^= 0x01
	data[1] ^= 0x01 // same 64-byte codeword
	if _, err := s.DecodeSector(data, parity); !errors.Is(err, ErrDetected) {
		t.Fatalf("DecodeSector err = %v, want ErrDetected", err)
	}
}

func TestSectorLengthMismatch(t *testing.T) {
	s, _ := NewSectorCodec(128)
	if _, err := s.EncodeSector(make([]byte, 64)); err == nil {
		t.Fatal("EncodeSector(wrong size) succeeded")
	}
	if _, err := s.DecodeSector(make([]byte, 128), make([]byte, 3)); err == nil {
		t.Fatal("DecodeSector(wrong parity size) succeeded")
	}
}

// Property: a single flipped bit anywhere in a sector is always repaired.
func TestQuickSectorSingleBitRepair(t *testing.T) {
	s, _ := NewSectorCodec(256)
	f := func(seed int64, bitIdx uint16) bool {
		data := make([]byte, 256)
		rand.New(rand.NewSource(seed)).Read(data)
		orig := append([]byte(nil), data...)
		parity, err := s.EncodeSector(data)
		if err != nil {
			return false
		}
		bit := int(bitIdx) % (256 * 8)
		data[bit/8] ^= 1 << (uint(bit) % 8)
		n, err := s.DecodeSector(data, parity)
		return err == nil && n == 1 && bytes.Equal(data, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
