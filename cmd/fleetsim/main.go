// Command fleetsim simulates a population of phones in parallel and prints
// population-scale wear statistics: what fraction of the fleet bricks
// within the horizon, how fast, and how worn the survivors are.
//
// Usage:
//
//	fleetsim -devices 100000 -workers 0 -days 365 -seed 42
//
// Everything written to stdout is a pure function of the flags (worker
// count and wall-clock time never appear there), so runs are byte-for-byte
// reproducible; progress goes to stderr.
//
// Exit codes: 0 on success, 1 on runtime error, 2 on usage error, 3 when
// any device simulation panicked (the panic is contained and the seeds are
// reported for replay, but the run is incomplete).
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"sync"
	"time"

	"strings"

	"flashwear/internal/faultinject"
	"flashwear/internal/fleet"
	"flashwear/internal/fleetd"
	"flashwear/internal/profiling"
	"flashwear/internal/report"
	"flashwear/internal/telemetry"
)

func main() {
	devices := flag.Int("devices", 10000, "population size")
	workers := flag.Int("workers", 0, "parallel workers (0 = GOMAXPROCS)")
	days := flag.Float64("days", 365, "simulated horizon per device, full-scale days")
	seed := flag.Int64("seed", 42, "root seed; the run is a pure function of the flags")
	scale := flag.Int64("scale", 4096, "device capacity divisor (volumes/times multiplied back)")
	req := flag.Int64("req", 64<<10, "workload rewrite request size in bytes")
	buggy := flag.Float64("buggy", 0.07, "fraction of devices running a write-buggy app")
	attack := flag.Float64("attack", 0.03, "fraction of devices under deliberate wear attack")
	csvPath := flag.String("csv", "", "also write histogram CSV to this path (\"-\" = stdout)")
	metricsCSV := flag.String("metrics-csv", "", "write the sampled population time series to this path (\"-\" = stdout)")
	metricsEvery := flag.Duration("metrics-every", 24*time.Hour, "full-scale sampling cadence for -metrics-csv")
	faultPlan := flag.String("fault-plan", "", "per-device hardware fault plan (re-seeded per device), e.g. \"seed=7,read=1e-4,cut-every=100000\"")
	quiet := flag.Bool("quiet", false, "suppress progress output on stderr")
	wearTrace := flag.String("wear-trace", "", "write the merged per-origin wear ledger to this path (\"-\" = stdout, .json for JSON); byte-identical across -workers")
	progress := flag.Duration("progress", 0, "print a done/bricked/read-only line to stderr at this wall-clock interval")
	pprofCPU := flag.String("pprof-cpu", "", "write a CPU profile of the run to this file")
	pprofHeap := flag.String("pprof-heap", "", "write a heap profile to this file at exit")
	checkpointDir := flag.String("checkpoint", "", "run through the fleetd engine, checkpointing shards into this directory (survives kill -9; resume with -resume)")
	checkpointEvery := flag.Int("checkpoint-every", 0, "checkpoint cadence in simulated days for -checkpoint (0 = only at the end)")
	shards := flag.Int("shards", 0, "shard count for -checkpoint mode (scheduling only, never visible in results)")
	resumeDir := flag.String("resume", "", "resume the campaign checkpointed in this directory (its spec comes from campaign.json; population flags are ignored)")
	tracePath := flag.String("trace", "", "write a Chrome trace-event file of the campaign's wall-clock execution (requires -checkpoint/-resume mode)")
	flag.Parse()

	var stopCPU func() error
	if *pprofCPU != "" {
		stop, err := profiling.StartCPU(*pprofCPU)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
			os.Exit(1)
		}
		stopCPU = stop
	}
	fail := func(err error) {
		if stopCPU != nil {
			stopCPU()
		}
		fmt.Fprintln(os.Stderr, "fleetsim:", err)
		os.Exit(1)
	}

	if *buggy < 0 || *attack < 0 || *buggy+*attack > 1 {
		fmt.Fprintln(os.Stderr, "fleetsim: -buggy and -attack must be non-negative and sum to at most 1")
		os.Exit(2)
	}
	if *checkpointDir != "" || *resumeDir != "" {
		if *checkpointDir != "" && *resumeDir != "" {
			fmt.Fprintln(os.Stderr, "fleetsim: -checkpoint and -resume are mutually exclusive")
			os.Exit(2)
		}
		if *days != float64(int(*days)) {
			fmt.Fprintln(os.Stderr, "fleetsim: -checkpoint/-resume mode advances whole days; -days must be an integer")
			os.Exit(2)
		}
		cspec := fleetd.CampaignSpec{
			Devices:         *devices,
			Days:            int(*days),
			Seed:            *seed,
			Scale:           *scale,
			ReqBytes:        *req,
			Buggy:           *buggy,
			Attack:          *attack,
			Faults:          *faultPlan,
			WearTrace:       *wearTrace != "",
			Shards:          *shards,
			Workers:         *workers,
			CheckpointEvery: *checkpointEvery,
		}
		if err := serviceRun(*checkpointDir, *resumeDir, cspec, *metricsCSV, *wearTrace, *tracePath); err != nil {
			fail(err)
		}
		if stopCPU != nil {
			if err := stopCPU(); err != nil {
				fail(err)
			}
			stopCPU = nil
		}
		if *pprofHeap != "" {
			if err := profiling.WriteHeap(*pprofHeap); err != nil {
				fail(err)
			}
		}
		return
	}
	if *tracePath != "" {
		fmt.Fprintln(os.Stderr, "fleetsim: -trace requires -checkpoint/-resume mode (the execution tracer lives in the fleetd engine)")
		os.Exit(2)
	}
	var plan *faultinject.Plan
	if *faultPlan != "" {
		p, err := faultinject.ParsePlan(*faultPlan)
		if err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", fmt.Errorf("-fault-plan: %w", err))
			os.Exit(2)
		}
		plan = &p
	}
	spec := fleet.Spec{
		Devices:   *devices,
		Workers:   *workers,
		Seed:      *seed,
		Days:      *days,
		Scale:     *scale,
		ReqBytes:  *req,
		Faults:    plan,
		WearTrace: *wearTrace != "",
		Classes: []fleet.ClassWeight{
			{Class: fleet.ClassBenign, Weight: 1 - *buggy - *attack},
			{Class: fleet.ClassBuggy, Weight: *buggy},
			{Class: fleet.ClassAttack, Weight: *attack},
		},
	}
	if *metricsCSV != "" {
		spec.MetricsEvery = *metricsEvery
	}
	if !*quiet {
		var mu sync.Mutex
		step := *devices / 100
		if step == 0 {
			step = 1
		}
		spec.Progress = func(done, total int) {
			if done%step != 0 && done != total {
				return
			}
			mu.Lock()
			fmt.Fprintf(os.Stderr, "\rfleetsim: %d/%d devices", done, total)
			if done == total {
				fmt.Fprintln(os.Stderr)
			}
			mu.Unlock()
		}
	}

	// -progress: a wall-clock ticker over the live per-worker counters.
	// These are schedule-dependent monitoring output (stderr only); the
	// deterministic results never pass through this registry.
	var stopProgress func()
	if *progress > 0 {
		reg := telemetry.NewRegistry()
		spec.Telemetry = reg
		//flashvet:ignore wallclock operator progress display on stderr; deterministic results never flow through it
		ticker := time.NewTicker(*progress)
		quitCh := make(chan struct{})
		go func() {
			for {
				select {
				case <-quitCh:
					return
				case <-ticker.C:
					done, bricked, ro := sumProgress(reg)
					fmt.Fprintf(os.Stderr, "fleetsim: progress: %d/%d done, %d bricked, %d read-only\n",
						done, *devices, bricked, ro)
				}
			}
		}()
		stopProgress = func() {
			ticker.Stop()
			close(quitCh)
		}
	}

	res, err := fleet.Run(context.Background(), spec)
	if stopProgress != nil {
		stopProgress()
	}
	if err != nil {
		fail(err)
	}
	render(os.Stdout, res)
	if *csvPath != "" {
		if err := writeCSV(*csvPath, res); err != nil {
			fail(err)
		}
	}
	if *metricsCSV != "" {
		if err := writeTo(*metricsCSV, res.WriteMetricsCSV); err != nil {
			fail(err)
		}
	}
	if *wearTrace != "" {
		renderWear := res.WriteWearCSV
		if strings.HasSuffix(*wearTrace, ".json") {
			renderWear = res.Wear.WriteJSON
		}
		if err := writeTo(*wearTrace, renderWear); err != nil {
			fail(err)
		}
	}
	if stopCPU != nil {
		if err := stopCPU(); err != nil {
			fmt.Fprintln(os.Stderr, "fleetsim:", err)
		}
		stopCPU = nil
	}
	if *pprofHeap != "" {
		if err := profiling.WriteHeap(*pprofHeap); err != nil {
			fail(err)
		}
	}
	if res.Failed > 0 {
		os.Exit(3)
	}
}

// sumProgress totals the live per-worker counters in reg.
func sumProgress(reg *telemetry.Registry) (done, bricked, readOnly int64) {
	for _, p := range reg.Snapshot(0).Points {
		switch {
		case strings.HasPrefix(p.Name, "fleet.devices_done"):
			done += p.Int
		case strings.HasPrefix(p.Name, "fleet.bricks"):
			bricked += p.Int
		case strings.HasPrefix(p.Name, "fleet.read_only"):
			readOnly += p.Int
		}
	}
	return done, bricked, readOnly
}

// writeTo writes via fn to path, or stdout for "-".
func writeTo(path string, fn func(io.Writer) error) error {
	if path == "-" {
		return fn(os.Stdout)
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := fn(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func render(w *os.File, res *fleet.Result) {
	spec := res.Spec
	fmt.Fprintf(w, "Fleet of %d devices over %g days (seed %d, scale %d, req %s)\n\n",
		spec.Devices, spec.Days, spec.Seed, spec.Scale, report.SizeLabel(spec.ReqBytes))

	t := res.Total
	fmt.Fprintf(w, "bricked: %d of %d (%.2f%%)", t.Bricked, t.Devices, t.BrickFraction()*100)
	if t.Bricked > 0 {
		fmt.Fprintf(w, ", mean time-to-brick %.1f days", t.MeanDaysToBrick())
	}
	fmt.Fprintf(w, "\nhost data absorbed: %s\n\n", report.HumanBytes(t.HostMiB<<20))

	if res.Failed > 0 {
		fmt.Fprintf(w, "FAILED: %d device simulation(s) panicked (contained; results exclude them)\n", res.Failed)
		fmt.Fprintf(w, "reproduce with device seeds: %v\n\n", res.FailedSeeds)
	}

	if t.Bricked > 0 {
		ps := []float64{0.10, 0.25, 0.50, 0.75, 0.90, 0.95, 0.99}
		ttb := report.Percentiles(res.TimeToBrick, ps...)
		gib := report.Percentiles(res.DeathGiB, ps...)
		tbl := report.NewTable("Bricked devices", "percentile", "days-to-brick", "GiB-at-death")
		for i, p := range ps {
			tbl.AddRow(fmt.Sprintf("p%g", p*100), ttb[i], gib[i])
		}
		tbl.Render(w)
		fmt.Fprintln(w)
	}

	groupTable(w, "By workload class", res.ByClass)
	groupTable(w, "By device model", res.ByProfile)

	if n := t.Devices - t.Bricked; n > 0 {
		chart := report.NewBarChart(
			fmt.Sprintf("Survivor wear (JEDEC Type B level, %d devices)", n), "devices")
		for i, c := range res.SurvivorWear.Counts {
			chart.Add(fmt.Sprintf("level %2d", i), float64(c))
		}
		chart.Render(w)
		fmt.Fprintln(w)
	}

	wa := report.Percentiles(res.WriteAmp, 0.50, 0.90, 0.99)
	fmt.Fprintf(w, "write amplification: p50 %.2f  p90 %.2f  p99 %.2f\n", wa[0], wa[1], wa[2])
}

// groupTable renders a per-group breakdown with keys sorted so the output
// is deterministic (map iteration order is not).
func groupTable(w *os.File, title string, groups map[string]*fleet.Group) {
	keys := make([]string, 0, len(groups))
	for k := range groups {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	tbl := report.NewTable(title, "group", "devices", "bricked", "brick%", "mean-days", "host-data")
	for _, k := range keys {
		g := groups[k]
		tbl.AddRow(k, g.Devices, g.Bricked,
			fmt.Sprintf("%.2f", g.BrickFraction()*100),
			fmt.Sprintf("%.1f", g.MeanDaysToBrick()),
			report.HumanBytes(g.HostMiB<<20))
	}
	tbl.Render(w)
	fmt.Fprintln(w)
}

func writeCSV(path string, res *fleet.Result) error {
	out := os.Stdout
	if path != "-" {
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		defer f.Close()
		out = f
	}
	res.TimeToBrick.RenderCSV(out, "days_to_brick")
	res.DeathGiB.RenderCSV(out, "gib_at_death")
	res.SurvivorWear.RenderCSV(out, "survivor_wear_level")
	res.WriteAmp.RenderCSV(out, "write_amp")
	return nil
}
