package f2fs

import (
	"testing"

	"flashwear/internal/blockdev"
	"flashwear/internal/fs"
)

// TestFaultInjectionNoPanics drives f2fs over devices that fail after N
// operations for a sweep of N: operations must fail cleanly, never panic.
func TestFaultInjectionNoPanics(t *testing.T) {
	for _, failAfter := range []int64{1, 5, 25, 100, 500, 2500} {
		mem, err := blockdev.NewMem(16<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := Mkfs(mem); err != nil {
			t.Fatal(err)
		}
		dev := blockdev.NewFaulty(mem, failAfter)
		v, err := Mount(dev, fs.Options{})
		if err != nil {
			continue // clean mount failure
		}
		f, err := v.Create("/x")
		if err != nil {
			continue
		}
		for i := 0; i < 100; i++ {
			if _, err := f.WriteAt(make([]byte, BlockSize), int64(i%20)*BlockSize); err != nil {
				break
			}
			if err := f.Sync(); err != nil {
				break
			}
		}
		_ = v.Sync() // checkpoint on a failing device must not panic either
	}
}

// TestCheckpointedDataSurvivesDeviceFailure: data checkpointed before the
// failure is readable from the underlying (healthy) device afterwards.
func TestCheckpointedDataSurvivesDeviceFailure(t *testing.T) {
	mem, _ := blockdev.NewMem(16<<20, 512)
	if err := Mkfs(mem); err != nil {
		t.Fatal(err)
	}
	dev := blockdev.NewFaulty(mem, 1<<60)
	v, err := Mount(dev, fs.Options{})
	if err != nil {
		t.Fatal(err)
	}
	f, err := v.Create("/precious")
	if err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 3*BlockSize)
	for i := range payload {
		payload[i] = byte(i * 3)
	}
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := v.Sync(); err != nil { // full checkpoint
		t.Fatal(err)
	}
	dev.FailAfter = 1 // ops already past 1: everything fails now
	if _, err := f.WriteAt(payload, 10*BlockSize); err == nil {
		t.Fatal("write on failing device succeeded")
	}
	// Remount the healthy underlying device; the checkpoint must be intact.
	v2, err := Mount(mem, fs.Options{})
	if err != nil {
		t.Fatalf("remount: %v", err)
	}
	f2, err := v2.Open("/precious")
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(payload))
	if _, err := f2.ReadAt(got, 0); err != nil {
		t.Fatal(err)
	}
	for i := range got {
		if got[i] != byte(i*3) {
			t.Fatalf("byte %d corrupted", i)
		}
	}
}
