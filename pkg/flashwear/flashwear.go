// Package flashwear is the public API of the flashwear library — a
// simulation stack reproducing "Flash Drive Lifespan *is* a Problem"
// (HotOS '17): calibrated mobile flash devices (NAND + FTL + controller),
// ext4-like and F2FS-like file systems, an Android-like app environment,
// the paper's wear-out attack, and the §4.5 mitigations.
//
// The package re-exports the stable surface of the internal packages; see
// the examples/ directory for end-to-end usage and DESIGN.md for the
// architecture.
package flashwear

import (
	"flashwear/internal/android"
	"flashwear/internal/appmodel"
	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/emmc"
	"flashwear/internal/experiments"
	"flashwear/internal/ftl"
	"flashwear/internal/mitigation"
	"flashwear/internal/simclock"
	"flashwear/internal/trace"
	"flashwear/internal/ufs"
	"flashwear/internal/workload"
)

// Simulated time.
type (
	// Clock is the discrete-event simulated clock every component shares.
	Clock = simclock.Clock
)

// NewClock returns a clock at simulated time zero.
func NewClock() *Clock { return simclock.New() }

// Devices.
type (
	// Device is a complete simulated storage device (NAND + FTL +
	// controller timing). It implements the block-device interface the
	// file systems mount on.
	Device = device.Device
	// Profile is a calibrated device description.
	Profile = device.Profile
	// PoolID selects a hybrid pool for wear queries.
	PoolID = ftl.PoolID
)

// The two hybrid pools (JEDEC life-time estimate registers A and B).
const (
	PoolA = ftl.PoolA
	PoolB = ftl.PoolB
)

// NewDevice builds a device from a profile on the given clock (nil for a
// fresh clock).
func NewDevice(p Profile, clock *Clock) (*Device, error) { return device.New(p, clock) }

// Calibrated profiles for the paper's seven evaluation devices (§4.1).
var (
	ProfileUSD16     = device.ProfileUSD16
	ProfileEMMC8     = device.ProfileEMMC8
	ProfileEMMC16    = device.ProfileEMMC16
	ProfileMotoE8    = device.ProfileMotoE8
	ProfileSamsungS6 = device.ProfileSamsungS6
	ProfileBLU512    = device.ProfileBLU512
	ProfileBLU4      = device.ProfileBLU4
	ProfileEMMC8TLC  = device.ProfileEMMC8TLC
	AllProfiles      = device.AllProfiles
	ProfileByName    = device.ProfileByName
)

// Phones and apps.
type (
	// Phone is a simulated handset: device, file system, app sandboxes,
	// and the OS monitors of §4.4.
	Phone = android.Phone
	// PhoneConfig assembles a phone.
	PhoneConfig = android.Config
	// App is an installed application confined to its private storage.
	App = android.App
	// FSKind selects ext4-like or F2FS-like storage.
	FSKind = android.FSKind
	// Schedule describes daily charging/screen periods.
	Schedule = android.Schedule
	// IOStats is the OS's per-app I/O accounting.
	IOStats = android.IOStats
)

// File-system kinds.
const (
	FSExt4 = android.FSExt4
	FSF2FS = android.FSF2FS
)

// NewPhone boots a phone.
func NewPhone(cfg PhoneConfig, clock *Clock) (*Phone, error) { return android.NewPhone(cfg, clock) }

// Schedules.
var (
	DefaultCharging = android.DefaultCharging
	DefaultScreen   = android.DefaultScreen
	AlwaysOn        = android.AlwaysOn
	Never           = android.Never
)

// The paper's contribution: estimates, wear experiments, the attack.
type (
	// Envelope is §2.3's back-of-the-envelope lifetime estimate.
	Envelope = core.Envelope
	// Runner measures I/O volume and time per wear-indicator increment.
	Runner = core.Runner
	// Increment is one indicator step (a Figure 2/4 or Table 1 row).
	Increment = core.Increment
	// RunReport summarises a wear run.
	RunReport = core.RunReport
	// Attack is the §4.4 unprivileged wear-out app.
	Attack = core.Attack
	// AttackMode selects continuous or stealth scheduling.
	AttackMode = core.AttackMode
	// AttackReport summarises an attack run.
	AttackReport = core.AttackReport
)

// Attack modes.
const (
	Continuous = core.Continuous
	Stealth    = core.Stealth
)

// NewEnvelope builds the consumer-expectation estimate for a capacity.
func NewEnvelope(capacityBytes int64) Envelope { return core.NewEnvelope(capacityBytes) }

// NewRunner builds a wear-measurement runner; scale is the profile's
// capacity divisor (results are reported at full scale).
func NewRunner(dev *Device, clock *Clock, scale int64) *Runner {
	return core.NewRunner(dev, clock, scale)
}

// NewAttack builds the paper's attack app for an installed App.
func NewAttack(app *App, mode AttackMode, scale int64) *Attack {
	return core.NewAttack(app, mode, scale)
}

// Workloads.
type (
	// DeviceWriter issues raw write patterns (Figure 1, Table 1 phases).
	DeviceWriter = workload.DeviceWriter
	// FileSet is the paper's 4 x 100 MB rewrite workload.
	FileSet = workload.FileSet
	// BenchResult is one bandwidth measurement.
	BenchResult = workload.BenchResult
)

var (
	// NewDeviceWriter builds a raw pattern writer.
	NewDeviceWriter = workload.NewDeviceWriter
	// Microbench measures synchronous write bandwidth (Figure 1).
	Microbench = workload.Microbench
	// Figure1Sizes returns Figure 1's request sizes.
	Figure1Sizes = workload.Figure1Sizes
)

// Mitigations (§4.5).
type (
	// LifespanBudget computes a sustainable write rate.
	LifespanBudget = mitigation.LifespanBudget
	// RateLimiter enforces a budget (global or per-app).
	RateLimiter = mitigation.RateLimiter
	// Classifier flags wear-attack write patterns.
	Classifier = mitigation.Classifier
	// SelectiveThrottler throttles only flagged apps.
	SelectiveThrottler = mitigation.SelectiveThrottler
	// WearWatch polls the health registers S.M.A.R.T.-style.
	WearWatch = mitigation.WearWatch
	// HealthSample is one WearWatch reading.
	HealthSample = mitigation.HealthSample
)

var (
	NewRateLimiter        = mitigation.NewRateLimiter
	NewClassifier         = mitigation.NewClassifier
	NewSelectiveThrottler = mitigation.NewSelectiveThrottler
	NewWearWatch          = mitigation.NewWearWatch
	// AttributeWear splits consumed device life across apps in proportion
	// to their written bytes — the per-app pinpointing §4.5 asks for.
	AttributeWear = mitigation.AttributeWear
)

// WearShare is one app's slice of the device's consumed life.
type WearShare = mitigation.WearShare

// Experiments: one function per table/figure of the paper (shared by the
// CLI tools and the benchmark harness).
type (
	// ExperimentConfig controls experiment scale and depth.
	ExperimentConfig = experiments.Config
	// WearRun labels a wear report.
	WearRun = experiments.WearRun
	// Figure1Point is one (device, size) bandwidth measurement.
	Figure1Point = experiments.Figure1Point
)

var (
	Figure1            = experiments.Figure1
	Figure2            = experiments.Figure2
	Figure3            = experiments.Figure3
	Figure4            = experiments.Figure4
	Table1             = experiments.Table1
	Detection          = experiments.Detection
	BudgetPhones       = experiments.BudgetPhones
	MitigationEval     = experiments.Mitigation
	ClassifierEval     = experiments.ClassifierEval
	EnvelopeComparison = experiments.EnvelopeComparison
)

// I/O tracing: record once, replay across devices.
type (
	// TraceRecorder wraps a device and captures its request stream.
	TraceRecorder = trace.Recorder
	// TraceEvent is one traced request.
	TraceEvent = trace.Event
	// ReplayOptions tune a trace replay.
	ReplayOptions = trace.ReplayOptions
)

var (
	NewTraceRecorder = trace.NewRecorder
	WriteTrace       = trace.Write
	ReadTrace        = trace.Read
	ReplayTrace      = trace.Replay
)

// Application behaviour models (§4.5's "model of expected mobile
// application I/O behavior").
type (
	// AppModel is a synthetic application whose storage behaviour unfolds
	// over simulated time.
	AppModel = appmodel.Model
)

// Wire-level transports, for tooling-style access to the health registers.
type (
	// EMMCController speaks the JEDEC eMMC 5.1 command set over a device.
	EMMCController = emmc.Controller
	// UFSLogicalUnit speaks SCSI-style UFS CDBs over a device.
	UFSLogicalUnit = ufs.LU
)

var (
	// NewEMMCController wraps a device as an eMMC card.
	NewEMMCController = emmc.New
	// NewUFSLogicalUnit wraps a device as a UFS logical unit.
	NewUFSLogicalUnit = ufs.New
)

var (
	NewCamera     = appmodel.NewCamera
	NewChat       = appmodel.NewChat
	NewUpdater    = appmodel.NewUpdater
	NewSpotifyBug = appmodel.NewSpotifyBug
)
