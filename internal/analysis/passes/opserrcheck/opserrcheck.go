// Package opserrcheck forbids discarding error returns from storage
// mutation operations.
//
// Invariant: zero acknowledged data loss (DESIGN.md §8). The NAND, FTL,
// device, and block-device layers report program/erase/write/recovery
// failures through error returns — a worn page refusing to program, an
// erase that must retire the block, a bricked device going read-only. A
// caller that drops one of those errors converts a detectable failure into
// silent corruption: exactly the acknowledged-data-loss bug class the
// fault-injection suites exist to catch, but found at vet time instead of
// after a six-seed crash run. Test files are exempt (fault windows
// legitimately fire-and-forget); non-test code that really means to drop
// an error must say why via //flashvet:ignore.
package opserrcheck

import (
	"go/ast"
	"go/types"
	"path"
	"regexp"
	"strings"

	"flashwear/internal/analysis"
)

// Packages scopes the check by the import-path base name of the package
// that DECLARES the method; call sites anywhere are checked. These are the
// layers whose errors encode storage-state transitions.
var Packages = "nand,ftl,device,blockdev,emmc,ufs"

// opName matches the mutation operations whose errors may not be lost.
var opName = regexp.MustCompile(`^(Program|Erase|Write|Recover)`)

var Analyzer = &analysis.Analyzer{
	Name: "opserrcheck",
	Doc: "forbid discarded errors from NAND/FTL/device mutation ops\n\n" +
		"Program/Erase/Write/Recover errors from the storage layers signal\n" +
		"failed or refused mutations; dropping one acknowledges data that\n" +
		"was never durably written.",
	Run: run,
}

func inScope(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || fn.Pkg() == nil || !opName.MatchString(fn.Name()) {
		return false
	}
	// The last result must be an error for there to be one to lose.
	res := sig.Results()
	if res.Len() == 0 || !isErrorType(res.At(res.Len()-1).Type()) {
		return false
	}
	base := path.Base(fn.Pkg().Path())
	for _, want := range strings.Split(Packages, ",") {
		if base == strings.TrimSpace(want) {
			return true
		}
	}
	return false
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

func run(pass *analysis.Pass) error {
	pass.Inspect(func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ExprStmt:
			report(pass, n.X, "discarded")
		case *ast.DeferStmt:
			report(pass, n.Call, "discarded by defer")
		case *ast.GoStmt:
			report(pass, n.Call, "discarded by go")
		case *ast.AssignStmt:
			checkBlank(pass, n)
		}
		return true
	})
	return nil
}

// report flags e if it is a call to an in-scope op used as a bare
// statement (so every result, the error included, is dropped).
func report(pass *analysis.Pass, e ast.Expr, how string) {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := pass.FuncOf(call)
	if fn == nil || !inScope(fn) || pass.IsTestFile(call.Pos()) {
		return
	}
	pass.Reportf(call.Pos(), "error from %s.%s %s: a failed storage mutation must be handled, or the loss acknowledged with //flashvet:ignore opserrcheck <why>",
		path.Base(fn.Pkg().Path()), fn.Name(), how)
}

// checkBlank flags `_`-assignments of the error result: res, _ := c.Program(...)
// and _ = dev.Write(...).
func checkBlank(pass *analysis.Pass, as *ast.AssignStmt) {
	if len(as.Rhs) != 1 {
		return
	}
	call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	fn := pass.FuncOf(call)
	if fn == nil || !inScope(fn) || pass.IsTestFile(call.Pos()) {
		return
	}
	// The error is the last result, so the last LHS receives it.
	last, ok := ast.Unparen(as.Lhs[len(as.Lhs)-1]).(*ast.Ident)
	if !ok || last.Name != "_" {
		return
	}
	pass.Reportf(call.Pos(), "error from %s.%s assigned to _: a failed storage mutation must be handled, or the loss acknowledged with //flashvet:ignore opserrcheck <why>",
		path.Base(fn.Pkg().Path()), fn.Name())
}
