package simclock

import (
	"testing"
	"time"
)

func TestZeroValueStartsAtZero(t *testing.T) {
	var c Clock
	if got := c.Now(); got != 0 {
		t.Fatalf("Now() = %v, want 0", got)
	}
}

func TestAdvanceMovesTime(t *testing.T) {
	c := New()
	c.Advance(90 * time.Minute)
	if got := c.Now(); got != 90*time.Minute {
		t.Fatalf("Now() = %v, want 90m", got)
	}
	c.Advance(30 * time.Minute)
	if got := c.Now(); got != 2*time.Hour {
		t.Fatalf("Now() = %v, want 2h", got)
	}
}

func TestAdvanceNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Advance(-1) did not panic")
		}
	}()
	New().Advance(-time.Second)
}

func TestAdvanceTo(t *testing.T) {
	c := New()
	c.AdvanceTo(time.Hour)
	if got := c.Now(); got != time.Hour {
		t.Fatalf("Now() = %v, want 1h", got)
	}
	c.AdvanceTo(30 * time.Minute) // in the past: no-op
	if got := c.Now(); got != time.Hour {
		t.Fatalf("Now() after past AdvanceTo = %v, want 1h", got)
	}
}

func TestAtFiresInOrder(t *testing.T) {
	c := New()
	var fired []int
	c.At(3*time.Second, func() { fired = append(fired, 3) })
	c.At(1*time.Second, func() { fired = append(fired, 1) })
	c.At(2*time.Second, func() { fired = append(fired, 2) })
	c.Advance(5 * time.Second)
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 2 || fired[2] != 3 {
		t.Fatalf("fired = %v, want [1 2 3]", fired)
	}
}

func TestSameInstantFiresInSchedulingOrder(t *testing.T) {
	c := New()
	var fired []int
	for i := 0; i < 5; i++ {
		i := i
		c.At(time.Second, func() { fired = append(fired, i) })
	}
	c.Advance(time.Second)
	for i, v := range fired {
		if v != i {
			t.Fatalf("fired = %v, want scheduling order", fired)
		}
	}
}

func TestEventSeesOwnTimestamp(t *testing.T) {
	c := New()
	var at time.Duration
	c.At(42*time.Second, func() { at = c.Now() })
	c.Advance(time.Minute)
	if at != 42*time.Second {
		t.Fatalf("event observed Now() = %v, want 42s", at)
	}
	if c.Now() != time.Minute {
		t.Fatalf("final Now() = %v, want 1m", c.Now())
	}
}

func TestEventsNotYetDueStayPending(t *testing.T) {
	c := New()
	ran := false
	c.At(time.Hour, func() { ran = true })
	c.Advance(time.Minute)
	if ran {
		t.Fatal("event fired an hour early")
	}
	if c.Pending() != 1 {
		t.Fatalf("Pending() = %d, want 1", c.Pending())
	}
	c.Advance(time.Hour)
	if !ran {
		t.Fatal("event never fired")
	}
}

func TestAfterIsRelative(t *testing.T) {
	c := New()
	c.Advance(10 * time.Second)
	var at time.Duration
	c.After(5*time.Second, func() { at = c.Now() })
	c.Advance(10 * time.Second)
	if at != 15*time.Second {
		t.Fatalf("After fired at %v, want 15s", at)
	}
}

func TestEventsCanScheduleEvents(t *testing.T) {
	c := New()
	var fired []time.Duration
	c.At(time.Second, func() {
		fired = append(fired, c.Now())
		c.After(time.Second, func() { fired = append(fired, c.Now()) })
	})
	c.Advance(5 * time.Second)
	if len(fired) != 2 || fired[0] != time.Second || fired[1] != 2*time.Second {
		t.Fatalf("fired = %v, want [1s 2s]", fired)
	}
}

func TestEvery(t *testing.T) {
	c := New()
	n := 0
	cancel := c.Every(time.Second, func() { n++ })
	c.Advance(4500 * time.Millisecond)
	if n != 4 {
		t.Fatalf("ticks = %d, want 4", n)
	}
	cancel()
	c.Advance(10 * time.Second)
	if n != 4 {
		t.Fatalf("ticks after cancel = %d, want 4", n)
	}
}

func TestEveryNonPositivePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Every(0) did not panic")
		}
	}()
	New().Every(0, func() {})
}

func TestAtNilFuncPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("At(nil) did not panic")
		}
	}()
	New().At(time.Second, nil)
}

func TestHours(t *testing.T) {
	if got := Hours(90 * time.Minute); got != 1.5 {
		t.Fatalf("Hours(90m) = %v, want 1.5", got)
	}
}

func TestCancelDuringTickStopsFutureTicks(t *testing.T) {
	c := New()
	n := 0
	var cancel func()
	cancel = c.Every(time.Second, func() {
		n++
		if n == 2 {
			cancel()
		}
	})
	c.Advance(10 * time.Second)
	if n != 2 {
		t.Fatalf("ticks = %d, want 2 (self-cancel)", n)
	}
}
