package nand

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"time"
)

// Operation errors returned by Chip. A failed program or erase leaves the
// block in a state the caller (normally the FTL) must handle by marking the
// block bad and relocating data — exactly what device firmware does.
var (
	ErrBadBlock      = errors.New("nand: block is marked bad")
	ErrNotErased     = errors.New("nand: page already programmed since last erase")
	ErrOutOfOrder    = errors.New("nand: pages must be programmed sequentially within a block")
	ErrProgramFail   = errors.New("nand: program operation failed")
	ErrEraseFail     = errors.New("nand: erase operation failed")
	ErrUncorrectable = errors.New("nand: raw bit errors exceed ECC capability")
	ErrNotProgrammed = errors.New("nand: reading an unprogrammed page")
	ErrAddr          = errors.New("nand: address out of range")
)

// Config assembles everything needed to instantiate a chip. Zero-valued
// fields fall back to sensible defaults in New.
type Config struct {
	Geometry Geometry
	Cell     CellType
	// RatedPE overrides the cell type's default rated endurance when > 0.
	RatedPE int
	// Errors overrides DefaultErrorModel when non-zero.
	Errors *ErrorModel
	// Timing overrides DefaultTiming(Cell) when non-zero.
	Timing *Timing
	// Seed makes the chip's stochastic behaviour (block-to-block endurance
	// variation, program failures, sampled bit errors) reproducible.
	Seed int64
	// Now supplies simulated time for retention and healing effects.
	// A nil Now disables time-dependent effects.
	Now func() time.Duration
	// StressSpread is the half-width of the uniform per-block endurance
	// variation: each block's wear accrues stress in [1-s, 1+s].
	// Defaults to 0.08 (±8%), per observed die-to-die variation.
	StressSpread float64
	// CorrectableBits is the ECC capability (max correctable bit errors
	// per 1 KiB codeword) the chip's reads are judged against. It lives
	// here rather than in the FTL so ReadPage can report uncorrectable
	// reads directly. Defaults to 8, eMMC-class BCH.
	CorrectableBits int
	// Inject, when non-nil, is consulted before every operation and may
	// force transient read errors, program/erase failures, or a power
	// cut. Nil (the default) costs one pointer comparison per op.
	Inject FaultInjector
}

const (
	defaultStressSpread    = 0.08
	defaultCorrectableBits = 8
	codewordBytes          = 1024
)

// Chip simulates a single NAND package. It is not safe for concurrent use;
// the device layer serialises access like a real single-queue eMMC part.
type Chip struct {
	geo     Geometry
	cell    CellType
	ratedPE int
	emodel  ErrorModel
	timing  Timing
	now     func() time.Duration
	rng     *rand.Rand
	tcorr   int
	inject  FaultInjector
	blocks  []block
	stats   Stats
}

// OOB is the spare-area metadata firmware stores alongside each page: the
// logical page the payload belongs to and a device-global monotonic program
// sequence number. Power-loss recovery rebuilds the whole logical-physical
// map from nothing but these two fields (the highest sequence wins).
type OOB struct {
	LP  int32  // logical page, -1 for pages written without a mapping
	Seq int64  // global program sequence; 0 means "no metadata"
	Org uint16 // wear-attribution origin tag (internal/wtrace); 0 = untagged
}

type block struct {
	eraseCount int
	healed     float64 // effective cycles recovered by detrapping
	stress     float64 // per-block endurance variation multiplier
	bad        bool
	nextPage   int           // next programmable page (in-order constraint)
	firstProg  time.Duration // time the oldest live page was programmed
	lastErase  time.Duration
	reads      int64          // reads since last erase (read disturb)
	data       map[int][]byte // page payloads, present only for data-bearing writes
	meta       []OOB          // per-page spare-area metadata, lazily allocated
}

// Stats counts raw chip activity since creation.
type Stats struct {
	Programs           int64
	Reads              int64
	Erases             int64
	ProgramFails       int64
	EraseFails         int64
	UncorrectableReads int64
	BytesProgrammed    int64
	BadBlocks          int
}

// New builds a chip from cfg. It returns an error if the geometry, error
// model, or timing are invalid.
func New(cfg Config) (*Chip, error) {
	if err := cfg.Geometry.Validate(); err != nil {
		return nil, err
	}
	if !cfg.Cell.Valid() {
		return nil, fmt.Errorf("nand: invalid cell type %v", cfg.Cell)
	}
	rated := cfg.RatedPE
	if rated == 0 {
		rated = cfg.Cell.DefaultRatedPE()
	}
	if rated <= 0 {
		return nil, fmt.Errorf("nand: RatedPE = %d, want > 0", rated)
	}
	em := DefaultErrorModel()
	if cfg.Errors != nil {
		em = *cfg.Errors
	}
	if err := em.Validate(); err != nil {
		return nil, err
	}
	tm := DefaultTiming(cfg.Cell)
	if cfg.Timing != nil {
		tm = *cfg.Timing
	}
	if err := tm.Validate(); err != nil {
		return nil, err
	}
	spread := cfg.StressSpread
	if spread == 0 {
		spread = defaultStressSpread
	}
	if spread < 0 || spread >= 1 {
		return nil, fmt.Errorf("nand: StressSpread = %g, want [0,1)", spread)
	}
	tcorr := cfg.CorrectableBits
	if tcorr == 0 {
		tcorr = defaultCorrectableBits
	}
	if tcorr < 1 {
		return nil, fmt.Errorf("nand: CorrectableBits = %d, want >= 1", tcorr)
	}
	c := &Chip{
		geo:     cfg.Geometry,
		cell:    cfg.Cell,
		ratedPE: rated,
		emodel:  em,
		timing:  tm,
		now:     cfg.Now,
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		tcorr:   tcorr,
		inject:  cfg.Inject,
		blocks:  make([]block, cfg.Geometry.Blocks()),
	}
	for i := range c.blocks {
		c.blocks[i].stress = 1 - spread + 2*spread*c.rng.Float64()
	}
	return c, nil
}

// Geometry returns the chip's layout.
func (c *Chip) Geometry() Geometry { return c.geo }

// Cell returns the chip's cell type.
func (c *Chip) Cell() CellType { return c.cell }

// RatedPE returns the vendor-rated endurance in P/E cycles.
func (c *Chip) RatedPE() int { return c.ratedPE }

// Timing returns the chip's operation latencies.
func (c *Chip) Timing() Timing { return c.timing }

// Stats returns a snapshot of activity counters.
func (c *Chip) Stats() Stats { return c.stats }

// CorrectableBits returns the ECC capability reads are judged against.
func (c *Chip) CorrectableBits() int { return c.tcorr }

func (c *Chip) simNow() time.Duration {
	if c.now == nil {
		return 0
	}
	return c.now()
}

func (c *Chip) checkAddr(a PageAddr) error {
	if a.Block < 0 || a.Block >= len(c.blocks) || a.Page < 0 || a.Page >= c.geo.PagesPerBlock {
		return fmt.Errorf("%w: %v", ErrAddr, a)
	}
	return nil
}

// Wear returns a block's effective relative wear: stress-adjusted erase
// cycles net of healing, divided by rated endurance. 1.0 means the block has
// consumed its rated life.
func (c *Chip) Wear(blockIdx int) float64 {
	b := &c.blocks[blockIdx]
	eff := (float64(b.eraseCount) - b.healed) * b.stress
	if eff < 0 {
		eff = 0
	}
	return eff / float64(c.ratedPE)
}

// EraseCount returns a block's raw erase count.
func (c *Chip) EraseCount(blockIdx int) int { return c.blocks[blockIdx].eraseCount }

// ReadsSinceErase returns a block's accumulated read-disturb exposure.
func (c *Chip) ReadsSinceErase(blockIdx int) int64 { return c.blocks[blockIdx].reads }

// Bad reports whether a block has been marked bad.
func (c *Chip) Bad(blockIdx int) bool { return c.blocks[blockIdx].bad }

// MarkBad retires a block. Firmware calls this after a program/erase failure
// or an uncorrectable read. While power is cut nothing can be persisted, so
// the request is ignored.
func (c *Chip) MarkBad(blockIdx int) {
	if c.inject != nil && c.inject.Down() {
		return
	}
	if !c.blocks[blockIdx].bad {
		c.blocks[blockIdx].bad = true
		c.stats.BadBlocks++
	}
}

// AvgWear returns mean relative wear across non-bad blocks — the quantity
// eMMC firmware summarises into the 11-level life-time estimate.
func (c *Chip) AvgWear() float64 {
	var sum float64
	n := 0
	for i := range c.blocks {
		if c.blocks[i].bad {
			continue
		}
		sum += c.Wear(i)
		n++
	}
	if n == 0 {
		return math.Inf(1)
	}
	return sum / float64(n)
}

// MaxWear returns the maximum relative wear across non-bad blocks.
func (c *Chip) MaxWear() float64 {
	var max float64
	for i := range c.blocks {
		if c.blocks[i].bad {
			continue
		}
		if w := c.Wear(i); w > max {
			max = w
		}
	}
	return max
}

// MinWear returns the minimum relative wear across non-bad blocks, or 0 if
// none remain. MaxWear-MinWear is the spread wear-leveling tries to bound.
func (c *Chip) MinWear() float64 {
	min := math.Inf(1)
	for i := range c.blocks {
		if c.blocks[i].bad {
			continue
		}
		if w := c.Wear(i); w < min {
			min = w
		}
	}
	if math.IsInf(min, 1) {
		return 0
	}
	return min
}

// ExpectedRBER returns the expected raw bit error rate for freshly written
// data at the chip's current average wear — the population-level error
// trajectory telemetry samples over a device's life.
func (c *Chip) ExpectedRBER() float64 { return c.emodel.RBER(c.AvgWear()) }

// ExpectedCodewordErrors returns the expected raw bit errors per ECC
// codeword for freshly written data in a block at its current wear.
func (c *Chip) ExpectedCodewordErrors(blockIdx int) float64 {
	return c.emodel.RBER(c.Wear(blockIdx)) * float64(codewordBytes*8)
}

// ShouldRetire reports whether firmware read-scrub policy would retire the
// block: its expected error count has consumed 75% of the ECC correction
// capability, so further use risks uncorrectable data. Stronger ECC defers
// retirement — the mechanism behind the ECC-strength ablation.
func (c *Chip) ShouldRetire(blockIdx int) bool {
	return c.ExpectedCodewordErrors(blockIdx) > 0.75*float64(c.tcorr)
}

// OpResult describes a completed chip operation.
type OpResult struct {
	Latency   time.Duration
	BitErrors int // worst-codeword raw bit errors observed (reads only)
}

// ProgramPage writes one page. data may be nil for accounting-only writes
// (wear experiments at device scale); when non-nil it must be exactly
// PageSize bytes and is retained for later reads.
//
// NAND constraints are enforced: the block must not be bad, and pages within
// a block must be programmed in order, each exactly once per erase cycle.
func (c *Chip) ProgramPage(a PageAddr, data []byte) (OpResult, error) {
	return c.ProgramPageOOB(a, data, OOB{LP: -1})
}

// ProgramPageOOB is ProgramPage with spare-area metadata: oob is stored
// with the page on success and is readable back via ReadOOB without any
// error sampling — it is what power-loss recovery scans.
func (c *Chip) ProgramPageOOB(a PageAddr, data []byte, oob OOB) (OpResult, error) {
	if err := c.checkAddr(a); err != nil {
		return OpResult{}, err
	}
	b := &c.blocks[a.Block]
	res := OpResult{Latency: c.timing.ProgramPage}
	if b.bad {
		return res, fmt.Errorf("%w: %v", ErrBadBlock, a)
	}
	if a.Page < b.nextPage {
		return res, fmt.Errorf("%w: %v", ErrNotErased, a)
	}
	if a.Page > b.nextPage {
		return res, fmt.Errorf("%w: %v (next programmable page %d)", ErrOutOfOrder, a, b.nextPage)
	}
	if data != nil && len(data) != c.geo.PageSize {
		return res, fmt.Errorf("nand: program %v: data length %d != page size %d", a, len(data), c.geo.PageSize)
	}
	injected := FaultNone
	if c.inject != nil {
		injected = c.inject.Inject(OpProgram)
		if injected == FaultPowerCut {
			return res, fmt.Errorf("%w: program %v", ErrPowerLoss, a)
		}
	}
	c.stats.Programs++
	c.stats.BytesProgrammed += int64(c.geo.PageSize)
	if b.nextPage == 0 {
		b.firstProg = c.simNow()
	}
	b.nextPage++
	if injected == FaultProgram || c.rng.Float64() < c.emodel.FailProb(c.Wear(a.Block)) {
		c.stats.ProgramFails++
		return res, fmt.Errorf("%w: %v", ErrProgramFail, a)
	}
	if data != nil {
		if b.data == nil {
			b.data = make(map[int][]byte)
		}
		cp := make([]byte, len(data))
		copy(cp, data)
		b.data[a.Page] = cp
	}
	if b.meta == nil {
		b.meta = make([]OOB, c.geo.PagesPerBlock)
		for i := range b.meta {
			b.meta[i].LP = -1
		}
	}
	b.meta[a.Page] = oob
	return res, nil
}

// ReadOOB returns the spare-area metadata of a page and whether any was
// stored (pages of failed programs and pre-OOB writes report false). It is
// a recovery-scan primitive: no error sampling, no read-disturb, no stats —
// the FTL accounts the scan's flash work itself.
func (c *Chip) ReadOOB(a PageAddr) (OOB, bool) {
	if c.checkAddr(a) != nil {
		return OOB{LP: -1}, false
	}
	b := &c.blocks[a.Block]
	if a.Page >= b.nextPage || b.meta == nil {
		return OOB{LP: -1}, false
	}
	m := b.meta[a.Page]
	return m, m.Seq != 0
}

// ProgrammedPages returns how many pages of a block have been programmed
// (including failed programs) since its last erase — the high-water mark a
// recovery scan walks.
func (c *Chip) ProgrammedPages(blockIdx int) int {
	return c.blocks[blockIdx].nextPage
}

// ReadPage reads one page, sampling raw bit errors from the block's current
// error rate. If the worst codeword's error count exceeds the ECC
// capability, it returns ErrUncorrectable. Data is returned only if the page
// was programmed with a payload.
func (c *Chip) ReadPage(a PageAddr) ([]byte, OpResult, error) {
	if err := c.checkAddr(a); err != nil {
		return nil, OpResult{}, err
	}
	b := &c.blocks[a.Block]
	res := OpResult{Latency: c.timing.ReadPage}
	if b.bad {
		return nil, res, fmt.Errorf("%w: %v", ErrBadBlock, a)
	}
	if a.Page >= b.nextPage {
		return nil, res, fmt.Errorf("%w: %v", ErrNotProgrammed, a)
	}
	if c.inject != nil {
		switch c.inject.Inject(OpRead) {
		case FaultPowerCut:
			return nil, res, fmt.Errorf("%w: read %v", ErrPowerLoss, a)
		case FaultRead:
			c.stats.Reads++
			b.reads++
			c.stats.UncorrectableReads++
			res.BitErrors = c.tcorr + 1
			return nil, res, fmt.Errorf("%w: %v (injected transient)", ErrUncorrectable, a)
		}
	}
	c.stats.Reads++
	b.reads++
	storedHours := (c.simNow() - b.firstProg).Hours()
	if storedHours < 0 {
		storedHours = 0
	}
	rber := c.emodel.RBERWithRetention(c.Wear(a.Block), storedHours)
	rber += c.emodel.ReadDisturbRBER * float64(b.reads)
	res.BitErrors = c.worstCodewordErrors(rber)
	if res.BitErrors > c.tcorr {
		c.stats.UncorrectableReads++
		return nil, res, fmt.Errorf("%w: %v (%d bit errors > t=%d)", ErrUncorrectable, a, res.BitErrors, c.tcorr)
	}
	var data []byte
	if p, ok := b.data[a.Page]; ok {
		data = make([]byte, len(p))
		copy(data, p)
	}
	return data, res, nil
}

// EraseBlock erases a block, consuming one P/E cycle. On failure the block
// should be marked bad by the caller.
func (c *Chip) EraseBlock(blockIdx int) (OpResult, error) {
	if blockIdx < 0 || blockIdx >= len(c.blocks) {
		return OpResult{}, fmt.Errorf("%w: block %d", ErrAddr, blockIdx)
	}
	b := &c.blocks[blockIdx]
	res := OpResult{Latency: c.timing.EraseBlock}
	if b.bad {
		return res, fmt.Errorf("%w: block %d", ErrBadBlock, blockIdx)
	}
	injected := FaultNone
	if c.inject != nil {
		injected = c.inject.Inject(OpErase)
		if injected == FaultPowerCut {
			return res, fmt.Errorf("%w: erase block %d", ErrPowerLoss, blockIdx)
		}
	}
	c.stats.Erases++
	now := c.simNow()
	if c.emodel.HealPerIdleHour > 0 && b.eraseCount > 0 {
		idle := (now - b.lastErase).Hours()
		if idle > 0 {
			b.healed += c.emodel.HealPerIdleHour * idle
			// Detrapping cannot recover more than half the accumulated damage.
			if limit := float64(b.eraseCount) * 0.5; b.healed > limit {
				b.healed = limit
			}
		}
	}
	b.eraseCount++
	b.lastErase = now
	b.nextPage = 0
	b.reads = 0
	b.data = nil
	b.meta = nil
	if injected == FaultErase || c.rng.Float64() < c.emodel.FailProb(c.Wear(blockIdx)) {
		c.stats.EraseFails++
		return res, fmt.Errorf("%w: block %d", ErrEraseFail, blockIdx)
	}
	return res, nil
}

// worstCodewordErrors samples per-codeword raw bit error counts at rate rber
// and returns the maximum — the codeword that decides correctability.
func (c *Chip) worstCodewordErrors(rber float64) int {
	ncw := c.geo.PageSize / codewordBytes
	if ncw < 1 {
		ncw = 1
	}
	mean := rber * float64(codewordBytes*8)
	worst := 0
	for i := 0; i < ncw; i++ {
		if k := c.poisson(mean); k > worst {
			worst = k
		}
	}
	return worst
}

// poisson samples a Poisson-distributed count with the given mean. For the
// small means typical of healthy blocks it uses Knuth's method; for large
// means (dying blocks) it falls back to a normal approximation.
func (c *Chip) poisson(mean float64) int {
	if mean <= 0 {
		return 0
	}
	if mean > 30 {
		k := int(mean + math.Sqrt(mean)*c.rng.NormFloat64() + 0.5)
		if k < 0 {
			k = 0
		}
		return k
	}
	l := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		p *= c.rng.Float64()
		if p <= l {
			return k
		}
		k++
	}
}
