package android

import (
	"testing"
	"testing/quick"
	"time"

	"flashwear/internal/device"
	"flashwear/internal/simclock"
)

func testPhone(t *testing.T, fsKind FSKind) *Phone {
	t.Helper()
	p, err := NewPhone(Config{
		Profile: device.ProfileMotoE8().Scaled(512),
		FS:      fsKind,
	}, simclock.New())
	if err != nil {
		t.Fatalf("NewPhone: %v", err)
	}
	return p
}

func TestScheduleContains(t *testing.T) {
	night := Period{From: 22 * time.Hour, To: 7 * time.Hour}
	if !night.Contains(23 * time.Hour) {
		t.Error("23:00 should be in 22:00-07:00")
	}
	if !night.Contains(30 * time.Hour) { // 06:00 next day
		t.Error("06:00 should be in 22:00-07:00")
	}
	if night.Contains(12 * time.Hour) {
		t.Error("12:00 should not be in 22:00-07:00")
	}
	day := Period{From: 8 * time.Hour, To: 22 * time.Hour}
	if !day.Contains(12*time.Hour) || day.Contains(23*time.Hour) {
		t.Error("day period wrong")
	}
	if Never().Active(0) {
		t.Error("Never is active")
	}
	if !AlwaysOn().Active(13 * time.Hour) {
		t.Error("AlwaysOn inactive")
	}
}

func TestPhoneBootsBothFilesystems(t *testing.T) {
	for _, kind := range []FSKind{FSExt4, FSF2FS} {
		p := testPhone(t, kind)
		if p.FS().Name() == "" {
			t.Errorf("%s: empty FS name", kind)
		}
		if err := p.Shutdown(); err != nil {
			t.Errorf("%s: shutdown: %v", kind, err)
		}
	}
	if _, err := NewPhone(Config{Profile: device.ProfileMotoE8().Scaled(512), FS: "vfat"}, nil); err == nil {
		t.Error("unknown FS accepted")
	}
}

func TestAppSandboxIsolation(t *testing.T) {
	p := testPhone(t, FSExt4)
	a, err := p.InstallApp("com.example.a")
	if err != nil {
		t.Fatal(err)
	}
	b, err := p.InstallApp("com.example.b")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.InstallApp("com.example.a"); err == nil {
		t.Fatal("duplicate install accepted")
	}
	f, err := a.Storage().Create("/secret.txt")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("mine"), 0); err != nil {
		t.Fatal(err)
	}
	// App B sees only its own empty sandbox.
	ents, err := b.Storage().ReadDir("/")
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("app B sees %v", ents)
	}
	// The real file lives under A's private dir.
	if _, err := p.FS().Stat("/data/com.example.a/secret.txt"); err != nil {
		t.Fatalf("file not under private dir: %v", err)
	}
	// Sandboxes cannot unmount the volume.
	if err := a.Storage().Unmount(); err == nil {
		t.Fatal("sandbox unmount succeeded")
	}
}

func TestPerAppIOAccounting(t *testing.T) {
	p := testPhone(t, FSExt4)
	a, _ := p.InstallApp("com.example.w")
	f, _ := a.Storage().Create("/f")
	payload := make([]byte, 8192)
	if _, err := f.WriteAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.ReadAt(payload, 0); err != nil {
		t.Fatal(err)
	}
	s := p.AppIOStats("com.example.w")
	if s.BytesWritten != 8192 || s.WriteOps != 1 {
		t.Fatalf("write stats = %+v", s)
	}
	if s.BytesRead != 8192 || s.ReadOps != 1 {
		t.Fatalf("read stats = %+v", s)
	}
	if s.SyncOps != 1 {
		t.Fatalf("sync stats = %+v", s)
	}
	if got := p.AppIOStats("unknown"); got != (IOStats{}) {
		t.Fatal("unknown app has stats")
	}
}

func TestPowerMonitorOnlyOnBattery(t *testing.T) {
	clock := simclock.New()
	p, err := NewPhone(Config{Profile: device.ProfileMotoE8().Scaled(512), FS: FSExt4}, clock)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.InstallApp("com.example.w")
	f, _ := a.Storage().Create("/f")

	// Midnight: charging (22:00-07:00) -> invisible to the power monitor.
	if !p.Charging() {
		t.Fatal("expected charging at 00:00")
	}
	if _, err := f.WriteAt(make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	if j := p.PowerMonitor().AttributedJoules("com.example.w"); j != 0 {
		t.Fatalf("charging I/O attributed %v J", j)
	}
	// Midday: on battery -> attributed.
	clock.AdvanceTo(12 * time.Hour)
	if p.Charging() {
		t.Fatal("expected on-battery at 12:00")
	}
	if _, err := f.WriteAt(make([]byte, 1<<20), 0); err != nil {
		t.Fatal(err)
	}
	if j := p.PowerMonitor().AttributedJoules("com.example.w"); j <= 0 {
		t.Fatal("on-battery I/O not attributed")
	}
	if tops := p.PowerMonitor().TopConsumers(0.000001); len(tops) != 1 || tops[0] != "com.example.w" {
		t.Fatalf("TopConsumers = %v", tops)
	}
}

func TestProcessMonitorSeesScreenOnIO(t *testing.T) {
	clock := simclock.New()
	p, err := NewPhone(Config{Profile: device.ProfileMotoE8().Scaled(512), FS: FSExt4}, clock)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.InstallApp("com.example.loud")
	f, _ := a.Storage().Create("/f")
	clock.AdvanceTo(12 * time.Hour) // screen on
	if !p.ScreenOn() {
		t.Fatal("screen should be on at noon")
	}
	// I/O spread over several seconds of screen-on time.
	for i := 0; i < 20; i++ {
		if _, err := f.WriteAt(make([]byte, 256<<10), 0); err != nil {
			t.Fatal(err)
		}
		clock.Advance(500 * time.Millisecond)
	}
	if p.ProcessMonitor().ObservedCount("com.example.loud") == 0 {
		t.Fatal("process monitor missed screen-on I/O")
	}
}

func TestProcessMonitorEvadedByScreenOffIO(t *testing.T) {
	clock := simclock.New()
	p, err := NewPhone(Config{Profile: device.ProfileMotoE8().Scaled(512), FS: FSExt4}, clock)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.InstallApp("com.example.stealth")
	f, _ := a.Storage().Create("/f")
	// 02:00: screen off. Do I/O, then idle into screen-on hours without
	// further I/O.
	clock.AdvanceTo(2 * time.Hour)
	for i := 0; i < 20; i++ {
		if _, err := f.WriteAt(make([]byte, 256<<10), 0); err != nil {
			t.Fatal(err)
		}
		clock.Advance(500 * time.Millisecond)
	}
	clock.AdvanceTo(12 * time.Hour) // screen-on samples happen now
	if n := p.ProcessMonitor().ObservedCount("com.example.stealth"); n != 0 {
		t.Fatalf("stealth app observed %d times", n)
	}
	if p.ProcessMonitor().Samples() == 0 {
		t.Fatal("monitor never sampled")
	}
}

func TestThrottleHookDelaysWrites(t *testing.T) {
	clock := simclock.New()
	var throttled int64
	p, err := NewPhone(Config{
		Profile: device.ProfileMotoE8().Scaled(512),
		FS:      FSExt4,
		Throttle: func(app string, bytes int64, now time.Duration) time.Duration {
			throttled += bytes
			return time.Millisecond
		},
	}, clock)
	if err != nil {
		t.Fatal(err)
	}
	a, _ := p.InstallApp("com.example.w")
	f, _ := a.Storage().Create("/f")
	before := clock.Now()
	if _, err := f.WriteAt(make([]byte, 4096), 0); err != nil {
		t.Fatal(err)
	}
	if throttled != 4096 {
		t.Fatalf("throttle saw %d bytes", throttled)
	}
	if clock.Now()-before < time.Millisecond {
		t.Fatal("throttle delay not applied")
	}
}

func TestInstallAppValidatesName(t *testing.T) {
	p := testPhone(t, FSExt4)
	if _, err := p.InstallApp("bad/name"); err == nil {
		t.Fatal("bad app name accepted")
	}
}

func TestQuickScheduleComplement(t *testing.T) {
	// Property: for the default schedules, at any instant the phone is in
	// a well-defined state, and charging/screen-off (the stealth window)
	// is exactly 22:00-07:00.
	charging := DefaultCharging()
	screen := DefaultScreen()
	f := func(minute uint16) bool {
		tod := time.Duration(minute%1440) * time.Minute
		c := charging.Active(tod)
		s := screen.Active(tod)
		stealth := c && !s
		inWindow := tod >= 22*time.Hour || tod < 7*time.Hour
		return stealth == inWindow
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestScheduleValidate(t *testing.T) {
	bad := Schedule{Periods: []Period{{From: -time.Hour, To: time.Hour}}}
	if bad.Validate() == nil {
		t.Fatal("negative period accepted")
	}
	bad2 := Schedule{Periods: []Period{{From: time.Hour, To: 25 * time.Hour}}}
	if bad2.Validate() == nil {
		t.Fatal("period past 24h accepted")
	}
	if DefaultCharging().Validate() != nil || DefaultScreen().Validate() != nil {
		t.Fatal("defaults invalid")
	}
}

func TestSandboxRenameConfined(t *testing.T) {
	p := testPhone(t, FSExt4)
	a, _ := p.InstallApp("com.example.r")
	f, _ := a.Storage().Create("/cfg.tmp")
	if _, err := f.WriteAt([]byte("x"), 0); err != nil {
		t.Fatal(err)
	}
	_ = f.Sync()
	if err := a.Storage().Rename("/cfg.tmp", "/cfg"); err != nil {
		t.Fatal(err)
	}
	// The rename happened inside the private dir.
	if _, err := p.FS().Stat("/data/com.example.r/cfg"); err != nil {
		t.Fatalf("renamed file not in sandbox: %v", err)
	}
	if _, err := p.FS().Stat("/cfg"); err == nil {
		t.Fatal("rename escaped the sandbox")
	}
}
