// Package checktest is an analysistest-style harness for the flashvet
// suite: it loads a fixture package from testdata, runs analyzers over it,
// and compares findings against `// want` expectations in the fixture
// source.
//
// An expectation is a trailing comment of the form
//
//	x := time.Now() // want `wall-clock time\.Now`
//
// holding one or more regexes (backquoted or double-quoted, taken
// verbatim) that must each match a distinct finding on that line; findings
// on lines with no matching expectation fail the test, as do expectations
// nothing matched. Framework findings about the //flashvet:ignore
// directives themselves participate like any other finding.
package checktest

import (
	"fmt"
	"regexp"
	"strings"
	"testing"

	"flashwear/internal/analysis"
)

var wantRE = regexp.MustCompile("// want (.*)$")
var argRE = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run loads the package(s) matching pattern (relative to the test's
// working directory) and checks the analyzers' findings against the
// fixture's want comments.
func Run(t *testing.T, pattern string, analyzers ...*analysis.Analyzer) {
	t.Helper()
	pkgs, fset, err := analysis.Load(".", pattern)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("checktest: no packages match %q", pattern)
	}
	findings, err := analysis.Run(fset, pkgs, analyzers, true)
	if err != nil {
		t.Fatal(err)
	}

	type key struct {
		file string
		line int
	}
	type expectation struct {
		re      *regexp.Regexp
		matched bool
	}
	expects := make(map[key][]*expectation)
	for _, pkg := range pkgs {
		for file, src := range pkg.Sources {
			for i, line := range strings.Split(string(src), "\n") {
				m := wantRE.FindStringSubmatch(line)
				if m == nil {
					continue
				}
				k := key{file, i + 1}
				args := argRE.FindAllStringSubmatch(m[1], -1)
				if len(args) == 0 {
					t.Fatalf("%s:%d: want comment holds no quoted regex", file, i+1)
				}
				for _, arg := range args {
					pat := arg[1]
					if pat == "" {
						pat = arg[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regex %q: %v", file, i+1, pat, err)
					}
					expects[k] = append(expects[k], &expectation{re: re})
				}
			}
		}
	}

	for _, f := range findings {
		k := key{f.Pos.Filename, f.Pos.Line}
		msg := fmt.Sprintf("%s: %s", f.Analyzer, f.Message)
		matched := false
		for _, e := range expects[k] {
			if !e.matched && e.re.MatchString(msg) {
				e.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected finding: %s", f.Pos, msg)
		}
	}
	for k, es := range expects {
		for _, e := range es {
			if !e.matched {
				t.Errorf("%s:%d: no finding matched %q", k.file, k.line, e.re)
			}
		}
	}
}
