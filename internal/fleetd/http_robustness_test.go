package fleetd

import (
	"bytes"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"flashwear/internal/obs"
)

// These tests pin the HTTP plane's failure behavior: idempotent retries
// on the server, retry/timeout policy in the client, and SSE streams
// releasing on graceful shutdown.

func newTestServer(t *testing.T) (*Manager, *Server, *httptest.Server) {
	t.Helper()
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatalf("NewManager: %v", err)
	}
	h := NewServer(m)
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)
	return m, h, srv
}

// fastClient retries immediately and times out quickly, so failure-path
// tests stay fast.
func fastClient(url string, attempts int) *Client {
	return &Client{
		BaseURL: url,
		Timeout: 2 * time.Second,
		Retry:   obs.Backoff{Attempts: attempts, Sleep: noPause},
	}
}

// postSubmit issues a raw submit with an explicit Idempotency-Key.
func postSubmit(t *testing.T, url, key string, spec CampaignSpec) Status {
	t.Helper()
	raw, err := json.Marshal(spec)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/campaigns", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	if key != "" {
		req.Header.Set("Idempotency-Key", key)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST /v1/campaigns: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("submit status = %d", resp.StatusCode)
	}
	var st Status
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decoding status: %v", err)
	}
	return st
}

// TestIdempotentSubmitDedupes pins the core retry-safety property: the
// same Idempotency-Key replayed against POST /v1/campaigns yields the
// same campaign, not a duplicate.
func TestIdempotentSubmitDedupes(t *testing.T) {
	m, _, srv := newTestServer(t)
	st1 := postSubmit(t, srv.URL, "retry-123", tinySpec())
	st2 := postSubmit(t, srv.URL, "retry-123", tinySpec())
	if st1.ID != st2.ID {
		t.Errorf("retried submit created a second campaign: %s then %s", st1.ID, st2.ID)
	}
	if n := len(m.List()); n != 1 {
		t.Errorf("campaigns registered = %d, want 1", n)
	}
	// A different key is a different request.
	st3 := postSubmit(t, srv.URL, "other-456", tinySpec())
	if st3.ID == st1.ID {
		t.Error("distinct key replayed the first campaign")
	}
	if n := len(m.List()); n != 2 {
		t.Errorf("campaigns registered = %d, want 2", n)
	}
}

// TestIdempotentKeyScopedToRoute pins the key namespace: the same key on
// different endpoints must not collide.
func TestIdempotentKeyScopedToRoute(t *testing.T) {
	m, _, srv := newTestServer(t)
	st := postSubmit(t, srv.URL, "shared-key", tortureSpec())
	c, _ := m.Get(st.ID)
	c.Wait()

	req, err := http.NewRequest(http.MethodPost, srv.URL+"/v1/campaigns/"+st.ID+"/pause", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Idempotency-Key", "shared-key")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var got Status
	if err := json.NewDecoder(resp.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	// If the namespace collided, the pause would replay the submit's
	// recorded body (a paused initial status) rather than execute.
	if got.State != StateDone {
		t.Errorf("pause under shared key returned state %s, want done (fresh execution)", got.State)
	}
}

// TestIdempotentFailureNotReplayed pins the not-recorded branch: a 4xx
// outcome is not cached, so a corrected retry under the same key
// executes.
func TestIdempotentFailureNotReplayed(t *testing.T) {
	_, _, srv := newTestServer(t)
	bad := tinySpec()
	bad.Days = -1
	raw, _ := json.Marshal(bad)
	req, _ := http.NewRequest(http.MethodPost, srv.URL+"/v1/campaigns", bytes.NewReader(raw))
	req.Header.Set("Idempotency-Key", "fix-me")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode/100 == 2 {
		t.Fatalf("invalid spec accepted: %d", resp.StatusCode)
	}
	st := postSubmit(t, srv.URL, "fix-me", tinySpec())
	if st.ID == "" {
		t.Error("corrected retry under the same key did not execute")
	}
}

// TestIdempotentConcurrentDuplicates pins the in-flight dedup: N racing
// submits under one key produce exactly one campaign and N identical
// responses.
func TestIdempotentConcurrentDuplicates(t *testing.T) {
	m, _, srv := newTestServer(t)
	const racers = 8
	ids := make([]string, racers)
	var wg sync.WaitGroup
	for i := 0; i < racers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ids[i] = postSubmit(t, srv.URL, "race-key", tinySpec()).ID
		}(i)
	}
	wg.Wait()
	for i := 1; i < racers; i++ {
		if ids[i] != ids[0] {
			t.Fatalf("racer %d got campaign %s, racer 0 got %s", i, ids[i], ids[0])
		}
	}
	if n := len(m.List()); n != 1 {
		t.Errorf("campaigns registered = %d, want 1", n)
	}
}

// TestClientRetriesAfter5xx pins the client's retry loop: transient 5xx
// responses are retried (with the same Idempotency-Key) until the server
// recovers.
func TestClientRetriesAfter5xx(t *testing.T) {
	m, err := NewManager(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	inner := NewServer(m)
	var calls atomic.Int64
	var keys sync.Map
	flaky := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		n := calls.Add(1)
		if k := r.Header.Get("Idempotency-Key"); k != "" {
			keys.Store(n, k)
		}
		if n <= 2 {
			http.Error(w, `{"error":"shard flapping"}`, http.StatusServiceUnavailable)
			return
		}
		inner.ServeHTTP(w, r)
	}))
	defer flaky.Close()

	cl := fastClient(flaky.URL, 3)
	st, err := cl.Submit(tinySpec())
	if err != nil {
		t.Fatalf("Submit through flaky server: %v", err)
	}
	if st.ID == "" {
		t.Error("no campaign ID after retried submit")
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3 (two 503s + success)", got)
	}
	k1, ok1 := keys.Load(int64(1))
	k3, ok3 := keys.Load(int64(3))
	if !ok1 || !ok3 || k1 != k3 {
		t.Errorf("retries did not reuse the Idempotency-Key: first=%v last=%v", k1, k3)
	}
}

// TestClientDoesNotRetry4xx pins the other side: a request the server
// rejected as wrong is not retried.
func TestClientDoesNotRetry4xx(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"no such campaign"}`, http.StatusNotFound)
	}))
	defer srv.Close()

	cl := fastClient(srv.URL, 3)
	_, err := cl.Status("nope")
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusNotFound {
		t.Fatalf("err = %v, want *APIError 404", err)
	}
	if got := calls.Load(); got != 1 {
		t.Errorf("server saw %d requests for a 404, want 1", got)
	}
}

// TestClientRetriesExhaust pins retry exhaustion: a persistently failing
// server yields the final attempt's error after exactly Attempts tries.
func TestClientRetriesExhaust(t *testing.T) {
	var calls atomic.Int64
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, `{"error":"disk on fire"}`, http.StatusInternalServerError)
	}))
	defer srv.Close()

	cl := fastClient(srv.URL, 3)
	_, err := cl.Submit(tinySpec())
	var ae *APIError
	if !errors.As(err, &ae) || ae.StatusCode != http.StatusInternalServerError {
		t.Fatalf("err = %v, want *APIError 500", err)
	}
	if !strings.Contains(ae.Message, "disk on fire") {
		t.Errorf("error lost the server's message: %q", ae.Message)
	}
	if got := calls.Load(); got != 3 {
		t.Errorf("server saw %d requests, want 3", got)
	}
}

// TestClientPerRequestTimeout pins the deadline: an attempt against a
// hung server is cut off by Client.Timeout and surfaces as an error
// after the retry budget, not a hang.
func TestClientPerRequestTimeout(t *testing.T) {
	var calls atomic.Int64
	release := make(chan struct{})
	defer close(release)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		select {
		case <-release:
		case <-r.Context().Done():
		}
	}))
	defer srv.Close()

	cl := &Client{
		BaseURL: srv.URL,
		Timeout: 50 * time.Millisecond,
		Retry:   obs.Backoff{Attempts: 2, Sleep: noPause},
	}
	start := time.Now()
	_, err := cl.Status("x")
	if err == nil {
		t.Fatal("no error from hung server")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, deadline not enforced", elapsed)
	}
	// Under load the deadline can expire before the handler runs, so the
	// exact count varies; the retry budget is the hard bound.
	if got := calls.Load(); got > 2 {
		t.Errorf("server saw %d attempts, want <= 2 (retry budget)", got)
	}
}

// TestWatchEndsOnShutdown pins graceful drain: Server.Shutdown releases
// a live SSE stream so http.Server.Shutdown can finish.
func TestWatchEndsOnShutdown(t *testing.T) {
	m, h, srv := newTestServer(t)
	st := postSubmit(t, srv.URL, "", tortureSpec())
	c, _ := m.Get(st.ID)
	c.Wait()

	cl := &Client{BaseURL: srv.URL}
	streaming := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		var once sync.Once
		done <- cl.Watch(st.ID, 0, func(obs.Event) error {
			once.Do(func() { close(streaming) })
			return nil
		})
	}()
	select {
	case <-streaming:
	case err := <-done:
		t.Fatalf("watch ended before shutdown: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("watch never delivered an event")
	}
	h.Shutdown()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("watch after shutdown returned %v, want clean end", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("watch stream did not end on Server.Shutdown")
	}
}
