package workload

import (
	"errors"
	"fmt"
	"math/rand"

	"flashwear/internal/fs"
)

// FileSet is the paper's attack workload: a handful of files in a private
// directory, rewritten at random offsets in small synchronous requests.
// §4.3: "four 100MB files"; §4.4: "continuously rewrites 100MB files in the
// application's private storage area".
type FileSet struct {
	FS       fs.FileSystem
	Dir      string
	NumFiles int
	FileSize int64
	// ReqBytes is the rewrite request size (4 KiB in the paper).
	ReqBytes int64
	// SyncEvery issues fsync after this many rewrites (1 = O_SYNC).
	SyncEvery int

	files  []fs.File
	rng    *rand.Rand
	writes int
	buf    []byte
}

// NewFileSet returns an unopened file set with the paper's defaults filled
// in for zero fields: 4 files, 4 KiB requests, sync every write.
func NewFileSet(fsys fs.FileSystem, dir string, fileSize int64, seed int64) *FileSet {
	return &FileSet{
		FS: fsys, Dir: dir, NumFiles: 4, FileSize: fileSize,
		ReqBytes: 4096, SyncEvery: 1,
		rng: rand.New(rand.NewSource(seed)),
	}
}

// Setup creates the directory and pre-sizes the files (an initial
// sequential fill, as the real app must do before it can rewrite).
func (s *FileSet) Setup() error {
	if s.NumFiles <= 0 || s.FileSize < s.ReqBytes || s.ReqBytes <= 0 {
		return fmt.Errorf("workload: fileset: bad geometry files=%d size=%d req=%d",
			s.NumFiles, s.FileSize, s.ReqBytes)
	}
	if s.Dir != "/" && s.Dir != "" {
		if err := s.FS.Mkdir(s.Dir); err != nil && !errors.Is(err, fs.ErrExist) {
			return err
		}
	}
	s.buf = make([]byte, s.ReqBytes)
	for i := 0; i < s.NumFiles; i++ {
		f, err := s.FS.Create(fmt.Sprintf("%s/wear%02d.dat", s.Dir, i))
		if err != nil {
			return err
		}
		// Fill sequentially in 256 KiB chunks.
		chunk := make([]byte, 256<<10)
		for off := int64(0); off < s.FileSize; off += int64(len(chunk)) {
			n := int64(len(chunk))
			if off+n > s.FileSize {
				n = s.FileSize - off
			}
			if _, err := f.WriteAt(chunk[:n], off); err != nil {
				return err
			}
		}
		if err := f.Sync(); err != nil {
			return err
		}
		s.files = append(s.files, f)
	}
	return nil
}

// TotalBytes returns the footprint of the file set — under 3% of the
// device in the paper's configuration.
func (s *FileSet) TotalBytes() int64 { return int64(s.NumFiles) * s.FileSize }

// Step rewrites random regions until about budget bytes have been written
// (at least one request), returning the bytes written.
func (s *FileSet) Step(budget int64) (int64, error) {
	if len(s.files) == 0 {
		return 0, fmt.Errorf("workload: fileset: Setup not called")
	}
	var written int64
	for written == 0 || written+s.ReqBytes <= budget {
		f := s.files[s.rng.Intn(len(s.files))]
		slots := s.FileSize / s.ReqBytes
		off := s.rng.Int63n(slots) * s.ReqBytes
		if _, err := f.WriteAt(s.buf, off); err != nil {
			return written, err
		}
		written += s.ReqBytes
		s.writes++
		if s.SyncEvery > 0 && s.writes%s.SyncEvery == 0 {
			if err := f.Sync(); err != nil {
				return written, err
			}
		}
	}
	return written, nil
}

// Reseed replaces the offset RNG. Checkpoint-resume re-creates the set
// each simulated day and reseeds from (device seed, day), so the rewrite
// offset stream is a pure function of the resume point rather than of how
// many draws the previous process had consumed.
func (s *FileSet) Reseed(seed int64) {
	s.rng = rand.New(rand.NewSource(seed))
}

// Writes returns the cumulative rewrite count (the SyncEvery phase).
func (s *FileSet) Writes() int { return s.writes }

// Restore marks the set as initialised without re-filling the files —
// the resume counterpart of Setup, for a set whose files already exist on
// the (recovered) file system. writes restores the rewrite counter so the
// SyncEvery phase continues where it left off. Call before Reattach.
func (s *FileSet) Restore(writes int) {
	s.buf = make([]byte, s.ReqBytes)
	s.writes = writes
}

// Reattach re-opens the set's files by path on fsys — used after a crash
// or power-loss remount invalidates the previous mount's handles. A file
// whose creation did not survive the crash (the cut landed mid-Setup) is
// recreated empty; no refill is needed, because WriteAt extends short
// files on demand and the rewrite workload never reads its own data.
func (s *FileSet) Reattach(fsys fs.FileSystem) error {
	if s.buf == nil {
		return fmt.Errorf("workload: fileset: Setup not called")
	}
	s.FS = fsys
	files := make([]fs.File, 0, s.NumFiles)
	for i := 0; i < s.NumFiles; i++ {
		path := fmt.Sprintf("%s/wear%02d.dat", s.Dir, i)
		f, err := fsys.Open(path)
		if errors.Is(err, fs.ErrNotExist) {
			if s.Dir != "/" && s.Dir != "" {
				if err := fsys.Mkdir(s.Dir); err != nil && !errors.Is(err, fs.ErrExist) {
					return fmt.Errorf("workload: fileset: reattach: %w", err)
				}
			}
			f, err = fsys.Create(path)
		}
		if err != nil {
			return fmt.Errorf("workload: fileset: reattach %s: %w", path, err)
		}
		files = append(files, f)
	}
	s.files = files
	return nil
}

// Close closes the files.
func (s *FileSet) Close() error {
	for _, f := range s.files {
		if err := f.Close(); err != nil {
			return err
		}
	}
	s.files = nil
	return nil
}
