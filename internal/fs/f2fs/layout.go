// Package f2fs implements an F2FS-like log-structured file system on a
// blockdev.Device: all writes append to active data/node logs in segments,
// a Node Address Table (NAT) maps node IDs to their latest location,
// segment cleaning reclaims invalidated space, and fsync writes the file's
// node block with a roll-forward marker so recent syncs survive a crash
// without a full checkpoint — the design that makes F2FS write roughly two
// blocks per 4 KiB synchronous write, the behaviour Figure 4 measures.
package f2fs

import (
	"encoding/binary"
	"errors"
	"fmt"

	"flashwear/internal/blockdev"
)

// On-disk constants.
const (
	BlockSize = 4096
	Magic     = 0x46324657 // "F2FW"

	// SegBlocks is the number of 4 KiB blocks per segment (512 KiB
	// segments, a small version of F2FS's 2 MiB).
	SegBlocks = 128

	// RootNode is the root directory's node ID. Node 0 is invalid.
	RootNode = 1

	// Inode pointer geometry (fits a 4 KiB block with the header).
	NDirect       = 512
	NIndirectIDs  = 120
	IndirectPtrs  = 900
	MaxFileBlocks = NDirect + NIndirectIDs*IndirectPtrs

	natEntriesPerBlock = BlockSize / 4
)

// Superblock states mirror extfs: clean vs mounted.
const (
	stateClean   = 1
	stateMounted = 2
)

var (
	// ErrNotF2FS means the device does not carry an f2fs superblock.
	ErrNotF2FS = errors.New("f2fs: bad magic (not an f2fs volume)")
	// ErrCorrupt covers structurally invalid on-disk state.
	ErrCorrupt = errors.New("f2fs: corrupt volume")
)

// superblock is block 0.
type superblock struct {
	magic       uint32
	totalBlocks uint32
	cpStart     uint32 // two alternating checkpoint blocks
	natStart    uint32
	natBlks     uint32
	mainStart   uint32
	segCount    uint32
	state       uint32
}

func (sb *superblock) encode() []byte {
	b := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], sb.magic)
	le.PutUint32(b[4:], sb.totalBlocks)
	le.PutUint32(b[8:], sb.cpStart)
	le.PutUint32(b[12:], sb.natStart)
	le.PutUint32(b[16:], sb.natBlks)
	le.PutUint32(b[20:], sb.mainStart)
	le.PutUint32(b[24:], sb.segCount)
	le.PutUint32(b[28:], sb.state)
	return b
}

func decodeSuperblock(b []byte) (*superblock, error) {
	le := binary.LittleEndian
	sb := &superblock{
		magic:       le.Uint32(b[0:]),
		totalBlocks: le.Uint32(b[4:]),
		cpStart:     le.Uint32(b[8:]),
		natStart:    le.Uint32(b[12:]),
		natBlks:     le.Uint32(b[16:]),
		mainStart:   le.Uint32(b[20:]),
		segCount:    le.Uint32(b[24:]),
		state:       le.Uint32(b[28:]),
	}
	if sb.magic != Magic {
		return nil, ErrNotF2FS
	}
	if sb.mainStart >= sb.totalBlocks || sb.segCount == 0 {
		return nil, fmt.Errorf("%w: bad layout", ErrCorrupt)
	}
	return sb, nil
}

// checkpoint is the persisted log state, written alternately to the two
// checkpoint blocks; the one with the highest version and valid magic wins.
type checkpoint struct {
	ver     uint64 // global version at checkpoint time
	dataSeg uint32 // active data log segment
	dataOff uint32
	nodeSeg uint32 // active node log segment
	nodeOff uint32
}

const cpMagic = 0x43504B54 // "CPKT"

func (cp checkpoint) encode() []byte {
	b := make([]byte, BlockSize)
	le := binary.LittleEndian
	le.PutUint32(b[0:], cpMagic)
	le.PutUint64(b[8:], cp.ver)
	le.PutUint32(b[16:], cp.dataSeg)
	le.PutUint32(b[20:], cp.dataOff)
	le.PutUint32(b[24:], cp.nodeSeg)
	le.PutUint32(b[28:], cp.nodeOff)
	// Tail copy of ver acts as a torn-write detector.
	le.PutUint64(b[BlockSize-8:], cp.ver)
	return b
}

func decodeCheckpoint(b []byte) (checkpoint, bool) {
	le := binary.LittleEndian
	if le.Uint32(b[0:]) != cpMagic {
		return checkpoint{}, false
	}
	cp := checkpoint{
		ver:     le.Uint64(b[8:]),
		dataSeg: le.Uint32(b[16:]),
		dataOff: le.Uint32(b[20:]),
		nodeSeg: le.Uint32(b[24:]),
		nodeOff: le.Uint32(b[28:]),
	}
	if le.Uint64(b[BlockSize-8:]) != cp.ver {
		return checkpoint{}, false // torn checkpoint write
	}
	return cp, true
}

// computeLayout derives the layout for a device.
func computeLayout(deviceBytes int64) (*superblock, error) {
	total := uint32(deviceBytes / BlockSize)
	if total < 8*SegBlocks {
		return nil, fmt.Errorf("f2fs: device too small: %d blocks", total)
	}
	sb := &superblock{magic: Magic, totalBlocks: total, cpStart: 1}
	// One NAT entry per 4 main-area blocks, at least one NAT block.
	natEntries := total / 4
	sb.natBlks = (natEntries + natEntriesPerBlock - 1) / natEntriesPerBlock
	sb.natStart = sb.cpStart + 2
	mainStart := sb.natStart + sb.natBlks
	// Align the main area to a segment boundary for clean addressing.
	if rem := mainStart % SegBlocks; rem != 0 {
		mainStart += SegBlocks - rem
	}
	sb.mainStart = mainStart
	if mainStart >= total {
		return nil, fmt.Errorf("f2fs: no room for main area")
	}
	sb.segCount = (total - mainStart) / SegBlocks
	if sb.segCount < 6 {
		return nil, fmt.Errorf("f2fs: too few segments: %d", sb.segCount)
	}
	return sb, nil
}

func readBlock(d blockdev.Device, blk uint32) ([]byte, error) {
	b := make([]byte, BlockSize)
	if err := d.ReadAt(b, int64(blk)*BlockSize); err != nil {
		return nil, err
	}
	return b, nil
}

func writeBlock(d blockdev.Device, blk uint32, b []byte) error {
	return d.WriteAt(b, int64(blk)*BlockSize)
}
