package ftl

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"flashwear/internal/nand"
)

// TestQuickFTLMatchesModel drives random write/trim/read sequences against
// both the FTL and a trivial in-memory model, on single-pool and hybrid
// devices. The FTL must return exactly what the model predicts regardless
// of GC, wear-leveling, drains, or merges happening underneath.
func TestQuickFTLMatchesModel(t *testing.T) {
	run := func(seed int64, hybrid bool) bool {
		var cfg Config
		cfg.MainChip = nand.Config{
			Geometry: nand.Geometry{
				Dies: 1, PlanesPerDie: 2, BlocksPerPlane: 12,
				PagesPerBlock: 8, PageSize: 4096,
			},
			Cell: nand.MLC, RatedPE: 100_000, Seed: seed,
		}
		if hybrid {
			cfg.Hybrid = &HybridConfig{
				CacheChip: nand.Config{
					Geometry: nand.Geometry{
						Dies: 1, PlanesPerDie: 1, BlocksPerPlane: 4,
						PagesPerBlock: 8, PageSize: 4096,
					},
					Cell: nand.SLC, RatedPE: 100_000, Seed: seed + 1,
				},
				DrainRatio:       0.25,
				MergeUtilisation: 0.8,
			}
		}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := f.LogicalPages()
		model := make(map[int]byte) // lp -> value byte; absent = unmapped
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 4096)
		for op := 0; op < 3000; op++ {
			lp := rng.Intn(n)
			switch rng.Intn(10) {
			case 0: // trim
				if _, err := f.TrimPage(lp); err != nil {
					t.Fatalf("trim: %v", err)
				}
				delete(model, lp)
			case 1, 2: // read and check
				data, _, err := f.ReadPage(lp)
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				want, mapped := model[lp]
				if !mapped {
					if data != nil {
						return false
					}
					continue
				}
				if data == nil || !bytes.Equal(data, bytes.Repeat([]byte{want}, 4096)) {
					return false
				}
			default: // write
				v := byte(rng.Intn(255) + 1)
				for i := range buf {
					buf[i] = v
				}
				reqBytes := 4096
				if rng.Intn(4) == 0 {
					reqBytes = 1 << 20 // sometimes bypass the cache
				}
				if _, err := f.WritePage(lp, buf, reqBytes); err != nil {
					t.Fatalf("write: %v", err)
				}
				model[lp] = v
			}
		}
		// Final sweep: every page must match the model.
		for lp := 0; lp < n; lp++ {
			data, _, err := f.ReadPage(lp)
			if err != nil {
				t.Fatalf("final read: %v", err)
			}
			want, mapped := model[lp]
			if !mapped {
				if data != nil {
					return false
				}
				continue
			}
			if data == nil || data[0] != want || data[4095] != want {
				return false
			}
		}
		return true
	}
	f := func(seed int64, hybrid bool) bool { return run(seed, hybrid) }
	if err := quick.Check(f, &quick.Config{MaxCount: 12}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickWearMonotonic: however the FTL is driven, life consumed never
// decreases and the indicator never runs backwards.
func TestQuickWearMonotonic(t *testing.T) {
	f := func(seed int64) bool {
		ftl := newTestFTL(t, func(c *Config) {
			c.MainChip = testChipCfg(500)
			c.MainChip.Seed = seed
		})
		rng := rand.New(rand.NewSource(seed))
		lastLife := 0.0
		lastInd := 0
		for i := 0; i < 4000; i++ {
			if _, err := ftl.WritePage(rng.Intn(ftl.LogicalPages()/4), nil, 4096); err != nil {
				return true // death is allowed; monotonicity checked until then
			}
			if life := ftl.LifeConsumed(PoolB); life < lastLife {
				return false
			} else {
				lastLife = life
			}
			if ind := ftl.WearIndicator(PoolB); ind < lastInd {
				return false
			} else {
				lastInd = ind
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 8}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickRemountMatchesModel interleaves clean power cuts and OOB-scan
// recoveries into a random write/read workload: the remounted FTL must
// behave exactly like one that never lost power. Writes and reads only —
// trims are volatile by contract, so they would make the model ambiguous.
func TestQuickRemountMatchesModel(t *testing.T) {
	run := func(seed int64, hybrid bool) bool {
		var cfg Config
		cfg.MainChip = nand.Config{
			Geometry: nand.Geometry{
				Dies: 1, PlanesPerDie: 2, BlocksPerPlane: 12,
				PagesPerBlock: 8, PageSize: 4096,
			},
			Cell: nand.MLC, RatedPE: 100_000, Seed: seed,
		}
		if hybrid {
			cfg.Hybrid = &HybridConfig{
				CacheChip: nand.Config{
					Geometry: nand.Geometry{
						Dies: 1, PlanesPerDie: 1, BlocksPerPlane: 4,
						PagesPerBlock: 8, PageSize: 4096,
					},
					Cell: nand.SLC, RatedPE: 100_000, Seed: seed + 1,
				},
				DrainRatio:       0.25,
				MergeUtilisation: 0.8,
			}
		}
		f, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		n := f.LogicalPages()
		model := make(map[int]byte)
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, 4096)
		remounts := 0
		for op := 0; op < 2000; op++ {
			if op%137 == 136 {
				f.CutPower()
				if _, err := f.Recover(); err != nil {
					t.Fatalf("recover: %v", err)
				}
				remounts++
			}
			lp := rng.Intn(n)
			if rng.Intn(4) == 0 { // read and check
				data, _, err := f.ReadPage(lp)
				if err != nil {
					t.Fatalf("read: %v", err)
				}
				want, mapped := model[lp]
				if mapped != (data != nil) || (mapped && data[0] != want) {
					return false
				}
				continue
			}
			v := byte(rng.Intn(255) + 1)
			for i := range buf {
				buf[i] = v
			}
			reqBytes := 4096
			if rng.Intn(4) == 0 {
				reqBytes = 1 << 20
			}
			if _, err := f.WritePage(lp, buf, reqBytes); err != nil {
				t.Fatalf("write: %v", err)
			}
			model[lp] = v
		}
		if remounts == 0 || f.Stats().Recoveries != int64(remounts) {
			t.Fatalf("remounts = %d, Recoveries = %d", remounts, f.Stats().Recoveries)
		}
		for lp := 0; lp < n; lp++ {
			data, _, err := f.ReadPage(lp)
			if err != nil {
				t.Fatalf("final read: %v", err)
			}
			want, mapped := model[lp]
			if mapped != (data != nil) || (mapped && (data[0] != want || data[4095] != want)) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(run, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

// TestQuickUtilisationBounded: utilisation tracks mapped pages exactly and
// stays in [0, 1].
func TestQuickUtilisationBounded(t *testing.T) {
	f := func(seed int64) bool {
		ftl := newTestFTL(t, nil)
		rng := rand.New(rand.NewSource(seed))
		mapped := map[int]bool{}
		n := ftl.LogicalPages()
		for i := 0; i < 2000; i++ {
			lp := rng.Intn(n)
			if rng.Intn(3) == 0 {
				if _, err := ftl.TrimPage(lp); err != nil {
					return false
				}
				delete(mapped, lp)
			} else {
				if _, err := ftl.WritePage(lp, nil, 4096); err != nil {
					return false
				}
				mapped[lp] = true
			}
			want := float64(len(mapped)) / float64(n)
			got := ftl.Utilisation()
			if got < want-1e-9 || got > want+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}
