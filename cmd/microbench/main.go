// Command microbench regenerates Figure 1: synchronous write bandwidth
// versus request size (0.5 KiB – 16 MiB), sequential and random, for the
// five devices of §4.1.
//
// Usage:
//
//	microbench [-scale N] [-csv]
//
// With -csv the two panels are emitted as CSV series (one column per
// device); otherwise an aligned table prints both patterns side by side.
package main

import (
	"flag"
	"fmt"
	"os"

	"flashwear/internal/experiments"
	"flashwear/internal/report"
)

func main() {
	scale := flag.Int64("scale", 256, "device capacity divisor (1 = full size, slow)")
	csv := flag.Bool("csv", false, "emit CSV series instead of a table")
	flag.Parse()

	cfg := experiments.Config{
		Scale:    *scale,
		Progress: func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	}
	points, err := experiments.Figure1(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "microbench:", err)
		os.Exit(1)
	}

	if *csv {
		fmt.Println("# Figure 1a: sequential write bandwidth (MiB/s)")
		report.RenderCSV(os.Stdout, experiments.Figure1Series(points, true)...)
		fmt.Println()
		fmt.Println("# Figure 1b: random write bandwidth (MiB/s)")
		report.RenderCSV(os.Stdout, experiments.Figure1Series(points, false)...)
		return
	}

	tbl := report.NewTable(
		"Figure 1: write bandwidth by request size (MiB/s)",
		"Device", "Req", "Sequential", "Random")
	for _, p := range points {
		tbl.AddRow(p.Device, report.SizeLabel(p.ReqBytes), p.SeqMiBps, p.RandMiBps)
	}
	tbl.Render(os.Stdout)
}
