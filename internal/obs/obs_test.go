package obs

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRegistryPrometheusRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "Ops done.")
	c.Add(3)
	g := r.Gauge("test_depth", "Queue depth.")
	g.Set(2.5)
	g.Add(-0.5)
	h := r.Histogram("test_latency_seconds", "Latency.", []float64{0.1, 1})
	h.Observe(0.05)
	h.Observe(0.5)
	h.Observe(5)
	v := r.CounterVec("test_requests_total", "Requests.", "route", "code")
	v.With("GET /x", "200").Add(2)
	v.With("GET /x", "500").Inc()
	hv := r.HistogramVec("test_route_seconds", "Route latency.", []float64{1}, "route")
	hv.With("GET /x").Observe(0.5)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatalf("WritePrometheus: %v", err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE test_ops_total counter\ntest_ops_total 3\n",
		"# TYPE test_depth gauge\ntest_depth 2\n",
		`test_latency_seconds_bucket{le="0.1"} 1`,
		`test_latency_seconds_bucket{le="1"} 2`,
		`test_latency_seconds_bucket{le="+Inf"} 3`,
		"test_latency_seconds_count 3",
		`test_requests_total{route="GET /x",code="200"} 2`,
		`test_requests_total{route="GET /x",code="500"} 1`,
		`test_route_seconds_bucket{route="GET /x",le="1"} 1`,
		`test_route_seconds_sum{route="GET /x"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	// Families render sorted by name regardless of registration order.
	if strings.Index(out, "test_depth") > strings.Index(out, "test_latency_seconds") {
		t.Errorf("families not sorted by name:\n%s", out)
	}
}

func TestHistogramTimer(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "t", DurationBuckets)
	stop := h.Time()
	stop()
	if h.Count() != 1 {
		t.Fatalf("timer observed %d samples, want 1", h.Count())
	}
}

func TestJournalPersistAndReplay(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sub", "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("OpenJournal: %v", err)
	}
	for i := 0; i < 3; i++ {
		if _, err := j.Append(Event{Type: "tick", Day: i + 1}); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	evs := j2.Events(0)
	if len(evs) != 3 || evs[0].Seq != 1 || evs[2].Seq != 3 {
		t.Fatalf("replay = %+v", evs)
	}
	if got := j2.Events(2); len(got) != 1 || got[0].Seq != 3 {
		t.Fatalf("Events(2) = %+v", got)
	}
	// Appends continue the sequence with no gap.
	e, err := j2.Append(Event{Type: "tick", Day: 4})
	if err != nil {
		t.Fatalf("append after reopen: %v", err)
	}
	if e.Seq != 4 {
		t.Fatalf("seq after reopen = %d, want 4", e.Seq)
	}
	j2.Close()
}

func TestJournalTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	j, err := OpenJournal(path)
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Type: "a"})
	j.Append(Event{Type: "b"})
	j.Close()

	// Simulate a crash mid-append: a torn, non-JSON tail.
	f, err := os.OpenFile(path, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	f.WriteString(`{"seq":3,"type":"tor`)
	f.Close()

	j2, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("reopen with torn tail: %v", err)
	}
	if got := j2.LastSeq(); got != 2 {
		t.Fatalf("LastSeq after torn tail = %d, want 2", got)
	}
	e, err := j2.Append(Event{Type: "c"})
	if err != nil {
		t.Fatal(err)
	}
	if e.Seq != 3 {
		t.Fatalf("seq after torn-tail recovery = %d, want 3 (contiguous)", e.Seq)
	}
	j2.Close()

	// The recovered file must itself replay cleanly.
	j3, err := OpenJournal(path)
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	if got := len(j3.Events(0)); got != 3 {
		t.Fatalf("events after recovery = %d, want 3", got)
	}
	j3.Close()
}

func TestJournalRejectsSeqGap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "events.jsonl")
	os.WriteFile(path, []byte(`{"seq":1,"type":"a"}`+"\n"+`{"seq":3,"type":"b"}`+"\n"), 0o644)
	if _, err := OpenJournal(path); err == nil {
		t.Fatal("journal with a sequence gap opened cleanly, want error")
	}
}

func TestJournalSubscribe(t *testing.T) {
	j, err := OpenJournal("")
	if err != nil {
		t.Fatal(err)
	}
	j.Append(Event{Type: "old"})
	replay, ch, cancel := j.Subscribe(0)
	defer cancel()
	if len(replay) != 1 || replay[0].Type != "old" {
		t.Fatalf("replay = %+v", replay)
	}
	j.Append(Event{Type: "new"})
	e := <-ch
	if e.Type != "new" || e.Seq != 2 {
		t.Fatalf("live event = %+v", e)
	}
	cancel()
	j.Append(Event{Type: "after-cancel"}) // must not block or panic
}

func TestLoggerFormat(t *testing.T) {
	var buf bytes.Buffer
	l := NewLogger(&buf)
	l.Log("http", "route", "GET /v1/campaigns/{id}", "status", 200)
	line := buf.String()
	if !strings.Contains(line, "event=http") || !strings.Contains(line, `route="GET /v1/campaigns/{id}"`) ||
		!strings.Contains(line, "status=200") || !strings.HasPrefix(line, "ts=") {
		t.Fatalf("log line = %q", line)
	}
	var nilLogger *Logger
	nilLogger.Log("noop") // nil logger is silent, not a crash
}

func TestInstrumentPanicRecovery(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "test")
	var logBuf bytes.Buffer
	log := NewLogger(&logBuf)
	h := Instrument("GET /boom", m, log, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("kaboom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/boom", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if !strings.Contains(rec.Body.String(), `"error"`) {
		t.Fatalf("panic response body = %q, want error JSON", rec.Body.String())
	}
	if m.Panics.Value() != 1 {
		t.Fatalf("panic counter = %d, want 1", m.Panics.Value())
	}
	if c := m.Requests.With("GET /boom", "GET", "500"); c.Value() != 1 {
		t.Fatalf("request counter = %d, want 1", c.Value())
	}
	if !strings.Contains(logBuf.String(), "kaboom") {
		t.Fatalf("panic log missing message: %q", logBuf.String())
	}
}

func TestInstrumentCountsAndLogs(t *testing.T) {
	r := NewRegistry()
	m := NewHTTPMetrics(r, "test")
	h := Instrument("GET /ok", m, nil, http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		w.WriteHeader(http.StatusTeapot)
		w.Write([]byte("short and stout"))
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/ok", nil))
	if rec.Code != http.StatusTeapot {
		t.Fatalf("status = %d", rec.Code)
	}
	if c := m.Requests.With("GET /ok", "GET", "418"); c.Value() != 1 {
		t.Fatalf("request counter = %d, want 1", c.Value())
	}
	if m.Latency.With("GET /ok").Count() != 1 {
		t.Fatal("latency histogram empty")
	}
}
