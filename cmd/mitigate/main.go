// Command mitigate evaluates the §4.5 defences against the wear attack: no
// defence, a lifespan-budget global rate limit, and the classifier-driven
// selective throttle. Alongside the attack, a benign app performs a burst
// file transfer, exposing the collateral damage naive rate limiting causes.
//
// Usage:
//
//	mitigate [-scale N]
package main

import (
	"flag"
	"fmt"
	"os"

	"flashwear/internal/experiments"
	"flashwear/internal/report"
)

func main() {
	scale := flag.Int64("scale", 1024, "device capacity divisor")
	flag.Parse()

	cfg := experiments.Config{
		Scale:    *scale,
		Progress: func(f string, a ...any) { fmt.Fprintf(os.Stderr, f+"\n", a...) },
	}
	rows, err := experiments.Mitigation(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mitigate:", err)
		os.Exit(1)
	}
	tbl := report.NewTable(
		"Mitigation evaluation (§4.5): wear attack + benign burst app",
		"Policy", "Attack wear %/day", "Projected life (days)", "Benign 64MiB burst (s)", "Wear warning")
	for _, r := range rows {
		tbl.AddRow(string(r.Policy),
			fmt.Sprintf("%.4f", r.LifeConsumedPctPerDay),
			fmt.Sprintf("%.0f", r.ProjectedLifeDays),
			r.BenignBurstSeconds, r.WarningRaised)
	}
	tbl.Render(os.Stdout)
	fmt.Println(`
Reading the table:
  - "none": the attack consumes the device's life in days; the S.M.A.R.T.-style
    wear watch at least raises a warning before the end (§4.5's first proposal).
  - "global-limit" protects the device but makes the benign app's burst
    crawl — §4.5: rate limiting "may harm benign applications that rely on
    bursts of I/O requests".
  - "selective" protects the device while leaving the benign burst at full
    speed: the classifier throttles only the wear-attack signature.`)

	fmt.Println()
	rows2, err := experiments.ClassifierEval(cfg)
	if err != nil {
		fmt.Fprintln(os.Stderr, "mitigate: classifier eval:", err)
		os.Exit(1)
	}
	tbl2 := report.NewTable(
		"Classifier evaluation: a realistic app population",
		"App", "Ground truth", "Flagged", "Score", "Wrote (MiB)")
	for _, r := range rows2 {
		truth := "benign"
		if r.Harmful {
			truth = "harmful"
		}
		tbl2.AddRow(r.App, truth, r.Flagged, r.Score, r.WrittenMiB)
	}
	tbl2.Render(os.Stdout)
}
