package emmc

import (
	"bytes"
	"errors"
	"testing"

	"flashwear/internal/device"
	"flashwear/internal/simclock"
)

func testController(t *testing.T) *Controller {
	t.Helper()
	dev, err := device.New(device.ProfileEMMC8().Scaled(512), simclock.New())
	if err != nil {
		t.Fatal(err)
	}
	return New(dev)
}

func TestInitHandshake(t *testing.T) {
	c := testController(t)
	if c.State() != StateIdle {
		t.Fatal("card not idle at power-on")
	}
	if err := c.Init(1); err != nil {
		t.Fatalf("Init: %v", err)
	}
	if c.State() != StateTran {
		t.Fatalf("state after init = %d, want transfer", c.State())
	}
}

func TestCommandsRejectedOutOfState(t *testing.T) {
	c := testController(t)
	// Block I/O before init is illegal.
	if _, err := c.Send(CmdReadSingleBlock, 0); !errors.Is(err, ErrIllegal) {
		t.Fatalf("read in idle err = %v", err)
	}
	resp, _ := c.Send(CmdReadSingleBlock, 0)
	if resp.R1&StatusIllegalCommand == 0 {
		t.Fatal("ILLEGAL_COMMAND bit not set")
	}
	// CMD1 twice is illegal (already ready).
	if _, err := c.Send(CmdSendOpCond, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(CmdSendOpCond, 0); !errors.Is(err, ErrIllegal) {
		t.Fatal("CMD1 in ready state accepted")
	}
	// CMD0 always resets.
	if _, err := c.Send(CmdGoIdleState, 0); err != nil {
		t.Fatal(err)
	}
	if c.State() != StateIdle {
		t.Fatal("CMD0 did not reset")
	}
}

func TestSingleBlockIO(t *testing.T) {
	c := testController(t)
	if err := c.Init(1); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0xC3}, 512)
	if _, err := c.SendData(CmdWriteBlock, 8, payload); err != nil {
		t.Fatalf("CMD24: %v", err)
	}
	resp, err := c.Send(CmdReadSingleBlock, 8)
	if err != nil {
		t.Fatalf("CMD17: %v", err)
	}
	if !bytes.Equal(resp.Data, payload) {
		t.Fatal("read != written")
	}
}

func TestMultiBlockIOWithBlockCount(t *testing.T) {
	c := testController(t)
	if err := c.Init(1); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{0x7E}, 4*512)
	if _, err := c.Send(CmdSetBlockCount, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SendData(CmdWriteMultipleBlk, 64, payload); err != nil {
		t.Fatalf("CMD25: %v", err)
	}
	if _, err := c.Send(CmdSetBlockCount, 4); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Send(CmdReadMultipleBlock, 64)
	if err != nil {
		t.Fatalf("CMD18: %v", err)
	}
	if !bytes.Equal(resp.Data, payload) {
		t.Fatal("multi-block round trip failed")
	}
}

func TestExtCSDHealthRead(t *testing.T) {
	// The paper's measurement: read DEVICE_LIFE_TIME_EST over the wire.
	c := testController(t)
	if err := c.Init(1); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Send(CmdSendExtCSD, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Data) != 512 {
		t.Fatalf("EXT_CSD length = %d", len(resp.Data))
	}
	if resp.Data[device.ExtCSDRev] != 8 {
		t.Fatalf("EXT_CSD_REV = %d", resp.Data[device.ExtCSDRev])
	}
	if resp.Data[device.ExtCSDLifeTimeEstB] != 1 {
		t.Fatalf("fresh TYP_B = %d, want 1", resp.Data[device.ExtCSDLifeTimeEstB])
	}
	if resp.Data[device.ExtCSDPreEOLInfo] != 1 {
		t.Fatalf("fresh PRE_EOL = %d, want 1", resp.Data[device.ExtCSDPreEOLInfo])
	}
}

func TestTrimDiscardsRange(t *testing.T) {
	c := testController(t)
	if err := c.Init(1); err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte{9}, 4096)
	if _, err := c.Send(CmdSetBlocklen, 4096); err != nil {
		t.Fatal(err)
	}
	if _, err := c.SendData(CmdWriteBlock, 0, payload); err != nil {
		t.Fatal(err)
	}
	// TRIM sectors 0..7 (one 4 KiB page).
	if _, err := c.Send(CmdEraseGroupStart, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(CmdEraseGroupEnd, 7); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(CmdErase, TrimArg); err != nil {
		t.Fatal(err)
	}
	resp, err := c.Send(CmdReadSingleBlock, 0)
	if err != nil {
		t.Fatal(err)
	}
	for i, b := range resp.Data[:512] {
		if b != 0 {
			t.Fatalf("byte %d survived TRIM", i)
		}
	}
	// CMD38 without a pending group is illegal.
	if _, err := c.Send(CmdErase, TrimArg); !errors.Is(err, ErrIllegal) {
		t.Fatal("dangling CMD38 accepted")
	}
}

func TestCIDAndCSD(t *testing.T) {
	c := testController(t)
	_, _ = c.Send(CmdGoIdleState, 0)
	_, _ = c.Send(CmdSendOpCond, 0)
	resp, err := c.Send(CmdAllSendCID, 0)
	if err != nil || len(resp.Data) != 16 {
		t.Fatalf("CID: %v, %d bytes", err, len(resp.Data))
	}
	if resp.Data[0] != 0x15 {
		t.Fatal("manufacturer ID missing")
	}
	if _, err := c.Send(CmdSetRelativeAddr, 1<<16); err != nil {
		t.Fatal(err)
	}
	resp, err = c.Send(CmdSendCSD, 0)
	if err != nil || len(resp.Data) != 16 {
		t.Fatalf("CSD: %v", err)
	}
}

func TestBadBlocklen(t *testing.T) {
	c := testController(t)
	if err := c.Init(1); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []uint32{0, 100, 8192} {
		if _, err := c.Send(CmdSetBlocklen, bad); !errors.Is(err, ErrIllegal) {
			t.Errorf("blocklen %d accepted", bad)
		}
	}
}

func TestLifeTimeEstMovesUnderWear(t *testing.T) {
	dev, err := device.New(func() device.Profile {
		p := device.ProfileEMMC8().Scaled(512)
		p.RatedPE = 100
		return p
	}(), simclock.New())
	if err != nil {
		t.Fatal(err)
	}
	c := New(dev)
	if err := c.Init(1); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Send(CmdSetBlocklen, 4096); err != nil {
		t.Fatal(err)
	}
	payload := make([]byte, 4096)
	// Hammer a small region over the wire until TYP_B moves.
	for i := 0; i < 400_000; i++ {
		sector := uint32((i % 256) * 8)
		if _, err := c.SendData(CmdWriteBlock, sector, payload); err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		if i%10_000 == 0 {
			resp, err := c.Send(CmdSendExtCSD, 0)
			if err != nil {
				t.Fatal(err)
			}
			if resp.Data[device.ExtCSDLifeTimeEstB] >= 3 {
				return // the register moved, observed over the wire
			}
		}
	}
	t.Fatal("life-time estimate never moved")
}
