package extfs

import (
	"encoding/binary"
	"fmt"

	"flashwear/internal/fs"
)

// file implements fs.File on an extfs inode.
type file struct {
	fs     *FS
	in     *inode
	closed bool
	syncs  int // fsyncs since the inode was last journaled (lazytime)
}

func (f *file) alive() error {
	if f.closed {
		return fs.ErrUnmounted
	}
	return f.fs.alive()
}

// Size implements fs.File.
func (f *file) Size() int64 { return f.in.size }

// Close implements fs.File.
func (f *file) Close() error {
	if f.closed {
		return nil
	}
	f.closed = true
	return nil
}

// --- block mapping ---

// bmap translates a file block index to a device block, optionally
// allocating missing blocks (and indirect blocks) on the way. It returns 0
// for a hole when alloc is false.
func (v *FS) bmap(in *inode, fileBlk int64, alloc bool) (uint32, error) {
	if fileBlk < 0 || fileBlk >= MaxFileBlocks {
		return 0, fs.ErrTooLarge
	}
	// Direct.
	if fileBlk < NDirect {
		blk := in.direct[fileBlk]
		if blk == 0 && alloc {
			nb, err := v.allocBlock()
			if err != nil {
				return 0, err
			}
			in.direct[fileBlk] = nb
			in.hardDirty = true
			blk = nb
		}
		return blk, nil
	}
	fileBlk -= NDirect
	// Single indirect.
	if fileBlk < PtrsPerBlk {
		return v.mapVia(&in.indirect, in, fileBlk, alloc)
	}
	fileBlk -= PtrsPerBlk
	// Double indirect.
	l1 := fileBlk / PtrsPerBlk
	l2 := fileBlk % PtrsPerBlk
	if in.dindirect == 0 {
		if !alloc {
			return 0, nil
		}
		nb, err := v.allocIndirect()
		if err != nil {
			return 0, err
		}
		in.dindirect = nb
		in.hardDirty = true
	}
	l1blk, err := v.ptrAt(in.dindirect, l1, alloc, in)
	if err != nil || l1blk == 0 {
		return 0, err
	}
	return v.ptrAtData(l1blk, l2, alloc, in)
}

// mapVia maps through a single indirect pointer field.
func (v *FS) mapVia(field *uint32, in *inode, idx int64, alloc bool) (uint32, error) {
	if *field == 0 {
		if !alloc {
			return 0, nil
		}
		nb, err := v.allocIndirect()
		if err != nil {
			return 0, err
		}
		*field = nb
		in.hardDirty = true
	}
	return v.ptrAtData(*field, idx, alloc, in)
}

// allocIndirect allocates a zeroed indirect block (staged as metadata).
func (v *FS) allocIndirect() (uint32, error) {
	nb, err := v.allocBlock()
	if err != nil {
		return 0, err
	}
	v.stageMeta(nb, make([]byte, BlockSize))
	return nb, nil
}

// ptrAt reads slot idx of an indirect block, allocating a child *indirect*
// block when alloc is set.
func (v *FS) ptrAt(blk uint32, idx int64, alloc bool, in *inode) (uint32, error) {
	b, err := v.readMeta(blk)
	if err != nil {
		return 0, err
	}
	p := binary.LittleEndian.Uint32(b[idx*PtrSize:])
	if p == 0 && alloc {
		nb, err := v.allocIndirect()
		if err != nil {
			return 0, err
		}
		nb2 := make([]byte, BlockSize)
		copy(nb2, b)
		binary.LittleEndian.PutUint32(nb2[idx*PtrSize:], nb)
		v.stageMeta(blk, nb2)
		in.hardDirty = true
		p = nb
	}
	return p, nil
}

// ptrAtData reads slot idx of an indirect block, allocating a *data* block
// when alloc is set.
func (v *FS) ptrAtData(blk uint32, idx int64, alloc bool, in *inode) (uint32, error) {
	b, err := v.readMeta(blk)
	if err != nil {
		return 0, err
	}
	p := binary.LittleEndian.Uint32(b[idx*PtrSize:])
	if p == 0 && alloc {
		nb, err := v.allocBlock()
		if err != nil {
			return 0, err
		}
		nb2 := make([]byte, BlockSize)
		copy(nb2, b)
		binary.LittleEndian.PutUint32(nb2[idx*PtrSize:], nb)
		v.stageMeta(blk, nb2)
		in.hardDirty = true
		p = nb
	}
	return p, nil
}

// --- data I/O ---

// writeData writes file content to a device block, honouring the
// data-accounting mount option. Ordered mode: data goes straight to its
// home location.
func (v *FS) writeData(blk uint32, data []byte, blkOff int) error {
	v.statDataBlocks++
	off := int64(blk)*BlockSize + int64(blkOff)
	if v.opts.DataAccounting {
		return v.dev.WriteAccounted(alignDown(off), alignUp(int64(len(data))+off-alignDown(off)))
	}
	if blkOff == 0 && len(data) == BlockSize {
		return v.dev.WriteAt(data, off)
	}
	// Sub-block write: read-modify-write the 4 KiB block.
	cur := make([]byte, BlockSize)
	if err := v.dev.ReadAt(cur, int64(blk)*BlockSize); err != nil {
		return err
	}
	copy(cur[blkOff:], data)
	return v.dev.WriteAt(cur, int64(blk)*BlockSize)
}

func alignDown(off int64) int64 { return off &^ (BlockSize - 1) }
func alignUp(n int64) int64     { return (n + BlockSize - 1) &^ (BlockSize - 1) }

// ReadAt implements fs.File.
func (f *file) ReadAt(p []byte, off int64) (int, error) {
	if err := f.alive(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("extfs: negative offset %d", off)
	}
	if off >= f.in.size {
		return 0, nil
	}
	if max := f.in.size - off; int64(len(p)) > max {
		p = p[:max]
	}
	n := 0
	for n < len(p) {
		blkIdx := (off + int64(n)) / BlockSize
		blkOff := int((off + int64(n)) % BlockSize)
		chunk := BlockSize - blkOff
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		blk, err := f.fs.bmap(f.in, blkIdx, false)
		if err != nil {
			return n, err
		}
		if blk == 0 {
			clear(p[n : n+chunk]) // hole
		} else {
			buf := make([]byte, BlockSize)
			if err := f.fs.dev.ReadAt(buf, int64(blk)*BlockSize); err != nil {
				return n, err
			}
			copy(p[n:n+chunk], buf[blkOff:])
		}
		n += chunk
	}
	return n, nil
}

// WriteAt implements fs.File.
func (f *file) WriteAt(p []byte, off int64) (int, error) {
	if err := f.alive(); err != nil {
		return 0, err
	}
	if off < 0 {
		return 0, fmt.Errorf("extfs: negative offset %d", off)
	}
	n := 0
	for n < len(p) {
		blkIdx := (off + int64(n)) / BlockSize
		blkOff := int((off + int64(n)) % BlockSize)
		chunk := BlockSize - blkOff
		if chunk > len(p)-n {
			chunk = len(p) - n
		}
		blk, err := f.fs.bmap(f.in, blkIdx, true)
		if err != nil {
			return n, err
		}
		if err := f.fs.writeData(blk, p[n:n+chunk], blkOff); err != nil {
			return n, err
		}
		n += chunk
	}
	if off+int64(n) > f.in.size {
		f.in.size = off + int64(n)
		f.in.hardDirty = true
	}
	f.in.mtime = f.fs.nowNanos()
	f.in.softDirty = true
	if f.fs.opts.SyncEveryWrite {
		if err := f.Sync(); err != nil {
			return n, err
		}
	}
	return n, nil
}

// Sync implements fs.File (fsync). Data is already in place (ordered,
// write-through); what remains is journaling the inode — which lazytime
// defers for timestamp-only changes.
func (f *file) Sync() error {
	if err := f.alive(); err != nil {
		return err
	}
	in := f.in
	f.syncs++
	needJournal := in.hardDirty || (in.softDirty && f.syncs >= lazyFlushInterval)
	if needJournal {
		if err := f.fs.flushInode(in); err != nil {
			return err
		}
		f.fs.stageBitmap()
		f.syncs = 0
	}
	return f.fs.commit()
}

// Truncate implements fs.File.
func (f *file) Truncate(size int64) error {
	if err := f.alive(); err != nil {
		return err
	}
	return f.fs.truncateInode(f.in, size)
}

// truncateInode shrinks (or sparsely grows) an inode to size.
func (v *FS) truncateInode(in *inode, size int64) error {
	if size < 0 {
		return fmt.Errorf("extfs: negative truncate %d", size)
	}
	if size >= in.size {
		if size != in.size {
			in.size = size
			in.hardDirty = true
		}
		return nil
	}
	firstDead := (size + BlockSize - 1) / BlockSize
	// Free direct blocks.
	for i := firstDead; i < NDirect; i++ {
		if in.direct[i] != 0 {
			v.freeBlock(in.direct[i])
			in.direct[i] = 0
		}
	}
	// Free single-indirect range.
	if in.indirect != 0 {
		start := firstDead - NDirect
		if start < 0 {
			start = 0
		}
		emptied, err := v.freeIndirectRange(in.indirect, start)
		if err != nil {
			return err
		}
		if emptied && firstDead <= NDirect {
			v.freeBlock(in.indirect)
			in.indirect = 0
		}
	}
	// Free double-indirect range.
	if in.dindirect != 0 {
		start := firstDead - NDirect - PtrsPerBlk
		if start < 0 {
			start = 0
		}
		b, err := v.readMeta(in.dindirect)
		if err != nil {
			return err
		}
		modified := make([]byte, BlockSize)
		copy(modified, b)
		anyLeft := false
		for l1 := int64(0); l1 < PtrsPerBlk; l1++ {
			p := binary.LittleEndian.Uint32(modified[l1*PtrSize:])
			if p == 0 {
				continue
			}
			lo := start - l1*PtrsPerBlk
			if lo < 0 {
				lo = 0
			}
			if lo >= PtrsPerBlk {
				anyLeft = true
				continue
			}
			emptied, err := v.freeIndirectRange(p, lo)
			if err != nil {
				return err
			}
			if emptied && lo == 0 {
				v.freeBlock(p)
				binary.LittleEndian.PutUint32(modified[l1*PtrSize:], 0)
			} else {
				anyLeft = true
			}
		}
		if !anyLeft && start <= 0 {
			v.freeBlock(in.dindirect)
			in.dindirect = 0
		} else {
			v.stageMeta(in.dindirect, modified)
		}
	}
	in.size = size
	in.hardDirty = true
	in.mtime = v.nowNanos()
	if err := v.flushInode(in); err != nil {
		return err
	}
	v.stageBitmap()
	return v.commit()
}

// freeIndirectRange frees data blocks at slots >= start of an indirect
// block, reporting whether the block ended up completely empty.
func (v *FS) freeIndirectRange(blk uint32, start int64) (empty bool, err error) {
	b, err := v.readMeta(blk)
	if err != nil {
		return false, err
	}
	modified := make([]byte, BlockSize)
	copy(modified, b)
	empty = true
	changed := false
	for i := int64(0); i < PtrsPerBlk; i++ {
		p := binary.LittleEndian.Uint32(modified[i*PtrSize:])
		if p == 0 {
			continue
		}
		if i >= start {
			v.freeBlock(p)
			binary.LittleEndian.PutUint32(modified[i*PtrSize:], 0)
			changed = true
		} else {
			empty = false
		}
	}
	if changed {
		v.stageMeta(blk, modified)
	}
	return empty, nil
}

var _ fs.File = (*file)(nil)
