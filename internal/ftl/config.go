package ftl

import (
	"fmt"

	"flashwear/internal/nand"
)

// GCPolicy selects the garbage-collection victim policy.
type GCPolicy int

const (
	// GCGreedy picks the full block with the fewest valid pages — minimal
	// copy work now, the common choice in simple mobile controllers.
	GCGreedy GCPolicy = iota
	// GCCostBenefit weighs reclaimable space against block age
	// (Rosenblum-style (1-u)/(1+u) * age), better under skewed workloads.
	GCCostBenefit
)

// String implements fmt.Stringer.
func (p GCPolicy) String() string {
	switch p {
	case GCGreedy:
		return "greedy"
	case GCCostBenefit:
		return "cost-benefit"
	default:
		return fmt.Sprintf("GCPolicy(%d)", int(p))
	}
}

// WearLeveling configures the two wear-leveling mechanisms (§2.2's primary
// lifetime-extension direction).
type WearLeveling struct {
	// Dynamic allocation picks the least-worn free block for new writes.
	Dynamic bool
	// Static periodically relocates cold data out of barely-worn blocks so
	// they rejoin the hot rotation.
	Static bool
	// StaticThreshold triggers static wear-leveling when the spread
	// between the most- and least-erased blocks exceeds this many cycles.
	// Defaults to 64.
	StaticThreshold int
	// StaticInterval is the number of erases between static-WL checks.
	// Defaults to 256.
	StaticInterval int
}

// DefaultWearLeveling enables both mechanisms with typical parameters.
func DefaultWearLeveling() WearLeveling {
	return WearLeveling{Dynamic: true, Static: true, StaticThreshold: 64, StaticInterval: 256}
}

// HybridConfig describes the two-pool layout of hybrid devices.
type HybridConfig struct {
	// CacheChip is the Type A chip configuration (small, high-endurance).
	CacheChip nand.Config
	// RouteMaxBytes: only host writes of at most this many bytes are
	// routed through the cache pool; larger writes stream directly to
	// Type B. Defaults to 64 KiB.
	RouteMaxBytes int
	// DrainRatio is the number of cache pages migrated to Type B per host
	// page written while the cache is under pressure. Under sustained
	// load, this is the fraction of host traffic the cache absorbs (the
	// rest bypasses to Type B). Defaults to 0.08, calibrated to Table 1's
	// ~6x Type A / Type B wear ratio before merging.
	DrainRatio float64
	// DrainWatermark is the cache utilisation above which draining starts.
	// Defaults to 0.7.
	DrainWatermark float64
	// MergeUtilisation: when the exported logical space is this utilised,
	// the firmware merges the pools — Type A stops bypassing and absorbs
	// all routed writes as ordinary storage (§4.3's inference). Defaults
	// to 0.85. Set above 1 to disable merging (ablation).
	MergeUtilisation float64
	// MergeFragmentation is the second merge condition (§4.3: "highly
	// utilized and fragmented"): the fraction of full main-pool blocks
	// holding at least one dead page. Defaults to 0.4.
	MergeFragmentation float64
}

// Config assembles an FTL instance.
type Config struct {
	// MainChip is the Type B (or only) chip configuration.
	MainChip nand.Config
	// Hybrid, when non-nil, adds a Type A cache pool.
	Hybrid *HybridConfig
	// OverProvision is the fraction of main-pool capacity withheld from
	// the exported logical space. Defaults to 0.07 (~7%, the typical
	// binary/decimal gigabyte gap).
	OverProvision float64
	// GC selects the victim policy.
	GC GCPolicy
	// GCLowWater / GCHighWater are free-block thresholds per pool:
	// allocation triggers collection below low water and collects until
	// high water. Default 4 and 8.
	GCLowWater  int
	GCHighWater int
	// Wear configures wear-leveling. Defaults to DefaultWearLeveling.
	Wear *WearLeveling
	// FirmwareRatedPE, when > 0, overrides the per-chip rated endurance
	// used as the *denominator of the life-time estimate* (vendors apply
	// margins; the cells and the indicator need not agree). Zero means
	// use each chip's rated P/E.
	FirmwareRatedPE int
	// ReadRetries is how many times the firmware re-reads a page after an
	// uncorrectable result before giving up — real controllers step
	// through read-retry voltage tables the same way. 0 means the default
	// (2); -1 disables retries.
	ReadRetries int
	// BrickAtEOL restores the legacy behaviour the paper describes for the
	// BLU phones: when space is exhausted the device hard-bricks
	// (ErrBricked) instead of degrading to JEDEC-style read-only mode.
	BrickAtEOL bool
	// EOLSpareBlocks, when > 0, retires the device into read-only mode
	// proactively once the main pool's spare blocks (good blocks beyond
	// those needed for the exported capacity) drop below this count,
	// instead of waiting for allocation to fail outright. Zero disables
	// the proactive check (small simulated chips have very few spares).
	EOLSpareBlocks int
}

func (c *Config) setDefaults() {
	if c.OverProvision == 0 {
		c.OverProvision = 0.07
	}
	if c.GCLowWater == 0 {
		c.GCLowWater = 4
	}
	if c.GCHighWater == 0 {
		c.GCHighWater = 8
	}
	if c.Wear == nil {
		w := DefaultWearLeveling()
		c.Wear = &w
	}
	if c.ReadRetries == 0 {
		c.ReadRetries = 2
	}
	if c.Wear.StaticThreshold == 0 {
		c.Wear.StaticThreshold = 64
	}
	if c.Wear.StaticInterval == 0 {
		c.Wear.StaticInterval = 256
	}
	if c.Hybrid != nil {
		if c.Hybrid.RouteMaxBytes == 0 {
			c.Hybrid.RouteMaxBytes = 64 << 10
		}
		if c.Hybrid.DrainRatio == 0 {
			c.Hybrid.DrainRatio = 0.08
		}
		if c.Hybrid.DrainWatermark == 0 {
			c.Hybrid.DrainWatermark = 0.7
		}
		if c.Hybrid.MergeUtilisation == 0 {
			c.Hybrid.MergeUtilisation = 0.85
		}
		if c.Hybrid.MergeFragmentation == 0 {
			c.Hybrid.MergeFragmentation = 0.4
		}
	}
}

func (c *Config) validate() error {
	switch {
	case c.OverProvision < 0 || c.OverProvision >= 0.5:
		return fmt.Errorf("ftl: OverProvision = %g, want [0, 0.5)", c.OverProvision)
	case c.GCLowWater < 2:
		return fmt.Errorf("ftl: GCLowWater = %d, want >= 2", c.GCLowWater)
	case c.GCHighWater <= c.GCLowWater:
		return fmt.Errorf("ftl: GCHighWater = %d, want > GCLowWater (%d)", c.GCHighWater, c.GCLowWater)
	case c.GC != GCGreedy && c.GC != GCCostBenefit:
		return fmt.Errorf("ftl: unknown GC policy %d", c.GC)
	case c.ReadRetries < -1:
		return fmt.Errorf("ftl: ReadRetries = %d, want >= -1", c.ReadRetries)
	case c.EOLSpareBlocks < 0:
		return fmt.Errorf("ftl: EOLSpareBlocks = %d, want >= 0", c.EOLSpareBlocks)
	}
	if c.Hybrid != nil {
		h := c.Hybrid
		switch {
		case h.RouteMaxBytes < 0:
			return fmt.Errorf("ftl: hybrid RouteMaxBytes = %d, want >= 0", h.RouteMaxBytes)
		case h.DrainRatio <= 0 || h.DrainRatio > 1:
			return fmt.Errorf("ftl: hybrid DrainRatio = %g, want (0, 1]", h.DrainRatio)
		case h.DrainWatermark <= 0 || h.DrainWatermark >= 1:
			return fmt.Errorf("ftl: hybrid DrainWatermark = %g, want (0, 1)", h.DrainWatermark)
		case h.MergeUtilisation <= 0:
			return fmt.Errorf("ftl: hybrid MergeUtilisation = %g, want > 0", h.MergeUtilisation)
		case h.MergeFragmentation < 0 || h.MergeFragmentation > 1:
			return fmt.Errorf("ftl: hybrid MergeFragmentation = %g, want [0,1]", h.MergeFragmentation)
		}
	}
	return nil
}
