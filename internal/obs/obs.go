// Package obs is the flashwear ops plane: wall-clock observability for
// the long-running services (fleetd), kept strictly apart from the
// deterministic simulation domain.
//
// # The sim/ops domain split
//
// Everything the simulator computes — day series, aggregates, ledgers,
// alert events — is a pure function of its Spec and must stay
// byte-identical across workers, shards, checkpoint cadence, and resume
// (DESIGN.md §6, §11). Everything this package measures — request
// latency, fsync cost, device throughput per wall second — is a property
// of one particular process on one particular machine and is allowed to
// differ run to run. The rule that keeps the two from contaminating each
// other:
//
//   - ops-domain values may OBSERVE sim-domain values (a gauge of days
//     completed is fine);
//   - sim-domain values may never read ops-domain ones — no wall-clock
//     timestamp, duration, or rate may flow into anything a determinism
//     fingerprint covers.
//
// The split is statically enforced: the flashvet wallclock analyzer bans
// time.Now and friends in simulation packages, this package declares
// itself ops-domain (the //flashvet:ops-domain directive below), and the
// analyzer additionally bans WallNow — this package's only exported raw
// clock source — outside ops-domain packages, so sim code cannot launder
// host time through obs (DESIGN.md §12).
//
// The pieces: a Prometheus-text-format metrics Registry (registry.go), an
// append-only sequenced event Journal with subscriber fan-out
// (journal.go), a structured key=value Logger (log.go), and HTTP
// middleware with panic recovery (middleware.go).
package obs

import "time"

//flashvet:ops-domain obs is the ops plane: it measures the real process (latency, throughput, timestamps) and nothing it produces flows back into simulation results

// WallNow returns the host wall-clock time. It is the only exported raw
// clock source in the ops plane; the flashvet wallclock analyzer bans it
// in simulation packages exactly like time.Now, so calling it is a
// declaration that the caller is ops-domain code.
func WallNow() time.Time { return time.Now() }
