package analysis

import (
	"encoding/json"
	"fmt"
	"go/token"
	"os"
	"sort"
	"strings"
)

// VetConfig mirrors the JSON config cmd/go hands a -vettool for each
// package (see buildVetConfig in cmd/go/internal/work/exec.go). The
// protocol: the tool is invoked as `flashvet <flags> <objdir>/vet.cfg`,
// prints diagnostics to stderr, exits 0 when clean and nonzero on
// findings, and writes its (for us, empty) facts file to VetxOutput so
// the go command can cache the run.
type VetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ModulePath    string
	ModuleVersion string
	ImportMap     map[string]string
	PackageFile   map[string]string
	Standard      map[string]bool
	PackageVetx   map[string]string
	VetxOnly      bool
	VetxOutput    string
	GoVersion     string

	SucceedOnTypecheckFailure bool
}

// RunVetTool analyzes the single package described by the vet config file
// at cfgPath and returns the process exit code: 0 clean, 1 internal
// failure, 2 findings. checkUnusedIgnores should be set only when the
// full suite runs (see flashvet.Main).
//
// Facts ride the protocol's vetx channel: dependency fact files arrive in
// PackageVetx, and this package's exported facts are written to
// VetxOutput. On a VetxOnly visit — cmd/go's "I only need this package's
// facts" call for a dependency — the fact-exporting analyzers still run
// (for in-module packages), but nothing is reported. Staleness is cmd/go's
// problem in this mode: vetx files are content-addressed by the build, so
// a stale one is never handed to us, and DecodeFacts runs fingerprint-
// unchecked.
func RunVetTool(analyzers []*Analyzer, cfgPath string, checkUnusedIgnores bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		return 1
	}
	var cfg VetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: parsing %s: %v\n", cfgPath, err)
		return 1
	}

	inModule := cfg.ModulePath != "" &&
		(cfg.ImportPath == cfg.ModulePath || strings.HasPrefix(cfg.ImportPath, cfg.ModulePath+"/"))
	facts := NewFactStore()
	// Sorted for determinism; a file that fails to decode (old tool
	// version, foreign format) contributes nothing, and the analyzers
	// fall back to conservative assumptions about those callees.
	for _, dep := range sortedKeys(cfg.PackageVetx) {
		if raw, err := os.ReadFile(cfg.PackageVetx[dep]); err == nil {
			_ = facts.DecodeFacts(raw, "")
		}
	}

	writeFacts := func() error {
		if cfg.VetxOutput == "" {
			return nil
		}
		out, err := facts.EncodeFacts(cfg.ImportPath, "")
		if err != nil {
			return err
		}
		return os.WriteFile(cfg.VetxOutput, out, 0o666)
	}

	if cfg.VetxOnly {
		// Dependency-only visit: compute facts if the package is ours
		// (stdlib behavior is baked into the analyzers' intrinsic
		// tables), report nothing.
		if inModule {
			fset := token.NewFileSet()
			imp := exportImporter(fset, vetExports(cfg))
			if pkg, err := check(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles); err == nil {
				pkg.FactsOnly = true
				if _, err := RunFacts(fset, []*Package{pkg}, analyzers, false, facts); err != nil {
					fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
					return 1
				}
			}
		}
		if err := writeFacts(); err != nil {
			fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
			return 1
		}
		return 0
	}

	fset := token.NewFileSet()
	imp := exportImporter(fset, vetExports(cfg))
	pkg, err := check(fset, imp, cfg.ImportPath, cfg.Dir, cfg.GoFiles)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		return 1
	}
	findings, err := RunFacts(fset, []*Package{pkg}, analyzers, checkUnusedIgnores, facts)
	if err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		return 1
	}
	if err := writeFacts(); err != nil {
		fmt.Fprintf(os.Stderr, "flashvet: %v\n", err)
		return 1
	}
	for _, f := range findings {
		fmt.Fprintln(os.Stderr, f)
	}
	if len(findings) > 0 {
		return 2
	}
	return 0
}

func sortedKeys(m map[string]string) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// vetExports adapts the config's import-path remapping and export-data
// table to the loader's flat path→file map.
func vetExports(cfg VetConfig) map[string]string {
	exports := make(map[string]string, len(cfg.PackageFile)+len(cfg.ImportMap))
	for path, file := range cfg.PackageFile {
		exports[path] = file
	}
	// Source import paths that the build resolved elsewhere (vendoring,
	// test variants) alias their canonical package's export data.
	for src, canonical := range cfg.ImportMap {
		if file, ok := cfg.PackageFile[canonical]; ok && exports[src] == "" {
			exports[src] = file
		}
	}
	return exports
}
