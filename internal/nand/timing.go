package nand

import (
	"fmt"
	"time"
)

// Timing holds per-operation latencies for a NAND part. Denser cells need
// finer-grained incremental programming and therefore take longer; the
// defaults follow published datasheet ranges.
type Timing struct {
	ReadPage    time.Duration // tR: array-to-register read
	ProgramPage time.Duration // tPROG
	EraseBlock  time.Duration // tBERS
}

// DefaultTiming returns typical latencies for the given cell type.
func DefaultTiming(t CellType) Timing {
	switch t {
	case SLC:
		return Timing{ReadPage: 25 * time.Microsecond, ProgramPage: 250 * time.Microsecond, EraseBlock: 1500 * time.Microsecond}
	case MLC:
		return Timing{ReadPage: 60 * time.Microsecond, ProgramPage: 900 * time.Microsecond, EraseBlock: 3 * time.Millisecond}
	case TLC:
		return Timing{ReadPage: 90 * time.Microsecond, ProgramPage: 2 * time.Millisecond, EraseBlock: 5 * time.Millisecond}
	default:
		return Timing{}
	}
}

// Validate reports an error describing the first invalid field, if any.
func (t Timing) Validate() error {
	switch {
	case t.ReadPage <= 0:
		return fmt.Errorf("nand: timing: ReadPage = %v, want > 0", t.ReadPage)
	case t.ProgramPage <= 0:
		return fmt.Errorf("nand: timing: ProgramPage = %v, want > 0", t.ProgramPage)
	case t.EraseBlock <= 0:
		return fmt.Errorf("nand: timing: EraseBlock = %v, want > 0", t.EraseBlock)
	}
	return nil
}
