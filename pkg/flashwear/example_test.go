package flashwear_test

import (
	"fmt"

	"flashwear/pkg/flashwear"
)

// Example_wearIndicator shows the core loop of the paper: write, and watch
// the JEDEC life-time estimate climb.
func Example_wearIndicator() {
	clock := flashwear.NewClock()
	prof := flashwear.ProfileEMMC8()
	prof.RatedPE = 50 // short-lived variant so the example is instant
	prof.FirmwareRatedPE = 50
	dev, err := flashwear.NewDevice(prof.Scaled(1024), clock)
	if err != nil {
		panic(err)
	}
	w := flashwear.NewDeviceWriter(dev, 4096, false, 1)
	w.RegionLen = dev.Size() / 8
	for dev.WearIndicator(flashwear.PoolB) < 3 {
		if _, err := w.Step(4 << 20); err != nil {
			break
		}
	}
	fmt.Println("indicator:", dev.WearIndicator(flashwear.PoolB))
	// Output:
	// indicator: 3
}

// Example_envelope reproduces §2.3's back-of-the-envelope arithmetic.
func Example_envelope() {
	env := flashwear.NewEnvelope(8 << 30) // an 8 GiB device
	fmt.Printf("promised volume: %d GiB\n", env.TotalHostBytes()>>30)
	fmt.Printf("rewrites/day for 3 years: %.1f\n", env.FullRewritesPerDayForYears(3))
	// Output:
	// promised volume: 24000 GiB
	// rewrites/day for 3 years: 2.7
}

// Example_budget derives the defensive write budget of §4.5.
func Example_budget() {
	budget := flashwear.LifespanBudget{
		CapacityBytes: 8 << 30,
		RatedPE:       1400,
		TargetYears:   3,
		ExpectedWA:    2,
	}
	fmt.Printf("%.1f GiB/day sustains a 3-year life\n", budget.BytesPerDay()/(1<<30))
	// Output:
	// 5.1 GiB/day sustains a 3-year life
}
