package fleet

import (
	"context"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"flashwear/internal/core"
	"flashwear/internal/device"
	"flashwear/internal/fs"
	"flashwear/internal/fs/extfs"
	"flashwear/internal/ftl"
	"flashwear/internal/simclock"
	"flashwear/internal/telemetry"
	"flashwear/internal/workload"
	"flashwear/internal/wtrace"
)

// DeviceResult is the outcome of one simulated phone. Volumes and times
// are full-scale (the per-device capacity scaling is already multiplied
// back).
type DeviceResult struct {
	Index       int
	ProfileName string
	Class       Class
	// Bricked reports device death within the horizon.
	Bricked bool
	// ReadOnly reports that the death was the graceful JEDEC read-only
	// retirement rather than a hard brick (a subset of Bricked deaths).
	ReadOnly bool
	// Days is the time from workload start to brick (or to the horizon
	// for survivors), in full-scale days.
	Days float64
	// HostBytes is total host data the device absorbed, including the
	// initial file-system and file-set fill.
	HostBytes int64
	// WearLevel is the final Type B JEDEC wear-indicator level (FTL
	// ground truth, so it is meaningful even on BLU-class devices whose
	// registers read garbage).
	WearLevel int
	// WA is the device's cumulative write amplification.
	WA float64

	// metrics is the device's padded telemetry row set (nil unless
	// Spec.MetricsEvery is set); see metrics.go.
	metrics [][]int64
	// wear is the device's full-scale wear ledger (zero-value unless
	// Spec.WearTrace is set).
	wear wtrace.Snapshot
}

// remounts counts power-loss recoveries across all devices of all runs —
// schedule-independent in total, never part of a Result; tests read it to
// prove a fault plan actually exercised the recovery path.
var remounts atomic.Int64

// pacer wraps a StepFunc to hold its long-run average to a target rate:
// after each burst it idles the device's clock until the bytes written so
// far are "due" at that rate. Benign phones therefore spend almost all
// simulated time idle, exactly like real ones, and simulated wear stays a
// function of volume, not of polling granularity.
type pacer struct {
	clock *simclock.Clock
	step  core.StepFunc
	// perSimSecond is the target rate in bytes per simulated second.
	// Capacity scaling preserves rates (volume and time divide by the
	// same factor), so the full-scale daily rate applies unchanged on the
	// scaled device.
	perSimSecond float64

	start   time.Duration
	started bool
	written int64
}

func (p *pacer) Step(budget int64) (int64, error) {
	if !p.started {
		p.started = true
		p.start = p.clock.Now()
	}
	n, err := p.step(budget)
	p.written += n
	due := time.Duration(float64(p.written) / p.perSimSecond * float64(time.Second))
	if owed := due - (p.clock.Now() - p.start); owed > 0 {
		p.clock.Advance(owed)
	}
	return n, err
}

// simulateDevice runs one phone from install to brick or horizon. It is
// self-contained: everything it touches is built here, so concurrent calls
// share no mutable state.
func simulateDevice(ctx context.Context, spec Spec, p Params) (DeviceResult, error) {
	prof := spec.Profiles[p.profile.idx].Profile
	prof.Seed = p.Seed
	if spec.Faults != nil && !spec.Faults.Empty() {
		// Re-seed the plan per device: fault schedules stay independent
		// across the population but are a pure function of the Spec.
		plan := spec.Faults.WithSeed(spec.Faults.Seed + p.Seed)
		prof.Faults = &plan
	}
	eff := prof.EffectiveScale(spec.Scale)
	clock := simclock.New()
	dev, err := device.New(prof.Scaled(spec.Scale), clock)
	if err != nil {
		return DeviceResult{}, fmt.Errorf("fleet: device %d (%s): %w", p.Index, prof.Name, err)
	}

	// Wear attribution attaches at device birth like telemetry does: the
	// mkfs/mount/fill phase runs untagged (origin "os"), and the workload
	// file set is wrapped so every operation it issues — and all the GC,
	// wear-leveling, and cache work those writes cause — is charged to the
	// device's workload class.
	var tr *wtrace.Tracer
	var clsOrg wtrace.Origin
	if spec.WearTrace {
		tr = wtrace.New()
		dev.EnableWearTrace(tr)
		clsOrg = tr.Origin(p.Class.String())
	}

	// Telemetry attaches at device birth — before mkfs, so the file-system
	// fill is part of the trajectory — and samples at the scaled cadence:
	// full-scale MetricsEvery divides by the effective scale exactly as the
	// horizon does, so row k is the device at full-scale age (k+1)*Every.
	var coll *metricCollector
	var sampler *telemetry.Sampler
	if spec.MetricsEvery > 0 {
		scaledEvery := spec.MetricsEvery / time.Duration(eff)
		if scaledEvery <= 0 {
			return DeviceResult{}, fmt.Errorf("fleet: device %d (%s): MetricsEvery %v vanishes at scale %d",
				p.Index, prof.Name, spec.MetricsEvery, eff)
		}
		reg := telemetry.NewRegistry()
		dev.Instrument(reg)
		coll = newMetricCollector(reg, eff)
		sampler = telemetry.NewSampler(reg, clock, scaledEvery)
		sampler.Collect = false
		sampler.OnSample = coll.observe
	}

	// The paper's file-set shape: a few files in a private directory,
	// rewritten at random offsets — under a few percent of capacity at
	// full scale, clamped up so tiny scaled devices still have room for
	// random addressing.
	fileSize := dev.Size() / 40
	if min := 4 * spec.ReqBytes; fileSize < min {
		fileSize = min
	}
	// mkfs, mount and the initial file fill can themselves be interrupted
	// by an injected power cut; like a phone that loses power during first
	// boot, the device power-cycles and reformats until setup holds. The
	// retry count is deterministic, so so is the rebuilt file set.
	var set *workload.FileSet
	for attempt := 0; ; attempt++ {
		err := func() error {
			if err := extfs.Mkfs(dev); err != nil {
				return fmt.Errorf("mkfs: %w", err)
			}
			mounted, err := extfs.Mount(dev, fs.Options{DataAccounting: true})
			if err != nil {
				return fmt.Errorf("mount: %w", err)
			}
			var fsys fs.FileSystem = mounted
			if tr != nil {
				fsys = wtrace.TagFS(fsys, tr, clsOrg)
			}
			set = workload.NewFileSet(fsys, "/app", fileSize, p.Seed+1)
			set.ReqBytes = spec.ReqBytes
			if err := set.Setup(); err != nil {
				return fmt.Errorf("setup: %w", err)
			}
			return nil
		}()
		if err == nil {
			break
		}
		if !errors.Is(err, device.ErrPowerLoss) || attempt >= 8 {
			return DeviceResult{}, fmt.Errorf("fleet: device %d (%s): %w", p.Index, prof.Name, err)
		}
		if err := dev.PowerCycle(); err != nil {
			return DeviceResult{}, fmt.Errorf("fleet: device %d (%s): power cycle: %w", p.Index, prof.Name, err)
		}
	}

	runner := core.NewRunner(dev, clock, eff)
	runner.StepBytes = spec.StepBytes
	runner.Pattern = p.Class.String()

	step := core.StepFunc(set.Step)
	if p.DailyBytes > 0 {
		step = (&pacer{
			clock:        clock,
			step:         set.Step,
			perSimSecond: float64(p.DailyBytes) / (24 * 60 * 60),
		}).Step
	}
	// The horizon in scaled simulated time: full-scale days divide by the
	// effective scale, mirroring how the runner multiplies times back.
	horizonEnd := clock.Now() + time.Duration(spec.Days/float64(eff)*24*float64(time.Hour))
	stop := func() bool {
		return clock.Now() >= horizonEnd || ctx.Err() != nil
	}
	// A power cut surfaces as ErrPowerLoss from the step function. Like a
	// real phone the device is power-cycled — the FTL rebuilds its mapping
	// from on-flash OOB metadata — the file system remounted, the working
	// files reattached, and the workload resumes until the horizon. A device
	// that recovers into read-only EOL mode simply fails its next write and
	// is reported failed by RunPhase. A phone that cannot boot at all — the
	// remount hits a wear-dead page during journal replay, or the device
	// comes back read-only or bricked — died of wear like any other and is
	// reported bricked, not as a failed simulation. Boot itself can also be
	// cut by the schedule, so it retries like the setup loop does.
	diedBooting := false
	for {
		err := runner.RunPhase(step, 0, stop)
		if err == nil {
			break
		}
		if !errors.Is(err, device.ErrPowerLoss) && !errors.Is(err, ftl.ErrPowerLoss) {
			if errors.Is(err, extfs.ErrCorrupt) || errors.Is(err, extfs.ErrNotExtfs) {
				// Wear corrupted file-system structure out from under the
				// workload (RunPhase already classifies the device-level
				// death errors itself): dead phone, not a failed simulation.
				diedBooting = true
				break
			}
			return DeviceResult{}, fmt.Errorf("fleet: device %d (%s): %w", p.Index, prof.Name, err)
		}
		rebooted := false
		for attempt := 0; attempt < 8 && !rebooted && !diedBooting; attempt++ {
			if err := dev.PowerCycle(); err != nil {
				return DeviceResult{}, fmt.Errorf("fleet: device %d (%s): power cycle: %w", p.Index, prof.Name, err)
			}
			mounted, err := extfs.Mount(dev, fs.Options{DataAccounting: true})
			if err == nil {
				var fsys fs.FileSystem = mounted
				if tr != nil {
					fsys = wtrace.TagFS(fsys, tr, clsOrg)
				}
				err = set.Reattach(fsys)
			}
			switch {
			case err == nil:
				rebooted = true
			case errors.Is(err, device.ErrPowerLoss) || errors.Is(err, ftl.ErrPowerLoss):
				// Cut again mid-boot: cycle and try once more.
			case errors.Is(err, device.ErrBricked) || errors.Is(err, ftl.ErrBricked),
				errors.Is(err, device.ErrReadOnly) || errors.Is(err, ftl.ErrReadOnly),
				errors.Is(err, ftl.ErrUnreadable),
				errors.Is(err, extfs.ErrCorrupt) || errors.Is(err, extfs.ErrNotExtfs):
				// ErrUnreadable: a page the journal needs rotted past ECC.
				// ErrCorrupt/ErrNotExtfs: extreme wear destroyed metadata
				// that GC could no longer relocate (ftl.Stats.LostPages) —
				// the superblock itself can rot. Either way the phone does
				// not boot, which is the paper's brick.
				diedBooting = true
			default:
				return DeviceResult{}, fmt.Errorf("fleet: device %d (%s): remount: %w", p.Index, prof.Name, err)
			}
		}
		if !rebooted {
			// Either the boot found the device dead, or eight consecutive
			// cuts landed inside it — a schedule so hot the phone can never
			// come back up counts as dead too.
			diedBooting = true
			break
		}
		remounts.Add(1)
	}
	if err := ctx.Err(); err != nil {
		return DeviceResult{}, err
	}
	rep := runner.Report()
	rep.Bricked = rep.Bricked || diedBooting
	var metricRows [][]int64
	if coll != nil {
		sampler.Stop()
		metricRows = coll.finish(metricRowCount(spec), clock.Now())
	}
	res := DeviceResult{
		Index:       p.Index,
		ProfileName: prof.Name,
		Class:       p.Class,
		Bricked:     rep.Bricked,
		ReadOnly:    dev.ReadOnly(),
		Days:        rep.TotalHours / 24,
		HostBytes:   dev.BytesWritten() * eff,
		WearLevel:   dev.FTL().WearIndicator(ftl.PoolB),
		WA:          rep.FinalWA,
		metrics:     metricRows,
	}
	if tr != nil {
		// Scale each integer count back to full scale before aggregation,
		// exactly as the metrics pipeline does, so the merged fleet ledger
		// is a pure function of the Spec (DESIGN.md §6).
		snap := tr.Ledger().Snapshot()
		snap.Scale(eff)
		res.wear = snap
	}
	return res, nil
}
