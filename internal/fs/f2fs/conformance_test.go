package f2fs

import (
	"testing"

	"flashwear/internal/blockdev"
	"flashwear/internal/device"
	"flashwear/internal/fs"
	"flashwear/internal/fs/fstest"
	"flashwear/internal/simclock"
)

// TestConformance runs the shared fs.FileSystem contract suite on f2fs.
func TestConformance(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fs.FileSystem {
		dev, err := blockdev.NewMem(24<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		v, err := Mount(dev, fs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	})
}

// TestCrashConformance runs the shared crash-consistency suite on f2fs,
// with the offline checker after every recovery.
func TestCrashConformance(t *testing.T) {
	var dev *blockdev.MemDevice
	fstest.RunCrash(t, func(t *testing.T) (fstest.CrashFS, func(t *testing.T) fstest.CrashFS) {
		d, err := blockdev.NewMem(24<<20, 512)
		if err != nil {
			t.Fatal(err)
		}
		dev = d
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		mount := func(t *testing.T) fstest.CrashFS {
			v, err := Mount(dev, fs.Options{})
			if err != nil {
				t.Fatalf("remount: %v", err)
			}
			return v
		}
		return mount(t), mount
	}, func(t *testing.T) {
		rep, err := Check(dev)
		if err != nil {
			t.Fatalf("check: %v", err)
		}
		if !rep.Clean() {
			t.Fatalf("check after recovery: %v", rep.Corruptions)
		}
	})
}

// TestConformanceOnFlash runs the contract suite with f2fs mounted on a
// real simulated flash device — the log-on-log stack a phone actually runs.
func TestConformanceOnFlash(t *testing.T) {
	fstest.Run(t, func(t *testing.T) fs.FileSystem {
		dev, err := device.New(device.ProfileMotoE8().Scaled(256), simclock.New())
		if err != nil {
			t.Fatal(err)
		}
		if err := Mkfs(dev); err != nil {
			t.Fatal(err)
		}
		v, err := Mount(dev, fs.Options{})
		if err != nil {
			t.Fatal(err)
		}
		return v
	})
}
